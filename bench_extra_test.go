package klocal_test

import (
	"testing"

	"klocal"
)

// Benchmarks for the extension experiments: the memory-versus-dilation
// landscape, the randomized and geometric baselines, and the Section 6.1
// dormancy-policy ablation.

func BenchmarkMemoryDilation(b *testing.B) {
	var fullBits, intervalBits, klocalBits int
	for i := 0; i < b.N; i++ {
		rng := klocal.NewRand(11)
		res, err := klocal.MemoryDilation(rng, 24, 80)
		if err != nil {
			b.Fatal(err)
		}
		fullBits = res.Rows[0].NodeBits
		intervalBits = res.Rows[1].NodeBits
		klocalBits = res.Rows[2].NodeBits
	}
	b.ReportMetric(float64(fullBits), "nodeBits/fullTables")
	b.ReportMetric(float64(intervalBits), "nodeBits/interval")
	b.ReportMetric(float64(klocalBits), "nodeBits/alg1")
}

func BenchmarkRandomWalkQuadratic(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := klocal.NewRand(12)
		res := klocal.RandomWalkQuadratic(rng, []int{16, 32}, 10)
		ratio = res.Points[len(res.Points)-1].RatioToN2
	}
	b.ReportMetric(ratio, "hops/n2")
}

func BenchmarkFaceRouting(b *testing.B) {
	rng := klocal.NewRand(13)
	pos := klocal.RandomPoints(rng, 48)
	g := klocal.GabrielGraph(pos)
	emb, err := klocal.NewEmbedding(g, pos)
	if err != nil {
		b.Fatal(err)
	}
	vs := g.Vertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := vs[i%len(vs)]
		t := vs[(i+19)%len(vs)]
		if s == t {
			continue
		}
		res, err := klocal.FaceRoute(emb, s, t)
		if err != nil || !res.Delivered {
			b.Fatalf("face route failed: %v", err)
		}
	}
}

func BenchmarkGreedyRouting(b *testing.B) {
	rng := klocal.NewRand(14)
	pos := klocal.RandomPoints(rng, 48)
	g := klocal.UnitDiskGraph(pos, 0.4)
	emb, err := klocal.NewEmbedding(g, pos)
	if err != nil {
		b.Fatal(err)
	}
	alg := klocal.GreedyRouting(emb)
	vs := g.Vertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := vs[i%len(vs)]
		t := vs[(i+11)%len(vs)]
		if s == t {
			continue
		}
		klocal.Route(alg, g, 1, s, t)
	}
}

func BenchmarkAblationDormantPolicy(b *testing.B) {
	// The Section 6.1 ablation: worst-case dilation of Algorithm 1B under
	// min-rank versus max-rank dormancy on the Figure 17 family.
	k := 12
	f, err := klocal.NewFig17(4*k, k)
	if err != nil {
		b.Fatal(err)
	}
	minAlg := klocal.Algorithm1BPolicy(klocal.PolicyMinRank)
	maxAlg := klocal.Algorithm1BPolicy(klocal.PolicyMaxRank)
	b.ResetTimer()
	var lenMin, lenMax int
	for i := 0; i < b.N; i++ {
		rMin := klocal.Route(minAlg, f.G, k, f.S, f.T)
		rMax := klocal.Route(maxAlg, f.G, k, f.S, f.T)
		if rMin.Outcome != klocal.Delivered || rMax.Outcome != klocal.Delivered {
			b.Fatal("policy variant failed to deliver")
		}
		lenMin, lenMax = rMin.Len(), rMax.Len()
	}
	b.ReportMetric(float64(lenMin), "routeLen/minRank")
	b.ReportMetric(float64(lenMax), "routeLen/maxRank")
}

func BenchmarkDFSRoute(b *testing.B) {
	g := klocal.RandomConnected(klocal.NewRand(15), 64, 0.06)
	vs := g.Vertices()
	b.ResetTimer()
	var bits int
	for i := 0; i < b.N; i++ {
		s := vs[i%len(vs)]
		t := vs[(i+31)%len(vs)]
		if s == t {
			continue
		}
		res, err := klocal.DFSRoute(g, s, t)
		if err != nil {
			b.Fatal(err)
		}
		bits = res.PeakStateBits
	}
	b.ReportMetric(float64(bits), "peakStateBits")
}

func BenchmarkFlood(b *testing.B) {
	g := klocal.RandomConnected(klocal.NewRand(16), 64, 0.06)
	vs := g.Vertices()
	b.ResetTimer()
	var tx int
	for i := 0; i < b.N; i++ {
		res, err := klocal.Flood(g, vs[0], vs[len(vs)-1], 2*g.N())
		if err != nil {
			b.Fatal(err)
		}
		tx = res.Transmissions
	}
	b.ReportMetric(float64(tx), "transmissions")
}

func BenchmarkExhaustiveTheorem1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := klocal.ExhaustiveTheorem1(19)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDefeated() {
			b.Fatal("Theorem 1 exhaustive check does not reproduce")
		}
	}
}

func BenchmarkExhaustiveTheorem3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := klocal.ExhaustiveTheorem3(12)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDefeated() {
			b.Fatal("Theorem 3 exhaustive check does not reproduce")
		}
	}
}

func BenchmarkVerifyExhaustiveN5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := klocal.VerifyExhaustive(klocal.VerifyConfig{Algorithm: klocal.Algorithm1()}, 5)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatal("verification failed")
		}
	}
}
