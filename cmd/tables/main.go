// Command tables regenerates every table and quantitative figure of the
// paper and prints them to stdout. Each artifact is verified against
// the paper's claims after rendering (delivery on the positive side,
// defeats on the negative side, dilation bounds, exact route lengths);
// any mismatch makes the command exit non-zero, so a drifted
// reproduction cannot pass unnoticed through scripts or CI.
//
// Usage:
//
//	tables [-n 40] [-seed 1] [-graphs 5] [-sweep] [-sweep-n 13]
//	       [-parallel] [-workers 0]
//
// -parallel routes the sweep's pair evaluations through the traffic
// engine's worker pool (identical results, concurrent wall clock).
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 40, "network size for Tables 1-4")
		seed     = flag.Int64("seed", 1, "random seed for the workload graphs")
		graphs   = flag.Int("graphs", 5, "random graphs in the positive-side workload")
		sweep    = flag.Bool("sweep", false, "also run the locality sweep (slow)")
		sweepN   = flag.Int("sweep-n", 13, "network size for the sweep")
		parallel = flag.Bool("parallel", false, "route the sweep through the traffic engine's worker pool")
		workers  = flag.Int("workers", 0, "engine workers for -parallel (0 = GOMAXPROCS)")
	)
	flag.Parse()

	out := os.Stdout
	rng := klocal.NewRand(*seed)

	t1, err := klocal.Table1(rng, *n, *graphs)
	if err != nil {
		return err
	}
	t1.Render(out)
	fmt.Fprintln(out)
	if err := t1.Check(); err != nil {
		return err
	}

	t2, err := klocal.Table2(rng, *n, *graphs)
	if err != nil {
		return err
	}
	t2.Render(out)
	fmt.Fprintln(out)
	if err := t2.Check(); err != nil {
		return err
	}

	t3, err := klocal.Table3(*n)
	if err != nil {
		return err
	}
	t3.Render(out)
	fmt.Fprintln(out)
	if err := t3.Check(); err != nil {
		return err
	}

	t4, err := klocal.Table4(*n)
	if err != nil {
		return err
	}
	t4.Render(out)
	fmt.Fprintln(out)
	if err := t4.Check(); err != nil {
		return err
	}

	klocal.Fig1().Render(out)
	fmt.Fprintln(out)

	f7, err := klocal.Fig7(12, 5, 4)
	if err != nil {
		return err
	}
	f7.Render(out)
	fmt.Fprintln(out)
	if err := f7.Check(); err != nil {
		return err
	}

	f13, err := klocal.Fig13([]int{4, 6, 8, 12, 16, 24, 32})
	if err != nil {
		return err
	}
	f13.Render(out)
	fmt.Fprintln(out)
	if err := f13.Check(); err != nil {
		return err
	}

	f17, err := klocal.Fig17([]int{7, 8, 10, 12, 16, 24, 32})
	if err != nil {
		return err
	}
	f17.Render(out)
	fmt.Fprintln(out)
	if err := f17.Check(); err != nil {
		return err
	}

	mem, err := klocal.MemoryDilation(rng, *n, 200)
	if err != nil {
		return err
	}
	mem.Render(out)
	fmt.Fprintln(out)

	klocal.RandomWalkQuadratic(rng, []int{8, 16, 32, 64}, 30).Render(out)

	if *sweep {
		fmt.Fprintln(out)
		if *parallel {
			res, err := klocal.SweepParallel(rng, *sweepN, 3, 20, *workers)
			if err != nil {
				return err
			}
			res.Render(out)
		} else {
			klocal.Sweep(rng, *sweepN, 3, 20).Render(out)
		}
	}
	return nil
}
