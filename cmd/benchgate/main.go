// Command benchgate is the engine-throughput regression gate: it runs
// the single-worker BenchmarkEngineThroughput series fresh, compares it
// against the committed BENCH_engine.json baseline, and exits non-zero
// when
//
//   - msgs/sec regresses more than -regress (default 10%) below the
//     baseline, or
//   - allocations per routed message exceed -max-allocs-per-msg.
//
// Only the single-worker series is gated: it isolates the per-message
// routing cost from scheduler and core-count effects, so the gate holds
// on any hardware (CI runners included), whereas multi-worker scaling
// ratios depend on the machine. `make bench-gate` wires this into CI.
//
// Both the baseline and the fresh run are `go test -json` event streams
// (the format `make bench` commits), so one parser reads both.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchResult is one parsed benchmark result line.
type benchResult struct {
	msgsPerSec  float64
	allocsPerOp float64
	found       bool
}

// parseStream concatenates the Output fields of a `go test -json` event
// stream and extracts the named benchmark's measurement line. go test
// splits one result line across several events, so measurements are
// parsed from the reassembled text, not per event.
func parseStream(r io.Reader, bench string) (benchResult, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain-text lines (a raw `go test -bench` capture).
			sb.Write(line)
			sb.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			sb.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return benchResult{}, err
	}
	return parseBenchLines(sb.String(), bench)
}

func parseBenchLines(text, bench string) (benchResult, error) {
	var res benchResult
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != bench {
			continue
		}
		// fields: name, iterations, then value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return res, fmt.Errorf("benchgate: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "msgs/sec":
				res.msgsPerSec = v
				res.found = true
			case "allocs/op":
				res.allocsPerOp = v
			}
		}
	}
	if !res.found {
		return res, fmt.Errorf("benchgate: no %q msgs/sec result found", bench)
	}
	return res, nil
}

func runCurrent(bench string) (benchResult, error) {
	// Escape the subtest separator: -bench is a regexp per slash-split
	// element, and "=" is literal, but anchor fully to avoid workers=1x.
	pat := "^" + strings.ReplaceAll(bench, "/", "$/^") + "$"
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pat,
		"-benchmem", "-count=1", "-json", ".")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return benchResult{}, err
	}
	if err := cmd.Start(); err != nil {
		return benchResult{}, err
	}
	res, perr := parseStream(out, bench)
	if err := cmd.Wait(); err != nil {
		return benchResult{}, fmt.Errorf("benchgate: bench run failed: %w", err)
	}
	return res, perr
}

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "committed `go test -json` bench stream to gate against")
	current := flag.String("current", "", "pre-recorded bench stream to gate (default: run the benchmark fresh)")
	bench := flag.String("bench", "BenchmarkEngineThroughput/workers=1", "benchmark series to gate")
	batch := flag.Int("batch", 2048, "messages routed per benchmark op (converts allocs/op to allocs/msg)")
	regress := flag.Float64("regress", 0.10, "max fractional msgs/sec regression vs baseline")
	maxAllocs := flag.Float64("max-allocs-per-msg", 4, "max allocations per routed message")
	flag.Parse()

	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := parseStream(bf, *bench)
	bf.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *baseline, err))
	}

	var cur benchResult
	if *current != "" {
		cf, err := os.Open(*current)
		if err != nil {
			fatal(err)
		}
		cur, err = parseStream(cf, *bench)
		cf.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *current, err))
		}
	} else {
		if cur, err = runCurrent(*bench); err != nil {
			fatal(err)
		}
	}

	allocsPerMsg := cur.allocsPerOp / float64(*batch)
	floor := base.msgsPerSec * (1 - *regress)
	fmt.Printf("benchgate: %s\n", *bench)
	fmt.Printf("  baseline %.0f msgs/sec, current %.0f msgs/sec (floor %.0f)\n",
		base.msgsPerSec, cur.msgsPerSec, floor)
	fmt.Printf("  current %.2f allocs/msg (gate %.2f)\n", allocsPerMsg, *maxAllocs)

	failed := false
	if cur.msgsPerSec < floor {
		fmt.Printf("FAIL: msgs/sec regressed %.1f%% (> %.0f%% allowed)\n",
			100*(1-cur.msgsPerSec/base.msgsPerSec), 100**regress)
		failed = true
	}
	if allocsPerMsg > *maxAllocs {
		fmt.Printf("FAIL: %.2f allocs/msg exceeds the %.2f gate\n", allocsPerMsg, *maxAllocs)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
