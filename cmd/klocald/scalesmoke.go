package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/serve"
)

// runScaleSmoke is the dependency-free `make scale-smoke` body: the
// million-node pipeline end to end, scaled to CI time. It streams a
// 10^5-node grid into a binary CSR file, boots the daemon store-backed
// on it (mmap when the platform has it), routes 1000 Zipf-skewed pairs
// through /batch, and asserts the run is healthy: every request routed,
// a sizeable fraction delivered, counters reconciled.
//
// k sits far below Algorithm 2's Theorem 7 threshold (T(10^5) ≈ 33000 —
// at this scale the threshold view IS the graph), so delivery is
// best-effort: pairs whose destination enters the k-view deliver, the
// rest fail fast. That is the regime the scale benchmark measures; the
// smoke pins the plumbing, not the paper's guarantee.
func runScaleSmoke(drain time.Duration) error {
	const (
		rows, cols = 317, 317 // 100489 vertices
		k          = 8
		pairs      = 1000
		batch      = 100
	)
	start := time.Now()
	c, err := gen.GridCSR(rows, cols)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "klocal-scale-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "grid.csr")
	if err := c.WriteFile(path); err != nil {
		return err
	}
	n := c.N()
	fmt.Printf("scale-smoke: wrote %s: n=%d m=%d (%d bytes) in %v\n",
		path, n, c.M(), c.Bytes(), time.Since(start).Round(time.Millisecond))

	s, err := serve.New(serve.Config{
		Graph:      serve.GraphSpec{Kind: "file", Path: path},
		Algorithms: []string{"alg2"},
		K:          k,
		// Pairs whose destination never enters the k-view wander until the
		// budget; 2k keeps them cheap while leaving visible destinations
		// (shortest path ≤ k hops) untouched.
		MaxSteps: 2 * k,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	//klocal:allow smoke-run server; the process exits when the run completes
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	var gr serve.GraphReply
	if err := postJSON(base, "GET", "/graph", nil, &gr); err != nil {
		return err
	}
	if gr.N != n {
		return fmt.Errorf("daemon reports n=%d, want %d", gr.N, n)
	}

	// Zipf-skewed endpoints: most mass near vertex 0 (the grid corner),
	// so many pairs are within the k-view and deliver, while the tail
	// exercises the fail-fast path.
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, 1.3, 8, uint64(n-1))
	routed, delivered := 0, 0
	routeStart := time.Now()
	for routed < pairs {
		req := serve.BatchRequest{}
		for i := 0; i < batch; i++ {
			req.Pairs = append(req.Pairs,
				[2]graph.Vertex{graph.Vertex(z.Uint64()), graph.Vertex(z.Uint64())})
		}
		var br serve.BatchReply
		if err := postJSON(base, "POST", "/batch", req, &br); err != nil {
			return err
		}
		if len(br.Results) != batch {
			return fmt.Errorf("batch returned %d results, want %d", len(br.Results), batch)
		}
		for _, rr := range br.Results {
			routed++
			if rr.Delivered {
				delivered++
			}
		}
	}
	rate := float64(delivered) / float64(routed)
	elapsed := time.Since(routeStart)
	fmt.Printf("scale-smoke: routed %d Zipf pairs in %v (%.0f msgs/s), %.0f%% delivered at k=%d\n",
		routed, elapsed.Round(time.Millisecond), float64(routed)/elapsed.Seconds(), 100*rate, k)
	if delivered == 0 {
		return fmt.Errorf("no pair delivered — even Zipf-adjacent endpoints failed")
	}

	var mr serve.MetricsReply
	if err := postJSON(base, "GET", "/metrics?format=json", nil, &mr); err != nil {
		return err
	}
	rep, ok := mr.Algorithms["alg2"]
	if !ok {
		return fmt.Errorf("metrics missing alg2")
	}
	if got := rep.Counter("requests"); got != int64(routed) {
		return fmt.Errorf("metrics count %d requests, want %d", got, routed)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	s.Drain()
	return nil
}

// postJSON is the minimal client the smoke needs: marshal, round-trip,
// insist on 200, unmarshal.
func postJSON(base, method, path string, payload, into any) error {
	var body io.Reader
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, base+path, body)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, raw)
	}
	return json.Unmarshal(raw, into)
}
