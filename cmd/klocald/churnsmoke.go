package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"klocal/internal/churn"
	"klocal/internal/engine"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/serve"
)

// runChurnSmoke is the dependency-free `make churn-smoke` body: boot
// the daemon on a loopback port, keep routing traffic flowing, and
// PATCH a stream of topology deltas underneath it. The flaps toggle
// chords on a cycle, so the graph stays connected throughout and every
// route must keep delivering. The smoke asserts the incremental path's
// whole contract over HTTP: the epoch advances per batch, each delta's
// dirty set stays strictly local (≪ n), traffic never sees an error
// mid-swap, and the final topology routes exactly like a from-scratch
// snapshot of a client-side mirror graph.
func runChurnSmoke(drain time.Duration) error {
	const (
		size  = 64
		k     = 3
		flaps = 30
	)
	start := time.Now()
	cfg := serve.Config{
		Graph:      serve.GraphSpec{Kind: "cycle", Size: size},
		K:          k,
		Algorithms: []string{"alg2"},
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer s.Drain()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	//klocal:allow churn-smoke server; the run closes the listener on return, unblocking Serve
	go func() { errc <- hs.Serve(ln) }()
	defer ln.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("churn-smoke: daemon on %s (cycle n=%d, k=%d)\n", base, size, k)

	do := func(method, path string, payload, into any) error {
		body, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, raw)
		}
		return json.Unmarshal(raw, into)
	}

	// Background traffic: pairs at distance ≤ k, full tilt. k sits far
	// below the threshold T(64), so only in-view destinations carry the
	// delivery guarantee — and chord flaps can only shorten distances,
	// never push these pairs out of view. Every response must deliver.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		routed   atomic.Int64
		trafficE atomic.Value
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 3 {
				select {
				case <-stop:
					return
				default:
				}
				pair := serve.RouteRequest{
					S: graph.Vertex(i % size),
					T: graph.Vertex((i + k) % size),
				}
				var rr serve.RouteReply
				if err := do("POST", "/route", pair, &rr); err != nil {
					trafficE.Store(err)
					return
				}
				if !rr.Delivered {
					trafficE.Store(fmt.Errorf("route %d->%d failed mid-churn: %s", pair.S, pair.T, rr.Outcome))
					return
				}
				routed.Add(1)
			}
		}(w)
	}

	// Flap chords while the traffic runs, mirroring every applied batch
	// on a client-side copy of the topology.
	var g0 serve.GraphReply
	if err := do("GET", "/graph", nil, &g0); err != nil {
		return err
	}
	mirror, err := cfg.Graph.Build()
	if err != nil {
		return err
	}
	epoch := g0.Epoch
	maxDirty := 0
	for i := 0; i < flaps; i++ {
		// Each even step adds a chord; the following odd step removes
		// that same chord, so the cycle's connectivity never breaks.
		u := graph.Vertex(((i - i%2) * 7) % size)
		v := graph.Vertex((int(u) + size/2) % size)
		op, cop := "add-edge", churn.AddEdge
		if i%2 == 1 {
			op, cop = "remove-edge", churn.RemoveEdge
		}
		var dr serve.DeltaReply
		if err := do("PATCH", "/graph", serve.DeltaRequest{
			Deltas: []serve.DeltaSpec{{Op: op, U: u, V: v}},
		}, &dr); err != nil {
			return err
		}
		if dr.Epoch != epoch+1 {
			return fmt.Errorf("flap %d: epoch %d, want %d", i, dr.Epoch, epoch+1)
		}
		epoch = dr.Epoch
		if dr.Dirty <= 0 || dr.Dirty >= dr.N {
			return fmt.Errorf("flap %d: dirty set %d of n=%d is not strictly local", i, dr.Dirty, dr.N)
		}
		if dr.Dirty > maxDirty {
			maxDirty = dr.Dirty
		}
		if mirror, _, err = churn.ApplyAll(mirror, []churn.Delta{{Op: cop, U: u, V: v}}, k); err != nil {
			return fmt.Errorf("flap %d: mirror diverged: %w", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err, ok := trafficE.Load().(error); ok && err != nil {
		return err
	}
	fmt.Printf("churn-smoke: %d flaps applied under %d routed requests, max dirty set %d of %d vertices\n",
		flaps, routed.Load(), maxDirty, size)

	// The daemon's final topology must route exactly like a fresh
	// snapshot of the mirror: same delivery, same hop count. In-view
	// pairs (distance ≤ k) carry the guarantee on both sides.
	snap, err := engine.NewSnapshot(mirror, k, route.Algorithm2())
	if err != nil {
		return err
	}
	for s0 := 0; s0 < size; s0 += 13 {
		pair := serve.RouteRequest{S: graph.Vertex(s0), T: graph.Vertex((s0 + k) % size)}
		var rr serve.RouteReply
		if err := do("POST", "/route", pair, &rr); err != nil {
			return err
		}
		want := snap.Route(pair.S, pair.T, 0)
		if !rr.Delivered || rr.Hops != want.Len() {
			return fmt.Errorf("post-churn route %d->%d: daemon (%v, %d hops) vs mirror snapshot (%v, %d hops)",
				pair.S, pair.T, rr.Delivered, rr.Hops, want.Outcome, want.Len())
		}
		if rr.Epoch != epoch {
			return fmt.Errorf("post-churn route reports epoch %d, want %d", rr.Epoch, epoch)
		}
	}
	fmt.Printf("churn-smoke: daemon routes match a from-scratch mirror snapshot at epoch %d\n", epoch)

	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Printf("churn-smoke: done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
