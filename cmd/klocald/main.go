// Command klocald is the standing routing daemon: it loads a topology,
// binds one traffic engine per requested algorithm, and serves routing
// queries over HTTP with live metrics, health endpoints, pprof, and
// zero-downtime graph hot-swap.
//
// Quickstart:
//
//	klocald -addr :7412 -algo alg2,alg3 -graph random -size 64 -seed 7
//	curl -s localhost:7412/route -d '{"s":0,"t":40,"trace":true}'
//	curl -s localhost:7412/metrics
//	curl -s -X PUT localhost:7412/graph -d '{"kind":"cycle","size":96}'
//
// SIGTERM/SIGINT stop intake, drain in-flight requests, and print one
// final cumulative report per algorithm.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"klocal/internal/graph"
	"klocal/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7412", "listen address")
		algos      = flag.String("algo", "alg2", "comma-separated algorithms to deploy (alg1|alg1b|alg2|alg3); first is the default")
		k          = flag.Int("k", 0, "locality parameter (0 = each algorithm's own threshold)")
		kind       = flag.String("graph", "lollipop", "graph generator kind (lollipop|cycle|path|grid|spider|wheel|barbell|complete|random|tree)")
		size       = flag.Int("size", 48, "graph size for generated topologies")
		seed       = flag.Int64("seed", 1, "generator seed")
		p          = flag.Float64("p", 0.1, "extra-edge probability for -graph random")
		graphFile  = flag.String("graph-file", "", "graph file (overrides the generator flags): .json GraphSpec, or a topology to serve store-backed — binary .csr (mmap'd) or edge list .txt/.txt.gz")
		workers    = flag.Int("workers", 0, "routing workers per algorithm (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "engine queue depth (0 = 4 × workers)")
		maxSteps   = flag.Int("max-steps", 0, "per-walk step budget (0 = simulator default)")
		admission  = flag.Duration("admission", 100*time.Millisecond, "max queue wait before a request is rejected with 429 (0 = wait forever)")
		cacheCap   = flag.Int("cache-cap", 0, "preprocessed-view cache capacity per snapshot (0 = unbounded)")
		prewarm    = flag.Bool("prewarm", false, "precompute every vertex view at (re)deploy time")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown budget for the HTTP listener")
		smoke      = flag.Bool("smoke", false, "self-test: boot on a loopback port, exercise every endpoint, shut down")
		scaleSmoke = flag.Bool("scale-smoke", false, "self-test: generate a 10^5-node grid, serve its .csr store-backed, route 1000 Zipf pairs, shut down")

		// Cluster mode (-shard selects it): N members each own a vertex
		// range of the same GraphSpec, discover G_k(u) over HTTP, and
		// forward /route requests hop by hop.
		shard        = flag.String("shard", "", "cluster mode: own shard i/n of the graph's vertex space (e.g. 1/5)")
		join         = flag.String("join", "", "cluster mode: comma-separated seed member addresses")
		advertise    = flag.String("advertise", "", "cluster mode: address peers reach this member at (default -addr)")
		incarnation  = flag.Int64("incarnation", 0, "cluster mode: membership incarnation (0 = unix time; must grow across rejoins)")
		helloIvl     = flag.Duration("hello", 250*time.Millisecond, "cluster mode: HELLO heartbeat interval")
		deadAfter    = flag.Duration("dead-after", 0, "cluster mode: silence before a peer is declared dead (0 = 8 × hello)")
		peerDeadline = flag.Duration("peer-deadline", time.Second, "cluster mode: per-RPC deadline to a peer (one hop handoff attempt)")
		hopBudget    = flag.Int("hop-budget", 0, "cluster mode: walk hop budget (0 = 8n+16)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "cluster mode: end-to-end budget for one entry request")
		clusterSmoke = flag.Bool("cluster-smoke", false, "self-test: boot a 3-member loopback cluster, kill one, assert recovery")
		churnSmoke   = flag.Bool("churn-smoke", false, "self-test: PATCH topology deltas under live traffic, assert locality and mirror equivalence")
	)
	flag.Parse()

	spec := serve.GraphSpec{Kind: *kind, Size: *size, Seed: *seed, P: *p}
	if *graphFile != "" {
		switch {
		case strings.HasSuffix(*graphFile, ".csr"),
			strings.HasSuffix(*graphFile, ".txt"),
			strings.HasSuffix(*graphFile, ".txt.gz"):
			// A topology file: serve it store-backed (mmap'd for .csr).
			spec = serve.GraphSpec{Kind: "file", Path: *graphFile}
		default:
			data, err := os.ReadFile(*graphFile)
			if err != nil {
				fatal(err)
			}
			spec = serve.GraphSpec{}
			if err := json.Unmarshal(data, &spec); err != nil {
				fatal(fmt.Errorf("parse %s: %w", *graphFile, err))
			}
		}
	}
	cfg := serve.Config{
		Graph:           spec,
		Algorithms:      splitCSV(*algos),
		K:               *k,
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxSteps:        *maxSteps,
		AdmissionBudget: *admission,
		CacheCapacity:   *cacheCap,
		Prewarm:         *prewarm,
	}

	if *smoke {
		if err := runSmoke(cfg, *drain); err != nil {
			fatal(fmt.Errorf("smoke: %w", err))
		}
		fmt.Println("smoke: ok")
		return
	}
	if *scaleSmoke {
		if err := runScaleSmoke(*drain); err != nil {
			fatal(fmt.Errorf("scale-smoke: %w", err))
		}
		fmt.Println("scale-smoke: ok")
		return
	}
	if *clusterSmoke {
		if err := runClusterSmoke(); err != nil {
			fatal(err)
		}
		fmt.Println("cluster-smoke: ok")
		return
	}
	if *churnSmoke {
		if err := runChurnSmoke(*drain); err != nil {
			fatal(fmt.Errorf("churn-smoke: %w", err))
		}
		fmt.Println("churn-smoke: ok")
		return
	}
	if *shard != "" {
		err := runCluster(clusterOptions{
			addr:        *addr,
			advertise:   *advertise,
			shard:       *shard,
			join:        splitCSV(*join),
			algo:        splitCSV(*algos)[0],
			k:           *k,
			spec:        spec,
			incarnation: *incarnation,
			hello:       *helloIvl,
			deadAfter:   *deadAfter,
			peerDL:      *peerDeadline,
			hopBudget:   *hopBudget,
			reqTimeout:  *reqTimeout,
			drain:       *drain,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "klocald: listening on %s (%s, algos %s)\n",
		ln.Addr(), cfg.Graph, *algos)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	//klocal:allow exits when Serve returns on shutdown; errc is buffered so the send never blocks
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "klocald: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "klocald: listener shutdown: %v\n", err)
	}
	s.Drain()
	for _, rep := range s.FinalReports() {
		rep.WriteText(os.Stderr)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "klocald: %v\n", err)
	os.Exit(1)
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runSmoke boots the daemon on a loopback port and exercises the full
// endpoint surface, including a graph hot-swap — the dependency-free
// `make serve-smoke` body.
func runSmoke(cfg serve.Config, drain time.Duration) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	//klocal:allow smoke server; the run closes the listener on return, unblocking Serve
	go func() { errc <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("smoke: daemon on %s\n", base)

	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body), nil
	}
	do := func(method, path string, payload, into any) error {
		body, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, raw)
		}
		return json.Unmarshal(raw, into)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		if _, err := get(path); err != nil {
			return err
		}
	}
	var gr serve.GraphReply
	if err := do("GET", "/graph", nil, &gr); err != nil {
		return err
	}
	last := graph.Vertex(gr.N - 1)
	var rr serve.RouteReply
	if err := do("POST", "/route",
		serve.RouteRequest{S: 0, T: last, Trace: true}, &rr); err != nil {
		return err
	}
	if !rr.Delivered {
		return fmt.Errorf("route 0 -> %d not delivered: %s", last, rr.Outcome)
	}
	fmt.Printf("smoke: routed 0 -> %d in %d hops (dist %d, rev %d)\n",
		last, rr.Hops, rr.Dist, rr.Rev)
	var br serve.BatchReply
	pairs := [][2]graph.Vertex{{0, 1}, {1, last}, {last, 0}}
	if err := do("POST", "/batch", serve.BatchRequest{Pairs: pairs}, &br); err != nil {
		return err
	}
	for i, res := range br.Results {
		if !res.Delivered {
			return fmt.Errorf("batch pair %d not delivered: %s", i, res.Outcome)
		}
	}
	var swapped serve.GraphReply
	if err := do("PUT", "/graph",
		serve.GraphSpec{Kind: "cycle", Size: 32}, &swapped); err != nil {
		return err
	}
	if swapped.Rev <= gr.Rev {
		return fmt.Errorf("swap did not advance the revision: %d -> %d", gr.Rev, swapped.Rev)
	}
	if err := do("POST", "/route", serve.RouteRequest{S: 0, T: 16}, &rr); err != nil {
		return err
	}
	if rr.Rev != swapped.Rev {
		return fmt.Errorf("post-swap route served by rev %d, want %d", rr.Rev, swapped.Rev)
	}
	fmt.Printf("smoke: hot-swapped to %s (rev %d) and routed on it\n", swapped.Spec, swapped.Rev)
	text, err := get("/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(text, "requests") {
		return fmt.Errorf("metrics text missing request counters:\n%s", text)
	}
	if _, err := get("/metrics?format=json"); err != nil {
		return err
	}
	if _, err := get("/debug/pprof/cmdline"); err != nil {
		return err
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	s.Drain()
	for _, rep := range s.FinalReports() {
		rep.WriteText(os.Stdout)
	}
	return nil
}
