package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"klocal/internal/cluster"
	"klocal/internal/graph"
	"klocal/internal/serve"
)

// clusterOptions collects the -shard/-join flag set.
type clusterOptions struct {
	addr        string
	advertise   string
	shard       string // "i/n"
	join        []string
	algo        string
	k           int
	spec        serve.GraphSpec
	incarnation int64
	hello       time.Duration
	deadAfter   time.Duration
	peerDL      time.Duration
	hopBudget   int
	reqTimeout  time.Duration
	drain       time.Duration
}

// parseShard splits "i/n" into (index, shards).
func parseShard(s string) (int, int, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-shard wants i/n, got %q", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("-shard index: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("-shard count: %w", err)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q out of range", s)
	}
	return i, n, nil
}

// buildMember assembles one cluster member from the shared GraphSpec:
// the topology is opened as a store (generated in memory, or an mmap'd
// CSR file for kind "file") only to carve out this shard's a-priori
// knowledge — owned vertices and their adjacency rows — and is released
// before the member starts; everything else the member learns over the
// wire. With a .csr file this means a member touches only its owned
// pages of a million-node topology.
func buildMember(opt clusterOptions, tr cluster.Transport) (*cluster.Member, error) {
	idx, shards, err := parseShard(opt.shard)
	if err != nil {
		return nil, err
	}
	st, err := opt.spec.BuildStore()
	if err != nil {
		return nil, err
	}
	defer func() {
		if c, ok := st.(io.Closer); ok {
			c.Close()
		}
	}()
	alg, err := serve.AlgorithmByName(opt.algo)
	if err != nil {
		return nil, err
	}
	k := opt.k
	if k <= 0 {
		k = alg.MinK(st.N())
	}
	vs := make([]graph.Vertex, 0, st.N())
	st.EachVertex(func(v graph.Vertex) bool {
		vs = append(vs, v)
		return true
	})
	asn, err := cluster.NewAssignment(vs, shards)
	if err != nil {
		return nil, err
	}
	adj := make(map[graph.Vertex][]graph.Vertex)
	for _, v := range asn.Owned(idx) {
		nbrs := make([]graph.Vertex, 0, st.Deg(v))
		st.EachAdj(v, func(w graph.Vertex) bool {
			nbrs = append(nbrs, w)
			return true
		})
		adj[v] = nbrs
	}
	cfg := cluster.Config{
		Index:          idx,
		K:              k,
		Alg:            alg,
		Incarnation:    opt.incarnation,
		SelfAddr:       opt.advertise,
		Seeds:          opt.join,
		HelloInterval:  opt.hello,
		DeadAfter:      opt.deadAfter,
		PeerDeadline:   opt.peerDL,
		HopBudget:      opt.hopBudget,
		RequestTimeout: opt.reqTimeout,
	}
	return cluster.NewMember(cfg, asn, adj, tr)
}

// runCluster is klocald's -join/-shard mode: one member process serving
// its shard until SIGTERM/SIGINT, then a graceful stop and the final
// report (fault counters included).
func runCluster(opt clusterOptions) error {
	if opt.advertise == "" {
		opt.advertise = opt.addr
	}
	if opt.incarnation <= 0 {
		// Seconds since the epoch: monotone across restarts of the same
		// shard, so a rejoin supersedes the pre-crash lifetime without
		// stable storage.
		opt.incarnation = time.Now().Unix()
	}
	m, err := buildMember(opt, cluster.NewHTTPTransport(nil))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: m.Handler()}
	fmt.Fprintf(os.Stderr, "klocald: cluster member %d listening on %s (shard %s, %s, seeds %v)\n",
		m.Index(), ln.Addr(), opt.shard, opt.spec, opt.join)
	m.Start()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	//klocal:allow exits when Serve returns on shutdown; errc is buffered so the send never blocks
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "klocald: cluster member stopping")
	shutCtx, cancel := context.WithTimeout(context.Background(), opt.drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "klocald: listener shutdown: %v\n", err)
	}
	m.Stop()
	m.FinalReport().WriteText(os.Stderr)
	return nil
}

// smokeMember is one in-process member of the cluster smoke topology.
type smokeMember struct {
	m  *cluster.Member
	ln net.Listener
	hs *http.Server
}

func startSmokeMember(opt clusterOptions) (*smokeMember, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	opt.addr = ln.Addr().String()
	if opt.advertise == "" {
		opt.advertise = opt.addr
	}
	m, err := buildMember(opt, cluster.NewHTTPTransport(nil))
	if err != nil {
		ln.Close()
		return nil, err
	}
	sm := &smokeMember{m: m, ln: ln, hs: &http.Server{Handler: m.Handler()}}
	//klocal:allow smoke-member server; kill() closes the listener, unblocking Serve
	go sm.hs.Serve(ln)
	m.Start()
	return sm, nil
}

func (sm *smokeMember) kill() {
	sm.hs.Close()
	sm.m.Stop()
}

// runClusterSmoke is the dependency-free `make cluster-smoke` body:
// boot 3 members over real loopback TCP, wait for G_k(u) discovery to
// cover the vertex space, route across shards through HTTP, kill one
// member, assert the typed fast failure and the route-around recovery,
// rejoin, and assert full recovery — all well under 30s.
func runClusterSmoke() error {
	const (
		shards = 3
		size   = 36 // cycle; shard i owns [12i, 12i+12)
		k      = 16 // ≥ alg2's threshold before (T(36)=13) and after (24-path: T(24)=9) the crash
	)
	opt := clusterOptions{
		spec:       serve.GraphSpec{Kind: "cycle", Size: size},
		algo:       "alg2",
		k:          k,
		hello:      50 * time.Millisecond,
		deadAfter:  400 * time.Millisecond,
		peerDL:     500 * time.Millisecond,
		reqTimeout: 3 * time.Second,
		drain:      time.Second,
	}
	var members []*smokeMember
	defer func() {
		for _, sm := range members {
			if sm != nil {
				sm.kill()
			}
		}
	}()
	// Boot with every member knowing only member 0's address; gossip
	// must spread the rest.
	var addrs []string
	for i := 0; i < shards; i++ {
		o := opt
		o.shard = fmt.Sprintf("%d/%d", i, shards)
		o.incarnation = 1
		if len(addrs) > 0 {
			o.join = []string{addrs[0]}
		}
		sm, err := startSmokeMember(o)
		if err != nil {
			return err
		}
		members = append(members, sm)
		addrs = append(addrs, sm.ln.Addr().String())
	}

	waitFor := func(what string, timeout time.Duration, cond func() bool) error {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("cluster-smoke: timed out waiting for %s", what)
	}
	if err := waitFor("discovery", 10*time.Second, func() bool {
		for _, sm := range members {
			if !sm.m.Ready() {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Printf("cluster-smoke: 3 members ready on %v\n", addrs)

	routeVia := func(addr string, s, t int) (*cluster.RouteReply, error) {
		body, _ := json.Marshal(cluster.RouteRequest{S: s, T: t, Trace: true})
		resp, err := http.Post("http://"+addr+"/route", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var rep cluster.RouteReply
		if err := json.Unmarshal(raw, &rep); err != nil {
			return nil, fmt.Errorf("route %d->%d: %s: %s", s, t, resp.Status, raw)
		}
		return &rep, nil
	}

	// Cross-shard delivery through each entry member.
	for i, sm := range members {
		_ = sm
		rep, err := routeVia(addrs[i], 2, 30)
		if err != nil {
			return err
		}
		if !rep.Delivered {
			return fmt.Errorf("cluster-smoke: route 2->30 via member %d failed: %s", i, rep.Err)
		}
	}
	fmt.Println("cluster-smoke: cross-shard routing ok via every member")

	// Kill member 1 (owns 12..23) and expect a typed fast failure for a
	// destination inside the dead shard.
	members[1].kill()
	rep, err := routeVia(addrs[0], 2, 18)
	if err != nil {
		return err
	}
	if rep.Delivered {
		return fmt.Errorf("cluster-smoke: route into the dead shard unexpectedly delivered")
	}
	if rep.ErrKind == "" {
		return fmt.Errorf("cluster-smoke: dead-shard failure not typed: %s", rep.Err)
	}
	fmt.Printf("cluster-smoke: dead-shard route failed fast and typed (%s)\n", rep.ErrKind)

	// Wait for both survivors to tombstone the dead shard, then the
	// route between the surviving shards must go the long way around.
	if err := waitFor("tombstones", 10*time.Second, func() bool {
		return members[0].m.Stats().Tombstones == 12 && members[2].m.Stats().Tombstones == 12
	}); err != nil {
		return err
	}
	rep, err = routeVia(addrs[2], 10, 25)
	if err != nil {
		return err
	}
	if !rep.Delivered {
		return fmt.Errorf("cluster-smoke: post-tombstone route 10->25 failed: %s (%s)", rep.Err, rep.ErrKind)
	}
	fmt.Printf("cluster-smoke: survivors re-routed 10->25 around the dead shard in %d hops\n", rep.Hops)

	// Rejoin shard 1 under a fresh incarnation on a new port and expect
	// full recovery, including delivery into the rejoined shard.
	o := opt
	o.shard = fmt.Sprintf("1/%d", shards)
	o.incarnation = 2
	o.join = []string{addrs[0], addrs[2]}
	sm, err := startSmokeMember(o)
	if err != nil {
		return err
	}
	members[1] = sm
	if err := waitFor("rejoin", 10*time.Second, func() bool {
		for _, sm := range members {
			st := sm.m.Stats()
			if !st.Ready || st.Tombstones != 0 {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	if err := waitFor("post-rejoin delivery", 10*time.Second, func() bool {
		rep, err := routeVia(addrs[0], 2, 18)
		return err == nil && rep.Delivered
	}); err != nil {
		return err
	}
	fmt.Println("cluster-smoke: shard 1 rejoined, delivery into it recovered")
	return nil
}
