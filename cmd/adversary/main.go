// Command adversary runs the lower-bound machinery: the strategy
// enumerations of Theorems 1-3 (Tables 3 and 4) and the Theorem 4
// dilation adversary, printing defeat matrices and measured dilation.
//
// Usage:
//
//	adversary [-n 40]
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 40, "network size")
	flag.Parse()

	out := os.Stdout

	t3, err := klocal.Table3(*n)
	if err != nil {
		return err
	}
	t3.Render(out)
	fmt.Fprintf(out, "=> every strategy defeated: %v\n\n", t3.Replay.EveryStrategyDefeated())

	t4, err := klocal.Table4(*n)
	if err != nil {
		return err
	}
	t4.Render(out)
	fmt.Fprintf(out, "=> every strategy defeated: %v\n\n", t4.Replay.EveryStrategyDefeated())

	r3, err := klocal.ReplayTheorem3(*n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Theorem 3 — predecessor-oblivious directions on the two-path family (n=%d, r=%d)\n",
		*n, r3.Family.R)
	for d := 0; d < 2; d++ {
		fmt.Fprintf(out, "  direction %d: G1=%v G2=%v\n", d, r3.Outcomes[d][0], r3.Outcomes[d][1])
	}
	fmt.Fprintf(out, "=> every strategy defeated: %v\n\n", r3.EveryStrategyDefeated())

	e1, err := klocal.ExhaustiveTheorem1(*n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Theorem 1, exhaustively — ALL %d degree-4 hub functions vs %d witness graphs: %d/%d defeated\n",
		e1.Functions, e1.Instances, e1.Defeated, e1.Functions)
	e2, err := klocal.ExhaustiveTheorem2(*n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Theorem 2, exhaustively — ALL %d hub strategies vs %d witness graphs: %d/%d defeated\n",
		e2.Strategies, e2.Instances, e2.Defeated, e2.Strategies)
	e3, err := klocal.ExhaustiveTheorem3(12)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Theorem 3, exhaustively (n=12) — ALL %d port assignments: %d/%d defeated\n\n",
		e3.Assignments, e3.Defeated, e3.Assignments)

	fmt.Fprintf(out, "Theorem 4 — dilation adversary (path, dist(s,t)=k+1, bound 2n-3k-1)\n")
	for _, alg := range []klocal.Algorithm{klocal.Algorithm1(), klocal.Algorithm1B(), klocal.Algorithm2()} {
		k := alg.MinK(*n)
		inst, err := klocal.DilationPath(*n, k)
		if err != nil {
			return err
		}
		res := klocal.Route(alg, inst.G, k, inst.S, inst.T)
		fmt.Fprintf(out, "  %-12s k=%-3d route=%-5d bound=%-5d dilation=%-7.3f S(k)=%.3f\n",
			alg.Name, k, res.Len(), 2*(*n)-3*k-1, res.Dilation(), klocal.LowerBoundDilation(*n, k))
	}
	return nil
}
