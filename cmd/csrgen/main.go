// Command csrgen generates, converts, and inspects the binary CSR graph
// files that back million-node routing runs (internal/bigraph,
// DESIGN.md §12).
//
// Usage:
//
//	csrgen -kind grid -rows 1000 -cols 1000 -out grid.csr
//	csrgen -kind tree -n 1000000 -out tree.csr
//	csrgen -kind regular -n 1000000 -deg 4 -seed 7 -out reg.csr
//	csrgen -kind convert -in edges.txt.gz -out g.csr
//	csrgen -stats g.csr
//
// Generators stream through the two-pass CSR builder, so peak memory is
// the CSR itself plus O(n) bookkeeping — no map-based graph is ever
// built. -stats prints the vertex/edge counts and the bytes/vertex
// footprint of an existing .csr (or edge-list) file.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
)

func main() {
	var (
		kind  = flag.String("kind", "", "what to build: grid|tree|regular|convert")
		rows  = flag.Int("rows", 0, "grid rows")
		cols  = flag.Int("cols", 0, "grid cols")
		n     = flag.Int("n", 0, "vertex count (tree, regular)")
		deg   = flag.Int("deg", 4, "target degree (regular; even)")
		seed  = flag.Int64("seed", 1, "random seed (regular)")
		in    = flag.String("in", "", "input edge list (convert): .txt or .txt.gz")
		out   = flag.String("out", "", "output .csr path")
		stats = flag.String("stats", "", "print stats for an existing graph file and exit")
	)
	flag.Parse()

	if *stats != "" {
		if err := printStats(*stats); err != nil {
			fail(err)
		}
		return
	}

	var (
		c   *bigraph.CSR
		err error
	)
	switch *kind {
	case "grid":
		c, err = gen.GridCSR(*rows, *cols)
	case "tree":
		c, err = gen.TreeCSR(*n)
	case "regular":
		c, err = gen.RandomRegularCSR(rand.New(rand.NewSource(*seed)), *n, *deg)
	case "convert":
		if *in == "" {
			err = fmt.Errorf("convert needs -in")
		} else {
			c, err = bigraph.LoadEdgeList(*in)
		}
	case "":
		err = fmt.Errorf("one of -kind grid|tree|regular|convert or -stats is required")
	default:
		err = fmt.Errorf("unknown -kind %q (grid|tree|regular|convert)", *kind)
	}
	if err != nil {
		fail(err)
	}
	if *out == "" {
		fail(fmt.Errorf("-out is required"))
	}
	if err := c.WriteFile(*out); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: n=%d m=%d (%d bytes, %.1f bytes/vertex)\n",
		*out, c.N(), c.M(), c.Bytes(), bytesPerVertex(c))
}

func printStats(path string) error {
	c, err := bigraph.LoadFile(path)
	if err != nil {
		return err
	}
	defer c.Close()
	mapped := "heap"
	if c.Mapped() {
		mapped = "mmap"
	}
	fmt.Printf("%s: n=%d m=%d bytes=%d bytes/vertex=%.1f backing=%s\n",
		path, c.N(), c.M(), c.Bytes(), bytesPerVertex(c), mapped)
	return nil
}

func bytesPerVertex(c *bigraph.CSR) float64 {
	if c.N() == 0 {
		return 0
	}
	return float64(c.Bytes()) / float64(c.N())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "csrgen:", err)
	os.Exit(1)
}
