// Command loadgen stress-tests the routing algorithms under realistic
// traffic: it generates a workload of (s, t) requests, routes them
// concurrently through the traffic engine's worker pool, and prints a
// metrics report (delivery rate, throughput, latency/hop/stretch
// histograms, view-cache activity).
//
// Usage:
//
//	loadgen [-algo alg2] [-workload zipf] [-n 100000] [-workers 8]
//	        [-duration 0] [-report text]
//	        [-graph lollipop] [-size 48] [-k 0] [-seed 1] [-p 0.1]
//	        [-zipf-skew 1.2] [-queue 0] [-max-steps 0] [-cache-cap 0]
//	        [-prewarm]
//
// Workloads: uniform (random pairs), zipf (skewed destinations),
// hotspot (destinations skewed by approximate betweenness — traffic
// concentrating on the "core routers"), allpairs (exhaustive
// coverage), adversarial (the Theorem 4 dilation path from
// internal/adversary — overrides -graph/-size with the extremal
// instance).
//
// -churn rate sustains topology deltas (edge flaps, vertex arrivals
// and departures) at the given frequency while traffic routes: each
// delta is applied copy-on-write, the snapshot re-derives only the
// views within distance k of the touched endpoints, and the engine
// hot-swaps generations without draining. The run then reports
// per-delta invalidation counts and swap latencies alongside the
// traffic metrics. Requests that race a departure may legitimately
// fail, so delivery below 1.0 under churn is not by itself a bug.
//
// -n bounds the request count, -duration the wall time; with both set
// the run stops at whichever comes first. -k 0 uses the algorithm's own
// threshold T(n). -report json emits the raw merged report.
//
// -graph also accepts a *.json file holding a serve.GraphSpec — or a
// full klocalcheck case, whose algorithm and locality then become the
// defaults for -algo/-k when those are not given explicitly — so
// minimized counterexamples can be stress-tested under load:
//
//	loadgen -graph finding.json -workload allpairs -n 10000
//
// -graph-file loads an on-disk topology instead — a binary .csr file
// (mmap'd; the million-node path, see DESIGN.md §12) or an edge list
// (.txt, .txt.gz). Store-backed runs route as usual but report no
// stretch/dist metrics (exact distances need the full topology), and
// require an explicit small -k: the thresholds are Θ(n). Below
// threshold, pairs whose destination never enters the k-view wander
// until the step budget — cap it with -max-steps (≈2k) or undeliverable
// pairs dominate the run:
//
//	csrgen -kind grid -rows 1000 -cols 1000 -out grid.csr
//	loadgen -graph-file grid.csr -k 8 -max-steps 16 -n 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"klocal"
	"klocal/internal/fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName   = flag.String("algo", "alg2", "algorithm: alg1|alg1b|alg2|alg3|righthand|oracle|randomwalk")
		workload  = flag.String("workload", "zipf", "workload: uniform|zipf|hotspot|allpairs|adversarial")
		n         = flag.Int("n", 100000, "number of requests (0 = unbounded, needs -duration)")
		workers   = flag.Int("workers", 0, "routing workers (0 = GOMAXPROCS)")
		duration  = flag.Duration("duration", 0, "wall-clock bound for the run (0 = none)")
		report    = flag.String("report", "text", "report format: text|json")
		graphKind = flag.String("graph", "lollipop", "topology: lollipop|cycle|path|grid|spider|wheel|barbell|complete|random|tree, or a GraphSpec/case *.json file")
		graphFile = flag.String("graph-file", "", "on-disk topology, routed store-backed: binary .csr (mmap'd) or edge list .txt/.txt.gz (overrides -graph)")
		size      = flag.Int("size", 48, "number of nodes")
		k         = flag.Int("k", 0, "locality parameter (0 = algorithm threshold)")
		seed      = flag.Int64("seed", 1, "seed for graph generation and the workload")
		p         = flag.Float64("p", 0.1, "extra-edge probability for -graph random")
		zipfSkew  = flag.Float64("zipf-skew", klocal.ZipfSkew, "Zipf exponent for -workload zipf")
		queue     = flag.Int("queue", 0, "request queue depth (0 = 4×workers)")
		maxSteps  = flag.Int("max-steps", 0, "per-walk step budget (0 = simulator default, 8n+16; set ~2k when routing below threshold at scale)")
		cacheCap  = flag.Int("cache-cap", 0, "max cached preprocessed views (0 = unbounded)")
		prewarm   = flag.Bool("prewarm", false, "precompute every vertex's view before routing")
		churnRate = flag.Float64("churn", 0, "sustained topology deltas per second during the run (0 = off; needs an in-memory graph)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var fileGraph *klocal.Graph
	if strings.HasSuffix(*graphKind, ".json") {
		c, err := fuzz.ReadCase(*graphKind)
		if err != nil {
			return err
		}
		if fileGraph, err = c.GraphSpec.Build(); err != nil {
			return err
		}
		// The case's routing context fills any flag left at its default.
		if c.Algo != "" && !explicit["algo"] {
			*algName = c.Algo
		}
		if c.K > 0 && !explicit["k"] {
			*k = c.K
		}
	}

	var alg klocal.Algorithm
	switch *algName {
	case "alg1":
		alg = klocal.Algorithm1()
	case "alg1b":
		alg = klocal.Algorithm1B()
	case "alg2":
		alg = klocal.Algorithm2()
	case "alg3":
		alg = klocal.Algorithm3()
	case "righthand":
		alg = klocal.TreeRightHand()
	case "oracle":
		alg = klocal.ShortestPathOracle()
	case "randomwalk":
		alg = klocal.RandomWalk(*seed)
	default:
		// The fuzzer's registry covers the rest — notably broken2, so
		// klocalcheck findings replay without translation.
		mk, ok := fuzz.Algorithms()[*algName]
		if !ok {
			return fmt.Errorf("unknown -algo %q", *algName)
		}
		alg = mk()
	}

	rng := klocal.NewRand(*seed)
	var st klocal.GraphStore
	var g *klocal.Graph
	var w klocal.TrafficWorkload
	if *graphFile != "" {
		if *workload == "adversarial" {
			return fmt.Errorf("-workload adversarial builds its own extremal instance; it cannot run on -graph-file")
		}
		c, err := klocal.LoadGraphFile(*graphFile)
		if err != nil {
			return err
		}
		defer c.Close()
		st = c
		if *workload == "zipf" {
			w = klocal.ZipfStoreWorkload(rng, st, *zipfSkew)
		} else if w, err = klocal.NewTrafficWorkloadStore(*workload, rng, st); err != nil {
			return err
		}
	} else if *workload == "adversarial" {
		kk := *k
		if kk == 0 {
			kk = alg.MinK(*size)
			if kk == 0 {
				kk = (*size + 3) / 4
			}
		}
		var err error
		g, w, err = klocal.AdversarialWorkload(*size, kk)
		if err != nil {
			return err
		}
		*k = kk
	} else if fileGraph != nil {
		g = fileGraph
		var err error
		if *workload == "zipf" {
			w = klocal.ZipfWorkload(rng, g, *zipfSkew)
		} else if w, err = klocal.NewTrafficWorkload(*workload, rng, g); err != nil {
			return err
		}
	} else {
		switch *graphKind {
		case "lollipop":
			g = klocal.Lollipop(*size-*size/3, *size/3)
		case "cycle":
			g = klocal.Cycle(*size)
		case "path":
			g = klocal.Path(*size)
		case "grid":
			side := 1
			for side*side < *size {
				side++
			}
			g = klocal.Grid(side, side)
		case "spider":
			g = klocal.Spider(4, (*size-1)/4)
		case "wheel":
			g = klocal.Wheel(*size)
		case "barbell":
			c := (*size - 2) / 2
			g = klocal.Barbell(c, *size-2*c)
		case "complete":
			g = klocal.Complete(*size)
		case "random":
			g = klocal.RandomConnected(rng, *size, *p)
		case "tree":
			g = klocal.RandomTree(rng, *size)
		default:
			return fmt.Errorf("unknown -graph %q", *graphKind)
		}
		var err error
		if *workload == "zipf" {
			w = klocal.ZipfWorkload(rng, g, *zipfSkew)
		} else if w, err = klocal.NewTrafficWorkload(*workload, rng, g); err != nil {
			return err
		}
	}

	if st == nil {
		st = g // every generator branch materialized a graph
	}

	opts := klocal.SnapshotOptions{Cache: klocal.CacheOptions{Capacity: *cacheCap}}
	if *prewarm {
		opts.Prewarm = -1
	}
	warmStart := time.Now()
	snap, err := klocal.NewSnapshotStore(st, *k, alg, opts)
	if err != nil {
		return err
	}
	if *prewarm {
		fmt.Fprintf(os.Stderr, "prewarmed %d views in %v\n",
			snap.CacheStats().Size, time.Since(warmStart).Round(time.Millisecond))
	}

	if *report == "text" {
		topo := *graphKind
		if *graphFile != "" {
			topo = *graphFile
		}
		fmt.Printf("loadgen: %s on %s n=%d m=%d, k=%d (threshold %d), workload %s, %d requests",
			alg.Name, topo, st.N(), st.M(), snap.K(), alg.MinK(st.N()), w.Name, *n)
		if *duration > 0 {
			fmt.Printf(", duration %v", *duration)
		}
		fmt.Println()
	}

	eng := klocal.NewEngine(snap, klocal.EngineConfig{Workers: *workers, QueueDepth: *queue, MaxSteps: *maxSteps})

	// The churner hot-swaps snapshots under the running traffic: apply
	// one delta copy-on-write, derive the next snapshot (only views in
	// the k-radius dirty set recompute), publish it atomically. Its own
	// metrics shard records the per-delta cost.
	var churnMet *klocal.MetricsShard
	var churnStop, churnDone chan struct{}
	if *churnRate > 0 {
		if g == nil {
			return fmt.Errorf("-churn needs an in-memory graph, not -graph-file")
		}
		if *workload == "adversarial" {
			return fmt.Errorf("-churn would destroy the adversarial instance's extremal structure")
		}
		churnMet = klocal.NewMetricsShard()
		churnStop = make(chan struct{})
		churnDone = make(chan struct{})
		go func(cur *klocal.Graph, cs *klocal.Snapshot) {
			defer close(churnDone)
			sched := klocal.NewChurnScheduler(cur, *seed+1)
			tick := time.NewTicker(time.Duration(float64(time.Second) / *churnRate))
			defer tick.Stop()
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
				}
				d := sched.Next()
				t0 := time.Now()
				post, dirty, err := klocal.ApplyDelta(cur, d, cs.K())
				if err != nil {
					// The scheduler only emits deltas valid against its
					// own mirror, which tracks cur exactly.
					fmt.Fprintf(os.Stderr, "loadgen: churn: %v\n", err)
					return
				}
				next, err := cs.Incremental(post, dirty)
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: churn: %v\n", err)
					return
				}
				eng.SwapSnapshot(next)
				churnMet.Count("deltas", 1)
				churnMet.Observe("invalidated_views", int64(len(dirty)))
				churnMet.Observe("swap_ns", time.Since(t0).Nanoseconds())
				cur, cs = post, next
			}
		}(g, snap)
	}

	start := time.Now()
	runErr := eng.RunWorkload(w, *n, *duration)
	if churnStop != nil {
		close(churnStop)
		<-churnDone
	}
	if runErr != nil {
		return runErr
	}
	elapsed := time.Since(start)

	rep := eng.Report()
	switch *report {
	case "json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
		if churnMet != nil {
			return churnMet.Snapshot().WriteJSON(os.Stdout)
		}
		return nil
	case "text":
		rep.WriteText(os.Stdout)
		if churnMet != nil {
			fmt.Printf("churn: %d deltas applied, %.1f views invalidated per delta (p99 %v swap)\n",
				churnMet.Counter("deltas"),
				churnMet.Histogram("invalidated_views").Mean(),
				time.Duration(churnMet.Histogram("swap_ns").Quantile(0.99)).Round(time.Microsecond))
		}
		fmt.Printf("elapsed                  %v\n", elapsed.Round(time.Millisecond))
		if rep.Gauge("delivery_rate") == 1.0 {
			fmt.Println("delivery: ALL messages delivered")
		} else {
			fmt.Printf("delivery: INCOMPLETE (%0.4f)\n", rep.Gauge("delivery_rate"))
		}
		return nil
	default:
		return fmt.Errorf("unknown -report %q (text|json)", *report)
	}
}
