// Command verify re-establishes the paper's positive theorems at a
// user-chosen scale: exhaustive over all connected labelled graphs of a
// given size, or over random populations with adversarial labels, using
// parallel workers.
//
// Usage:
//
//	verify -mode exhaustive -alg alg1 -n 6 [-k 0] [-workers 0]
//	verify -mode random -alg alg2 -count 200 -min 10 -max 30 [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"klocal"
	"klocal/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode    = flag.String("mode", "exhaustive", "exhaustive|random")
		algName = flag.String("alg", "alg1", "alg1|alg1b|alg2|alg3")
		n       = flag.Int("n", 6, "graph size for exhaustive mode (<= 8)")
		k       = flag.Int("k", 0, "locality (0 = threshold T(n))")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		count   = flag.Int("count", 200, "graphs for random mode")
		minN    = flag.Int("min", 10, "min size for random mode")
		maxN    = flag.Int("max", 30, "max size for random mode")
		seed    = flag.Int64("seed", 1, "seed for random mode")
	)
	flag.Parse()

	var alg klocal.Algorithm
	shortest := false
	switch *algName {
	case "alg1":
		alg = klocal.Algorithm1()
	case "alg1b":
		alg = klocal.Algorithm1B()
	case "alg2":
		alg = klocal.Algorithm2()
	case "alg3":
		alg = klocal.Algorithm3()
		shortest = true
	default:
		return fmt.Errorf("unknown -alg %q", *algName)
	}
	cfg := verify.Config{
		Algorithm:       alg,
		K:               *k,
		Workers:         *workers,
		MaxFailures:     10,
		RequireShortest: shortest,
	}

	start := time.Now()
	var (
		rep *verify.Report
		err error
	)
	switch *mode {
	case "exhaustive":
		fmt.Printf("verifying %s exhaustively on all connected graphs with n=%d (k=%s)...\n",
			alg.Name, *n, kLabel(*k))
		rep, err = verify.Exhaustive(cfg, *n)
	case "random":
		fmt.Printf("verifying %s on %d random graphs, n in [%d,%d] (k=%s)...\n",
			alg.Name, *count, *minN, *maxN, kLabel(*k))
		rep, err = verify.RandomSample(cfg, *seed, *count, *minN, *maxN)
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s in %v\n", rep, time.Since(start).Round(time.Millisecond))
	if !rep.OK() {
		for i, f := range rep.Failures {
			if i == 5 {
				fmt.Printf("... and %d more\n", len(rep.Failures)-5)
				break
			}
			fmt.Printf("FAILURE: s=%d t=%d outcome=%v err=%v on %v\n", f.S, f.T, f.Outcome, f.Err, f.G)
		}
		return fmt.Errorf("verification failed")
	}
	fmt.Println("OK: the guarantee holds on everything checked")
	return nil
}

func kLabel(k int) string {
	if k == 0 {
		return "T(n)"
	}
	return fmt.Sprint(k)
}
