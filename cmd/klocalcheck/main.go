// Command klocalcheck is the differential fuzzer for the routing
// theorems: it draws random scenarios (graph family, adversarial label
// permutation, endpoints, locality sampled around the Table 1
// thresholds) and checks every registered property — guaranteed
// delivery at k ≥ T(n), the Table 2 dilation bounds, walk validity,
// determinism, relabelling robustness, and engine/netsim differential
// agreement. Violations are delta-debugged to minimal reproducers and
// reported as serve.GraphSpec-compatible JSON that `routesim -graph
// file.json`, `loadgen -graph file.json` and klocald's PUT /graph
// replay directly.
//
// Usage:
//
//	klocalcheck [-algos all] [-props all] [-budget 30s | -iters 5000]
//	            [-workers 0] [-seed 1] [-max-n 0] [-out findings.json]
//	            [-no-shrink] [-shrink-budget 0]
//	klocalcheck -replay internal/fuzz/testdata/corpus
//
// The exit status is 1 when any finding survives (or any replayed
// corpus case fails), so the command slots into CI as-is; `make
// fuzz-smoke` runs a 30-second budget over all properties. The
// deliberately defective variant is selectable with -algos broken2 to
// watch the pipeline find and shrink a real violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"klocal/internal/fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "klocalcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algos        = flag.String("algos", "all", "comma-separated algorithms: alg1|alg1b|alg2|alg3|broken2 (all = the four real ones)")
		props        = flag.String("props", "all", "comma-separated properties: delivery|dilation|walk|determinism|relabel|differential")
		budget       = flag.Duration("budget", 0, "wall-clock budget for scenario generation (0 = count-bounded)")
		iters        = flag.Int64("iters", 0, "scenario count (0 with -budget 0 means 1000)")
		workers      = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed         = flag.Int64("seed", 1, "base seed; scenario #i is a pure function of (seed, i)")
		maxN         = flag.Int("max-n", 0, "cap generated graph sizes (0 = the families' own caps)")
		out          = flag.String("out", "", "write the full JSON report (findings and reproducers) to this file")
		noShrink     = flag.Bool("no-shrink", false, "skip counterexample minimization")
		shrinkBudget = flag.Int("shrink-budget", 0, "candidate evaluations per shrink (0 = default)")
		replay       = flag.String("replay", "", "replay every *.json case in this directory instead of fuzzing")
	)
	flag.Parse()

	propList, err := fuzz.ResolveProperties(*props)
	if err != nil {
		return err
	}
	if *replay != "" {
		return runReplay(*replay, propList)
	}

	algoList, err := fuzz.ResolveAlgorithms(*algos)
	if err != nil {
		return err
	}
	rep, err := fuzz.Run(fuzz.Config{
		Algos:         algoList,
		Props:         propList,
		Budget:        *budget,
		Iterations:    *iters,
		Workers:       *workers,
		Seed:          *seed,
		MaxN:          *maxN,
		DisableShrink: *noShrink,
		ShrinkBudget:  *shrinkBudget,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if rep.OK() {
		return nil
	}
	for _, f := range rep.Findings {
		fmt.Printf("FAIL %s/%s (hit %d times, first on n=%d): %s\n",
			f.Algo, f.Property, f.Count, f.OriginalN, f.Error)
		if f.Shrunk != nil {
			data, err := json.Marshal(f.Shrunk)
			if err != nil {
				return err
			}
			fmt.Printf("  minimized to n=%d: %s\n", f.ShrunkN, data)
			fmt.Printf("  reproduces as: %s\n", f.ShrunkError)
		}
	}
	return fmt.Errorf("%d property violation(s) after %d scenarios in %v",
		len(rep.Findings), rep.Scenarios, rep.Elapsed.Round(time.Millisecond))
}

// runReplay re-checks a corpus directory and fails on any violation.
func runReplay(dir string, props []fuzz.Property) error {
	cases, err := fuzz.ReadCorpus(dir)
	if err != nil {
		return err
	}
	if len(cases) == 0 {
		return fmt.Errorf("no *.json cases under %s", dir)
	}
	failures := fuzz.ReplayCorpus(cases, props)
	if len(failures) == 0 {
		fmt.Printf("replayed %d cases, %d properties each: ok\n", len(cases), len(props))
		return nil
	}
	names := make([]string, 0, len(failures))
	for name := range failures {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, e := range failures[name] {
			fmt.Printf("FAIL %s: %v\n", name, e)
		}
	}
	return fmt.Errorf("%d of %d corpus cases failed", len(failures), len(cases))
}
