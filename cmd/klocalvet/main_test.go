package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"klocal/internal/analysis"
)

// TestJSONRecordShape pins the -json record contract: one line per
// finding, stable field names, values round-tripping exactly. CI's lint
// job and editor tooling both parse this shape.
func TestJSONRecordShape(t *testing.T) {
	d := analysis.Diagnostic{
		Analyzer: "kalloc",
		Pos:      token.Position{Filename: "internal/route/route.go", Line: 42, Column: 7},
		Message:  `hot path allocates with make; size caller-owned scratch at bind time instead`,
	}
	rec, err := formatJSON(d)
	if err != nil {
		t.Fatalf("formatJSON: %v", err)
	}
	if strings.ContainsAny(rec, "\n\r") {
		t.Fatalf("record is not a single line: %q", rec)
	}
	var got finding
	if err := json.Unmarshal([]byte(rec), &got); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, rec)
	}
	want := finding{Analyzer: "kalloc", File: "internal/route/route.go", Line: 42, Col: 7, Message: d.Message}
	if got != want {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The field names are the contract, not just the struct tags.
	var fields map[string]any
	if err := json.Unmarshal([]byte(rec), &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("record is missing field %q: %s", key, rec)
		}
	}
}

// TestGitHubAnnotation pins the ::error workflow-command form and its
// payload escaping.
func TestGitHubAnnotation(t *testing.T) {
	d := analysis.Diagnostic{
		Analyzer: "klockorder",
		Pos:      token.Position{Filename: "internal/engine/engine.go", Line: 210, Column: 3},
		Message:  "50% held\nsecond line",
	}
	got := formatGitHub(d)
	want := "::error file=internal/engine/engine.go,line=210,col=3,title=klockorder::50%25 held%0Asecond line"
	if got != want {
		t.Errorf("annotation mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestJSONOverFixture runs the real suite over a seeded fixture package
// and checks that every finding renders as one well-formed JSON record —
// the end-to-end shape CI consumes.
func TestJSONOverFixture(t *testing.T) {
	pkg, err := analysis.NewLoader().LoadDir(
		"klocal/internal/analysis/testdata/src/alloc",
		"../../internal/analysis/testdata/src/alloc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analysis.Run(analysis.All(), []*analysis.Package{pkg})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings; the alloc fixture should seed several")
	}
	for _, d := range diags {
		rec, err := formatJSON(d)
		if err != nil {
			t.Fatalf("formatJSON(%v): %v", d, err)
		}
		var got finding
		if err := json.Unmarshal([]byte(rec), &got); err != nil {
			t.Errorf("malformed record %q: %v", rec, err)
			continue
		}
		if got.Analyzer == "" || got.File == "" || got.Line <= 0 || got.Message == "" {
			t.Errorf("incomplete record: %s", rec)
		}
	}
}
