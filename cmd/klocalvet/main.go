// Command klocalvet is the repository's model-contract checker: a
// multichecker over the internal/analysis suite that mechanically
// enforces the routing-model obligations of PAPER.md §2 — k-locality,
// determinism, statelessness — plus the concurrency hygiene the
// simulator's hot paths rely on.
//
// Usage:
//
//	klocalvet [-list] [-v] [packages...]
//
// With no package patterns it checks ./... relative to the current
// directory. -list prints the analyzers and exits. Exit status is 0
// when the tree is clean, 1 when any analyzer reported a diagnostic,
// and 2 when the packages failed to load or type-check.
//
// Deliberate exceptions are suppressed in source with a documented
// directive on or directly above the flagged line:
//
//	//klocal:allow <reason>
//
// See `go doc klocal/internal/analysis` for the analyzer catalogue and
// the //klocal:decision opt-in marker.
package main

import (
	"flag"
	"fmt"
	"os"

	"klocal/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "report the number of packages checked")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klocalvet: %v\n", err)
		return 2
	}

	diags := analysis.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "klocalvet: %d packages, %d analyzers, %d findings\n",
			len(pkgs), len(analyzers), len(diags))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
