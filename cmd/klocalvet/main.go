// Command klocalvet is the repository's model-contract checker: a
// multichecker over the internal/analysis suite that mechanically
// enforces the routing-model obligations of PAPER.md §2 — k-locality,
// determinism, statelessness — plus the concurrency and hot-path
// hygiene the simulator's scale subsystems rely on (no allocation on
// //klocal:hotpath code, no mmap view escapes, no cyclic lock orders,
// no fire-and-forget goroutines).
//
// Usage:
//
//	klocalvet [-list] [-v] [-json] [-github] [-stale=false] [packages...]
//
// With no package patterns it checks ./... relative to the current
// directory. -list prints the analyzers and exits. Exit status is 0
// when the tree is clean, 1 when any analyzer reported a diagnostic,
// and 2 when the packages failed to load or type-check.
//
// Output formats: the default is the conventional file:line:col text
// form. -json emits one JSON record per finding, one per line
// ({"analyzer","file","line","col","message"}), for tooling. -github
// emits GitHub Actions workflow annotations (::error file=...), so a CI
// run surfaces findings inline on the pull-request diff.
//
// Deliberate exceptions are suppressed in source with a documented
// directive on or directly above the flagged line:
//
//	//klocal:allow <reason>
//
// Because klocalvet always runs the full suite, stale-allow reporting
// is on by default: a //klocal:allow whose diagnostic no longer fires
// is itself reported, so suppressions cannot outlive the code they
// excuse. -stale=false disables that (useful while bisecting).
//
// See `go doc klocal/internal/analysis` for the analyzer catalogue and
// the //klocal:decision / //klocal:hotpath opt-in markers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"klocal/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "report the number of packages checked")
	jsonOut := flag.Bool("json", false, "emit findings as JSON records, one per line")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	stale := flag.Bool("stale", true, "report //klocal:allow directives whose diagnostic no longer fires")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klocalvet: %v\n", err)
		return 2
	}

	diags := analysis.RunWithOptions(analyzers, pkgs, analysis.Options{StaleAllows: *stale})
	for _, d := range diags {
		switch {
		case *jsonOut:
			printJSON(d)
		case *github:
			printGitHub(d)
		default:
			fmt.Println(d)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "klocalvet: %d packages, %d analyzers, %d findings\n",
			len(pkgs), len(analyzers), len(diags))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// finding is the stable -json record shape; tooling depends on these
// field names.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func printJSON(d analysis.Diagnostic) {
	rec, err := formatJSON(d)
	if err != nil { // a flat struct of strings and ints cannot fail
		fmt.Fprintf(os.Stderr, "klocalvet: encoding finding: %v\n", err)
		return
	}
	fmt.Println(rec)
}

func formatJSON(d analysis.Diagnostic) (string, error) {
	rec, err := json.Marshal(finding{
		Analyzer: d.Analyzer,
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	})
	return string(rec), err
}

// printGitHub renders d as a GitHub Actions workflow command, which the
// runner turns into an inline annotation on the diff. Message payloads
// must %-escape newlines and the command characters.
func printGitHub(d analysis.Diagnostic) {
	fmt.Println(formatGitHub(d))
}

func formatGitHub(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, githubEscape(d.Message))
}

func githubEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}
