// Command routesim routes a single message on a generated topology and
// prints the hop-by-hop trace.
//
// Usage:
//
//	routesim [-graph random] [-n 24] [-k 0] [-alg alg1] [-s 0] [-t -1]
//	         [-seed 1] [-p 0.1] [-distributed]
//	         [-loss 0.2] [-crash 3,7] [-faultseed 1] [-degrade]
//	         [-pairs 1] [-workers 0]
//
// With -k 0 the algorithm's own threshold T(n) is used; -t -1 picks the
// vertex farthest from s. -distributed routes through the concurrent
// message-passing simulator (with k-hop discovery) instead of the
// single-threaded walk.
//
// -graph also accepts a *.json file holding a serve.GraphSpec — or a
// full klocalcheck case, whose algorithm, locality and endpoints then
// become the defaults for any of -alg/-k/-s/-t not given explicitly —
// so minimized counterexamples replay directly:
//
//	routesim -graph finding.json
//
// -graph-file loads an on-disk topology — a binary .csr file or an edge
// list (.txt, .txt.gz) — and materializes it for tracing. routesim needs
// the full graph (hop annotations, exact distances, the distributed
// simulator), so this is for small and medium instances; route
// million-node files store-backed through loadgen or klocald instead.
//
// With -pairs > 1 routesim routes a batch of uniformly sampled (s, t)
// pairs instead of one: fault-free batches go through the traffic
// engine's worker pool (-workers goroutines, 0 = GOMAXPROCS) and print a
// metrics report plus the worst-stretch route's trace; with fault flags
// set, the batch is replayed through the faulty distributed simulator
// and reports delivery/retry statistics under the same fault plan
// (-s/-t are ignored in batch mode).
//
// The fault flags inject deterministic faults into the distributed
// simulator (and imply -distributed): -loss drops each transmission
// independently with the given probability, -crash takes a
// comma-separated list of vertices to crash before discovery, and
// -faultseed picks the injector's random stream. -degrade skips the
// single-message run and instead prints the loss × locality degradation
// sweep (delivery rate, discovery overhead, and stretch versus the
// fault-free baseline).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"klocal"
	"klocal/internal/fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphKind   = flag.String("graph", "random", "topology: random|tree|path|cycle|grid|spider|lollipop|complete, or a GraphSpec/case *.json file")
		graphFile   = flag.String("graph-file", "", "on-disk topology to materialize and trace: binary .csr or edge list .txt/.txt.gz (overrides -graph)")
		n           = flag.Int("n", 24, "number of nodes")
		k           = flag.Int("k", 0, "locality parameter (0 = algorithm threshold)")
		algName     = flag.String("alg", "alg1", "algorithm: alg1|alg1b|alg2|alg3|righthand|oracle|randomwalk")
		sFlag       = flag.Int("s", 0, "origin vertex label")
		tFlag       = flag.Int("t", -1, "destination vertex label (-1 = farthest from s)")
		seed        = flag.Int64("seed", 1, "random seed")
		p           = flag.Float64("p", 0.1, "extra-edge probability for -graph random")
		distributed = flag.Bool("distributed", false, "route through the concurrent network simulator")
		loss        = flag.Float64("loss", 0, "per-transmission drop probability (implies -distributed)")
		crashList   = flag.String("crash", "", "comma-separated vertices to crash before discovery (implies -distributed)")
		faultSeed   = flag.Uint64("faultseed", 1, "seed for the deterministic fault injector")
		degrade     = flag.Bool("degrade", false, "print the loss × locality degradation sweep instead of routing")
		pairs       = flag.Int("pairs", 1, "route a batch of this many sampled (s, t) pairs instead of one")
		workers     = flag.Int("workers", 0, "engine workers for batch mode (0 = GOMAXPROCS)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	rng := klocal.NewRand(*seed)
	var g *klocal.Graph
	if *graphFile != "" {
		c, err := klocal.LoadGraphFile(*graphFile)
		if err != nil {
			return err
		}
		g = c.ToGraph()
		c.Close()
		*graphKind = *graphFile // label reports with the file name
	} else if strings.HasSuffix(*graphKind, ".json") {
		c, err := fuzz.ReadCase(*graphKind)
		if err != nil {
			return err
		}
		g, err = c.GraphSpec.Build()
		if err != nil {
			return err
		}
		// The case's routing context fills any flag left at its default.
		if c.Algo != "" && !explicit["alg"] {
			*algName = c.Algo
		}
		if c.K > 0 && !explicit["k"] {
			*k = c.K
		}
		if c.S != c.T { // bare GraphSpecs carry no endpoints
			if !explicit["s"] {
				*sFlag = int(c.S)
			}
			if !explicit["t"] {
				*tFlag = int(c.T)
			}
		}
	} else {
		switch *graphKind {
		case "random":
			g = klocal.RandomConnected(rng, *n, *p)
		case "tree":
			g = klocal.RandomTree(rng, *n)
		case "path":
			g = klocal.Path(*n)
		case "cycle":
			g = klocal.Cycle(*n)
		case "grid":
			side := 1
			for side*side < *n {
				side++
			}
			g = klocal.Grid(side, side)
		case "spider":
			g = klocal.Spider(4, (*n-1)/4)
		case "lollipop":
			g = klocal.Lollipop(*n-*n/3, *n/3)
		case "complete":
			g = klocal.Complete(*n)
		default:
			return fmt.Errorf("unknown -graph %q", *graphKind)
		}
	}

	var alg klocal.Algorithm
	switch *algName {
	case "alg1":
		alg = klocal.Algorithm1()
	case "alg1b":
		alg = klocal.Algorithm1B()
	case "alg2":
		alg = klocal.Algorithm2()
	case "alg3":
		alg = klocal.Algorithm3()
	case "righthand":
		alg = klocal.TreeRightHand()
	case "oracle":
		alg = klocal.ShortestPathOracle()
	case "randomwalk":
		alg = klocal.RandomWalk(*seed)
	default:
		// The fuzzer's registry covers the rest — notably broken2, so
		// klocalcheck findings replay without translation.
		mk, ok := fuzz.Algorithms()[*algName]
		if !ok {
			return fmt.Errorf("unknown -alg %q", *algName)
		}
		alg = mk()
	}

	kk := *k
	if kk == 0 {
		kk = alg.MinK(g.N())
		if kk == 0 {
			kk = 1
		}
	}

	if *degrade {
		res, err := klocal.Degrade(*seed, *n, alg, []float64{0, 0.05, 0.1, 0.2}, []int{kk}, 20)
		if err != nil {
			return err
		}
		res.Render(os.Stdout)
		return nil
	}

	var crashes []klocal.Crash
	for _, field := range strings.Split(*crashList, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.Atoi(field)
		if err != nil {
			return fmt.Errorf("bad -crash entry %q: %w", field, err)
		}
		crashes = append(crashes, klocal.Crash{Node: klocal.Vertex(v)})
	}
	faulty := *loss > 0 || len(crashes) > 0
	if faulty && !*distributed {
		fmt.Println("(fault flags imply -distributed)")
		*distributed = true
	}

	if *pairs > 1 {
		plan := klocal.FaultPlan{Seed: *faultSeed, Loss: *loss, Crashes: crashes}
		return runBatch(g, alg, kk, *graphKind, *pairs, *workers, rng, faulty, plan)
	}

	s := klocal.Vertex(*sFlag)
	if !g.HasVertex(s) {
		return fmt.Errorf("origin %d not in the graph", s)
	}
	crashed := make(map[klocal.Vertex]bool, len(crashes))
	for _, c := range crashes {
		crashed[c.Node] = true
	}
	if crashed[s] {
		return fmt.Errorf("origin %d is crashed by -crash", s)
	}
	t := klocal.Vertex(*tFlag)
	if *tFlag < 0 {
		best, bestD := s, -1
		for v, d := range g.BFS(s) {
			if crashed[v] {
				continue
			}
			if d > bestD || (d == bestD && v < best) {
				best, bestD = v, d
			}
		}
		t = best
	}
	if !g.HasVertex(t) {
		return fmt.Errorf("destination %d not in the graph", t)
	}

	fmt.Printf("graph: %s, n=%d m=%d; algorithm %s, k=%d (threshold %d)\n",
		*graphKind, g.N(), g.M(), alg.Name, kk, alg.MinK(g.N()))
	fmt.Printf("routing %d -> %d (dist %d)\n", s, t, g.Dist(s, t))

	if *distributed {
		plan := klocal.FaultPlan{Seed: *faultSeed, Loss: *loss, Crashes: crashes}
		nw := klocal.NewFaultyNetwork(g, kk, alg, plan)
		nw.Start()
		defer nw.Stop()
		if err := nw.Discover(); err != nil {
			return err
		}
		if faulty {
			st := nw.Stats()
			fmt.Printf("faults: loss=%.2f crashed=%v seed=%d; discovery %d rounds, %d control msgs (%d retransmissions, %d drops, %d deaths)\n",
				*loss, keys(crashed), *faultSeed, st.DiscoveryRounds, st.ControlMessages(), st.LSARetransmissions, st.Dropped, st.DeadDeclared)
		}
		res := nw.SendDetailed(s, t)
		if res.Err != nil {
			if len(res.Events) > 0 {
				fmt.Print(klocal.RenderRouteEvents(g, res.Route, t, res.Events))
			}
			return res.Err
		}
		fmt.Printf("delivered in %d hops (distributed, %d link retries): %s\n",
			len(res.Route)-1, res.Retries, trace(res.Route))
		if len(res.Events) > 0 {
			fmt.Print(klocal.RenderRouteEvents(g, res.Route, t, res.Events))
		}
		return nil
	}

	res := klocal.Route(alg, g, kk, s, t)
	fmt.Printf("outcome: %v, %d hops, dilation %.3f\n", res.Outcome, res.Len(), res.Dilation())
	if res.Err != nil {
		fmt.Printf("error: %v\n", res.Err)
	}
	fmt.Println("route:", trace(res.Route))
	fmt.Print(klocal.RenderRoute(g, res.Route, t))
	return nil
}

// runBatch routes a batch of sampled pairs: through the traffic engine
// when fault-free, or replayed through the faulty distributed simulator
// when fault flags are set.
func runBatch(g *klocal.Graph, alg klocal.Algorithm, k int, graphKind string, pairs, workers int, rng *rand.Rand, faulty bool, plan klocal.FaultPlan) error {
	fmt.Printf("batch: %s on %s n=%d m=%d, k=%d, %d uniform pairs\n",
		alg.Name, graphKind, g.N(), g.M(), k, pairs)
	reqs := klocal.TakeRequests(klocal.UniformWorkload(rng, g), pairs)

	if faulty {
		fmt.Printf("faults: loss=%.2f crashes=%d seed=%d (batch replayed through the distributed simulator)\n",
			plan.Loss, len(plan.Crashes), plan.Seed)
		nw := klocal.NewFaultyNetwork(g, k, alg, plan)
		nw.Start()
		defer nw.Stop()
		if err := nw.Discover(); err != nil {
			return err
		}
		delivered, failed, hops, retries := 0, 0, 0, 0
		worst := 0.0
		for _, req := range reqs {
			res := nw.SendDetailed(req.S, req.T)
			if res.Err != nil {
				failed++
				continue
			}
			delivered++
			h := len(res.Route) - 1
			hops += h
			retries += res.Retries
			if d := g.Dist(req.S, req.T); d > 0 {
				if stretch := float64(h) / float64(d); stretch > worst {
					worst = stretch
				}
			}
		}
		st := nw.Stats()
		fmt.Printf("delivered %d/%d (%.4f), failed %d\n",
			delivered, len(reqs), float64(delivered)/float64(len(reqs)), failed)
		if delivered > 0 {
			fmt.Printf("mean hops %.2f, worst stretch %.3f, %d link retries\n",
				float64(hops)/float64(delivered), worst, retries)
		}
		fmt.Printf("protocol: %d control msgs, %d retransmissions, %d drops\n",
			st.ControlMessages(), st.LSARetransmissions, st.Dropped)
		return nil
	}

	snap, err := klocal.NewSnapshot(g, k, alg)
	if err != nil {
		return err
	}
	resps, rep, err := klocal.RouteAll(snap, reqs, klocal.EngineConfig{Workers: workers})
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)

	// Reuse the single-message trace rendering on the worst-stretch
	// delivered route of the batch.
	worstIdx, worstStretch := -1, 0.0
	for i, r := range resps {
		if r.Result.Outcome != klocal.Delivered || r.Result.Dist == 0 {
			continue
		}
		if d := r.Result.Dilation(); worstIdx < 0 || d > worstStretch {
			worstIdx, worstStretch = i, d
		}
	}
	if worstIdx >= 0 {
		r := resps[worstIdx]
		fmt.Printf("\nworst-stretch route (%d -> %d, dist %d, stretch %.3f): %s\n",
			r.S, r.T, r.Result.Dist, worstStretch, trace(r.Result.Route))
		fmt.Print(klocal.RenderRoute(g, r.Result.Route, r.T))
	}
	return nil
}

func keys(set map[klocal.Vertex]bool) []klocal.Vertex {
	out := make([]klocal.Vertex, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func trace(route []klocal.Vertex) string {
	parts := make([]string, len(route))
	for i, v := range route {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, " -> ")
}
