package klocal_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klocal"
)

// Benchmarks for the traffic engine: batched concurrent routing over an
// immutable snapshot. `make bench` runs these and emits BENCH_engine.json.

// benchSnapshot binds Algorithm 2 at threshold on the standard lollipop
// instance, prewarmed so the benchmark measures routing, not
// preprocessing (BenchmarkEngineCacheColdVsWarm measures that split).
func benchSnapshot(b *testing.B, n int) *klocal.Snapshot {
	b.Helper()
	g := klocal.Lollipop(n-n/3, n/3)
	snap, err := klocal.NewSnapshotOpts(g, 0, klocal.Algorithm2(), klocal.SnapshotOptions{Prewarm: -1})
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

// BenchmarkEngineThroughput measures routed messages per second as the
// worker-pool size grows. Submission is concurrent — one DoBatch
// submitter goroutine per worker, each owning a partition of the batch —
// so the measurement exercises the pool, not a single submitter's feed
// rate (the old RouteBatch harness fed the queue from one goroutine and
// collected from another, which serialized the run and reported flat
// scaling regardless of pool size). Throughput is computed over the
// engines' active windows (first accepted task → close), not b.Elapsed,
// so per-iteration engine construction is not billed as routing time.
func BenchmarkEngineThroughput(b *testing.B) {
	const batch = 2048
	snap := benchSnapshot(b, 48)
	reqs := klocal.TakeRequests(klocal.UniformWorkload(klocal.NewRand(1), snap.Graph()), batch)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var active time.Duration
			for i := 0; i < b.N; i++ {
				eng := klocal.NewEngine(snap, klocal.EngineConfig{Workers: workers})
				share := (batch + workers - 1) / workers
				var wg sync.WaitGroup
				var delivered atomic.Int64
				for lo := 0; lo < batch; lo += share {
					hi := lo + share
					if hi > batch {
						hi = batch
					}
					part := reqs[lo:hi]
					wg.Add(1)
					go func() {
						defer wg.Done()
						out, err := eng.DoBatch(part, 0)
						if err != nil {
							b.Error(err)
							return
						}
						for j := range out {
							if out[j].Result.Outcome == klocal.Delivered {
								delivered.Add(1)
							}
						}
					}()
				}
				wg.Wait()
				eng.Close()
				active += eng.ActiveElapsed()
				if delivered.Load() != batch {
					b.Fatalf("delivered %d of %d", delivered.Load(), batch)
				}
			}
			msgs := float64(batch) * float64(b.N)
			b.ReportMetric(msgs/active.Seconds(), "msgs/sec")
			b.ReportMetric(0, "ns/op") // msgs/sec is the headline number
		})
	}
}

// BenchmarkEngineCacheColdVsWarm splits the cost of a batch into the
// preprocessing it amortizes (cold: every snapshot rebuilt, views
// computed on demand during routing) versus steady-state serving (warm:
// one prewarmed snapshot reused).
func BenchmarkEngineCacheColdVsWarm(b *testing.B) {
	const batch = 512
	g := klocal.Lollipop(32, 16)
	reqs := klocal.TakeRequests(klocal.UniformWorkload(klocal.NewRand(2), g), batch)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap, err := klocal.NewSnapshot(g, 0, klocal.Algorithm2())
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := klocal.RouteAll(snap, reqs, klocal.EngineConfig{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	})
	b.Run("warm", func(b *testing.B) {
		snap, err := klocal.NewSnapshotOpts(g, 0, klocal.Algorithm2(), klocal.SnapshotOptions{Prewarm: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := klocal.RouteAll(snap, reqs, klocal.EngineConfig{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	})
}

// BenchmarkEngineWorkloads compares the traffic shapes the engine
// serves: Zipf-skewed traffic hits the view cache hardest, adversarial
// traffic routes the Theorem 4 worst case.
func BenchmarkEngineWorkloads(b *testing.B) {
	const batch = 1024
	snap := benchSnapshot(b, 48)
	g := snap.Graph()
	shapes := []struct {
		name string
		w    klocal.TrafficWorkload
	}{
		{"uniform", klocal.UniformWorkload(klocal.NewRand(3), g)},
		{"zipf", klocal.ZipfWorkload(klocal.NewRand(3), g, 0)},
		{"allpairs", klocal.AllPairsWorkload(g)},
	}
	for _, shape := range shapes {
		reqs := klocal.TakeRequests(shape.w, batch)
		b.Run(shape.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := klocal.RouteAll(snap, reqs, klocal.EngineConfig{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
	b.Run("adversarial", func(b *testing.B) {
		n := 48
		k := klocal.MinK1(n)
		ag, aw, err := klocal.AdversarialWorkload(n, k)
		if err != nil {
			b.Fatal(err)
		}
		asnap, err := klocal.NewSnapshotOpts(ag, k, klocal.Algorithm1(), klocal.SnapshotOptions{Prewarm: -1})
		if err != nil {
			b.Fatal(err)
		}
		reqs := klocal.TakeRequests(aw, 64)
		b.ResetTimer()
		var worst float64
		for i := 0; i < b.N; i++ {
			_, rep, err := klocal.RouteAll(asnap, reqs, klocal.EngineConfig{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			worst = rep.Gauge("stretch_max")
		}
		b.ReportMetric(worst, "worstStretch")
	})
}
