GO ?= go

.PHONY: tier1 race build test vet

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fault-tolerant discovery protocol and the injector are the most
# concurrency-heavy code in the tree; run them under the race detector.
race:
	$(GO) test -race -count=1 ./internal/netsim/... ./internal/fault/...
