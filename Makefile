GO ?= go

# Recipes run under bash with pipefail so a failing `go test` is never
# masked by a downstream pipe stage (tee/grep in the bench targets).
SHELL := bash
.SHELLFLAGS := -o pipefail -ec

# Extra flags for the klocalvet lint run, e.g.
# `make lint KLOCALVET_FLAGS=-github` in CI for inline PR annotations,
# or KLOCALVET_FLAGS=-json for tooling.
KLOCALVET_FLAGS ?=

# Pinned staticcheck release for reproducible lint runs (the last line
# supporting go 1.22). CI installs exactly this version; locally the
# lint target uses whatever staticcheck is on PATH and skips it with a
# notice when none is installed.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: tier1 check race build test vet lint klocalvet staticcheck bench bench-scale bench-gate serve-smoke fuzz-smoke go-fuzz-smoke cluster-smoke scale-smoke churn-smoke

tier1: vet build test serve-smoke fuzz-smoke cluster-smoke scale-smoke churn-smoke

# The full local gate: everything CI runs except the benchmarks.
check: lint tier1 race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Model-contract lint: go vet, the klocalvet suite (k-locality,
# determinism, statelessness, concurrency hygiene — see
# internal/analysis and DESIGN.md "Model contracts as lint"), and
# staticcheck when available.
lint: vet klocalvet staticcheck

klocalvet:
	$(GO) run ./cmd/klocalvet $(KLOCALVET_FLAGS) ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Boot klocald on a loopback port and exercise the whole endpoint
# surface (route, batch, hot-swap, metrics, pprof) in-process — no curl
# or fixed port needed, so it runs anywhere `go run` does.
serve-smoke:
	$(GO) run ./cmd/klocald -smoke -algo alg2,alg3 -graph random -size 40 -seed 3

# A 30-second randomized campaign of the differential fuzzer over every
# algorithm and property (delivery, dilation, walk validity,
# determinism, relabelling, engine/netsim differential, cluster
# differential); klocalcheck exits non-zero on any finding and prints
# the minimized reproducer.
fuzz-smoke:
	$(GO) run ./cmd/klocalcheck -budget 30s -props all -seed 1

# The million-node pipeline scaled to CI time: stream a 10^5-node grid
# into a binary .csr file, serve it store-backed (mmap) through klocald,
# and route 1000 Zipf pairs through /batch.
scale-smoke:
	$(GO) run ./cmd/klocald -scale-smoke

# Boot a 3-member cluster on loopback TCP, route cross-shard through
# every member, kill one mid-traffic, check typed fast failure plus
# tombstone route-around, then rejoin it under a fresh incarnation and
# check full recovery — the crash/recovery story end to end in-process.
cluster-smoke:
	$(GO) run ./cmd/klocald -cluster-smoke

# PATCH a stream of chord flaps into a live klocald while routing
# traffic through it: epochs must advance, dirty sets must stay k-local
# (≪ n), no request may fail mid-swap, and the final topology must
# route exactly like a from-scratch snapshot of a client-side mirror.
churn-smoke:
	$(GO) run ./cmd/klocald -churn-smoke

# The Go-native fuzzing engine over the same scenario space, long enough
# to exercise the decoder and mutator plumbing.
go-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRouting -fuzztime 20s ./internal/fuzz

# The concurrency-heavy code paths: the fault-tolerant discovery
# protocol and injector, the traffic engine and its metric shards, the
# sharded preprocessing cache, the routing daemon's hot-swap/drain
# machinery, the cluster membership/LSA/forwarding stack (including the
# 5-member TCP crash e2e), the graph substrate and neighborhood
# extraction (shared-Scratch misuse shows up here first), and the shared
# routing closures the engine's workers route through.
race:
	$(GO) test -race -count=1 \
		./internal/netsim/... ./internal/fault/... \
		./internal/engine/... ./internal/metrics/... ./internal/prep/... \
		./internal/serve/... ./internal/cluster/... ./internal/bigraph/... \
		./internal/nbhd/... ./internal/graph/...
	$(GO) test -race -count=1 -run Concurrent ./internal/route/...
	$(MAKE) go-fuzz-smoke

# Traffic-engine benchmarks (throughput vs workers, cache cold vs warm,
# workload shapes); the JSON event stream lands in BENCH_engine.json.
# The `grep || true` only forgives grep finding no matching lines; a
# go test failure still fails the target through pipefail.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem -count=1 -json . \
		| tee BENCH_engine.json | { grep -o '"Output":".*msgs/sec.*"' || true; }

# Throughput regression gate: re-runs the single-worker engine
# benchmark and fails when msgs/sec regresses >10% below the committed
# BENCH_engine.json baseline or allocations per routed message exceed
# the gate (see cmd/benchgate). Single-worker only, so the gate holds on
# any core count.
bench-gate:
	$(GO) run ./cmd/benchgate -baseline BENCH_engine.json

# Million-node scale benchmarks over the CSR store (n = 10^4 … 10^6 grid
# under a Zipf workload): routing throughput and store footprint; the
# JSON event stream lands in BENCH_scale.json.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem -count=1 -timeout 30m -json . \
		| tee BENCH_scale.json | { grep -o '"Output":".*\(msgs/sec\|bytes/vertex\).*"' || true; }
