GO ?= go

.PHONY: tier1 race build test vet bench

tier1: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy code paths: the fault-tolerant discovery
# protocol and injector, the traffic engine and its metric shards, the
# sharded preprocessing cache, and the shared routing closures the
# engine's workers route through.
race:
	$(GO) test -race -count=1 \
		./internal/netsim/... ./internal/fault/... \
		./internal/engine/... ./internal/metrics/... ./internal/prep/...
	$(GO) test -race -count=1 -run Concurrent ./internal/route/...

# Traffic-engine benchmarks (throughput vs workers, cache cold vs warm,
# workload shapes); the JSON event stream lands in BENCH_engine.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem -count=1 -json . \
		| tee BENCH_engine.json | grep -o '"Output":".*msgs/sec.*"' || true
