module klocal

go 1.22
