package stateful

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestDFSRouteDeliversExhaustively(t *testing.T) {
	for n := 2; n <= 5; n++ {
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			for _, s := range g.Vertices() {
				for _, dst := range g.Vertices() {
					res, err := DFSRoute(g, s, dst)
					if err != nil || !res.Delivered {
						t.Fatalf("DFS failed %d->%d on %v: %v", s, dst, g, err)
					}
					if res.Len() > 2*g.N() {
						t.Fatalf("DFS route %d exceeds 2n on %v", res.Len(), g)
					}
				}
			}
			return true
		})
	}
}

func TestDFSRouteDeliversRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(40)
		g := gen.RandomConnected(rng, n, 0.1)
		vs := g.Vertices()
		s := vs[rng.Intn(len(vs))]
		dst := vs[rng.Intn(len(vs))]
		res, err := DFSRoute(g, s, dst)
		if err != nil || !res.Delivered {
			t.Fatalf("DFS failed %d->%d: %v", s, dst, err)
		}
		// Every hop must be an edge.
		for i := 1; i < len(res.Route); i++ {
			if !g.HasEdge(res.Route[i-1], res.Route[i]) {
				t.Fatalf("non-edge hop %d-%d", res.Route[i-1], res.Route[i])
			}
		}
	}
}

func TestDFSRouteSelfAndErrors(t *testing.T) {
	g := gen.Path(4)
	res, err := DFSRoute(g, 2, 2)
	if err != nil || !res.Delivered || res.Len() != 0 {
		t.Errorf("self route: %+v err=%v", res, err)
	}
	if _, err := DFSRoute(g, 0, 99); err == nil {
		t.Error("unknown endpoint must error")
	}
	disconnected := graph.NewBuilder().AddEdge(0, 1).AddEdge(2, 3).Build()
	if _, err := DFSRoute(disconnected, 0, 3); !errors.Is(err, ErrStuck) {
		t.Errorf("disconnected route: err=%v, want ErrStuck", err)
	}
}

func TestDFSRouteStateBitsScaling(t *testing.T) {
	// The paper's trade-off: DFS buys k=1 locality with Θ(n log n) bits.
	rng := rand.New(rand.NewSource(62))
	g1 := gen.RandomConnected(rng, 16, 0.05)
	g2 := gen.RandomConnected(rng, 128, 0.05)
	// Route to the farthest vertex so the traversal covers real ground.
	far := func(g *graph.Graph) (graph.Vertex, graph.Vertex) {
		s := g.Vertices()[0]
		best, bestD := s, -1
		for v, d := range g.BFS(s) {
			if d > bestD {
				best, bestD = v, d
			}
		}
		return s, best
	}
	s1, t1 := far(g1)
	s2, t2 := far(g2)
	r1, err := DFSRoute(g1, s1, t1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DFSRoute(g2, s2, t2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PeakStateBits <= 0 || r2.PeakStateBits <= r1.PeakStateBits {
		t.Errorf("state bits should grow with n: %d (n=16) vs %d (n=128)", r1.PeakStateBits, r2.PeakStateBits)
	}
	// Upper bound: at most 2n vertex labels stored.
	if max := 2 * 128 * int(math.Ceil(math.Log2(128))); r2.PeakStateBits > max {
		t.Errorf("state bits %d exceed 2n·log n = %d", r2.PeakStateBits, max)
	}
}

func TestDFSRouteOnTreeIsEulerLike(t *testing.T) {
	g := gen.Spider(3, 4)
	// Route from one arm tip to another: DFS backtracks through the hub.
	res, err := DFSRoute(g, 4, 12)
	if err != nil || !res.Delivered {
		t.Fatalf("spider route failed: %v", err)
	}
	if res.Len() > 2*(g.N()-1) {
		t.Errorf("tree DFS route %d exceeds 2(n-1)", res.Len())
	}
}
