// Package stateful implements routing with message-carried state — the
// relaxation the paper's Section 6.3 discusses. The paper's model is
// memoryless and stateless; allowing the message to carry state buys
// delivery at locality k = 1, at a memory price this package makes
// explicit and measurable:
//
//   - DFSRouter: depth-first traversal with the visited set and path
//     stack carried in the message — Θ(n log n) bits, delivery on every
//     connected graph with a route of at most 2m edges.
//
// Together with georoute.FaceRoute (Θ(log n) bits on plane embeddings)
// and the paper's stateless algorithms (0 bits, locality Ω(n)), this
// spans the locality-versus-memory trade-off that Section 6.3 poses as
// an open question; the exper package measures it.
package stateful

import (
	"errors"
	"fmt"
	"math"

	"klocal/internal/graph"
)

// ErrStuck is returned when a traversal exhausts its options without
// reaching the destination (impossible on connected graphs).
var ErrStuck = errors.New("stateful: traversal exhausted without delivery")

// Result describes a stateful route.
type Result struct {
	// Route is the walk from s, ending at t iff Delivered.
	Route []graph.Vertex
	// Delivered reports success.
	Delivered bool
	// PeakStateBits is the maximum message overhead carried at any hop.
	PeakStateBits int
}

// Len returns the route length in edges.
func (r *Result) Len() int {
	if len(r.Route) == 0 {
		return 0
	}
	return len(r.Route) - 1
}

// dfsState is the message overhead of DFSRoute: the DFS stack (current
// path back to s) and the visited set.
type dfsState struct {
	stack   []graph.Vertex
	visited map[graph.Vertex]bool
}

// bits estimates the state size: each stored vertex label costs
// ⌈log₂ n⌉ bits.
func (st *dfsState) bits(n int) int {
	if n < 2 {
		return 0
	}
	perVertex := int(math.Ceil(math.Log2(float64(n))))
	return (len(st.stack) + len(st.visited)) * perVertex
}

// DFSRoute routes from s to t with a 1-local depth-first traversal: at
// each node the message, knowing only the node's adjacency and its own
// carried state, visits the lowest-labelled unvisited neighbour, or
// backtracks. It guarantees delivery on every connected graph and its
// route has at most 2(n−1) edges (each DFS-tree edge twice).
func DFSRoute(g *graph.Graph, s, t graph.Vertex) (*Result, error) {
	if !g.HasVertex(s) || !g.HasVertex(t) {
		return nil, fmt.Errorf("stateful: unknown endpoint")
	}
	res := &Result{Route: []graph.Vertex{s}}
	if s == t {
		res.Delivered = true
		return res, nil
	}
	st := &dfsState{visited: map[graph.Vertex]bool{s: true}}
	st.stack = append(st.stack, s)
	u := s
	n := g.N()
	for len(st.stack) > 0 {
		if bits := st.bits(n); bits > res.PeakStateBits {
			res.PeakStateBits = bits
		}
		// 1-locality: u sees its neighbours' labels, nothing else.
		if g.HasEdge(u, t) {
			res.Route = append(res.Route, t)
			res.Delivered = true
			return res, nil
		}
		next := graph.NoVertex
		g.EachAdj(u, func(w graph.Vertex) bool {
			if !st.visited[w] {
				next = w
				return false
			}
			return true
		})
		if next != graph.NoVertex {
			st.visited[next] = true
			st.stack = append(st.stack, next)
			res.Route = append(res.Route, next)
			u = next
			continue
		}
		// Backtrack along the carried path.
		st.stack = st.stack[:len(st.stack)-1]
		if len(st.stack) == 0 {
			break
		}
		u = st.stack[len(st.stack)-1]
		res.Route = append(res.Route, u)
	}
	return res, ErrStuck
}
