package route

import (
	"fmt"

	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/prep"
)

// This file preserves the map-based decision logic the compact routing
// core replaced: a direct transcription of the rule tables over
// *graph.Graph views, map distances and component scans. It exists to
// pin the compact path — the *Ref algorithms must produce hop-for-hop
// identical walks (TestCompactStepMatchesRef and the klocalcheck
// "compact" property), and any divergence is a bug in the compact
// encoding, not in these functions. Nothing here runs on production
// decision paths.

// caseOneHopRef is the reference Case 1 decision: a fresh BFS through
// the raw view per hop.
func caseOneHopRef(view *prep.View, t, u graph.Vertex) graph.Vertex {
	if !view.Raw.Contains(t) {
		return graph.NoVertex
	}
	return view.Raw.G.NextHopToward(u, t)
}

// classifyArrivalRef resolves the predecessor v by scanning components.
func classifyArrivalRef(view *prep.View, s, v graph.Vertex, originAware bool) (arrival, int) {
	if v == graph.NoVertex {
		return arrivalFirst, -1
	}
	for i, r := range view.ActiveRoots {
		if r == v {
			return arrivalActive, i
		}
	}
	if originAware {
		if c := view.CompOf(v); c != nil && !c.Active && c.Has(s) {
			return arrivalSPassive, -1
		}
	}
	return arrivalPassive, -1
}

// kindAtRef resolves the rule family by scanning components.
func kindAtRef(view *prep.View, s, u graph.Vertex) ruleKind {
	if u == s {
		return rulesS
	}
	if c := view.CompOf(s); c != nil && !c.Active {
		return rulesUS
	}
	return rulesU
}

// stepAwareRef is the reference body of Algorithms 1 and 1B.
func stepAwareRef(p *prep.Preprocessor, s, t, u, v graph.Vertex, refine refineU2) (graph.Vertex, error) {
	view := p.At(u)
	if hop := caseOneHopRef(view, t, u); hop != graph.NoVertex {
		return hop, nil
	}
	kind := kindAtRef(view, s, u)
	from, idx := classifyArrivalRef(view, s, v, true)
	if kind == rulesU && from == arrivalActive && len(view.ActiveRoots) == 2 && refine != nil {
		if hop := refine(view, s, t, u, v, view.ActiveRoots, idx); hop != graph.NoVertex {
			return hop, nil
		}
	}
	return decideActive(kind, view.ActiveRoots, from, idx)
}

// anticipateU2Ref is the reference Rules U2b–U2f hook over map state.
func anticipateU2Ref(view *prep.View, s, _, u, v graph.Vertex, roots []graph.Vertex, activeIdx int) graph.Vertex {
	ds, ok := view.RoutingDist[s]
	if !ok || ds >= view.K || s == u {
		return graph.NoVertex
	}
	target := roots[1-activeIdx]
	comp := view.CompRootedAt(target)
	if comp == nil || !comp.Has(s) {
		return graph.NoVertex
	}
	if simulatesBounceRef(view, s, target) {
		return v
	}
	return graph.NoVertex
}

// simBranchRef is a branch of the routing view around a simulated node.
type simBranchRef struct {
	roots  []graph.Vertex
	active bool
	hasS   bool
}

// simulatesBounceRef is the reference bounce simulation: a graph copy
// and fresh BFS maps per simulated step.
func simulatesBounceRef(view *prep.View, s, first graph.Vertex) bool {
	prev, cur := view.Center, first
	for step := 0; step < 4*view.K+4; step++ {
		if view.RoutingDist[cur] >= view.K {
			return false // cannot see past the horizon
		}
		branches := simBranchesRef(view, cur, s)
		var actRoots []graph.Vertex
		sPassive := false
		for _, br := range branches {
			if br.active {
				//klocal:allow reference path: differential pinning only, never routes production traffic
				actRoots = append(actRoots, br.roots...)
			} else if br.hasS {
				sPassive = true
			}
		}
		sortVerts(actRoots)
		if cur == s || sPassive {
			if len(actRoots) != 2 {
				return false
			}
			return prev == actRoots[1]
		}
		if len(actRoots) != 2 {
			return false
		}
		var next graph.Vertex
		switch prev {
		case actRoots[0]:
			next = actRoots[1]
		case actRoots[1]:
			next = actRoots[0]
		default:
			return false
		}
		prev, cur = cur, next
	}
	return false
}

// simBranchesRef classifies the branches around cur within u's routing
// view, the map way.
func simBranchesRef(view *prep.View, cur, s graph.Vertex) []simBranchRef {
	without := view.Routing.WithoutVertex(cur)
	distCur := view.Routing.BFS(cur)
	var out []simBranchRef
	for _, vs := range without.Components() {
		br := simBranchRef{}
		//klocal:allow reference path: differential pinning only, never routes production traffic
		vset := make(map[graph.Vertex]bool, len(vs))
		for _, v := range vs {
			vset[v] = true
			if v == s {
				br.hasS = true
			}
			if view.RoutingDist[v] == view.K || distCur[v] >= view.K {
				br.active = true
			}
			if v == view.Center {
				br.active = true
			}
		}
		//klocal:allow reference path: differential pinning only, never routes production traffic
		view.Routing.EachAdj(cur, func(w graph.Vertex) bool {
			if vset[w] {
				//klocal:allow reference path: differential pinning only, never routes production traffic
				br.roots = append(br.roots, w)
			}
			return true
		})
		if len(br.roots) == 0 {
			continue
		}
		sortVerts(br.roots)
		//klocal:allow reference path: differential pinning only, never routes production traffic
		out = append(out, br)
	}
	return out
}

// alg3StepRef is the reference Algorithm 3 decision over a freshly
// extracted map-based view.
func alg3StepRef(view *nbhd.Neighborhood, t, u graph.Vertex) (graph.Vertex, error) {
	if view.Contains(t) {
		hop := view.G.NextHopToward(u, t)
		if hop == graph.NoVertex {
			//klocal:allow reference path: differential pinning only, never routes production traffic
			return graph.NoVertex, fmt.Errorf("%w: t unreachable in view", ErrNoRoute)
		}
		return hop, nil
	}
	var constrained *nbhd.Component
	active := 0
	for _, c := range view.Components() {
		if !c.Active {
			continue
		}
		active++
		if c.Constrained {
			constrained = c
		}
	}
	if active != 1 || constrained == nil {
		//klocal:allow reference path: differential pinning only, never routes production traffic
		return graph.NoVertex, fmt.Errorf("%w: Lemma 12 precondition violated (%d active components)", ErrLocalityTooSmall, active)
	}
	target := graph.NoVertex
	best := -1
	for _, w := range constrained.ConstraintVertices {
		if d := view.Dist[w]; d > best {
			best = d
			target = w
		}
	}
	hop := view.G.NextHopToward(u, target)
	if hop == graph.NoVertex {
		//klocal:allow reference path: differential pinning only, never routes production traffic
		return graph.NoVertex, fmt.Errorf("%w: constraint vertex unreachable", ErrNoRoute)
	}
	return hop, nil
}

// Algorithm1Ref is the reference build of Algorithm 1 over the retained
// map-based step. Differential tests only.
func Algorithm1Ref() Algorithm {
	a := Algorithm1()
	a.Name = "Algorithm1Ref"
	bind := func(p *prep.Preprocessor) Func {
		return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
			return stepAwareRef(p, s, t, u, v, nil)
		}
	}
	a.BindCached = bind
	a.Bind = func(g *graph.Graph, k int) Func {
		return bind(prep.NewPreprocessorPolicy(g, k, a.Policy))
	}
	a.BindStore = nil
	return a
}

// Algorithm1BRef is the reference build of Algorithm 1B.
func Algorithm1BRef() Algorithm {
	a := Algorithm1B()
	a.Name = "Algorithm1BRef"
	bind := func(p *prep.Preprocessor) Func {
		return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
			return stepAwareRef(p, s, t, u, v, anticipateU2Ref)
		}
	}
	a.BindCached = bind
	a.Bind = func(g *graph.Graph, k int) Func {
		return bind(prep.NewPreprocessorPolicy(g, k, a.Policy))
	}
	a.BindStore = nil
	return a
}

// Algorithm2Ref is the reference build of Algorithm 2.
func Algorithm2Ref() Algorithm {
	a := Algorithm2()
	a.Name = "Algorithm2Ref"
	bind := func(p *prep.Preprocessor) Func {
		return func(_, t, u, v graph.Vertex) (graph.Vertex, error) {
			view := p.At(u)
			if hop := caseOneHopRef(view, t, u); hop != graph.NoVertex {
				return hop, nil
			}
			roots := view.ActiveRoots
			if len(roots) > 2 {
				//klocal:allow reference path: differential pinning only, never routes production traffic
				return graph.NoVertex, fmt.Errorf("%w: active degree %d > 2", ErrLocalityTooSmall, len(roots))
			}
			from, idx := classifyArrivalRef(view, graph.NoVertex, v, false)
			return decideActive(rulesU, roots, from, idx)
		}
	}
	a.BindCached = bind
	a.Bind = func(g *graph.Graph, k int) Func {
		return bind(prep.NewPreprocessorPolicy(g, k, a.Policy))
	}
	a.BindStore = nil
	return a
}

// Algorithm3Ref is the reference build of Algorithm 3.
func Algorithm3Ref() Algorithm {
	a := Algorithm3()
	a.Name = "Algorithm3Ref"
	a.Bind = func(g *graph.Graph, k int) Func {
		return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
			return alg3StepRef(nbhd.Extract(g, u, k), t, u)
		}
	}
	a.BindStore = nil
	return a
}
