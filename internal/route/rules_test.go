package route

import (
	"errors"
	"testing"

	"klocal/internal/graph"
)

// Direct unit tests of the S/U/US rule tables (decideActive), pinning
// the reconstruction documented in doc.go.

func TestDecideActiveURules(t *testing.T) {
	roots3 := []graph.Vertex{10, 20, 30}
	tests := []struct {
		name  string
		roots []graph.Vertex
		from  arrival
		idx   int
		want  graph.Vertex
	}{
		{"U1 reversal", roots3[:1], arrivalActive, 0, 10},
		{"U2 swap a1->a2", roots3[:2], arrivalActive, 0, 20},
		{"U2 swap a2->a1", roots3[:2], arrivalActive, 1, 10},
		{"U3 circular a1->a2", roots3, arrivalActive, 0, 20},
		{"U3 circular a2->a3", roots3, arrivalActive, 1, 30},
		{"U3 circular a3->a1", roots3, arrivalActive, 2, 10},
		{"passive entry", roots3, arrivalPassive, -1, 10},
		{"first send", roots3, arrivalFirst, -1, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := decideActive(rulesU, tt.roots, tt.from, tt.idx)
			if err != nil || got != tt.want {
				t.Errorf("got %d err=%v, want %d", got, err, tt.want)
			}
		})
	}
}

func TestDecideActiveSRules(t *testing.T) {
	roots3 := []graph.Vertex{10, 20, 30}
	tests := []struct {
		name  string
		roots []graph.Vertex
		from  arrival
		idx   int
		want  graph.Vertex
	}{
		{"first send S", roots3, arrivalFirst, -1, 10},
		{"S1 reversal", roots3[:1], arrivalActive, 0, 10},
		{"S2 pass a1->a2", roots3[:2], arrivalActive, 0, 20},
		{"S2 reversal a2->a2", roots3[:2], arrivalActive, 1, 20},
		{"S3 a1->a2", roots3, arrivalActive, 0, 20},
		{"S3 a2->a3", roots3, arrivalActive, 1, 30},
		{"S3 reversal a3->a3", roots3, arrivalActive, 2, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := decideActive(rulesS, tt.roots, tt.from, tt.idx)
			if err != nil || got != tt.want {
				t.Errorf("got %d err=%v, want %d", got, err, tt.want)
			}
		})
	}
}

func TestDecideActiveUSRules(t *testing.T) {
	roots := []graph.Vertex{5, 6, 7}
	// US mirrors S for active arrivals; the s-passive arrival enters at a1.
	got, err := decideActive(rulesUS, roots, arrivalSPassive, -1)
	if err != nil || got != 5 {
		t.Errorf("US s-passive entry: got %d err=%v", got, err)
	}
	got, err = decideActive(rulesUS, roots, arrivalActive, 2)
	if err != nil || got != 7 {
		t.Errorf("US3 reversal: got %d err=%v", got, err)
	}
	got, err = decideActive(rulesUS, roots[:2], arrivalActive, 1)
	if err != nil || got != 6 {
		t.Errorf("US2 reversal: got %d err=%v", got, err)
	}
}

func TestDecideActiveErrors(t *testing.T) {
	if _, err := decideActive(rulesU, nil, arrivalActive, 0); !errors.Is(err, ErrNoRoute) {
		t.Errorf("no active components: err=%v", err)
	}
	roots4 := []graph.Vertex{1, 2, 3, 4}
	if _, err := decideActive(rulesU, roots4, arrivalActive, 0); !errors.Is(err, ErrLocalityTooSmall) {
		t.Errorf("degree 4: err=%v", err)
	}
	if _, err := decideActive(ruleKind(99), []graph.Vertex{1, 2}, arrivalActive, 0); err == nil {
		t.Error("unknown rule kind must error")
	}
}
