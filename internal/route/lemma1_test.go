package route

import (
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// TestLemma1CircularPermutation checks the forcing lemma directly
// against our implementation: at a node u whose local components are all
// independent active components, with s and t outside G_k(u), the local
// routing function v ↦ f(s, t, u, v) of a successful algorithm must be a
// circular permutation of Adj(u). We build spider instances realizing
// exactly those conditions (hub degree 2 and 3, the degrees
// Proposition 1 allows) and verify Algorithms 1, 1B and 2 comply.
func TestLemma1CircularPermutation(t *testing.T) {
	for _, arms := range []int{2, 3} {
		armLen := 6
		k := 3 // arms reach the horizon; s and t invisible from the hub
		// Extend two arms with s and t beyond the horizon: the spider's
		// arm ends are 1+i*armLen .. (i+1)*armLen; attach s to arm 0's
		// end and t to arm (arms-1)'s end.
		b := graph.NewBuilder()
		sp := gen.Spider(arms, armLen)
		for _, e := range sp.Edges() {
			b.AddEdge(e.U, e.V)
		}
		s := graph.Vertex(1000)
		dst := graph.Vertex(1001)
		b.AddEdge(graph.Vertex(armLen), s)        // end of arm 0
		b.AddEdge(graph.Vertex(arms*armLen), dst) // end of last arm
		g := b.Build()
		hub := graph.Vertex(0)

		algs := []Algorithm{Algorithm1(), Algorithm1B()}
		if arms <= 2 {
			// Algorithm 2's rules cover active degree ≤ 2 (Proposition 2
			// holds at its threshold); the degree-3 hub is Algorithm 1
			// territory.
			algs = append(algs, Algorithm2())
		}
		for _, alg := range algs {
			f := alg.Bind(g, k)
			adj := g.Adj(hub)
			succ := make(map[graph.Vertex]graph.Vertex, len(adj))
			for _, v := range adj {
				next, err := f(s, dst, hub, v)
				if err != nil {
					t.Fatalf("%s arms=%d: f(hub, from %d): %v", alg.Name, arms, v, err)
				}
				succ[v] = next
			}
			// Surjective over Adj(u) (case 1 of Lemma 1's proof).
			image := make(map[graph.Vertex]bool)
			for _, w := range succ {
				image[w] = true
			}
			if len(image) != len(adj) {
				t.Fatalf("%s arms=%d: local function not a permutation: %v", alg.Name, arms, succ)
			}
			// Derangement (case 2).
			for v, w := range succ {
				if v == w {
					t.Fatalf("%s arms=%d: fixed point at %d", alg.Name, arms, v)
				}
			}
			// Single cycle (case 3).
			start := adj[0]
			seen := 1
			for cur := succ[start]; cur != start; cur = succ[cur] {
				seen++
				if seen > len(adj) {
					t.Fatalf("%s arms=%d: successor walk does not close: %v", alg.Name, arms, succ)
				}
			}
			if seen != len(adj) {
				t.Fatalf("%s arms=%d: %d-cycle in a degree-%d hub: %v", alg.Name, arms, seen, len(adj), succ)
			}
		}
	}
}
