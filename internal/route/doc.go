package route

// Goroutine-safety contracts (the traffic engine routes batches of
// messages concurrently through shared routing functions; these are the
// guarantees that make that sound, audited under -race by race_test.go):
//
//   - A bound Func is safe for concurrent use by any number of
//     goroutines routing arbitrary (s, t, u, v) arguments, provided the
//     underlying *graph.Graph is never mutated (Graph is immutable by
//     construction).
//
//   - Algorithms 1, 1B and 2 close over a prep.Preprocessor. The
//     preprocessor's view cache is sharded and internally synchronized;
//     the *prep.View instances it hands out are immutable after
//     publication, so concurrent readers never observe partial views.
//     Funcs built by BindCached share one externally owned preprocessor
//     across closures — also safe, including under cache eviction
//     (evicted views stay valid for readers holding them; they are
//     simply recomputed on the next miss).
//
//   - Algorithm 3, TreeRightHand and ShortestPathOracle keep no mutable
//     state: every call works on freshly extracted neighbourhoods or the
//     immutable graph.
//
//   - RandomWalk serializes its RNG behind a mutex; concurrent routes
//     interleave draws nondeterministically but never race. For
//     reproducible concurrent randomized runs, bind one RandomWalk per
//     worker with distinct seeds.
//
//   - Algorithm values themselves are plain data; copying them or
//     calling Bind/BindCached concurrently is safe. Each Bind call
//     builds an independent preprocessor (memory-heavy); the engine's
//     Snapshot exists precisely to bind once and share.
//
// Store contract (BindStore). The paper's model never lets a routing
// decision at u see more than G_k(u); the representation of the rest of
// the graph is therefore irrelevant to the algorithm, and BindStore
// makes that literal: it binds the same routing function over a
// bigraph.Store — an int-indexed CSR array store, possibly an mmap'd
// on-disk file, for graphs too large to materialize as *graph.Graph.
// The contract is that the k-neighbourhoods extracted from the store
// are vertex-, distance- and edge-identical to those extracted from the
// equivalent materialized graph (nbhd.ExtractStore/ExtractCSR vs
// nbhd.Extract — held by the klocalcheck "csr" property on every
// scenario), so a store-bound Func walks exactly the walk its
// graph-bound twin walks; the only thing that changes is what the
// process holds in memory. A Store must be immutable while bound, just
// as Graph is; concurrency guarantees above carry over unchanged (the
// CSR arrays are read-only after load). Only ShortestPathOracle lacks a
// BindStore — it is defined by whole-graph knowledge, which is exactly
// what a bounded store view cannot provide.
//
// Model contracts (k-locality, determinism, statelessness) are enforced
// mechanically on every decision path in this package by the klocalvet
// analyzers — run `make lint`, and see internal/analysis plus DESIGN.md
// §8 "Model contracts as lint". Deliberate exceptions (the
// ShortestPathOracle comparator) carry //klocal:allow annotations with
// their justification.
//
// Hot-path contract. Decision paths are additionally held allocation-
// free by the kalloc analyzer (DESIGN.md §13): routing a message must
// not touch the heap, because the engine pushes millions of decisions
// per run and GC pressure would dominate every benchmark. Scratch space
// is caller-owned (bound at Bind time or reused via bigraph.Scratch)
// and grown with the exempt self-append idiom. The remaining
// allocations in this package — alg1b's bounded bounce-simulation
// state and cold error paths — are enumerated //klocal:allow
// exceptions; the zero-alloc rewrite of the bounce core is a ROADMAP
// item, and the allow directives are checked for staleness on every
// `make lint`, so they retire automatically when it lands.
//
// The same contracts are also enforced dynamically: internal/fuzz's
// property registry checks delivery at k >= T(n), the Table 2 dilation
// bounds, walk validity, determinism under re-binding, robustness under
// adversarial relabelling, and an engine-vs-netsim differential on
// randomized scenarios — via cmd/klocalcheck, the checked-in corpus
// replayed in `go test`, and the FuzzRouting native harness. See
// DESIGN.md §10.
//
// Reconstruction of the figure-only forwarding rules.
//
// The paper specifies Algorithm 1's forwarding decisions through Figures
// 10–12 and the 1B refinement through Figures 15–16, which are not
// machine-readable. The tables implemented in decideActive were derived
// from the prose constraints and validated against every quantitative
// claim (delivery on exhaustive small graphs, dilation bounds, the exact
// extremal route lengths of Figures 13 and 17):
//
//  1. Lemma 1 forces every local routing function at an uninformed node to
//     be a circular permutation of its neighbours; ranks give the unique
//     canonical choice, so Rule U uses the circular permutation
//     a1→a2→…→ad→a1 of the active neighbours in rank order, entering at
//     a1 from passive components (Algorithm 2's Case 3 states the passive
//     entry explicitly).
//
//  2. Figure 10's red arrow plus Case 2's text fix the origin's first
//     send at a1. Lemma 7's Case 1 requires that "Rules S2 and US2
//     initially forward the message in the opposite direction from that
//     in which the reversal occurs" and that S/US rules are the only
//     reversal points on the repeating cycle; the Figure 13 trace
//     ("clockwise around the cycle back to node s, then counter-clockwise
//     …") pins S2 to: a1→a2, a2→a2 (reversal on the higher-rank
//     arrival). Figure 12's caption fixes the US entry (from the passive
//     component containing s, forward to a1); Lemma 7 Cases 1a/1b use the
//     same reversal shape for US2/US3, giving the general S/US table:
//     circular by rank with the highest-rank arrival reversed.
//
//  3. Lemma 4 identifies S1/U1/US1 as plain reversals at active degree 1,
//     which both tables produce degenerately.
//
//  4. Appendix A's Rules U2b–U2f ("u can determine the imminent
//     application of Rule S2/US2 and applies this rule pre-emptively")
//     are realized as a local simulation (simulatesBounce): from u, walk
//     the would-be trajectory inside u's own routing view through forced
//     U2 nodes only, and check whether it terminates at s (S2) or at a
//     vertex carrying s in a passive branch (US2) with the arrival on the
//     higher-rank side — the rank(c) vs rank(d) test of Cases U2b/c and
//     U2d/e. The constraint-vertex chains in the paper's preconditions
//     are exactly what makes such a walk well-defined from u's partial
//     knowledge; the simulation aborts (keeping plain U2, Rule U2f)
//     whenever the structure is not a provable forced chain. On the
//     Figure 17 construction this reproduces the paper's route length
//     n+2k−6 exactly, with the 3-edge arc of Lemma 16's set I never
//     traversed, while plain Algorithm 1 takes n+2k.
//
// The empirical validation lives in route_test.go (exhaustive graphs up
// to n=7 for every admissible (s,t) pair, randomized families with
// adversarial relabelling, and the extremal constructions).
