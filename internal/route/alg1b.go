package route

import (
	"sync"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/prep"
)

// sortVerts sorts a small vertex slice in place. Insertion sort, not
// sort.Slice: the comparator closure and interface boxing would
// allocate on every simulation step, and these slices hold at most a
// handful of branch roots. (Used by the reference path; the compact
// simulation emits roots already sorted.)
func sortVerts(vs []graph.Vertex) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// Algorithm1B returns the Appendix A refinement of Algorithm 1
// (Theorem 6): identical except that Rule U2 pre-emptively applies an
// imminent S2/US2 reversal (Rules U2b–U2f), reducing the dilation bound
// from 7 to 6. See doc.go for how the pre-emption test is realized.
func Algorithm1B() Algorithm {
	return Algorithm1BPolicy(prep.PolicyMinRank)
}

// Algorithm1BPolicy is Algorithm 1B under an explicit dormant-edge policy
// (the Section 6.1 ablation).
func Algorithm1BPolicy(pol prep.Policy) Algorithm {
	name := "Algorithm1B"
	if pol != prep.PolicyMinRank {
		name += "[" + pol.String() + "]"
	}
	bind := func(p *prep.Preprocessor) Func {
		return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
			return stepAware(p, s, t, u, v, anticipateU2)
		}
	}
	return Algorithm{
		Name:             name,
		OriginAware:      true,
		PredecessorAware: true,
		MinK:             MinK1,
		Policy:           pol,
		BindCached:       bind,
		Bind: func(g *graph.Graph, k int) Func {
			return bind(prep.NewPreprocessorPolicy(g, k, pol))
		},
		BindStore: func(st bigraph.Store, k int) Func {
			return bind(prep.NewPreprocessorStore(st, k, pol))
		},
	}
}

// anticipateU2 implements Rules U2b–U2f. Called at u in Case 3 with
// active degree 2, message received from an active root: if u can prove
// locally that forwarding into the component containing the origin would
// send the message down a forced path that Rule S2 (at s) or Rule US2 (at
// the vertex carrying s's passive branch) immediately bounces back to u,
// the reversal is applied at u instead. Returns NoVertex to keep the
// plain U2 decision. Walk-identical to anticipateU2Ref (pinned by
// TestCompactStepMatchesRef).
//
//klocal:hotpath
func anticipateU2(view *prep.View, s, _, u, v graph.Vertex, roots []graph.Vertex, activeIdx int) graph.Vertex {
	// Case U2a: the origin is not on u's routing horizon chart, or sits
	// exactly at the horizon — no anticipation is possible.
	rcv := view.C.Routing
	sLi, ok := rcv.Index(s)
	if !ok || rcv.Dist[sLi] >= rcv.K || s == u {
		return graph.NoVertex
	}
	tLi, ok := rcv.Index(roots[1-activeIdx])
	if !ok {
		return graph.NoVertex
	}
	ci := view.C.CompIdxOf(tLi)
	if ci < 0 || ci != view.C.CompIdxOf(sLi) {
		// The message is moving away from the origin; S2/US2 cannot be
		// imminent on this side.
		return graph.NoVertex
	}
	if simulatesBounce(view, sLi, tLi) {
		return v
	}
	return graph.NoVertex
}

// simPool shares bounce-simulation scratches across calls; the scratch
// type lives in nbhd (substrate working memory), keeping the decision
// path itself stateless.
var simPool = sync.Pool{New: func() any { return nbhd.NewBounceScratch() }}

// simulatesBounce walks the anticipated trajectory inside u's routing
// view, starting with the hop u→first (all positions are local indices
// into view.C.Routing; index order is label order, so every rank
// comparison below matches the reference). It follows only forced U2
// steps (exactly two active branches) and reports whether the walk
// provably terminates in an S2/US2 reversal back along its own
// footsteps; any unprovable or diverging situation aborts with false,
// leaving Rule U2 unchanged (Rules U2b/U2d/U2f).
//
// Branch activity is judged from u's chart: a branch is active for the
// simulated node if it reaches u's knowledge horizon or has visible depth
// at least k. The horizon case is the paper's constraint-vertex chain in
// operational form: on a forced path, depth accumulates hop by hop, so a
// horizon-reaching branch extends at least k from every chain vertex.
//
//klocal:hotpath
func simulatesBounce(view *prep.View, sLi, firstLi int32) bool {
	rcv := view.C.Routing
	sc := simPool.Get().(*nbhd.BounceScratch)
	defer simPool.Put(sc)
	prev, cur := rcv.CenterIdx, firstLi
	for step := 0; step < 4*view.K+4; step++ {
		if rcv.Dist[cur] >= rcv.K {
			return false // cannot see past the horizon
		}
		actRoots, sPassive := sc.Branches(rcv, cur, sLi)
		if cur == sLi || sPassive {
			// Terminal: Rule S2 (cur == s) or US2 (s hangs in a passive
			// branch of cur) is anticipated. Either bounces exactly when
			// the arrival is the higher-rank of two active roots.
			if len(actRoots) != 2 {
				return false
			}
			return prev == actRoots[1]
		}
		if len(actRoots) != 2 {
			return false // the trajectory is not a forced U2 chain
		}
		var next int32
		switch prev {
		case actRoots[0]:
			next = actRoots[1]
		case actRoots[1]:
			next = actRoots[0]
		default:
			return false
		}
		prev, cur = cur, next
	}
	return false
}
