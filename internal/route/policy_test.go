package route

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/prep"
)

func TestPolicyVariantsDeliverExhaustively(t *testing.T) {
	// The Section 6.1 ablation: the dormancy policy only needs to be
	// globally canonical, so the max-rank variant must also deliver
	// everywhere at threshold locality.
	algs := []Algorithm{
		Algorithm1Policy(prep.PolicyMaxRank),
		Algorithm1BPolicy(prep.PolicyMaxRank),
		Algorithm2Policy(prep.PolicyMaxRank),
	}
	maxN := 5
	if testing.Short() {
		maxN = 4
	}
	for n := 2; n <= maxN; n++ {
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			for _, alg := range algs {
				deliverEverywhere(t, alg, g)
			}
			return true
		})
	}
}

func TestPolicyVariantsDeliverRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	algs := []Algorithm{
		Algorithm1Policy(prep.PolicyMaxRank),
		Algorithm1BPolicy(prep.PolicyMaxRank),
		Algorithm2Policy(prep.PolicyMaxRank),
	}
	randomFamily(rng, 25, 20, func(g *graph.Graph) {
		for _, alg := range algs {
			deliverEverywhere(t, alg, g)
		}
	})
}

func TestPolicyNames(t *testing.T) {
	if got := Algorithm1Policy(prep.PolicyMinRank).Name; got != "Algorithm1" {
		t.Errorf("min-rank keeps the base name, got %q", got)
	}
	if got := Algorithm1Policy(prep.PolicyMaxRank).Name; got != "Algorithm1[max-rank]" {
		t.Errorf("name = %q", got)
	}
	if got := Algorithm1BPolicy(prep.PolicyMaxRank).Name; got != "Algorithm1B[max-rank]" {
		t.Errorf("name = %q", got)
	}
	if got := Algorithm2Policy(prep.PolicyMaxRank).Name; got != "Algorithm2[max-rank]" {
		t.Errorf("name = %q", got)
	}
}

func TestPoliciesDifferOnFig13(t *testing.T) {
	// On the Figure 13 instance the policies pick different dormant
	// edges... the cycle there is longer than 2k, so preprocessing is a
	// no-op and both policies coincide; use a small-cycle instance
	// instead: Fig 17, where the small cycle's extreme edges differ.
	f, err := gen.NewFig17(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	vMin := prep.PreprocessPolicy(f.G, f.S, f.K, prep.PolicyMinRank)
	vMax := prep.PreprocessPolicy(f.G, f.S, f.K, prep.PolicyMaxRank)
	if len(vMin.Dormant) == 0 || len(vMax.Dormant) == 0 {
		t.Fatal("both policies should classify a dormant edge on the small cycle")
	}
	if vMin.Dormant[0] == vMax.Dormant[0] {
		t.Errorf("policies chose the same dormant edge %v; expected extremes to differ", vMin.Dormant[0])
	}
}
