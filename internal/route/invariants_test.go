package route

import (
	"math/rand"
	"testing"

	"klocal/internal/graph"
	"klocal/internal/prep"
	"klocal/internal/sim"
)

// These tests machine-check the structural claims the paper's proofs rest
// on, executed over randomized workloads.

// TestObservation1DirectedEdgesOnce: on every successful route of a
// predecessor-aware algorithm, each edge is traversed at most once in
// each direction.
func TestObservation1DirectedEdgesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	algs := []Algorithm{Algorithm1(), Algorithm1B(), Algorithm2()}
	randomFamily(rng, 30, 22, func(g *graph.Graph) {
		for _, alg := range algs {
			k := alg.MinK(g.N())
			f := alg.Bind(g, k)
			vs := g.Vertices()
			for trial := 0; trial < 4; trial++ {
				s := vs[rng.Intn(len(vs))]
				dst := vs[rng.Intn(len(vs))]
				if s == dst {
					continue
				}
				res := sim.Run(g, sim.Func(f), s, dst,
					sim.Options{DetectLoops: false, PredecessorAware: true})
				if res.Outcome != sim.Delivered {
					t.Fatalf("%s failed %d->%d on %v", alg.Name, s, dst, g)
				}
				seen := make(map[[2]graph.Vertex]bool)
				for i := 1; i < len(res.Route); i++ {
					de := [2]graph.Vertex{res.Route[i-1], res.Route[i]}
					if seen[de] {
						t.Fatalf("%s: directed edge %v repeated on a successful route %v",
							alg.Name, de, res.Route)
					}
					seen[de] = true
				}
			}
		}
	})
}

// TestCorollary3ConsistentEdgesOnly: outside Case 1's shortest-path
// endgame (which the paper routes through the raw neighbourhood),
// Algorithms 1, 1B and 2 forward only along globally consistent edges —
// the property Lemmas 8, 11 and 16 count route edges with.
func TestCorollary3ConsistentEdgesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	algs := []Algorithm{Algorithm1(), Algorithm1B(), Algorithm2()}
	randomFamily(rng, 20, 18, func(g *graph.Graph) {
		for _, alg := range algs {
			k := alg.MinK(g.N())
			consistent := make(map[graph.Edge]bool)
			for _, e := range prep.ConsistentEdges(g, k) {
				consistent[e] = true
			}
			f := alg.Bind(g, k)
			vs := g.Vertices()
			for trial := 0; trial < 4; trial++ {
				s := vs[rng.Intn(len(vs))]
				dst := vs[rng.Intn(len(vs))]
				if s == dst {
					continue
				}
				res := sim.Run(g, sim.Func(f), s, dst,
					sim.Options{DetectLoops: true, PredecessorAware: true})
				if res.Outcome != sim.Delivered {
					t.Fatalf("%s failed %d->%d", alg.Name, s, dst)
				}
				for i := 1; i < len(res.Route); i++ {
					u := res.Route[i-1]
					if g.Dist(u, dst) <= k {
						break // Case 1 endgame: raw shortest path
					}
					e := graph.NewEdge(u, res.Route[i])
					if !consistent[e] {
						t.Fatalf("%s used inconsistent edge %v outside the endgame on route %v (k=%d, g=%v)",
							alg.Name, e, res.Route, k, g)
					}
				}
			}
		}
	})
}

// TestCorollary4PassiveEntryOnlyForT: outside Case 1, the message never
// enters a passive component; operationally, whenever a hop of
// Algorithm 1 leaves the active roots of the current view, the
// destination must be visible (Case 1).
func TestCorollary4PassiveEntryOnlyForT(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	alg := Algorithm1()
	randomFamily(rng, 20, 18, func(g *graph.Graph) {
		k := alg.MinK(g.N())
		p := prep.NewPreprocessor(g, k)
		f := alg.Bind(g, k)
		vs := g.Vertices()
		for trial := 0; trial < 4; trial++ {
			s := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			if s == dst {
				continue
			}
			res := sim.Run(g, sim.Func(f), s, dst,
				sim.Options{DetectLoops: true, PredecessorAware: true})
			if res.Outcome != sim.Delivered {
				t.Fatalf("failed %d->%d", s, dst)
			}
			for i := 1; i < len(res.Route); i++ {
				u, hop := res.Route[i-1], res.Route[i]
				view := p.At(u)
				if view.Raw.Contains(dst) {
					continue // Case 1: shortest-path endgame
				}
				isActiveRoot := false
				for _, r := range view.ActiveRoots {
					if r == hop {
						isActiveRoot = true
					}
				}
				if !isActiveRoot {
					t.Fatalf("hop %d->%d enters a non-active neighbour with t invisible (route %v)",
						u, hop, res.Route)
				}
			}
		}
	})
}

// TestCase1ShortestEndgame: once the destination enters the current
// node's raw k-neighbourhood, the remaining route is exactly a shortest
// path.
func TestCase1ShortestEndgame(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	algs := []Algorithm{Algorithm1(), Algorithm1B(), Algorithm2()}
	randomFamily(rng, 15, 18, func(g *graph.Graph) {
		for _, alg := range algs {
			k := alg.MinK(g.N())
			f := alg.Bind(g, k)
			vs := g.Vertices()
			for trial := 0; trial < 3; trial++ {
				s := vs[rng.Intn(len(vs))]
				dst := vs[rng.Intn(len(vs))]
				if s == dst {
					continue
				}
				res := sim.Run(g, sim.Func(f), s, dst,
					sim.Options{DetectLoops: true, PredecessorAware: true})
				if res.Outcome != sim.Delivered {
					t.Fatalf("%s failed %d->%d", alg.Name, s, dst)
				}
				// Find the first route position where dist(u, t) <= k;
				// from there the remaining hops must equal the distance.
				for i, u := range res.Route {
					if g.Dist(u, dst) <= k {
						remaining := len(res.Route) - 1 - i
						if remaining != g.Dist(u, dst) {
							t.Fatalf("%s: endgame from %d has %d hops, dist is %d (route %v)",
								alg.Name, u, remaining, g.Dist(u, dst), res.Route)
						}
						break
					}
				}
			}
		}
	})
}

// TestRouteLengthWithinPaperBound: the absolute route-length bounds
// behind the dilation theorems — Algorithm 1's successful routes use at
// most 2m directed... the proofs bound routes by |E(T)| + 2|E(Q)| + 1;
// we check the coarser Observation 1 consequence: length ≤ 2m.
func TestRouteLengthWithinPaperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	algs := []Algorithm{Algorithm1(), Algorithm1B(), Algorithm2()}
	randomFamily(rng, 20, 20, func(g *graph.Graph) {
		for _, alg := range algs {
			k := alg.MinK(g.N())
			f := alg.Bind(g, k)
			vs := g.Vertices()
			for trial := 0; trial < 3; trial++ {
				s := vs[rng.Intn(len(vs))]
				dst := vs[rng.Intn(len(vs))]
				if s == dst {
					continue
				}
				res := sim.Run(g, sim.Func(f), s, dst,
					sim.Options{DetectLoops: true, PredecessorAware: true})
				if res.Outcome != sim.Delivered {
					t.Fatalf("%s failed", alg.Name)
				}
				if res.Len() > 2*g.M() {
					t.Fatalf("%s route %d exceeds 2m=%d", alg.Name, res.Len(), 2*g.M())
				}
			}
		}
	})
}
