// Package route implements the paper's k-local routing algorithms:
// Algorithm 1 (origin-aware, predecessor-aware, k ≥ n/4), Algorithm 1B
// (Appendix A refinement with dilation ≤ 6), Algorithm 2
// (origin-oblivious, predecessor-aware, k ≥ n/3) and Algorithm 3
// (origin- and predecessor-oblivious, k ≥ ⌊n/2⌋), plus the baselines used
// by the experiments. See doc.go for how the figure-only forwarding rules
// were reconstructed.
package route

import (
	"errors"
	"fmt"
	"sync"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/prep"
)

// Func is the paper's routing function f(s, t, u, v, G_k(u)): given the
// origin s, destination t, current node u and predecessor v (graph.NoVertex
// before the first hop), it returns the neighbour of u to forward to. The
// k-neighbourhood is implicit: a Func is bound to a fixed network and
// locality by Algorithm.Bind and consults only the local view of u.
//
// Origin-oblivious algorithms ignore s; predecessor-oblivious algorithms
// ignore v.
type Func func(s, t, u, v graph.Vertex) (graph.Vertex, error)

// Algorithm describes a routing algorithm and binds it to networks.
type Algorithm struct {
	// Name identifies the algorithm in experiment output.
	Name string
	// OriginAware reports whether the routing function reads s.
	OriginAware bool
	// PredecessorAware reports whether the routing function reads v.
	PredecessorAware bool
	// Randomized reports that forwarding decisions are not a
	// deterministic function of the state, so walk-state repetition does
	// not imply livelock.
	Randomized bool
	// MinK returns the locality threshold T(n) above which the algorithm
	// guarantees delivery on every connected graph with n nodes, or 0 if
	// the algorithm makes no such guarantee (baselines).
	MinK func(n int) int
	// Bind fixes the network and locality, returning the routing function.
	Bind func(g *graph.Graph, k int) Func
	// Policy is the dormant-edge policy the algorithm preprocesses with;
	// zero for algorithms that need no preprocessing (Algorithm 3 and the
	// baselines).
	Policy prep.Policy
	// BindCached, when non-nil, binds the routing function over an
	// externally owned preprocessor — the traffic engine uses it to share
	// one sharded view cache across all messages of a snapshot (and
	// across Bind calls that would otherwise each build their own).
	// The preprocessor must have been built for the same policy.
	BindCached func(p *prep.Preprocessor) Func
	// BindStore, when non-nil, binds the routing function over a
	// bigraph.Store — CSR-backed (possibly mmap'd) million-node
	// topologies included. Nil for baselines that need full topology
	// knowledge (the oracle), which a k-local store deliberately cannot
	// provide.
	BindStore func(st bigraph.Store, k int) Func
}

// Errors reported by routing functions. A routing error means the
// algorithm's preconditions do not hold (typically k below threshold);
// the simulator records it as a delivery failure.
var (
	// ErrLocalityTooSmall means the local structure violated the
	// algorithm's invariants (e.g. more active components than the rules
	// cover), which can only happen below the locality threshold.
	ErrLocalityTooSmall = errors.New("route: locality parameter too small for this algorithm")
	// ErrNoRoute means no admissible forwarding decision exists (e.g. the
	// destination is unreachable or outside every component).
	ErrNoRoute = errors.New("route: no admissible forwarding decision")
)

// MinK1 is Theorem 5's threshold for Algorithms 1 and 1B: the least
// integer k with k ≥ n/4.
func MinK1(n int) int { return (n + 3) / 4 }

// MinK2 is Theorem 7's threshold for Algorithm 2: the least integer k
// with k ≥ n/3.
func MinK2(n int) int { return (n + 2) / 3 }

// MinK3 is Theorem 8's threshold for Algorithm 3: ⌊n/2⌋.
func MinK3(n int) int { return n / 2 }

// ruleKind selects which of the paper's rule families applies at the
// current node (Cases 2, 3 and 4 of Algorithm 1).
type ruleKind int

const (
	rulesS  ruleKind = iota + 1 // Case 2: u is the origin (Figure 10)
	rulesU                      // Case 3: s absent or in an active component (Figure 11)
	rulesUS                     // Case 4: s in a passive component (Figure 12)
)

// arrival describes where the message came from, resolved against the
// local component structure.
type arrival int

const (
	arrivalFirst    arrival = iota + 1 // v = ⊥ (the origin's first send)
	arrivalActive                      // v is an active neighbour (roots[activeIdx])
	arrivalSPassive                    // v lies in the passive component containing s
	arrivalPassive                     // v lies in some other passive component
)

// decideActive applies the S/U/US rule tables to pick the next active
// neighbour. roots is the rank-ordered list of active neighbours;
// activeIdx identifies the arrival root when from == arrivalActive.
//
// The tables (reconstructed from Figures 10–12; see doc.go):
//
//	U:  d=1: always a1 (reversing if the message came from a1);
//	    d=2: a1↔a2; d=3: a1→a2→a3→a1; from a passive component: a1.
//	S:  first send: a1; d=1: a1→a1;
//	    d=2: a1→a2, a2→a2 (reversal); d=3: a1→a2→a3, a3→a3 (reversal).
//	US: from the passive component containing s: a1; active arrivals as S.
func decideActive(kind ruleKind, roots []graph.Vertex, from arrival, activeIdx int) (graph.Vertex, error) {
	d := len(roots)
	if d == 0 {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("%w: no active components", ErrNoRoute)
	}
	if d > 3 {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("%w: active degree %d > 3", ErrLocalityTooSmall, d)
	}
	if from != arrivalActive {
		// First send, passive arrivals, and the s-passive arrival all
		// enter at the lowest-rank active neighbour.
		return roots[0], nil
	}
	switch kind {
	case rulesU:
		// Pure circular permutation by rank (a1 a2 ... ad); with d = 1
		// this degenerates to the U1 reversal.
		return roots[(activeIdx+1)%d], nil
	case rulesS, rulesUS:
		// Circular by rank, except the highest-rank arrival reverses
		// (Rules S1/US1 for d = 1; S2/US2 for d = 2; S3/US3 for d = 3).
		if activeIdx == d-1 {
			return roots[d-1], nil
		}
		return roots[activeIdx+1], nil
	default:
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("%w: unknown rule kind", ErrNoRoute)
	}
}

// classifyArrival resolves the predecessor v against the view's compact
// encoding: two binary searches and array loads, no component scans.
//
//klocal:hotpath
func classifyArrival(view *prep.View, s, v graph.Vertex, originAware bool) (arrival, int) {
	if v == graph.NoVertex {
		return arrivalFirst, -1
	}
	for i, r := range view.ActiveRoots {
		if r == v {
			return arrivalActive, i
		}
	}
	if originAware {
		if vi, ok := view.C.Routing.Index(v); ok {
			if ci := view.C.CompIdxOf(vi); ci >= 0 && !view.C.Comps[ci].Active {
				if si, ok := view.C.Routing.Index(s); ok && view.C.CompIdxOf(si) == ci {
					return arrivalSPassive, -1
				}
			}
		}
	}
	return arrivalPassive, -1
}

// kindAt resolves which rule family applies at u for origin s.
//
//klocal:hotpath
func kindAt(view *prep.View, s, u graph.Vertex) ruleKind {
	if u == s {
		return rulesS
	}
	if si, ok := view.C.Routing.Index(s); ok {
		if ci := view.C.CompIdxOf(si); ci >= 0 && !view.C.Comps[ci].Active {
			return rulesUS
		}
	}
	return rulesU
}

// caseOneHop returns the Case 1 forwarding decision (t visible in the raw
// k-neighbourhood: follow a shortest path) or NoVertex if Case 1 does not
// apply. The routing function always evaluates at the view's centre, so
// the precomputed next-hop table answers in one binary search — this
// deletes the per-hop BFS that dominated the old profile.
//
//klocal:hotpath
func caseOneHop(view *prep.View, t graph.Vertex) graph.Vertex {
	return view.C.NextHopFromCenter(t)
}

// refineU2 is the Algorithm 1B hook: called in Case 3 with active degree
// 2 on an arrival from an active root, it may override the default U2
// decision with a pre-emptive reversal (Rules U2b–U2f). Returning
// NoVertex keeps the default.
type refineU2 func(view *prep.View, s, t, u, v graph.Vertex, roots []graph.Vertex, activeIdx int) graph.Vertex

// stepAware is the shared body of Algorithms 1 and 1B.
//
//klocal:hotpath
func stepAware(p *prep.Preprocessor, s, t, u, v graph.Vertex, refine refineU2) (graph.Vertex, error) {
	view := p.At(u)
	if hop := caseOneHop(view, t); hop != graph.NoVertex {
		return hop, nil
	}
	kind := kindAt(view, s, u)
	from, idx := classifyArrival(view, s, v, true)
	if kind == rulesU && from == arrivalActive && len(view.ActiveRoots) == 2 && refine != nil {
		if hop := refine(view, s, t, u, v, view.ActiveRoots, idx); hop != graph.NoVertex {
			return hop, nil
		}
	}
	return decideActive(kind, view.ActiveRoots, from, idx)
}

// Algorithm1 returns the paper's Algorithm 1: the (n/4)-local,
// origin-aware, predecessor-aware routing algorithm of Theorem 5
// (guaranteed delivery for k ≥ n/4, dilation < 7).
func Algorithm1() Algorithm {
	return Algorithm1Policy(prep.PolicyMinRank)
}

// Algorithm1Policy is Algorithm 1 under an explicit dormant-edge policy —
// the ablation hook Section 6.1 suggests for exploring dilation below 6.
func Algorithm1Policy(pol prep.Policy) Algorithm {
	name := "Algorithm1"
	if pol != prep.PolicyMinRank {
		name += "[" + pol.String() + "]"
	}
	bind := func(p *prep.Preprocessor) Func {
		return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
			return stepAware(p, s, t, u, v, nil)
		}
	}
	return Algorithm{
		Name:             name,
		OriginAware:      true,
		PredecessorAware: true,
		MinK:             MinK1,
		Policy:           pol,
		BindCached:       bind,
		Bind: func(g *graph.Graph, k int) Func {
			return bind(prep.NewPreprocessorPolicy(g, k, pol))
		},
		BindStore: func(st bigraph.Store, k int) Func {
			return bind(prep.NewPreprocessorStore(st, k, pol))
		},
	}
}

// Algorithm2 returns the paper's Algorithm 2: the (n/3)-local,
// origin-oblivious, predecessor-aware routing algorithm of Theorem 7
// (guaranteed delivery for k ≥ n/3, dilation < 3, optimal by Theorem 4).
func Algorithm2() Algorithm {
	return Algorithm2Policy(prep.PolicyMinRank)
}

// Algorithm2Policy is Algorithm 2 under an explicit dormant-edge policy.
func Algorithm2Policy(pol prep.Policy) Algorithm {
	name := "Algorithm2"
	if pol != prep.PolicyMinRank {
		name += "[" + pol.String() + "]"
	}
	bind := func(p *prep.Preprocessor) Func {
		return func(_, t, u, v graph.Vertex) (graph.Vertex, error) {
			view := p.At(u)
			if hop := caseOneHop(view, t); hop != graph.NoVertex {
				return hop, nil
			}
			roots := view.ActiveRoots
			if len(roots) > 2 {
				//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
				return graph.NoVertex, fmt.Errorf("%w: active degree %d > 2", ErrLocalityTooSmall, len(roots))
			}
			from, idx := classifyArrival(view, graph.NoVertex, v, false)
			return decideActive(rulesU, roots, from, idx)
		}
	}
	return Algorithm{
		Name:             name,
		OriginAware:      false,
		PredecessorAware: true,
		MinK:             MinK2,
		Policy:           pol,
		BindCached:       bind,
		Bind: func(g *graph.Graph, k int) Func {
			return bind(prep.NewPreprocessorPolicy(g, k, pol))
		},
		BindStore: func(st bigraph.Store, k int) Func {
			return bind(prep.NewPreprocessorStore(st, k, pol))
		},
	}
}

// Algorithm3 returns the paper's Algorithm 3: the ⌊n/2⌋-local,
// origin-oblivious, predecessor-oblivious routing algorithm of Theorem 8.
// It needs no preprocessing and always follows a shortest path: if t is
// not visible, u has exactly one constrained active component
// (Lemma 12) and the message moves toward its furthest constraint vertex.
func Algorithm3() Algorithm {
	return Algorithm{
		Name:             "Algorithm3",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             MinK3,
		Bind: func(g *graph.Graph, k int) Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				sc := alg3Scratch.Get().(*nbhd.Scratch)
				defer alg3Scratch.Put(sc)
				if !sc.ExtractGraph(g, u, k) {
					//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
					return graph.NoVertex, fmt.Errorf("%w: current node outside network", ErrNoRoute)
				}
				return alg3StepCompact(sc, t)
			}
		},
		BindStore: func(st bigraph.Store, k int) Func {
			if c, ok := st.(*bigraph.CSR); ok {
				return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
					sc := alg3Scratch.Get().(*nbhd.Scratch)
					defer alg3Scratch.Put(sc)
					if !sc.ExtractCSR(c, u, k) {
						//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
						return graph.NoVertex, fmt.Errorf("%w: current node outside network", ErrNoRoute)
					}
					return alg3StepCompact(sc, t)
				}
			}
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				return alg3StepRef(nbhd.ExtractStore(st, u, k), t, u)
			}
		},
	}
}

// alg3Scratch pools the compact extraction scratch across Algorithm 3
// steps (Algorithm 3 has no preprocessor, so its per-hop extraction
// cannot be cached — but its working memory can).
var alg3Scratch = sync.Pool{New: func() any { return nbhd.NewScratch() }}

// alg3StepCompact is Algorithm 3's forwarding decision over the compact
// view already extracted into sc: shortest path when t is visible,
// otherwise the Lemma 12 move toward the furthest constraint vertex of
// the unique constrained active component. Walk-identical to alg3StepRef
// (pinned by TestCompactStepMatchesRef and the fuzz "compact" property).
//
//klocal:hotpath
func alg3StepCompact(sc *nbhd.Scratch, t graph.Vertex) (graph.Vertex, error) {
	cv := &sc.View
	if ti, ok := cv.Index(t); ok {
		hop := sc.NextHopToward(cv.CenterIdx, ti)
		if hop < 0 {
			//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
			return graph.NoVertex, fmt.Errorf("%w: t unreachable in view", ErrNoRoute)
		}
		return cv.Verts[hop], nil
	}
	sc.Classify()
	var constrained *nbhd.CompactComponent
	active := 0
	for i := range sc.Comps {
		c := &sc.Comps[i]
		if !c.Active {
			continue
		}
		active++
		if c.Constrained {
			constrained = c
		}
	}
	if active != 1 || constrained == nil {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("%w: Lemma 12 precondition violated (%d active components)", ErrLocalityTooSmall, active)
	}
	// The furthest constraint vertex; ties broken by rank (Constraints
	// is label-sorted, so the first maximum is canonical).
	target := int32(-1)
	best := int32(-1)
	for _, w := range constrained.Constraints {
		if d := cv.Dist[w]; d > best {
			best = d
			target = w
		}
	}
	hop := sc.NextHopToward(cv.CenterIdx, target)
	if hop < 0 {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("%w: constraint vertex unreachable", ErrNoRoute)
	}
	return cv.Verts[hop], nil
}
