package route

import (
	"fmt"
	"math/rand"
	"sync"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// TreeRightHand returns the naive right-hand rule that motivates
// Algorithm 1 (Figure 7): deliver if the destination is visible,
// otherwise forward to the successor of the incoming port in the circular
// rank order of all neighbours. It guarantees delivery on trees for any
// k ≥ 1 but is defeated by cycles longer than 2k.
func TreeRightHand() Algorithm {
	step := func(extract viewAt, k int) Func {
		return func(_, t, u, v graph.Vertex) (graph.Vertex, error) {
			view := extract(u, k)
			if view.Contains(t) {
				if hop := view.G.NextHopToward(u, t); hop != graph.NoVertex {
					return hop, nil
				}
			}
			// G_k(u) carries every edge at u for k ≥ 1, so the view's
			// adjacency at u is the true port list. A router always
			// knows its own ports (Section 2), so at k == 0 — where
			// the view has no edges — take them from G_1(u).
			adj := view.G.Adj(u)
			if k < 1 {
				adj = extract(u, 1).G.Adj(u)
			}
			if len(adj) == 0 {
				//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
				return graph.NoVertex, fmt.Errorf("%w: isolated node", ErrNoRoute)
			}
			if v == graph.NoVertex {
				return adj[0], nil
			}
			// Hand-rolled binary search: sort.Search's closure would
			// allocate on every forwarding decision.
			lo, hi := 0, len(adj)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if adj[mid] < v {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			i := lo
			if i == len(adj) || adj[i] != v {
				return adj[0], nil
			}
			return adj[(i+1)%len(adj)], nil
		}
	}
	return Algorithm{
		Name:             "RightHandRule",
		OriginAware:      false,
		PredecessorAware: true,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, k int) Func {
			return step(graphViews(g), k)
		},
		BindStore: func(st bigraph.Store, k int) Func {
			return step(storeViews(st), k)
		},
	}
}

// viewAt abstracts where G_k(u) views come from, so baselines bind
// identically over graphs and stores.
type viewAt func(u graph.Vertex, k int) *nbhd.Neighborhood

func graphViews(g *graph.Graph) viewAt {
	return func(u graph.Vertex, k int) *nbhd.Neighborhood { return nbhd.Extract(g, u, k) }
}

func storeViews(st bigraph.Store) viewAt {
	return func(u graph.Vertex, k int) *nbhd.Neighborhood { return nbhd.ExtractStore(st, u, k) }
}

// ShortestPathOracle returns the centralized baseline: a router with full
// topology knowledge that always forwards along a shortest path. It is
// the "routing table" comparator for the dilation experiments.
func ShortestPathOracle() Algorithm {
	return Algorithm{
		Name:             "ShortestPathOracle",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, _ int) Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				//klocal:allow the oracle baseline has full topology knowledge by design (the comparator the paper's model forbids)
				hop := g.NextHopToward(u, t)
				if hop == graph.NoVertex {
					//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
					return graph.NoVertex, fmt.Errorf("%w: destination unreachable", ErrNoRoute)
				}
				return hop, nil
			}
		},
	}
}

// RandomWalk returns the randomized reference discussed in Section 3
// (Chen et al.) with a self-contained generator: every Bind derives a
// fresh *rand.Rand from seed, so repeated binds of the same Algorithm
// value replay identical draw sequences. See RandomWalkRand for the
// caller-owned-generator variant.
func RandomWalk(seed int64) Algorithm {
	return randomWalk(func() *rand.Rand { return rand.New(rand.NewSource(seed)) })
}

// RandomWalkRand is RandomWalk drawing from an explicit caller-owned
// generator, shared (and serialized) across every Bind of the returned
// Algorithm. Randomness enters routing only through such an explicit
// seeded *rand.Rand — never through math/rand's ambient global
// functions — which is what lets the kdeterminism analyzer whitelist
// the baseline structurally instead of by path.
func RandomWalkRand(rng *rand.Rand) Algorithm {
	return randomWalk(func() *rand.Rand { return rng })
}

// randomWalk builds the baseline over a generator source: forward to a
// uniformly random neighbour, delivering when the destination becomes
// visible. Expected route length on adversarial instances is Θ(n²), the
// benchmark's contrast to the deterministic bounds. The returned routing
// function serializes its RNG and is safe for concurrent use; for
// reproducible concurrent randomized runs, bind one walker per worker
// with distinct seeds.
func randomWalk(newRNG func() *rand.Rand) Algorithm {
	var mu sync.Mutex
	step := func(extract viewAt, k int) Func {
		rng := newRNG()
		return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
			view := extract(u, k)
			if view.Contains(t) {
				if hop := view.G.NextHopToward(u, t); hop != graph.NoVertex {
					return hop, nil
				}
			}
			adj := view.G.Adj(u)
			if k < 1 {
				// Ports are always known (Section 2): use G_1(u).
				adj = extract(u, 1).G.Adj(u)
			}
			if len(adj) == 0 {
				//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
				return graph.NoVertex, fmt.Errorf("%w: isolated node", ErrNoRoute)
			}
			mu.Lock()
			hop := adj[rng.Intn(len(adj))]
			mu.Unlock()
			return hop, nil
		}
	}
	return Algorithm{
		Name:             "RandomWalk",
		OriginAware:      false,
		PredecessorAware: false,
		Randomized:       true,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, k int) Func {
			return step(graphViews(g), k)
		},
		BindStore: func(st bigraph.Store, k int) Func {
			return step(storeViews(st), k)
		},
	}
}
