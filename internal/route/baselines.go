package route

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// TreeRightHand returns the naive right-hand rule that motivates
// Algorithm 1 (Figure 7): deliver if the destination is visible,
// otherwise forward to the successor of the incoming port in the circular
// rank order of all neighbours. It guarantees delivery on trees for any
// k ≥ 1 but is defeated by cycles longer than 2k.
func TreeRightHand() Algorithm {
	return Algorithm{
		Name:             "RightHandRule",
		OriginAware:      false,
		PredecessorAware: true,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, k int) Func {
			return func(_, t, u, v graph.Vertex) (graph.Vertex, error) {
				view := nbhd.Extract(g, u, k)
				if view.Contains(t) {
					if hop := view.G.NextHopToward(u, t); hop != graph.NoVertex {
						return hop, nil
					}
				}
				adj := g.Adj(u)
				if len(adj) == 0 {
					return graph.NoVertex, fmt.Errorf("%w: isolated node", ErrNoRoute)
				}
				if v == graph.NoVertex {
					return adj[0], nil
				}
				i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
				if i == len(adj) || adj[i] != v {
					return adj[0], nil
				}
				return adj[(i+1)%len(adj)], nil
			}
		},
	}
}

// ShortestPathOracle returns the centralized baseline: a router with full
// topology knowledge that always forwards along a shortest path. It is
// the "routing table" comparator for the dilation experiments.
func ShortestPathOracle() Algorithm {
	return Algorithm{
		Name:             "ShortestPathOracle",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, _ int) Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				hop := g.NextHopToward(u, t)
				if hop == graph.NoVertex {
					return graph.NoVertex, fmt.Errorf("%w: destination unreachable", ErrNoRoute)
				}
				return hop, nil
			}
		},
	}
}

// RandomWalk returns the randomized reference discussed in Section 3
// (Chen et al.): forward to a uniformly random neighbour, delivering when
// the destination becomes visible. Expected route length on adversarial
// instances is Θ(n²), the benchmark's contrast to the deterministic
// bounds. The returned routing function serializes its RNG and is safe
// for concurrent use.
func RandomWalk(seed int64) Algorithm {
	return Algorithm{
		Name:             "RandomWalk",
		OriginAware:      false,
		PredecessorAware: false,
		Randomized:       true,
		MinK:             func(int) int { return 0 },
		Bind: func(g *graph.Graph, k int) Func {
			var mu sync.Mutex
			rng := rand.New(rand.NewSource(seed))
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				view := nbhd.Extract(g, u, k)
				if view.Contains(t) {
					if hop := view.G.NextHopToward(u, t); hop != graph.NoVertex {
						return hop, nil
					}
				}
				adj := g.Adj(u)
				if len(adj) == 0 {
					return graph.NoVertex, fmt.Errorf("%w: isolated node", ErrNoRoute)
				}
				mu.Lock()
				hop := adj[rng.Intn(len(adj))]
				mu.Unlock()
				return hop, nil
			}
		},
	}
}
