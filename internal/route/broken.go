package route

import (
	"fmt"

	"klocal/internal/graph"
	"klocal/internal/prep"
)

// Algorithm2Broken is Algorithm 2 with its one non-trivial decision rule
// disabled: instead of advancing circularly through the active
// neighbours by rank (and honouring the predecessor), every
// beyond-the-horizon decision forwards to the lowest-rank active root,
// as if the message had just entered from a passive component. The
// resulting walk ping-pongs between adjacent nodes whose lowest-rank
// roots face each other, so delivery fails on graphs Algorithm 2 is
// proven to serve.
//
// This variant exists solely as klocalcheck's self-test hook: the
// differential fuzzer must find a delivery violation against it and
// shrink the scenario to a minimal reproducer (see internal/fuzz and
// the acceptance test there). Never route real traffic with it.
func Algorithm2Broken() Algorithm {
	bind := func(p *prep.Preprocessor) Func {
		return func(_, t, u, v graph.Vertex) (graph.Vertex, error) {
			view := p.At(u)
			if hop := caseOneHop(view, t); hop != graph.NoVertex {
				return hop, nil
			}
			roots := view.ActiveRoots
			if len(roots) > 2 {
				//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
				return graph.NoVertex, fmt.Errorf("%w: active degree %d > 2", ErrLocalityTooSmall, len(roots))
			}
			// BROKEN: the arrival classification is discarded, so the
			// circular-advance rule never fires and the predecessor is
			// effectively ignored.
			_ = v
			return decideActive(rulesU, roots, arrivalPassive, -1)
		}
	}
	return Algorithm{
		Name:             "Algorithm2[broken:no-advance]",
		OriginAware:      false,
		PredecessorAware: true,
		MinK:             MinK2,
		Policy:           prep.PolicyMinRank,
		BindCached:       bind,
		Bind: func(g *graph.Graph, k int) Func {
			return bind(prep.NewPreprocessorPolicy(g, k, prep.PolicyMinRank))
		},
	}
}
