package route

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

// TestCompactStepMatchesRef pins the production (compact, int-indexed)
// decision paths to the retained map-based reference implementations:
// every algorithm must produce hop-for-hop identical walks on random
// graphs at and above its locality threshold. Any divergence is a bug in
// the compact encoding, not in the references.
func TestCompactStepMatchesRef(t *testing.T) {
	pairs := []struct {
		name string
		prod Algorithm
		ref  Algorithm
	}{
		{"Algorithm1", Algorithm1(), Algorithm1Ref()},
		{"Algorithm1B", Algorithm1B(), Algorithm1BRef()},
		{"Algorithm2", Algorithm2(), Algorithm2Ref()},
		{"Algorithm3", Algorithm3(), Algorithm3Ref()},
	}
	rng := rand.New(rand.NewSource(97))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	randomFamily(rng, trials, 14, func(g *graph.Graph) {
		n := g.N()
		for _, p := range pairs {
			// Also exercise one k above threshold: the component
			// structure (and therefore the rule traffic) changes with k.
			for _, k := range []int{p.prod.MinK(n), p.prod.MinK(n) + 1} {
				fProd := p.prod.Bind(g, k)
				fRef := p.ref.Bind(g, k)
				vs := g.Vertices()
				for trial := 0; trial < 6; trial++ {
					s := vs[rng.Intn(len(vs))]
					dst := vs[rng.Intn(len(vs))]
					if s == dst {
						continue
					}
					opts := sim.Options{
						DetectLoops:      true,
						PredecessorAware: p.prod.PredecessorAware,
					}
					got := sim.Run(g, sim.Func(fProd), s, dst, opts)
					want := sim.Run(g, sim.Func(fRef), s, dst, opts)
					if got.Outcome != want.Outcome {
						t.Fatalf("%s k=%d s=%d t=%d: outcome %v want %v (g=%v)",
							p.name, k, s, dst, got.Outcome, want.Outcome, g)
					}
					if len(got.Route) != len(want.Route) {
						t.Fatalf("%s k=%d s=%d t=%d: route %v want %v (g=%v)",
							p.name, k, s, dst, got.Route, want.Route, g)
					}
					for i := range want.Route {
						if got.Route[i] != want.Route[i] {
							t.Fatalf("%s k=%d s=%d t=%d: hop %d is %d want %d (route %v want %v, g=%v)",
								p.name, k, s, dst, i, got.Route[i], want.Route[i], got.Route, want.Route, g)
						}
					}
				}
			}
		}
	})
}

// TestCompactStepMatchesRefExhaustively is the exhaustive small-n version:
// every connected graph, every (s,t) pair, at the threshold locality.
func TestCompactStepMatchesRefExhaustively(t *testing.T) {
	pairs := []struct {
		name string
		prod Algorithm
		ref  Algorithm
	}{
		{"Algorithm1B", Algorithm1B(), Algorithm1BRef()},
		{"Algorithm2", Algorithm2(), Algorithm2Ref()},
		{"Algorithm3", Algorithm3(), Algorithm3Ref()},
	}
	maxN := 5
	if testing.Short() {
		maxN = 4
	}
	for n := 2; n <= maxN; n++ {
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			for _, p := range pairs {
				k := p.prod.MinK(n)
				fProd := p.prod.Bind(g, k)
				fRef := p.ref.Bind(g, k)
				for _, s := range g.Vertices() {
					for _, dst := range g.Vertices() {
						if s == dst {
							continue
						}
						opts := sim.Options{
							DetectLoops:      true,
							PredecessorAware: p.prod.PredecessorAware,
						}
						got := sim.Run(g, sim.Func(fProd), s, dst, opts)
						want := sim.Run(g, sim.Func(fRef), s, dst, opts)
						if got.Outcome != want.Outcome || len(got.Route) != len(want.Route) {
							t.Fatalf("%s k=%d s=%d t=%d: (%v, %v) want (%v, %v) g=%v",
								p.name, k, s, dst, got.Outcome, got.Route, want.Outcome, want.Route, g)
						}
						for i := range want.Route {
							if got.Route[i] != want.Route[i] {
								t.Fatalf("%s k=%d s=%d t=%d: route %v want %v g=%v",
									p.name, k, s, dst, got.Route, want.Route, g)
							}
						}
					}
				}
			}
			return true
		})
	}
}
