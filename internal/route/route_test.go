package route

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

// deliverEverywhere checks that alg with locality k = alg.MinK(n)
// delivers between every ordered pair of g, and returns the worst
// dilation observed.
func deliverEverywhere(t *testing.T, alg Algorithm, g *graph.Graph) float64 {
	t.Helper()
	n := g.N()
	k := alg.MinK(n)
	f := alg.Bind(g, k)
	worst := 0.0
	for _, s := range g.Vertices() {
		for _, dst := range g.Vertices() {
			if s == dst {
				continue
			}
			res := sim.Run(g, sim.Func(f), s, dst, sim.Options{
				DetectLoops:      true,
				PredecessorAware: alg.PredecessorAware,
			})
			if res.Outcome != sim.Delivered {
				t.Fatalf("%s failed (%v, err=%v) on s=%d t=%d k=%d n=%d g=%v route=%v",
					alg.Name, res.Outcome, res.Err, s, dst, k, n, g, res.Route)
			}
			if d := res.Dilation(); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func exhaustiveMaxN(t *testing.T) int {
	if testing.Short() {
		return 5
	}
	return 6
}

func TestAlgorithm1DeliversExhaustively(t *testing.T) {
	for n := 2; n <= exhaustiveMaxN(t); n++ {
		worst := 0.0
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			if w := deliverEverywhere(t, Algorithm1(), g); w > worst {
				worst = w
			}
			return true
		})
		if worst >= 7 {
			t.Errorf("n=%d: Algorithm 1 dilation %v >= 7", n, worst)
		}
	}
}

func TestAlgorithm1BDeliversExhaustively(t *testing.T) {
	for n := 2; n <= exhaustiveMaxN(t); n++ {
		worst := 0.0
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			if w := deliverEverywhere(t, Algorithm1B(), g); w > worst {
				worst = w
			}
			return true
		})
		if worst >= 6 {
			t.Errorf("n=%d: Algorithm 1B dilation %v >= 6", n, worst)
		}
	}
}

func TestAlgorithm2DeliversExhaustively(t *testing.T) {
	for n := 2; n <= exhaustiveMaxN(t); n++ {
		worst := 0.0
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			if w := deliverEverywhere(t, Algorithm2(), g); w > worst {
				worst = w
			}
			return true
		})
		if worst >= 3 {
			t.Errorf("n=%d: Algorithm 2 dilation %v >= 3", n, worst)
		}
	}
}

func TestAlgorithm3DeliversShortestExhaustively(t *testing.T) {
	for n := 2; n <= exhaustiveMaxN(t); n++ {
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			k := MinK3(n)
			f := Algorithm3().Bind(g, k)
			for _, s := range g.Vertices() {
				for _, dst := range g.Vertices() {
					if s == dst {
						continue
					}
					res := sim.Run(g, sim.Func(f), s, dst, sim.Options{DetectLoops: true})
					if res.Outcome != sim.Delivered {
						t.Fatalf("Algorithm 3 failed (%v, err=%v) on s=%d t=%d n=%d g=%v",
							res.Outcome, res.Err, s, dst, n, g)
					}
					if res.Len() != res.Dist {
						t.Fatalf("Algorithm 3 route %d != dist %d on s=%d t=%d g=%v route=%v",
							res.Len(), res.Dist, s, dst, g, res.Route)
					}
				}
			}
			return true
		})
	}
}

// randomFamily yields random connected graphs with adversarially permuted
// labels.
func randomFamily(rng *rand.Rand, trials, maxN int, fn func(*graph.Graph)) {
	for i := 0; i < trials; i++ {
		n := 8 + rng.Intn(maxN-7)
		g := gen.RandomConnected(rng, n, rng.Float64()*0.25)
		g = g.PermuteLabels(gen.RandomLabelPermutation(rng, g))
		fn(g)
	}
}

func TestAlgorithm1DeliversRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	worst := 0.0
	randomFamily(rng, 60, 26, func(g *graph.Graph) {
		if w := deliverEverywhere(t, Algorithm1(), g); w > worst {
			worst = w
		}
	})
	if worst >= 7 {
		t.Errorf("Algorithm 1 dilation %v >= 7", worst)
	}
}

func TestAlgorithm1BDeliversRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	worst := 0.0
	randomFamily(rng, 60, 26, func(g *graph.Graph) {
		if w := deliverEverywhere(t, Algorithm1B(), g); w > worst {
			worst = w
		}
	})
	if worst >= 6 {
		t.Errorf("Algorithm 1B dilation %v >= 6", worst)
	}
}

func TestAlgorithm2DeliversRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	worst := 0.0
	randomFamily(rng, 60, 26, func(g *graph.Graph) {
		if w := deliverEverywhere(t, Algorithm2(), g); w > worst {
			worst = w
		}
	})
	if worst >= 3 {
		t.Errorf("Algorithm 2 dilation %v >= 3", worst)
	}
}

func TestAlgorithm3ShortestRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	randomFamily(rng, 40, 30, func(g *graph.Graph) {
		n := g.N()
		k := MinK3(n)
		f := Algorithm3().Bind(g, k)
		vs := g.Vertices()
		for trial := 0; trial < 10; trial++ {
			s := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			if s == dst {
				continue
			}
			res := sim.Run(g, sim.Func(f), s, dst, sim.Options{DetectLoops: true})
			if res.Outcome != sim.Delivered || res.Len() != res.Dist {
				t.Fatalf("Algorithm 3: outcome=%v len=%d dist=%d s=%d t=%d g=%v",
					res.Outcome, res.Len(), res.Dist, s, dst, g)
			}
		}
	})
}

func TestAlgorithmsOnStructuredFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	graphs := []*graph.Graph{
		gen.Path(17),
		gen.Cycle(18),
		gen.Star(12),
		gen.Spider(4, 4),
		gen.Grid(3, 5),
		gen.Theta(4, 5, 6),
		gen.Lollipop(11, 5),
		gen.Caterpillar(6, 2),
		gen.Complete(9),
		gen.RandomTree(rng, 19),
	}
	algs := []struct {
		alg      Algorithm
		maxDilat float64
	}{
		{Algorithm1(), 7},
		{Algorithm1B(), 6},
		{Algorithm2(), 3},
		{Algorithm3(), 1.0000001},
	}
	for _, g := range graphs {
		for _, a := range algs {
			if w := deliverEverywhere(t, a.alg, g); w >= a.maxDilat {
				t.Errorf("%s on %v: dilation %v >= %v", a.alg.Name, g, w, a.maxDilat)
			}
		}
	}
}

func TestLemma14Algorithm1BNeverLonger(t *testing.T) {
	// Lemma 14: 1B's edge sequence is a subsequence of Algorithm 1's, so
	// its routes are never longer.
	rng := rand.New(rand.NewSource(106))
	randomFamily(rng, 40, 22, func(g *graph.Graph) {
		n := g.N()
		k := MinK1(n)
		f1 := Algorithm1().Bind(g, k)
		f1b := Algorithm1B().Bind(g, k)
		vs := g.Vertices()
		for trial := 0; trial < 8; trial++ {
			s := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			if s == dst {
				continue
			}
			opts := sim.Options{DetectLoops: true, PredecessorAware: true}
			r1 := sim.Run(g, sim.Func(f1), s, dst, opts)
			r1b := sim.Run(g, sim.Func(f1b), s, dst, opts)
			if r1.Outcome != sim.Delivered || r1b.Outcome != sim.Delivered {
				t.Fatalf("delivery failed: alg1=%v alg1b=%v s=%d t=%d g=%v", r1.Outcome, r1b.Outcome, s, dst, g)
			}
			if r1b.Len() > r1.Len() {
				t.Fatalf("Algorithm 1B route (%d) longer than Algorithm 1 (%d): s=%d t=%d g=%v",
					r1b.Len(), r1.Len(), s, dst, g)
			}
		}
	})
}

func TestFig13Algorithm1ExactRoute(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{16, 4}, {24, 6}, {40, 10}, {41, 10}, {60, 15}} {
		f, err := gen.NewFig13(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run(f.G, sim.Func(Algorithm1().Bind(f.G, tc.k)), f.S, f.T,
			sim.Options{DetectLoops: true, PredecessorAware: true})
		if res.Outcome != sim.Delivered {
			t.Fatalf("n=%d k=%d: %v err=%v route=%v", tc.n, tc.k, res.Outcome, res.Err, res.Route)
		}
		if res.Len() != f.ExpectedRouteLen() {
			t.Errorf("n=%d k=%d: route %d, paper says 2n-k-3 = %d (route=%v)",
				tc.n, tc.k, res.Len(), f.ExpectedRouteLen(), res.Route)
		}
		if res.Dist != f.ShortestLen() {
			t.Errorf("n=%d k=%d: dist %d, want k+3 = %d", tc.n, tc.k, res.Dist, f.ShortestLen())
		}
	}
}

func TestFig13DilationApproaches7(t *testing.T) {
	// 2n−k−3 over k+3 at k = n/4 is 7 − 96/(n+12).
	f, err := gen.NewFig13(96, 24)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(f.G, sim.Func(Algorithm1().Bind(f.G, 24)), f.S, f.T,
		sim.Options{DetectLoops: true, PredecessorAware: true})
	want := 7.0 - 96.0/float64(96+12)
	if got := res.Dilation(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("dilation = %v, want %v", got, want)
	}
}

func TestFig17Algorithm1BExactRoute(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{28, 7}, {32, 8}, {40, 10}, {80, 20}} {
		f, err := gen.NewFig17(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		opts := sim.Options{DetectLoops: true, PredecessorAware: true}
		res := sim.Run(f.G, sim.Func(Algorithm1B().Bind(f.G, tc.k)), f.S, f.T, opts)
		if res.Outcome != sim.Delivered {
			t.Fatalf("n=%d k=%d: 1B %v err=%v route=%v", tc.n, tc.k, res.Outcome, res.Err, res.Route)
		}
		if res.Len() != f.ExpectedRouteLen() {
			t.Errorf("n=%d k=%d: 1B route %d, paper says n+2k-6 = %d (route=%v)",
				tc.n, tc.k, res.Len(), f.ExpectedRouteLen(), res.Route)
		}
		r1 := sim.Run(f.G, sim.Func(Algorithm1().Bind(f.G, tc.k)), f.S, f.T, opts)
		if r1.Outcome != sim.Delivered {
			t.Fatalf("n=%d k=%d: Alg1 %v err=%v", tc.n, tc.k, r1.Outcome, r1.Err)
		}
		if r1.Len() != f.Algorithm1RouteLen() {
			t.Errorf("n=%d k=%d: Alg1 route %d, want n+2k = %d",
				tc.n, tc.k, r1.Len(), f.Algorithm1RouteLen())
		}
	}
}

func TestFig17DilationMatchesFormula(t *testing.T) {
	// The exact route is n+2k−6−2·δ*; with δ* = 0 the paper's
	// (n+2k−6)/(k+1) = 6 − 12/(k+1) is reproduced verbatim.
	f, err := gen.NewFig17(32, 8) // δ* = 0
	if err != nil {
		t.Fatal(err)
	}
	if f.DeltaStar != 0 {
		t.Fatalf("expected δ* = 0, got %d", f.DeltaStar)
	}
	if f.ExpectedRouteLen() != f.PaperRouteLen() {
		t.Fatalf("δ*=0 must reproduce the paper's route length")
	}
	res := sim.Run(f.G, sim.Func(Algorithm1B().Bind(f.G, 8)), f.S, f.T,
		sim.Options{DetectLoops: true, PredecessorAware: true})
	want := 6.0 - 12.0/9.0
	if got := res.Dilation(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("dilation = %v, want %v", got, want)
	}
}

func TestRightHandRuleOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 20; trial++ {
		g := gen.RandomTree(rng, 5+rng.Intn(15))
		if w := deliverEverywhere(t, TreeRightHand(), g); w <= 0 {
			t.Errorf("right-hand rule should deliver on trees (got dilation %v)", w)
		}
	}
}

func TestRightHandRuleDefeatedByFig7(t *testing.T) {
	f, err := gen.NewFig7(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	res := sim.Run(f.G, sim.Func(TreeRightHand().Bind(f.G, k)), f.S, f.T,
		sim.Options{DetectLoops: true, PredecessorAware: true})
	if res.Outcome != sim.Looped {
		t.Errorf("Fig 7 should defeat the right-hand rule at k=4: got %v (route=%v)", res.Outcome, res.Route)
	}
	// The route stayed on the cycle: no visited node ever saw t.
	for _, v := range res.Route {
		if f.G.Dist(v, f.T) <= k {
			t.Errorf("visited node %d is within k of t", v)
		}
	}
}

func TestShortestPathOracle(t *testing.T) {
	g := gen.Grid(4, 4)
	f := ShortestPathOracle().Bind(g, 1)
	res := sim.Run(g, sim.Func(f), 0, 15, sim.Options{DetectLoops: true})
	if res.Outcome != sim.Delivered || res.Len() != res.Dist {
		t.Errorf("oracle: outcome=%v len=%d dist=%d", res.Outcome, res.Len(), res.Dist)
	}
}

func TestRandomWalkEventuallyDelivers(t *testing.T) {
	g := gen.Cycle(10)
	alg := RandomWalk(7)
	f := alg.Bind(g, 2)
	res := sim.Run(g, sim.Func(f), 0, 5, sim.Options{MaxSteps: 100000})
	if res.Outcome != sim.Delivered {
		t.Errorf("random walk on C10 should deliver within the budget: %v", res.Outcome)
	}
}

// RandomWalkRand draws from the caller's generator: with identically
// seeded generators it replays RandomWalk(seed)'s walk exactly, and
// each Bind continues the shared stream instead of restarting it.
func TestRandomWalkRandMatchesSeeded(t *testing.T) {
	g := gen.Cycle(10)
	run := func(f Func) []graph.Vertex {
		return sim.Run(g, sim.Func(f), 0, 5, sim.Options{MaxSteps: 100000}).Route
	}
	seeded := run(RandomWalk(7).Bind(g, 2))
	explicit := run(RandomWalkRand(rand.New(rand.NewSource(7))).Bind(g, 2))
	if !slicesEqual(seeded, explicit) {
		t.Errorf("RandomWalkRand with a fresh seed-7 generator diverged from RandomWalk(7):\n%v\n%v", seeded, explicit)
	}

	// A rebind of the seeded variant restarts the stream; a rebind of
	// the explicit variant continues the caller's generator.
	alg := RandomWalkRand(rand.New(rand.NewSource(7)))
	first := run(alg.Bind(g, 2))
	second := run(alg.Bind(g, 2))
	if !slicesEqual(first, seeded) {
		t.Errorf("first explicit walk should equal the seeded walk")
	}
	if slicesEqual(second, first) {
		t.Errorf("second Bind should continue the generator, not replay the first walk")
	}
}

func slicesEqual(a, b []graph.Vertex) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMinKValues(t *testing.T) {
	tests := []struct {
		n                   int
		want1, want2, want3 int
	}{
		{8, 2, 3, 4},
		{12, 3, 4, 6},
		{13, 4, 5, 6},
		{100, 25, 34, 50},
	}
	for _, tt := range tests {
		if got := MinK1(tt.n); got != tt.want1 {
			t.Errorf("MinK1(%d) = %d, want %d", tt.n, got, tt.want1)
		}
		if got := MinK2(tt.n); got != tt.want2 {
			t.Errorf("MinK2(%d) = %d, want %d", tt.n, got, tt.want2)
		}
		if got := MinK3(tt.n); got != tt.want3 {
			t.Errorf("MinK3(%d) = %d, want %d", tt.n, got, tt.want3)
		}
	}
}

func TestOriginObliviousIgnoresS(t *testing.T) {
	// Algorithm 2 and 3 must return identical decisions whatever s is.
	g := gen.Cycle(12)
	for _, alg := range []Algorithm{Algorithm2(), Algorithm3()} {
		if alg.OriginAware {
			t.Errorf("%s must be origin-oblivious", alg.Name)
		}
		f := alg.Bind(g, alg.MinK(12))
		for _, u := range g.Vertices() {
			for _, v := range append(g.Adj(u), graph.NoVertex) {
				h1, e1 := f(0, 6, u, v)
				h2, e2 := f(3, 6, u, v)
				if h1 != h2 || (e1 == nil) != (e2 == nil) {
					t.Errorf("%s reads s: u=%d v=%d: %v/%v", alg.Name, u, v, h1, h2)
				}
			}
		}
	}
}

func TestPredecessorObliviousIgnoresV(t *testing.T) {
	g := gen.Cycle(12)
	alg := Algorithm3()
	if alg.PredecessorAware {
		t.Error("Algorithm 3 must be predecessor-oblivious")
	}
	f := alg.Bind(g, alg.MinK(12))
	for _, u := range g.Vertices() {
		if u == 6 {
			continue // routing functions are never invoked at u == t
		}
		base, err := f(0, 6, u, graph.NoVertex)
		if err != nil {
			t.Fatalf("u=%d: %v", u, err)
		}
		for _, v := range g.Adj(u) {
			got, err := f(0, 6, u, v)
			if err != nil || got != base {
				t.Errorf("Algorithm 3 reads v at u=%d: %v vs %v (err=%v)", u, got, base, err)
			}
		}
	}
}

func TestAlgorithm1ErrorsBelowThreshold(t *testing.T) {
	// On the Theorem 1 family with k = r < T(n), Algorithm 1 must fail
	// (loop or error) on at least one variant — it cannot beat the lower
	// bound.
	fam, err := gen.NewTheorem1Family(19)
	if err != nil {
		t.Fatal(err)
	}
	k := fam.R // below threshold ⌊(n+1)/4⌋ = r+1
	failed := false
	for _, inst := range fam.Variants {
		res := sim.Run(inst.G, sim.Func(Algorithm1().Bind(inst.G, k)), inst.S, inst.T,
			sim.Options{DetectLoops: true, PredecessorAware: true})
		if res.Outcome != sim.Delivered {
			failed = true
		}
	}
	if !failed {
		t.Error("Algorithm 1 with k < T(n) delivered on every Theorem 1 variant, contradicting the lower bound")
	}
}
