package route

import (
	"math/rand"
	"sync"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/prep"
	"klocal/internal/sim"
)

// The race-safety audit for the traffic engine: every algorithm's bound
// routing function is shared by many concurrent workers routing different
// (s, t) pairs through one closure — and, for the preprocessed
// algorithms, one shared sharded view cache. Run with -race (see the
// Makefile's race target).

func raceAlgorithms() []Algorithm {
	return []Algorithm{
		Algorithm1(),
		Algorithm1B(),
		Algorithm2(),
		Algorithm3(),
		TreeRightHand(),
		ShortestPathOracle(),
		RandomWalk(42),
	}
}

func TestConcurrentRoutingSharedClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.RandomConnected(rng, 20, 0.15)
	vs := g.Vertices()
	for _, alg := range raceAlgorithms() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			k := alg.MinK(g.N())
			if k == 0 {
				k = 5
			}
			f := alg.Bind(g, k) // one closure shared by all workers
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 30; i++ {
						s := vs[r.Intn(len(vs))]
						dst := vs[r.Intn(len(vs))]
						if s == dst {
							continue
						}
						res := sim.Run(g, sim.Func(f), s, dst, sim.Options{
							DetectLoops:      !alg.Randomized,
							PredecessorAware: alg.PredecessorAware,
						})
						if alg.MinK(g.N()) > 0 && res.Outcome != sim.Delivered {
							t.Errorf("%s above threshold: %d->%d %v (%v)", alg.Name, s, dst, res.Outcome, res.Err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestConcurrentRoutingSharedPreprocessor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.RandomConnected(rng, 18, 0.1)
	vs := g.Vertices()
	for _, alg := range []Algorithm{Algorithm1(), Algorithm1B(), Algorithm2()} {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			k := alg.MinK(g.N())
			// One externally owned sharded cache shared across workers,
			// bounded below the vertex count so eviction races with reads.
			p := prep.NewPreprocessorOpts(g, k, alg.Policy, prep.CacheOptions{Shards: 4, Capacity: g.N() / 2})
			f := alg.BindCached(p)
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < 20; i++ {
						s := vs[r.Intn(len(vs))]
						dst := vs[r.Intn(len(vs))]
						if s == dst {
							continue
						}
						res := sim.Run(g, sim.Func(f), s, dst, sim.Options{
							DetectLoops:      true,
							PredecessorAware: true,
						})
						if res.Outcome != sim.Delivered {
							t.Errorf("%s: %d->%d %v (%v)", alg.Name, s, dst, res.Outcome, res.Err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if st := p.Stats(); st.Hits+st.Misses == 0 {
				t.Error("shared preprocessor saw no traffic")
			}
		})
	}
}

// Views handed out by a shared preprocessor are read concurrently by all
// workers; this exercises the read-only accessor surface under -race.
func TestConcurrentViewReads(t *testing.T) {
	g := gen.Lollipop(10, 5)
	p := prep.NewPreprocessor(g, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, u := range g.Vertices() {
				v := p.At(u)
				_ = v.ActiveDegree()
				for _, x := range g.Vertices() {
					if x != u {
						_ = v.CompOf(x)
					}
				}
				for _, r := range v.ActiveRoots {
					_ = v.CompRootedAt(r)
				}
				for _, e := range v.Raw.G.Edges() {
					_ = v.IsDormant(e)
				}
				_ = v.Routing.String()
				var no graph.Vertex = graph.NoVertex
				_ = v.CompOf(no)
			}
		}()
	}
	wg.Wait()
}
