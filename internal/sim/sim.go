// Package sim drives routing functions over networks: it executes the
// sequence of forwarding decisions for a single message, detects
// livelock using the paper's own criteria, and computes route metrics
// (length, dilation).
package sim

import (
	"errors"
	"fmt"

	"klocal/internal/graph"
)

// Func is the routing-function signature sim drives; it is structurally
// identical to route.Func, kept separate so sim stays independent of the
// algorithm implementations.
type Func func(s, t, u, v graph.Vertex) (graph.Vertex, error)

// Outcome classifies the end of a simulated route.
type Outcome int

const (
	// Delivered means the message reached the destination.
	Delivered Outcome = iota + 1
	// Looped means the routing function revisited a decision state, so
	// the deterministic walk can never terminate (Observation 1).
	Looped
	// Errored means the routing function returned an error or an illegal
	// hop (a non-neighbour).
	Errored
	// Exhausted means the step budget ran out before any of the above
	// (only possible for randomized algorithms, whose walks have no
	// repeating-state guarantee).
	Exhausted
)

// String renders the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Looped:
		return "looped"
	case Errored:
		return "errored"
	case Exhausted:
		return "exhausted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result describes a simulated route.
type Result struct {
	Outcome Outcome
	// Route is the walk, starting at s; for Delivered it ends at t.
	Route []graph.Vertex
	// Err carries the routing function's error when Outcome == Errored.
	Err error
	// Dist is dist(s, t) in the network.
	Dist int
}

// Len returns the route length in edges.
func (r *Result) Len() int {
	if len(r.Route) == 0 {
		return 0
	}
	return len(r.Route) - 1
}

// Dilation returns Len()/Dist. It returns 0 for s == t and +Inf-like
// MaxDilation for undelivered messages.
func (r *Result) Dilation() float64 {
	if r.Dist == 0 {
		return 0
	}
	if r.Outcome != Delivered {
		return MaxDilation
	}
	return float64(r.Len()) / float64(r.Dist)
}

// MaxDilation is the sentinel dilation of an undelivered message.
const MaxDilation = 1e18

// ErrIllegalHop is wrapped into Result.Err when a routing function
// forwards to a non-neighbour.
var ErrIllegalHop = errors.New("sim: routing function returned a non-neighbour")

// Options tune a simulation run.
type Options struct {
	// MaxSteps bounds the walk; 0 means the default 4·n·deg budget (far
	// above any deterministic non-looping walk, which Observation 1
	// bounds by 2·m).
	MaxSteps int
	// DetectLoops enables decision-state repetition detection. It must
	// be disabled for randomized algorithms. Default on (see Run).
	DetectLoops bool
	// PredecessorAware selects the loop-detection state space: directed
	// edges for predecessor-aware functions, nodes for oblivious ones.
	PredecessorAware bool
}

// Network is the minimal topology surface the simulator needs: sizes for
// the default step budget and edge membership for hop legality. Both
// *graph.Graph and the bigraph stores satisfy it.
type Network interface {
	N() int
	M() int
	HasEdge(u, v graph.Vertex) bool
}

// Run simulates routing a message from s to t on g with the bound routing
// function f. The predecessor-awareness of the algorithm determines the
// livelock criterion:
//
//   - predecessor-aware: the decision at u depends only on (u, v) (plus
//     the fixed s, t), so revisiting a directed edge repeats forever;
//   - predecessor-oblivious: the decision depends only on u, so
//     revisiting any node repeats forever.
func Run(g *graph.Graph, f Func, s, t graph.Vertex, opts Options) *Result {
	res := run(g, f, s, t, opts)
	res.Dist = g.Dist(s, t)
	return res
}

// RunStore is Run over any Network. Computing dist(s, t) needs global
// topology knowledge, which a store may be too large to pay for, so
// Result.Dist stays 0 ("unknown"): consumers guard dilation-derived
// metrics with Dist > 0 and are unaffected.
func RunStore(net Network, f Func, s, t graph.Vertex, opts Options) *Result {
	return run(net, f, s, t, opts)
}

func run(g Network, f Func, s, t graph.Vertex, opts Options) *Result {
	res := &Result{Route: []graph.Vertex{s}}
	if s == t {
		res.Outcome = Delivered
		return res
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4 * (g.N() + 1) * (g.M() + 1)
		if maxSteps < 0 { // overflow on huge stores: effectively unbounded
			maxSteps = int(^uint(0) >> 1)
		}
	}
	type dirEdge struct{ from, to graph.Vertex }
	seenEdges := make(map[dirEdge]bool)
	seenNodes := make(map[graph.Vertex]bool)

	u, v := s, graph.NoVertex
	for step := 0; step < maxSteps; step++ {
		next, err := f(s, t, u, v)
		if err != nil {
			res.Outcome = Errored
			res.Err = err
			return res
		}
		if !g.HasEdge(u, next) {
			res.Outcome = Errored
			res.Err = fmt.Errorf("%w: %d -> %d", ErrIllegalHop, u, next)
			return res
		}
		if opts.DetectLoops {
			if opts.PredecessorAware {
				e := dirEdge{from: u, to: next}
				if seenEdges[e] {
					res.Outcome = Looped
					return res
				}
				seenEdges[e] = true
			} else {
				if seenNodes[u] {
					res.Outcome = Looped
					return res
				}
				seenNodes[u] = true
			}
		}
		res.Route = append(res.Route, next)
		u, v = next, u
		if u == t {
			res.Outcome = Delivered
			return res
		}
	}
	res.Outcome = Exhausted
	return res
}
