// Package sim drives routing functions over networks: it executes the
// sequence of forwarding decisions for a single message, detects
// livelock using the paper's own criteria, and computes route metrics
// (length, dilation).
package sim

import (
	"errors"
	"fmt"

	"klocal/internal/graph"
)

// Func is the routing-function signature sim drives; it is structurally
// identical to route.Func, kept separate so sim stays independent of the
// algorithm implementations.
type Func func(s, t, u, v graph.Vertex) (graph.Vertex, error)

// Outcome classifies the end of a simulated route.
type Outcome int

const (
	// Delivered means the message reached the destination.
	Delivered Outcome = iota + 1
	// Looped means the routing function revisited a decision state, so
	// the deterministic walk can never terminate (Observation 1).
	Looped
	// Errored means the routing function returned an error or an illegal
	// hop (a non-neighbour).
	Errored
	// Exhausted means the step budget ran out before any of the above
	// (only possible for randomized algorithms, whose walks have no
	// repeating-state guarantee).
	Exhausted
)

// String renders the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Looped:
		return "looped"
	case Errored:
		return "errored"
	case Exhausted:
		return "exhausted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result describes a simulated route.
type Result struct {
	Outcome Outcome
	// Route is the walk, starting at s; for Delivered it ends at t.
	Route []graph.Vertex
	// Err carries the routing function's error when Outcome == Errored.
	Err error
	// Dist is dist(s, t) in the network.
	Dist int
}

// Len returns the route length in edges.
func (r *Result) Len() int {
	if len(r.Route) == 0 {
		return 0
	}
	return len(r.Route) - 1
}

// Clone returns an independent deep copy (Route included). Use it to
// retain a scratch-owned Result past the next RunScratch on the same
// scratch.
func (r *Result) Clone() *Result {
	cp := *r
	cp.Route = append([]graph.Vertex(nil), r.Route...)
	return &cp
}

// Dilation returns Len()/Dist. It returns 0 for s == t and +Inf-like
// MaxDilation for undelivered messages.
func (r *Result) Dilation() float64 {
	if r.Dist == 0 {
		return 0
	}
	if r.Outcome != Delivered {
		return MaxDilation
	}
	return float64(r.Len()) / float64(r.Dist)
}

// MaxDilation is the sentinel dilation of an undelivered message.
const MaxDilation = 1e18

// ErrIllegalHop is wrapped into Result.Err when a routing function
// forwards to a non-neighbour.
var ErrIllegalHop = errors.New("sim: routing function returned a non-neighbour")

// Options tune a simulation run.
type Options struct {
	// MaxSteps bounds the walk; 0 means the default 4·n·deg budget (far
	// above any deterministic non-looping walk, which Observation 1
	// bounds by 2·m).
	MaxSteps int
	// DetectLoops enables decision-state repetition detection. It must
	// be disabled for randomized algorithms. Default on (see Run).
	DetectLoops bool
	// PredecessorAware selects the loop-detection state space: directed
	// edges for predecessor-aware functions, nodes for oblivious ones.
	PredecessorAware bool
}

// Network is the minimal topology surface the simulator needs: sizes for
// the default step budget and edge membership for hop legality. Both
// *graph.Graph and the bigraph stores satisfy it.
type Network interface {
	N() int
	M() int
	HasEdge(u, v graph.Vertex) bool
}

// dirEdge is the loop-detection state for predecessor-aware walks.
type dirEdge struct{ from, to graph.Vertex }

// Scratch is caller-owned working memory for RunScratch/RunStoreScratch:
// the route buffer, the loop-detection sets (cleared, not reallocated,
// per run) and the distance search's banks, all grown to a high-water
// mark and then reused without allocating. The Result returned by the
// scratch-taking entry points is owned by the scratch — its Route
// aliases the internal buffer and the next run overwrites both; Clone it
// to retain it. Not safe for concurrent use; give each worker its own.
type Scratch struct {
	route     []graph.Vertex
	seenEdges map[dirEdge]bool
	seenNodes map[graph.Vertex]bool
	search    *graph.SearchScratch
	res       Result
}

// NewScratch returns a ready scratch; the first run sizes it.
func NewScratch() *Scratch {
	return &Scratch{
		seenEdges: make(map[dirEdge]bool),
		seenNodes: make(map[graph.Vertex]bool),
		search:    graph.NewSearchScratch(),
	}
}

// Run simulates routing a message from s to t on g with the bound routing
// function f. The predecessor-awareness of the algorithm determines the
// livelock criterion:
//
//   - predecessor-aware: the decision at u depends only on (u, v) (plus
//     the fixed s, t), so revisiting a directed edge repeats forever;
//   - predecessor-oblivious: the decision depends only on u, so
//     revisiting any node repeats forever.
func Run(g *graph.Graph, f Func, s, t graph.Vertex, opts Options) *Result {
	return RunScratch(g, f, s, t, opts, NewScratch())
}

// RunScratch is Run allocating only into sc (plus the Result's error on
// failure paths). The returned Result is owned by sc: it is valid until
// the next run with the same scratch; Clone it to retain it.
func RunScratch(g *graph.Graph, f Func, s, t graph.Vertex, opts Options, sc *Scratch) *Result {
	res := run(g, f, s, t, opts, sc)
	res.Dist = g.DistScratch(s, t, sc.search)
	return res
}

// RunStore is Run over any Network. Computing dist(s, t) needs global
// topology knowledge, which a store may be too large to pay for, so
// Result.Dist stays 0 ("unknown"): consumers guard dilation-derived
// metrics with Dist > 0 and are unaffected.
func RunStore(net Network, f Func, s, t graph.Vertex, opts Options) *Result {
	return run(net, f, s, t, opts, NewScratch())
}

// RunStoreScratch is RunStore with caller-owned working memory, under
// RunScratch's ownership contract.
func RunStoreScratch(net Network, f Func, s, t graph.Vertex, opts Options, sc *Scratch) *Result {
	return run(net, f, s, t, opts, sc)
}

//klocal:hotpath
func run(g Network, f Func, s, t graph.Vertex, opts Options, sc *Scratch) *Result {
	res := &sc.res
	*res = Result{}
	sc.route = append(sc.route[:0], s)
	res.Route = sc.route
	if s == t {
		res.Outcome = Delivered
		return res
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4 * (g.N() + 1) * (g.M() + 1)
		if maxSteps < 0 { // overflow on huge stores: effectively unbounded
			maxSteps = int(^uint(0) >> 1)
		}
	}
	if opts.DetectLoops {
		if opts.PredecessorAware {
			clear(sc.seenEdges)
		} else {
			clear(sc.seenNodes)
		}
	}

	u, v := s, graph.NoVertex
	for step := 0; step < maxSteps; step++ {
		next, err := f(s, t, u, v)
		if err != nil {
			res.Outcome = Errored
			res.Err = err
			return res
		}
		if !g.HasEdge(u, next) {
			res.Outcome = Errored
			//klocal:allow cold error path: an illegal hop aborts the walk
			res.Err = fmt.Errorf("%w: %d -> %d", ErrIllegalHop, u, next)
			return res
		}
		if opts.DetectLoops {
			if opts.PredecessorAware {
				e := dirEdge{from: u, to: next}
				if sc.seenEdges[e] {
					res.Outcome = Looped
					return res
				}
				sc.seenEdges[e] = true
			} else {
				if sc.seenNodes[u] {
					res.Outcome = Looped
					return res
				}
				sc.seenNodes[u] = true
			}
		}
		sc.route = append(sc.route, next)
		res.Route = sc.route
		u, v = next, u
		if u == t {
			res.Outcome = Delivered
			return res
		}
	}
	res.Outcome = Exhausted
	return res
}
