package sim

import (
	"errors"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// follow returns a Func that forwards according to a fixed next-hop map
// keyed by (u, v).
type hop struct{ u, v graph.Vertex }

func follow(m map[hop]graph.Vertex) Func {
	return func(_, _, u, v graph.Vertex) (graph.Vertex, error) {
		next, ok := m[hop{u, v}]
		if !ok {
			return graph.NoVertex, errors.New("no decision")
		}
		return next, nil
	}
}

func TestRunDeliversStraightLine(t *testing.T) {
	g := gen.Path(4)
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) { return u + 1, nil }
	res := Run(g, f, 0, 3, Options{DetectLoops: true, PredecessorAware: true})
	if res.Outcome != Delivered || res.Len() != 3 || res.Dist != 3 {
		t.Errorf("result = %+v", res)
	}
	if d := res.Dilation(); d != 1 {
		t.Errorf("dilation = %v, want 1", d)
	}
}

func TestRunSelfDelivery(t *testing.T) {
	g := gen.Path(3)
	called := false
	f := func(_, _, _, _ graph.Vertex) (graph.Vertex, error) {
		called = true
		return 0, nil
	}
	res := Run(g, f, 1, 1, Options{})
	if res.Outcome != Delivered || res.Len() != 0 || called {
		t.Errorf("s == t must deliver immediately without invoking f: %+v", res)
	}
	if res.Dilation() != 0 {
		t.Errorf("dilation of the empty route must be 0")
	}
}

func TestRunDetectsDirectedEdgeLoop(t *testing.T) {
	g := gen.Cycle(4)
	// Always go clockwise: revisits directed edges after one lap.
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) {
		return (u + 1) % 4, nil
	}
	res := Run(g, f, 0, 99, Options{DetectLoops: true, PredecessorAware: true})
	// t=99 is absent, but Run only errors through f; here the walk loops.
	if res.Outcome != Looped {
		t.Errorf("outcome = %v, want Looped", res.Outcome)
	}
	if res.Len() > 8 {
		t.Errorf("loop detection took %d steps, expected within two laps", res.Len())
	}
}

func TestRunNodeLoopForObliviousAlgorithms(t *testing.T) {
	g := gen.Cycle(4)
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) {
		return (u + 1) % 4, nil
	}
	res := Run(g, f, 0, 99, Options{DetectLoops: true, PredecessorAware: false})
	if res.Outcome != Looped || res.Len() > 4 {
		t.Errorf("node-level loop detection failed: %+v", res)
	}
}

func TestRunBouncingIsNotALoopUntilStateRepeats(t *testing.T) {
	// A predecessor-aware walk may traverse an edge once in each direction
	// without looping.
	g := gen.Path(3)
	m := map[hop]graph.Vertex{
		{1, graph.NoVertex}: 0, // away from t first
		{0, 1}:              1, // bounce at the end
		{1, 0}:              2, // then to t
	}
	res := Run(g, follow(m), 1, 2, Options{DetectLoops: true, PredecessorAware: true})
	if res.Outcome != Delivered || res.Len() != 3 {
		t.Errorf("result = %+v route=%v", res, res.Route)
	}
	if d := res.Dilation(); d != 3 {
		t.Errorf("dilation = %v, want 3", d)
	}
}

func TestRunErrorsOnIllegalHop(t *testing.T) {
	g := gen.Path(3)
	f := func(_, _, _, _ graph.Vertex) (graph.Vertex, error) { return 99, nil }
	res := Run(g, f, 0, 2, Options{})
	if res.Outcome != Errored || !errors.Is(res.Err, ErrIllegalHop) {
		t.Errorf("result = %+v", res)
	}
}

func TestRunPropagatesFunctionError(t *testing.T) {
	g := gen.Path(3)
	sentinel := errors.New("boom")
	f := func(_, _, _, _ graph.Vertex) (graph.Vertex, error) { return graph.NoVertex, sentinel }
	res := Run(g, f, 0, 2, Options{})
	if res.Outcome != Errored || !errors.Is(res.Err, sentinel) {
		t.Errorf("result = %+v", res)
	}
}

func TestRunExhaustsBudget(t *testing.T) {
	g := gen.Cycle(6)
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) {
		return graph.Vertex((int(u) + 1) % 6), nil
	}
	res := Run(g, f, 0, 3, Options{MaxSteps: 2})
	if res.Outcome != Exhausted {
		t.Errorf("outcome = %v, want Exhausted", res.Outcome)
	}
}

func TestUndeliveredDilationIsMax(t *testing.T) {
	g := gen.Cycle(6)
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) {
		return graph.Vertex((int(u) + 1) % 6), nil
	}
	res := Run(g, f, 0, 3, Options{MaxSteps: 1})
	if res.Dilation() != MaxDilation {
		t.Errorf("dilation = %v, want MaxDilation", res.Dilation())
	}
}

func TestOutcomeStrings(t *testing.T) {
	tests := []struct {
		give Outcome
		want string
	}{
		{Delivered, "delivered"},
		{Looped, "looped"},
		{Errored, "errored"},
		{Exhausted, "exhausted"},
		{Outcome(42), "Outcome(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}
