package fuzz

import (
	"fmt"
	"math/rand"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// family is one graph generator the fuzzer draws from. build must
// return a connected graph with at least 2 vertices for every n in
// [minN, maxN]; generators ignore n where their shape fixes it.
type family struct {
	name       string
	minN, maxN int
	build      func(rng *rand.Rand, n int) *graph.Graph
}

// families is the generator pool: every named family the repo ships
// plus random connected graphs and random trees, all at randomized
// sizes. The paper's tie-breaks are rank-based, so the runner follows
// each build with an adversarial label permutation.
func families() []family {
	return []family{
		{"random", 4, 28, func(rng *rand.Rand, n int) *graph.Graph {
			return gen.RandomConnected(rng, n, rng.Float64()*0.3)
		}},
		{"tree", 4, 28, func(rng *rand.Rand, n int) *graph.Graph {
			return gen.RandomTree(rng, n)
		}},
		{"path", 4, 28, func(_ *rand.Rand, n int) *graph.Graph { return gen.Path(n) }},
		{"cycle", 4, 28, func(_ *rand.Rand, n int) *graph.Graph { return gen.Cycle(n) }},
		{"star", 4, 24, func(_ *rand.Rand, n int) *graph.Graph { return gen.Star(n) }},
		{"spider", 5, 25, func(rng *rand.Rand, n int) *graph.Graph {
			arms := 2 + rng.Intn(4)
			armLen := (n - 1) / arms
			if armLen < 1 {
				armLen = 1
			}
			return gen.Spider(arms, armLen)
		}},
		{"lollipop", 5, 27, func(rng *rand.Rand, n int) *graph.Graph {
			tail := 1 + rng.Intn(n/2)
			if n-tail < 3 {
				tail = n - 3
			}
			return gen.Lollipop(n-tail, tail)
		}},
		{"theta", 5, 24, func(rng *rand.Rand, n int) *graph.Graph {
			// Split n-2 internal vertices over three branches; at most
			// one branch may be empty.
			inner := n - 2
			a := rng.Intn(inner + 1)
			b := rng.Intn(inner - a + 1)
			c := inner - a - b
			if (a == 0 && b == 0) || (a == 0 && c == 0) || (b == 0 && c == 0) {
				a, b, c = 1, 1, inner-2
				if c < 0 {
					a, b, c = 1, inner-1, 0
				}
			}
			return gen.Theta(a, b, c)
		}},
		{"grid", 4, 25, func(rng *rand.Rand, n int) *graph.Graph {
			rows := 2 + rng.Intn(4)
			cols := n / rows
			if cols < 2 {
				cols = 2
			}
			return gen.Grid(rows, cols)
		}},
		{"wheel", 5, 24, func(_ *rand.Rand, n int) *graph.Graph { return gen.Wheel(n) }},
		{"barbell", 6, 24, func(rng *rand.Rand, n int) *graph.Graph {
			c := 2 + rng.Intn(n/3)
			bridge := n - 2*c
			if bridge < 0 {
				bridge = 0
			}
			return gen.Barbell(c, bridge)
		}},
		{"complete", 4, 16, func(_ *rand.Rand, n int) *graph.Graph { return gen.Complete(n) }},
		{"caterpillar", 4, 24, func(rng *rand.Rand, n int) *graph.Graph {
			legs := 1 + rng.Intn(3)
			spine := n / (legs + 1)
			if spine < 1 {
				spine = 1
			}
			return gen.Caterpillar(spine, legs)
		}},
		{"hypercube", 4, 16, func(rng *rand.Rand, _ int) *graph.Graph {
			return gen.Hypercube(2 + rng.Intn(3))
		}},
		{"binarytree", 4, 15, func(rng *rand.Rand, _ int) *graph.Graph {
			return gen.BinaryTree(2 + rng.Intn(3))
		}},
	}
}

// Generate draws one random scenario for the named algorithm: a family
// at a random size with adversarially permuted labels, a random
// (s, t) pair, and k sampled in a band around the algorithm's
// threshold T(n) (from T(n)−2 — probing just below the guarantee — up
// to T(n)+3 and the occasional ⌊n/2⌋ extreme). maxN caps the graph
// size. The scenario records the drawn seed so deterministic property
// randomness replays.
func Generate(rng *rand.Rand, algo string, maxN int) (*Scenario, error) {
	mk, ok := Algorithms()[algo]
	if !ok {
		return nil, fmt.Errorf("fuzz: unknown algorithm %q", algo)
	}
	alg := mk()
	fams := families()
	fam := fams[rng.Intn(len(fams))]
	hi := fam.maxN
	if maxN > 0 && maxN < hi {
		hi = maxN
	}
	if hi < fam.minN {
		hi = fam.minN
	}
	n := fam.minN + rng.Intn(hi-fam.minN+1)
	g := fam.build(rng, n)
	g = g.PermuteLabels(gen.RandomLabelPermutation(rng, g))

	vs := g.Vertices()
	if len(vs) < 2 {
		return nil, fmt.Errorf("fuzz: family %s produced a trivial graph", fam.name)
	}
	s := vs[rng.Intn(len(vs))]
	t := vs[rng.Intn(len(vs))]
	for t == s {
		t = vs[rng.Intn(len(vs))]
	}

	k := sampleK(rng, alg.MinK(g.N()), g.N())
	return &Scenario{
		Algo:   algo,
		Alg:    alg,
		G:      g,
		K:      k,
		S:      s,
		T:      t,
		Seed:   rng.Int63(),
		Family: fam.name,
	}, nil
}

// sampleK draws a locality around the threshold: mostly the band
// [T(n)−2, T(n)+3], clamped to [1, n], with an occasional draw of the
// ⌊n/2⌋ regime where every algorithm must degenerate to shortest
// paths.
func sampleK(rng *rand.Rand, threshold, n int) int {
	if threshold <= 0 {
		threshold = 1
	}
	k := threshold - 2 + rng.Intn(6)
	if rng.Intn(8) == 0 {
		k = n / 2
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}
