package fuzz

import (
	"encoding/binary"
	"math/rand"

	"klocal/internal/gen"
)

// DecodeScenario maps arbitrary fuzz input onto the scenario space, so
// `go test -fuzz=FuzzRouting` explores the same properties the
// randomized runner enforces. The encoding is positional and total —
// every input of at least 6 bytes decodes to some valid scenario, which
// keeps coverage-guided mutation productive:
//
//	data[0]  algorithm index (real algorithms only)
//	data[1]  family index
//	data[2]  size within the family's range
//	data[3]  k offset in [T(n)−2, T(n)+3]
//	data[4]  origin index into the vertex set
//	data[5]  destination index (bumped off the origin)
//	data[6:] seed bytes for the family's structural randomness and the
//	         adversarial label permutation
//
// The bool result is false only for inputs too short to decode.
func DecodeScenario(data []byte) (*Scenario, bool) {
	if len(data) < 6 {
		return nil, false
	}
	names := AlgorithmNames()
	algo := names[int(data[0])%len(names)]
	alg := Algorithms()[algo]()

	fams := families()
	fam := fams[int(data[1])%len(fams)]
	span := fam.maxN - fam.minN + 1
	n := fam.minN + int(data[2])%span

	var seed int64
	if len(data) >= 14 {
		seed = int64(binary.LittleEndian.Uint64(data[6:14]))
	} else {
		for _, b := range data[6:] {
			seed = seed<<8 | int64(b)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	g := fam.build(rng, n)
	g = g.PermuteLabels(gen.RandomLabelPermutation(rng, g))

	vs := g.Vertices()
	if len(vs) < 2 {
		return nil, false
	}
	s := vs[int(data[4])%len(vs)]
	ti := int(data[5]) % len(vs)
	if vs[ti] == s {
		ti = (ti + 1) % len(vs)
	}
	t := vs[ti]

	threshold := alg.MinK(g.N())
	if threshold <= 0 {
		threshold = 1
	}
	k := threshold - 2 + int(data[3])%6
	if k < 1 {
		k = 1
	}
	if k > g.N() {
		k = g.N()
	}
	return &Scenario{
		Algo: algo, Alg: alg, G: g, K: k, S: s, T: t,
		Seed:   seed,
		Family: fam.name,
	}, true
}
