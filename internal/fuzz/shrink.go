package fuzz

import (
	"sort"

	"klocal/internal/graph"
)

// ShrinkBudget bounds how many candidate scenarios one shrink run may
// evaluate; each evaluation re-routes the message (and, for the
// differential property, may spin a network), so the budget is the
// shrinker's wall-clock knob.
const ShrinkBudget = 4000

// Shrink delta-debugs a failing scenario to a minimal reproducer: it
// greedily removes vertices (outright and by smoothing degree-2
// vertices away) and edges and lowers the locality while
// `fails` (the property re-check: true ⇒ the reduced scenario still
// violates the same property) keeps holding and the graph stays
// connected with both endpoints present. Passes repeat to a fixpoint or
// until the evaluation budget runs out. The returned scenario is always
// a valid failing scenario — sc itself if nothing could be removed.
//
// Greedy single-element removal is sound here because every property is
// a deterministic predicate of the scenario; it is not guaranteed to be
// globally minimal, only 1-minimal (no single vertex, edge, or unit of
// k can be removed without losing the failure) — the standard
// delta-debugging guarantee.
func Shrink(sc *Scenario, fails func(*Scenario) bool, budget int) *Scenario {
	if budget <= 0 {
		budget = ShrinkBudget
	}
	cur := sc
	evals := 0
	try := func(cand *Scenario) bool {
		if evals >= budget {
			return false
		}
		evals++
		return fails(cand)
	}

	for evals < budget {
		improved := false

		// Pass 1: drop vertices (largest graphs first benefit most).
		// Endpoints are pinned; connectivity is re-checked per candidate.
		for _, v := range sortedVertices(cur.G) {
			if v == cur.S || v == cur.T {
				continue
			}
			g2 := cur.G.WithoutVertex(v)
			if g2.N() < 2 || !g2.Connected() {
				continue
			}
			cand := cur.withGraph(g2)
			if try(cand) {
				cur = cand
				improved = true
			}
		}

		// Pass 1b: smooth degree-2 vertices — drop v and join its two
		// neighbours directly. Plain removal disconnects any cycle the
		// failure lives on; smoothing is what lets cycle-shaped
		// counterexamples contract one vertex at a time.
		for _, v := range sortedVertices(cur.G) {
			if v == cur.S || v == cur.T || cur.G.Deg(v) != 2 {
				continue
			}
			adj := cur.G.Adj(v)
			a, b := adj[0], adj[1]
			g2 := cur.G.WithoutVertex(v)
			if !g2.HasEdge(a, b) {
				g2 = withExtraEdge(g2, a, b)
			}
			if g2.N() < 2 || !g2.Connected() {
				continue
			}
			cand := cur.withGraph(g2)
			if try(cand) {
				cur = cand
				improved = true
			}
		}

		// Pass 2: drop edges.
		for _, e := range cur.G.Edges() {
			g2 := cur.G.WithoutEdges([]graph.Edge{e})
			if !g2.Connected() {
				continue
			}
			cand := cur.withGraph(g2)
			if try(cand) {
				cur = cand
				improved = true
			}
		}

		// Pass 3: lower k. Threshold-gated properties stop failing once
		// k < T(n) (their precondition lapses), so this settles at the
		// smallest k that still witnesses the violation.
		for cur.K > 1 {
			cand := cur.clone()
			cand.K--
			if !try(cand) {
				break
			}
			cur = cand
			improved = true
		}

		if !improved {
			break
		}
	}
	return cur
}

// withGraph derives a candidate scenario on a reduced graph, keeping
// everything else (the locality is clamped to the new size so views
// stay well-defined).
func (sc *Scenario) withGraph(g *graph.Graph) *Scenario {
	cand := sc.clone()
	cand.G = g
	if cand.K > g.N() {
		cand.K = g.N()
	}
	return cand
}

func (sc *Scenario) clone() *Scenario {
	c := *sc
	return &c
}

// withExtraEdge rebuilds g with one additional edge.
func withExtraEdge(g *graph.Graph, a, b graph.Vertex) *graph.Graph {
	bld := graph.NewBuilder()
	for _, v := range g.Vertices() {
		bld.AddVertex(v)
	}
	for _, e := range g.Edges() {
		bld.AddEdge(e.U, e.V)
	}
	bld.AddEdge(a, b)
	return bld.Build()
}

// sortedVertices returns the vertex set in descending label order:
// removing high labels first tends to keep the surviving instance's
// rank structure (and therefore the failure) intact, since the
// algorithms tie-break on low rank.
func sortedVertices(g *graph.Graph) []graph.Vertex {
	vs := append([]graph.Vertex(nil), g.Vertices()...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] > vs[j] })
	return vs
}
