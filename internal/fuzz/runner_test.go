package fuzz

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"klocal/internal/serve"
	"klocal/internal/sim"
)

// propsByName picks a registry subset for focused tests.
func propsByName(t *testing.T, names string) []Property {
	t.Helper()
	props, err := ResolveProperties(names)
	if err != nil {
		t.Fatal(err)
	}
	return props
}

// TestBrokenAlgorithmFoundAndShrunk is the subsystem's acceptance test:
// against the deliberately defective Algorithm 2 variant the fuzzer
// must find a delivery violation, shrink it to at most 12 vertices, and
// the minimized case must replay to the same failure after a round-trip
// through its serve.GraphSpec JSON form — exactly what
// `routesim -graph finding.json` does.
func TestBrokenAlgorithmFoundAndShrunk(t *testing.T) {
	rep, err := Run(Config{
		Algos:      []string{"broken2"},
		Props:      propsByName(t, "delivery"),
		Iterations: 300,
		Workers:    4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("fuzzer failed to defeat the broken variant in %d scenarios", rep.Scenarios)
	}
	var f *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Property == "delivery" && rep.Findings[i].Algo == "broken2" {
			f = &rep.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no delivery finding against broken2: %+v", rep.Findings)
	}
	if f.Shrunk == nil {
		t.Fatal("finding was not shrunk")
	}
	if f.ShrunkN > 12 {
		t.Fatalf("shrunk reproducer has %d vertices, want <= 12", f.ShrunkN)
	}
	if f.ShrunkError == "" {
		t.Fatal("shrunk case does not carry its reproduced violation")
	}

	// Round-trip the minimized case through JSON, then re-parse the same
	// bytes as a bare serve.GraphSpec — the corpus artifact must stay
	// loadable by the CLIs that only understand GraphSpec.
	data, err := json.Marshal(f.Shrunk)
	if err != nil {
		t.Fatal(err)
	}
	var spec serve.GraphSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build()
	if err != nil {
		t.Fatalf("minimized spec does not build: %v", err)
	}
	if g.N() != f.ShrunkN {
		t.Fatalf("GraphSpec round-trip changed the graph: %d vertices, want %d", g.N(), f.ShrunkN)
	}

	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res := routeScenario(sc)
	if res.Outcome == sim.Delivered {
		t.Fatalf("replayed minimized case delivered; want the original failure (walk %v)", res.Route)
	}
}

// TestRealAlgorithmsSurviveFuzzing runs a short all-property campaign
// over the four real algorithms; the paper's theorems say no finding
// can exist.
func TestRealAlgorithmsSurviveFuzzing(t *testing.T) {
	rep, err := Run(Config{
		Iterations: 120,
		Workers:    4,
		Seed:       7,
		MaxN:       20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		var buf bytes.Buffer
		_ = rep.WriteJSON(&buf)
		t.Fatalf("fuzzing the real algorithms produced findings:\n%s", buf.String())
	}
	if rep.Scenarios != 120 {
		t.Fatalf("ran %d scenarios, want 120", rep.Scenarios)
	}
	wantChecks := rep.Scenarios * int64(len(AllProperties()))
	if rep.Checks != wantChecks {
		t.Fatalf("ran %d checks, want %d", rep.Checks, wantChecks)
	}
}

// TestRunReproducible: the scenario stream is a pure function of the
// seed, so two iteration-bounded runs against the broken variant find
// the identical original counterexample.
func TestRunReproducible(t *testing.T) {
	run := func() Finding {
		rep, err := Run(Config{
			Algos:         []string{"broken2"},
			Props:         propsByName(t, "delivery"),
			Iterations:    200,
			Workers:       3,
			Seed:          42,
			DisableShrink: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Findings) != 1 {
			t.Fatalf("want exactly one deduplicated finding, got %d", len(rep.Findings))
		}
		return rep.Findings[0]
	}
	a, b := run(), run()
	if a.Count != b.Count {
		t.Fatalf("finding counts differ across identical runs: %d vs %d", a.Count, b.Count)
	}
	aj, _ := json.Marshal(a.Original)
	bj, _ := json.Marshal(b.Original)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("original cases differ across identical runs:\n%s\n%s", aj, bj)
	}
}

func TestResolveAlgorithmsAndProperties(t *testing.T) {
	if _, err := ResolveAlgorithms("alg1,nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-algorithm error, got %v", err)
	}
	names, err := ResolveAlgorithms(" alg2 , broken2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alg2" || names[1] != "broken2" {
		t.Fatalf("bad resolution: %v", names)
	}
	if got, _ := ResolveAlgorithms("all"); len(got) != 4 {
		t.Fatalf("all should mean the four real algorithms, got %v", got)
	}
	if _, err := ResolveProperties("delivery,bogus"); err == nil {
		t.Fatal("want unknown-property error")
	}
	props, err := ResolveProperties("walk,differential")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 2 || props[0].Name != "walk" || props[1].Name != "differential" {
		t.Fatalf("bad property resolution: %v", props)
	}
}

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Config{Algos: []string{"alg9"}, Iterations: 1}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}
