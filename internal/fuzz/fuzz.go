// Package fuzz is the differential fuzzing and counterexample-shrinking
// subsystem behind cmd/klocalcheck: it turns the paper's theorems into
// continuously-enforced executable invariants. A generator draws random
// scenarios — graph family, adversarial label permutation, (s, t) pair,
// and a locality k sampled around the Table 1 thresholds — and a
// registry of properties checks each one: guaranteed delivery at
// k ≥ T(n), the Table 2 dilation bounds, walk validity, determinism and
// label-relabelling robustness, and differential agreement between the
// in-memory engine and the fault-free message-passing simulator. When a
// property fails, a delta-debugging shrinker reduces the scenario to a
// minimal reproducer (greedy vertex/edge removal plus k reduction, under
// a re-check predicate) and emits it as a serve.GraphSpec-compatible
// JSON artifact that routesim -graph, loadgen -graph, and klocald
// PUT /graph replay directly.
//
// The package is driven three ways: cmd/klocalcheck (budgeted randomized
// runs), the checked-in testdata/corpus replayed by tier-1 tests, and
// the Go-native FuzzRouting harness whose byte decoder maps arbitrary
// fuzz input onto the same scenario space. See DESIGN.md §10.
package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/serve"
)

// Scenario is one routing situation under test: an algorithm bound to a
// concrete connected graph at locality K, routing a single message from
// S to T. Seed feeds the deterministic auxiliary randomness some
// properties need (the relabelling check), so a scenario re-runs
// identically during shrinking and replay.
type Scenario struct {
	// Algo names the algorithm under test (see Algorithms).
	Algo string
	// Alg is the resolved algorithm descriptor.
	Alg route.Algorithm
	// G is the (connected) network.
	G *graph.Graph
	// K is the locality parameter.
	K int
	// S and T are the origin and destination (S ≠ T).
	S, T graph.Vertex
	// Seed drives property-internal randomness deterministically.
	Seed int64
	// Family records which generator produced G (diagnostics only).
	Family string
}

// AtThreshold reports whether the scenario's locality meets the
// algorithm's delivery threshold T(n) — the precondition of the
// paper's positive theorems. Baselines without a threshold never
// qualify.
func (sc *Scenario) AtThreshold() bool {
	if sc.Alg.MinK == nil {
		return false
	}
	min := sc.Alg.MinK(sc.G.N())
	return min > 0 && sc.K >= min
}

// String identifies the scenario in findings and logs.
func (sc *Scenario) String() string {
	return fmt.Sprintf("%s k=%d n=%d m=%d %d->%d (%s seed=%d)",
		sc.Algo, sc.K, sc.G.N(), sc.G.M(), sc.S, sc.T, sc.Family, sc.Seed)
}

// DilationBound returns the paper's Table 2 dilation guarantee for the
// scenario's algorithm at or above threshold, or 0 when none applies.
// The broken self-test variant inherits Algorithm 2's bound — it is
// supposed to fail these checks.
func (sc *Scenario) DilationBound() float64 {
	switch sc.Algo {
	case "broken2":
		return serve.DilationBound("alg2")
	default:
		return serve.DilationBound(sc.Algo)
	}
}

// Algorithms maps the names klocalcheck accepts to constructors: the
// four Table 2 algorithms plus broken2, the deliberately defective
// Algorithm 2 variant (route.Algorithm2Broken) used to prove the fuzzer
// can actually find and shrink violations.
func Algorithms() map[string]func() route.Algorithm {
	return map[string]func() route.Algorithm{
		"alg1":    route.Algorithm1,
		"alg1b":   route.Algorithm1B,
		"alg2":    route.Algorithm2,
		"alg3":    route.Algorithm3,
		"broken2": route.Algorithm2Broken,
	}
}

// AlgorithmNames returns the real (non-broken) algorithm names in
// stable order — the default set a fuzzing run covers.
func AlgorithmNames() []string { return []string{"alg1", "alg1b", "alg2", "alg3"} }

// ResolveAlgorithms maps a comma-separated name list ("" or "all" =
// every real algorithm) to constructors, rejecting unknown names.
func ResolveAlgorithms(list string) ([]string, error) {
	if list == "" || list == "all" {
		return AlgorithmNames(), nil
	}
	reg := Algorithms()
	var names []string
	for _, raw := range strings.Split(list, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if _, ok := reg[name]; !ok {
			known := make([]string, 0, len(reg))
			for k := range reg {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("fuzz: unknown algorithm %q (%s)", name, strings.Join(known, "|"))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return AlgorithmNames(), nil
	}
	return names, nil
}
