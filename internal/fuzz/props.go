package fuzz

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"klocal/internal/bigraph"
	"klocal/internal/churn"
	"klocal/internal/cluster"
	"klocal/internal/engine"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/netsim"
	"klocal/internal/prep"
	"klocal/internal/route"
	"klocal/internal/sim"
	"klocal/internal/verify"
)

// Property is one executable invariant over scenarios. Check returns
// nil when the scenario satisfies the property (or the property's
// precondition does not apply — e.g. k below threshold for a delivery
// claim), and a descriptive error when the paper's claim is violated.
// Checks must be deterministic functions of the scenario: the shrinker
// re-runs them as its reduction predicate.
type Property struct {
	Name  string
	Doc   string
	Check func(sc *Scenario) error
}

// DifferentialMaxN caps the graph size the differential property spins
// a full message-passing network for; larger scenarios skip it (the
// goroutine-per-node simulator dominates the iteration budget beyond
// this).
const DifferentialMaxN = 16

// AllProperties returns the full registry in stable order. Each entry
// enforces one row of the contract list in route/doc.go.
func AllProperties() []Property {
	return []Property{
		{
			Name:  "delivery",
			Doc:   "k ≥ T(n) ⇒ every (s, t) message is delivered (Theorems 5–8)",
			Check: checkDelivery,
		},
		{
			Name:  "dilation",
			Doc:   "delivered walks at k ≥ T(n) stay within the Table 2 bound (7/6/3/1)",
			Check: checkDilation,
		},
		{
			Name:  "walk",
			Doc:   "walks are graph walks: start s, end t, edges only, no illegal hop at any k",
			Check: checkWalkValidity,
		},
		{
			Name:  "determinism",
			Doc:   "re-binding and re-routing yields a byte-identical walk (stateless determinism)",
			Check: checkDeterminism,
		},
		{
			Name:  "relabel",
			Doc:   "delivery and dilation survive adversarial vertex-ID relabelling at k ≥ T(n)",
			Check: checkRelabel,
		},
		{
			Name:  "differential",
			Doc:   "the in-memory engine and the fault-free netsim route the same walk",
			Check: checkDifferential,
		},
		{
			Name:  "cluster",
			Doc:   "a fault-free sharded cluster (local views, hop-by-hop handoffs) routes the engine's walk",
			Check: checkCluster,
		},
		{
			Name:  "csr",
			Doc:   "CSR store views G_k(u) are vertex-, distance- and edge-identical to nbhd.Extract, and store-backed routing walks the graph-backed walk",
			Check: checkCSR,
		},
		{
			Name:  "compact",
			Doc:   "the compact int-indexed decision paths route walk-identically to the retained map-based reference step",
			Check: checkCompact,
		},
		{
			Name:  "delta",
			Doc:   "after every prefix of a churn schedule, incrementally derived views equal from-scratch views, clean views survive by pointer, and delivery holds on connected snapshots",
			Check: checkDelta,
		},
	}
}

// ResolveProperties maps a comma-separated property list ("" or "all" =
// the full registry) to Property values, rejecting unknown names.
func ResolveProperties(list string) ([]Property, error) {
	all := AllProperties()
	if list == "" || list == "all" {
		return all, nil
	}
	byName := make(map[string]Property, len(all))
	var known []string
	for _, p := range all {
		byName[p.Name] = p
		known = append(known, p.Name)
	}
	sort.Strings(known)
	var props []Property
	for _, raw := range strings.Split(list, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("fuzz: unknown property %q (%s)", name, strings.Join(known, "|"))
		}
		props = append(props, p)
	}
	if len(props) == 0 {
		return all, nil
	}
	return props, nil
}

// routeScenario binds the scenario's algorithm fresh and simulates the
// single message, with the loop-detection criterion matching the
// algorithm's awareness.
func routeScenario(sc *Scenario) *sim.Result {
	f := sc.Alg.Bind(sc.G, sc.K)
	return sim.Run(sc.G, sim.Func(f), sc.S, sc.T, sim.Options{
		DetectLoops:      !sc.Alg.Randomized,
		PredecessorAware: sc.Alg.PredecessorAware,
	})
}

func checkDelivery(sc *Scenario) error {
	if !sc.AtThreshold() {
		return nil
	}
	res := routeScenario(sc)
	if res.Outcome != sim.Delivered {
		return fmt.Errorf("not delivered at k=%d ≥ T(%d)=%d: outcome %v, err %v",
			sc.K, sc.G.N(), sc.Alg.MinK(sc.G.N()), res.Outcome, res.Err)
	}
	return nil
}

func checkDilation(sc *Scenario) error {
	bound := sc.DilationBound()
	if !sc.AtThreshold() || bound == 0 {
		return nil
	}
	res := routeScenario(sc)
	if res.Outcome != sim.Delivered {
		return nil // the delivery property owns that failure
	}
	return verify.CheckDilation(res.Route, sc.G, sc.S, sc.T, bound)
}

func checkWalkValidity(sc *Scenario) error {
	res := routeScenario(sc)
	switch res.Outcome {
	case sim.Delivered:
		return verify.CheckWalk(sc.G, sc.S, sc.T, res.Route, 0)
	case sim.Errored:
		// Typed routing errors (locality too small, no admissible hop)
		// are legitimate below threshold; forwarding to a non-neighbour
		// never is.
		if errors.Is(res.Err, sim.ErrIllegalHop) {
			return fmt.Errorf("illegal hop: %v", res.Err)
		}
	}
	return nil
}

func checkDeterminism(sc *Scenario) error {
	a := routeScenario(sc)
	b := routeScenario(sc)
	if a.Outcome != b.Outcome {
		return fmt.Errorf("re-run changed outcome: %v then %v", a.Outcome, b.Outcome)
	}
	if len(a.Route) != len(b.Route) {
		return fmt.Errorf("re-run changed walk length: %d then %d hops", a.Len(), b.Len())
	}
	for i := range a.Route {
		if a.Route[i] != b.Route[i] {
			return fmt.Errorf("re-run diverged at hop %d: %d vs %d", i, a.Route[i], b.Route[i])
		}
	}
	return nil
}

func checkRelabel(sc *Scenario) error {
	if !sc.AtThreshold() {
		return nil
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	perm := gen.RandomLabelPermutation(rng, sc.G)
	relabeled := &Scenario{
		Algo: sc.Algo, Alg: sc.Alg,
		G: sc.G.PermuteLabels(perm),
		K: sc.K, S: perm[sc.S], T: perm[sc.T],
		Seed: sc.Seed, Family: sc.Family,
	}
	res := routeScenario(relabeled)
	if res.Outcome != sim.Delivered {
		return fmt.Errorf("relabelling defeats delivery at k=%d ≥ T(n): outcome %v, err %v",
			sc.K, res.Outcome, res.Err)
	}
	if bound := sc.DilationBound(); bound > 0 {
		if err := verify.CheckDilation(res.Route, relabeled.G, relabeled.S, relabeled.T, bound); err != nil {
			return fmt.Errorf("relabelling breaks the dilation bound: %w", err)
		}
	}
	return nil
}

// checkCluster is the distributed form of the differential: shard the
// scenario graph across an in-process cluster, let the members discover
// their G_k(u) views over the (fault-free) loop transport, and require
// the hop-by-hop forwarded walk to be hop-identical to the global-graph
// engine's. Every decision on the cluster side runs against a locally
// assembled view, so a mismatch means discovery, view assembly, or the
// forwarder corrupted the routing model.
func checkCluster(sc *Scenario) error {
	if !sc.AtThreshold() || sc.G.N() > DifferentialMaxN {
		return nil
	}
	snap, err := engine.NewSnapshot(sc.G, sc.K, sc.Alg)
	if err != nil {
		return fmt.Errorf("engine snapshot: %v", err)
	}
	mem := snap.Route(sc.S, sc.T, 0)
	if mem.Outcome != sim.Delivered {
		return nil // the delivery property owns in-memory failures
	}

	shards := 3
	if n := sc.G.N(); n < shards {
		shards = n
	}
	members, _, err := cluster.NewLocalCluster(sc.G, cluster.LocalClusterConfig{
		Shards: shards, K: sc.K, Alg: sc.Alg,
	})
	if err != nil {
		return fmt.Errorf("cluster setup: %v", err)
	}
	if err := cluster.Converge(members, 0); err != nil {
		return fmt.Errorf("fault-free cluster discovery failed: %v", err)
	}
	entry := int(sc.Seed%int64(shards)+int64(shards)) % shards
	rep, err := members[entry].Route(context.Background(), sc.S, sc.T, false)
	if err != nil {
		return fmt.Errorf("cluster route: %v", err)
	}
	if !rep.Delivered {
		return fmt.Errorf("engine delivered in %d hops but cluster failed: %s (%s)",
			mem.Len(), rep.Err, rep.ErrKind)
	}
	if len(rep.Route) != len(mem.Route) {
		return fmt.Errorf("walk lengths differ: engine %d hops, cluster %d hops",
			mem.Len(), len(rep.Route)-1)
	}
	for i := range rep.Route {
		if rep.Route[i] != mem.Route[i] {
			return fmt.Errorf("walks diverge at hop %d: engine %d, cluster %d",
				i, mem.Route[i], rep.Route[i])
		}
	}
	return nil
}

// checkCSR is the store differential: the same scenario topology held as
// an int-indexed CSR (internal/bigraph) must produce, at every vertex,
// exactly the G_k(u) view the map-based extractor computes — both via the
// zero-alloc scratch fast path and the generic Store BFS — and the
// store-bound routing function must then walk hop-for-hop the walk the
// graph-bound one walks. A mismatch means the CSR layout, the scratch
// epochs, or the Store adapters corrupted the locality model.
func checkCSR(sc *Scenario) error {
	c := bigraph.FromGraph(sc.G)
	scratch := bigraph.NewScratch()
	for _, u := range sc.G.Vertices() {
		want := nbhd.Extract(sc.G, u, sc.K)
		got, err := nbhd.ExtractCSR(c, u, sc.K, scratch)
		if err != nil {
			return fmt.Errorf("ExtractCSR(%d, k=%d): %v", u, sc.K, err)
		}
		if err := sameView(got, want); err != nil {
			return fmt.Errorf("CSR scratch view G_%d(%d): %w", sc.K, u, err)
		}
		if err := sameView(nbhd.ExtractStore(c, u, sc.K), want); err != nil {
			return fmt.Errorf("store BFS view G_%d(%d): %w", sc.K, u, err)
		}
	}
	if sc.Alg.BindStore == nil {
		return nil
	}
	mem := routeScenario(sc)
	st := sim.RunStore(c, sim.Func(sc.Alg.BindStore(c, sc.K)), sc.S, sc.T, sim.Options{
		DetectLoops:      !sc.Alg.Randomized,
		PredecessorAware: sc.Alg.PredecessorAware,
	})
	if st.Outcome != mem.Outcome {
		return fmt.Errorf("store-backed outcome %v, graph-backed %v (err %v vs %v)",
			st.Outcome, mem.Outcome, st.Err, mem.Err)
	}
	if len(st.Route) != len(mem.Route) {
		return fmt.Errorf("walk lengths differ: graph %d hops, store %d hops", mem.Len(), st.Len())
	}
	for i := range st.Route {
		if st.Route[i] != mem.Route[i] {
			return fmt.Errorf("walks diverge at hop %d: graph %d, store %d", i, mem.Route[i], st.Route[i])
		}
	}
	return nil
}

// sameView compares two G_k(u) views structurally: same vertex set, same
// per-vertex distances, same edge set.
func sameView(got, want *nbhd.Neighborhood) error {
	if got.Center != want.Center || got.K != want.K {
		return fmt.Errorf("center/k (%d, %d), want (%d, %d)", got.Center, got.K, want.Center, want.K)
	}
	if got.G.N() != want.G.N() || got.G.M() != want.G.M() {
		return fmt.Errorf("size n=%d m=%d, want n=%d m=%d", got.G.N(), got.G.M(), want.G.N(), want.G.M())
	}
	for v, d := range want.Dist {
		if gd, ok := got.Dist[v]; !ok {
			return fmt.Errorf("vertex %d missing", v)
		} else if gd != d {
			return fmt.Errorf("dist(%d) = %d, want %d", v, gd, d)
		}
	}
	for _, e := range want.G.Edges() {
		if !got.G.HasEdge(e.U, e.V) {
			return fmt.Errorf("edge {%d, %d} missing", e.U, e.V)
		}
	}
	return nil
}

// refTwin maps a scenario algorithm to its reference build over the
// retained map-based step (route/reference.go), or reports that none
// exists (the deliberately broken variant has no reference twin).
func refTwin(name string) (route.Algorithm, bool) {
	switch name {
	case "alg1":
		return route.Algorithm1Ref(), true
	case "alg1b":
		return route.Algorithm1BRef(), true
	case "alg2":
		return route.Algorithm2Ref(), true
	case "alg3":
		return route.Algorithm3Ref(), true
	default:
		return route.Algorithm{}, false
	}
}

// checkCompact is the compact-view differential: the production decision
// paths (int-indexed CompactView reads, scratch-backed bounce
// simulation) must behave exactly like the retained map-based reference
// step — same outcome, hop-for-hop identical walk — at every locality,
// below threshold included (error cases must agree too). A divergence
// means the compact encoding, the index-order rank argument, or the
// scratch reuse broke a decision rule.
func checkCompact(sc *Scenario) error {
	ref, ok := refTwin(sc.Algo)
	if !ok {
		return nil
	}
	prod := routeScenario(sc)
	refRes := routeScenario(&Scenario{
		Algo: sc.Algo, Alg: ref,
		G: sc.G, K: sc.K, S: sc.S, T: sc.T,
		Seed: sc.Seed, Family: sc.Family,
	})
	if prod.Outcome != refRes.Outcome {
		return fmt.Errorf("compact outcome %v, reference %v (err %v vs %v)",
			prod.Outcome, refRes.Outcome, prod.Err, refRes.Err)
	}
	if len(prod.Route) != len(refRes.Route) {
		return fmt.Errorf("walk lengths differ: compact %d hops, reference %d hops",
			prod.Len(), refRes.Len())
	}
	for i := range prod.Route {
		if prod.Route[i] != refRes.Route[i] {
			return fmt.Errorf("walks diverge at hop %d: compact %d, reference %d",
				i, prod.Route[i], refRes.Route[i])
		}
	}
	return nil
}

// DeltaSteps is the churn-schedule length the delta property replays.
// Each prefix is checked against a from-scratch rebuild, so the cost is
// DeltaSteps full preprocessing passes plus the incremental chain.
const DeltaSteps = 6

// checkDelta is the incremental-churn differential: replay a
// deterministic (seed-derived) schedule of topology deltas and, after
// every prefix, require the Derive-maintained preprocessor to hold
// views identical to a from-scratch preprocessor on the same snapshot.
// Views outside the k-radius dirty set must survive by pointer (the
// locality theorem as a caching contract: a flap at {x, y} can only
// change G_k(u) within distance k of x or y), and on snapshots where
// the endpoints stay connected at threshold locality the incrementally
// maintained views must still deliver.
func checkDelta(sc *Scenario) error {
	k := sc.K
	sched := churn.ScheduleDeltas(sc.G, sc.Seed, DeltaSteps)
	cur := sc.G
	p := prep.NewPreprocessorPolicy(sc.G, k, sc.Alg.Policy)
	for i, d := range sched {
		old := make(map[graph.Vertex]*prep.View, cur.N())
		for _, v := range cur.Vertices() {
			old[v] = p.At(v)
		}
		post, dirty, err := churn.Apply(cur, d, k)
		if err != nil {
			return fmt.Errorf("delta %d (%s): %v", i, d, err)
		}
		p = p.Derive(post, dirty)
		isDirty := make(map[graph.Vertex]bool, len(dirty))
		for _, v := range dirty {
			isDirty[v] = true
		}
		for _, v := range post.Vertices() {
			got := p.At(v)
			if !isDirty[v] {
				if ov, ok := old[v]; ok && got != ov {
					return fmt.Errorf("delta %d (%s): view of clean vertex %d was rebuilt (outside the dirty set)", i, d, v)
				}
			}
			want := prep.PreprocessPolicy(post, v, k, sc.Alg.Policy)
			if err := samePrepView(got, want); err != nil {
				return fmt.Errorf("delta %d (%s): derived view of %d differs from scratch: %w", i, d, v, err)
			}
		}
		if sc.Alg.BindCached != nil && post.HasVertex(sc.S) && post.HasVertex(sc.T) &&
			k >= sc.Alg.MinK(post.N()) && post.Connected() {
			res := sim.Run(post, sim.Func(sc.Alg.BindCached(p)), sc.S, sc.T, sim.Options{
				DetectLoops:      !sc.Alg.Randomized,
				PredecessorAware: sc.Alg.PredecessorAware,
			})
			if res.Outcome != sim.Delivered {
				return fmt.Errorf("delta %d (%s): connected snapshot at k=%d ≥ T(%d) but incremental views failed to deliver: %v (%v)",
					i, d, k, post.N(), res.Outcome, res.Err)
			}
		}
		cur = post
	}
	return nil
}

// samePrepView compares two preprocessed views field by field: same raw
// neighbourhood, dormant classification, routing subgraph, routing
// distances and active roots. The compact encodings are deterministic
// functions of these, so equality here is full view equality.
func samePrepView(got, want *prep.View) error {
	if err := sameView(got.Raw, want.Raw); err != nil {
		return fmt.Errorf("raw neighbourhood: %w", err)
	}
	if len(got.Dormant) != len(want.Dormant) {
		return fmt.Errorf("%d dormant edges, want %d", len(got.Dormant), len(want.Dormant))
	}
	for i := range got.Dormant {
		if got.Dormant[i] != want.Dormant[i] {
			return fmt.Errorf("dormant[%d] = %v, want %v", i, got.Dormant[i], want.Dormant[i])
		}
	}
	if !got.Routing.Equal(want.Routing) {
		return fmt.Errorf("routing subgraphs differ")
	}
	if len(got.RoutingDist) != len(want.RoutingDist) {
		return fmt.Errorf("routing dist over %d vertices, want %d", len(got.RoutingDist), len(want.RoutingDist))
	}
	for v, d := range want.RoutingDist {
		if gd, ok := got.RoutingDist[v]; !ok || gd != d {
			return fmt.Errorf("routing dist(%d) = %d, want %d", v, gd, d)
		}
	}
	if len(got.ActiveRoots) != len(want.ActiveRoots) {
		return fmt.Errorf("%d active roots, want %d", len(got.ActiveRoots), len(want.ActiveRoots))
	}
	for i := range got.ActiveRoots {
		if got.ActiveRoots[i] != want.ActiveRoots[i] {
			return fmt.Errorf("active root %d = %d, want %d", i, got.ActiveRoots[i], want.ActiveRoots[i])
		}
	}
	return nil
}

func checkDifferential(sc *Scenario) error {
	if !sc.AtThreshold() || sc.G.N() > DifferentialMaxN {
		return nil
	}
	snap, err := engine.NewSnapshot(sc.G, sc.K, sc.Alg)
	if err != nil {
		return fmt.Errorf("engine snapshot: %v", err)
	}
	mem := snap.Route(sc.S, sc.T, 0)
	if mem.Outcome != sim.Delivered {
		return nil // the delivery property owns in-memory failures
	}

	nw := netsim.New(sc.G, sc.K, sc.Alg)
	nw.Start()
	defer nw.Stop()
	if err := nw.Discover(); err != nil {
		return fmt.Errorf("fault-free discovery failed: %v", err)
	}
	dist, err := nw.Send(sc.S, sc.T)
	if err != nil {
		return fmt.Errorf("engine delivered in %d hops but netsim failed: %v", mem.Len(), err)
	}
	if len(dist) != len(mem.Route) {
		return fmt.Errorf("walk lengths differ: engine %d hops, netsim %d hops", mem.Len(), len(dist)-1)
	}
	for i := range dist {
		if dist[i] != mem.Route[i] {
			return fmt.Errorf("walks diverge at hop %d: engine %d, netsim %d", i, mem.Route[i], dist[i])
		}
	}
	return nil
}
