package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"klocal/internal/graph"
	"klocal/internal/serve"
)

// Case is the on-disk form of a scenario: a serve.GraphSpec with the
// routing context alongside. The GraphSpec fields are inlined at the
// top level, so every corpus file and minimized counterexample is
// directly consumable wherever a GraphSpec is accepted — routesim
// -graph file.json, loadgen -graph file.json, and the body of klocald's
// PUT /graph — while klocalcheck and the corpus tests also read the
// algorithm, locality and endpoints.
type Case struct {
	serve.GraphSpec

	// Name identifies the case in corpus listings and findings.
	Name string `json:"name,omitempty"`
	// Algo names the algorithm under test (see Algorithms).
	Algo string `json:"algo"`
	// K is the locality parameter (0 = the algorithm's threshold).
	K int `json:"k,omitempty"`
	// S and T are the origin and destination labels.
	S int64 `json:"s"`
	T int64 `json:"t"`
	// Property optionally records the property a finding violated, or
	// the property a regression case guards.
	Property string `json:"property,omitempty"`
	// MinDilation, when non-zero, asserts the routed walk's dilation is
	// at least this value — the corpus uses it to pin the paper's
	// tightness witnesses (the Theorem 4 instances must stay extremal,
	// not merely legal).
	MinDilation float64 `json:"min_dilation,omitempty"`
	// Note is free-form documentation.
	Note string `json:"note,omitempty"`
}

// Scenario materializes the case: it builds the graph, resolves the
// algorithm, and validates the endpoints.
func (c Case) Scenario() (*Scenario, error) {
	mk, ok := Algorithms()[c.Algo]
	if !ok {
		return nil, fmt.Errorf("fuzz: case %q: unknown algorithm %q", c.Name, c.Algo)
	}
	alg := mk()
	g, err := c.GraphSpec.Build()
	if err != nil {
		return nil, fmt.Errorf("fuzz: case %q: %w", c.Name, err)
	}
	k := c.K
	if k <= 0 {
		k = alg.MinK(g.N())
		if k == 0 {
			k = 1
		}
	}
	s, t := graph.Vertex(c.S), graph.Vertex(c.T)
	if !g.HasVertex(s) || !g.HasVertex(t) {
		return nil, fmt.Errorf("fuzz: case %q: endpoints %d -> %d not in the graph", c.Name, s, t)
	}
	if s == t {
		return nil, fmt.Errorf("fuzz: case %q: origin equals destination", c.Name)
	}
	return &Scenario{
		Algo: c.Algo, Alg: alg, G: g, K: k, S: s, T: t,
		Seed:   c.GraphSpec.Seed,
		Family: c.GraphSpec.Kind,
	}, nil
}

// ToCase freezes a scenario as an explicit-edges case, the canonical
// replayable form: no generator parameters, just the topology the
// failure (or regression guard) actually needs.
func (sc *Scenario) ToCase(name string) Case {
	edges := sc.G.Edges()
	pairs := make([][2]int64, len(edges))
	for i, e := range edges {
		pairs[i] = [2]int64{int64(e.U), int64(e.V)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return Case{
		GraphSpec: serve.GraphSpec{Kind: "edges", Edges: pairs, Seed: sc.Seed},
		Name:      name,
		Algo:      sc.Algo,
		K:         sc.K,
		S:         int64(sc.S),
		T:         int64(sc.T),
	}
}

// WriteCase writes the case as indented JSON.
func WriteCase(path string, c Case) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("fuzz: encode case %q: %w", c.Name, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCase parses one case file.
func ReadCase(path string) (Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return Case{}, fmt.Errorf("fuzz: parse %s: %w", path, err)
	}
	if c.Name == "" {
		c.Name = filepath.Base(path)
	}
	return c, nil
}

// ReadCorpus loads every *.json case under dir, sorted by filename.
func ReadCorpus(dir string) ([]Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	cases := make([]Case, 0, len(paths))
	for _, p := range paths {
		c, err := ReadCase(p)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}
