package fuzz

import (
	"os"
	"path/filepath"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/serve"
	"klocal/internal/sim"
)

const corpusDir = "testdata/corpus"

// TestCorpusReplay is the tier-1 regression gate over the checked-in
// scenarios: every corpus case must satisfy every registered property,
// and the tightness witnesses must stay extremal (their walks may not
// silently become shorter than the dilation the paper derives for
// them).
func TestCorpusReplay(t *testing.T) {
	cases, err := ReadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 10 {
		t.Fatalf("corpus holds %d cases, want >= 10 (regenerate with KLOCAL_REGEN_CORPUS=1)", len(cases))
	}
	for name, errs := range ReplayCorpus(cases, nil) {
		for _, e := range errs {
			t.Errorf("%s: %v", name, e)
		}
	}
}

// TestRegenerateCorpus rewrites testdata/corpus from the builders
// below. It only runs when KLOCAL_REGEN_CORPUS is set, so the corpus
// stays frozen in normal runs:
//
//	KLOCAL_REGEN_CORPUS=1 go test -run TestRegenerateCorpus ./internal/fuzz
func TestRegenerateCorpus(t *testing.T) {
	if os.Getenv("KLOCAL_REGEN_CORPUS") == "" {
		t.Skip("set KLOCAL_REGEN_CORPUS=1 to rewrite testdata/corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range seedCorpus(t) {
		if err := WriteCase(filepath.Join(corpusDir, c.Name+".json"), c); err != nil {
			t.Fatal(err)
		}
	}
}

// frozenCase freezes a paper instance as an explicit-edges case.
func frozenCase(t *testing.T, name, algo string, inst gen.Instance, k int, note string) Case {
	t.Helper()
	mk, ok := Algorithms()[algo]
	if !ok {
		t.Fatalf("unknown algo %q", algo)
	}
	sc := &Scenario{Algo: algo, Alg: mk(), G: inst.G, K: k, S: inst.S, T: inst.T, Seed: 1, Family: name}
	if sc.K <= 0 {
		sc.K = sc.Alg.MinK(inst.G.N())
	}
	c := sc.ToCase(name)
	c.Note = note
	return c
}

// witnessDilation routes the case and pins its achieved dilation as the
// MinDilation floor — the case becomes a tightness witness.
func witnessDilation(t *testing.T, c Case) Case {
	t.Helper()
	sc, err := c.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res := routeScenario(sc)
	if res.Outcome != sim.Delivered {
		t.Fatalf("%s: witness not delivered (outcome %v)", c.Name, res.Outcome)
	}
	c.MinDilation = float64(res.Len()) / float64(res.Dist)
	return c
}

// seedCorpus enumerates the checked-in scenarios: the paper's extremal
// dilation figures, one variant of each impossibility family routed at
// exactly its threshold, the Lemma 6 theta shape, and the boundary
// instances of the generator families.
func seedCorpus(t *testing.T) []Case {
	t.Helper()
	named := func(name, kind string, size int, algo string, s, tt int64, note string) Case {
		return Case{
			GraphSpec: serve.GraphSpec{Kind: kind, Size: size},
			Name:      name, Algo: algo, S: s, T: tt, Note: note,
		}
	}
	var cases []Case

	fig13, err := gen.NewFig13(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, witnessDilation(t, frozenCase(t,
		"fig13-alg1-dilation", "alg1", fig13.Instance, fig13.K,
		"Figure 13: Algorithm 1's dilation approaches 7; route 2n-k-3 over dist k+3")))

	fig17, err := gen.NewFig17(28, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, witnessDilation(t, frozenCase(t,
		"fig17-alg1b-dilation", "alg1b", fig17.Instance, fig17.K,
		"Figure 17: Algorithm 1B's dilation approaches 6; route n+2k-6-2δ* over dist k+1")))

	thm1, err := gen.NewTheorem1Family(13)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frozenCase(t,
		"thm1-family-g1", "alg1", thm1.Variants[0], 0,
		"Theorem 1 family G1 (n=13): defeats every k-local algorithm for k <= 2; alg1 at its threshold must deliver"))

	thm2, err := gen.NewTheorem2Family(11)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frozenCase(t,
		"thm2-family-g2", "alg2", thm2.Variants[1], 0,
		"Theorem 2 family G2 (n=11): defeats origin-oblivious routing for k <= 3; alg2 at its threshold must deliver"))

	thm3, err := gen.NewTheorem3Family(12)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, frozenCase(t,
		"thm3-family-g2", "alg3", thm3.Variants[1], 0,
		"Theorem 3 two-path family G2 (n=12): defeats predecessor-oblivious routing for k <= 5; alg3 at floor(n/2) must deliver shortest"))

	theta := gen.Instance{G: gen.Theta(2, 3, 4), S: 0, T: 1}
	cases = append(cases, frozenCase(t,
		"theta-girth", "alg2", theta, 0,
		"Lemma 6 extremal shape: theta graph with exactly three cycles, hubs 0 and 1"))

	cases = append(cases,
		named("lollipop-threshold", "lollipop", 12, "alg1", 0, 11,
			"lollipop at the family's edge size; tail end to cycle, threshold locality"),
		named("cycle9-mutant-trap", "cycle", 9, "alg2", 0, 4,
			"smallest cycle on which the broken2 no-advance mutant livelocks; real alg2 must deliver"),
		named("wheel-hub-detour", "wheel", 10, "alg1b", 1, 5,
			"rim-to-rim on a wheel: the hub offers a 2-hop shortcut everywhere"),
		named("barbell-bridge", "barbell", 12, "alg1b", 1, 11,
			"clique-to-clique across the barbell bridge"),
		named("grid9-differential", "grid", 9, "alg1", 0, 8,
			"3x3 grid corner to corner; small enough for the engine/netsim differential"),
	)

	path := named("path-alg3-shortest", "path", 10, "alg3", 0, 9,
		"Algorithm 3 is exactly shortest-path; dilation pinned at 1")
	cases = append(cases, witnessDilation(t, path))

	// Extremal churn schedules for the delta property (the schedule is
	// derived from the case seed via churn.ScheduleDeltas). The path
	// seed drives repeated cut-edge splits on a tree — every removal
	// disconnects — plus a vertex departure; the cycle seed flaps edges
	// whose k-radius dirty balls end exactly at distance k from the
	// far arc, pinning boundary-precise view survival.
	churnSplit := named("churn-cut-split", "path", 10, "alg2", 0, 9,
		"tree under churn: schedule (seed 8) splits components four times and removes a vertex; incremental views must track every prefix")
	churnSplit.K = 2
	churnSplit.Seed = 8
	churnSplit.Property = "delta"
	churnBoundary := named("churn-boundary-k", "cycle", 14, "alg2", 6, 7,
		"cycle under churn: schedule (seed 17) unravels arcs and re-adds an edge; views exactly k away from every flap must survive by pointer")
	churnBoundary.K = 3
	churnBoundary.Seed = 17
	churnBoundary.Property = "delta"
	cases = append(cases, churnSplit, churnBoundary)

	return cases
}
