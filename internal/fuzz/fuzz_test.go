package fuzz

import (
	"testing"
)

// FuzzRouting is the Go-native entry point into the same property space
// cmd/klocalcheck explores: arbitrary bytes decode (totally) into a
// scenario over the real algorithms, and every registered property must
// hold. Run with
//
//	go test -fuzz=FuzzRouting -fuzztime=20s ./internal/fuzz
//
// Any crasher the engine finds is a scenario violating one of the
// paper's theorems (or a bug in this reproduction) and can be handed to
// Shrink for minimization.
func FuzzRouting(f *testing.F) {
	// Seeds spanning the decoder's dimensions: every algorithm byte,
	// several families, thresholds ±, and both seed-tail widths.
	f.Add([]byte{0, 0, 9, 2, 0, 4, 1})
	f.Add([]byte{1, 3, 12, 4, 1, 6})
	f.Add([]byte{2, 6, 7, 0, 2, 5, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	f.Add([]byte{3, 9, 16, 5, 7, 0})
	f.Add([]byte{0, 12, 5, 3, 1, 2, 0xff})
	f.Add([]byte{2, 1, 20, 2, 9, 9, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, ok := DecodeScenario(data)
		if !ok {
			return
		}
		for _, p := range AllProperties() {
			if err := p.Check(sc); err != nil {
				t.Fatalf("%s violated on %s: %v", p.Name, sc, err)
			}
		}
	})
}
