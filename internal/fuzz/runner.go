package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"klocal/internal/sim"
)

// Config tunes a fuzzing run.
type Config struct {
	// Algos are the algorithm names to draw scenarios for (see
	// Algorithms); empty means every real algorithm.
	Algos []string
	// Props are the properties to enforce; empty means the full
	// registry.
	Props []Property
	// Budget bounds the wall time of the generation phase; 0 means no
	// time bound (Iterations must then be set).
	Budget time.Duration
	// Iterations bounds the number of scenarios; 0 means unbounded
	// (Budget must then be set). With both zero, a default of 1000
	// scenarios applies.
	Iterations int64
	// Workers sizes the pool; 0 means GOMAXPROCS.
	Workers int
	// Seed makes the run reproducible: scenario #i is a pure function of
	// (Seed, i, Algos), independent of worker scheduling, so an
	// iteration-bounded run replays exactly and a budgeted run replays a
	// prefix-closed superset or subset of the same scenario stream.
	Seed int64
	// MaxN caps generated graph sizes (0 = the families' own caps).
	MaxN int
	// DisableShrink skips counterexample minimization.
	DisableShrink bool
	// ShrinkBudget bounds candidate evaluations per finding (0 =
	// ShrinkBudget constant).
	ShrinkBudget int
}

// Finding is one violated property, deduplicated by (algorithm,
// property): Original is the earliest scenario (by iteration index)
// that exposed it, Shrunk the minimized reproducer (absent when
// shrinking is disabled — seeded from the smallest scenario that hit
// the same pair, which gives the shrinker the best starting point), and
// Count how many scenarios hit the pair during the run.
type Finding struct {
	Property string `json:"property"`
	Algo     string `json:"algo"`
	Error    string `json:"error"`
	Count    int    `json:"count"`
	Original Case   `json:"original"`
	Shrunk   *Case  `json:"shrunk,omitempty"`
	// ShrunkError is the violation as reproduced by the minimized
	// scenario.
	ShrunkError string `json:"shrunk_error,omitempty"`
	// ShrunkN and OriginalN are the vertex counts before and after
	// minimization.
	OriginalN int `json:"original_n"`
	ShrunkN   int `json:"shrunk_n,omitempty"`
}

// Report aggregates a fuzzing run.
type Report struct {
	// Scenarios is the number of generated scenarios; Checks the number
	// of property evaluations over them.
	Scenarios int64         `json:"scenarios"`
	Checks    int64         `json:"checks"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	Findings  []Finding     `json:"findings"`
}

// OK reports whether no property was violated.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// String summarizes the run.
func (r *Report) String() string {
	return fmt.Sprintf("scenarios=%d checks=%d elapsed=%v findings=%d",
		r.Scenarios, r.Checks, r.Elapsed.Round(time.Millisecond), len(r.Findings))
}

// WriteJSON emits the full report, findings and reproducers included.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// pending pairs a finding with the live scenario and property needed to
// shrink it after the generation phase. origIdx and seedIdx make the
// choice of Original (earliest) and shrink seed (smallest, earliest on
// ties) independent of worker scheduling.
type pending struct {
	finding  Finding
	scenario *Scenario
	prop     Property
	origIdx  int64
	seedIdx  int64
}

// Run executes a fuzzing campaign: Workers goroutines generate and
// check scenarios until the time or iteration budget is exhausted, then
// every distinct (algorithm, property) violation is shrunk to a minimal
// reproducer. The returned report's Findings are sorted by algorithm
// then property.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Algos) == 0 {
		cfg.Algos = AlgorithmNames()
	}
	reg := Algorithms()
	for _, a := range cfg.Algos {
		if _, ok := reg[a]; !ok {
			return nil, fmt.Errorf("fuzz: unknown algorithm %q", a)
		}
	}
	props := cfg.Props
	if len(props) == 0 {
		props = AllProperties()
	}
	if cfg.Budget <= 0 && cfg.Iterations <= 0 {
		cfg.Iterations = 1000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var (
		deadline  time.Time
		scenarios atomic.Int64
		checks    atomic.Int64
		mu        sync.Mutex
		found     = map[string]*pending{}
		wg        sync.WaitGroup
	)
	start := time.Now()
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}

	record := func(p Property, sc *Scenario, err error, idx int64) {
		mu.Lock()
		defer mu.Unlock()
		key := sc.Algo + "/" + p.Name
		pd, ok := found[key]
		if !ok {
			found[key] = &pending{
				finding: Finding{
					Property:  p.Name,
					Algo:      sc.Algo,
					Error:     err.Error(),
					Count:     1,
					Original:  sc.ToCase(key),
					OriginalN: sc.G.N(),
				},
				scenario: sc,
				prop:     p,
				origIdx:  idx,
				seedIdx:  idx,
			}
			return
		}
		pd.finding.Count++
		if idx < pd.origIdx {
			pd.origIdx = idx
			pd.finding.Error = err.Error()
			pd.finding.Original = sc.ToCase(key)
			pd.finding.OriginalN = sc.G.N()
		}
		if sc.G.N() < pd.scenario.G.N() ||
			(sc.G.N() == pd.scenario.G.N() && idx < pd.seedIdx) {
			pd.scenario = sc
			pd.seedIdx = idx
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				n := scenarios.Add(1)
				if cfg.Iterations > 0 && n > cfg.Iterations {
					scenarios.Add(-1)
					return
				}
				// One RNG per scenario, seeded by the global iteration
				// index: scenario #n is identical no matter which worker
				// claims it or in what order.
				rng := rand.New(rand.NewSource(cfg.Seed + n))
				algo := cfg.Algos[rng.Intn(len(cfg.Algos))]
				sc, err := Generate(rng, algo, cfg.MaxN)
				if err != nil {
					continue
				}
				for _, p := range props {
					checks.Add(1)
					if verr := p.Check(sc); verr != nil {
						record(p, sc, verr, n)
					}
				}
			}
		}()
	}
	wg.Wait()

	rep := &Report{Scenarios: scenarios.Load(), Checks: checks.Load()}
	keys := make([]string, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pd := found[k]
		if !cfg.DisableShrink {
			small := Shrink(pd.scenario, func(c *Scenario) bool {
				return pd.prop.Check(c) != nil
			}, cfg.ShrinkBudget)
			c := small.ToCase(k + "-min")
			c.Property = pd.finding.Property
			if verr := pd.prop.Check(small); verr != nil {
				pd.finding.ShrunkError = verr.Error()
			}
			pd.finding.Shrunk = &c
			pd.finding.ShrunkN = small.G.N()
		}
		rep.Findings = append(rep.Findings, pd.finding)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ReplayCorpus runs every property over every corpus case and returns
// the violations keyed by case name — the tier-1 regression gate over
// checked-in scenarios. Cases carrying a MinDilation additionally
// assert their walk stays at least that stretched (tightness
// witnesses).
func ReplayCorpus(cases []Case, props []Property) map[string][]error {
	if len(props) == 0 {
		props = AllProperties()
	}
	failures := map[string][]error{}
	for _, c := range cases {
		sc, err := c.Scenario()
		if err != nil {
			failures[c.Name] = append(failures[c.Name], err)
			continue
		}
		for _, p := range props {
			if verr := p.Check(sc); verr != nil {
				failures[c.Name] = append(failures[c.Name], fmt.Errorf("%s: %w", p.Name, verr))
			}
		}
		if c.MinDilation > 0 {
			if verr := checkTightness(sc, c.MinDilation); verr != nil {
				failures[c.Name] = append(failures[c.Name], verr)
			}
		}
	}
	return failures
}

// checkTightness asserts the scenario's routed walk has dilation at
// least min — the lower-bound half of the paper's "tight" claims,
// witnessed by the extremal corpus instances.
func checkTightness(sc *Scenario, min float64) error {
	res := routeScenario(sc)
	if res.Dist <= 0 {
		return fmt.Errorf("tightness: endpoints %d -> %d disconnected", sc.S, sc.T)
	}
	d := float64(res.Len()) / float64(res.Dist)
	if res.Outcome != sim.Delivered {
		return fmt.Errorf("tightness: witness not delivered (outcome %v)", res.Outcome)
	}
	if d < min-1e-9 {
		return fmt.Errorf("tightness: dilation %.3f below the witnessed lower bound %.3f", d, min)
	}
	return nil
}
