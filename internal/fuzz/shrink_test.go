package fuzz

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

// TestShrinkReachesMinimalCycle: seed the shrinker with a broken2
// failure on a relabeled 14-cycle; the minimal reproducer must stay a
// failing scenario, keep both endpoints, stay connected, and get small
// (plain vertex removal disconnects a cycle — this exercises the
// degree-2 smoothing pass).
func TestShrinkReachesMinimalCycle(t *testing.T) {
	g := gen.Cycle(14)
	rng := rand.New(rand.NewSource(2))
	g = g.PermuteLabels(gen.RandomLabelPermutation(rng, g))

	sc := scenarioOn(t, "broken2", g, 0, 0, 1)
	sc.K = sc.Alg.MinK(g.N())
	s, tt, ok := findFailingPair(sc)
	if !ok {
		t.Fatal("broken2 delivers every pair on the relabeled 14-cycle; pick a harder seed")
	}
	sc.S, sc.T = s, tt
	fails := func(c *Scenario) bool { return checkDelivery(c) != nil }
	small := Shrink(sc, fails, 0)
	if !fails(small) {
		t.Fatal("shrunk scenario no longer fails")
	}
	if !small.G.Connected() {
		t.Fatal("shrunk graph is disconnected")
	}
	if !small.G.HasVertex(small.S) || !small.G.HasVertex(small.T) {
		t.Fatal("shrinking removed an endpoint")
	}
	if small.G.N() > 12 {
		t.Fatalf("shrunk to %d vertices, want <= 12", small.G.N())
	}
	if small.G.N() > sc.G.N() || small.G.M() > sc.G.M() {
		t.Fatal("shrinking grew the instance")
	}
	// 1-minimality over vertices: no single further vertex removal may
	// keep the failure alive (that's the shrinker's contract).
	for _, v := range small.G.Vertices() {
		if v == small.S || v == small.T {
			continue
		}
		g2 := small.G.WithoutVertex(v)
		if g2.N() < 2 || !g2.Connected() {
			continue
		}
		if fails(small.withGraph(g2)) {
			t.Fatalf("not 1-minimal: removing vertex %d still fails", v)
		}
	}
}

// TestShrinkRespectsBudget: with a one-evaluation budget the shrinker
// must return a failing scenario without exploring further.
func TestShrinkRespectsBudget(t *testing.T) {
	sc := mustFailingScenario(t)
	small := Shrink(sc, func(c *Scenario) bool { return checkDelivery(c) != nil }, 1)
	if checkDelivery(small) == nil {
		t.Fatal("budgeted shrink returned a passing scenario")
	}
}

// mustFailingScenario returns a broken2 scenario on a relabeled 9-cycle
// at threshold with a concrete failing (s, t) pair.
func mustFailingScenario(t *testing.T) *Scenario {
	t.Helper()
	g := gen.Cycle(9)
	rng := rand.New(rand.NewSource(3))
	g = g.PermuteLabels(gen.RandomLabelPermutation(rng, g))
	sc := scenarioOn(t, "broken2", g, 0, 0, 1)
	sc.K = sc.Alg.MinK(g.N())
	s, tt, ok := findFailingPair(sc)
	if !ok {
		t.Fatal("no failing pair on the relabeled 9-cycle")
	}
	sc.S, sc.T = s, tt
	return sc
}

// findFailingPair scans all ordered pairs for one the scenario's
// algorithm fails to deliver.
func findFailingPair(sc *Scenario) (graph.Vertex, graph.Vertex, bool) {
	for _, s := range sc.G.Vertices() {
		for _, t := range sc.G.Vertices() {
			if s == t {
				continue
			}
			cand := sc.clone()
			cand.S, cand.T = s, t
			if checkDelivery(cand) != nil {
				return s, t, true
			}
		}
	}
	return 0, 0, false
}

// TestShrinkPreservesPropertyIdentity: the shrinker re-evaluates the
// predicate wholesale, so whatever failure mode it encodes (here: the
// walk must specifically livelock, not error out) survives reduction.
func TestShrinkPreservesPropertyIdentity(t *testing.T) {
	sc := mustFailingScenario(t)
	loops := func(c *Scenario) bool {
		return routeScenario(c).Outcome == sim.Looped
	}
	if !loops(sc) {
		t.Skip("seed failure is not a livelock")
	}
	small := Shrink(sc, loops, 0)
	if got := routeScenario(small).Outcome; got != sim.Looped {
		t.Fatalf("shrunk outcome %v, want the original livelock", got)
	}
}
