package fuzz

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/verify"
)

// scenarioOn builds a concrete scenario for property unit tests.
func scenarioOn(t *testing.T, algo string, g *graph.Graph, k int, s, tt graph.Vertex) *Scenario {
	t.Helper()
	mk, ok := Algorithms()[algo]
	if !ok {
		t.Fatalf("unknown algo %q", algo)
	}
	return &Scenario{Algo: algo, Alg: mk(), G: g, K: k, S: s, T: tt, Seed: 5, Family: "test"}
}

func TestPropertiesHoldOnCycleAtThreshold(t *testing.T) {
	g := gen.Cycle(12)
	for _, algo := range AlgorithmNames() {
		sc := scenarioOn(t, algo, g, 0, 0, 6)
		sc.K = sc.Alg.MinK(g.N())
		for _, p := range AllProperties() {
			if err := p.Check(sc); err != nil {
				t.Errorf("%s/%s: %v", algo, p.Name, err)
			}
		}
	}
}

func TestDeliveryPropertySkipsBelowThreshold(t *testing.T) {
	// Algorithm 1 on a large cycle at k = T(n)−1: below the guarantee,
	// whatever happens is not a violation.
	g := gen.Cycle(16)
	sc := scenarioOn(t, "alg1", g, route.MinK1(16)-1, 0, 8)
	if err := checkDelivery(sc); err != nil {
		t.Fatalf("below-threshold scenario must be vacuously fine, got %v", err)
	}
}

func TestDeliveryPropertyCatchesBrokenVariant(t *testing.T) {
	// The broken variant loops on a plain cycle at its own threshold
	// whenever the lowest-rank active root points backward somewhere.
	g := gen.Cycle(9)
	rng := rand.New(rand.NewSource(3))
	g = g.PermuteLabels(gen.RandomLabelPermutation(rng, g))
	vs := g.Vertices()
	var failed bool
	for _, s := range vs {
		for _, tt := range vs {
			if s == tt {
				continue
			}
			sc := scenarioOn(t, "broken2", g, route.MinK2(g.N()), s, tt)
			if err := checkDelivery(sc); err != nil {
				failed = true
			}
		}
	}
	if !failed {
		t.Fatal("broken2 delivered every pair on a relabeled 9-cycle; the hook is not broken enough")
	}
}

func TestDilationPropertyViaCheckDilation(t *testing.T) {
	// A scenario whose algorithm delivers but with a walk longer than
	// the bound must surface a typed DilationViolation. Use the walk
	// check directly: a path graph routed by alg2 is shortest, so no
	// violation; then check the typed error plumbing with a fake bound.
	g := gen.Path(9)
	sc := scenarioOn(t, "alg2", g, route.MinK2(9), 0, 8)
	if err := checkDilation(sc); err != nil {
		t.Fatalf("alg2 on a path is shortest-path, got %v", err)
	}
	res := routeScenario(sc)
	err := verify.CheckDilation(res.Route, g, 0, 8, 0.5)
	var dv *verify.DilationViolation
	if !errors.As(err, &dv) {
		t.Fatalf("want *verify.DilationViolation, got %v", err)
	}
	if dv.Hops != 8 || dv.Dist != 8 || dv.Dilation() != 1 {
		t.Fatalf("bad violation payload: %+v", dv)
	}
}

func TestDifferentialSkipsLargeGraphs(t *testing.T) {
	g := gen.Cycle(DifferentialMaxN + 2)
	sc := scenarioOn(t, "alg3", g, g.N()/2, 0, 3)
	if err := checkDifferential(sc); err != nil {
		t.Fatalf("oversized scenario must skip, got %v", err)
	}
}

func TestDifferentialAgreesOnLollipop(t *testing.T) {
	g := gen.Lollipop(9, 4)
	sc := scenarioOn(t, "alg1", g, route.MinK1(g.N()), 2, graph.Vertex(g.N()-1))
	if err := checkDifferential(sc); err != nil {
		t.Fatalf("engine and netsim disagree on a fault-free lollipop: %v", err)
	}
}

func TestRelabelPropertyUsesScenarioSeed(t *testing.T) {
	g := gen.Spider(3, 4)
	sc := scenarioOn(t, "alg1b", g, route.MinK1(g.N()), 1, 12)
	if err := checkRelabel(sc); err != nil {
		t.Fatalf("relabel property failed on a spider: %v", err)
	}
	// Determinism of the property itself: same scenario, same verdict.
	for i := 0; i < 3; i++ {
		if err := checkRelabel(sc); err != nil {
			t.Fatalf("relabel verdict changed on re-run: %v", err)
		}
	}
}

func TestGenerateProducesValidScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	families := map[string]bool{}
	for i := 0; i < 300; i++ {
		algo := AlgorithmNames()[i%4]
		sc, err := Generate(rng, algo, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.G.Connected() {
			t.Fatalf("disconnected graph from family %s", sc.Family)
		}
		if sc.S == sc.T || !sc.G.HasVertex(sc.S) || !sc.G.HasVertex(sc.T) {
			t.Fatalf("bad endpoints %d -> %d", sc.S, sc.T)
		}
		if sc.K < 1 || sc.K > sc.G.N() {
			t.Fatalf("locality %d out of range for n=%d", sc.K, sc.G.N())
		}
		families[sc.Family] = true
	}
	if len(families) < 10 {
		t.Fatalf("generator only hit %d families in 300 draws", len(families))
	}
}

func TestDecodeScenarioTotality(t *testing.T) {
	if _, ok := DecodeScenario([]byte{1, 2, 3}); ok {
		t.Fatal("short input must not decode")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		data := make([]byte, 6+rng.Intn(12))
		rng.Read(data)
		sc, ok := DecodeScenario(data)
		if !ok {
			t.Fatalf("input of %d bytes failed to decode", len(data))
		}
		if !sc.G.Connected() || sc.S == sc.T || sc.K < 1 || sc.K > sc.G.N() {
			t.Fatalf("decoded invalid scenario: %s", sc)
		}
	}
	// Determinism: equal bytes, equal scenario.
	data := []byte{3, 1, 7, 2, 5, 9, 1, 2, 3, 4, 5, 6, 7, 8}
	a, _ := DecodeScenario(data)
	b, _ := DecodeScenario(data)
	if a.String() != b.String() || !a.G.Equal(b.G) {
		t.Fatalf("decoder is not deterministic: %s vs %s", a, b)
	}
}

func TestPropertyDocsMentionContracts(t *testing.T) {
	for _, p := range AllProperties() {
		if p.Doc == "" || p.Name == "" || p.Check == nil {
			t.Fatalf("registry entry incomplete: %+v", p.Name)
		}
		if strings.ContainsAny(p.Name, " \t") {
			t.Fatalf("property name %q must be flag-friendly", p.Name)
		}
	}
}

func TestCSRPropertyAcrossFamiliesAndK(t *testing.T) {
	// The store differential has no threshold precondition: views must
	// match at every k, including far below T(n).
	rng := rand.New(rand.NewSource(11))
	graphs := []*graph.Graph{
		gen.Cycle(14),
		gen.Grid(4, 4),
		gen.Lollipop(8, 5),
		gen.RandomConnected(rng, 18, 0.15),
		gen.RandomTree(rng, 15),
	}
	for _, g := range graphs {
		for _, k := range []int{0, 1, 2, 5, g.N()} {
			for _, algo := range []string{"alg1", "alg2", "alg3"} {
				sc := scenarioOn(t, algo, g, k, 0, graph.Vertex(g.N()/2))
				if err := checkCSR(sc); err != nil {
					t.Errorf("%s k=%d n=%d: %v", algo, k, g.N(), err)
				}
			}
		}
	}
}

// TestDeltaPropertyAcrossFamilies replays the churn differential on
// every generator family at threshold locality and at k=1: derived
// views must equal from-scratch views after every schedule prefix
// regardless of the topology's shape.
func TestDeltaPropertyAcrossFamilies(t *testing.T) {
	fams := families()
	if len(fams) < 15 {
		t.Fatalf("generator pool shrank to %d families, want >= 15", len(fams))
	}
	for _, fam := range fams {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := fam.build(rng, (fam.minN+fam.maxN)/2)
			vs := g.Vertices()
			for _, algo := range []string{"alg2", "alg3"} {
				sc := scenarioOn(t, algo, g, 0, vs[0], vs[len(vs)-1])
				for _, k := range []int{sc.Alg.MinK(g.N()), 1} {
					if k < 1 {
						k = 1
					}
					sc.K = k
					sc.Seed = 11
					if err := checkDelta(sc); err != nil {
						t.Errorf("%s k=%d: %v", algo, k, err)
					}
				}
			}
		})
	}
}
