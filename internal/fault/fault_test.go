package fault

import (
	"math"
	"testing"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := Compile(Plan{})
	if in.Enabled() {
		t.Fatal("zero plan must compile to a disabled injector")
	}
	for attempt := 1; attempt <= 3; attempt++ {
		for key := uint64(0); key < 100; key++ {
			d := in.Deliver(1, 2, ClassLSA, key, attempt, 0)
			if d.Drop || d.Duplicate || d.Delay != 0 {
				t.Fatalf("zero plan perturbed key %d: %+v", key, d)
			}
		}
	}
	if in.Down(3, 0) {
		t.Fatal("zero plan must crash nobody")
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	p := Plan{Seed: 7, Loss: 0.3, Dup: 0.2, MaxDelay: 3}
	a, b := Compile(p), Compile(p)
	for key := uint64(0); key < 500; key++ {
		for attempt := 1; attempt <= 2; attempt++ {
			da := a.Deliver(4, 9, ClassAck, key, attempt, 5)
			db := b.Deliver(4, 9, ClassAck, key, attempt, 5)
			if da != db {
				t.Fatalf("same plan, same transmission, different fate: %+v vs %+v", da, db)
			}
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	a := Compile(Plan{Seed: 1, Loss: 0.5})
	b := Compile(Plan{Seed: 2, Loss: 0.5})
	diff := 0
	for key := uint64(0); key < 200; key++ {
		if a.Deliver(0, 1, ClassLSA, key, 1, 0).Drop != b.Deliver(0, 1, ClassLSA, key, 1, 0).Drop {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds should produce different drop patterns")
	}
}

func TestLossRateIsApproximatelyHonoured(t *testing.T) {
	for _, rate := range []float64{0.1, 0.2, 0.5} {
		in := Compile(Plan{Seed: 11, Loss: rate})
		const trials = 20000
		drops := 0
		for key := uint64(0); key < trials; key++ {
			if in.Deliver(2, 3, ClassLSA, key, 1, 0).Drop {
				drops++
			}
		}
		got := float64(drops) / trials
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("loss %.2f: observed %.3f over %d trials", rate, got, trials)
		}
	}
}

func TestAttemptsAreIndependent(t *testing.T) {
	// A transmission dropped on attempt 1 must get an independent roll
	// on attempt 2 — otherwise retransmission could never help.
	in := Compile(Plan{Seed: 5, Loss: 0.5})
	var survivedRetry int
	var droppedFirst int
	for key := uint64(0); key < 2000; key++ {
		if in.Deliver(1, 2, ClassLSA, key, 1, 0).Drop {
			droppedFirst++
			if !in.Deliver(1, 2, ClassLSA, key, 2, 0).Drop {
				survivedRetry++
			}
		}
	}
	if droppedFirst == 0 {
		t.Fatal("expected some first-attempt drops at 50% loss")
	}
	frac := float64(survivedRetry) / float64(droppedFirst)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("retry survival %.3f, want ~0.5 (independent attempts)", frac)
	}
}

func TestBlackoutWindow(t *testing.T) {
	in := Compile(Plan{Blackouts: []Blackout{{U: 1, V: 2, From: 3, To: 6}}})
	for round := 0; round < 10; round++ {
		inWindow := round >= 3 && round < 6
		if got := in.Deliver(1, 2, ClassLSA, 9, 1, round).Drop; got != inWindow {
			t.Errorf("round %d: drop=%v, want %v", round, got, inWindow)
		}
		// Blackouts are bidirectional.
		if got := in.Deliver(2, 1, ClassData, 9, 1, round).Drop; got != inWindow {
			t.Errorf("round %d reverse: drop=%v, want %v", round, got, inWindow)
		}
		// Other links are unaffected.
		if in.Deliver(1, 3, ClassLSA, 9, 1, round).Drop {
			t.Errorf("round %d: blackout leaked onto link 1-3", round)
		}
	}
}

func TestCrashWindows(t *testing.T) {
	in := Compile(Plan{Crashes: []Crash{
		{Node: 4, From: 0, To: 0}, // permanent
		{Node: 7, From: 2, To: 5}, // crash-and-restart
	}})
	for round := 0; round < 8; round++ {
		if !in.Down(4, round) {
			t.Errorf("round %d: node 4 should be permanently down", round)
		}
		want := round >= 2 && round < 5
		if got := in.Down(7, round); got != want {
			t.Errorf("round %d: node 7 down=%v, want %v", round, got, want)
		}
		if in.Down(1, round) {
			t.Errorf("round %d: node 1 should be up", round)
		}
	}
}

func TestDataIsNeverDuplicated(t *testing.T) {
	in := Compile(Plan{Seed: 3, Dup: 1.0})
	for key := uint64(0); key < 100; key++ {
		if in.Deliver(0, 1, ClassData, key, 1, 0).Duplicate {
			t.Fatal("data traffic must not be duplicated (single-owner messages)")
		}
		if !in.Deliver(0, 1, ClassLSA, key, 1, 0).Duplicate {
			t.Fatal("control traffic should duplicate at rate 1.0")
		}
	}
}

func TestDelayIsBounded(t *testing.T) {
	in := Compile(Plan{Seed: 9, MaxDelay: 4})
	sawPositive := false
	for key := uint64(0); key < 500; key++ {
		d := in.Deliver(0, 1, ClassLSA, key, 1, 0).Delay
		if d < 0 || d > 4 {
			t.Fatalf("delay %d outside [0, 4]", d)
		}
		if d > 0 {
			sawPositive = true
		}
	}
	if !sawPositive {
		t.Error("MaxDelay=4 never delayed anything")
	}
}

func TestBackoffScheduleIsExponentialAndCapped(t *testing.T) {
	p := Plan{BackoffCap: 8}
	want := []int{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	if (Plan{}).Attempts() != DefaultMaxAttempts {
		t.Errorf("default attempts = %d", (Plan{}).Attempts())
	}
}

func TestLastScheduledRound(t *testing.T) {
	p := Plan{
		Blackouts: []Blackout{{U: 0, V: 1, From: 2, To: 9}},
		Crashes:   []Crash{{Node: 3, From: 4, To: 12}},
	}
	if got := p.LastScheduledRound(); got != 12 {
		t.Errorf("last scheduled round = %d, want 12", got)
	}
	if (Plan{}).LastScheduledRound() != 0 {
		t.Error("zero plan has no schedule")
	}
}

func TestDropIndices(t *testing.T) {
	in := DropIndices(ClassLSA, 2, 4)
	var drops []int
	for i := 1; i <= 5; i++ {
		// Interleave another class: it must not consume LSA indices.
		if in.Deliver(0, 1, ClassAck, 0, 1, 0).Drop {
			t.Fatal("ack dropped by an LSA index dropper")
		}
		if in.Deliver(0, 1, ClassLSA, 0, 1, 0).Drop {
			drops = append(drops, i)
		}
	}
	if len(drops) != 2 || drops[0] != 2 || drops[1] != 4 {
		t.Errorf("dropped LSA indices %v, want [2 4]", drops)
	}
}
