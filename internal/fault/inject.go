package fault

import (
	"sync/atomic"

	"klocal/internal/graph"
)

// DropIndices returns an injector that drops exactly the transmissions
// of the given class whose 1-based global send index (in transmission
// order, counting only that class) appears in idx. Everything else is
// delivered perfectly. It is intended for tests that must lose one
// specific message — e.g. the deadlock regression that drops a single
// LSA during discovery.
func DropIndices(class Class, idx ...uint64) Injector {
	set := make(map[uint64]bool, len(idx))
	for _, i := range idx {
		set[i] = true
	}
	return &indexDropper{class: class, drop: set}
}

type indexDropper struct {
	class Class
	drop  map[uint64]bool
	seen  atomic.Uint64
}

func (d *indexDropper) Deliver(_, _ graph.Vertex, class Class, _ uint64, _, _ int) Decision {
	if class != d.class {
		return Decision{}
	}
	n := d.seen.Add(1)
	return Decision{Drop: d.drop[n]}
}

func (d *indexDropper) Down(graph.Vertex, int) bool { return false }
func (d *indexDropper) Enabled() bool               { return true }
