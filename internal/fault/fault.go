// Package fault injects deterministic, seeded link and node faults into
// the network simulator. The paper's model assumes every node reliably
// learns its k-neighbourhood before routing; this package supplies the
// adversarial physical layer that assumption hides — probabilistic
// message loss, duplication, bounded delay/reorder, per-link blackout
// windows, and node crashes with optional restart — so the discovery and
// routing protocols can be exercised under the conditions an ad hoc
// network actually presents.
//
// All randomness is counter-based: each decision is a pure hash of the
// plan seed and the transmission's identity (link, traffic class,
// message key, attempt number), never of a shared mutable RNG. Fault
// decisions are therefore reproducible from the seed alone, independent
// of goroutine scheduling.
package fault

import (
	"fmt"

	"klocal/internal/graph"
)

// Class labels the traffic class of a transmission, letting an injector
// discriminate between discovery floods, acknowledgments, and routed
// data.
type Class int

const (
	// ClassLSA is a link-state announcement (discovery flood).
	ClassLSA Class = iota
	// ClassAck is a discovery acknowledgment.
	ClassAck
	// ClassData is a routed data message.
	ClassData
)

func (c Class) String() string {
	switch c {
	case ClassLSA:
		return "lsa"
	case ClassAck:
		return "ack"
	case ClassData:
		return "data"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Decision is the fate of one transmission attempt.
type Decision struct {
	// Drop discards the message; the link layer sees no delivery and no
	// acknowledgment.
	Drop bool
	// Duplicate enqueues a second copy (receivers dedup by sequence).
	Duplicate bool
	// Delay holds the message for this many extra dequeue passes at the
	// receiver, reordering it behind later traffic.
	Delay int
}

// Injector decides the fate of every link transmission and the liveness
// of every node. Implementations must be safe for concurrent use and —
// for reproducibility — should derive decisions only from their
// configuration and the arguments, never from call order.
type Injector interface {
	// Deliver rules on one transmission attempt of a message identified
	// by key on link from→to. attempt is 1-based; round is the logical
	// discovery round at transmission time.
	Deliver(from, to graph.Vertex, class Class, key uint64, attempt, round int) Decision
	// Down reports whether node v is crashed at the given round. A down
	// node neither sends, receives, nor processes.
	Down(v graph.Vertex, round int) bool
	// Enabled reports whether the injector can ever perturb traffic or
	// liveness. A disabled injector lets the simulator skip fault
	// bookkeeping entirely.
	Enabled() bool
}

// Blackout silences the link {U, V} in both directions during rounds
// [From, To).
type Blackout struct {
	U, V     graph.Vertex
	From, To int
}

// Crash takes Node down for rounds [From, To). To <= 0 means the crash
// is permanent. A node that restarts (round >= To) rejoins with its
// stable storage intact (link-state sequence numbers and learned
// records survive, as in crash-recovery with persistent state).
type Crash struct {
	Node     graph.Vertex
	From, To int
}

// Plan is a reproducible fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// Loss is the independent per-attempt drop probability applied to
	// every link transmission (LSAs, acks, and data alike).
	Loss float64
	// Dup is the probability a delivered control message is duplicated.
	Dup float64
	// MaxDelay bounds fault-injected reordering: a delivered message is
	// held for a uniform number of dequeue passes in [0, MaxDelay].
	MaxDelay int
	// Blackouts are per-link outage windows.
	Blackouts []Blackout
	// Crashes are node-level faults.
	Crashes []Crash
	// MaxAttempts bounds transmissions per reliable transfer (first send
	// plus retransmits) before the peer is declared dead. 0 means the
	// default (12).
	MaxAttempts int
	// BackoffCap caps the exponential retransmit backoff, in rounds.
	// 0 means the default (8).
	BackoffCap int
}

// DefaultMaxAttempts and DefaultBackoffCap govern the reliable-transfer
// retry schedule when the plan leaves them zero. Twelve attempts drive
// the per-transfer failure probability below 4e-9 at 20% loss.
const (
	DefaultMaxAttempts = 12
	DefaultBackoffCap  = 8
)

// Attempts returns the plan's retransmit budget with defaults applied.
func (p Plan) Attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

// Backoff returns the retry delay in rounds after the given 1-based
// attempt: exponential, capped by the plan's BackoffCap.
func (p Plan) Backoff(attempt int) int {
	cap := p.BackoffCap
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	d := 1
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// Zero reports whether the plan injects no faults at all (retry tuning
// aside), so the simulator behaves exactly like a perfect network.
func (p Plan) Zero() bool {
	return p.Loss == 0 && p.Dup == 0 && p.MaxDelay == 0 &&
		len(p.Blackouts) == 0 && len(p.Crashes) == 0
}

// LastScheduledRound returns the largest round at which the plan changes
// network state (blackout or crash boundaries); discovery must keep
// settling at least until then.
func (p Plan) LastScheduledRound() int {
	last := 0
	for _, b := range p.Blackouts {
		if b.To > last {
			last = b.To
		}
	}
	for _, c := range p.Crashes {
		if c.From > last {
			last = c.From
		}
		if c.To > last {
			last = c.To
		}
	}
	return last
}

// Compile builds the injector realizing the plan.
func Compile(p Plan) Injector {
	if p.Zero() {
		return nopInjector{}
	}
	return &planInjector{plan: p}
}

// nopInjector delivers everything and crashes nothing.
type nopInjector struct{}

func (nopInjector) Deliver(_, _ graph.Vertex, _ Class, _ uint64, _, _ int) Decision {
	return Decision{}
}
func (nopInjector) Down(graph.Vertex, int) bool { return false }
func (nopInjector) Enabled() bool               { return false }

// planInjector realizes a Plan with counter-based hashing.
type planInjector struct {
	plan Plan
}

func (in *planInjector) Enabled() bool { return true }

func (in *planInjector) Down(v graph.Vertex, round int) bool {
	for _, c := range in.plan.Crashes {
		if c.Node != v {
			continue
		}
		if round >= c.From && (c.To <= 0 || round < c.To) {
			return true
		}
	}
	return false
}

func (in *planInjector) blackout(u, v graph.Vertex, round int) bool {
	for _, b := range in.plan.Blackouts {
		onLink := (b.U == u && b.V == v) || (b.U == v && b.V == u)
		if onLink && round >= b.From && round < b.To {
			return true
		}
	}
	return false
}

func (in *planInjector) Deliver(from, to graph.Vertex, class Class, key uint64, attempt, round int) Decision {
	if in.blackout(from, to, round) {
		return Decision{Drop: true}
	}
	var d Decision
	if in.plan.Loss > 0 &&
		in.uniform(1, uint64(from), uint64(to), uint64(class), key, uint64(attempt)) < in.plan.Loss {
		d.Drop = true
		return d
	}
	if in.plan.Dup > 0 && class != ClassData &&
		in.uniform(2, uint64(from), uint64(to), uint64(class), key, uint64(attempt)) < in.plan.Dup {
		d.Duplicate = true
	}
	if in.plan.MaxDelay > 0 {
		r := in.hash(3, uint64(from), uint64(to), uint64(class), key, uint64(attempt))
		d.Delay = int(r % uint64(in.plan.MaxDelay+1))
	}
	return d
}

// hash folds the tag and parts into one splitmix64-style digest.
func (in *planInjector) hash(tag uint64, parts ...uint64) uint64 {
	h := in.plan.Seed ^ (tag * 0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix64(h)
	}
	return h
}

// uniform maps the digest to [0, 1).
func (in *planInjector) uniform(tag uint64, parts ...uint64) float64 {
	return float64(in.hash(tag, parts...)>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Event records one fault occurrence on the data path, for hop traces.
type Event struct {
	// Kind is one of "drop", "dup", "delay", "retransmit", "node-down".
	Kind     string
	From, To graph.Vertex
	// Hop is the 0-based index into the route at which the event fired.
	Hop     int
	Attempt int
}

func (e Event) String() string {
	return fmt.Sprintf("hop %d: %s %d->%d (attempt %d)", e.Hop, e.Kind, e.From, e.To, e.Attempt)
}
