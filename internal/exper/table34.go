package exper

import (
	"fmt"
	"io"

	"klocal/internal/adversary"
	"klocal/internal/sim"
)

// Table3Result wraps the Theorem 1 strategy replay (Table 3).
type Table3Result struct {
	N      int
	Replay *adversary.Theorem1Result
}

// Table3 regenerates Table 3 at size n.
func Table3(n int) (*Table3Result, error) {
	rep, err := adversary.ReplayTheorem1(n)
	if err != nil {
		return nil, err
	}
	return &Table3Result{N: n, Replay: rep}, nil
}

// Render prints the success/failure matrix in the paper's layout.
func (r *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3 — Theorem 1 strategies, n = %d (hub degree 4, k = r = %d)\n",
		r.N, r.Replay.Family.R)
	renderStrategyMatrix(w, r.Replay.Strategies, r.Replay.Outcomes)
}

// Table4Result wraps the Theorem 2 strategy replay (Table 4).
type Table4Result struct {
	N      int
	Replay *adversary.Theorem2Result
}

// Table4 regenerates Table 4 at size n.
func Table4(n int) (*Table4Result, error) {
	rep, err := adversary.ReplayTheorem2(n)
	if err != nil {
		return nil, err
	}
	return &Table4Result{N: n, Replay: rep}, nil
}

// Render prints the success/failure matrix in the paper's layout.
func (r *Table4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 4 — Theorem 2 strategies, n = %d (hub = s, degree 3, k = r = %d)\n",
		r.N, r.Replay.Family.R)
	renderStrategyMatrix(w, r.Replay.Strategies, r.Replay.Outcomes)
}

func renderStrategyMatrix(w io.Writer, strategies []adversary.HubStrategy, outcomes [][]sim.Outcome) {
	fmt.Fprintf(w, "%-4s %-22s", "#", "strategy")
	for j := range outcomes[0] {
		fmt.Fprintf(w, " %-10s", fmt.Sprintf("G%d", j+1))
	}
	fmt.Fprintln(w)
	for i, strat := range strategies {
		fmt.Fprintf(w, "%-4d %-22s", i+1, strat.String())
		for _, o := range outcomes[i] {
			cell := "succeeds"
			if o != sim.Delivered {
				cell = "FAILS"
			}
			fmt.Fprintf(w, " %-10s", cell)
		}
		fmt.Fprintln(w)
	}
}
