package exper

import (
	"math/rand"

	"klocal/internal/engine"
	"klocal/internal/graph"
	"klocal/internal/route"
)

// The -parallel fast path: the sweep's pair evaluations routed through
// the traffic engine's worker pool instead of one walk at a time. The
// parallel functions draw from the shared rng in exactly the same order
// as their sequential counterparts and route deterministic walks, so
// their results are identical point for point — only the wall clock
// changes. The parity test in parallel_test.go enforces this.

// samplePairs draws `pairs` sampled requests using the same rng calls as
// evalSampledPairs; pairs with s == t are dropped (not redrawn), matching
// the sequential sampling exactly.
func samplePairs(rng *rand.Rand, g *graph.Graph, pairs int) []engine.Request {
	vs := g.Vertices()
	out := make([]engine.Request, 0, pairs)
	for i := 0; i < pairs; i++ {
		s := vs[rng.Intn(len(vs))]
		t := vs[rng.Intn(len(vs))]
		if s == t {
			continue
		}
		out = append(out, engine.Request{S: s, T: t})
	}
	return out
}

// evalRequestsEngine routes reqs over (alg, g, k) with `workers`
// concurrent workers and folds the results into stats in request order.
func evalRequestsEngine(alg route.Algorithm, g *graph.Graph, k, workers int, reqs []engine.Request, stats *PairStats) error {
	snap, err := engine.NewSnapshot(g, k, alg)
	if err != nil {
		return err
	}
	resps, _, err := engine.RouteAll(snap, reqs, engine.Config{Workers: workers})
	if err != nil {
		return err
	}
	for _, r := range resps {
		stats.add(g, r.Result)
	}
	return nil
}

// SweepParallel is Sweep routed through the engine: identical points
// (same rng stream, same pairs, same deterministic walks), computed with
// `workers` concurrent routing workers per (algorithm, k, graph) cell.
func SweepParallel(rng *rand.Rand, n, randomGraphs, pairs, workers int) (*SweepResult, error) {
	res := &SweepResult{N: n}
	graphs := workloadGraphs(rng, n, randomGraphs)
	algs := []route.Algorithm{
		route.Algorithm1(),
		route.Algorithm1B(),
		route.Algorithm2(),
		route.Algorithm3(),
	}
	for _, alg := range algs {
		for k := 1; k <= (n+1)/2; k++ {
			var stats PairStats
			for _, g := range graphs {
				reqs := samplePairs(rng, g, pairs)
				if err := evalRequestsEngine(alg, g, k, workers, reqs, &stats); err != nil {
					return nil, err
				}
			}
			stats.finish()
			res.Points = append(res.Points, SweepPoint{Algorithm: alg.Name, K: k, Stats: stats})
		}
	}
	return res, nil
}

// AllPairsParallel routes every ordered pair of g through the engine —
// the parallel counterpart of evalAllPairs, exposed for table-scale
// experiments over larger n than the sequential path can afford.
func AllPairsParallel(alg route.Algorithm, g *graph.Graph, k, workers int) (*PairStats, error) {
	var stats PairStats
	reqs := engine.Take(engine.AllPairs(g), engine.PairCount(g))
	if err := evalRequestsEngine(alg, g, k, workers, reqs, &stats); err != nil {
		return nil, err
	}
	stats.finish()
	return &stats, nil
}
