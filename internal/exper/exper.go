// Package exper regenerates every table and quantitative figure of the
// paper as machine-checked experiments. Each Table*/Fig* function returns
// a structured result with a Render method producing the same rows the
// paper reports; cmd/tables prints them all.
package exper

import (
	"math/rand"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
	"klocal/internal/verify"
)

// runPair routes one (s,t) pair with a bound function.
func runPair(g *graph.Graph, f route.Func, alg route.Algorithm, s, t graph.Vertex) *sim.Result {
	return sim.Run(g, sim.Func(f), s, t, sim.Options{
		DetectLoops:      !alg.Randomized,
		PredecessorAware: alg.PredecessorAware,
	})
}

// DilationWitness pins the concrete walk behind a measured dilation
// figure: enough context to re-validate the bound end to end with
// verify.CheckDilation instead of trusting a float that was computed
// once and carried along.
type DilationWitness struct {
	G    *graph.Graph
	S, T graph.Vertex
	Walk []graph.Vertex
}

// Check re-validates the witnessed walk against a dilation bound.
func (w *DilationWitness) Check(bound float64) error {
	return verify.CheckDilation(w.Walk, w.G, w.S, w.T, bound)
}

// PairStats aggregates delivery and dilation over a set of routed pairs.
type PairStats struct {
	Pairs     int
	Delivered int
	// WorstDilation and MeanDilation are over delivered pairs with
	// s != t.
	WorstDilation float64
	MeanDilation  float64
	// Worst is the walk achieving WorstDilation (nil until a delivered
	// pair with s != t is seen).
	Worst *DilationWitness

	dilationSum float64
	dilationN   int
}

func (ps *PairStats) add(g *graph.Graph, res *sim.Result) {
	ps.Pairs++
	if res.Outcome != sim.Delivered {
		return
	}
	ps.Delivered++
	if res.Dist > 0 {
		d := res.Dilation()
		ps.dilationSum += d
		ps.dilationN++
		if d > ps.WorstDilation {
			ps.WorstDilation = d
			ps.Worst = &DilationWitness{
				G: g, S: res.Route[0], T: res.Route[len(res.Route)-1],
				Walk: res.Route,
			}
		}
	}
}

func (ps *PairStats) finish() {
	if ps.dilationN > 0 {
		ps.MeanDilation = ps.dilationSum / float64(ps.dilationN)
	}
}

// AllDelivered reports whether every routed pair was delivered.
func (ps *PairStats) AllDelivered() bool { return ps.Delivered == ps.Pairs }

// evalAllPairs routes every ordered pair of g with alg at locality k.
func evalAllPairs(alg route.Algorithm, g *graph.Graph, k int, stats *PairStats) {
	f := alg.Bind(g, k)
	for _, s := range g.Vertices() {
		for _, t := range g.Vertices() {
			if s == t {
				continue
			}
			stats.add(g, runPair(g, f, alg, s, t))
		}
	}
}

// evalSampledPairs routes `pairs` random ordered pairs of g.
func evalSampledPairs(rng *rand.Rand, alg route.Algorithm, g *graph.Graph, k, pairs int, stats *PairStats) {
	f := alg.Bind(g, k)
	vs := g.Vertices()
	for i := 0; i < pairs; i++ {
		s := vs[rng.Intn(len(vs))]
		t := vs[rng.Intn(len(vs))]
		if s == t {
			continue
		}
		stats.add(g, runPair(g, f, alg, s, t))
	}
}

// workloadGraphs is the standard positive-side workload at size n: one
// graph per structural family plus randomized instances with adversarial
// relabelling.
func workloadGraphs(rng *rand.Rand, n, randomCount int) []*graph.Graph {
	graphs := []*graph.Graph{
		gen.Path(n),
		gen.Cycle(n),
		gen.Spider(4, (n-1)/4),
		gen.RandomTree(rng, n),
	}
	if n >= 10 {
		graphs = append(graphs, gen.Lollipop(n-n/3, n/3))
		graphs = append(graphs, gen.Wheel(n))
		c := (n - 2) / 2
		graphs = append(graphs, gen.Barbell(c, n-2*c))
	}
	for i := 0; i < randomCount; i++ {
		g := gen.RandomConnected(rng, n, rng.Float64()*0.2)
		graphs = append(graphs, g.PermuteLabels(gen.RandomLabelPermutation(rng, g)))
	}
	return graphs
}
