package exper

import (
	"fmt"
	"io"
	"math/rand"

	"klocal/internal/adversary"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// Table2Row is one column of the paper's Table 2 at a concrete size: the
// locality regime k ≈ n/4, n/3 or n/2 with the dilation lower bound
// S(k) = (2n−3k−1)/(k+1), the dilation the matching algorithm actually
// achieves on the Theorem 4 adversary instance, and the worst dilation it
// shows across the standard workload.
type Table2Row struct {
	Regime    string // "n/4", "n/3", "n/2"
	Algorithm string
	N, K      int

	// LowerBoundFormula is (2n−3k−1)/(k+1); LimitFormula is 2n/k − 3.
	LowerBoundFormula float64
	LimitFormula      float64
	// AdversaryDilation is the algorithm's dilation on the DilationPath
	// instance (the measured lower-bound witness).
	AdversaryDilation float64
	// WorkloadWorst is the worst dilation over the standard workload.
	WorkloadWorst float64
	// PaperUpperBound is the paper's upper bound for this regime: 7 / 6 /
	// 3 / 1 (Theorems 5–8).
	PaperUpperBound float64
	// AdversaryWitness and WorkloadWitness are the walks behind the two
	// measured columns; Check re-validates them against PaperUpperBound
	// end to end rather than re-comparing the cached floats.
	AdversaryWitness *DilationWitness
	WorkloadWitness  *DilationWitness
}

// Table2Result reproduces Table 2 at size n.
type Table2Result struct {
	N    int
	Rows []Table2Row
}

// Table2 measures the dilation landscape at size n.
func Table2(rng *rand.Rand, n, randomGraphs int) (*Table2Result, error) {
	if n < 16 {
		return nil, fmt.Errorf("exper: Table2 needs n >= 16, got %d", n)
	}
	res := &Table2Result{N: n}
	graphs := workloadGraphs(rng, n, randomGraphs)

	add := func(regime string, alg route.Algorithm, k int, upper float64) error {
		row := Table2Row{
			Regime:          regime,
			Algorithm:       alg.Name,
			N:               n,
			K:               k,
			PaperUpperBound: upper,
			LimitFormula:    2*float64(n)/float64(k) - 3,
		}
		if k < n/2 {
			row.LowerBoundFormula = adversary.LowerBoundDilation(n, k)
			inst, err := adversary.DilationPath(n, k)
			if err != nil {
				return err
			}
			r := runPair(inst.G, alg.Bind(inst.G, k), alg, inst.S, inst.T)
			if r.Outcome == sim.Delivered {
				row.AdversaryDilation = r.Dilation()
				row.AdversaryWitness = &DilationWitness{G: inst.G, S: inst.S, T: inst.T, Walk: r.Route}
			} else {
				row.AdversaryDilation = -1
			}
		} else {
			// k = ⌊n/2⌋: the bound degenerates to 1 (shortest paths).
			row.LowerBoundFormula = 1
			row.AdversaryDilation = 1
		}
		var stats PairStats
		for _, g := range graphs {
			evalAllPairs(alg, g, k, &stats)
		}
		stats.finish()
		row.WorkloadWorst = stats.WorstDilation
		row.WorkloadWitness = stats.Worst
		res.Rows = append(res.Rows, row)
		return nil
	}

	if err := add("n/4", route.Algorithm1(), route.MinK1(n), 7); err != nil {
		return nil, err
	}
	if err := add("n/4", route.Algorithm1B(), route.MinK1(n), 6); err != nil {
		return nil, err
	}
	if err := add("n/3", route.Algorithm2(), route.MinK2(n), 3); err != nil {
		return nil, err
	}
	if err := add("n/2", route.Algorithm3(), route.MinK3(n), 1); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the table.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2 — dilation bounds, n = %d\n", r.N)
	fmt.Fprintf(w, "%-6s %-12s %-4s %-14s %-12s %-14s %-14s %s\n",
		"k", "algorithm", "", "S(k) exact", "S(k) limit", "adversary dil", "workload worst", "paper upper")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6s %-12s k=%-3d %-14.3f %-12.3f %-14.3f %-14.3f %.0f\n",
			row.Regime, row.Algorithm, row.K,
			row.LowerBoundFormula, row.LimitFormula,
			row.AdversaryDilation, row.WorkloadWorst, row.PaperUpperBound)
	}
}
