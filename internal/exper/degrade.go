package exper

import (
	"fmt"
	"io"
	"math/rand"

	"klocal/internal/fault"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/netsim"
	"klocal/internal/route"
)

// DegradeCell is one (loss rate, locality k) measurement of the
// degradation sweep: delivery and stretch over sampled pairs, and the
// discovery traffic next to its fault-free baseline.
type DegradeCell struct {
	Loss float64
	K    int
	// Pairs counts the sampled pairs the fault-free baseline delivered
	// (k below the algorithm's threshold loses pairs already on perfect
	// channels; those say nothing about fault tolerance). Delivered is
	// how many of them the lossy network still delivered.
	Pairs     int
	Delivered int
	// MeanStretch is the mean ratio of lossy route length to fault-free
	// route length over delivered pairs.
	MeanStretch float64
	// ControlMsgs and BaselineMsgs total the discovery traffic
	// (announcements + retransmissions + acks) of the lossy run and of
	// the fault-free baseline at the same k.
	ControlMsgs  int64
	BaselineMsgs int64
	// DataRetries counts link-layer data retransmissions.
	DataRetries int64
}

// DeliveryRate is the fraction of baseline-deliverable pairs delivered.
func (c DegradeCell) DeliveryRate() float64 {
	if c.Pairs == 0 {
		return 0
	}
	return float64(c.Delivered) / float64(c.Pairs)
}

// Overhead is the discovery traffic relative to the fault-free baseline
// at the same locality (1.0 = no overhead).
func (c DegradeCell) Overhead() float64 {
	if c.BaselineMsgs == 0 {
		return 0
	}
	return float64(c.ControlMsgs) / float64(c.BaselineMsgs)
}

// DegradeResult is the loss × locality degradation sweep on the paper's
// structural graph families.
type DegradeResult struct {
	N         int
	Algorithm string
	Families  []string
	Cells     []DegradeCell
}

// degradeFamilies is the structural workload of the robustness sweep:
// the families the paper's lower-bound machinery is built from, at a
// size where discovery traffic is still cheap to baseline.
func degradeFamilies(n int) (names []string, graphs []*graph.Graph) {
	names = []string{"path", "cycle", "spider", "lollipop"}
	graphs = []*graph.Graph{
		gen.Path(n),
		gen.Cycle(n),
		gen.Spider(4, (n-1)/4),
		gen.Lollipop(n-n/3, n/3),
	}
	return names, graphs
}

// Degrade sweeps message-loss rate × locality k on the paper graph
// families, routing `pairs` sampled pairs per graph through the
// message-passing simulator, and reports delivery rate, discovery
// message overhead, and stretch — all relative to a fault-free baseline
// at the same k. Every run derives from seed, so the sweep is
// reproducible.
func Degrade(seed int64, n int, alg route.Algorithm, losses []float64, ks []int, pairs int) (*DegradeResult, error) {
	names, graphs := degradeFamilies(n)
	res := &DegradeResult{N: n, Algorithm: alg.Name, Families: names}

	type pair struct{ s, t graph.Vertex }
	for _, k := range ks {
		// Fault-free baseline at this k: route lengths per pair and the
		// perfect-channel discovery cost.
		rng := rand.New(rand.NewSource(seed))
		var baselineMsgs int64
		samples := make([][]pair, len(graphs))
		baseHops := make([][]int, len(graphs))
		for gi, g := range graphs {
			vs := g.Vertices()
			for i := 0; i < pairs; i++ {
				s := vs[rng.Intn(len(vs))]
				t := vs[rng.Intn(len(vs))]
				if s != t {
					samples[gi] = append(samples[gi], pair{s, t})
				}
			}
			nw := netsim.New(g, k, alg)
			nw.Start()
			if err := nw.Discover(); err != nil {
				nw.Stop()
				return nil, fmt.Errorf("baseline discovery (k=%d): %w", k, err)
			}
			baselineMsgs += nw.Stats().ControlMessages()
			baseHops[gi] = make([]int, len(samples[gi]))
			for pi, p := range samples[gi] {
				r, err := nw.Send(p.s, p.t)
				if err != nil {
					baseHops[gi][pi] = -1 // undeliverable even fault-free
					continue
				}
				baseHops[gi][pi] = len(r) - 1
			}
			nw.Stop()
		}

		for _, loss := range losses {
			cell := DegradeCell{Loss: loss, K: k, BaselineMsgs: baselineMsgs}
			var stretchSum float64
			for gi, g := range graphs {
				nw := netsim.NewFaulty(g, k, alg, fault.Plan{Seed: uint64(seed), Loss: loss})
				nw.Start()
				if err := nw.Discover(); err != nil {
					nw.Stop()
					return nil, fmt.Errorf("lossy discovery (k=%d, loss=%.2f): %w", k, loss, err)
				}
				for pi, p := range samples[gi] {
					if baseHops[gi][pi] < 0 {
						continue
					}
					cell.Pairs++
					r, err := nw.Send(p.s, p.t)
					if err != nil {
						continue
					}
					cell.Delivered++
					if baseHops[gi][pi] > 0 {
						stretchSum += float64(len(r)-1) / float64(baseHops[gi][pi])
					} else {
						stretchSum += 1
					}
				}
				st := nw.Stats()
				cell.ControlMsgs += st.ControlMessages()
				cell.DataRetries += st.DataRetries
				nw.Stop()
			}
			if cell.Delivered > 0 {
				cell.MeanStretch = stretchSum / float64(cell.Delivered)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Render prints the degradation sweep as a delivery/overhead table.
func (r *DegradeResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Degradation sweep — %s, n = %d, families: %v\n", r.Algorithm, r.N, r.Families)
	fmt.Fprintf(w, "%-4s %-6s %-12s %-9s %-10s %-10s %s\n",
		"k", "loss", "delivered", "rate", "stretch", "overhead", "data retries")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-4d %-6.2f %5d/%-6d %-9.3f %-10.3f %-10.3f %d\n",
			c.K, c.Loss, c.Delivered, c.Pairs, c.DeliveryRate(), c.MeanStretch, c.Overhead(), c.DataRetries)
	}
}
