package exper

import (
	"strings"
	"testing"

	"klocal/internal/route"
)

func TestDegradeSweep(t *testing.T) {
	alg := route.Algorithm3()
	n := 16
	k := alg.MinK(n)
	res, err := Degrade(7, n, alg, []float64{0, 0.2}, []int{k}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	perfect, lossy := res.Cells[0], res.Cells[1]

	if perfect.Pairs == 0 {
		t.Fatal("baseline delivered no pairs at k = T(n)")
	}
	if perfect.DeliveryRate() != 1 {
		t.Errorf("zero-loss delivery rate %.3f, want 1.0", perfect.DeliveryRate())
	}
	// Control totals are scheduling-dependent (first-arrival TTL races
	// perturb forward counts), so zero-loss overhead is ~1, not ==1.
	if ov := perfect.Overhead(); ov < 0.9 || ov > 1.1 {
		t.Errorf("zero-loss overhead %.3f, want ~1.0", ov)
	}
	if perfect.MeanStretch != 1 {
		t.Errorf("zero-loss stretch %.3f, want exactly 1.0", perfect.MeanStretch)
	}

	// Acceptance bar: at 20% loss with k >= T(n), every baseline pair is
	// still delivered, at a real retransmission cost.
	if lossy.DeliveryRate() != 1 {
		t.Errorf("20%% loss delivery rate %.3f, want 1.0 (delivered %d/%d)",
			lossy.DeliveryRate(), lossy.Delivered, lossy.Pairs)
	}
	if lossy.Overhead() <= 1 {
		t.Errorf("20%% loss overhead %.3f, want > 1 (retransmissions + acks)", lossy.Overhead())
	}
	if lossy.MeanStretch < 1 {
		t.Errorf("stretch %.3f < 1: lossy routes shorter than fault-free?", lossy.MeanStretch)
	}

	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Degradation sweep", "overhead", "0.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestDegradeIsReproducible(t *testing.T) {
	alg := route.Algorithm3()
	n := 12
	k := alg.MinK(n)
	a, err := Degrade(3, n, alg, []float64{0.15}, []int{k}, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Degrade(3, n, alg, []float64{0.15}, []int{k}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Delivery and injector decisions are seed-deterministic; control
	// totals can vary by scheduling (first-arrival races), so compare
	// the delivery-side numbers only.
	if a.Cells[0].Delivered != b.Cells[0].Delivered || a.Cells[0].Pairs != b.Cells[0].Pairs {
		t.Errorf("same seed, different delivery: %+v vs %+v", a.Cells[0], b.Cells[0])
	}
}
