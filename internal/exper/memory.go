package exper

import (
	"fmt"
	"io"
	"math/rand"

	"klocal/internal/flood"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
	"klocal/internal/stateful"
	"klocal/internal/tables"
)

// MemoryRow is one scheme in the locality-versus-memory landscape the
// paper's introduction and Section 6.3 frame: what a node must store,
// what the message must carry, and the dilation bought with it.
type MemoryRow struct {
	Scheme string
	// NodeBits is the largest per-node memory (tables, or the
	// k-neighbourhood a k-local algorithm consults).
	NodeBits int
	// MessageBits is the message-carried state (0 for the paper's
	// stateless model).
	MessageBits int
	// WorstDilation over the sampled pairs (MaxDilation-free: only
	// delivered pairs counted; all schemes here guarantee delivery).
	WorstDilation float64
	// Delivered / Pairs sampled.
	Delivered, Pairs int
	// AdversarialLabels reports whether the scheme survives the paper's
	// label-permutation adversary (interval routing does not: it renames
	// nodes).
	AdversarialLabels bool
}

// MemoryResult is the landscape at one network.
type MemoryResult struct {
	N, M int
	Rows []MemoryRow
	// FloodTransmissions is the flooding strawman's cost for one message
	// (for contrast with route lengths).
	FloodTransmissions int
}

// MemoryDilation measures the trade-off on a random connected network of
// size n, sampling `pairs` ordered pairs per scheme.
func MemoryDilation(rng *rand.Rand, n, pairs int) (*MemoryResult, error) {
	g := gen.RandomConnected(rng, n, 0.1)
	res := &MemoryResult{N: g.N(), M: g.M()}
	vs := g.Vertices()
	samplePairs := func(f func(s, t graph.Vertex) (hops int, ok bool)) (worst float64, delivered, total int) {
		for i := 0; i < pairs; i++ {
			s := vs[rng.Intn(len(vs))]
			t := vs[rng.Intn(len(vs))]
			if s == t {
				continue
			}
			total++
			hops, ok := f(s, t)
			if !ok {
				continue
			}
			delivered++
			if d := g.Dist(s, t); d > 0 {
				if dil := float64(hops) / float64(d); dil > worst {
					worst = dil
				}
			}
		}
		return worst, delivered, total
	}

	// Full tables.
	ft, err := tables.BuildFullTables(g)
	if err != nil {
		return nil, err
	}
	addAlgorithm := func(name string, alg route.Algorithm, k, nodeBits, msgBits int, advLabels bool) {
		f := alg.Bind(g, k)
		worst, delivered, total := samplePairs(func(s, t graph.Vertex) (int, bool) {
			r := runPair(g, f, alg, s, t)
			return r.Len(), r.Outcome == sim.Delivered
		})
		res.Rows = append(res.Rows, MemoryRow{
			Scheme:            name,
			NodeBits:          nodeBits,
			MessageBits:       msgBits,
			WorstDilation:     worst,
			Delivered:         delivered,
			Pairs:             total,
			AdversarialLabels: advLabels,
		})
	}
	addAlgorithm("FullTables", ft.Algorithm(), 0, ft.MaxBits(), 0, true)

	ti, err := tables.BuildTreeInterval(g, g.MinVertex())
	if err != nil {
		return nil, err
	}
	addAlgorithm("TreeInterval", ti.Algorithm(), 0, ti.MaxBits(), 0, false)

	kBits := func(k int) int {
		max := 0
		for _, u := range vs {
			if b := tables.KLocalBits(g, u, k); b > max {
				max = b
			}
		}
		return max
	}
	addAlgorithm("Algorithm1 (k=n/4)", route.Algorithm1(), route.MinK1(n), kBits(route.MinK1(n)), 0, true)
	addAlgorithm("Algorithm2 (k=n/3)", route.Algorithm2(), route.MinK2(n), kBits(route.MinK2(n)), 0, true)
	addAlgorithm("Algorithm3 (k=n/2)", route.Algorithm3(), route.MinK3(n), kBits(route.MinK3(n)), 0, true)

	// Stateful DFS: node memory none beyond adjacency, message Θ(n log n).
	peakBits := 0
	worst, delivered, total := samplePairs(func(s, t graph.Vertex) (int, bool) {
		r, err := stateful.DFSRoute(g, s, t)
		if err != nil {
			return 0, false
		}
		if r.PeakStateBits > peakBits {
			peakBits = r.PeakStateBits
		}
		return r.Len(), r.Delivered
	})
	res.Rows = append(res.Rows, MemoryRow{
		Scheme:            "DFS (k=1, stateful)",
		NodeBits:          0,
		MessageBits:       peakBits,
		WorstDilation:     worst,
		Delivered:         delivered,
		Pairs:             total,
		AdversarialLabels: true,
	})

	// Flooding strawman for contrast: flood to the vertex farthest from
	// vs[0] so the flood covers real ground before delivering.
	farthest, bestD := vs[0], -1
	for v, d := range g.BFS(vs[0]) {
		if d > bestD || (d == bestD && v < farthest) {
			farthest, bestD = v, d
		}
	}
	fl, err := flood.Flood(g, vs[0], farthest, 2*n)
	if err != nil {
		return nil, err
	}
	res.FloodTransmissions = fl.Transmissions
	return res, nil
}

// Render prints the landscape.
func (r *MemoryResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Memory vs dilation (Section 1 / 6.3 framing), n=%d m=%d\n", r.N, r.M)
	fmt.Fprintf(w, "%-22s %-12s %-12s %-12s %-12s %s\n",
		"scheme", "node bits", "msg bits", "worst dil", "delivered", "adversarial labels")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s %-12d %-12d %-12.3f %4d/%-7d %v\n",
			row.Scheme, row.NodeBits, row.MessageBits, row.WorstDilation,
			row.Delivered, row.Pairs, row.AdversarialLabels)
	}
	fmt.Fprintf(w, "flooding strawman: %d transmissions for a single delivery\n", r.FloodTransmissions)
}
