package exper

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/route"
)

func TestSweepParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep parity is slow")
	}
	n, graphs, pairs := 9, 1, 6
	seq := Sweep(rand.New(rand.NewSource(17)), n, graphs, pairs)
	par, err := SweepParallel(rand.New(rand.NewSource(17)), n, graphs, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Points) != len(seq.Points) {
		t.Fatalf("point count %d vs %d", len(par.Points), len(seq.Points))
	}
	for i, sp := range seq.Points {
		pp := par.Points[i]
		if pp.Algorithm != sp.Algorithm || pp.K != sp.K {
			t.Fatalf("point %d keys differ: %s/%d vs %s/%d", i, pp.Algorithm, pp.K, sp.Algorithm, sp.K)
		}
		if pp.Stats.Pairs != sp.Stats.Pairs || pp.Stats.Delivered != sp.Stats.Delivered {
			t.Fatalf("point %d (%s k=%d): pairs/delivered %d/%d vs %d/%d", i, sp.Algorithm, sp.K,
				pp.Stats.Pairs, pp.Stats.Delivered, sp.Stats.Pairs, sp.Stats.Delivered)
		}
		if pp.Stats.WorstDilation != sp.Stats.WorstDilation || pp.Stats.MeanDilation != sp.Stats.MeanDilation {
			t.Fatalf("point %d (%s k=%d): dilation %v/%v vs %v/%v", i, sp.Algorithm, sp.K,
				pp.Stats.WorstDilation, pp.Stats.MeanDilation, sp.Stats.WorstDilation, sp.Stats.MeanDilation)
		}
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	g := gen.Lollipop(10, 5)
	for _, alg := range []route.Algorithm{route.Algorithm1(), route.Algorithm2()} {
		k := alg.MinK(g.N())
		var seq PairStats
		evalAllPairs(alg, g, k, &seq)
		seq.finish()
		par, err := AllPairsParallel(alg, g, k, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Pairs != seq.Pairs || par.Delivered != seq.Delivered ||
			par.WorstDilation != seq.WorstDilation || par.MeanDilation != seq.MeanDilation {
			t.Fatalf("%s: parallel %+v vs sequential %+v", alg.Name, *par, seq)
		}
		// The worst witness is chosen first-max in request order, so the
		// parallel fold must pin the identical walk.
		if (par.Worst == nil) != (seq.Worst == nil) {
			t.Fatalf("%s: witness presence differs: %+v vs %+v", alg.Name, par.Worst, seq.Worst)
		}
		if par.Worst != nil {
			if par.Worst.S != seq.Worst.S || par.Worst.T != seq.Worst.T ||
				len(par.Worst.Walk) != len(seq.Worst.Walk) {
				t.Fatalf("%s: witness differs: %+v vs %+v", alg.Name, par.Worst, seq.Worst)
			}
		}
	}
}
