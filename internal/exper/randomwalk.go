package exper

import (
	"fmt"
	"io"
	"math/rand"

	"klocal/internal/gen"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// RandomWalkPoint is one size in the randomized-baseline series.
type RandomWalkPoint struct {
	N         int
	K         int
	MeanHops  float64
	RatioToN2 float64
	// Deterministic is the matching deterministic bound 2n−3k−1 on the
	// same instance, for contrast.
	Deterministic int
}

// RandomWalkResult reproduces the randomized-routing context of
// Section 3 (Chen et al.): a memoryless random walk delivers in
// expectation but its expected route length grows quadratically, whereas
// the deterministic k-local algorithms are linear on the same adversary
// instances.
type RandomWalkResult struct {
	Trials int
	Points []RandomWalkPoint
}

// RandomWalkQuadratic measures the mean random-walk route length from
// end to end of a path of n vertices (hitting time ~ n²), next to the
// deterministic Theorem 4 bound at k = ⌈n/4⌉.
func RandomWalkQuadratic(rng *rand.Rand, sizes []int, trials int) *RandomWalkResult {
	res := &RandomWalkResult{Trials: trials}
	for _, n := range sizes {
		g := gen.Path(n)
		k := route.MinK1(n)
		total := 0
		for i := 0; i < trials; i++ {
			alg := route.RandomWalk(rng.Int63())
			r := sim.Run(g, sim.Func(alg.Bind(g, 1)), 0, gen.Path(n).Vertices()[n-1],
				sim.Options{MaxSteps: 64 * n * n})
			total += r.Len()
		}
		mean := float64(total) / float64(trials)
		res.Points = append(res.Points, RandomWalkPoint{
			N:             n,
			K:             k,
			MeanHops:      mean,
			RatioToN2:     mean / float64(n*n),
			Deterministic: 2*n - 3*k - 1,
		})
	}
	return res
}

// Render prints the series.
func (r *RandomWalkResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Random walk baseline (Section 3, Chen et al.): mean end-to-end hops on P_n over %d trials\n", r.Trials)
	fmt.Fprintf(w, "%-6s %-12s %-12s %s\n", "n", "mean hops", "hops/n²", "deterministic 2n-3k-1 at k=n/4")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-6d %-12.1f %-12.3f %d\n", p.N, p.MeanHops, p.RatioToN2, p.Deterministic)
	}
}
