package exper

import (
	"fmt"
	"io"
	"math/rand"

	"klocal/internal/adversary"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// Table1Row is one cell of the paper's Table 1: an awareness combination,
// its threshold T(n), the positive result (the matching algorithm
// delivers everywhere at k = T(n)) and the negative result (every
// admissible strategy is defeated at k = T(n)−1).
type Table1Row struct {
	Mode      string // e.g. "predecessor-aware / origin-aware"
	Threshold string // e.g. "⌈n/4⌉"
	N         int
	K         int // T(n) used for the positive side

	// Positive side.
	Algorithm string
	Positive  PairStats

	// Negative side: how many of the admissible strategies were defeated
	// at k = T(n)−1 (all of them, if the theorem replays).
	StrategiesTotal    int
	StrategiesDefeated int
}

// Table1Result reproduces Table 1 at a given size.
type Table1Result struct {
	N    int
	Rows []Table1Row
}

// Table1 regenerates the main result at size n (n ≥ 11 so every
// counterexample family is buildable). The positive side exercises the
// matching algorithm on the structured+random workload; the negative side
// replays the Theorem 1–3 strategy enumerations one unit below the
// threshold.
func Table1(rng *rand.Rand, n, randomGraphs int) (*Table1Result, error) {
	if n < 11 {
		return nil, fmt.Errorf("exper: Table1 needs n >= 11, got %d", n)
	}
	res := &Table1Result{N: n}
	graphs := workloadGraphs(rng, n, randomGraphs)

	positive := func(alg route.Algorithm, k int) PairStats {
		var stats PairStats
		for _, g := range graphs {
			evalAllPairs(alg, g, k, &stats)
		}
		stats.finish()
		return stats
	}

	// Predecessor-aware, origin-aware: T(n) = ⌈n/4⌉ (Theorems 1 and 5).
	t1, err := adversary.ReplayTheorem1(n)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Mode:               "pred-aware / origin-aware",
		Threshold:          "n/4",
		N:                  n,
		K:                  route.MinK1(n),
		Algorithm:          "Algorithm1",
		Positive:           positive(route.Algorithm1(), route.MinK1(n)),
		StrategiesTotal:    len(t1.Strategies),
		StrategiesDefeated: countDefeated(t1.Outcomes),
	})

	// Predecessor-aware, origin-oblivious: T(n) = ⌈n/3⌉ (Theorems 2, 7).
	t2, err := adversary.ReplayTheorem2(n)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{
		Mode:               "pred-aware / origin-oblivious",
		Threshold:          "n/3",
		N:                  n,
		K:                  route.MinK2(n),
		Algorithm:          "Algorithm2",
		Positive:           positive(route.Algorithm2(), route.MinK2(n)),
		StrategiesTotal:    len(t2.Strategies),
		StrategiesDefeated: countDefeated(t2.Outcomes),
	})

	// Predecessor-oblivious rows: T(n) = ⌊n/2⌋ (Theorems 3, 8; Cor 2, 5).
	t3, err := adversary.ReplayTheorem3(n)
	if err != nil {
		return nil, err
	}
	t3Defeated := 0
	for d := 0; d < 2; d++ {
		for j := 0; j < 2; j++ {
			if t3.Outcomes[d][j] != sim.Delivered {
				t3Defeated++
				break
			}
		}
	}
	for _, mode := range []string{"pred-oblivious / origin-aware", "pred-oblivious / origin-oblivious"} {
		res.Rows = append(res.Rows, Table1Row{
			Mode:               mode,
			Threshold:          "n/2",
			N:                  n,
			K:                  route.MinK3(n),
			Algorithm:          "Algorithm3",
			Positive:           positive(route.Algorithm3(), route.MinK3(n)),
			StrategiesTotal:    2,
			StrategiesDefeated: t3Defeated,
		})
	}
	return res, nil
}

func countDefeated(outcomes [][]sim.Outcome) int {
	defeated := 0
	for _, row := range outcomes {
		for _, o := range row {
			if o != sim.Delivered {
				defeated++
				break
			}
		}
	}
	return defeated
}

// Render prints the table.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1 — locality thresholds T(n), n = %d\n", r.N)
	fmt.Fprintf(w, "%-36s %-5s %-4s %-12s %-12s %-10s %s\n",
		"mode", "T(n)", "k", "algorithm", "delivered", "worst dil", "defeated at k=T(n)-1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-36s %-5s %-4d %-12s %5d/%-6d %-10.3f %d/%d strategies\n",
			row.Mode, row.Threshold, row.K, row.Algorithm,
			row.Positive.Delivered, row.Positive.Pairs, row.Positive.WorstDilation,
			row.StrategiesDefeated, row.StrategiesTotal)
	}
}
