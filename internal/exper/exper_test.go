package exper

import (
	"math/rand"
	"strings"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

func TestTable1ReproducesThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	res, err := Table1(rng, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Positive.AllDelivered() {
			t.Errorf("%s: positive side delivered %d/%d", row.Mode, row.Positive.Delivered, row.Positive.Pairs)
		}
		if row.StrategiesDefeated != row.StrategiesTotal {
			t.Errorf("%s: only %d/%d strategies defeated below threshold",
				row.Mode, row.StrategiesDefeated, row.StrategiesTotal)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Table 1", "pred-aware / origin-aware", "n/2", "Algorithm3"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1TooSmall(t *testing.T) {
	if _, err := Table1(rand.New(rand.NewSource(1)), 8, 1); err == nil {
		t.Error("expected error for n < 11")
	}
}

func TestTable2DilationOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	res, err := Table2(rng, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.WorkloadWorst >= row.PaperUpperBound+1e-9 {
			t.Errorf("%s (k=%d): workload dilation %v exceeds the paper bound %v",
				row.Algorithm, row.K, row.WorkloadWorst, row.PaperUpperBound)
		}
		if row.AdversaryDilation < 0 {
			t.Errorf("%s: adversary instance not delivered", row.Algorithm)
		}
	}
	// The adversary dilation of Algorithm 1 meets the exact lower bound.
	if r := res.Rows[0]; r.AdversaryDilation < r.LowerBoundFormula-1e-9 {
		t.Errorf("Algorithm1 adversary dilation %v below bound %v", r.AdversaryDilation, r.LowerBoundFormula)
	}
	// Algorithm 3 is shortest-path: workload worst dilation is 1.
	if r := res.Rows[3]; r.WorkloadWorst > 1+1e-9 {
		t.Errorf("Algorithm3 workload dilation %v > 1", r.WorkloadWorst)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Table 2") {
		t.Error("render missing header")
	}
}

func TestTable3AndTable4RenderAndDefeat(t *testing.T) {
	t3, err := Table3(19)
	if err != nil {
		t.Fatal(err)
	}
	if !t3.Replay.EveryStrategyDefeated() {
		t.Error("Table 3: some strategy survived")
	}
	var sb strings.Builder
	t3.Render(&sb)
	if c := strings.Count(sb.String(), "FAILS"); c != 6 {
		t.Errorf("Table 3 should show exactly 6 failures (one per strategy), got %d:\n%s", c, sb.String())
	}

	t4, err := Table4(17)
	if err != nil {
		t.Fatal(err)
	}
	if !t4.Replay.EveryStrategyDefeated() {
		t.Error("Table 4: some strategy survived")
	}
	sb.Reset()
	t4.Render(&sb)
	if c := strings.Count(sb.String(), "FAILS"); c != 6 {
		t.Errorf("Table 4 should show exactly 6 failures, got %d:\n%s", c, sb.String())
	}
}

func TestFig7Experiment(t *testing.T) {
	res, err := Fig7(12, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == sim.Delivered {
		t.Error("the right-hand rule should fail on the Figure 7 cycle")
	}
	if res.SawT {
		t.Error("no visited node should have t in its k-neighbourhood")
	}
	if !res.TreeDelivered {
		t.Error("the right-hand rule should deliver on the companion tree")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Error("render missing header")
	}
}

func TestFig13Series(t *testing.T) {
	res, err := Fig13([]int{4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.RouteLen != p.PaperLen {
			t.Errorf("n=%d k=%d: route %d != paper %d", p.N, p.K, p.RouteLen, p.PaperLen)
		}
		if p.Dist != p.K+3 {
			t.Errorf("n=%d: dist %d != k+3", p.N, p.Dist)
		}
	}
	// Dilation increases toward 7 along the series.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Dilation <= res.Points[i-1].Dilation {
			t.Errorf("dilation not increasing toward 7: %v then %v",
				res.Points[i-1].Dilation, res.Points[i].Dilation)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 13") {
		t.Error("render missing header")
	}
}

func TestFig17Series(t *testing.T) {
	res, err := Fig17([]int{8, 10, 12})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Points {
		if p.RouteLen != p.ExpectLen {
			t.Errorf("n=%d k=%d: route %d != expected %d", p.N, p.K, p.RouteLen, p.ExpectLen)
		}
		if p.Dist != p.K+1 {
			t.Errorf("n=%d: dist %d != k+1", p.N, p.Dist)
		}
		a1 := res.Alg1Points[i]
		if a1.RouteLen != a1.PaperLen {
			t.Errorf("n=%d: Algorithm1 route %d != n+2k = %d", p.N, a1.RouteLen, a1.PaperLen)
		}
		if p.RouteLen >= a1.RouteLen {
			t.Errorf("n=%d: 1B (%d) should beat Algorithm 1 (%d)", p.N, p.RouteLen, a1.RouteLen)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Figure 17") {
		t.Error("render missing header")
	}
}

func TestSweepShowsThresholdBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	res := Sweep(rng, 13, 2, 12)
	rate := func(alg string, k int) (delivered, pairs int) {
		for _, p := range res.Points {
			if p.Algorithm == alg && p.K == k {
				return p.Stats.Delivered, p.Stats.Pairs
			}
		}
		t.Fatalf("missing sweep point %s k=%d", alg, k)
		return 0, 0
	}
	// At and above threshold every algorithm delivers everything sampled.
	checks := []struct {
		alg string
		k   int
	}{
		{"Algorithm1", 4}, {"Algorithm1B", 4}, {"Algorithm2", 5}, {"Algorithm3", 6},
	}
	for _, c := range checks {
		d, p := rate(c.alg, c.k)
		if d != p {
			t.Errorf("%s at threshold k=%d: delivered %d/%d", c.alg, c.k, d, p)
		}
	}
	// At k=1 the workload defeats the aware algorithms somewhere.
	d, p := rate("Algorithm1", 1)
	if d == p {
		t.Errorf("Algorithm1 at k=1 should fail somewhere (delivered %d/%d)", d, p)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Locality sweep") {
		t.Error("render missing header")
	}
}

func TestPairStatsAggregation(t *testing.T) {
	g := gen.Path(4)
	var ps PairStats
	ps.add(g, &sim.Result{Outcome: sim.Looped, Dist: 3})
	ps.add(g, &sim.Result{Outcome: sim.Delivered, Dist: 0})
	ps.finish()
	if ps.Pairs != 2 || ps.Delivered != 1 || ps.AllDelivered() {
		t.Errorf("stats = %+v", ps)
	}
	if ps.MeanDilation != 0 || ps.WorstDilation != 0 {
		t.Errorf("zero-distance deliveries must not contribute dilation: %+v", ps)
	}
	if ps.Worst != nil {
		t.Errorf("no dilation-bearing pair, want nil witness, got %+v", ps.Worst)
	}

	// A delivered detour becomes the worst witness and re-validates.
	ps.add(g, &sim.Result{
		Outcome: sim.Delivered, Dist: 1,
		Route: []graph.Vertex{0, 1, 2, 1},
	})
	if ps.WorstDilation != 3 || ps.Worst == nil {
		t.Fatalf("detour not witnessed: %+v", ps)
	}
	if ps.Worst.S != 0 || ps.Worst.T != 1 {
		t.Errorf("witness endpoints %d -> %d, want 0 -> 1", ps.Worst.S, ps.Worst.T)
	}
	if err := ps.Worst.Check(3); err != nil {
		t.Errorf("witness fails its own bound: %v", err)
	}
	if err := ps.Worst.Check(2.9); err == nil {
		t.Error("witness passes a bound it exceeds")
	}
}

func TestFig1Taxonomy(t *testing.T) {
	res := Fig1()
	if len(res.Components) != 4 {
		t.Fatalf("got %d components, want 4", len(res.Components))
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 1", "independent, constrained active",
		"independent, passive", "multi-rooted, constrained active", "multi-rooted, active"} {
		if !strings.Contains(out, want) {
			t.Errorf("taxonomy missing %q:\n%s", want, out)
		}
	}
}
