package exper

import (
	"fmt"

	"klocal/internal/sim"
)

// The Check methods turn each reproduced table or figure into a
// verification gate: they compare the measured numbers against what the
// paper's theorems promise and return a descriptive error on the first
// mismatch. cmd/tables calls them after rendering, so a regenerated
// artifact that silently drifted from the theory fails the run instead
// of producing a wrong table.

// dilationSlack absorbs float rounding in dilation comparisons.
const dilationSlack = 1e-9

// Check verifies Table 1's two-sided claim at every row: the matching
// algorithm delivered every workload pair at k = T(n), and every
// admissible adversary strategy was defeated at k = T(n)−1.
func (r *Table1Result) Check() error {
	for _, row := range r.Rows {
		if row.Positive.Delivered != row.Positive.Pairs {
			return fmt.Errorf("Table 1 %s: %s delivered %d/%d pairs at k=%d",
				row.Mode, row.Algorithm, row.Positive.Delivered, row.Positive.Pairs, row.K)
		}
		if row.StrategiesDefeated != row.StrategiesTotal {
			return fmt.Errorf("Table 1 %s: only %d/%d strategies defeated at k=%d-1",
				row.Mode, row.StrategiesDefeated, row.StrategiesTotal, row.K)
		}
	}
	return nil
}

// Check verifies Table 2's dilation sandwich at every row: the measured
// adversary dilation witnesses the lower bound S(k), and the walks
// behind both measured columns re-validate against the paper's upper
// bound through verify.CheckDilation — hop counts and shortest-path
// distances recomputed from the witnessed walks, not the cached floats.
func (r *Table2Result) Check() error {
	for _, row := range r.Rows {
		if row.AdversaryDilation < 0 {
			return fmt.Errorf("Table 2 %s/%s: adversary instance not delivered", row.Regime, row.Algorithm)
		}
		if row.AdversaryDilation < row.LowerBoundFormula-dilationSlack {
			return fmt.Errorf("Table 2 %s/%s: adversary dilation %.3f below the S(k) lower bound %.3f",
				row.Regime, row.Algorithm, row.AdversaryDilation, row.LowerBoundFormula)
		}
		if w := row.AdversaryWitness; w != nil {
			if err := w.Check(row.PaperUpperBound); err != nil {
				return fmt.Errorf("Table 2 %s/%s: adversary walk: %w", row.Regime, row.Algorithm, err)
			}
		}
		if w := row.WorkloadWitness; w != nil {
			if err := w.Check(row.PaperUpperBound); err != nil {
				return fmt.Errorf("Table 2 %s/%s: workload worst walk: %w", row.Regime, row.Algorithm, err)
			}
		} else if row.WorkloadWorst > row.PaperUpperBound+dilationSlack {
			return fmt.Errorf("Table 2 %s/%s: workload worst dilation %.3f above the paper's upper bound %.0f",
				row.Regime, row.Algorithm, row.WorkloadWorst, row.PaperUpperBound)
		}
	}
	return nil
}

// Check verifies Table 3: every Theorem 1 strategy loses on at least
// one family instance.
func (r *Table3Result) Check() error {
	return checkStrategyMatrix("Table 3", r.Replay.Outcomes)
}

// Check verifies Table 4: every Theorem 2 strategy loses on at least
// one family instance.
func (r *Table4Result) Check() error {
	return checkStrategyMatrix("Table 4", r.Replay.Outcomes)
}

func checkStrategyMatrix(name string, outcomes [][]sim.Outcome) error {
	for i, row := range outcomes {
		defeated := false
		for _, o := range row {
			if o != sim.Delivered {
				defeated = true
				break
			}
		}
		if !defeated {
			return fmt.Errorf("%s: strategy %d delivered on every instance; the theorem requires a defeat", name, i+1)
		}
	}
	return nil
}

// Check verifies Figure 7's contrast: the right-hand rule delivers on
// the tree, circulates without delivering on the cycle, and no visited
// node ever has t within its k-neighbourhood.
func (r *Fig7Result) Check() error {
	if !r.TreeDelivered {
		return fmt.Errorf("Figure 7: right-hand rule failed on the spider tree")
	}
	if r.Outcome == sim.Delivered {
		return fmt.Errorf("Figure 7: right-hand rule delivered on the cycle; the construction requires a livelock")
	}
	if r.SawT {
		return fmt.Errorf("Figure 7: a visited node saw t within distance k; the construction requires blindness")
	}
	return nil
}

// Check verifies Figure 13: the measured route length equals the exact
// prediction 2n−k−3 at every point.
func (r *Fig13Result) Check() error {
	for _, p := range r.Points {
		if p.RouteLen != p.ExpectLen {
			return fmt.Errorf("Figure 13 n=%d k=%d: route length %d, expected %d", p.N, p.K, p.RouteLen, p.ExpectLen)
		}
	}
	return nil
}

// Check verifies Figure 17: both series hit their exact predictions —
// n+2k−6−2δ* for Algorithm 1B, n+2k for plain Algorithm 1.
func (r *Fig17Result) Check() error {
	for _, p := range r.Points {
		if p.RouteLen != p.ExpectLen {
			return fmt.Errorf("Figure 17 n=%d k=%d: Algorithm 1B route length %d, expected %d", p.N, p.K, p.RouteLen, p.ExpectLen)
		}
	}
	for _, p := range r.Alg1Points {
		if p.RouteLen != p.ExpectLen {
			return fmt.Errorf("Figure 17 n=%d k=%d: Algorithm 1 route length %d, expected %d", p.N, p.K, p.RouteLen, p.ExpectLen)
		}
	}
	return nil
}
