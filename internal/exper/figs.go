package exper

import (
	"fmt"
	"io"

	"klocal/internal/gen"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// Fig7Result reproduces Figure 7: the naive right-hand rule succeeds on
// trees but circulates forever on a long cycle without ever seeing t.
type Fig7Result struct {
	CycleLen, TailLen, K int
	Outcome              sim.Outcome
	// SawT reports whether any visited node had t within its
	// k-neighbourhood (the paper's claim is that none does).
	SawT bool
	// TreeDelivered is the companion positive claim: the same rule
	// delivers on a comparable spider tree.
	TreeDelivered bool
}

// Fig7 runs the construction at locality k with a cycle longer than 2k
// and a tail longer than k.
func Fig7(cycleLen, tailLen, k int) (*Fig7Result, error) {
	f, err := gen.NewFig7(cycleLen, tailLen)
	if err != nil {
		return nil, err
	}
	alg := route.TreeRightHand()
	res := runPair(f.G, alg.Bind(f.G, k), alg, f.S, f.T)
	out := &Fig7Result{CycleLen: cycleLen, TailLen: tailLen, K: k, Outcome: res.Outcome}
	for _, v := range res.Route {
		if f.G.Dist(v, f.T) <= k {
			out.SawT = true
		}
	}
	tree := gen.Spider(3, (cycleLen+tailLen)/3)
	treeOK := true
	tf := alg.Bind(tree, k)
	for _, s := range tree.Vertices() {
		for _, t := range tree.Vertices() {
			if s == t {
				continue
			}
			if runPair(tree, tf, alg, s, t).Outcome != sim.Delivered {
				treeOK = false
			}
		}
	}
	out.TreeDelivered = treeOK
	return out, nil
}

// Render prints the figure reproduction.
func (r *Fig7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 7 — right-hand rule, cycle %d + tail %d, k = %d\n", r.CycleLen, r.TailLen, r.K)
	fmt.Fprintf(w, "  on the tree:  delivered everywhere = %v\n", r.TreeDelivered)
	fmt.Fprintf(w, "  on the cycle: outcome = %v, some visited node saw t = %v\n", r.Outcome, r.SawT)
}

// FigSeriesPoint is one (n, k) measurement of an extremal construction.
type FigSeriesPoint struct {
	N, K       int
	RouteLen   int
	PaperLen   int
	ExpectLen  int // this implementation's exact prediction
	Dist       int
	Dilation   float64
	PaperLimit float64 // the dilation the paper's formula gives
}

// Fig13Result is the route-length series of Figure 13: Algorithm 1 on the
// cycle-with-pendant family at k = n/4, where the paper derives route
// length exactly 2n−k−3 against dist k+3 (dilation → 7).
type Fig13Result struct {
	Points []FigSeriesPoint
}

// Fig13 measures the series for the given k values (n = 4k).
func Fig13(ks []int) (*Fig13Result, error) {
	res := &Fig13Result{}
	alg := route.Algorithm1()
	for _, k := range ks {
		n := 4 * k
		f, err := gen.NewFig13(n, k)
		if err != nil {
			return nil, err
		}
		r := runPair(f.G, alg.Bind(f.G, k), alg, f.S, f.T)
		if r.Outcome != sim.Delivered {
			return nil, fmt.Errorf("exper: Fig13 n=%d k=%d not delivered: %v", n, k, r.Outcome)
		}
		res.Points = append(res.Points, FigSeriesPoint{
			N: n, K: k,
			RouteLen:   r.Len(),
			PaperLen:   f.ExpectedRouteLen(),
			ExpectLen:  f.ExpectedRouteLen(),
			Dist:       r.Dist,
			Dilation:   r.Dilation(),
			PaperLimit: 7 - 96/float64(n+12),
		})
	}
	return res, nil
}

// Render prints the series.
func (r *Fig13Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 13 — Algorithm 1 worst case (route 2n−k−3, dist k+3, dilation → 7)")
	fmt.Fprintf(w, "%-6s %-6s %-10s %-10s %-6s %-10s %s\n", "n", "k", "route", "2n-k-3", "dist", "dilation", "7-96/(n+12)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-6d %-6d %-10d %-10d %-6d %-10.4f %.4f\n",
			p.N, p.K, p.RouteLen, p.PaperLen, p.Dist, p.Dilation, p.PaperLimit)
	}
}

// Fig17Result is the route-length series of Figure 17: Algorithm 1B on
// the dormant-edge construction. The paper derives n+2k−6; under this
// repository's dormancy rule the pre-emption provably fires δ* hops
// early, giving exactly n+2k−6−2δ* (see gen.Fig17 and DESIGN.md), still
// approaching dilation 6 as δ*/k → 0.
type Fig17Result struct {
	Points []FigSeriesPoint
	// Alg1Points is the companion series for plain Algorithm 1 (paper:
	// n+2k, the Lemma 14 gap).
	Alg1Points []FigSeriesPoint
}

// Fig17 measures the series for the given k values (n = 4k).
func Fig17(ks []int) (*Fig17Result, error) {
	res := &Fig17Result{}
	alg1b := route.Algorithm1B()
	alg1 := route.Algorithm1()
	for _, k := range ks {
		n := 4 * k
		f, err := gen.NewFig17(n, k)
		if err != nil {
			return nil, err
		}
		r := runPair(f.G, alg1b.Bind(f.G, k), alg1b, f.S, f.T)
		if r.Outcome != sim.Delivered {
			return nil, fmt.Errorf("exper: Fig17 n=%d k=%d not delivered: %v", n, k, r.Outcome)
		}
		res.Points = append(res.Points, FigSeriesPoint{
			N: n, K: k,
			RouteLen:   r.Len(),
			PaperLen:   f.PaperRouteLen(),
			ExpectLen:  f.ExpectedRouteLen(),
			Dist:       r.Dist,
			Dilation:   r.Dilation(),
			PaperLimit: 6 - 12/float64(k+1),
		})
		r1 := runPair(f.G, alg1.Bind(f.G, k), alg1, f.S, f.T)
		res.Alg1Points = append(res.Alg1Points, FigSeriesPoint{
			N: n, K: k,
			RouteLen:  r1.Len(),
			PaperLen:  f.Algorithm1RouteLen(),
			ExpectLen: f.Algorithm1RouteLen(),
			Dist:      r1.Dist,
			Dilation:  r1.Dilation(),
		})
	}
	return res, nil
}

// Render prints both series.
func (r *Fig17Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 17 — Algorithm 1B worst case (paper route n+2k−6; here n+2k−6−2δ*, dist k+1)")
	fmt.Fprintf(w, "%-6s %-6s %-10s %-12s %-12s %-6s %-10s %s\n",
		"n", "k", "route", "n+2k-6", "n+2k-6-2δ*", "dist", "dilation", "6-12/(k+1)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-6d %-6d %-10d %-12d %-12d %-6d %-10.4f %.4f\n",
			p.N, p.K, p.RouteLen, p.PaperLen, p.ExpectLen, p.Dist, p.Dilation, p.PaperLimit)
	}
	fmt.Fprintln(w, "  companion: plain Algorithm 1 on the same instances (paper route n+2k)")
	for _, p := range r.Alg1Points {
		fmt.Fprintf(w, "  n=%-5d k=%-4d route=%-6d n+2k=%-6d dilation=%.4f\n",
			p.N, p.K, p.RouteLen, p.PaperLen, p.Dilation)
	}
}
