package exper

import (
	"math/rand"
	"strings"
	"testing"
)

func TestMemoryDilationLandscape(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	res, err := MemoryDilation(rng, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	byName := make(map[string]MemoryRow, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Scheme] = row
		if row.Delivered != row.Pairs {
			t.Errorf("%s: delivered %d/%d — every scheme here guarantees delivery",
				row.Scheme, row.Delivered, row.Pairs)
		}
	}
	// Full tables: most node memory, dilation 1.
	ft := byName["FullTables"]
	if ft.WorstDilation > 1+1e-9 {
		t.Errorf("full tables dilation %v > 1", ft.WorstDilation)
	}
	// Interval routing: least node memory among table schemes, but it
	// renames nodes (fails the adversarial-label model).
	ti := byName["TreeInterval"]
	if ti.NodeBits >= ft.NodeBits {
		t.Errorf("interval routing (%d bits) should be cheaper than full tables (%d)", ti.NodeBits, ft.NodeBits)
	}
	if ti.AdversarialLabels {
		t.Error("interval routing renames nodes; it must be flagged")
	}
	// k-local memory shrinks with the awareness the algorithm buys:
	// k=n/4 (Algorithm 1) consults a smaller chart than k=n/2.
	a1 := byName["Algorithm1 (k=n/4)"]
	a3 := byName["Algorithm3 (k=n/2)"]
	if a1.NodeBits > a3.NodeBits {
		t.Errorf("G_{n/4} (%d bits) should not exceed G_{n/2} (%d bits)", a1.NodeBits, a3.NodeBits)
	}
	// Stateful DFS: zero node bits, nonzero message bits.
	dfs := byName["DFS (k=1, stateful)"]
	if dfs.NodeBits != 0 || dfs.MessageBits == 0 {
		t.Errorf("DFS row misaccounted: %+v", dfs)
	}
	// Flooding costs far more transmissions than any route is long.
	if res.FloodTransmissions <= res.N {
		t.Errorf("flooding transmissions %d suspiciously low", res.FloodTransmissions)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Memory vs dilation") {
		t.Error("render missing header")
	}
}

func TestRandomWalkQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	res := RandomWalkQuadratic(rng, []int{8, 16, 32}, 30)
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for i, p := range res.Points {
		if p.MeanHops < float64(p.N-1) {
			t.Errorf("n=%d: mean %v below the path length", p.N, p.MeanHops)
		}
		// Quadratic growth: the n²-normalized ratio stays within loose
		// constant bounds while the raw mean quadruples-ish per doubling.
		if p.RatioToN2 < 0.2 || p.RatioToN2 > 5 {
			t.Errorf("n=%d: hops/n² = %v outside [0.2, 5]", p.N, p.RatioToN2)
		}
		if i > 0 && p.MeanHops < 2*res.Points[i-1].MeanHops {
			t.Errorf("n=%d: mean hops %v not clearly superlinear vs %v",
				p.N, p.MeanHops, res.Points[i-1].MeanHops)
		}
		// The deterministic algorithms are linear on the same family.
		if float64(p.Deterministic) > p.MeanHops && p.N >= 16 {
			t.Errorf("n=%d: deterministic bound %d should be far below the walk's %v",
				p.N, p.Deterministic, p.MeanHops)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Random walk baseline") {
		t.Error("render missing header")
	}
}
