package exper

import (
	"fmt"
	"io"

	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// Fig1Result reproduces Figure 1's taxonomy of local components: a
// concrete neighbourhood whose four components exhibit every
// classification the paper defines (independent active, independent
// passive, constrained active with a constraint vertex, and a
// multi-rooted unconstrained active component).
type Fig1Result struct {
	K          int
	Center     graph.Vertex
	Components []*nbhd.Component
}

// Fig1 builds the demonstration instance (a small replica of the
// figure's shapes at k = 3) and classifies it.
func Fig1() *Fig1Result {
	b := graph.NewBuilder()
	b.AddPath(0, 1, 2, 3)                     // B1: independent active
	b.AddPath(0, 10, 11)                      // B2: independent passive
	b.AddEdge(0, 20).AddEdge(0, 21)           // B3: two roots ...
	b.AddEdge(20, 22).AddEdge(21, 22)         //     ... funnelled through w=22
	b.AddEdge(22, 23)                         //     reaching the horizon
	b.AddEdge(0, 30).AddEdge(0, 31)           // B4: two roots ...
	b.AddPath(30, 32, 33).AddPath(31, 34, 35) //     ... with disjoint deep branches
	b.AddEdge(30, 31)                         //     tied into one component
	g := b.Build()
	nb := nbhd.Extract(g, 0, 3)
	return &Fig1Result{K: 3, Center: 0, Components: nb.Components()}
}

// Render prints the taxonomy in the figure's vocabulary.
func (r *Fig1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 — local component taxonomy at G_%d(%d)\n", r.K, r.Center)
	for i, c := range r.Components {
		kind := "passive"
		if c.Active {
			kind = "active"
			if c.Constrained {
				kind = "constrained active"
			}
		}
		indep := "multi-rooted"
		if c.Independent {
			indep = "independent"
		}
		fmt.Fprintf(w, "  B%d: roots %v — %s, %s", i+1, c.Roots, indep, kind)
		if len(c.ConstraintVertices) > 0 {
			fmt.Fprintf(w, ", constraint vertices %v", c.ConstraintVertices)
		}
		fmt.Fprintln(w)
	}
}
