package exper

import (
	"fmt"
	"io"
	"math/rand"

	"klocal/internal/route"
)

// SweepPoint is one (algorithm, k) measurement of the locality sweep.
type SweepPoint struct {
	Algorithm string
	K         int
	Stats     PairStats
}

// SweepResult measures delivery rate and dilation as the locality
// parameter k varies across its whole range — the empirical picture of
// the feasibility thresholds: each algorithm's delivery rate jumps to
// 100% exactly at its T(n).
type SweepResult struct {
	N      int
	Points []SweepPoint
}

// Sweep runs every algorithm at every k in [1, ⌈n/2⌉] over the standard
// workload, sampling `pairs` origin-destination pairs per graph.
func Sweep(rng *rand.Rand, n, randomGraphs, pairs int) *SweepResult {
	res := &SweepResult{N: n}
	graphs := workloadGraphs(rng, n, randomGraphs)
	algs := []route.Algorithm{
		route.Algorithm1(),
		route.Algorithm1B(),
		route.Algorithm2(),
		route.Algorithm3(),
	}
	for _, alg := range algs {
		for k := 1; k <= (n+1)/2; k++ {
			var stats PairStats
			for _, g := range graphs {
				evalSampledPairs(rng, alg, g, k, pairs, &stats)
			}
			stats.finish()
			res.Points = append(res.Points, SweepPoint{Algorithm: alg.Name, K: k, Stats: stats})
		}
	}
	return res
}

// Render prints the sweep with the thresholds marked.
func (r *SweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Locality sweep — delivery rate and dilation vs k, n = %d\n", r.N)
	fmt.Fprintf(w, "(thresholds: Algorithm1/1B k>=%d, Algorithm2 k>=%d, Algorithm3 k>=%d)\n",
		route.MinK1(r.N), route.MinK2(r.N), route.MinK3(r.N))
	fmt.Fprintf(w, "%-14s %-4s %-12s %-12s %s\n", "algorithm", "k", "delivered", "worst dil", "mean dil")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-14s %-4d %5d/%-6d %-12.3f %.3f\n",
			p.Algorithm, p.K, p.Stats.Delivered, p.Stats.Pairs, p.Stats.WorstDilation, p.Stats.MeanDilation)
	}
}
