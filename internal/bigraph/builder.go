package bigraph

import (
	"fmt"
	"sort"
)

// Builder assembles a dense CSR in two streaming passes: CountEdge every
// edge once to accumulate degrees, StartFill to carve the arrays, then
// AddEdge the same edges again to place them. Finish sorts each row,
// drops duplicate edges, and returns the validated CSR. Self-loops and
// negative endpoints are ignored in both passes (the model is simple
// undirected graphs).
//
// Memory is bounded by the output: one int64 per vertex of degree
// scratch plus the final offsets/targets arrays — no maps, no per-vertex
// allocations — which is what lets the edge-list loader stream files far
// larger than a map-based graph could hold.
type Builder struct {
	deg     []int64
	offsets []int64
	targets []int32
	fill    []int64
	filling bool
	err     error
}

// NewBuilder returns a builder over at least n vertices (GrowTo extends
// the vertex space as higher labels appear during the counting pass).
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{deg: make([]int64, n)}
}

// GrowTo extends the vertex space to n vertices (no-op when already that
// large). Only valid before StartFill.
func (b *Builder) GrowTo(n int) {
	if b.filling {
		b.fail(fmt.Errorf("bigraph: GrowTo after StartFill"))
		return
	}
	for len(b.deg) < n {
		b.deg = append(b.deg, 0)
	}
}

// N returns the current vertex count.
func (b *Builder) N() int { return len(b.deg) }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// skip reports whether the endpoint pair is dropped (self-loop or
// negative label). Count and fill passes must agree on it exactly.
func skip(u, v int) bool { return u == v || u < 0 || v < 0 }

// CountEdge records one undirected edge in the degree-counting pass,
// growing the vertex space to cover both endpoints.
func (b *Builder) CountEdge(u, v int) {
	if b.err != nil || skip(u, v) {
		return
	}
	if b.filling {
		b.fail(fmt.Errorf("bigraph: CountEdge after StartFill"))
		return
	}
	if u >= len(b.deg) || v >= len(b.deg) {
		hi := u
		if v > hi {
			hi = v
		}
		b.GrowTo(hi + 1)
	}
	b.deg[u]++
	b.deg[v]++
}

// StartFill freezes the vertex space, allocates the CSR arrays from the
// counted degrees, and switches the builder to the fill pass.
func (b *Builder) StartFill() error {
	if b.err != nil {
		return b.err
	}
	if b.filling {
		return fmt.Errorf("bigraph: StartFill called twice")
	}
	n := len(b.deg)
	if n > 1<<31-1 {
		return fmt.Errorf("bigraph: %d vertices exceed the int32 index space", n)
	}
	b.offsets = make([]int64, n+1)
	for i := 0; i < n; i++ {
		b.offsets[i+1] = b.offsets[i] + b.deg[i]
	}
	b.targets = make([]int32, b.offsets[n])
	// Reuse the degree array as the per-row write cursor.
	b.fill = b.deg
	copy(b.fill, b.offsets[:n])
	b.filling = true
	return nil
}

// AddEdge places one undirected edge in the fill pass. The stream must
// repeat the CountEdge stream exactly (same edges, any order).
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil || skip(u, v) {
		return
	}
	if !b.filling {
		b.fail(fmt.Errorf("bigraph: AddEdge before StartFill"))
		return
	}
	if u >= len(b.offsets)-1 || v >= len(b.offsets)-1 {
		b.fail(fmt.Errorf("bigraph: fill-pass edge {%d,%d} beyond the counted vertex space", u, v))
		return
	}
	if b.fill[u] >= b.offsets[u+1] || b.fill[v] >= b.offsets[v+1] {
		b.fail(fmt.Errorf("bigraph: fill pass added more edges at {%d,%d} than were counted", u, v))
		return
	}
	b.targets[b.fill[u]] = int32(v)
	b.fill[u]++
	b.targets[b.fill[v]] = int32(u)
	b.fill[v]++
}

// Finish sorts each row, removes duplicate edges (compacting the arrays
// in place), validates the structure, and returns the CSR. The builder
// is spent afterwards.
func (b *Builder) Finish() (*CSR, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.filling {
		if err := b.StartFill(); err != nil { // zero-edge graphs
			return nil, err
		}
	}
	n := len(b.offsets) - 1
	for i := 0; i < n; i++ {
		if b.fill[i] != b.offsets[i+1] {
			return nil, fmt.Errorf("bigraph: fill pass placed %d edge ends at vertex %d, counted %d",
				b.fill[i]-b.offsets[i], i, b.offsets[i+1]-b.offsets[i])
		}
	}
	// Sort rows, then compact duplicates: read rows at their old
	// offsets, write deduped rows left-to-right (write pos never passes
	// the read pos, so in-place is safe).
	w := int64(0)
	for i := 0; i < n; i++ {
		row := b.targets[b.offsets[i]:b.offsets[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		start := w
		prev := int32(-1)
		for _, j := range row {
			if j == prev {
				continue
			}
			b.targets[w] = j
			w++
			prev = j
		}
		b.offsets[i] = start
	}
	b.offsets[n] = w
	// Rows were rewritten over their own storage; restore offsets to the
	// start-of-row convention (offsets[i] currently holds row i's start,
	// which is already correct — only the tail shrank).
	c := &CSR{offsets: b.offsets, targets: b.targets[:w:w]}
	b.offsets, b.targets, b.fill, b.deg = nil, nil, nil, nil
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}
