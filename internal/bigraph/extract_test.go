package bigraph_test

import (
	"math/rand"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// TestExtractMatchesNbhd is the in-package differential: CSR extraction
// must reproduce nbhd.Extract's vertex set, distances and edge set for
// every source and locality (the klocalcheck "csr" property fuzzes the
// same claim over random GraphSpecs).
func TestExtractMatchesNbhd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	graphs := []*graph.Graph{
		gen.Path(7),
		gen.Cycle(12),
		gen.Grid(4, 6),
		gen.Lollipop(8, 5),
		gen.RandomConnected(rng, 24, 0.12),
		gen.RandomTree(rng, 18),
	}
	sc := bigraph.NewScratch()
	for _, g := range graphs {
		c := bigraph.FromGraph(g)
		for k := 0; k <= g.N()/2+1; k++ {
			for _, u := range g.Vertices() {
				want := nbhd.Extract(g, u, k)
				if err := c.Extract(u, k, sc); err != nil {
					t.Fatalf("Extract(%d, %d): %v", u, k, err)
				}
				if len(sc.Verts) != len(want.Dist) {
					t.Fatalf("u=%d k=%d: %d view vertices, want %d", u, k, len(sc.Verts), len(want.Dist))
				}
				for i, vi := range sc.Verts {
					v := c.Label(vi)
					wd, ok := want.Dist[v]
					if !ok {
						t.Fatalf("u=%d k=%d: vertex %d not in nbhd view", u, k, v)
					}
					if int(sc.Dists[i]) != wd {
						t.Fatalf("u=%d k=%d: dist(%d)=%d, want %d", u, k, v, sc.Dists[i], wd)
					}
				}
				if len(sc.Edges) != want.G.M() {
					t.Fatalf("u=%d k=%d: %d view edges, want %d\nview %s",
						u, k, len(sc.Edges), want.G.M(), want.G)
				}
				for _, e := range sc.Edges {
					a, b := c.Label(e[0]), c.Label(e[1])
					if !want.G.HasEdge(a, b) {
						t.Fatalf("u=%d k=%d: extra view edge {%d,%d}", u, k, a, b)
					}
				}
			}
		}
	}
}

// TestExtractDeterministic pins the BFS discovery order: same input,
// byte-identical scratch output across runs and scratch reuse.
func TestExtractDeterministic(t *testing.T) {
	g := gen.Grid(5, 5)
	c := bigraph.FromGraph(g)
	a, b := bigraph.NewScratch(), bigraph.NewScratch()
	for round := 0; round < 3; round++ {
		for _, u := range g.Vertices() {
			if err := c.Extract(u, 3, a); err != nil {
				t.Fatal(err)
			}
			if err := c.Extract(u, 3, b); err != nil {
				t.Fatal(err)
			}
			if len(a.Verts) != len(b.Verts) || len(a.Edges) != len(b.Edges) {
				t.Fatalf("u=%d: shapes differ", u)
			}
			for i := range a.Verts {
				if a.Verts[i] != b.Verts[i] || a.Dists[i] != b.Dists[i] {
					t.Fatalf("u=%d: vertex order diverged at %d", u, i)
				}
			}
			for i := range a.Edges {
				if a.Edges[i] != b.Edges[i] {
					t.Fatalf("u=%d: edge order diverged at %d", u, i)
				}
			}
		}
	}
}

// TestExtractAllocs is the alloc regression gate for the tentpole claim:
// once the scratch has warmed up, G_k(u) extraction from CSR performs
// zero allocations per call.
func TestExtractAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	g := gen.Grid(20, 20)
	c := bigraph.FromGraph(g)
	sc := bigraph.NewScratch()
	vs := g.Vertices()
	// Warm up: size the scratch to the largest view it will see.
	for _, u := range vs {
		if err := c.Extract(u, 6, sc); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		u := vs[i%len(vs)]
		i++
		if err := c.Extract(u, 6, sc); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Extract allocates %.1f times per call, want 0", avg)
	}
}

func TestExtractErrors(t *testing.T) {
	c := bigraph.FromGraph(gen.Path(4))
	sc := bigraph.NewScratch()
	if err := c.Extract(99, 2, sc); err == nil {
		t.Fatal("extracting from an absent vertex should fail")
	}
	if err := c.Extract(0, -1, sc); err == nil {
		t.Fatal("negative locality should fail")
	}
}
