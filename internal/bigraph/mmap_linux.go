//go:build linux

package bigraph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"syscall"
	"unsafe"
)

// mapping owns one read-only mmap of a CSR file.
type mapping struct {
	data []byte
}

func (m *mapping) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// hostLittleEndian reports whether in-memory integer layout matches the
// file's little-endian payload, making the zero-copy cast legal.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// openMmap maps path read-only and views the offsets/targets arrays in
// place — no copy, so a million-node file costs page-cache only. It
// reports handled=false (falling back to the portable reader) on
// big-endian hosts, where the cast would misread the payload.
func openMmap(path string) (*CSR, error, bool) {
	if !hostLittleEndian {
		return nil, nil, false
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err, true
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err, true
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("%w: file smaller than the %d-byte header", ErrTruncated, headerSize), true
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("bigraph: mmap %s: %w", path, err), true
	}
	mm := &mapping{data: data}
	c, err := viewMapped(mm)
	if err != nil {
		mm.close()
		return nil, err, true
	}
	return c, nil, true
}

// viewMapped decodes and validates a mapped file, building int64/int32
// slice views directly over the mapping. The 40-byte header keeps the
// offsets array 8-byte aligned (mmap bases are page-aligned).
func viewMapped(mm *mapping) (*CSR, error) {
	h, err := decodeHeader(mm.data)
	if err != nil {
		return nil, err
	}
	want := headerSize + h.payloadSize()
	if int64(len(mm.data)) < want {
		return nil, fmt.Errorf("%w: %d bytes on disk, header declares %d", ErrTruncated, len(mm.data), want)
	}
	payload := mm.data[headerSize:want]
	if got := crc32.ChecksumIEEE(payload); got != h.crc {
		return nil, fmt.Errorf("%w: crc %#x, header says %#x", ErrChecksum, got, h.crc)
	}
	base := unsafe.Pointer(unsafe.SliceData(mm.data))
	c := &CSR{
		offsets: unsafe.Slice((*int64)(unsafe.Add(base, headerSize)), h.n+1),
		mm:      mm,
	}
	if h.m2 > 0 {
		//klocal:allow the store owns its views: Close unmaps them together with the mapping
		c.targets = unsafe.Slice((*int32)(unsafe.Add(base, headerSize+int64(h.n+1)*8)), h.m2)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	// Belt and braces on the cast itself: re-decode a couple of words
	// portably and compare, so an alignment or endianness regression
	// fails loudly here instead of corrupting a BFS.
	if c.offsets[0] != int64(binary.LittleEndian.Uint64(payload[0:8])) {
		return nil, fmt.Errorf("%w: mapped view disagrees with portable decode", ErrCorrupt)
	}
	return c, nil
}
