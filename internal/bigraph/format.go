package bigraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The on-disk CSR format, version 1 (see DESIGN.md §12):
//
//	offset  size  field
//	0       8     magic "KLBIGCSR"
//	8       4     version (uint32, currently 1)
//	12      4     flags (uint32, must be 0; reserved)
//	16      8     n  — vertex count (uint64)
//	24      8     m2 — directed arc count, i.e. len(targets) = 2m (uint64)
//	32      4     crc32 (IEEE) of the offsets and targets bytes
//	36      4     padding (must be 0)
//	40      ...   offsets: (n+1) × int64
//	...     ...   targets: m2 × int32
//
// All integers are little-endian. Vertex ids in a file are dense
// (0..n-1): the format has no labels table by design — relabelling is a
// streaming preprocessing concern, not a storage one. The header is 40
// bytes so the offsets array lands 8-byte aligned for the mmap fast
// path.
const (
	magic      = "KLBIGCSR"
	version    = 1
	headerSize = 40
)

// Typed load errors, matchable with errors.Is. A corrupt or truncated
// file must surface as one of these — never as a panic.
var (
	// ErrBadMagic means the file is not a bigraph CSR file at all.
	ErrBadMagic = errors.New("bigraph: bad magic (not a CSR file)")
	// ErrBadVersion means the file is a CSR file of an unsupported
	// format version (or uses reserved flags).
	ErrBadVersion = errors.New("bigraph: unsupported CSR format version")
	// ErrTruncated means the file ends before the header-declared arrays
	// do.
	ErrTruncated = errors.New("bigraph: truncated CSR file")
	// ErrChecksum means the payload bytes do not match the header CRC.
	ErrChecksum = errors.New("bigraph: CSR payload checksum mismatch")
	// ErrCorrupt means the arrays decode but violate CSR invariants
	// (non-monotone offsets, out-of-range targets, unsorted rows,
	// asymmetric arcs).
	ErrCorrupt = errors.New("bigraph: corrupt CSR structure")
	// ErrNotDense means WriteFile was asked to serialize a CSR whose
	// labels are not the identity; the file format is dense-only.
	ErrNotDense = errors.New("bigraph: on-disk CSR requires dense 0..n-1 labels")
)

// header is the decoded fixed-size prefix.
type header struct {
	n   uint64
	m2  uint64
	crc uint32
}

func decodeHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < headerSize {
		return h, fmt.Errorf("%w: %d header bytes, want %d", ErrTruncated, len(buf), headerSize)
	}
	if string(buf[0:8]) != magic {
		return h, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != version {
		return h, fmt.Errorf("%w: version %d, support %d", ErrBadVersion, v, version)
	}
	if f := binary.LittleEndian.Uint32(buf[12:16]); f != 0 {
		return h, fmt.Errorf("%w: reserved flags %#x set", ErrBadVersion, f)
	}
	h.n = binary.LittleEndian.Uint64(buf[16:24])
	h.m2 = binary.LittleEndian.Uint64(buf[24:32])
	h.crc = binary.LittleEndian.Uint32(buf[32:36])
	if h.n > 1<<31-1 {
		return h, fmt.Errorf("%w: %d vertices exceed the int32 index space", ErrCorrupt, h.n)
	}
	return h, nil
}

// payloadSize returns the byte length of the offsets+targets arrays.
func (h header) payloadSize() int64 { return int64(h.n+1)*8 + int64(h.m2)*4 }

// WriteFile serializes the CSR to path in format v1. Labels must be the
// identity (ErrNotDense otherwise): files speak dense ids only.
func (c *CSR) WriteFile(path string) (err error) {
	if c.labels != nil {
		return ErrNotDense
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)

	crc := crc32.NewIEEE()
	var scratch [8]byte
	writeInto := func(dst io.Writer) error {
		for _, o := range c.offsets {
			binary.LittleEndian.PutUint64(scratch[:8], uint64(o))
			if _, err := dst.Write(scratch[:8]); err != nil {
				return err
			}
		}
		for _, t := range c.targets {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(t))
			if _, err := dst.Write(scratch[:4]); err != nil {
				return err
			}
		}
		return nil
	}
	// Pass 1: checksum the payload (cheap — pure CPU over the arrays).
	if err := writeInto(crc); err != nil {
		return err
	}

	var hdr [headerSize]byte
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(c.offsets)-1))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(c.targets)))
	binary.LittleEndian.PutUint32(hdr[32:36], crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[36:40], 0)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Pass 2: the payload itself.
	if err := writeInto(w); err != nil {
		return err
	}
	return w.Flush()
}

// ReadFile loads a CSR file fully into memory with the portable decoder
// (no mmap, works on any platform and endianness). It verifies the
// checksum and the structural invariants.
func ReadFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: file smaller than the %d-byte header", ErrTruncated, headerSize)
		}
		return nil, err
	}
	h, err := decodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	payload := make([]byte, h.payloadSize())
	if _, err := io.ReadFull(f, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: header declares %d payload bytes", ErrTruncated, h.payloadSize())
		}
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != h.crc {
		return nil, fmt.Errorf("%w: crc %#x, header says %#x", ErrChecksum, got, h.crc)
	}
	c := &CSR{
		offsets: make([]int64, h.n+1),
		targets: make([]int32, h.m2),
	}
	for i := range c.offsets {
		c.offsets[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	tbase := int(h.n+1) * 8
	for i := range c.targets {
		c.targets[i] = int32(binary.LittleEndian.Uint32(payload[tbase+i*4:]))
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Open loads a CSR file, preferring the zero-copy mmap path where the
// platform supports it (linux, little-endian hosts) and falling back to
// ReadFile everywhere else. Both paths verify the checksum and validate
// the structure; byte-for-byte they yield identical adjacency (the
// cross-check test pins this). Close the returned CSR to release a
// mapping.
func Open(path string) (*CSR, error) {
	if c, err, handled := openMmap(path); handled {
		return c, err
	}
	return ReadFile(path)
}
