package bigraph_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

// writeTempCSR serializes g to a fresh .csr file under t.TempDir.
func writeTempCSR(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := bigraph.FromGraph(g).WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func sameTopology(t *testing.T, want *graph.Graph, c *bigraph.CSR) {
	t.Helper()
	if got := c.ToGraph().String(); got != want.String() {
		t.Fatalf("topology mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range []*graph.Graph{
		gen.Path(2),
		gen.Cycle(9),
		gen.Grid(4, 5),
		gen.RandomConnected(rng, 40, 0.15),
		gen.RandomTree(rng, 33),
	} {
		path := writeTempCSR(t, g)
		for name, load := range map[string]func(string) (*bigraph.CSR, error){
			"ReadFile": bigraph.ReadFile,
			"Open":     bigraph.Open,
		} {
			c, err := load(path)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if c.N() != g.N() || c.M() != g.M() {
				t.Fatalf("%s: n=%d m=%d, want n=%d m=%d", name, c.N(), c.M(), g.N(), g.M())
			}
			sameTopology(t, g, c)
			if err := c.Close(); err != nil {
				t.Fatalf("%s: Close: %v", name, err)
			}
		}
	}
}

// TestMmapFallbackCrossCheck pins the mmap view and the portable decoder
// to byte-for-byte identical adjacency arrays.
func TestMmapFallbackCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.RandomConnected(rng, 120, 0.06)
	path := writeTempCSR(t, g)

	mapped, err := bigraph.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer mapped.Close()
	heap, err := bigraph.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if runtime.GOOS == "linux" && !mapped.Mapped() {
		t.Fatalf("Open on linux did not take the mmap path")
	}
	if heap.Mapped() {
		t.Fatalf("ReadFile produced a mapped CSR")
	}
	if mapped.N() != heap.N() || mapped.M() != heap.M() {
		t.Fatalf("size mismatch: mmap n=%d m=%d, heap n=%d m=%d",
			mapped.N(), mapped.M(), heap.N(), heap.M())
	}
	for v := 0; v < mapped.N(); v++ {
		var a, b []graph.Vertex
		mapped.EachAdj(graph.Vertex(v), func(w graph.Vertex) bool { a = append(a, w); return true })
		heap.EachAdj(graph.Vertex(v), func(w graph.Vertex) bool { b = append(b, w); return true })
		if len(a) != len(b) {
			t.Fatalf("vertex %d: row lengths differ (%d vs %d)", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: rows differ at %d: %d vs %d", v, i, a[i], b[i])
			}
		}
	}
}

// TestTruncatedFile cuts a valid file at every interesting boundary and
// requires the typed ErrTruncated from both loaders — never a panic.
func TestTruncatedFile(t *testing.T) {
	g := gen.Grid(5, 5)
	path := writeTempCSR(t, g)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 7, 39, 40, 41, 40 + 8*10, len(whole) - 4, len(whole) - 1} {
		if cut >= len(whole) {
			continue
		}
		short := filepath.Join(t.TempDir(), "short.csr")
		if err := os.WriteFile(short, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		for name, load := range map[string]func(string) (*bigraph.CSR, error){
			"ReadFile": bigraph.ReadFile,
			"Open":     bigraph.Open,
		} {
			_, err := load(short)
			if !errors.Is(err, bigraph.ErrTruncated) {
				t.Fatalf("%s at cut %d: got %v, want ErrTruncated", name, cut, err)
			}
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	g := gen.Cycle(6)
	path := writeTempCSR(t, g)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(t *testing.T, f func(b []byte)) string {
		t.Helper()
		b := append([]byte(nil), whole...)
		f(b)
		p := filepath.Join(t.TempDir(), "mut.csr")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := mutate(t, func(b []byte) { b[0] = 'X' })
	if _, err := bigraph.Open(p); !errors.Is(err, bigraph.ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	p = mutate(t, func(b []byte) { binary.LittleEndian.PutUint32(b[8:12], 99) })
	if _, err := bigraph.Open(p); !errors.Is(err, bigraph.ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	p = mutate(t, func(b []byte) { binary.LittleEndian.PutUint32(b[12:16], 1) })
	if _, err := bigraph.Open(p); !errors.Is(err, bigraph.ErrBadVersion) {
		t.Fatalf("reserved flags: got %v", err)
	}
	// Flip one payload byte: checksum must catch it.
	p = mutate(t, func(b []byte) { b[len(b)-1] ^= 0xff })
	if _, err := bigraph.Open(p); !errors.Is(err, bigraph.ErrChecksum) {
		t.Fatalf("payload flip: got %v", err)
	}
	// Structurally corrupt payload with a fixed-up checksum: the
	// validator must catch what the CRC no longer can.
	p = mutate(t, func(b []byte) {
		binary.LittleEndian.PutUint64(b[40:48], 1<<40) // offsets[0] != 0
		binary.LittleEndian.PutUint32(b[32:36], crc32.ChecksumIEEE(b[40:]))
	})
	if _, err := bigraph.Open(p); !errors.Is(err, bigraph.ErrCorrupt) {
		t.Fatalf("corrupt offsets: got %v", err)
	}
}

func TestWriteFileRejectsSparseLabels(t *testing.T) {
	// Labels {3, 5, 9}: a valid Store, but not a valid file.
	g := graph.FromEdges([]graph.Edge{{U: 3, V: 5}, {U: 5, V: 9}})
	c := bigraph.FromGraph(g)
	if !c.HasEdge(3, 5) || c.HasEdge(3, 9) || c.Deg(5) != 2 {
		t.Fatalf("sparse-label CSR misbehaves as a Store")
	}
	err := c.WriteFile(filepath.Join(t.TempDir(), "sparse.csr"))
	if !errors.Is(err, bigraph.ErrNotDense) {
		t.Fatalf("got %v, want ErrNotDense", err)
	}
}
