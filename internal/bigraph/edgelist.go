package bigraph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// LoadEdgeList streams a whitespace-separated edge-list file (one
// "u v" pair per line, '#'-comments and blank lines ignored, ".gz"
// suffix gunzipped on the fly) into a CSR in two passes: the first
// counts degrees, the second places edges. Memory stays bounded by the
// output arrays — the file itself is never held.
//
// Vertex ids must be non-negative integers; the vertex space is
// 0..max-id, so ids that never appear on any line become isolated
// vertices. Self-loops are dropped; duplicate edges collapse to one.
func LoadEdgeList(path string) (*CSR, error) {
	b := NewBuilder(0)
	if err := scanEdges(path, b.CountEdge); err != nil {
		return nil, err
	}
	if err := b.StartFill(); err != nil {
		return nil, err
	}
	if err := scanEdges(path, b.AddEdge); err != nil {
		return nil, err
	}
	return b.Finish()
}

// scanEdges runs one pass over the file, calling emit per edge line.
func scanEdges(path string, emit func(u, v int)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return fmt.Errorf("bigraph: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		u, v, ok, err := parseEdgeLine(sc.Text())
		if err != nil {
			return fmt.Errorf("bigraph: %s:%d: %w", path, line, err)
		}
		if ok {
			emit(u, v)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("bigraph: %s: %w", path, err)
	}
	return nil
}

// parseEdgeLine extracts the two endpoint ids from one line; ok=false
// for blank and comment lines. Parsing is hand-rolled (no Fields, no
// Atoi on substrings) because the counting pass runs it once per line of
// a potentially multi-gigabyte file.
func parseEdgeLine(s string) (u, v int, ok bool, err error) {
	i, n := 0, len(s)
	skipSpace := func() {
		for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == ',') {
			i++
		}
	}
	parseInt := func() (int, bool) {
		start := i
		x := 0
		for i < n && s[i] >= '0' && s[i] <= '9' {
			d := int(s[i] - '0')
			if x > (1<<62)/10 {
				return 0, false
			}
			x = x*10 + d
			i++
		}
		return x, i > start
	}
	skipSpace()
	if i >= n || s[i] == '#' {
		return 0, 0, false, nil
	}
	u, uok := parseInt()
	if !uok {
		return 0, 0, false, fmt.Errorf("expected vertex id, got %q", s)
	}
	skipSpace()
	v, vok := parseInt()
	if !vok {
		return 0, 0, false, fmt.Errorf("expected second vertex id, got %q", s)
	}
	skipSpace()
	if i < n && s[i] != '#' {
		return 0, 0, false, fmt.Errorf("trailing junk after edge pair: %q", s)
	}
	return u, v, true, nil
}

// ConvertEdgeList streams an edge-list file into a CSR file — the
// "ingest once, mmap forever" path cmd/csrgen exposes.
func ConvertEdgeList(in, out string) (*CSR, error) {
	c, err := LoadEdgeList(in)
	if err != nil {
		return nil, err
	}
	if err := c.WriteFile(out); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadFile loads any supported graph file by extension: ".csr" binary
// files mmap via Open; everything else parses as an edge list
// (optionally ".gz"-compressed).
func LoadFile(path string) (*CSR, error) {
	if strings.HasSuffix(path, ".csr") {
		return Open(path)
	}
	return LoadEdgeList(path)
}
