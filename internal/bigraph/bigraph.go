// Package bigraph is the million-node graph storage subsystem: an
// int-indexed CSR (compressed sparse row) adjacency representation with
// a binary on-disk format that loads via mmap (with a portable
// read-into-memory fallback), a bounded-memory streaming edge-list
// loader, and per-source G_k(u) extraction that walks CSR offsets
// directly into caller-provided scratch buffers — never materializing
// the whole graph as a map-based graph.Graph.
//
// The package exists because the map-of-slices graph.Graph caps
// experiments at thousands of vertices: every vertex label is a map key,
// every adjacency list a separate allocation, and extracting G_k(u)
// allocates a fresh map per source. A CSR over dense indices stores the
// same topology in two flat arrays (offsets, targets), costs ~12 bytes
// per vertex plus 4 bytes per directed edge, mmaps straight from disk,
// and extracts neighbourhoods with zero steady-state allocations
// (Scratch + Extract).
//
// Store is the minimal consumer contract. *graph.Graph satisfies it
// as-is, so everything written against Store keeps working on the
// existing in-memory graphs with no adapter code; *CSR satisfies it over
// its label space. See DESIGN.md §12 for the on-disk format and
// route/doc.go for what routing decision paths may ask of a Store.
package bigraph

import "klocal/internal/graph"

// Store is the minimal read-only graph surface the routing stack needs:
// sizes, membership, and sorted adjacency iteration. The contract mirrors
// graph.Graph exactly:
//
//   - vertices are identified by their graph.Vertex label; labels induce
//     the paper's canonical rank order, so EachAdj MUST iterate
//     neighbours in strictly ascending label order — every tie-break in
//     the routing algorithms depends on it;
//   - the topology is an undirected simple graph: HasEdge is symmetric,
//     no self-loops, no parallel edges;
//   - a Store is immutable once published and safe for concurrent
//     readers with no external locking.
type Store interface {
	// N returns the number of vertices.
	N() int
	// M returns the number of (undirected) edges.
	M() int
	// HasVertex reports whether v is a vertex.
	HasVertex(v graph.Vertex) bool
	// Deg returns the degree of v (0 if absent).
	Deg(v graph.Vertex) int
	// EachAdj calls fn for every neighbour of v in ascending label
	// order, stopping early if fn returns false. It must not allocate.
	EachAdj(v graph.Vertex, fn func(w graph.Vertex) bool)
	// EachVertex calls fn for every vertex in ascending label order,
	// stopping early if fn returns false. It must not allocate.
	EachVertex(fn func(v graph.Vertex) bool)
	// HasEdge reports whether {u, v} is an edge.
	HasEdge(u, v graph.Vertex) bool
}

// The in-memory graph substrate is itself a Store: existing call sites
// adapt for free.
var _ Store = (*graph.Graph)(nil)
var _ Store = (*CSR)(nil)
