//go:build !linux

package bigraph

// mapping is a stub off linux; no CSR is ever backed by one.
type mapping struct{}

func (m *mapping) close() error { return nil }

// openMmap reports handled=false: Open falls back to the portable
// read-into-memory loader on platforms without the mmap fast path.
func openMmap(string) (*CSR, error, bool) { return nil, nil, false }
