//go:build !race

package bigraph_test

const raceEnabled = false
