package bigraph_test

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
)

func writeEdgeList(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if strings.HasSuffix(name, ".gz") {
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		if _, err := zw.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadEdgeListBasic(t *testing.T) {
	p := writeEdgeList(t, "g.txt", `
# a comment
0 1
1 2   # trailing comment
2 0
`)
	c, err := bigraph.LoadEdgeList(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3/3", c.N(), c.M())
	}
	want := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if got := c.ToGraph().String(); got != want.String() {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestLoadEdgeListGzip(t *testing.T) {
	content := "0 1\n1 2\n2 3\n"
	plain, err := bigraph.LoadEdgeList(writeEdgeList(t, "g.txt", content))
	if err != nil {
		t.Fatal(err)
	}
	zipped, err := bigraph.LoadEdgeList(writeEdgeList(t, "g.txt.gz", content))
	if err != nil {
		t.Fatal(err)
	}
	if plain.ToGraph().String() != zipped.ToGraph().String() {
		t.Fatalf("gzip load differs from plain load")
	}
}

func TestLoadEdgeListEmptyFile(t *testing.T) {
	c, err := bigraph.LoadEdgeList(writeEdgeList(t, "empty.txt", ""))
	if err != nil {
		t.Fatalf("empty file should load as the empty graph, got %v", err)
	}
	if c.N() != 0 || c.M() != 0 {
		t.Fatalf("empty file: n=%d m=%d, want 0/0", c.N(), c.M())
	}
	// Comment-only files are equally empty.
	c, err = bigraph.LoadEdgeList(writeEdgeList(t, "comments.txt", "# nothing\n\n  \n"))
	if err != nil || c.N() != 0 {
		t.Fatalf("comment-only file: n=%d err=%v", c.N(), err)
	}
}

func TestLoadEdgeListIsolatedVertices(t *testing.T) {
	// Ids 1..4 never appear: the vertex space is 0..5 with 4 isolated
	// vertices (dense ids are positional, not symbolic).
	c, err := bigraph.LoadEdgeList(writeEdgeList(t, "iso.txt", "0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 6 || c.M() != 1 {
		t.Fatalf("n=%d m=%d, want 6/1", c.N(), c.M())
	}
	for v := 1; v <= 4; v++ {
		if c.Deg(graph.Vertex(v)) != 0 {
			t.Fatalf("vertex %d should be isolated", v)
		}
	}
	if !c.HasEdge(0, 5) || !c.HasEdge(5, 0) {
		t.Fatalf("edge {0,5} missing or asymmetric")
	}
}

func TestLoadEdgeListDuplicatesAndSelfLoops(t *testing.T) {
	c, err := bigraph.LoadEdgeList(writeEdgeList(t, "dup.txt", `
0 1
1 0
0 1
2 2
1 2
`))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.M() != 2 {
		t.Fatalf("n=%d m=%d, want 3/2 (dups collapsed, self-loop dropped)", c.N(), c.M())
	}
	if c.Deg(0) != 1 || c.Deg(1) != 2 || c.Deg(2) != 1 {
		t.Fatalf("degrees %d/%d/%d, want 1/2/1", c.Deg(0), c.Deg(1), c.Deg(2))
	}
}

func TestLoadEdgeListMalformed(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 1 2\n", "0 -1\n"} {
		if _, err := bigraph.LoadEdgeList(writeEdgeList(t, "bad.txt", bad)); err == nil {
			t.Fatalf("malformed line %q loaded without error", bad)
		}
	}
}

func TestConvertEdgeList(t *testing.T) {
	in := writeEdgeList(t, "g.txt", "0 1\n1 2\n0 2\n2 3\n")
	out := filepath.Join(t.TempDir(), "g.csr")
	c, err := bigraph.ConvertEdgeList(in, out)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := bigraph.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if c.ToGraph().String() != loaded.ToGraph().String() {
		t.Fatalf("converted CSR differs from the in-memory one")
	}
	// LoadFile also dispatches the raw edge list by extension.
	direct, err := bigraph.LoadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if direct.ToGraph().String() != c.ToGraph().String() {
		t.Fatalf("LoadFile(.txt) differs from LoadEdgeList")
	}
}
