//go:build race

package bigraph_test

// raceEnabled lets allocation-count gates skip under -race, where the
// instrumentation itself allocates.
const raceEnabled = true
