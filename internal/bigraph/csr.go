package bigraph

import (
	"fmt"

	"klocal/internal/graph"
)

// CSR is a compressed-sparse-row adjacency over dense int32 indices.
// Vertex i's neighbours are targets[offsets[i]:offsets[i+1]], sorted
// ascending. Labels are the identity (vertex i has label i) unless a
// labels table is present (FromGraph over a non-dense graph); the table
// is sorted, so index order and label order always coincide and every
// canonical rank tie-break survives the translation.
//
// A CSR is immutable after construction and safe for concurrent readers.
// CSRs backed by an mmap'd file additionally hold the mapping; Close
// releases it (heap-backed CSRs Close as a no-op).
type CSR struct {
	offsets []int64 // len n+1; offsets[0] == 0, non-decreasing
	targets []int32 // len 2m; per-row sorted strictly ascending
	labels  []int64 // nil = identity; else sorted ascending, len n

	mm *mapping // non-nil when offsets/targets view an mmap'd file
}

// NumVertices returns the number of vertices.
func (c *CSR) NumVertices() int { return len(c.offsets) - 1 }

// N returns the number of vertices (Store).
func (c *CSR) N() int {
	if len(c.offsets) == 0 {
		return 0
	}
	return len(c.offsets) - 1
}

// M returns the number of undirected edges (Store).
func (c *CSR) M() int { return len(c.targets) / 2 }

// Bytes returns the in-memory (or mapped) footprint of the adjacency
// arrays in bytes — the numerator of the bytes/vertex scaling metric.
func (c *CSR) Bytes() int64 { return int64(len(c.offsets))*8 + int64(len(c.targets))*4 }

// index resolves a label to its dense index, reporting presence. The
// binary search is hand-rolled: sort.Search's closure would allocate on
// every lookup, and index sits under every per-hop accessor.
//
//klocal:hotpath
func (c *CSR) index(v graph.Vertex) (int32, bool) {
	if c.labels == nil {
		if v < 0 || int(v) >= c.N() {
			return 0, false
		}
		return int32(v), true
	}
	lo, hi := 0, len(c.labels)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.labels[mid] < int64(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.labels) && c.labels[lo] == int64(v) {
		return int32(lo), true
	}
	return 0, false
}

// IndexOf resolves a label to its dense index, reporting presence — the
// exported twin of index, for the compact view extractors that BFS over
// rows directly.
//
//klocal:hotpath
func (c *CSR) IndexOf(v graph.Vertex) (int32, bool) { return c.index(v) }

// Label returns the label of dense index i.
func (c *CSR) Label(i int32) graph.Vertex {
	if c.labels == nil {
		return graph.Vertex(i)
	}
	return graph.Vertex(c.labels[i])
}

// Row returns vertex index i's neighbour indices (sorted ascending).
// The slice aliases the CSR's storage: callers must not modify it and
// must not retain it past Close (klifetime enforces this at call sites).
//
//klocal:hotpath
func (c *CSR) Row(i int32) []int32 {
	//klocal:allow Row is the borrow-window API itself; retention is checked at every call site instead
	return c.targets[c.offsets[i]:c.offsets[i+1]]
}

// HasVertex reports whether v is a vertex (Store).
func (c *CSR) HasVertex(v graph.Vertex) bool {
	_, ok := c.index(v)
	return ok
}

// Deg returns the degree of v, 0 if absent (Store).
//
//klocal:hotpath
func (c *CSR) Deg(v graph.Vertex) int {
	i, ok := c.index(v)
	if !ok {
		return 0
	}
	return int(c.offsets[i+1] - c.offsets[i])
}

// EachAdj calls fn for every neighbour of v in ascending label order
// (Store). Rows are stored sorted by index, and the labels table is
// sorted, so index order is label order.
//
//klocal:hotpath
func (c *CSR) EachAdj(v graph.Vertex, fn func(w graph.Vertex) bool) {
	i, ok := c.index(v)
	if !ok {
		return
	}
	for _, j := range c.Row(i) {
		if !fn(c.Label(j)) {
			return
		}
	}
}

// EachVertex calls fn for every vertex in ascending label order (Store).
func (c *CSR) EachVertex(fn func(v graph.Vertex) bool) {
	n := c.N()
	for i := int32(0); int(i) < n; i++ {
		if !fn(c.Label(i)) {
			return
		}
	}
}

// HasEdge reports whether {u, v} is an edge (Store) by binary search in
// u's row.
func (c *CSR) HasEdge(u, v graph.Vertex) bool {
	i, ok := c.index(u)
	if !ok {
		return false
	}
	j, ok := c.index(v)
	if !ok {
		return false
	}
	return c.hasArc(i, j)
}

// hasArc is HasEdge in index space; hand-rolled for the same reason as
// index (sort.Search's closure allocates).
//
//klocal:hotpath
func (c *CSR) hasArc(i, j int32) bool {
	row := c.Row(i)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == j
}

// Close releases the backing mmap, if any. The CSR must not be used
// afterwards. Safe to call on heap-backed CSRs and more than once.
func (c *CSR) Close() error {
	if c.mm == nil {
		return nil
	}
	mm := c.mm
	c.mm, c.offsets, c.targets = nil, nil, nil
	return mm.close()
}

// Mapped reports whether the adjacency arrays view an mmap'd file.
func (c *CSR) Mapped() bool { return c.mm != nil }

// FromGraph converts an in-memory graph to a CSR. Dense label sets
// (0..n-1) convert with no labels table; sparse sets keep a sorted
// label table so Store semantics are preserved exactly.
func FromGraph(g *graph.Graph) *CSR {
	vs := g.Vertices() // sorted ascending
	n := len(vs)
	dense := true
	for i, v := range vs {
		if int(v) != i {
			dense = false
			break
		}
	}
	c := &CSR{offsets: make([]int64, n+1)}
	if !dense {
		c.labels = make([]int64, n)
		for i, v := range vs {
			c.labels[i] = int64(v)
		}
	}
	for i, v := range vs {
		c.offsets[i+1] = c.offsets[i] + int64(g.Deg(v))
	}
	c.targets = make([]int32, c.offsets[n])
	pos := c.offsets[0]
	for _, v := range vs {
		g.EachAdj(v, func(w graph.Vertex) bool {
			j, ok := c.index(w)
			if !ok {
				panic(fmt.Sprintf("bigraph: neighbour %d of %d not a vertex", w, v))
			}
			c.targets[pos] = j
			pos++
			return true
		})
	}
	return c
}

// ToGraph materializes the CSR as an in-memory graph.Graph — for tooling
// and differential tests, not for million-node topologies (the whole
// point of the CSR is not doing this).
func (c *CSR) ToGraph() *graph.Graph {
	n := c.N()
	edges := make([]graph.Edge, 0, c.M())
	isolated := make([]graph.Vertex, 0)
	for i := int32(0); int(i) < n; i++ {
		row := c.Row(i)
		if len(row) == 0 {
			isolated = append(isolated, c.Label(i))
		}
		for _, j := range row {
			if i < j {
				edges = append(edges, graph.Edge{U: c.Label(i), V: c.Label(j)})
			}
		}
	}
	return graph.FromEdges(edges, isolated...)
}

// validate checks structural invariants: monotone offsets, in-range
// targets, per-row strictly ascending (sorted, simple, no self-loops).
// Loaders run it so a corrupt file becomes a typed error, never a panic
// deep in a BFS.
func (c *CSR) validate() error {
	n := c.N()
	if len(c.offsets) == 0 || c.offsets[0] != 0 {
		return fmt.Errorf("%w: offsets must start at 0", ErrCorrupt)
	}
	if c.offsets[n] != int64(len(c.targets)) {
		return fmt.Errorf("%w: offsets end %d != targets length %d", ErrCorrupt, c.offsets[n], len(c.targets))
	}
	for i := 0; i < n; i++ {
		if c.offsets[i+1] < c.offsets[i] {
			return fmt.Errorf("%w: offsets decrease at vertex %d", ErrCorrupt, i)
		}
		row := c.targets[c.offsets[i]:c.offsets[i+1]]
		prev := int32(-1)
		for _, j := range row {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("%w: vertex %d has out-of-range neighbour %d (n=%d)", ErrCorrupt, i, j, n)
			}
			if int(j) == i {
				return fmt.Errorf("%w: vertex %d has a self-loop", ErrCorrupt, i)
			}
			if j <= prev {
				return fmt.Errorf("%w: vertex %d row not strictly ascending", ErrCorrupt, i)
			}
			prev = j
		}
	}
	// Undirected symmetry: every arc has its mirror. Checked second so
	// rows are already known sorted (hasArc binary-searches them).
	for i := 0; i < n; i++ {
		for _, j := range c.Row(int32(i)) {
			if !c.hasArc(j, int32(i)) {
				return fmt.Errorf("%w: arc %d->%d has no mirror", ErrCorrupt, i, j)
			}
		}
	}
	return nil
}
