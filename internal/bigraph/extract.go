package bigraph

import (
	"fmt"

	"klocal/internal/graph"
)

// Scratch is the caller-owned working memory for Extract: the output
// arrays (Verts/Dists/Edges) and the epoch-marked visited state. A
// Scratch grows to the size of the largest graph it has seen and is then
// reused without allocating — the per-route hot path extracts views with
// zero steady-state allocations (pinned by TestExtractAllocs). A Scratch
// is not safe for concurrent use; give each worker its own.
type Scratch struct {
	// Verts lists the view's vertex indices in BFS discovery order
	// (which is distance order, ties in ascending index order).
	Verts []int32
	// Dists holds the distance from the centre, parallel to Verts.
	Dists []int32
	// Edges lists the view's edges as normalized (lo, hi) index pairs.
	Edges [][2]int32

	// mark[v] == epoch means v was reached this extraction; dist[v] is
	// then its distance. Epochs make clearing O(1) instead of O(n).
	mark  []uint32
	dist  []int32
	epoch uint32
}

// NewScratch returns an empty scratch; the first Extract sizes it.
func NewScratch() *Scratch { return &Scratch{} }

// begin readies the scratch for a graph of n vertices.
//
//klocal:hotpath
func (sc *Scratch) begin(n int) {
	if len(sc.mark) < n {
		//klocal:allow grows once to the largest graph seen, then reused; steady state pinned by TestExtractAllocs
		sc.mark = make([]uint32, n)
		//klocal:allow same growth-once path as mark above
		sc.dist = make([]int32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: all marks are stale garbage
		clear(sc.mark)
		sc.epoch = 1
	}
	sc.Verts = sc.Verts[:0]
	sc.Dists = sc.Dists[:0]
	sc.Edges = sc.Edges[:0]
}

// seen reports whether index v was reached this extraction.
func (sc *Scratch) seen(v int32) bool { return sc.mark[v] == sc.epoch }

// DistOf returns index v's distance from the centre, valid only for
// vertices reached by the last Extract.
func (sc *Scratch) DistOf(v int32) int32 { return sc.dist[v] }

// Contains reports whether index v is in the last extracted view.
func (sc *Scratch) Contains(v int32) bool {
	return int(v) < len(sc.mark) && sc.seen(v)
}

// Extract computes G_k(u) into sc by walking CSR offsets directly: the
// vertices within distance k of u, and the edges whose nearer endpoint
// is within distance k−1 — exactly nbhd.Extract's rule (the klocalcheck
// "csr" property pins the equivalence). The full graph is never
// materialized; the only writes are into sc.
//
//klocal:hotpath
func (c *CSR) Extract(u graph.Vertex, k int, sc *Scratch) error {
	root, ok := c.index(u)
	if !ok {
		//klocal:allow cold error path: fires only on a caller contract violation, never on the measured route
		return fmt.Errorf("bigraph: extract: vertex %d not in graph", u)
	}
	if k < 0 {
		//klocal:allow cold error path: fires only on a caller contract violation, never on the measured route
		return fmt.Errorf("bigraph: extract: negative locality %d", k)
	}
	sc.begin(c.N())
	sc.mark[root] = sc.epoch
	sc.dist[root] = 0
	sc.Verts = append(sc.Verts, root)
	sc.Dists = append(sc.Dists, 0)
	// BFS; Verts doubles as the queue. Rows are sorted, so discovery
	// order (and thus Verts) is deterministic.
	for head := 0; head < len(sc.Verts); head++ {
		x, d := sc.Verts[head], sc.Dists[head]
		if int(d) >= k {
			continue // horizon vertices do not expand
		}
		for _, y := range c.Row(x) {
			if !sc.seen(y) {
				sc.mark[y] = sc.epoch
				sc.dist[y] = d + 1
				sc.Verts = append(sc.Verts, y)
				sc.Dists = append(sc.Dists, d+1)
			}
		}
	}
	// Edge rule: {x, y} belongs to G_k(u) iff both endpoints are in the
	// view and min(dist) < k. Iterating only x with dist < k and
	// emitting on (x < y) or (dist[y] == k) yields each such edge
	// exactly once: pairs with both distances < k are claimed by the
	// smaller index; pairs touching the horizon are claimed by the
	// interior endpoint (the horizon endpoint never iterates).
	for idx := range sc.Verts {
		x, d := sc.Verts[idx], sc.Dists[idx]
		if int(d) >= k {
			continue
		}
		for _, y := range c.Row(x) {
			if !sc.seen(y) {
				continue
			}
			if y > x {
				sc.Edges = append(sc.Edges, [2]int32{x, y})
			} else if int(sc.dist[y]) == k {
				sc.Edges = append(sc.Edges, [2]int32{y, x})
			}
		}
	}
	return nil
}
