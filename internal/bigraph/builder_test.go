package bigraph_test

import (
	"math/rand"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestBuilderMatchesFromGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.RandomConnected(rng, 50, 0.1)
	b := bigraph.NewBuilder(g.N())
	each := func(fn func(u, v int)) {
		for _, e := range g.Edges() {
			fn(int(e.U), int(e.V))
		}
	}
	each(func(u, v int) { b.CountEdge(u, v) })
	if err := b.StartFill(); err != nil {
		t.Fatal(err)
	}
	each(func(u, v int) { b.AddEdge(u, v) })
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, g, c)
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := bigraph.NewBuilder(0)
	edges := [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {3, 1}, {1, 3}}
	for _, e := range edges {
		b.CountEdge(e[0], e[1])
	}
	if err := b.StartFill(); err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.M() != 2 {
		t.Fatalf("n=%d m=%d, want 4/2", c.N(), c.M())
	}
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 3) || c.HasEdge(2, 2) {
		t.Fatalf("wrong edge set after dedup")
	}
}

func TestBuilderEmpty(t *testing.T) {
	c, err := bigraph.NewBuilder(0).Finish()
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 0 || c.M() != 0 {
		t.Fatalf("n=%d m=%d, want 0/0", c.N(), c.M())
	}
	// All-isolated vertex space with no edges at all.
	c, err = bigraph.NewBuilder(5).Finish()
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 || c.M() != 0 {
		t.Fatalf("n=%d m=%d, want 5/0", c.N(), c.M())
	}
	if c.HasEdge(0, 1) || !c.HasVertex(4) || c.HasVertex(5) {
		t.Fatalf("isolated vertex space misbehaves")
	}
}

func TestBuilderMismatchedPasses(t *testing.T) {
	b := bigraph.NewBuilder(3)
	b.CountEdge(0, 1)
	b.CountEdge(1, 2)
	if err := b.StartFill(); err != nil {
		t.Fatal(err)
	}
	b.AddEdge(0, 1)
	// Second pass added fewer edges than counted.
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish should reject an underfilled builder")
	}

	b2 := bigraph.NewBuilder(3)
	b2.CountEdge(0, 1)
	if err := b2.StartFill(); err != nil {
		t.Fatal(err)
	}
	b2.AddEdge(0, 1)
	// More fills than counts must fail loudly, not scribble out of range.
	b2.AddEdge(1, 2)
	if _, err := b2.Finish(); err == nil {
		t.Fatal("Finish should reject an overfilled builder")
	}
}

func TestBuilderAsStore(t *testing.T) {
	g := gen.Grid(3, 4)
	c := bigraph.FromGraph(g)
	var st bigraph.Store = c
	if st.N() != g.N() || st.M() != g.M() {
		t.Fatalf("store size mismatch")
	}
	for _, u := range g.Vertices() {
		if st.Deg(u) != g.Deg(u) {
			t.Fatalf("deg(%d) mismatch", u)
		}
		var got []graph.Vertex
		st.EachAdj(u, func(w graph.Vertex) bool { got = append(got, w); return true })
		want := g.Adj(u)
		if len(got) != len(want) {
			t.Fatalf("adj(%d) length mismatch", u)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("adj(%d) order mismatch at %d: %d vs %d", u, i, got[i], want[i])
			}
		}
	}
	// Early-exit contract.
	calls := 0
	st.EachAdj(5, func(w graph.Vertex) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("EachAdj ignored early exit (%d calls)", calls)
	}
}
