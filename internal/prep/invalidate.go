package prep

import (
	"klocal/internal/bigraph"
	"klocal/internal/graph"
)

// This file is the churn-facing side of the view cache. A topology
// delta on edge {x, y} can change G_k(u) only for u within distance k
// of x or y (the locality theorem read as an invalidation bound —
// internal/churn computes that dirty set); every other cached view is
// still byte-identical on the new topology and must survive. Two
// entry points cover the two mutation disciplines:
//
//   - Invalidate evicts the dirty rows in place. Correct when the
//     preprocessor's own store reflects the new topology (a mutable
//     store, or no topology change at all — e.g. cache pressure).
//
//   - Derive builds a NEW preprocessor over the post-delta store that
//     adopts every surviving view and recomputes only the dirty ones
//     lazily. The receiver is left untouched, so in-flight routes keep
//     reading a consistent (old graph, old views) pair — the epoch
//     isolation klocald's PATCH /graph path relies on.

// Invalidate evicts exactly the cached views of the dirty vertices,
// from both cache levels, and returns how many resident views were
// actually dropped. Untouched views survive, including their Compact
// encodings. It is safe under concurrent At: routing that holds an
// evicted *View keeps a consistent immutable value, and the next At on
// a dirty vertex recomputes through the store.
func (p *Preprocessor) Invalidate(dirty []graph.Vertex) int {
	if len(dirty) == 0 {
		return 0
	}
	// Group per shard so each shard locks once per call, not per vertex.
	byShard := make(map[*prepShard][]graph.Vertex)
	for _, u := range dirty {
		sh := p.shardOf(u)
		byShard[sh] = append(byShard[sh], u)
	}
	dropped := 0
	for sh, us := range byShard {
		sh.mu.Lock()
		for _, u := range us {
			if _, ok := sh.live[u]; ok {
				delete(sh.live, u)
				sh.size.Add(-1)
				dropped++
			}
		}
		if m := sh.frozen.Load(); m != nil {
			hit := 0
			for _, u := range us {
				if _, ok := (*m)[u]; ok {
					hit++
				}
			}
			if hit > 0 {
				// The frozen map is immutable; publish a copy without
				// the dirty rows.
				next := make(map[graph.Vertex]*View, len(*m)-hit)
				for w, v := range *m {
					next[w] = v
				}
				for _, u := range us {
					if _, ok := next[u]; ok {
						delete(next, u)
						sh.size.Add(-1)
						dropped++
					}
				}
				sh.frozen.Store(&next)
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Derive returns a preprocessor bound to st — the post-delta topology —
// that adopts every cached view of p except those of dirty vertices.
// Cache tuning (shards, capacity, policy, locality) carries over; p is
// not modified and stays fully usable over its own store, so old-epoch
// readers and the derived new epoch never observe a torn
// (graph, views) pair. The adopted views are frozen, so warm hits on
// the new epoch are lock-free immediately.
func (p *Preprocessor) Derive(st bigraph.Store, dirty []graph.Vertex) *Preprocessor {
	np := NewPreprocessorStoreOpts(st, p.k, p.pol, CacheOptions{
		Shards:   len(p.shards),
		Capacity: p.capacity,
	})
	skip := make(map[graph.Vertex]struct{}, len(dirty))
	for _, u := range dirty {
		skip[u] = struct{}{}
	}
	for i := range p.shards {
		sh := &p.shards[i]
		nsh := &np.shards[i] // same shard count ⇒ same vertex→shard map
		adopted := make(map[graph.Vertex]*View)
		sh.mu.Lock()
		if m := sh.frozen.Load(); m != nil {
			for w, v := range *m {
				if _, bad := skip[w]; !bad {
					adopted[w] = v
				}
			}
		}
		for w, v := range sh.live {
			if _, bad := skip[w]; !bad {
				adopted[w] = v
			}
		}
		sh.mu.Unlock()
		if len(adopted) == 0 {
			continue
		}
		if np.capacity > 0 {
			// Bounded caches keep everything in live to preserve the
			// eviction semantics; adoption can never exceed the old
			// residency, which respected the same capacity.
			nsh.live = adopted
		} else {
			nsh.frozen.Store(&adopted)
		}
		nsh.size.Store(int64(len(adopted)))
	}
	return np
}
