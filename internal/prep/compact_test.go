package prep

import (
	"math/rand"
	"testing"

	"klocal/internal/graph"
)

func randomPrepGraph(r *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder()
	for v := 1; v < n; v++ {
		b.AddEdge(graph.Vertex(v), graph.Vertex(r.Intn(v)))
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

// TestViewCompactMatchesMaps pins the view's int-indexed encodings to
// the map-based fields they mirror: next hops, routing distances,
// component membership and constraint sets.
func TestViewCompactMatchesMaps(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g := randomPrepGraph(r, 2+r.Intn(28))
		vs := g.Vertices()
		u := vs[r.Intn(len(vs))]
		k := 1 + r.Intn(4)
		v := Preprocess(g, u, k)

		if v.C.Raw == nil || v.C.Routing == nil {
			t.Fatal("compact encodings missing")
		}
		for _, tgt := range v.C.Raw.Verts {
			want := v.Raw.G.NextHopToward(u, tgt)
			if got := v.C.NextHopFromCenter(tgt); got != want {
				t.Fatalf("NextHopFromCenter(%d) = %d want %d (u=%d k=%d)", tgt, got, want, u, k)
			}
		}
		if got := v.C.NextHopFromCenter(graph.Vertex(1 << 40)); got != graph.NoVertex {
			t.Fatalf("NextHopFromCenter outside view = %d want NoVertex", got)
		}

		rcv := v.C.Routing
		if rcv.NV() != len(v.RoutingDist) {
			t.Fatalf("compact routing has %d vertices want %d", rcv.NV(), len(v.RoutingDist))
		}
		for li, w := range rcv.Verts {
			if int(rcv.Dist[li]) != v.RoutingDist[w] {
				t.Fatalf("routing dist[%d] = %d want %d", w, rcv.Dist[li], v.RoutingDist[w])
			}
		}

		if len(v.C.Comps) != len(v.Comps) {
			t.Fatalf("%d compact comps want %d", len(v.C.Comps), len(v.Comps))
		}
		for i, mc := range v.Comps {
			cc := &v.C.Comps[i]
			if len(cc.Verts) != len(mc.Vertices) || len(cc.Roots) != len(mc.Roots) || len(cc.Constraints) != len(mc.ConstraintVertices) {
				t.Fatalf("comp %d shape mismatch", i)
			}
			for j, li := range cc.Verts {
				if rcv.Verts[li] != mc.Vertices[j] {
					t.Fatalf("comp %d vertex %d: %d want %d", i, j, rcv.Verts[li], mc.Vertices[j])
				}
				if v.C.CompIdxOf(li) != int32(i) {
					t.Fatalf("CompIdxOf(%d) = %d want %d", li, v.C.CompIdxOf(li), i)
				}
			}
			for j, li := range cc.Roots {
				if rcv.Verts[li] != mc.Roots[j] {
					t.Fatalf("comp %d root %d mismatch", i, j)
				}
			}
			for j, li := range cc.Constraints {
				if rcv.Verts[li] != mc.ConstraintVertices[j] {
					t.Fatalf("comp %d constraint %d mismatch", i, j)
				}
			}
			if cc.Active != mc.Active || cc.Independent != mc.Independent || cc.Constrained != mc.Constrained {
				t.Fatalf("comp %d flags mismatch", i)
			}
		}
		if v.C.CompIdxOf(rcv.CenterIdx) != -1 {
			t.Fatal("centre must have no component")
		}

		for _, e := range v.Raw.G.Edges() {
			want := false
			for _, d := range v.Dormant {
				if d == e {
					want = true
					break
				}
			}
			if v.IsDormant(e) != want {
				t.Fatalf("IsDormant(%v) = %v want %v", e, v.IsDormant(e), want)
			}
			if v.IsDormant(graph.Edge{U: e.V, V: e.U}) != want {
				t.Fatalf("IsDormant must normalize orientation for %v", e)
			}
		}
	}
}
