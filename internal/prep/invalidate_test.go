package prep

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"klocal/internal/churn"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

// sameViewData compares the routing-relevant content of two views.
func sameViewData(a, b *View) bool {
	return a.Center == b.Center && a.K == b.K &&
		a.Raw.G.Equal(b.Raw.G) &&
		reflect.DeepEqual(a.Dormant, b.Dormant) &&
		a.Routing.Equal(b.Routing) &&
		reflect.DeepEqual(a.RoutingDist, b.RoutingDist) &&
		reflect.DeepEqual(a.ActiveRoots, b.ActiveRoots)
}

func TestInvalidateExact(t *testing.T) {
	g := gen.Grid(8, 8)
	k := 2
	p := NewPreprocessor(g, k)
	p.Prewarm(4)
	total := p.Stats().Size
	if total != int64(g.N()) {
		t.Fatalf("prewarm cached %d views, want %d", total, g.N())
	}
	before := make(map[graph.Vertex]*View)
	g.EachVertex(func(u graph.Vertex) bool {
		before[u] = p.At(u)
		return true
	})

	e := g.Edges()[g.M()/3]
	_, dirty, err := churn.Apply(g, churn.Delta{Op: churn.RemoveEdge, U: e.U, V: e.V}, k)
	if err != nil {
		t.Fatal(err)
	}
	dropped := p.Invalidate(dirty)
	if dropped != len(dirty) {
		t.Fatalf("Invalidate dropped %d views, want %d (all dirty were resident)", dropped, len(dirty))
	}
	if got := p.Stats().Size; got != total-int64(dropped) {
		t.Fatalf("Size = %d after invalidate, want %d", got, total-int64(dropped))
	}

	isDirty := make(map[graph.Vertex]bool)
	for _, u := range dirty {
		isDirty[u] = true
	}
	g.EachVertex(func(u graph.Vertex) bool {
		v := p.At(u)
		if isDirty[u] {
			if v == before[u] {
				t.Fatalf("dirty vertex %d still served its evicted view", u)
			}
		} else if v != before[u] {
			t.Fatalf("clean vertex %d lost its cached view", u)
		}
		return true
	})

	// Idempotent: everything is resident again, a second invalidation of
	// the same set drops the same count.
	if again := p.Invalidate(dirty); again != dropped {
		t.Fatalf("second Invalidate dropped %d, want %d", again, dropped)
	}
	if none := p.Invalidate(nil); none != 0 {
		t.Fatalf("Invalidate(nil) dropped %d", none)
	}
}

func TestDeriveEpochIsolation(t *testing.T) {
	g := gen.Grid(7, 7)
	k := 2
	p := NewPreprocessor(g, k)
	p.Prewarm(4)

	d := churn.Delta{Op: churn.RemoveEdge, U: g.Edges()[0].U, V: g.Edges()[0].V}
	post, dirty, err := churn.Apply(g, d, k)
	if err != nil {
		t.Fatal(err)
	}
	np := p.Derive(post, dirty)
	if np.Graph() != post {
		t.Fatal("derived preprocessor not bound to the post graph")
	}
	if np.K() != k || np.Policy() != p.Policy() {
		t.Fatal("derived preprocessor lost tuning")
	}
	if got, want := np.Stats().Size, int64(g.N()-len(dirty)); got != want {
		t.Fatalf("derived cache adopted %d views, want %d", got, want)
	}

	isDirty := make(map[graph.Vertex]bool)
	for _, u := range dirty {
		isDirty[u] = true
	}
	post.EachVertex(func(u graph.Vertex) bool {
		nv := np.At(u)
		if isDirty[u] {
			if nv == p.At(u) {
				t.Fatalf("dirty vertex %d shares a view across epochs", u)
			}
			if want := PreprocessPolicy(post, u, k, p.Policy()); !sameViewData(nv, want) {
				t.Fatalf("derived view at dirty vertex %d differs from from-scratch view", u)
			}
		} else if nv != p.At(u) {
			t.Fatalf("clean vertex %d did not adopt the old epoch's view", u)
		}
		return true
	})

	// The old epoch is untouched: every old view still matches a fresh
	// computation over the OLD graph.
	g.EachVertex(func(u graph.Vertex) bool {
		if !sameViewData(p.At(u), PreprocessPolicy(g, u, k, p.Policy())) {
			t.Fatalf("old epoch view at %d corrupted by Derive", u)
		}
		return true
	})
}

func TestDeriveBoundedCache(t *testing.T) {
	g := gen.Cycle(24)
	p := NewPreprocessorOpts(g, 2, PolicyMinRank, CacheOptions{Capacity: 10})
	p.Prewarm(2)
	d := churn.Delta{Op: churn.RemoveEdge, U: 0, V: 1}
	post, dirty, err := churn.Apply(g, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	np := p.Derive(post, dirty)
	if got := np.Stats().Size; got > 10 {
		t.Fatalf("derived bounded cache holds %d views, capacity 10", got)
	}
	// The bounded path must keep adopted views in the evictable live
	// level — a frozen map would exempt them from capacity replacement.
	for i := range np.shards {
		if np.shards[i].frozen.Load() != nil {
			t.Fatal("bounded derived cache froze adopted views")
		}
	}
	// Filling the cache further stays within capacity plus the seed
	// cache's per-shard replacement slack (an insert into a shard whose
	// live map is empty cannot evict).
	post.EachVertex(func(u graph.Vertex) bool {
		np.At(u)
		return true
	})
	if got := np.Stats().Size; got > 10+int64(len(np.shards)) {
		t.Fatalf("bounded cache grew to %d views after adoption", got)
	}
}

// TestConcurrentRoutingDuringInvalidate drives At from several
// goroutines while the main goroutine repeatedly invalidates random
// dirty sets — the -race witness that eviction never tears a view out
// from under a reader.
func TestConcurrentRoutingDuringInvalidate(t *testing.T) {
	g := gen.Grid(6, 6)
	k := 2
	p := NewPreprocessor(g, k)
	vs := g.Vertices()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := vs[rng.Intn(len(vs))]
				v := p.At(u)
				if v == nil || v.Center != u || v.K != k {
					t.Errorf("At(%d) returned inconsistent view", u)
					return
				}
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		e := g.Edges()[rng.Intn(g.M())]
		_, dirty, err := churn.Apply(g, churn.Delta{Op: churn.RemoveEdge, U: e.U, V: e.V}, k)
		if err != nil {
			t.Fatal(err)
		}
		p.Invalidate(dirty)
	}
	close(stop)
	wg.Wait()
}
