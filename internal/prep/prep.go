// Package prep implements the paper's k-local preprocessing step
// (Section 5.1): identifying dormant edges on local cycles, constructing
// the routing subgraph G'_k(u), and the global consistent-edge predicate
// used by Lemmas 2, 3 and 5.
//
// Dormancy rule. The paper classifies "the edge of minimum rank on every
// local cycle of u" as dormant. A cycle of length at most 2k through any
// of its own vertices is entirely contained in that vertex's
// k-neighbourhood, so the rule is equivalent, edge by edge, to: an edge
// e = {a,b} of G_k(u) is dormant iff G_k(u) contains a path from a to b of
// length at most 2k−1 using only edges of rank greater than rank(e). We
// apply this criterion to every short cycle visible in G_k(u), a superset
// of the cycles through u. For edges adjacent to u the two readings agree
// exactly (any short cycle through an edge at u passes through u), which
// is all the forwarding rules rely on (Lemma 2); for deeper edges our
// reading removes only globally inconsistent edges, preserving Lemmas 3
// and 5. DESIGN.md discusses the substitution.
package prep

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// Policy selects which edge of each local cycle is classified dormant.
// The paper prescribes the minimum-rank edge; Section 6.1 suggests
// exploring other selections to reduce Algorithm 1's dilation, which the
// maximum-rank policy realizes as an ablation. Any globally canonical
// selection preserves the consistency lemmas.
type Policy int

const (
	// PolicyMinRank removes the minimum-rank edge of every local cycle
	// (the paper's rule).
	PolicyMinRank Policy = iota + 1
	// PolicyMaxRank removes the maximum-rank edge instead (the
	// Section 6.1 ablation).
	PolicyMaxRank
)

// String names the policy for experiment output.
func (p Policy) String() string {
	switch p {
	case PolicyMinRank:
		return "min-rank"
	case PolicyMaxRank:
		return "max-rank"
	default:
		return "unknown"
	}
}

// View is the preprocessed local view at a node: the raw k-neighbourhood
// G_k(u), the locally identified dormant edges, and the routing subgraph
// G'_k(u) with its classified components.
type View struct {
	Center graph.Vertex
	K      int

	// Raw is the unprocessed k-neighbourhood G_k(u).
	Raw *nbhd.Neighborhood
	// Dormant lists the edges of G_k(u) classified dormant at this node,
	// in rank order.
	Dormant []graph.Edge
	// Routing is G'_k(u): the dormant-free neighbourhood re-restricted to
	// paths of length at most k rooted at the centre.
	Routing *graph.Graph
	// RoutingDist maps each vertex of Routing to its distance from the
	// centre along routing edges.
	RoutingDist map[graph.Vertex]int
	// Comps are the local components of G'_k(u), classified with routing
	// distances, ordered by lowest root label.
	Comps []*nbhd.Component
	// ActiveRoots lists the active neighbours of the centre (roots of
	// active components) in rank order. Its length is the centre's active
	// degree.
	ActiveRoots []graph.Vertex
	// C holds the int-indexed compact encodings of the same data, read by
	// the routing decision paths without rebuilding maps.
	C Compact
}

// Compact is the int-indexed face of a preprocessed view: flat arrays
// over local indices that the per-hop decision closures read with binary
// searches and array loads only (DESIGN.md §14). It is built once at
// preprocessing time and immutable afterwards, so concurrent routing
// workers share it freely.
type Compact struct {
	// Raw is the compact encoding of G_k(u).
	Raw *nbhd.CompactView
	// NextHop maps each Raw local index t to the canonical next hop from
	// the centre toward t inside G_k(u) (the lowest-labelled neighbour of
	// the centre on a shortest path), or graph.NoVertex when t is the
	// centre itself. Precomputing it turns the per-hop
	// Raw.G.NextHopToward BFS into one binary search and a load.
	NextHop []graph.Vertex
	// Routing is the compact encoding of G'_k(u); its Dist column is the
	// compact twin of RoutingDist.
	Routing *nbhd.CompactView
	// Comps are the classified components of G'_k(u) in local index
	// space, heap-owned, ordered by lowest root label (parallel to
	// View.Comps).
	Comps []nbhd.CompactComponent
	// CompID maps each Routing local index to its component's position in
	// Comps, or -1 for the centre.
	CompID []int32
}

// NextHopFromCenter returns the canonical next hop from the centre
// toward t inside G_k(u), or graph.NoVertex when t is outside the raw
// view or is the centre — exactly Raw.G.NextHopToward(centre, t).
//
//klocal:hotpath
func (c *Compact) NextHopFromCenter(t graph.Vertex) graph.Vertex {
	ti, ok := c.Raw.Index(t)
	if !ok {
		return graph.NoVertex
	}
	return c.NextHop[ti]
}

// CompIdxOf returns the position in Comps of the component containing
// routing local index li, or -1 for the centre.
//
//klocal:hotpath
func (c *Compact) CompIdxOf(li int32) int32 { return c.CompID[li] }

// Preprocess computes the view at u for locality k on network g with the
// paper's minimum-rank dormancy policy.
func Preprocess(g *graph.Graph, u graph.Vertex, k int) *View {
	return PreprocessPolicy(g, u, k, PolicyMinRank)
}

// PreprocessPolicy computes the view under an explicit dormancy policy.
func PreprocessPolicy(g *graph.Graph, u graph.Vertex, k int, pol Policy) *View {
	return preprocessRaw(nbhd.Extract(g, u, k), u, k, pol)
}

// csrScratch pools the BFS scratch buffers of the CSR extraction fast
// path across preprocessing calls.
var csrScratch = sync.Pool{New: func() any { return bigraph.NewScratch() }}

// PreprocessStore computes the view reading topology through a
// bigraph.Store. For a *graph.Graph store it is PreprocessPolicy exactly;
// for a *bigraph.CSR it extracts G_k(u) through the zero-alloc CSR walk
// before handing the (small) view to the dormancy machinery.
func PreprocessStore(st bigraph.Store, u graph.Vertex, k int, pol Policy) *View {
	switch s := st.(type) {
	case *graph.Graph:
		return PreprocessPolicy(s, u, k, pol)
	case *bigraph.CSR:
		sc := csrScratch.Get().(*bigraph.Scratch)
		raw, err := nbhd.ExtractCSR(s, u, k, sc)
		csrScratch.Put(sc)
		if err == nil {
			return preprocessRaw(raw, u, k, pol)
		}
		// Absent centre or degenerate k: the generic path yields the
		// same empty view Extract would.
		return preprocessRaw(nbhd.ExtractStore(st, u, k), u, k, pol)
	default:
		return preprocessRaw(nbhd.ExtractStore(st, u, k), u, k, pol)
	}
}

// preprocessRaw runs dormancy classification and component analysis over
// an already-extracted raw neighbourhood — the shared body of the graph-
// and store-backed entry points. Everything past the G_k(u) extraction
// operates on the small view graph, never the full network.
func preprocessRaw(raw *nbhd.Neighborhood, u graph.Vertex, k int, pol Policy) *View {
	v := &View{
		Center: u,
		K:      k,
		Raw:    raw,
	}
	for _, e := range raw.G.Edges() {
		if dormantInView(raw.G, e, k, pol) {
			// Edges() is rank-ordered, so Dormant stays sorted and
			// IsDormant can binary-search it.
			v.Dormant = append(v.Dormant, e)
		}
	}
	pruned := raw.G.WithoutEdges(v.Dormant)
	inner := nbhd.Extract(pruned, u, k)
	v.Routing = inner.G
	v.RoutingDist = inner.Dist
	v.Comps = nbhd.ClassifyView(v.Routing, u, k)
	for _, c := range v.Comps {
		if c.Active {
			v.ActiveRoots = append(v.ActiveRoots, c.Roots...)
		}
	}
	sort.Slice(v.ActiveRoots, func(i, j int) bool { return v.ActiveRoots[i] < v.ActiveRoots[j] })
	v.buildCompact()
	return v
}

// compactScratch pools the compact-encoding working memory across
// preprocessing calls.
var compactScratch = sync.Pool{New: func() any { return nbhd.NewScratch() }}

// buildCompact derives the view's int-indexed encodings. Runs once at
// preprocessing time; the per-target next-hop BFS sweep is the same cost
// class as the dormancy classification that precedes it, and it deletes
// a full BFS from every subsequent hop through this node.
func (v *View) buildCompact() {
	sc := compactScratch.Get().(*nbhd.Scratch)
	defer compactScratch.Put(sc)

	sc.FromView(v.Raw.G, v.Center, v.K)
	v.C.Raw = sc.View.Clone()
	v.C.NextHop = make([]graph.Vertex, sc.View.NV())
	for t := range v.C.NextHop {
		hop := sc.NextHopToward(sc.View.CenterIdx, int32(t))
		if hop < 0 {
			v.C.NextHop[t] = graph.NoVertex
		} else {
			v.C.NextHop[t] = sc.View.Verts[hop]
		}
	}

	sc.FromView(v.Routing, v.Center, v.K)
	sc.Classify()
	v.C.Routing = sc.View.Clone()
	v.C.Comps = make([]nbhd.CompactComponent, len(sc.Comps))
	v.C.CompID = make([]int32, sc.View.NV())
	for i := range v.C.CompID {
		v.C.CompID[i] = -1
	}
	for i := range sc.Comps {
		cc := &sc.Comps[i]
		v.C.Comps[i] = nbhd.CompactComponent{
			Verts:       append([]int32(nil), cc.Verts...),
			Roots:       append([]int32(nil), cc.Roots...),
			Constraints: append([]int32(nil), cc.Constraints...),
			Active:      cc.Active,
			Independent: cc.Independent,
			Constrained: cc.Constrained,
		}
		for _, li := range cc.Verts {
			v.C.CompID[li] = int32(i)
		}
	}
}

// dormantInView reports whether e is the policy-extreme edge of some
// cycle of length at most 2k inside view: equivalently, whether the view
// has a path between e's endpoints of length at most 2k−1 using only
// edges beyond e in the policy's order.
func dormantInView(view *graph.Graph, e graph.Edge, k int, pol Policy) bool {
	allow := func(f graph.Edge) bool { return e.Less(f) }
	if pol == PolicyMaxRank {
		allow = func(f graph.Edge) bool { return f.Less(e) }
	}
	return view.HasPathAvoiding(e.U, e.V, 2*k-1, allow)
}

// IsDormant reports whether the view classified e as dormant, by binary
// search in the rank-ordered Dormant list (no per-view edge map).
//
//klocal:hotpath
func (v *View) IsDormant(e graph.Edge) bool {
	e = graph.NewEdge(e.U, e.V)
	lo, hi := 0, len(v.Dormant)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.Dormant[mid].Less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(v.Dormant) && v.Dormant[lo] == e
}

// ActiveDegree returns the number of active neighbours of the centre
// (Propositions 1–3 bound it by 3, 2 and 1 at k ≥ n/4, n/3, n/2 given the
// matching algorithm's preprocessing).
func (v *View) ActiveDegree() int { return len(v.ActiveRoots) }

// CompOf returns the local component of G'_k(u) containing w, or nil if w
// is the centre or outside the routing view.
func (v *View) CompOf(w graph.Vertex) *nbhd.Component {
	for _, c := range v.Comps {
		if c.Has(w) {
			return c
		}
	}
	return nil
}

// CompRootedAt returns the component having w as a root, or nil.
func (v *View) CompRootedAt(w graph.Vertex) *nbhd.Component {
	for _, c := range v.Comps {
		for _, r := range c.Roots {
			if r == w {
				return c
			}
		}
	}
	return nil
}

// CacheOptions tune the preprocessor's view cache. The zero value means
// defaults: DefaultShards lock shards, unbounded capacity.
type CacheOptions struct {
	// Shards is the number of independently locked cache shards; views
	// hash across shards by vertex so concurrent routing workers rarely
	// contend. Rounded up to a power of two. 0 means DefaultShards.
	Shards int
	// Capacity bounds the total number of cached views across all
	// shards; when a shard fills, an arbitrary resident view is evicted
	// (random replacement — adequate because routing workloads revisit
	// sources far more often than they scan). 0 means unbounded.
	Capacity int
}

// DefaultShards is the shard count used when CacheOptions.Shards is 0.
const DefaultShards = 8

// CacheStats is a point-in-time snapshot of preprocessor cache activity.
type CacheStats struct {
	// Hits counts At calls served from the cache.
	Hits int64
	// Misses counts At calls that ran preprocessing. Concurrent misses
	// on the same vertex each count (both compute; one insert wins), so
	// Misses can slightly exceed the number of distinct vertices.
	Misses int64
	// Evictions counts views discarded to respect Capacity.
	Evictions int64
	// Size is the number of views currently resident.
	Size int64
}

// Delta returns the activity between two snapshots of the same
// preprocessor: the counting fields subtract (s − prev) and Size keeps
// s's absolute value. Dividing a Delta's counts by the scrape interval
// yields rate gauges (hits/s, misses/s, evictions/s) for live
// observability. Counters from a different (e.g. freshly swapped)
// preprocessor would go negative; they clamp to zero so a graph
// hot-swap never reports negative rates.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	d := CacheStats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Size:      s.Size,
	}
	if d.Hits < 0 {
		d.Hits = 0
	}
	if d.Misses < 0 {
		d.Misses = 0
	}
	if d.Evictions < 0 {
		d.Evictions = 0
	}
	return d
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// prepShard is one lock-striped portion of the view cache.
//
// Reads are two-level: frozen is an immutable map published through an
// atomic pointer — warm hits resolve against it with no lock and no
// shared-cacheline write beyond this shard's own padded hit counter —
// and live holds entries inserted since the last freeze, guarded by mu.
// When live outgrows frozen, the two merge into a fresh frozen map
// (amortized O(1) per insert) so a prewarmed cache serves every hit
// lock-free. Bounded caches (Capacity > 0) skip the frozen level and
// keep everything in live, preserving the exact eviction semantics.
//
// The counters live in the shard and the struct is padded past a cache
// line, so hit accounting from different workers never false-shares —
// the previous design's four global atomics serialized every warm hit
// in the pool.
type prepShard struct {
	frozen atomic.Pointer[map[graph.Vertex]*View]
	mu     sync.Mutex
	live   map[graph.Vertex]*View

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	size      atomic.Int64

	_ [64]byte // pad: neighbouring shards' counters must not share a line
}

// Preprocessor caches per-node views for a fixed network and locality.
// The preprocessing step "need not be repeated unless the network topology
// changes", so views are computed once per node and shared. It is safe
// for concurrent use: the cache is sharded by vertex, views are immutable
// after construction, and a view is published only via the shard lock.
//
// Under concurrent misses for the same vertex both callers compute the
// view and the first insert wins; the duplicate work is bounded and
// lock-free, which beats serializing whole shards behind preprocessing
// (BFS-heavy) critical sections.
type Preprocessor struct {
	st  bigraph.Store
	g   *graph.Graph // non-nil only when st is a materialized *graph.Graph
	k   int
	pol Policy

	shards   []prepShard
	mask     uint64
	capacity int // per whole cache; 0 = unbounded
}

// NewPreprocessor returns a caching preprocessor for network g at
// locality k with the paper's minimum-rank policy.
func NewPreprocessor(g *graph.Graph, k int) *Preprocessor {
	return NewPreprocessorPolicy(g, k, PolicyMinRank)
}

// NewPreprocessorPolicy returns a caching preprocessor under an explicit
// dormancy policy.
func NewPreprocessorPolicy(g *graph.Graph, k int, pol Policy) *Preprocessor {
	return NewPreprocessorOpts(g, k, pol, CacheOptions{})
}

// NewPreprocessorOpts returns a caching preprocessor with explicit cache
// tuning — the traffic engine's entry point.
func NewPreprocessorOpts(g *graph.Graph, k int, pol Policy, opts CacheOptions) *Preprocessor {
	return NewPreprocessorStoreOpts(g, k, pol, opts)
}

// NewPreprocessorStore returns a caching preprocessor over any
// bigraph.Store (mmap'd CSR files included) with default cache options.
func NewPreprocessorStore(st bigraph.Store, k int, pol Policy) *Preprocessor {
	return NewPreprocessorStoreOpts(st, k, pol, CacheOptions{})
}

// NewPreprocessorStoreOpts is NewPreprocessorOpts over any bigraph.Store.
func NewPreprocessorStoreOpts(st bigraph.Store, k int, pol Policy, opts CacheOptions) *Preprocessor {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so vertex hashing is a mask.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	p := &Preprocessor{
		st:       st,
		k:        k,
		pol:      pol,
		shards:   make([]prepShard, shards),
		mask:     uint64(shards - 1),
		capacity: opts.Capacity,
	}
	if g, ok := st.(*graph.Graph); ok {
		p.g = g
	}
	for i := range p.shards {
		p.shards[i].live = make(map[graph.Vertex]*View)
	}
	return p
}

// K returns the locality parameter.
func (p *Preprocessor) K() int { return p.k }

// Graph returns the underlying network as a *graph.Graph, or nil for a
// store-backed preprocessor (use Store for the universal handle).
func (p *Preprocessor) Graph() *graph.Graph { return p.g }

// Store returns the underlying network store (never nil).
func (p *Preprocessor) Store() bigraph.Store { return p.st }

// Policy returns the dormancy policy.
func (p *Preprocessor) Policy() Policy { return p.pol }

// Stats returns a snapshot of cache activity, summed over the shards.
func (p *Preprocessor) Stats() CacheStats {
	var s CacheStats
	for i := range p.shards {
		sh := &p.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
		s.Size += sh.size.Load()
	}
	return s
}

// totalSize sums resident views across shards (the capacity check).
func (p *Preprocessor) totalSize() int64 {
	var n int64
	for i := range p.shards {
		n += p.shards[i].size.Load()
	}
	return n
}

// shardOf picks the lock shard for u (Fibonacci hashing spreads the
// typically consecutive vertex labels).
func (p *Preprocessor) shardOf(u graph.Vertex) *prepShard {
	h := uint64(u) * 0x9e3779b97f4a7c15
	return &p.shards[(h>>32)&p.mask]
}

// At returns the (cached) view at u. Warm hits on an unbounded cache
// resolve against the shard's frozen map: one atomic load, no lock, no
// cross-shard cacheline traffic.
//
//klocal:hotpath
func (p *Preprocessor) At(u graph.Vertex) *View {
	sh := p.shardOf(u)
	if m := sh.frozen.Load(); m != nil {
		if v, ok := (*m)[u]; ok {
			sh.hits.Add(1)
			return v
		}
	}
	sh.mu.Lock()
	if v, ok := sh.live[u]; ok {
		sh.mu.Unlock()
		sh.hits.Add(1)
		return v
	}
	sh.mu.Unlock()
	sh.misses.Add(1)
	v := PreprocessStore(p.st, u, p.k, p.pol)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.live[u]; ok {
		// A concurrent miss published first; keep its view so every
		// caller shares one instance.
		return cur
	}
	if m := sh.frozen.Load(); m != nil {
		// A concurrent freeze may have moved the winning entry out of
		// live; freezes happen under mu, so this read is stable.
		if cur, ok := (*m)[u]; ok {
			return cur
		}
	}
	if p.capacity > 0 && p.totalSize() >= int64(p.capacity) {
		// Random replacement inside this shard (map iteration order).
		for w := range sh.live {
			delete(sh.live, w)
			sh.size.Add(-1)
			sh.evictions.Add(1)
			break
		}
	}
	sh.live[u] = v
	sh.size.Add(1)
	if p.capacity == 0 {
		sh.maybeFreezeLocked(false)
	}
	return v
}

// maybeFreezeLocked merges live into a fresh frozen map when live has
// caught up with frozen (or unconditionally when force is set), then
// resets live. Doubling-style growth keeps the merge cost amortized O(1)
// per insert. Caller holds sh.mu.
func (sh *prepShard) maybeFreezeLocked(force bool) {
	const freezeMin = 32
	var frozen map[graph.Vertex]*View
	if m := sh.frozen.Load(); m != nil {
		frozen = *m
	}
	if !force && (len(sh.live) < freezeMin || len(sh.live) < len(frozen)) {
		return
	}
	if len(sh.live) == 0 {
		return
	}
	merged := make(map[graph.Vertex]*View, len(frozen)+len(sh.live))
	for w, v := range frozen {
		merged[w] = v
	}
	for w, v := range sh.live {
		merged[w] = v
	}
	sh.frozen.Store(&merged)
	sh.live = make(map[graph.Vertex]*View)
}

// Prewarm computes and caches the view of every vertex using `workers`
// goroutines (GOMAXPROCS when ≤ 0), so later routing never pays the
// preprocessing latency. With a bounded cache smaller than the vertex
// count, prewarming fills the cache and stops early.
func (p *Preprocessor) Prewarm(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	limit := p.st.N()
	if p.capacity > 0 && limit > p.capacity {
		limit = p.capacity
	}
	if limit == 0 {
		return
	}
	vs := make([]graph.Vertex, 0, limit)
	p.st.EachVertex(func(v graph.Vertex) bool {
		vs = append(vs, v)
		return len(vs) < limit
	})
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(vs) {
					return
				}
				p.At(vs[i])
			}
		}()
	}
	wg.Wait()
	if p.capacity == 0 {
		// Freeze the remainder so a prewarmed cache serves every
		// subsequent hit lock-free.
		for i := range p.shards {
			sh := &p.shards[i]
			sh.mu.Lock()
			sh.maybeFreezeLocked(true)
			sh.mu.Unlock()
		}
	}
}

// ConsistentEdges returns the globally consistent edges of g at locality
// k: edges that no node classifies dormant. By Lemma 3 the consistent
// subgraph connects every vertex pair; by Lemma 5 it has girth at least
// 2k+1.
func ConsistentEdges(g *graph.Graph, k int) []graph.Edge {
	var out []graph.Edge
	for _, e := range g.Edges() {
		inconsistent := g.HasPathAvoiding(e.U, e.V, 2*k-1, func(f graph.Edge) bool {
			return e.Less(f)
		})
		if !inconsistent {
			out = append(out, e)
		}
	}
	return out
}

// ConsistentSubgraph returns g restricted to its consistent edges (all
// vertices kept).
func ConsistentSubgraph(g *graph.Graph, k int) *graph.Graph {
	keep := make(map[graph.Edge]bool)
	for _, e := range ConsistentEdges(g, k) {
		keep[e] = true
	}
	return g.FilterEdges(func(e graph.Edge) bool { return keep[e] })
}
