// Package prep implements the paper's k-local preprocessing step
// (Section 5.1): identifying dormant edges on local cycles, constructing
// the routing subgraph G'_k(u), and the global consistent-edge predicate
// used by Lemmas 2, 3 and 5.
//
// Dormancy rule. The paper classifies "the edge of minimum rank on every
// local cycle of u" as dormant. A cycle of length at most 2k through any
// of its own vertices is entirely contained in that vertex's
// k-neighbourhood, so the rule is equivalent, edge by edge, to: an edge
// e = {a,b} of G_k(u) is dormant iff G_k(u) contains a path from a to b of
// length at most 2k−1 using only edges of rank greater than rank(e). We
// apply this criterion to every short cycle visible in G_k(u), a superset
// of the cycles through u. For edges adjacent to u the two readings agree
// exactly (any short cycle through an edge at u passes through u), which
// is all the forwarding rules rely on (Lemma 2); for deeper edges our
// reading removes only globally inconsistent edges, preserving Lemmas 3
// and 5. DESIGN.md discusses the substitution.
package prep

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
	"klocal/internal/nbhd"
)

// Policy selects which edge of each local cycle is classified dormant.
// The paper prescribes the minimum-rank edge; Section 6.1 suggests
// exploring other selections to reduce Algorithm 1's dilation, which the
// maximum-rank policy realizes as an ablation. Any globally canonical
// selection preserves the consistency lemmas.
type Policy int

const (
	// PolicyMinRank removes the minimum-rank edge of every local cycle
	// (the paper's rule).
	PolicyMinRank Policy = iota + 1
	// PolicyMaxRank removes the maximum-rank edge instead (the
	// Section 6.1 ablation).
	PolicyMaxRank
)

// String names the policy for experiment output.
func (p Policy) String() string {
	switch p {
	case PolicyMinRank:
		return "min-rank"
	case PolicyMaxRank:
		return "max-rank"
	default:
		return "unknown"
	}
}

// View is the preprocessed local view at a node: the raw k-neighbourhood
// G_k(u), the locally identified dormant edges, and the routing subgraph
// G'_k(u) with its classified components.
type View struct {
	Center graph.Vertex
	K      int

	// Raw is the unprocessed k-neighbourhood G_k(u).
	Raw *nbhd.Neighborhood
	// Dormant lists the edges of G_k(u) classified dormant at this node,
	// in rank order.
	Dormant []graph.Edge
	// Routing is G'_k(u): the dormant-free neighbourhood re-restricted to
	// paths of length at most k rooted at the centre.
	Routing *graph.Graph
	// RoutingDist maps each vertex of Routing to its distance from the
	// centre along routing edges.
	RoutingDist map[graph.Vertex]int
	// Comps are the local components of G'_k(u), classified with routing
	// distances, ordered by lowest root label.
	Comps []*nbhd.Component
	// ActiveRoots lists the active neighbours of the centre (roots of
	// active components) in rank order. Its length is the centre's active
	// degree.
	ActiveRoots []graph.Vertex

	dormantSet map[graph.Edge]bool
}

// Preprocess computes the view at u for locality k on network g with the
// paper's minimum-rank dormancy policy.
func Preprocess(g *graph.Graph, u graph.Vertex, k int) *View {
	return PreprocessPolicy(g, u, k, PolicyMinRank)
}

// PreprocessPolicy computes the view under an explicit dormancy policy.
func PreprocessPolicy(g *graph.Graph, u graph.Vertex, k int, pol Policy) *View {
	return preprocessRaw(nbhd.Extract(g, u, k), u, k, pol)
}

// csrScratch pools the BFS scratch buffers of the CSR extraction fast
// path across preprocessing calls.
var csrScratch = sync.Pool{New: func() any { return bigraph.NewScratch() }}

// PreprocessStore computes the view reading topology through a
// bigraph.Store. For a *graph.Graph store it is PreprocessPolicy exactly;
// for a *bigraph.CSR it extracts G_k(u) through the zero-alloc CSR walk
// before handing the (small) view to the dormancy machinery.
func PreprocessStore(st bigraph.Store, u graph.Vertex, k int, pol Policy) *View {
	switch s := st.(type) {
	case *graph.Graph:
		return PreprocessPolicy(s, u, k, pol)
	case *bigraph.CSR:
		sc := csrScratch.Get().(*bigraph.Scratch)
		raw, err := nbhd.ExtractCSR(s, u, k, sc)
		csrScratch.Put(sc)
		if err == nil {
			return preprocessRaw(raw, u, k, pol)
		}
		// Absent centre or degenerate k: the generic path yields the
		// same empty view Extract would.
		return preprocessRaw(nbhd.ExtractStore(st, u, k), u, k, pol)
	default:
		return preprocessRaw(nbhd.ExtractStore(st, u, k), u, k, pol)
	}
}

// preprocessRaw runs dormancy classification and component analysis over
// an already-extracted raw neighbourhood — the shared body of the graph-
// and store-backed entry points. Everything past the G_k(u) extraction
// operates on the small view graph, never the full network.
func preprocessRaw(raw *nbhd.Neighborhood, u graph.Vertex, k int, pol Policy) *View {
	v := &View{
		Center:     u,
		K:          k,
		Raw:        raw,
		dormantSet: make(map[graph.Edge]bool),
	}
	for _, e := range raw.G.Edges() {
		if dormantInView(raw.G, e, k, pol) {
			v.Dormant = append(v.Dormant, e)
			v.dormantSet[e] = true
		}
	}
	pruned := raw.G.WithoutEdges(v.Dormant)
	inner := nbhd.Extract(pruned, u, k)
	v.Routing = inner.G
	v.RoutingDist = inner.Dist
	v.Comps = nbhd.ClassifyView(v.Routing, u, k)
	for _, c := range v.Comps {
		if c.Active {
			v.ActiveRoots = append(v.ActiveRoots, c.Roots...)
		}
	}
	sort.Slice(v.ActiveRoots, func(i, j int) bool { return v.ActiveRoots[i] < v.ActiveRoots[j] })
	return v
}

// dormantInView reports whether e is the policy-extreme edge of some
// cycle of length at most 2k inside view: equivalently, whether the view
// has a path between e's endpoints of length at most 2k−1 using only
// edges beyond e in the policy's order.
func dormantInView(view *graph.Graph, e graph.Edge, k int, pol Policy) bool {
	allow := func(f graph.Edge) bool { return e.Less(f) }
	if pol == PolicyMaxRank {
		allow = func(f graph.Edge) bool { return f.Less(e) }
	}
	return view.HasPathAvoiding(e.U, e.V, 2*k-1, allow)
}

// IsDormant reports whether the view classified e as dormant.
func (v *View) IsDormant(e graph.Edge) bool { return v.dormantSet[graph.NewEdge(e.U, e.V)] }

// ActiveDegree returns the number of active neighbours of the centre
// (Propositions 1–3 bound it by 3, 2 and 1 at k ≥ n/4, n/3, n/2 given the
// matching algorithm's preprocessing).
func (v *View) ActiveDegree() int { return len(v.ActiveRoots) }

// CompOf returns the local component of G'_k(u) containing w, or nil if w
// is the centre or outside the routing view.
func (v *View) CompOf(w graph.Vertex) *nbhd.Component {
	for _, c := range v.Comps {
		if c.Has(w) {
			return c
		}
	}
	return nil
}

// CompRootedAt returns the component having w as a root, or nil.
func (v *View) CompRootedAt(w graph.Vertex) *nbhd.Component {
	for _, c := range v.Comps {
		for _, r := range c.Roots {
			if r == w {
				return c
			}
		}
	}
	return nil
}

// CacheOptions tune the preprocessor's view cache. The zero value means
// defaults: DefaultShards lock shards, unbounded capacity.
type CacheOptions struct {
	// Shards is the number of independently locked cache shards; views
	// hash across shards by vertex so concurrent routing workers rarely
	// contend. Rounded up to a power of two. 0 means DefaultShards.
	Shards int
	// Capacity bounds the total number of cached views across all
	// shards; when a shard fills, an arbitrary resident view is evicted
	// (random replacement — adequate because routing workloads revisit
	// sources far more often than they scan). 0 means unbounded.
	Capacity int
}

// DefaultShards is the shard count used when CacheOptions.Shards is 0.
const DefaultShards = 8

// CacheStats is a point-in-time snapshot of preprocessor cache activity.
type CacheStats struct {
	// Hits counts At calls served from the cache.
	Hits int64
	// Misses counts At calls that ran preprocessing. Concurrent misses
	// on the same vertex each count (both compute; one insert wins), so
	// Misses can slightly exceed the number of distinct vertices.
	Misses int64
	// Evictions counts views discarded to respect Capacity.
	Evictions int64
	// Size is the number of views currently resident.
	Size int64
}

// Delta returns the activity between two snapshots of the same
// preprocessor: the counting fields subtract (s − prev) and Size keeps
// s's absolute value. Dividing a Delta's counts by the scrape interval
// yields rate gauges (hits/s, misses/s, evictions/s) for live
// observability. Counters from a different (e.g. freshly swapped)
// preprocessor would go negative; they clamp to zero so a graph
// hot-swap never reports negative rates.
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	d := CacheStats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Size:      s.Size,
	}
	if d.Hits < 0 {
		d.Hits = 0
	}
	if d.Misses < 0 {
		d.Misses = 0
	}
	if d.Evictions < 0 {
		d.Evictions = 0
	}
	return d
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// prepShard is one lock-striped portion of the view cache.
type prepShard struct {
	mu    sync.RWMutex
	views map[graph.Vertex]*View
}

// Preprocessor caches per-node views for a fixed network and locality.
// The preprocessing step "need not be repeated unless the network topology
// changes", so views are computed once per node and shared. It is safe
// for concurrent use: the cache is sharded by vertex, views are immutable
// after construction, and a view is published only via the shard lock.
//
// Under concurrent misses for the same vertex both callers compute the
// view and the first insert wins; the duplicate work is bounded and
// lock-free, which beats serializing whole shards behind preprocessing
// (BFS-heavy) critical sections.
type Preprocessor struct {
	st  bigraph.Store
	g   *graph.Graph // non-nil only when st is a materialized *graph.Graph
	k   int
	pol Policy

	shards   []prepShard
	mask     uint64
	capacity int // per whole cache; 0 = unbounded

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	size      atomic.Int64
}

// NewPreprocessor returns a caching preprocessor for network g at
// locality k with the paper's minimum-rank policy.
func NewPreprocessor(g *graph.Graph, k int) *Preprocessor {
	return NewPreprocessorPolicy(g, k, PolicyMinRank)
}

// NewPreprocessorPolicy returns a caching preprocessor under an explicit
// dormancy policy.
func NewPreprocessorPolicy(g *graph.Graph, k int, pol Policy) *Preprocessor {
	return NewPreprocessorOpts(g, k, pol, CacheOptions{})
}

// NewPreprocessorOpts returns a caching preprocessor with explicit cache
// tuning — the traffic engine's entry point.
func NewPreprocessorOpts(g *graph.Graph, k int, pol Policy, opts CacheOptions) *Preprocessor {
	return NewPreprocessorStoreOpts(g, k, pol, opts)
}

// NewPreprocessorStore returns a caching preprocessor over any
// bigraph.Store (mmap'd CSR files included) with default cache options.
func NewPreprocessorStore(st bigraph.Store, k int, pol Policy) *Preprocessor {
	return NewPreprocessorStoreOpts(st, k, pol, CacheOptions{})
}

// NewPreprocessorStoreOpts is NewPreprocessorOpts over any bigraph.Store.
func NewPreprocessorStoreOpts(st bigraph.Store, k int, pol Policy, opts CacheOptions) *Preprocessor {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so vertex hashing is a mask.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	p := &Preprocessor{
		st:       st,
		k:        k,
		pol:      pol,
		shards:   make([]prepShard, shards),
		mask:     uint64(shards - 1),
		capacity: opts.Capacity,
	}
	if g, ok := st.(*graph.Graph); ok {
		p.g = g
	}
	for i := range p.shards {
		p.shards[i].views = make(map[graph.Vertex]*View)
	}
	return p
}

// K returns the locality parameter.
func (p *Preprocessor) K() int { return p.k }

// Graph returns the underlying network as a *graph.Graph, or nil for a
// store-backed preprocessor (use Store for the universal handle).
func (p *Preprocessor) Graph() *graph.Graph { return p.g }

// Store returns the underlying network store (never nil).
func (p *Preprocessor) Store() bigraph.Store { return p.st }

// Policy returns the dormancy policy.
func (p *Preprocessor) Policy() Policy { return p.pol }

// Stats returns a snapshot of cache activity.
func (p *Preprocessor) Stats() CacheStats {
	return CacheStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Size:      p.size.Load(),
	}
}

// shardOf picks the lock shard for u (Fibonacci hashing spreads the
// typically consecutive vertex labels).
func (p *Preprocessor) shardOf(u graph.Vertex) *prepShard {
	h := uint64(u) * 0x9e3779b97f4a7c15
	return &p.shards[(h>>32)&p.mask]
}

// At returns the (cached) view at u.
func (p *Preprocessor) At(u graph.Vertex) *View {
	sh := p.shardOf(u)
	sh.mu.RLock()
	v, ok := sh.views[u]
	sh.mu.RUnlock()
	if ok {
		p.hits.Add(1)
		return v
	}
	p.misses.Add(1)
	v = PreprocessStore(p.st, u, p.k, p.pol)
	sh.mu.Lock()
	if cur, ok := sh.views[u]; ok {
		// A concurrent miss published first; keep its view so every
		// caller shares one instance.
		sh.mu.Unlock()
		return cur
	}
	if p.capacity > 0 && int(p.size.Load()) >= p.capacity {
		// Random replacement inside this shard (map iteration order).
		for w := range sh.views {
			delete(sh.views, w)
			p.size.Add(-1)
			p.evictions.Add(1)
			break
		}
	}
	sh.views[u] = v
	p.size.Add(1)
	sh.mu.Unlock()
	return v
}

// Prewarm computes and caches the view of every vertex using `workers`
// goroutines (GOMAXPROCS when ≤ 0), so later routing never pays the
// preprocessing latency. With a bounded cache smaller than the vertex
// count, prewarming fills the cache and stops early.
func (p *Preprocessor) Prewarm(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	limit := p.st.N()
	if p.capacity > 0 && limit > p.capacity {
		limit = p.capacity
	}
	if limit == 0 {
		return
	}
	vs := make([]graph.Vertex, 0, limit)
	p.st.EachVertex(func(v graph.Vertex) bool {
		vs = append(vs, v)
		return len(vs) < limit
	})
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(vs) {
					return
				}
				p.At(vs[i])
			}
		}()
	}
	wg.Wait()
}

// ConsistentEdges returns the globally consistent edges of g at locality
// k: edges that no node classifies dormant. By Lemma 3 the consistent
// subgraph connects every vertex pair; by Lemma 5 it has girth at least
// 2k+1.
func ConsistentEdges(g *graph.Graph, k int) []graph.Edge {
	var out []graph.Edge
	for _, e := range g.Edges() {
		inconsistent := g.HasPathAvoiding(e.U, e.V, 2*k-1, func(f graph.Edge) bool {
			return e.Less(f)
		})
		if !inconsistent {
			out = append(out, e)
		}
	}
	return out
}

// ConsistentSubgraph returns g restricted to its consistent edges (all
// vertices kept).
func ConsistentSubgraph(g *graph.Graph, k int) *graph.Graph {
	keep := make(map[graph.Edge]bool)
	for _, e := range ConsistentEdges(g, k) {
		keep[e] = true
	}
	return g.FilterEdges(func(e graph.Edge) bool { return keep[e] })
}
