package prep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// Property-based checks (testing/quick) of the preprocessing invariants.

func TestQuickRoutingSubgraphWithinRaw(t *testing.T) {
	// G'_k(u) ⊆ G_k(u): every routing vertex/edge appears in the raw view,
	// and no dormant edge survives.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(18)
		g := gen.RandomConnected(rng, n, 0.2)
		u := graph.Vertex(rng.Intn(n))
		k := 1 + rng.Intn(5)
		v := Preprocess(g, u, k)
		for _, e := range v.Routing.Edges() {
			if !v.Raw.G.HasEdge(e.U, e.V) {
				return false
			}
			if v.IsDormant(e) {
				return false
			}
		}
		for _, w := range v.Routing.Vertices() {
			if !v.Raw.Contains(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoutingDistancesBounded(t *testing.T) {
	// Routing distances never undercut raw distances and never exceed k.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(18)
		g := gen.RandomConnected(rng, n, 0.2)
		u := graph.Vertex(rng.Intn(n))
		k := 1 + rng.Intn(5)
		v := Preprocess(g, u, k)
		for w, d := range v.RoutingDist {
			if d > k {
				return false
			}
			if raw, ok := v.Raw.Dist[w]; !ok || d < raw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickPolicyChoicesAreExtremes(t *testing.T) {
	// Whenever both policies classify dormant edges on the same graph,
	// the min-rank policy's first dormant edge is never outranked by the
	// max-rank policy's (they pick opposite extremes of short cycles).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(14)
		g := gen.RandomConnected(rng, n, 0.3)
		u := graph.Vertex(rng.Intn(n))
		k := 2 + rng.Intn(4)
		vMin := PreprocessPolicy(g, u, k, PolicyMinRank)
		vMax := PreprocessPolicy(g, u, k, PolicyMaxRank)
		if len(vMin.Dormant) == 0 || len(vMax.Dormant) == 0 {
			return len(vMin.Dormant) == len(vMax.Dormant)
		}
		minFirst := vMin.Dormant[0]
		maxLast := vMax.Dormant[len(vMax.Dormant)-1]
		return !maxLast.Less(minFirst)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDormantCountsMatchAcrossPolicies(t *testing.T) {
	// Both policies remove one edge per short cycle class; the dormant
	// sets can differ but the routing view stays connected to every raw
	// vertex within reach (no over-pruning).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(14)
		g := gen.RandomConnected(rng, n, 0.25)
		u := graph.Vertex(rng.Intn(n))
		k := 2 + rng.Intn(4)
		for _, pol := range []Policy{PolicyMinRank, PolicyMaxRank} {
			v := PreprocessPolicy(g, u, k, pol)
			if !v.Routing.Connected() {
				return false
			}
			if !v.Routing.HasVertex(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
