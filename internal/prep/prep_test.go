package prep

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestDormantOnSmallCycle(t *testing.T) {
	// A 4-cycle with k=2: the whole cycle is local everywhere; exactly the
	// minimum-rank edge {0,1} becomes dormant.
	g := gen.Cycle(4)
	v := Preprocess(g, 0, 2)
	if len(v.Dormant) != 1 || v.Dormant[0] != graph.NewEdge(0, 1) {
		t.Fatalf("dormant = %v, want [{0,1}]", v.Dormant)
	}
	if !v.IsDormant(graph.NewEdge(1, 0)) {
		t.Error("IsDormant must normalize edge orientation")
	}
	if v.Routing.HasEdge(0, 1) {
		t.Error("dormant edge must leave the routing subgraph")
	}
	if !v.Routing.HasEdge(0, 3) || !v.Routing.HasEdge(2, 3) {
		t.Errorf("surviving edges missing: %v", v.Routing)
	}
	// Vertex 1 sits at routing distance 3 > k and drops out of G'_k(u).
	if v.Routing.HasVertex(1) {
		t.Errorf("vertex 1 should be beyond routing depth: %v", v.Routing)
	}
}

func TestNoDormantOnLongCycle(t *testing.T) {
	// A cycle longer than 2k has no local cycles: nothing is dormant.
	g := gen.Cycle(9)
	v := Preprocess(g, 0, 4)
	if len(v.Dormant) != 0 {
		t.Fatalf("dormant = %v, want none", v.Dormant)
	}
	if v.ActiveDegree() != 2 {
		t.Errorf("active degree = %d, want 2", v.ActiveDegree())
	}
}

func TestRoutingViewDepthRestriction(t *testing.T) {
	// Figure 9's effect: after removing a dormant edge, vertices whose
	// routing distance exceeds k drop out of G'_k(u) even though they were
	// in G_k(u). Take a triangle {0,1,2} with a long tail on 1: the edge
	// {0,1} is dormant (minimum rank on the triangle), so 1 is reachable
	// only via 2 and the tail shifts one hop further.
	g := graph.NewBuilder().AddCycle(0, 1, 2).AddPath(1, 3, 4, 5, 6).Build()
	k := 3
	v := Preprocess(g, 0, k)
	if !v.IsDormant(graph.NewEdge(0, 1)) {
		t.Fatalf("triangle's minimum-rank edge should be dormant; got %v", v.Dormant)
	}
	// Raw view reaches vertex 4 (0-1-3-4, depth 3); in the routing view 1
	// is only reachable as 0-2-1, so the tail shifts: 3 stays (depth 3
	// via 0-2-1-3) but 4 moves to depth 4 and drops out.
	if !v.Raw.Contains(4) {
		t.Error("raw view should contain vertex 4")
	}
	if v.Routing.HasVertex(4) {
		t.Error("routing view must drop vertices beyond routing depth k")
	}
	if !v.Routing.HasVertex(3) {
		t.Error("routing view should still reach vertex 3 via 2-1")
	}
	if v.RoutingDist[1] != 2 {
		t.Errorf("routing distance to 1 = %d, want 2", v.RoutingDist[1])
	}
}

func TestLemma2AdjacentRoutingEdgesConsistent(t *testing.T) {
	// Every edge adjacent to u in G'_k(u) is globally consistent.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		k := 1 + rng.Intn(5)
		consistent := make(map[graph.Edge]bool)
		for _, e := range ConsistentEdges(g, k) {
			consistent[e] = true
		}
		for _, u := range g.Vertices() {
			v := Preprocess(g, u, k)
			v.Routing.EachAdj(u, func(w graph.Vertex) bool {
				if !consistent[graph.NewEdge(u, w)] {
					t.Fatalf("inconsistent routing edge {%d,%d} at u=%d k=%d in %v", u, w, u, k, g)
				}
				return true
			})
		}
	}
}

func TestLemma2Converse_AdjacentConsistentEdgesKept(t *testing.T) {
	// A consistent edge adjacent to u is never dormant at u, so it stays a
	// routing edge (it is at depth 1, inside the depth restriction).
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		k := 1 + rng.Intn(5)
		consistent := ConsistentEdges(g, k)
		for _, e := range consistent {
			for _, u := range []graph.Vertex{e.U, e.V} {
				v := Preprocess(g, u, k)
				if !v.Routing.HasEdge(e.U, e.V) {
					t.Fatalf("consistent edge %v missing from G'_k(%d), k=%d, g=%v", e, u, k, g)
				}
			}
		}
	}
}

func TestLemma3ConsistentSubgraphConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(30)
		g := gen.RandomConnected(rng, n, 0.25)
		k := 1 + rng.Intn(6)
		sub := ConsistentSubgraph(g, k)
		if !sub.Connected() {
			t.Fatalf("consistent subgraph disconnected: k=%d g=%v", k, g)
		}
	}
}

func TestLemma5ConsistentGirth(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(30)
		g := gen.RandomConnected(rng, n, 0.25)
		k := 1 + rng.Intn(6)
		sub := ConsistentSubgraph(g, k)
		if girth := sub.Girth(); girth <= 2*k {
			t.Fatalf("consistent girth %d <= 2k=%d: g=%v", girth, 2*k, g)
		}
	}
}

func TestProposition1ActiveDegreeAtMost3(t *testing.T) {
	// k >= n/4 implies active degree <= 3.
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		k := (n + 3) / 4
		for _, u := range g.Vertices() {
			if d := Preprocess(g, u, k).ActiveDegree(); d > 3 {
				t.Fatalf("active degree %d > 3 at u=%d, k=%d, n=%d: %v", d, u, k, n, g)
			}
		}
	}
}

func TestProposition2ActiveDegreeAtMost2(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		k := (n + 2) / 3
		for _, u := range g.Vertices() {
			if d := Preprocess(g, u, k).ActiveDegree(); d > 2 {
				t.Fatalf("active degree %d > 2 at u=%d, k=%d, n=%d: %v", d, u, k, n, g)
			}
		}
	}
}

func TestProposition3ActiveDegreeAtMost1(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		k := (n + 1) / 2
		for _, u := range g.Vertices() {
			if d := Preprocess(g, u, k).ActiveDegree(); d > 1 {
				t.Fatalf("active degree %d > 1 at u=%d, k=%d, n=%d: %v", d, u, k, n, g)
			}
		}
	}
}

func TestActiveRootsSortedAndMatchComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		k := 1 + rng.Intn(5)
		u := graph.Vertex(rng.Intn(n))
		v := Preprocess(g, u, k)
		for i := 1; i < len(v.ActiveRoots); i++ {
			if v.ActiveRoots[i-1] >= v.ActiveRoots[i] {
				t.Fatalf("active roots not sorted: %v", v.ActiveRoots)
			}
		}
		for _, r := range v.ActiveRoots {
			c := v.CompRootedAt(r)
			if c == nil || !c.Active {
				t.Fatalf("active root %d has no active component", r)
			}
			if v.CompOf(r) != c {
				t.Fatalf("CompOf and CompRootedAt disagree for %d", r)
			}
		}
	}
}

func TestCompOfCenterIsNil(t *testing.T) {
	g := gen.Path(5)
	v := Preprocess(g, 2, 2)
	if v.CompOf(2) != nil {
		t.Error("the centre belongs to no local component")
	}
	if v.CompRootedAt(99) != nil {
		t.Error("unknown vertex must have no component")
	}
}

func TestFig17DormantEdgeDetected(t *testing.T) {
	f, err := gen.NewFig17(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every node that sees the small cycle classifies {s,d} dormant; in
	// particular s itself.
	v := Preprocess(f.G, f.S, f.K)
	if !v.IsDormant(graph.NewEdge(f.S, f.D)) {
		t.Errorf("{s,d} not dormant at s: dormant=%v", v.Dormant)
	}
	if v.ActiveDegree() != 1 {
		t.Errorf("s should have a single active neighbour, got %v", v.ActiveRoots)
	}
	// The big cycle stays fully consistent.
	cons := ConsistentSubgraph(f.G, f.K)
	if cons.HasEdge(f.S, f.D) {
		t.Error("{s,d} must be globally inconsistent")
	}
	if cons.M() != f.G.M()-1 {
		t.Errorf("exactly one edge should be inconsistent, got %d of %d", cons.M(), f.G.M())
	}
}

func TestPreprocessorCachesAndIsConcurrencySafe(t *testing.T) {
	g := gen.Cycle(12)
	p := NewPreprocessor(g, 5)
	if p.K() != 5 || p.Graph() != g {
		t.Error("accessors wrong")
	}
	a := p.At(0)
	b := p.At(0)
	if a != b {
		t.Error("views must be cached")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 12; i++ {
			p.At(graph.Vertex(i))
		}
	}()
	for i := 11; i >= 0; i-- {
		p.At(graph.Vertex(i))
	}
	<-done
}

func TestConsistentEdgesTreeIsEverything(t *testing.T) {
	g := gen.RandomTree(rand.New(rand.NewSource(29)), 20)
	if got := len(ConsistentEdges(g, 3)); got != g.M() {
		t.Errorf("trees have no cycles: %d consistent of %d", got, g.M())
	}
}

func TestConsistencyMatchesLocalDormancy(t *testing.T) {
	// An edge is globally inconsistent iff some node classifies it
	// dormant (the equivalence DESIGN.md relies on).
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(12)
		g := gen.RandomConnected(rng, n, 0.25)
		k := 1 + rng.Intn(4)
		consistent := make(map[graph.Edge]bool)
		for _, e := range ConsistentEdges(g, k) {
			consistent[e] = true
		}
		dormantSomewhere := make(map[graph.Edge]bool)
		for _, u := range g.Vertices() {
			for _, e := range Preprocess(g, u, k).Dormant {
				dormantSomewhere[e] = true
			}
		}
		for _, e := range g.Edges() {
			if consistent[e] == dormantSomewhere[e] {
				t.Fatalf("edge %v: consistent=%v dormantSomewhere=%v (k=%d, g=%v)",
					e, consistent[e], dormantSomewhere[e], k, g)
			}
		}
	}
}
