package prep

import (
	"math/rand"
	"sync"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestCacheHitsAndSharing(t *testing.T) {
	g := gen.Cycle(16)
	p := NewPreprocessorOpts(g, 4, PolicyMinRank, CacheOptions{Shards: 4})
	v1 := p.At(3)
	v2 := p.At(3)
	if v1 != v2 {
		t.Fatal("repeated At must return the shared cached view")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats after hit+miss: %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	g := gen.Cycle(32)
	p := NewPreprocessorOpts(g, 3, PolicyMinRank, CacheOptions{Shards: 1, Capacity: 4})
	for _, v := range g.Vertices() {
		p.At(v)
	}
	st := p.Stats()
	if st.Size > 4 {
		t.Fatalf("cache size %d exceeds capacity 4", st.Size)
	}
	if st.Evictions != int64(g.N()-4) {
		t.Fatalf("evictions = %d, want %d", st.Evictions, g.N()-4)
	}
	// Evicted views must be recomputed correctly, not lost.
	v := p.At(0)
	if v.Center != 0 || v.K != 3 {
		t.Fatalf("recomputed view wrong: center=%d k=%d", v.Center, v.K)
	}
}

func TestCacheConcurrentSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.RandomConnected(rng, 24, 0.1)
	k := 6
	p := NewPreprocessorOpts(g, k, PolicyMinRank, CacheOptions{Shards: 8})

	var wg sync.WaitGroup
	views := make([][]*View, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			views[w] = make([]*View, g.N())
			for i, u := range g.Vertices() {
				views[w][i] = p.At(u)
			}
		}(w)
	}
	wg.Wait()

	// All workers must observe identical view contents, and (after the
	// cache settles) the same instances as a fresh sequential pass.
	for i, u := range g.Vertices() {
		want := PreprocessPolicy(g, u, k, PolicyMinRank)
		for w := 0; w < 8; w++ {
			got := views[w][i]
			if got.Center != want.Center || len(got.Dormant) != len(want.Dormant) ||
				len(got.ActiveRoots) != len(want.ActiveRoots) {
				t.Fatalf("worker %d vertex %d: view differs from sequential preprocessing", w, u)
			}
			if p.At(u) != p.At(u) {
				t.Fatalf("vertex %d: cache returns distinct instances after settling", u)
			}
		}
	}
	if st := p.Stats(); st.Size != int64(g.N()) {
		t.Fatalf("cache size = %d, want %d", st.Size, g.N())
	}
}

func TestPrewarm(t *testing.T) {
	g := gen.Lollipop(12, 6)
	p := NewPreprocessor(g, 5)
	p.Prewarm(4)
	if st := p.Stats(); st.Size != int64(g.N()) {
		t.Fatalf("prewarm cached %d views, want %d", st.Size, g.N())
	}
	before := p.Stats().Misses
	for _, v := range g.Vertices() {
		p.At(v)
	}
	if after := p.Stats().Misses; after != before {
		t.Fatalf("post-prewarm lookups missed: %d -> %d", before, after)
	}
}

func TestPrewarmBounded(t *testing.T) {
	g := gen.Cycle(20)
	p := NewPreprocessorOpts(g, 3, PolicyMinRank, CacheOptions{Capacity: 5})
	p.Prewarm(2)
	if st := p.Stats(); st.Size > 5 {
		t.Fatalf("bounded prewarm overfilled: size %d > capacity 5", st.Size)
	}
}

func TestShardRounding(t *testing.T) {
	g := gen.Path(4)
	p := NewPreprocessorOpts(g, 1, PolicyMinRank, CacheOptions{Shards: 5})
	if len(p.shards) != 8 {
		t.Fatalf("shards = %d, want next power of two 8", len(p.shards))
	}
	var zero graph.Vertex
	_ = p.shardOf(zero) // must not panic on any vertex
}

func TestCacheStatsDelta(t *testing.T) {
	prev := CacheStats{Hits: 10, Misses: 4, Evictions: 1, Size: 6}
	cur := CacheStats{Hits: 25, Misses: 9, Evictions: 3, Size: 8}
	d := cur.Delta(prev)
	if d.Hits != 15 || d.Misses != 5 || d.Evictions != 2 {
		t.Fatalf("delta counts = %+v, want hits 15 misses 5 evictions 2", d)
	}
	if d.Size != 8 {
		t.Fatalf("delta size = %d, want the absolute current size 8", d.Size)
	}
	// A fresh preprocessor (post-swap) has smaller counters; rates must
	// clamp to zero instead of going negative.
	reset := CacheStats{Hits: 2, Misses: 1, Size: 3}.Delta(prev)
	if reset.Hits != 0 || reset.Misses != 0 || reset.Evictions != 0 || reset.Size != 3 {
		t.Fatalf("post-reset delta = %+v, want clamped zeros with size 3", reset)
	}
}
