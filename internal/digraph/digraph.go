// Package digraph is the directed-graph substrate for the paper's
// Section 6.2 ("Directed Graphs"): simple digraphs with the structural
// predicates 1-local directed routing needs — strong connectivity,
// degree balance, Eulerian circuits — plus generators for Eulerian
// inputs.
//
// The paper cites Chávez et al.'s 1-local routing on Eulerian digraphs
// and Fraser et al.'s Ω(n) memory lower bound for stateless 1-local
// routing on general digraphs; package diroute implements the positive
// side on this substrate.
package digraph

import (
	"fmt"
	"math/rand"
	"sort"

	"klocal/internal/graph"
)

// Arc is a directed edge.
type Arc struct {
	From, To graph.Vertex
}

// Digraph is an immutable simple directed graph. Out-adjacency lists are
// sorted by label for deterministic iteration.
type Digraph struct {
	out      map[graph.Vertex][]graph.Vertex
	in       map[graph.Vertex][]graph.Vertex
	vertices []graph.Vertex
	arcs     []Arc
}

// Builder accumulates arcs into a Digraph.
type Builder struct {
	out map[graph.Vertex]map[graph.Vertex]bool
}

// NewBuilder returns an empty digraph builder.
func NewBuilder() *Builder {
	return &Builder{out: make(map[graph.Vertex]map[graph.Vertex]bool)}
}

// AddVertex ensures v exists.
func (b *Builder) AddVertex(v graph.Vertex) *Builder {
	if _, ok := b.out[v]; !ok {
		b.out[v] = make(map[graph.Vertex]bool)
	}
	return b
}

// AddArc inserts the arc u→v (self-loops rejected, duplicates ignored).
func (b *Builder) AddArc(u, v graph.Vertex) *Builder {
	if u == v {
		return b
	}
	b.AddVertex(u)
	b.AddVertex(v)
	b.out[u][v] = true
	return b
}

// HasArc reports whether u→v is present.
func (b *Builder) HasArc(u, v graph.Vertex) bool { return b.out[u][v] }

// Build produces the immutable digraph.
func (b *Builder) Build() *Digraph {
	d := &Digraph{
		out: make(map[graph.Vertex][]graph.Vertex, len(b.out)),
		in:  make(map[graph.Vertex][]graph.Vertex, len(b.out)),
	}
	for v := range b.out {
		d.vertices = append(d.vertices, v)
	}
	sort.Slice(d.vertices, func(i, j int) bool { return d.vertices[i] < d.vertices[j] })
	for _, u := range d.vertices {
		var outs []graph.Vertex
		for w := range b.out[u] {
			outs = append(outs, w)
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
		d.out[u] = outs
		for _, w := range outs {
			d.in[w] = append(d.in[w], u)
			d.arcs = append(d.arcs, Arc{From: u, To: w})
		}
	}
	for v := range d.in {
		ins := d.in[v]
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	}
	sort.Slice(d.arcs, func(i, j int) bool {
		if d.arcs[i].From != d.arcs[j].From {
			return d.arcs[i].From < d.arcs[j].From
		}
		return d.arcs[i].To < d.arcs[j].To
	})
	return d
}

// N returns the vertex count; M the arc count.
func (d *Digraph) N() int { return len(d.vertices) }

// M returns the arc count.
func (d *Digraph) M() int { return len(d.arcs) }

// Vertices returns the vertices in label order (a copy).
func (d *Digraph) Vertices() []graph.Vertex {
	out := make([]graph.Vertex, len(d.vertices))
	copy(out, d.vertices)
	return out
}

// Arcs returns every arc in canonical order (a copy).
func (d *Digraph) Arcs() []Arc {
	out := make([]Arc, len(d.arcs))
	copy(out, d.arcs)
	return out
}

// Out returns u's out-neighbours in label order (a copy).
func (d *Digraph) Out(u graph.Vertex) []graph.Vertex {
	outs := d.out[u]
	cp := make([]graph.Vertex, len(outs))
	copy(cp, outs)
	return cp
}

// In returns u's in-neighbours in label order (a copy).
func (d *Digraph) In(u graph.Vertex) []graph.Vertex {
	ins := d.in[u]
	cp := make([]graph.Vertex, len(ins))
	copy(cp, ins)
	return cp
}

// OutDeg and InDeg return the degrees.
func (d *Digraph) OutDeg(u graph.Vertex) int { return len(d.out[u]) }

// InDeg returns the in-degree of u.
func (d *Digraph) InDeg(u graph.Vertex) int { return len(d.in[u]) }

// HasArc reports whether u→v is an arc.
func (d *Digraph) HasArc(u, v graph.Vertex) bool {
	outs := d.out[u]
	i := sort.Search(len(outs), func(i int) bool { return outs[i] >= v })
	return i < len(outs) && outs[i] == v
}

// HasVertex reports membership.
func (d *Digraph) HasVertex(v graph.Vertex) bool {
	_, ok := d.out[v]
	return ok
}

// reachable returns the set of vertices reachable from src along arcs.
func (d *Digraph) reachable(src graph.Vertex) map[graph.Vertex]bool {
	seen := map[graph.Vertex]bool{src: true}
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range d.out[u] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// StronglyConnected reports whether every vertex reaches every other.
func (d *Digraph) StronglyConnected() bool {
	if d.N() == 0 {
		return true
	}
	src := d.vertices[0]
	if len(d.reachable(src)) != d.N() {
		return false
	}
	// Reverse reachability: src must be reachable from everyone.
	rev := NewBuilder()
	for _, v := range d.vertices {
		rev.AddVertex(v)
	}
	for _, a := range d.arcs {
		rev.AddArc(a.To, a.From)
	}
	return len(rev.Build().reachable(src)) == d.N()
}

// Balanced reports whether in-degree equals out-degree at every vertex.
func (d *Digraph) Balanced() bool {
	for _, v := range d.vertices {
		if d.InDeg(v) != d.OutDeg(v) {
			return false
		}
	}
	return true
}

// Eulerian reports whether d has an Eulerian circuit: balanced and
// strongly connected (ignoring isolated vertices, which the simple model
// here treats as absent edges on present vertices — they break the
// circuit, so they must not exist).
func (d *Digraph) Eulerian() bool {
	if d.M() == 0 {
		return false
	}
	for _, v := range d.vertices {
		if d.OutDeg(v) == 0 {
			return false
		}
	}
	return d.Balanced() && d.StronglyConnected()
}

// EulerCircuit returns an Eulerian circuit as a vertex sequence starting
// and ending at start (Hierholzer's algorithm), or an error if none
// exists.
func (d *Digraph) EulerCircuit(start graph.Vertex) ([]graph.Vertex, error) {
	if !d.Eulerian() {
		return nil, fmt.Errorf("digraph: not Eulerian")
	}
	if !d.HasVertex(start) {
		return nil, fmt.Errorf("digraph: unknown start %d", start)
	}
	next := make(map[graph.Vertex]int, d.N())
	var circuit []graph.Vertex
	var stack []graph.Vertex
	stack = append(stack, start)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		if next[u] < len(d.out[u]) {
			w := d.out[u][next[u]]
			next[u]++
			stack = append(stack, w)
		} else {
			circuit = append(circuit, u)
			stack = stack[:len(stack)-1]
		}
	}
	// Hierholzer emits the circuit reversed.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	if len(circuit) != d.M()+1 {
		return nil, fmt.Errorf("digraph: circuit covers %d arcs, want %d (disconnected?)", len(circuit)-1, d.M())
	}
	return circuit, nil
}

// Circulant returns the circulant digraph on n vertices with the given
// shifts: arcs i → i+s (mod n) for every shift s. With shift 1 included
// it is strongly connected; circulants are balanced, hence Eulerian.
func Circulant(n int, shifts []int) *Digraph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Vertex(i))
	}
	for i := 0; i < n; i++ {
		for _, s := range shifts {
			j := ((i+s)%n + n) % n
			b.AddArc(graph.Vertex(i), graph.Vertex(j))
		}
	}
	return b.Build()
}

// RandomEulerian returns a random Eulerian digraph on n vertices built
// as a union of `cycles` random directed Hamiltonian cycles (duplicate
// arcs are re-drawn): balanced by construction and strongly connected.
func RandomEulerian(rng *rand.Rand, n, cycles int) *Digraph {
	if n < 3 || cycles < 1 {
		panic("digraph: RandomEulerian needs n >= 3 and cycles >= 1")
	}
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Vertex(i))
	}
	for c := 0; c < cycles; c++ {
		for attempt := 0; ; attempt++ {
			perm := rng.Perm(n)
			ok := true
			for i := 0; i < n; i++ {
				u := graph.Vertex(perm[i])
				v := graph.Vertex(perm[(i+1)%n])
				if b.HasArc(u, v) {
					ok = false
					break
				}
			}
			if ok {
				for i := 0; i < n; i++ {
					b.AddArc(graph.Vertex(perm[i]), graph.Vertex(perm[(i+1)%n]))
				}
				break
			}
			if attempt > 200 {
				// Dense corner: fall back to a rotation of the identity
				// cycle shifted by the attempt counter, which is always
				// arc-disjoint from previous identical fallbacks only if
				// unused; as a last resort skip this cycle.
				return b.Build()
			}
		}
	}
	return b.Build()
}
