package digraph

import (
	"math/rand"
	"testing"

	"klocal/internal/graph"
)

func TestBuilderBasics(t *testing.T) {
	d := NewBuilder().AddArc(0, 1).AddArc(1, 2).AddArc(2, 0).AddVertex(9).Build()
	if d.N() != 4 || d.M() != 3 {
		t.Fatalf("n=%d m=%d", d.N(), d.M())
	}
	if !d.HasArc(0, 1) || d.HasArc(1, 0) {
		t.Error("arcs must be directed")
	}
	if d.OutDeg(9) != 0 || d.InDeg(9) != 0 {
		t.Error("isolated vertex degrees")
	}
}

func TestBuilderRejectsSelfLoopsAndDuplicates(t *testing.T) {
	d := NewBuilder().AddArc(1, 1).AddArc(0, 1).AddArc(0, 1).Build()
	if d.M() != 1 {
		t.Errorf("m = %d, want 1", d.M())
	}
}

func TestOutInSortedAndCopied(t *testing.T) {
	d := NewBuilder().AddArc(0, 5).AddArc(0, 2).AddArc(3, 0).AddArc(1, 0).Build()
	outs := d.Out(0)
	if len(outs) != 2 || outs[0] != 2 || outs[1] != 5 {
		t.Errorf("Out(0) = %v", outs)
	}
	ins := d.In(0)
	if len(ins) != 2 || ins[0] != 1 || ins[1] != 3 {
		t.Errorf("In(0) = %v", ins)
	}
	outs[0] = 99
	if d.Out(0)[0] != 2 {
		t.Error("Out must return a copy")
	}
}

func TestStronglyConnected(t *testing.T) {
	cyc := NewBuilder().AddArc(0, 1).AddArc(1, 2).AddArc(2, 0).Build()
	if !cyc.StronglyConnected() {
		t.Error("directed triangle is strongly connected")
	}
	path := NewBuilder().AddArc(0, 1).AddArc(1, 2).Build()
	if path.StronglyConnected() {
		t.Error("directed path is not strongly connected")
	}
	empty := NewBuilder().Build()
	if !empty.StronglyConnected() {
		t.Error("empty digraph counts as strongly connected")
	}
}

func TestBalancedAndEulerian(t *testing.T) {
	tri := NewBuilder().AddArc(0, 1).AddArc(1, 2).AddArc(2, 0).Build()
	if !tri.Balanced() || !tri.Eulerian() {
		t.Error("directed cycle is Eulerian")
	}
	unbalanced := NewBuilder().AddArc(0, 1).AddArc(1, 2).AddArc(2, 0).AddArc(0, 2).Build()
	if unbalanced.Balanced() || unbalanced.Eulerian() {
		t.Error("extra arc breaks balance")
	}
	twoCycles := NewBuilder().
		AddArc(0, 1).AddArc(1, 0).
		AddArc(2, 3).AddArc(3, 2).Build()
	if twoCycles.Eulerian() {
		t.Error("disconnected balanced digraph is not Eulerian")
	}
}

func TestEulerCircuit(t *testing.T) {
	d := Circulant(5, []int{1, 2})
	circuit, err := d.EulerCircuit(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(circuit) != d.M()+1 {
		t.Fatalf("circuit length %d, want %d", len(circuit), d.M()+1)
	}
	if circuit[0] != 0 || circuit[len(circuit)-1] != 0 {
		t.Error("circuit must start and end at the start vertex")
	}
	used := make(map[Arc]bool)
	for i := 1; i < len(circuit); i++ {
		a := Arc{From: circuit[i-1], To: circuit[i]}
		if !d.HasArc(a.From, a.To) {
			t.Fatalf("non-arc %v in circuit", a)
		}
		if used[a] {
			t.Fatalf("arc %v used twice", a)
		}
		used[a] = true
	}
	if len(used) != d.M() {
		t.Errorf("circuit covers %d arcs, want %d", len(used), d.M())
	}
}

func TestEulerCircuitErrors(t *testing.T) {
	path := NewBuilder().AddArc(0, 1).Build()
	if _, err := path.EulerCircuit(0); err == nil {
		t.Error("non-Eulerian input must error")
	}
	tri := NewBuilder().AddArc(0, 1).AddArc(1, 2).AddArc(2, 0).Build()
	if _, err := tri.EulerCircuit(99); err == nil {
		t.Error("unknown start must error")
	}
}

func TestCirculantProperties(t *testing.T) {
	d := Circulant(7, []int{1, 3})
	if d.N() != 7 || d.M() != 14 {
		t.Fatalf("n=%d m=%d", d.N(), d.M())
	}
	if !d.Eulerian() {
		t.Error("circulant with shift 1 is Eulerian")
	}
	for _, v := range d.Vertices() {
		if d.OutDeg(v) != 2 || d.InDeg(v) != 2 {
			t.Errorf("vertex %d degrees %d/%d", v, d.OutDeg(v), d.InDeg(v))
		}
	}
}

func TestRandomEulerian(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		cycles := 1 + rng.Intn(3)
		d := RandomEulerian(rng, n, cycles)
		if !d.Eulerian() {
			t.Fatalf("RandomEulerian(%d,%d) not Eulerian", n, cycles)
		}
		if d.M() > n*cycles {
			t.Fatalf("too many arcs: %d", d.M())
		}
	}
}

func TestArcsCanonicalOrder(t *testing.T) {
	d := NewBuilder().AddArc(2, 0).AddArc(0, 2).AddArc(0, 1).Build()
	arcs := d.Arcs()
	want := []Arc{{0, 1}, {0, 2}, {2, 0}}
	for i := range want {
		if arcs[i] != want[i] {
			t.Fatalf("arcs = %v", arcs)
		}
	}
	arcs[0] = Arc{From: graph.Vertex(9), To: graph.Vertex(9)}
	if d.Arcs()[0] != want[0] {
		t.Error("Arcs must return a copy")
	}
}
