package geom

import (
	"math"
	"math/rand"
	"testing"

	"klocal/internal/graph"
)

func TestPointBasics(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := a.Dist2(b); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if ang := a.Angle(Point{0, 1}); math.Abs(ang-math.Pi/2) > 1e-12 {
		t.Errorf("Angle = %v, want π/2", ang)
	}
	if s := b.Sub(a); s != b {
		t.Errorf("Sub = %v", s)
	}
}

func TestCrossOrientation(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Cross(a, b, Point{0.5, 1}) <= 0 {
		t.Error("counterclockwise turn must be positive")
	}
	if Cross(a, b, Point{0.5, -1}) >= 0 {
		t.Error("clockwise turn must be negative")
	}
	if c := Cross(a, b, Point{2, 0}); math.Abs(c) > 1e-12 {
		t.Errorf("collinear cross = %v", c)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"proper cross", Point{0, 0}, Point{2, 2}, Point{0, 2}, Point{2, 0}, true},
		{"disjoint", Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1}, false},
		{"touch at endpoint", Point{0, 0}, Point{1, 1}, Point{1, 1}, Point{2, 0}, true},
		{"T touch", Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{1, 1}, true},
		{"parallel", Point{0, 0}, Point{2, 0}, Point{0, 1}, Point{2, 1}, false},
		{"collinear overlap", Point{0, 0}, Point{2, 0}, Point{1, 0}, Point{3, 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, got := SegmentsIntersect(tt.a, tt.b, tt.c, tt.d)
			if got != tt.want {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			if got && tt.name == "proper cross" {
				if math.Abs(p.X-1) > 1e-9 || math.Abs(p.Y-1) > 1e-9 {
					t.Errorf("intersection = %v, want (1,1)", p)
				}
			}
		})
	}
}

func squareEmbedding(t *testing.T) *Embedding {
	t.Helper()
	// A unit square with both diagonals... only one diagonal to stay
	// plane: 0-1-2-3-0 plus chord 0-2.
	g := graph.NewBuilder().AddCycle(0, 1, 2, 3).AddEdge(0, 2).Build()
	pos := map[graph.Vertex]Point{
		0: {0, 0}, 1: {1, 0}, 2: {1, 1}, 3: {0, 1},
	}
	e, err := NewEmbedding(g, pos)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEmbeddingMissingPosition(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).Build()
	if _, err := NewEmbedding(g, map[graph.Vertex]Point{0: {0, 0}}); err == nil {
		t.Error("expected error for missing position")
	}
}

func TestRotationOrder(t *testing.T) {
	e := squareEmbedding(t)
	rot := e.Rotation(0)
	// Neighbours of 0: 1 (east, angle 0), 2 (northeast, π/4), 3 (north, π/2).
	want := []graph.Vertex{1, 2, 3}
	if len(rot) != 3 {
		t.Fatalf("rotation = %v", rot)
	}
	for i := range want {
		if rot[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", rot, want)
		}
	}
}

func TestNextCCWAndCW(t *testing.T) {
	e := squareEmbedding(t)
	if got := e.NextCCW(0, 1); got != 2 {
		t.Errorf("NextCCW(0,1) = %d, want 2", got)
	}
	if got := e.NextCCW(0, 3); got != 1 {
		t.Errorf("NextCCW(0,3) = %d, want 1 (wrap)", got)
	}
	if got := e.NextCW(0, 1); got != 3 {
		t.Errorf("NextCW(0,1) = %d, want 3 (wrap)", got)
	}
	if got := e.NextCW(0, 2); got != 1 {
		t.Errorf("NextCW(0,2) = %d, want 1", got)
	}
}

func TestNextFromPoint(t *testing.T) {
	e := squareEmbedding(t)
	// From 0, direction toward (1, 0.5) (between neighbours 1 and 2).
	ref := Point{1, 0.5}
	if got := e.NextCCWFromPoint(0, ref); got != 2 {
		t.Errorf("NextCCWFromPoint = %d, want 2", got)
	}
	if got := e.NextCWFromPoint(0, ref); got != 1 {
		t.Errorf("NextCWFromPoint = %d, want 1", got)
	}
}

func TestFacesEulerFormula(t *testing.T) {
	// For a connected plane embedding: n − m + f = 2.
	e := squareEmbedding(t)
	faces := e.Faces()
	n, m, f := e.G.N(), e.G.M(), len(faces)
	if n-m+f != 2 {
		t.Errorf("Euler: n=%d m=%d f=%d", n, m, f)
	}
	total := 0
	for _, face := range faces {
		total += len(face)
	}
	if total != 2*m {
		t.Errorf("face sizes sum to %d, want 2m=%d", total, 2*m)
	}
}

func TestFacesOnRandomGabrielGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		pos := RandomPoints(rng, 12+rng.Intn(20))
		g := GabrielGraph(pos)
		if !g.Connected() {
			t.Fatal("Gabriel graph must be connected")
		}
		e, err := NewEmbedding(g, pos)
		if err != nil {
			t.Fatal(err)
		}
		if !e.IsPlaneEmbedding() {
			t.Fatal("Gabriel graph must be plane")
		}
		faces := e.Faces()
		if g.N()-g.M()+len(faces) != 2 {
			t.Errorf("Euler fails: n=%d m=%d f=%d", g.N(), g.M(), len(faces))
		}
	}
}

func TestRandomPointsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pos := RandomPoints(rng, 50)
	if len(pos) != 50 {
		t.Fatalf("got %d points", len(pos))
	}
	for u, p := range pos {
		for v, q := range pos {
			if u != v && p.Dist2(q) < 1e-9 {
				t.Fatalf("near-coincident points %d %d", u, v)
			}
		}
	}
}

func TestUnitDiskGraph(t *testing.T) {
	pos := map[graph.Vertex]Point{
		0: {0, 0}, 1: {0.5, 0}, 2: {1.2, 0},
	}
	g := UnitDiskGraph(pos, 0.6)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Errorf("UDG edges wrong: %v", g)
	}
	if g.HasEdge(1, 2) {
		t.Errorf("1-2 at distance 0.7 > radius 0.6 must not connect: %v", g)
	}
}

func TestUnitDiskGraphRadiusBoundary(t *testing.T) {
	pos := map[graph.Vertex]Point{0: {0, 0}, 1: {1, 0}}
	if !UnitDiskGraph(pos, 1.0).HasEdge(0, 1) {
		t.Error("distance exactly r must connect")
	}
	if UnitDiskGraph(pos, 0.999).HasEdge(0, 1) {
		t.Error("distance beyond r must not connect")
	}
}

func TestGabrielGraphPlanarConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		pos := RandomPoints(rng, 10+rng.Intn(25))
		g := GabrielGraph(pos)
		if !g.Connected() {
			t.Fatal("Gabriel graph disconnected")
		}
		e, _ := NewEmbedding(g, pos)
		if !e.IsPlaneEmbedding() {
			t.Fatal("Gabriel graph not plane")
		}
	}
}

func TestRNGSubsetOfGabriel(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pos := RandomPoints(rng, 25)
	gg := GabrielGraph(pos)
	rn := RelativeNeighborhoodGraph(pos)
	if !rn.Connected() {
		t.Fatal("RNG disconnected")
	}
	for _, e := range rn.Edges() {
		if !gg.HasEdge(e.U, e.V) {
			t.Fatalf("RNG edge %v missing from Gabriel graph", e)
		}
	}
}

func TestGabrielSubgraphOfUDGConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 10; trial++ {
		pos := RandomPoints(rng, 30)
		udg := UnitDiskGraph(pos, 0.35)
		if !udg.Connected() {
			continue // sparse draw; connectivity only guaranteed given a connected UDG
		}
		sub := GabrielSubgraph(udg, pos)
		if !sub.Connected() {
			t.Fatal("Gabriel planarization disconnected a connected UDG")
		}
		e, _ := NewEmbedding(sub, pos)
		if !e.IsPlaneEmbedding() {
			t.Fatal("Gabriel planarization not plane")
		}
	}
}

func TestFaceWalkCoversEachDirectedEdgeOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	pos := RandomPoints(rng, 18)
	g := GabrielGraph(pos)
	e, _ := NewEmbedding(g, pos)
	count := make(map[[2]graph.Vertex]int)
	for _, face := range e.Faces() {
		for i := range face {
			u := face[i]
			v := face[(i+1)%len(face)]
			count[[2]graph.Vertex{u, v}]++
		}
	}
	if len(count) != 2*g.M() {
		t.Fatalf("directed edges covered: %d, want %d", len(count), 2*g.M())
	}
	for de, c := range count {
		if c != 1 {
			t.Errorf("directed edge %v in %d faces", de, c)
		}
	}
}

func TestQuasiUnitDiskGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pos := RandomPoints(rng, 30)
	q := QuasiUnitDiskGraph(pos, 0.4, 1)
	udgMin := UnitDiskGraph(pos, 0.4)
	udgMax := UnitDiskGraph(pos, 1.0)
	// Sandwich: UDG(dmin) ⊆ QUDG ⊆ UDG(1).
	for _, e := range udgMin.Edges() {
		if !q.HasEdge(e.U, e.V) {
			t.Fatalf("short edge %v missing from the quasi-UDG", e)
		}
	}
	for _, e := range q.Edges() {
		if !udgMax.HasEdge(e.U, e.V) {
			t.Fatalf("long edge %v present in the quasi-UDG", e)
		}
	}
	// Deterministic for a fixed seed.
	if !q.Equal(QuasiUnitDiskGraph(pos, 0.4, 1)) {
		t.Error("quasi-UDG must be reproducible")
	}
	// Different seeds can disagree in the grey zone.
	q2 := QuasiUnitDiskGraph(pos, 0.4, 2)
	_ = q2 // may or may not differ; both are valid quasi-UDGs
}

func TestQuasiUnitDiskGraphGabrielPlanarization(t *testing.T) {
	// The Gabriel filter of a quasi-UDG is a subgraph of the (planar)
	// Gabriel graph, hence plane; unlike for true UDGs, connectivity is
	// NOT guaranteed — exactly the complication Kuhn et al. study. The
	// test asserts planarity and merely reports disconnection.
	rng := rand.New(rand.NewSource(48))
	pos := RandomPoints(rng, 30)
	q := QuasiUnitDiskGraph(pos, 0.5, 3)
	if !q.Connected() {
		t.Skip("sparse draw")
	}
	sub := GabrielSubgraph(q, pos)
	e, err := NewEmbedding(sub, pos)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsPlaneEmbedding() {
		t.Fatal("Gabriel filter of a quasi-UDG must be plane")
	}
}
