// Package geom is the computational-geometry substrate for the
// position-based routing algorithms of the paper's Section 3 (greedy,
// compass and face routing): points, embedded graphs with rotation
// systems, unit disk graphs and planar proximity subgraphs.
//
// The paper contrasts its position-oblivious results with this
// position-based world — greedy/compass routing are 1-local but defeated
// by some planar graphs, while face routing delivers on planar graphs at
// the cost of Θ(log n) message state. Package georoute implements those
// algorithms on top of this substrate.
package geom

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"klocal/internal/graph"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared distance (exact for comparisons).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Angle returns the polar angle of the vector p→q in (−π, π].
func (p Point) Angle(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// Cross returns the z-component of (b−a) × (c−a): positive when a,b,c
// turn counterclockwise.
func Cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// eps is the tolerance for geometric predicates on the random coordinates
// the generators produce.
const eps = 1e-12

// SegmentsIntersect reports whether the closed segments ab and cd share a
// point, and returns one such point (for properly crossing segments, the
// crossing point). Collinear overlaps return an endpoint inside the
// overlap.
func SegmentsIntersect(a, b, c, d Point) (Point, bool) {
	d1 := Cross(c, d, a)
	d2 := Cross(c, d, b)
	d3 := Cross(a, b, c)
	d4 := Cross(a, b, d)
	if ((d1 > eps && d2 < -eps) || (d1 < -eps && d2 > eps)) &&
		((d3 > eps && d4 < -eps) || (d3 < -eps && d4 > eps)) {
		// Proper crossing: solve for the intersection parameter.
		t := d1 / (d1 - d2)
		return Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}, true
	}
	if onSegment(c, d, a) {
		return a, true
	}
	if onSegment(c, d, b) {
		return b, true
	}
	if onSegment(a, b, c) {
		return c, true
	}
	if onSegment(a, b, d) {
		return d, true
	}
	return Point{}, false
}

// onSegment reports whether p lies on the closed segment ab.
func onSegment(a, b, p Point) bool {
	if math.Abs(Cross(a, b, p)) > eps*(1+a.Dist(b)) {
		return false
	}
	return p.X >= math.Min(a.X, b.X)-eps && p.X <= math.Max(a.X, b.X)+eps &&
		p.Y >= math.Min(a.Y, b.Y)-eps && p.Y <= math.Max(a.Y, b.Y)+eps
}

// Embedding is a straight-line embedding of a graph: a location for every
// vertex plus the rotation system (neighbours in counterclockwise order)
// it induces.
type Embedding struct {
	G   *graph.Graph
	Pos map[graph.Vertex]Point

	rotation map[graph.Vertex][]graph.Vertex
}

// NewEmbedding pairs a graph with vertex positions and precomputes the
// rotation system. Every vertex of g must have a position; positions must
// be distinct.
func NewEmbedding(g *graph.Graph, pos map[graph.Vertex]Point) (*Embedding, error) {
	for _, v := range g.Vertices() {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("geom: vertex %d has no position", v)
		}
	}
	e := &Embedding{
		G:        g,
		Pos:      pos,
		rotation: make(map[graph.Vertex][]graph.Vertex, g.N()),
	}
	for _, v := range g.Vertices() {
		nbrs := g.Adj(v)
		pv := pos[v]
		sort.Slice(nbrs, func(i, j int) bool {
			return pv.Angle(pos[nbrs[i]]) < pv.Angle(pos[nbrs[j]])
		})
		e.rotation[v] = nbrs
	}
	return e, nil
}

// Rotation returns v's neighbours in counterclockwise order (a copy).
func (e *Embedding) Rotation(v graph.Vertex) []graph.Vertex {
	r := e.rotation[v]
	out := make([]graph.Vertex, len(r))
	copy(out, r)
	return out
}

// NextCCW returns the neighbour of v that follows `from` counterclockwise
// in v's rotation; NextCW the clockwise one. `from` must be a neighbour
// of v (or, for routing entry points, any reference vertex with a
// position — the successor of its angle is returned).
func (e *Embedding) NextCCW(v, from graph.Vertex) graph.Vertex {
	return e.nextByAngle(v, e.Pos[from], false)
}

// NextCW is NextCCW's clockwise counterpart.
func (e *Embedding) NextCW(v, from graph.Vertex) graph.Vertex {
	return e.nextByAngle(v, e.Pos[from], true)
}

// NextCCWFromPoint returns the first neighbour of v counterclockwise
// strictly after the direction v→ref.
func (e *Embedding) NextCCWFromPoint(v graph.Vertex, ref Point) graph.Vertex {
	return e.nextByAngle(v, ref, false)
}

// NextCWFromPoint is the clockwise counterpart.
func (e *Embedding) NextCWFromPoint(v graph.Vertex, ref Point) graph.Vertex {
	return e.nextByAngle(v, ref, true)
}

func (e *Embedding) nextByAngle(v graph.Vertex, ref Point, clockwise bool) graph.Vertex {
	rot := e.rotation[v]
	if len(rot) == 0 {
		return graph.NoVertex
	}
	pv := e.Pos[v]
	refAngle := pv.Angle(ref)
	// Find the neighbour whose angle matches ref (if ref is a neighbour
	// position) or the rotational successor of refAngle otherwise.
	best := graph.NoVertex
	bestDelta := math.Inf(1)
	for _, w := range rot {
		a := pv.Angle(e.Pos[w])
		var delta float64
		if clockwise {
			delta = math.Mod(refAngle-a+4*math.Pi, 2*math.Pi)
		} else {
			delta = math.Mod(a-refAngle+4*math.Pi, 2*math.Pi)
		}
		if delta < eps {
			delta = 2 * math.Pi // the reference direction itself comes last
		}
		if delta < bestDelta {
			bestDelta = delta
			best = w
		}
	}
	return best
}

// FaceWalkNext returns the directed edge following (u, v) in the
// traversal of the face to the LEFT of (u, v): the next edge is
// (v, NextCW(v, u)). Iterating FaceWalkNext from any directed edge walks
// the closed boundary of one face of the embedding.
func (e *Embedding) FaceWalkNext(u, v graph.Vertex) (graph.Vertex, graph.Vertex) {
	return v, e.NextCW(v, u)
}

// Faces enumerates the faces of the embedding as directed-edge cycles.
// Each directed edge of the graph appears in exactly one face; for a
// connected planar embedding the count obeys Euler's formula
// n − m + f = 2.
func (e *Embedding) Faces() [][]graph.Vertex {
	type dir struct{ u, v graph.Vertex }
	seen := make(map[dir]bool, 2*e.G.M())
	var faces [][]graph.Vertex
	for _, edge := range e.G.Edges() {
		for _, start := range []dir{{edge.U, edge.V}, {edge.V, edge.U}} {
			if seen[start] {
				continue
			}
			var face []graph.Vertex
			cur := start
			for {
				seen[cur] = true
				face = append(face, cur.u)
				nu, nv := e.FaceWalkNext(cur.u, cur.v)
				cur = dir{nu, nv}
				if cur == start {
					break
				}
			}
			faces = append(faces, face)
		}
	}
	return faces
}

// RandomPoints places n points uniformly in the unit square, rejecting
// near-coincident pairs so geometric predicates stay robust.
func RandomPoints(rng *rand.Rand, n int) map[graph.Vertex]Point {
	pos := make(map[graph.Vertex]Point, n)
	var placed []Point
	for len(placed) < n {
		p := Point{X: rng.Float64(), Y: rng.Float64()}
		ok := true
		for _, q := range placed {
			if p.Dist2(q) < 1e-8 {
				ok = false
				break
			}
		}
		if ok {
			pos[graph.Vertex(len(placed))] = p
			placed = append(placed, p)
		}
	}
	return pos
}

// UnitDiskGraph connects every pair of points at distance at most radius
// — the paper's ad hoc wireless model.
func UnitDiskGraph(pos map[graph.Vertex]Point, radius float64) *graph.Graph {
	b := graph.NewBuilder()
	vs := make([]graph.Vertex, 0, len(pos))
	for v := range pos {
		vs = append(vs, v)
		b.AddVertex(v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	r2 := radius * radius
	for i, u := range vs {
		for _, w := range vs[i+1:] {
			if pos[u].Dist2(pos[w]) <= r2 {
				b.AddEdge(u, w)
			}
		}
	}
	return b.Build()
}

// GabrielGraph keeps the edge {u, w} iff no other point lies inside the
// closed disk with diameter uw. The Gabriel graph is planar and contains
// the Euclidean MST, so it is connected whenever the point set is finite.
func GabrielGraph(pos map[graph.Vertex]Point) *graph.Graph {
	return gabrielFilter(completeOn(pos), pos)
}

// GabrielSubgraph intersects g with the Gabriel condition — the classic
// local planarization of a unit disk graph (cf. the k-local MST
// constructions of Li et al. cited by the paper). It preserves
// connectivity of unit disk graphs.
func GabrielSubgraph(g *graph.Graph, pos map[graph.Vertex]Point) *graph.Graph {
	return gabrielFilter(g, pos)
}

func completeOn(pos map[graph.Vertex]Point) *graph.Graph {
	b := graph.NewBuilder()
	vs := make([]graph.Vertex, 0, len(pos))
	for v := range pos {
		vs = append(vs, v)
		b.AddVertex(v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for i, u := range vs {
		for _, w := range vs[i+1:] {
			b.AddEdge(u, w)
		}
	}
	return b.Build()
}

func gabrielFilter(g *graph.Graph, pos map[graph.Vertex]Point) *graph.Graph {
	return g.FilterEdges(func(e graph.Edge) bool {
		mid := Point{X: (pos[e.U].X + pos[e.V].X) / 2, Y: (pos[e.U].Y + pos[e.V].Y) / 2}
		r2 := pos[e.U].Dist2(pos[e.V]) / 4
		for v, p := range pos {
			if v == e.U || v == e.V {
				continue
			}
			if p.Dist2(mid) < r2-eps {
				return false
			}
		}
		return true
	})
}

// RelativeNeighborhoodGraph keeps {u, w} iff no point is strictly closer
// to both u and w than they are to each other (RNG ⊆ Gabriel, still
// connected and planar).
func RelativeNeighborhoodGraph(pos map[graph.Vertex]Point) *graph.Graph {
	return completeOn(pos).FilterEdges(func(e graph.Edge) bool {
		d := pos[e.U].Dist2(pos[e.V])
		for v, p := range pos {
			if v == e.U || v == e.V {
				continue
			}
			if p.Dist2(pos[e.U]) < d-eps && p.Dist2(pos[e.V]) < d-eps {
				return false
			}
		}
		return true
	})
}

// IsPlaneEmbedding reports whether no two non-adjacent edges of the
// embedding cross (straight-line drawing test).
func (e *Embedding) IsPlaneEmbedding() bool {
	edges := e.G.Edges()
	for i, a := range edges {
		for _, b := range edges[i+1:] {
			if a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V {
				continue
			}
			if _, hit := SegmentsIntersect(e.Pos[a.U], e.Pos[a.V], e.Pos[b.U], e.Pos[b.V]); hit {
				return false
			}
		}
	}
	return true
}

// QuasiUnitDiskGraph builds a d-quasi unit disk graph (Kuhn, Wattenhofer,
// Zollinger, cited in the paper's Section 3): pairs at distance ≤ dmin
// are always connected, pairs beyond 1 never, and pairs in between are
// connected or not adversarially — here, by a deterministic hash of the
// pair so the construction is reproducible. Requires 0 < dmin ≤ 1.
func QuasiUnitDiskGraph(pos map[graph.Vertex]Point, dmin float64, seed int64) *graph.Graph {
	if dmin <= 0 || dmin > 1 {
		panic("geom: QuasiUnitDiskGraph needs 0 < dmin <= 1")
	}
	b := graph.NewBuilder()
	vs := make([]graph.Vertex, 0, len(pos))
	for v := range pos {
		vs = append(vs, v)
		b.AddVertex(v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for i, u := range vs {
		for _, w := range vs[i+1:] {
			d2 := pos[u].Dist2(pos[w])
			switch {
			case d2 <= dmin*dmin:
				b.AddEdge(u, w)
			case d2 > 1:
				// never connected
			default:
				// The grey zone: a cheap deterministic pair hash plays the
				// adversary.
				h := uint64(u)*0x9e3779b97f4a7c15 ^ uint64(w)*0xc2b2ae3d27d4eb4f ^ uint64(seed)
				if h%3 != 0 {
					b.AddEdge(u, w)
				}
			}
		}
	}
	return b.Build()
}
