// Package churn is the incremental-topology subsystem: single-edge and
// single-vertex deltas applied to a copy-on-write graph, each returning
// the exact set of vertices whose k-neighbourhood view the delta can
// have changed.
//
// The dirty set is the paper's locality theorem read as a performance
// property: a routing decision at u depends only on G_k(u), so a link
// flap on {x, y} can change cached views only at vertices within
// distance k of x or y. Apply computes that ball by bounded BFS over
// both the pre- and the post-graph (removal is visible only in the pre
// ball, addition only in the post ball) and everything outside it
// provably keeps its view — prep.Preprocessor.Invalidate evicts the
// dirty rows and nothing else.
package churn

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"klocal/internal/graph"
)

// Op identifies the kind of a topology delta.
type Op int

const (
	// AddEdge inserts the undirected edge {U, V}, creating absent
	// endpoints implicitly.
	AddEdge Op = iota
	// RemoveEdge deletes the undirected edge {U, V}; both endpoints
	// stay, possibly isolated.
	RemoveEdge
	// AddVertex inserts the isolated vertex U (V is ignored).
	AddVertex
	// RemoveVertex deletes U and every incident edge (V is ignored).
	RemoveVertex
)

func (o Op) String() string {
	switch o {
	case AddEdge:
		return "add-edge"
	case RemoveEdge:
		return "remove-edge"
	case AddVertex:
		return "add-vertex"
	case RemoveVertex:
		return "remove-vertex"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Delta is one topology mutation. V is meaningful only for edge ops.
type Delta struct {
	Op Op           `json:"op"`
	U  graph.Vertex `json:"u"`
	V  graph.Vertex `json:"v,omitempty"`
}

func (d Delta) String() string {
	switch d.Op {
	case AddVertex, RemoveVertex:
		return fmt.Sprintf("%s(%d)", d.Op, d.U)
	default:
		return fmt.Sprintf("%s{%d,%d}", d.Op, d.U, d.V)
	}
}

// Validation errors returned (wrapped) by Apply.
var (
	ErrSelfLoop      = errors.New("churn: self-loop edge")
	ErrEdgeExists    = errors.New("churn: edge already present")
	ErrEdgeMissing   = errors.New("churn: edge not present")
	ErrVertexExists  = errors.New("churn: vertex already present")
	ErrVertexMissing = errors.New("churn: vertex not present")
	errUnknownOp     = errors.New("churn: unknown op")
)

// touched returns the endpoints whose k-balls bound the delta's effect:
// both endpoints for edge ops, the vertex alone for vertex ops (an
// ex- or new neighbour of U is at distance 1 ≤ k of U, so U's ball
// already covers every row a vertex op can change).
func (d Delta) touched() []graph.Vertex {
	if d.Op == AddVertex || d.Op == RemoveVertex {
		return []graph.Vertex{d.U}
	}
	return []graph.Vertex{d.U, d.V}
}

// check validates d against g without applying it.
func (d Delta) check(g *graph.Graph) error {
	switch d.Op {
	case AddEdge:
		if d.U == d.V {
			return fmt.Errorf("%w: %v", ErrSelfLoop, d)
		}
		if g.HasEdge(d.U, d.V) {
			return fmt.Errorf("%w: %v", ErrEdgeExists, d)
		}
	case RemoveEdge:
		if !g.HasEdge(d.U, d.V) {
			return fmt.Errorf("%w: %v", ErrEdgeMissing, d)
		}
	case AddVertex:
		if g.HasVertex(d.U) {
			return fmt.Errorf("%w: %v", ErrVertexExists, d)
		}
	case RemoveVertex:
		if !g.HasVertex(d.U) {
			return fmt.Errorf("%w: %v", ErrVertexMissing, d)
		}
	default:
		return fmt.Errorf("%w: %v", errUnknownOp, d)
	}
	return nil
}

// apply performs the already-validated mutation copy-on-write.
func (d Delta) apply(g *graph.Graph) *graph.Graph {
	switch d.Op {
	case AddEdge:
		return g.WithEdge(d.U, d.V)
	case RemoveEdge:
		return g.WithoutEdge(d.U, d.V)
	case AddVertex:
		return g.WithVertex(d.U)
	default: // RemoveVertex
		return g.DropVertex(d.U)
	}
}

// Apply validates d against g and applies it copy-on-write, returning
// the post-graph and the sorted dirty set: every vertex within distance
// k of a touched endpoint in the pre- or the post-graph. Exactly the
// views of dirty vertices can differ between pre and post; g itself is
// never mutated. k < 1 is clamped to 1 (a delta always dirties at
// least its own endpoints' views).
func Apply(g *graph.Graph, d Delta, k int) (*graph.Graph, []graph.Vertex, error) {
	if err := d.check(g); err != nil {
		return nil, nil, err
	}
	post := d.apply(g)
	return post, DirtySet(g, post, []Delta{d}, k), nil
}

// ApplyAll applies deltas in order (each validated against the evolving
// graph) and returns the final graph plus the union dirty set relating
// the original g to the final graph. On error the original g, the dirty
// set so far, and the failing delta's index are recoverable from the
// wrapped error; the returned graph is nil.
func ApplyAll(g *graph.Graph, deltas []Delta, k int) (*graph.Graph, []graph.Vertex, error) {
	cur := g
	for i, d := range deltas {
		if err := d.check(cur); err != nil {
			return nil, nil, fmt.Errorf("churn: delta %d: %w", i, err)
		}
		cur = d.apply(cur)
	}
	return cur, DirtySet(g, cur, deltas, k), nil
}

// DirtySet returns the sorted set of vertices whose k-neighbourhood
// view can differ between pre and post, given that deltas is the op
// sequence relating them: the union over every touched endpoint of its
// distance-≤k ball in pre and in post. Endpoints absent from a graph
// contribute nothing on that side. The result is a superset of the true
// changed-view set and strictly local: |dirty| ≤ Σ |B_k(endpoints)|,
// independent of n.
func DirtySet(pre, post *graph.Graph, deltas []Delta, k int) []graph.Vertex {
	if k < 1 {
		k = 1
	}
	seen := make(map[graph.Vertex]struct{})
	for _, d := range deltas {
		for _, t := range d.touched() {
			for v := range pre.BFSBounded(t, k) {
				seen[v] = struct{}{}
			}
			for v := range post.BFSBounded(t, k) {
				seen[v] = struct{}{}
			}
			// A touched vertex absent from both graphs (added then
			// removed inside the batch) still had no view on either
			// side; nothing to record.
		}
	}
	dirty := make([]graph.Vertex, 0, len(seen))
	for v := range seen {
		dirty = append(dirty, v)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return dirty
}

// Diff returns a delta sequence transforming pre into post, in an order
// ApplyAll accepts: vertex additions, edge removals, edge additions,
// vertex removals. Both inputs are untouched. Diff(g, g) is empty.
func Diff(pre, post *graph.Graph) []Delta {
	var deltas []Delta
	post.EachVertex(func(v graph.Vertex) bool {
		if !pre.HasVertex(v) && post.Deg(v) == 0 {
			// Non-isolated new vertices are created implicitly by
			// their AddEdge deltas.
			deltas = append(deltas, Delta{Op: AddVertex, U: v})
		}
		return true
	})
	pe, qe := pre.Edges(), post.Edges()
	i, j := 0, 0
	var adds []Delta
	for i < len(pe) || j < len(qe) {
		switch {
		case j == len(qe) || (i < len(pe) && pe[i].Less(qe[j])):
			deltas = append(deltas, Delta{Op: RemoveEdge, U: pe[i].U, V: pe[i].V})
			i++
		case i == len(pe) || qe[j].Less(pe[i]):
			adds = append(adds, Delta{Op: AddEdge, U: qe[j].U, V: qe[j].V})
			j++
		default:
			i, j = i+1, j+1
		}
	}
	deltas = append(deltas, adds...)
	pre.EachVertex(func(v graph.Vertex) bool {
		if !post.HasVertex(v) {
			deltas = append(deltas, Delta{Op: RemoveVertex, U: v})
		}
		return true
	})
	return deltas
}

// Scheduler generates an endless valid delta sequence against an
// evolving graph: mostly edge flaps with occasional vertex arrivals and
// departures, deterministic in the seed. It is the shared source of
// churn schedules for loadgen's sustained-churn mode and klocalcheck's
// delta property.
type Scheduler struct {
	rng  *rand.Rand
	cur  *graph.Graph
	next graph.Vertex // smallest label never used, for fresh arrivals
}

// NewScheduler starts a schedule over g (g is never mutated; the
// scheduler tracks its own evolving copy).
func NewScheduler(g *graph.Graph, seed int64) *Scheduler {
	next := graph.Vertex(0)
	g.EachVertex(func(v graph.Vertex) bool {
		if v >= next {
			next = v + 1
		}
		return true
	})
	return &Scheduler{rng: rand.New(rand.NewSource(seed)), cur: g, next: next}
}

// Graph returns the current evolved graph (immutable; safe to share).
func (s *Scheduler) Graph() *graph.Graph { return s.cur }

// Next returns one delta valid against the current graph and advances
// the schedule. The mix is ~45% edge adds, ~45% edge removals, ~5%
// vertex arrivals, ~5% vertex departures, with fallbacks when a kind is
// impossible (e.g. removing from an empty edge set). The graph is never
// churned below 2 vertices.
func (s *Scheduler) Next() Delta {
	d := s.pick()
	s.cur = d.apply(s.cur)
	return d
}

func (s *Scheduler) pick() Delta {
	g := s.cur
	roll := s.rng.Intn(100)
	switch {
	case roll < 45:
		if d, ok := s.randomNonEdge(); ok {
			return d
		}
		roll = 50 // dense graph: flap an existing edge instead
		fallthrough
	case roll < 90:
		if g.M() > 0 {
			e := g.Edges()[s.rng.Intn(g.M())]
			return Delta{Op: RemoveEdge, U: e.U, V: e.V}
		}
		fallthrough
	case roll < 95:
		d := Delta{Op: AddVertex, U: s.next}
		s.next++
		return d
	default:
		if vs := g.Vertices(); len(vs) > 2 {
			return Delta{Op: RemoveVertex, U: vs[s.rng.Intn(len(vs))]}
		}
		d := Delta{Op: AddVertex, U: s.next}
		s.next++
		return d
	}
}

// randomNonEdge samples a uniform vertex pair a few times looking for a
// non-edge; dense graphs make it fail, and the caller falls back.
func (s *Scheduler) randomNonEdge() (Delta, bool) {
	vs := s.cur.Vertices()
	if len(vs) < 2 {
		return Delta{}, false
	}
	for try := 0; try < 8; try++ {
		u := vs[s.rng.Intn(len(vs))]
		v := vs[s.rng.Intn(len(vs))]
		if u != v && !s.cur.HasEdge(u, v) {
			return Delta{Op: AddEdge, U: u, V: v}, true
		}
	}
	return Delta{}, false
}

// ScheduleDeltas returns a deterministic churn schedule of the given
// length over g — the pure form used by the klocalcheck delta property
// so a finding replays from (graph, seed, steps) alone.
func ScheduleDeltas(g *graph.Graph, seed int64, steps int) []Delta {
	s := NewScheduler(g, seed)
	out := make([]Delta, steps)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
