package churn

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

func v(vs ...graph.Vertex) []graph.Vertex { return vs }

func TestApplyTable(t *testing.T) {
	// Path 0-1-...-9 throughout; k varies per case.
	path := gen.Path(10)
	cases := []struct {
		name    string
		g       *graph.Graph
		d       Delta
		k       int
		wantErr error
		dirty   []graph.Vertex // nil when wantErr != nil
		post    *graph.Graph   // optional expected post-graph
	}{
		{
			name:    "self-loop rejected",
			g:       path,
			d:       Delta{Op: AddEdge, U: 3, V: 3},
			k:       2,
			wantErr: ErrSelfLoop,
		},
		{
			name:    "duplicate edge rejected",
			g:       path,
			d:       Delta{Op: AddEdge, U: 4, V: 5},
			k:       2,
			wantErr: ErrEdgeExists,
		},
		{
			name:    "removing absent edge rejected",
			g:       path,
			d:       Delta{Op: RemoveEdge, U: 1, V: 9},
			k:       2,
			wantErr: ErrEdgeMissing,
		},
		{
			name:    "adding existing vertex rejected",
			g:       path,
			d:       Delta{Op: AddVertex, U: 7},
			k:       2,
			wantErr: ErrVertexExists,
		},
		{
			name:    "removing absent vertex rejected",
			g:       path,
			d:       Delta{Op: RemoveVertex, U: 99},
			k:       2,
			wantErr: ErrVertexMissing,
		},
		{
			// Removing {5,6} cuts the path into 0..5 and 6..9. With
			// k = 2 the dirty set is exactly the radius-2 balls of the
			// endpoints taken in the pre-graph (the post-balls are
			// subsets): {3..7} ∪ {4..8}.
			name:  "cut edge splits component",
			g:     path,
			d:     Delta{Op: RemoveEdge, U: 5, V: 6},
			k:     2,
			dirty: v(3, 4, 5, 6, 7, 8),
			post: graph.FromEdges([]graph.Edge{
				{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
				{U: 4, V: 5}, {U: 6, V: 7}, {U: 7, V: 8}, {U: 8, V: 9},
			}),
		},
		{
			// Removing the end edge {0,1} with k = 3: vertex 4 sits at
			// distance exactly k from endpoint 1 and must be dirty;
			// vertex 5 at distance k+1 must not.
			name:  "dirty boundary at exactly distance k",
			g:     path,
			d:     Delta{Op: RemoveEdge, U: 0, V: 1},
			k:     3,
			dirty: v(0, 1, 2, 3, 4),
		},
		{
			// Isolated arrival touches only itself.
			name:  "vertex arrival is self-dirty",
			g:     path,
			d:     Delta{Op: AddVertex, U: 42},
			k:     3,
			dirty: v(42),
		},
		{
			// Departure of an interior vertex: its radius-2 pre-ball.
			name:  "vertex departure dirties its pre-ball",
			g:     path,
			d:     Delta{Op: RemoveVertex, U: 1},
			k:     2,
			dirty: v(0, 1, 2, 3),
		},
		{
			// A shortcut edge changes distances on both sides: the
			// post-balls reach through the new edge. Pre: B_1(2)={1,2,3},
			// B_1(9)={8,9}; post adds 9 to the first and 2 to the
			// second.
			name:  "shortcut edge dirties both post-balls",
			g:     path,
			d:     Delta{Op: AddEdge, U: 2, V: 9},
			k:     1,
			dirty: v(1, 2, 3, 8, 9),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			post, dirty, err := Apply(tc.g, tc.d, tc.k)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Apply(%v) error = %v, want %v", tc.d, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Apply(%v): %v", tc.d, err)
			}
			if !reflect.DeepEqual(dirty, tc.dirty) {
				t.Fatalf("Apply(%v) dirty = %v, want %v", tc.d, dirty, tc.dirty)
			}
			if tc.post != nil && !post.Equal(tc.post) {
				t.Fatalf("Apply(%v) post-graph mismatch", tc.d)
			}
			// Copy-on-write: the pre-graph is untouched.
			if !tc.g.Equal(gen.Path(10)) {
				t.Fatalf("Apply(%v) mutated the input graph", tc.d)
			}
		})
	}
}

// ballSignature captures the induced radius-k subgraph around w — the
// information a k-local view is built from.
func ballSignature(g *graph.Graph, w graph.Vertex, k int) map[graph.Vertex][]graph.Vertex {
	ball := g.BFSBounded(w, k)
	sig := make(map[graph.Vertex][]graph.Vertex, len(ball))
	for u := range ball {
		var row []graph.Vertex
		for _, x := range g.Adj(u) {
			if _, ok := ball[x]; ok {
				row = append(row, x)
			}
		}
		sig[u] = row
	}
	return sig
}

// TestDirtySetSound checks the contract the whole subsystem leans on:
// every vertex outside the dirty set has an identical induced radius-k
// ball before and after the delta.
func TestDirtySetSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		g := gen.RandomConnected(rng, 6+rng.Intn(14), 0.15)
		k := 1 + rng.Intn(3)
		s := NewScheduler(g, int64(iter))
		d := s.Next()
		post, dirty, err := Apply(g, d, k)
		if err != nil {
			t.Fatalf("iter %d: scheduler emitted invalid delta %v: %v", iter, d, err)
		}
		isDirty := make(map[graph.Vertex]bool, len(dirty))
		for _, u := range dirty {
			isDirty[u] = true
		}
		clean := 0
		g.EachVertex(func(w graph.Vertex) bool {
			if isDirty[w] {
				return true
			}
			clean++
			if !reflect.DeepEqual(ballSignature(g, w, k), ballSignature(post, w, k)) {
				t.Fatalf("iter %d: delta %v (k=%d) changed the ball of clean vertex %d", iter, d, k, w)
			}
			return true
		})
	}
}

// TestDeltaInvalidationBound pins the acceptance-criteria locality
// bound: on a 40x40 grid a single edge delta dirties |B_k(u)| + |B_k(v)|
// ≤ 2(2k²+2k+1) vertices — two orders of magnitude below n.
func TestDeltaInvalidationBound(t *testing.T) {
	g := gen.Grid(40, 40)
	k := 3
	e := g.Edges()[g.M()/2]
	_, dirty, err := Apply(g, Delta{Op: RemoveEdge, U: e.U, V: e.V}, k)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * (2*k*k + 2*k + 1) // two planar-grid balls of radius k
	if len(dirty) > bound {
		t.Fatalf("dirty set %d exceeds 2|B_%d| bound %d", len(dirty), k, bound)
	}
	if len(dirty) >= g.N()/10 {
		t.Fatalf("dirty set %d not local on n=%d grid", len(dirty), g.N())
	}
}

func TestDiffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		pre := gen.RandomConnected(rng, 4+rng.Intn(12), 0.2)
		post := gen.RandomConnected(rng, 4+rng.Intn(12), 0.2)
		deltas := Diff(pre, post)
		got, _, err := ApplyAll(pre, deltas, 2)
		if err != nil {
			t.Fatalf("iter %d: replaying Diff: %v", iter, err)
		}
		if !got.Equal(post) {
			t.Fatalf("iter %d: Diff round-trip mismatch", iter)
		}
		if len(Diff(post, post)) != 0 {
			t.Fatalf("iter %d: Diff(g, g) not empty", iter)
		}
	}
}

func TestScheduleDeltasDeterministic(t *testing.T) {
	g := gen.Grid(5, 5)
	a := ScheduleDeltas(g, 9, 50)
	b := ScheduleDeltas(g, 9, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := ScheduleDeltas(g, 10, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Every schedule replays cleanly from the origin graph.
	if _, _, err := ApplyAll(g, a, 3); err != nil {
		t.Fatalf("schedule does not replay: %v", err)
	}
}
