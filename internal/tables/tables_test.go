package tables

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

func TestFullTablesShortestEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 15; trial++ {
		g := gen.RandomConnected(rng, 4+rng.Intn(20), 0.2)
		ft, err := BuildFullTables(g)
		if err != nil {
			t.Fatal(err)
		}
		alg := ft.Algorithm()
		f := alg.Bind(g, 0)
		for _, s := range g.Vertices() {
			for _, dst := range g.Vertices() {
				if s == dst {
					continue
				}
				res := sim.Run(g, sim.Func(f), s, dst, sim.Options{DetectLoops: true})
				if res.Outcome != sim.Delivered || res.Len() != res.Dist {
					t.Fatalf("full tables %d->%d: %v len=%d dist=%d", s, dst, res.Outcome, res.Len(), res.Dist)
				}
			}
		}
	}
}

func TestFullTablesMemoryIsThetaNLogN(t *testing.T) {
	g := gen.Cycle(64)
	ft, err := BuildFullTables(g)
	if err != nil {
		t.Fatal(err)
	}
	want := (64 - 1) * 2 * 6 // 63 entries × 2 labels × ⌈log₂ 64⌉
	if got := ft.MaxBits(); got != want {
		t.Errorf("MaxBits = %d, want %d", got, want)
	}
}

func TestFullTablesDisconnected(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).AddEdge(2, 3).Build()
	if _, err := BuildFullTables(g); err == nil {
		t.Error("expected error on disconnected network")
	}
}

func TestTreeIntervalDeliversEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 15; trial++ {
		g := gen.RandomConnected(rng, 4+rng.Intn(20), 0.2)
		ti, err := BuildTreeInterval(g, g.Vertices()[0])
		if err != nil {
			t.Fatal(err)
		}
		alg := ti.Algorithm()
		f := alg.Bind(g, 0)
		for _, s := range g.Vertices() {
			for _, dst := range g.Vertices() {
				if s == dst {
					continue
				}
				res := sim.Run(g, sim.Func(f), s, dst, sim.Options{DetectLoops: true})
				if res.Outcome != sim.Delivered {
					t.Fatalf("interval routing %d->%d: %v err=%v", s, dst, res.Outcome, res.Err)
				}
			}
		}
	}
}

func TestTreeIntervalAddressesArePermutation(t *testing.T) {
	g := gen.Grid(3, 4)
	ti, err := BuildTreeInterval(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, v := range g.Vertices() {
		a := ti.Addr(v)
		if a < 0 || a >= g.N() || seen[a] {
			t.Fatalf("bad address %d for %d", a, v)
		}
		seen[a] = true
	}
	if ti.Addr(0) != 0 {
		t.Errorf("root address = %d, want 0", ti.Addr(0))
	}
}

func TestTreeIntervalMemoryIsDegLogN(t *testing.T) {
	g := gen.Star(33) // centre degree 32, leaves degree 1
	ti, err := BuildTreeInterval(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Centre: 32 ports × 2 + own address, 6-bit labels (n=33).
	if got, want := ti.BitsAt(0), (2*32+1)*6; got != want {
		t.Errorf("centre bits = %d, want %d", got, want)
	}
	// Leaf: 1 port (parent).
	if got, want := ti.BitsAt(5), (2*1+1)*6; got != want {
		t.Errorf("leaf bits = %d, want %d", got, want)
	}
	if ti.MaxBits() != ti.BitsAt(0) {
		t.Error("MaxBits should be the centre's")
	}
}

func TestTreeIntervalRoutesOnTreeAreShortest(t *testing.T) {
	// On a tree the spanning tree is the graph: dilation exactly 1.
	rng := rand.New(rand.NewSource(83))
	g := gen.RandomTree(rng, 25)
	ti, err := BuildTreeInterval(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := ti.TreeStretch(); s != 1 {
		t.Errorf("tree stretch on a tree = %v, want 1", s)
	}
}

func TestTreeIntervalStretchOnCycle(t *testing.T) {
	// On C_n the spanning tree is a path: the worst pair (the two path
	// ends, graph distance 1) pays stretch n−1.
	g := gen.Cycle(12)
	ti, err := BuildTreeInterval(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := ti.TreeStretch(); s != 11 {
		t.Errorf("cycle stretch = %v, want 11", s)
	}
}

func TestTreeIntervalErrors(t *testing.T) {
	g := graph.NewBuilder().AddEdge(0, 1).AddEdge(2, 3).Build()
	if _, err := BuildTreeInterval(g, 0); err == nil {
		t.Error("expected error on disconnected network")
	}
	conn := gen.Path(4)
	if _, err := BuildTreeInterval(conn, 99); err == nil {
		t.Error("expected error on unknown root")
	}
	ti, err := BuildTreeInterval(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ti.NextHop(2, 2); err == nil {
		t.Error("NextHop at destination must error")
	}
	if _, err := ti.NextHop(2, 99); err == nil {
		t.Error("NextHop to unknown destination must error")
	}
}

func TestKLocalBitsGrowsWithK(t *testing.T) {
	g := gen.Grid(6, 6)
	b1 := KLocalBits(g, 14, 1)
	b3 := KLocalBits(g, 14, 3)
	bAll := KLocalBits(g, 14, 12)
	if !(b1 < b3 && b3 < bAll) {
		t.Errorf("bits should grow with k: %d, %d, %d", b1, b3, bAll)
	}
	// At k covering the whole graph the memory is the full topology.
	want := (g.N() + 2*g.M()) * bitsPerLabel(g.N())
	if bAll != want {
		t.Errorf("full-graph bits = %d, want %d", bAll, want)
	}
}
