// Package tables implements the classical table-driven routing schemes
// the paper's introduction contrasts k-local routing against (its
// references on universal routing schemes and interval routing): full
// shortest-path tables and interval routing on a spanning tree, both
// with explicit per-node memory accounting.
//
// Two contrasts matter for the paper's story:
//
//   - memory versus dilation: full tables cost Θ(n log n) bits per node
//     for dilation 1; interval routing costs Θ(deg·log n) bits but pays
//     tree stretch; the paper's k-local algorithms "store" their
//     k-neighbourhood — Θ(|G_k(u)|·log n) bits — for dilation ≤ 7/3/1;
//   - labelling freedom: interval routing *renames* the nodes (addresses
//     are DFS numbers), which is precisely what the paper's adversarial
//     label model forbids; the k-local algorithms work under any
//     permutation of labels.
package tables

import (
	"fmt"
	"math"

	"klocal/internal/graph"
	"klocal/internal/route"
)

// bitsPerLabel is the address width for a network of n nodes.
func bitsPerLabel(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// FullTables is the centralized scheme: every node stores a next hop for
// every destination.
type FullTables struct {
	g    *graph.Graph
	next map[graph.Vertex]map[graph.Vertex]graph.Vertex
}

// BuildFullTables computes all-pairs next hops (canonical shortest
// paths). It errors on disconnected networks.
func BuildFullTables(g *graph.Graph) (*FullTables, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("tables: network disconnected")
	}
	ft := &FullTables{
		g:    g,
		next: make(map[graph.Vertex]map[graph.Vertex]graph.Vertex, g.N()),
	}
	for _, t := range g.Vertices() {
		distToT := g.BFS(t)
		for _, u := range g.Vertices() {
			if u == t {
				continue
			}
			hop := graph.NoVertex
			g.EachAdj(u, func(w graph.Vertex) bool {
				if distToT[w] == distToT[u]-1 {
					hop = w
					return false
				}
				return true
			})
			if ft.next[u] == nil {
				ft.next[u] = make(map[graph.Vertex]graph.Vertex, g.N()-1)
			}
			ft.next[u][t] = hop
		}
	}
	return ft, nil
}

// BitsAt returns the table memory at node u: one (destination, port)
// entry per other node.
func (ft *FullTables) BitsAt(u graph.Vertex) int {
	return len(ft.next[u]) * 2 * bitsPerLabel(ft.g.N())
}

// MaxBits returns the largest per-node table.
func (ft *FullTables) MaxBits() int {
	max := 0
	for _, u := range ft.g.Vertices() {
		if b := ft.BitsAt(u); b > max {
			max = b
		}
	}
	return max
}

// Algorithm adapts the tables to the routing interface (dilation exactly
// 1 by construction).
func (ft *FullTables) Algorithm() route.Algorithm {
	return route.Algorithm{
		Name:             "FullTables",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(_ *graph.Graph, _ int) route.Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				hop, ok := ft.next[u][t]
				if !ok || hop == graph.NoVertex {
					//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
					return graph.NoVertex, fmt.Errorf("tables: no entry for %d at %d", t, u)
				}
				return hop, nil
			}
		},
	}
}

// TreeInterval is interval routing on a spanning tree (Santoro–Khatib):
// nodes are renamed by DFS numbers; each node stores, per tree port, the
// DFS interval of the subtree behind it.
type TreeInterval struct {
	g    *graph.Graph
	root graph.Vertex

	addr   map[graph.Vertex]int // DFS number
	parent map[graph.Vertex]graph.Vertex
	// sub[v] = [in, out]: the DFS range of v's subtree.
	sub map[graph.Vertex][2]int
	// children[v] in DFS order.
	children map[graph.Vertex][]graph.Vertex
}

// BuildTreeInterval constructs the scheme over a DFS spanning tree rooted
// at root (lowest-label-first traversal). It errors on disconnected
// networks.
func BuildTreeInterval(g *graph.Graph, root graph.Vertex) (*TreeInterval, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("tables: network disconnected")
	}
	if !g.HasVertex(root) {
		return nil, fmt.Errorf("tables: unknown root %d", root)
	}
	ti := &TreeInterval{
		g:        g,
		root:     root,
		addr:     make(map[graph.Vertex]int, g.N()),
		parent:   make(map[graph.Vertex]graph.Vertex, g.N()),
		sub:      make(map[graph.Vertex][2]int, g.N()),
		children: make(map[graph.Vertex][]graph.Vertex, g.N()),
	}
	ti.parent[root] = graph.NoVertex
	counter := 0
	// Iterative DFS with lowest-label-first order.
	type frame struct {
		v    graph.Vertex
		nbrs []graph.Vertex
		i    int
	}
	visited := map[graph.Vertex]bool{root: true}
	ti.addr[root] = counter
	counter++
	stack := []frame{{v: root, nbrs: g.Adj(root)}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		for f.i < len(f.nbrs) {
			w := f.nbrs[f.i]
			f.i++
			if visited[w] {
				continue
			}
			visited[w] = true
			ti.parent[w] = f.v
			ti.children[f.v] = append(ti.children[f.v], w)
			ti.addr[w] = counter
			counter++
			stack = append(stack, frame{v: w, nbrs: g.Adj(w)})
			advanced = true
			break
		}
		if !advanced {
			v := f.v
			stack = stack[:len(stack)-1]
			out := counter - 1
			ti.sub[v] = [2]int{ti.addr[v], out}
		}
	}
	return ti, nil
}

// Addr returns v's DFS address (the renaming table routing requires).
func (ti *TreeInterval) Addr(v graph.Vertex) int { return ti.addr[v] }

// BitsAt returns the memory at node u: one interval per tree port plus
// its own address — Θ(deg·log n).
func (ti *TreeInterval) BitsAt(u graph.Vertex) int {
	ports := len(ti.children[u])
	if ti.parent[u] != graph.NoVertex {
		ports++
	}
	return (2*ports + 1) * bitsPerLabel(ti.g.N())
}

// MaxBits returns the largest per-node memory.
func (ti *TreeInterval) MaxBits() int {
	max := 0
	for _, u := range ti.g.Vertices() {
		if b := ti.BitsAt(u); b > max {
			max = b
		}
	}
	return max
}

// NextHop routes one step toward t: into the child subtree whose
// interval contains t's address, or to the parent.
func (ti *TreeInterval) NextHop(u, t graph.Vertex) (graph.Vertex, error) {
	if u == t {
		return graph.NoVertex, fmt.Errorf("tables: already at destination")
	}
	at, ok := ti.addr[t]
	if !ok {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("tables: unknown destination %d", t)
	}
	for _, c := range ti.children[u] {
		r := ti.sub[c]
		if at >= r[0] && at <= r[1] {
			return c, nil
		}
	}
	p := ti.parent[u]
	if p == graph.NoVertex {
		//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
		return graph.NoVertex, fmt.Errorf("tables: address %d outside every subtree of the root", at)
	}
	return p, nil
}

// Algorithm adapts the scheme to the routing interface. Routes follow
// the spanning tree, so the dilation is the tree's stretch.
func (ti *TreeInterval) Algorithm() route.Algorithm {
	return route.Algorithm{
		Name:             "TreeInterval",
		OriginAware:      false,
		PredecessorAware: false,
		MinK:             func(int) int { return 0 },
		Bind: func(_ *graph.Graph, _ int) route.Func {
			return func(_, t, u, _ graph.Vertex) (graph.Vertex, error) {
				return ti.NextHop(u, t)
			}
		},
	}
}

// KLocalBits estimates the memory a k-local algorithm implicitly holds at
// u: the vertices and edges of G_k(u), at label width.
func KLocalBits(g *graph.Graph, u graph.Vertex, k int) int {
	dist := g.BFSBounded(u, k)
	edges := 0
	for _, e := range g.Edges() {
		du, okU := dist[e.U]
		dv, okV := dist[e.V]
		if okU && okV && (du < k || dv < k) {
			edges++
		}
	}
	return (len(dist) + 2*edges) * bitsPerLabel(g.N())
}

// TreeStretch returns the worst-case multiplicative stretch of routing
// through ti's spanning tree, over all ordered pairs.
func (ti *TreeInterval) TreeStretch() float64 {
	worst := 1.0
	vs := ti.g.Vertices()
	// Tree distance via lowest common ancestor depths.
	depth := make(map[graph.Vertex]int, len(vs))
	var order []graph.Vertex
	order = append(order, ti.root)
	depth[ti.root] = 0
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, c := range ti.children[v] {
			depth[c] = depth[v] + 1
			order = append(order, c)
		}
	}
	lca := func(a, b graph.Vertex) graph.Vertex {
		for a != b {
			if depth[a] < depth[b] {
				a, b = b, a
			}
			a = ti.parent[a]
		}
		return a
	}
	for i, a := range vs {
		for _, b := range vs[i+1:] {
			l := lca(a, b)
			td := depth[a] + depth[b] - 2*depth[l]
			gd := ti.g.Dist(a, b)
			if gd > 0 {
				if s := float64(td) / float64(gd); s > worst {
					worst = s
				}
			}
		}
	}
	return worst
}
