// Package diroute explores 1-local routing on directed graphs, the
// paper's Section 6.2. Two results frame it: Chávez et al. give 1-local
// algorithms for restricted digraph classes (Eulerian, outerplanar),
// while Fraser et al. show *stateless* 1-local routing is impossible in
// general — Ω(n) memory bits are required.
//
// This package makes both sides executable on the digraph substrate:
//
//   - BasicWalk / OrbitRoute: the stateless successor rule on balanced
//     digraphs. Pairing each in-port with the next out-port in label
//     order is a *permutation of the arc set*, so every walk is confined
//     to one orbit of that permutation: delivery succeeds iff the
//     destination lies on the origin's orbit. Orbits partition the arcs
//     into closed walks (a machine-checked structural fact), and orbits
//     need not cover the whole graph — the stateless rule is defeated
//     even on Eulerian inputs, the Fraser-style impossibility in
//     miniature.
//
//   - RotorRoute: the rotor-router walk. Giving every node a rotating
//     port pointer (Θ(log deg) bits of *node* memory — trading away the
//     paper's memoryless property) makes the walk cover every arc of any
//     strongly connected digraph within m·(diameter+1) steps
//     (Bhatt–Even–Greenberg–Tayar), so delivery is guaranteed.
package diroute

import (
	"fmt"
	"sort"

	"klocal/internal/digraph"
	"klocal/internal/graph"
)

// successor returns the out-neighbour paired with the in-arc (v → u):
// in-neighbours and out-neighbours are both label-sorted, and in-port i
// maps to out-port (i+1) mod outdeg. On balanced digraphs this pairing
// is a bijection between in-arcs and out-arcs at every node.
func successor(d *digraph.Digraph, v, u graph.Vertex) (graph.Vertex, error) {
	ins := d.In(u)
	outs := d.Out(u)
	if len(outs) == 0 {
		return graph.NoVertex, fmt.Errorf("diroute: sink node %d", u)
	}
	idx := sort.Search(len(ins), func(i int) bool { return ins[i] >= v })
	if idx == len(ins) || ins[idx] != v {
		return graph.NoVertex, fmt.Errorf("diroute: %d is not an in-neighbour of %d", v, u)
	}
	return outs[(idx+1)%len(outs)], nil
}

// Orbits decomposes the arcs of a balanced digraph into the closed walks
// of the successor permutation. The returned walks are arc sequences;
// together they cover every arc exactly once.
func Orbits(d *digraph.Digraph) ([][]digraph.Arc, error) {
	if !d.Balanced() {
		return nil, fmt.Errorf("diroute: successor pairing needs a balanced digraph")
	}
	seen := make(map[digraph.Arc]bool, d.M())
	var orbits [][]digraph.Arc
	for _, start := range d.Arcs() {
		if seen[start] {
			continue
		}
		var orbit []digraph.Arc
		cur := start
		for {
			orbit = append(orbit, cur)
			seen[cur] = true
			next, err := successor(d, cur.From, cur.To)
			if err != nil {
				return nil, err
			}
			cur = digraph.Arc{From: cur.To, To: next}
			if cur == start {
				break
			}
		}
		orbits = append(orbits, orbit)
	}
	return orbits, nil
}

// OrbitResult describes a stateless successor-rule route.
type OrbitResult struct {
	// Route is the visited vertex walk from s.
	Route []graph.Vertex
	// Delivered reports whether t appeared on the orbit.
	Delivered bool
	// OrbitLen is the length of the full orbit through s's first out-arc.
	OrbitLen int
}

// OrbitRoute runs the stateless 1-local successor rule from s: exit via
// the out-port paired with the in-port (first exit: lowest out-port).
// The walk is confined to one orbit; if the orbit closes without
// visiting t, no stateless continuation exists and the route fails —
// the Section 6.2 impossibility in executable form.
func OrbitRoute(d *digraph.Digraph, s, t graph.Vertex) (*OrbitResult, error) {
	if !d.HasVertex(s) || !d.HasVertex(t) {
		return nil, fmt.Errorf("diroute: unknown endpoint")
	}
	if !d.Balanced() {
		return nil, fmt.Errorf("diroute: successor pairing needs a balanced digraph")
	}
	res := &OrbitResult{Route: []graph.Vertex{s}}
	if s == t {
		res.Delivered = true
		return res, nil
	}
	outs := d.Out(s)
	if len(outs) == 0 {
		return nil, fmt.Errorf("diroute: sink origin %d", s)
	}
	start := digraph.Arc{From: s, To: outs[0]}
	cur := start
	for {
		res.OrbitLen++
		res.Route = append(res.Route, cur.To)
		if cur.To == t {
			res.Delivered = true
			return res, nil
		}
		next, err := successor(d, cur.From, cur.To)
		if err != nil {
			return nil, err
		}
		cur = digraph.Arc{From: cur.To, To: next}
		if cur == start {
			return res, nil // orbit closed without finding t
		}
	}
}

// RotorResult describes a rotor-router route.
type RotorResult struct {
	Route     []graph.Vertex
	Delivered bool
	// NodeBits is the total rotor memory across nodes: Θ(Σ log outdeg).
	NodeBits int
}

// RotorRoute runs the rotor-router walk from s: every node remembers a
// rotating pointer into its out-ports and forwards each arriving message
// to the next port. On strongly connected digraphs the walk traverses
// every arc within m·(diameter+1) steps, so it reaches t.
func RotorRoute(d *digraph.Digraph, s, t graph.Vertex, maxSteps int) (*RotorResult, error) {
	if !d.HasVertex(s) || !d.HasVertex(t) {
		return nil, fmt.Errorf("diroute: unknown endpoint")
	}
	res := &RotorResult{Route: []graph.Vertex{s}}
	for _, v := range d.Vertices() {
		bits := 1
		for 1<<bits < d.OutDeg(v) {
			bits++
		}
		res.NodeBits += bits
	}
	if s == t {
		res.Delivered = true
		return res, nil
	}
	if maxSteps == 0 {
		maxSteps = 4 * d.M() * (d.N() + 1)
	}
	rotor := make(map[graph.Vertex]int, d.N())
	u := s
	for step := 0; step < maxSteps; step++ {
		outs := d.Out(u)
		if len(outs) == 0 {
			return res, fmt.Errorf("diroute: sink node %d", u)
		}
		next := outs[rotor[u]%len(outs)]
		rotor[u]++
		res.Route = append(res.Route, next)
		u = next
		if u == t {
			res.Delivered = true
			return res, nil
		}
	}
	return res, nil
}

// StatelessDefeat searches d for an origin-destination pair the
// stateless successor rule cannot serve (t off s's orbit), returning the
// first such pair in label order, or ok=false if every pair is covered.
func StatelessDefeat(d *digraph.Digraph) (s, t graph.Vertex, ok bool) {
	for _, a := range d.Vertices() {
		for _, b := range d.Vertices() {
			if a == b {
				continue
			}
			res, err := OrbitRoute(d, a, b)
			if err != nil {
				continue
			}
			if !res.Delivered {
				return a, b, true
			}
		}
	}
	return graph.NoVertex, graph.NoVertex, false
}
