package diroute

import (
	"math/rand"
	"testing"

	"klocal/internal/digraph"
	"klocal/internal/graph"
)

func TestOrbitsPartitionArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		d := digraph.RandomEulerian(rng, 4+rng.Intn(16), 1+rng.Intn(3))
		orbits, err := Orbits(d)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[digraph.Arc]bool)
		total := 0
		for _, orbit := range orbits {
			total += len(orbit)
			prev := orbit[len(orbit)-1]
			for _, a := range orbit {
				if seen[a] {
					t.Fatalf("arc %v in two orbits", a)
				}
				seen[a] = true
				// Consecutive arcs chain head to tail (closed walk).
				if prev.To != a.From {
					t.Fatalf("orbit not a walk: %v then %v", prev, a)
				}
				prev = a
			}
		}
		if total != d.M() {
			t.Fatalf("orbits cover %d arcs, want %d", total, d.M())
		}
	}
}

func TestOrbitsRequireBalance(t *testing.T) {
	d := digraph.NewBuilder().AddArc(0, 1).AddArc(1, 2).AddArc(2, 0).AddArc(0, 2).Build()
	if _, err := Orbits(d); err == nil {
		t.Error("unbalanced digraph must be rejected")
	}
}

func TestOrbitRouteOnDirectedCycle(t *testing.T) {
	// A single directed cycle has one orbit: every pair is served.
	d := digraph.Circulant(8, []int{1})
	for _, s := range d.Vertices() {
		for _, dst := range d.Vertices() {
			res, err := OrbitRoute(d, s, dst)
			if err != nil || !res.Delivered {
				t.Fatalf("cycle orbit route %d->%d failed: %v", s, dst, err)
			}
		}
	}
}

func TestOrbitRouteConfinedToOrbit(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 15; trial++ {
		d := digraph.RandomEulerian(rng, 5+rng.Intn(12), 2)
		vs := d.Vertices()
		s := vs[rng.Intn(len(vs))]
		dst := vs[rng.Intn(len(vs))]
		res, err := OrbitRoute(d, s, dst)
		if err != nil {
			t.Fatal(err)
		}
		// The walk length never exceeds the total arc count (one orbit).
		if res.OrbitLen > d.M() {
			t.Fatalf("orbit walk %d exceeds m=%d", res.OrbitLen, d.M())
		}
		// Every hop is an arc.
		for i := 1; i < len(res.Route); i++ {
			if !d.HasArc(res.Route[i-1], res.Route[i]) {
				t.Fatalf("non-arc hop %d->%d", res.Route[i-1], res.Route[i])
			}
		}
	}
}

func TestStatelessRuleIsDefeatedSomewhere(t *testing.T) {
	// The Section 6.2 impossibility in miniature: among random Eulerian
	// digraphs there are instances whose successor orbits do not cover
	// all pairs, so the stateless 1-local rule fails there.
	rng := rand.New(rand.NewSource(94))
	found := false
	for trial := 0; trial < 60 && !found; trial++ {
		d := digraph.RandomEulerian(rng, 6+rng.Intn(10), 2)
		orbits, err := Orbits(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(orbits) < 2 {
			continue // single orbit covers everything
		}
		s, dst, ok := StatelessDefeat(d)
		if !ok {
			// Multiple orbits can still cover all vertices pairwise if
			// every orbit visits every vertex; keep searching.
			continue
		}
		found = true
		res, err := OrbitRoute(d, s, dst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			t.Fatal("StatelessDefeat returned a served pair")
		}
		// The rotor walk, with per-node memory, serves the same pair.
		rr, err := RotorRoute(d, s, dst, 0)
		if err != nil || !rr.Delivered {
			t.Fatalf("rotor walk should deliver %d->%d: %v", s, dst, err)
		}
	}
	if !found {
		t.Error("no defeating instance found in 60 random Eulerian digraphs; the search is miscalibrated")
	}
}

func TestRotorRouteDeliversOnStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 20; trial++ {
		d := digraph.RandomEulerian(rng, 5+rng.Intn(15), 1+rng.Intn(3))
		vs := d.Vertices()
		for i := 0; i < 6; i++ {
			s := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			res, err := RotorRoute(d, s, dst, 0)
			if err != nil || !res.Delivered {
				t.Fatalf("rotor route %d->%d failed: %v", s, dst, err)
			}
			if res.NodeBits <= 0 {
				t.Error("rotor memory must be accounted")
			}
			// BEGT bound: the walk covers all arcs within m(D+1) steps;
			// D <= n, so 4·m·(n+1) is a safe ceiling the default uses.
			if len(res.Route)-1 > 4*d.M()*(d.N()+1) {
				t.Fatalf("rotor walk too long: %d", len(res.Route)-1)
			}
		}
	}
}

func TestRotorRouteSelfAndErrors(t *testing.T) {
	d := digraph.Circulant(5, []int{1})
	res, err := RotorRoute(d, 2, 2, 0)
	if err != nil || !res.Delivered || len(res.Route) != 1 {
		t.Errorf("self route: %+v err=%v", res, err)
	}
	if _, err := RotorRoute(d, 0, 99, 0); err == nil {
		t.Error("unknown endpoint must error")
	}
	if _, err := OrbitRoute(d, 0, 99); err == nil {
		t.Error("unknown endpoint must error")
	}
	sink := digraph.NewBuilder().AddArc(0, 1).Build()
	if _, err := OrbitRoute(sink, 0, 1); err == nil {
		t.Error("unbalanced digraph must be rejected by OrbitRoute")
	}
}

func TestSuccessorPairingIsBijection(t *testing.T) {
	// At every node of a balanced digraph, distinct in-arcs map to
	// distinct out-arcs.
	rng := rand.New(rand.NewSource(96))
	d := digraph.RandomEulerian(rng, 12, 3)
	for _, u := range d.Vertices() {
		used := make(map[graph.Vertex]bool)
		for _, v := range d.In(u) {
			w, err := successor(d, v, u)
			if err != nil {
				t.Fatal(err)
			}
			if used[w] {
				t.Fatalf("node %d: out-port %d paired twice", u, w)
			}
			used[w] = true
		}
		if len(used) != d.OutDeg(u) {
			t.Fatalf("node %d: pairing not surjective", u)
		}
	}
}
