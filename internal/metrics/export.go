package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is a frozen, renderable metric snapshot: merged counters,
// histogram summaries, and derived key/value gauges attached by the
// producer (delivery rate, throughput, cache hit rate, ...).
type Report struct {
	// Name labels the run (engine configuration, workload, ...).
	Name string `json:"name,omitempty"`
	// Counters are merged event counts.
	Counters map[string]int64 `json:"counters"`
	// Gauges are derived floating-point values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms are merged distribution summaries.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Put attaches (or overwrites) a derived gauge.
func (r *Report) Put(name string, v float64) {
	if r.Gauges == nil {
		r.Gauges = make(map[string]float64)
	}
	r.Gauges[name] = v
}

// Counter returns the named counter (0 if absent).
func (r *Report) Counter(name string) int64 { return r.Counters[name] }

// Gauge returns the named gauge (0 if absent).
func (r *Report) Gauge(name string) float64 { return r.Gauges[name] }

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as aligned plain text: counters, gauges,
// then one summary line per histogram.
func (r *Report) WriteText(w io.Writer) {
	if r.Name != "" {
		fmt.Fprintf(w, "== %s ==\n", r.Name)
	}
	for _, k := range sortedKeys(r.Counters) {
		fmt.Fprintf(w, "%-24s %d\n", k, r.Counters[k])
	}
	for _, k := range sortedKeys(r.Gauges) {
		fmt.Fprintf(w, "%-24s %s\n", k, gauge(r.Gauges[k]))
	}
	for _, k := range sortedKeys(r.Histograms) {
		h := r.Histograms[k]
		fmt.Fprintf(w, "%-24s count=%d min=%d max=%d mean=%s p50=%s p90=%s p99=%s\n",
			k, h.Count, h.Min, h.Max, gauge(h.Mean), gauge(h.P50), gauge(h.P90), gauge(h.P99))
	}
}
