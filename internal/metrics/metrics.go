// Package metrics provides the measurement layer of the traffic engine:
// atomic counters, fixed-bucket log-scale histograms, and mergeable
// per-worker shards that let many routing workers record without
// contending on shared locks. A Report snapshots a merged view and
// renders it as plain text or JSON.
//
// Concurrency model. Counter is safe for concurrent use. Histogram is
// deliberately single-writer: each worker owns its own histograms inside
// a Shard. A Shard guards its maps and histograms with one private
// mutex, so the owning worker records through an uncontended lock while
// observers take consistent live copies with Clone/MergeShardsLive — the
// daemon's /metrics endpoint reads without ever quiescing the workers.
// MergeShards keeps the historical post-quiesce contract (and is equally
// safe on live shards). This mirrors the paper's locality discipline:
// record locally, aggregate globally.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically adjustable atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram bucket layout: values 0..15 get exact buckets; larger values
// share eight sub-buckets per power-of-two octave (relative error ≤ 12.5%).
// The layout is fixed so histograms recorded independently always merge
// bucket-by-bucket.
const (
	exactBuckets     = 16
	subBucketsPerOct = 8
	// maxOctave is the octave of the largest representable value
	// (1<<62); values beyond clamp into the top bucket.
	maxOctave  = 62
	numBuckets = exactBuckets + (maxOctave-3)*subBucketsPerOct
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < exactBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // floor(log2 v), ≥ 4
	if e > maxOctave {
		e = maxOctave
	}
	sub := (uint64(v) >> uint(e-3)) & (subBucketsPerOct - 1)
	i := exactBuckets + (e-4)*subBucketsPerOct + int(sub)
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// bucketBounds returns the inclusive lower and exclusive upper value
// bounds of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < exactBuckets {
		return int64(i), int64(i) + 1
	}
	oct := (i-exactBuckets)/subBucketsPerOct + 4
	sub := int64((i - exactBuckets) % subBucketsPerOct)
	width := int64(1) << uint(oct-3)
	lo = int64(1)<<uint(oct) + sub*width
	return lo, lo + width
}

// Histogram is a fixed log-scale-bucket histogram of non-negative int64
// samples. It is single-writer: use one per worker (see Shard) and Merge
// the shards after the workers stop. The zero value is ready to use.
type Histogram struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [numBuckets]int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds other's samples into h. Histograms share a fixed bucket
// layout, so merging is exact bucket addition.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
}

// Clone returns an independent copy of h.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]): the
// sample value below which a fraction q of the recorded samples fall,
// linearly interpolated inside the containing bucket. Exact for values
// < 16; relative error ≤ 12.5% beyond. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketBounds(i)
			// Clamp the bucket to the observed extremes so estimates
			// never leave [min, max].
			flo, fhi := float64(lo), float64(hi)
			if flo < float64(h.min) {
				flo = float64(h.min)
			}
			if fhi > float64(h.max)+1 {
				fhi = float64(h.max) + 1
			}
			frac := (rank - cum) / float64(n)
			return flo + frac*(fhi-flo)
		}
		cum = next
	}
	return float64(h.max)
}

// Buckets returns the non-empty buckets as (lower bound, count) pairs in
// increasing value order — the export format.
func (h *Histogram) Buckets() []BucketCount {
	var out []BucketCount
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, _ := bucketBounds(i)
		out = append(out, BucketCount{Lo: lo, Count: n})
	}
	return out
}

// BucketCount is one exported histogram bucket.
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Count int64 `json:"count"`
}

// Shard is one worker's private metric set: named histograms and local
// counters. A worker records into its own shard through the shard's
// private mutex (uncontended on the hot path — only live observers ever
// take it concurrently); the engine merges all shards into a Report once
// the workers have stopped, or takes a live snapshot at any moment with
// Clone/MergeShardsLive.
type Shard struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*Histogram
}

// NewShard returns an empty shard.
func NewShard() *Shard {
	return &Shard{
		counters: make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Count adds n to the named shard-local counter.
func (s *Shard) Count(name string, n int64) {
	s.mu.Lock()
	s.counters[name] += n
	s.mu.Unlock()
}

// Counter returns the named shard-local counter (0 if absent).
func (s *Shard) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Observe records v into the named shard-local histogram.
func (s *Shard) Observe(name string, v int64) {
	s.mu.Lock()
	s.histogramLocked(name).Observe(v)
	s.mu.Unlock()
}

// Histogram returns the named histogram, creating it if absent. The
// returned pointer bypasses the shard lock: read or mutate it only while
// no other goroutine is using the shard (tests, post-quiesce analysis).
func (s *Shard) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.histogramLocked(name)
}

func (s *Shard) histogramLocked(name string) *Histogram {
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Clone returns a deep copy of the shard taken atomically under its
// lock — the live-read primitive: a worker can keep recording while an
// observer snapshots a consistent view.
func (s *Shard) Clone() *Shard {
	out := NewShard()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, n := range s.counters {
		out.counters[name] = n
	}
	for name, h := range s.hists {
		out.hists[name] = h.Clone()
	}
	return out
}

// MergeShards combines per-worker shards into one merged shard. Each
// input is read under its own lock, so the result is per-shard
// consistent even while workers record; call it after the workers
// quiesce when a globally exact total is required.
func MergeShards(shards ...*Shard) *Shard {
	out := NewShard()
	for _, s := range shards {
		if s == nil {
			continue
		}
		s.mu.Lock()
		for name, n := range s.counters {
			out.counters[name] += n
		}
		for name, h := range s.hists {
			out.histogramLocked(name).Merge(h)
		}
		s.mu.Unlock()
	}
	return out
}

// MergeShardsLive is MergeShards for shards still receiving writes: it
// never blocks a recording worker for longer than one shard copy, and
// the merged result is consistent within each shard (cross-shard skew is
// bounded by the scrape instant). This is the /metrics read path — the
// workers are never quiesced.
func MergeShardsLive(shards ...*Shard) *Shard {
	return MergeShards(shards...)
}

// Snapshot freezes the shard into a Report. Extra key/value pairs (e.g.
// derived rates) may be attached afterwards via Report.Put.
func (s *Shard) Snapshot() *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Report{
		Counters:   make(map[string]int64, len(s.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(s.hists)),
	}
	for name, n := range s.counters {
		r.Counters[name] = n
	}
	for name, h := range s.hists {
		r.Histograms[name] = snapshotHistogram(h)
	}
	return r
}

// HistogramSnapshot is the frozen, export-ready view of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Min:     h.Min(),
		Max:     h.Max(),
		Mean:    round3(h.Mean()),
		P50:     round3(h.Quantile(0.50)),
		P90:     round3(h.Quantile(0.90)),
		P99:     round3(h.Quantile(0.99)),
		Buckets: h.Buckets(),
	}
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// sortedKeys returns map keys in lexical order for stable rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Gauge formats a float for text reports, trimming to three decimals.
func gauge(v float64) string { return fmt.Sprintf("%.3f", v) }
