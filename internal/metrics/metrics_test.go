package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestBucketLayout(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and bucket indices must be monotone in the value.
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		lo, hi := bucketBounds(i)
		if v != math.MaxInt64 && (v < lo || v >= hi) {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d)", v, i, lo, hi)
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 16 || h.Sum() != 120 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// Small values get exact buckets, so the median of 0..15 sits in
	// bucket 8's [8, 9) range.
	if p := h.Quantile(0.5); p < 7 || p > 9 {
		t.Fatalf("p50 of 0..15 = %v, want ~8", p)
	}
}

func TestHistogramQuantileAgainstSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 5000)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := float64(samples[int(q*float64(len(samples)))-1])
		got := h.Quantile(q)
		// Log-scale buckets guarantee ≤ 12.5% relative error.
		if exact > 16 && math.Abs(got-exact) > 0.13*exact+1 {
			t.Errorf("q=%.2f: got %.1f, exact %.1f (err > 12.5%%)", q, got, exact)
		}
	}
}

func TestHistogramMergeEquivalence(t *testing.T) {
	// Recording samples across shards and merging must equal recording
	// them all into one histogram.
	rng := rand.New(rand.NewSource(3))
	var whole Histogram
	parts := []*Histogram{{}, {}, {}, {}}
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 16))
		whole.Observe(v)
		parts[i%len(parts)].Observe(v)
	}
	var merged Histogram
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge summary mismatch: %+v vs %+v", merged, whole)
	}
	if merged.buckets != whole.buckets {
		t.Fatal("merged buckets differ from whole-recorded buckets")
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("quantile %v differs after merge", q)
		}
	}
}

func TestMergeEmptyAndClone(t *testing.T) {
	var a, b Histogram
	a.Observe(42)
	b.Merge(nil)
	b.Merge(&Histogram{})
	b.Merge(&a)
	if b.Count() != 1 || b.Min() != 42 || b.Max() != 42 {
		t.Fatalf("merge into empty: %+v", b)
	}
	c := b.Clone()
	c.Observe(1)
	if b.Count() != 1 || c.Count() != 2 {
		t.Fatal("clone is not independent")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestShardMergeAndReport(t *testing.T) {
	shards := []*Shard{NewShard(), NewShard()}
	for i, s := range shards {
		s.Count("delivered", int64(10*(i+1)))
		for v := int64(0); v < 100; v++ {
			s.Observe("hops", v)
		}
	}
	merged := MergeShards(shards...)
	if merged.counters["delivered"] != 30 {
		t.Fatalf("merged counter = %d", merged.counters["delivered"])
	}
	rep := merged.Snapshot()
	rep.Name = "test"
	rep.Put("delivery_rate", 1.0)
	if rep.Counter("delivered") != 30 || rep.Histograms["hops"].Count != 200 {
		t.Fatalf("report: %+v", rep)
	}

	var text bytes.Buffer
	rep.WriteText(&text)
	for _, want := range []string{"delivered", "delivery_rate", "hops", "p99"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Counters["delivered"] != 30 || back.Gauges["delivery_rate"] != 1.0 {
		t.Fatalf("round-tripped report: %+v", back)
	}
}
