package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestBucketBoundsRoundTrip pins the mutual consistency of bucketOf and
// bucketBounds across the whole layout: every bucket's [lo, hi) maps
// back to itself, buckets tile the axis with no gaps, and past the exact
// range the relative bucket width (the quantile error bound) stays
// ≤ 12.5%.
func TestBucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(lo=%d) = %d, want bucket %d", lo, got, i)
		}
		if i == numBuckets-1 {
			// The top bucket's exclusive bound is 1<<63, which overflows
			// int64; it is open-ended by construction.
			if hi > lo {
				t.Fatalf("top bucket: expected overflowed hi, got [%d, %d)", lo, hi)
			}
			continue
		}
		if hi <= lo {
			t.Fatalf("bucket %d: empty or inverted bounds [%d, %d)", i, lo, hi)
		}
		if got := bucketOf(hi - 1); got != i {
			t.Fatalf("bucketOf(hi-1=%d) = %d, want bucket %d", hi-1, got, i)
		}
		if nextLo, _ := bucketBounds(i + 1); nextLo != hi {
			t.Fatalf("gap between buckets %d and %d: hi=%d, next lo=%d", i, i+1, hi, nextLo)
		}
		if i >= exactBuckets {
			if width := hi - lo; 8*width > lo {
				t.Fatalf("bucket %d: width %d exceeds 12.5%% of lo %d", i, width, lo)
			}
		}
	}
}

// TestBucketOfFullRange draws values across every magnitude of the
// non-negative int64 range (plus the boundary values themselves) and
// asserts each lands in a bucket whose bounds contain it.
func TestBucketOfFullRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(v int64) {
		t.Helper()
		i := bucketOf(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of layout [0, %d)", v, i, numBuckets)
		}
		lo, hi := bucketBounds(i)
		if v < lo {
			t.Fatalf("value %d below its bucket %d = [%d, %d)", v, i, lo, hi)
		}
		// hi ≤ lo means the open-ended top bucket (overflowed bound).
		if hi > lo && v >= hi {
			t.Fatalf("value %d beyond its bucket %d = [%d, %d)", v, i, lo, hi)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	check(math.MaxInt64)
	check(math.MaxInt64 - 1)
	check(1 << 62)
	check(1<<62 - 1)
	for shift := uint(4); shift < 63; shift++ {
		check(int64(1) << shift)
		check(int64(1)<<shift - 1)
		check(int64(1)<<shift + 1)
		for draw := 0; draw < 200; draw++ {
			check(int64(1)<<shift | rng.Int63n(int64(1)<<shift))
		}
	}
}

// TestMergeRandomSplitsExact asserts the merge identity the shard design
// rests on: a sample stream split arbitrarily across histograms and
// re-merged is bit-for-bit the histogram of the unsplit stream — same
// counts, same buckets, and therefore identical quantile estimates.
func TestMergeRandomSplitsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		parts := 1 + rng.Intn(7)
		split := make([]*Histogram, parts)
		for i := range split {
			split[i] = &Histogram{}
		}
		whole := &Histogram{}
		n := 1 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			// Log-uniform magnitudes so every octave sees traffic.
			v := rng.Int63n(int64(1) << uint(1+rng.Intn(62)))
			whole.Observe(v)
			split[rng.Intn(parts)].Observe(v)
		}
		merged := &Histogram{}
		for _, h := range split {
			merged.Merge(h)
		}
		if !reflect.DeepEqual(merged, whole) {
			t.Fatalf("trial %d: merged histogram differs from unsplit (count %d vs %d, sum %d vs %d)",
				trial, merged.Count(), whole.Count(), merged.Sum(), whole.Sum())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if merged.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("trial %d: quantile %.2f differs after merge", trial, q)
			}
		}
	}
}

// TestShardLiveClone exercises the live-read contract: a recording
// goroutine keeps observing while another clones and live-merges, and
// every snapshot is internally consistent (histogram count matches the
// request counter at clone time). Run under -race this also proves the
// lock discipline.
func TestShardLiveClone(t *testing.T) {
	sh := NewShard()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sh.Count("requests", 1)
			sh.Observe("latency_ns", i%4096)
		}
	}()
	for i := 0; i < 200; i++ {
		c := sh.Clone()
		if got, want := c.Histogram("latency_ns").Count(), c.Counter("requests"); got > want {
			t.Fatalf("torn clone: %d observations vs %d counted requests", got, want)
		}
		m := MergeShardsLive(sh, NewShard())
		if m.Counter("requests") < c.Counter("requests") {
			t.Fatal("live merge went backwards against an earlier clone")
		}
	}
	close(stop)
	wg.Wait()
	final := MergeShards(sh)
	if final.Histogram("latency_ns").Count() != final.Counter("requests") {
		t.Fatal("post-quiesce merge lost samples")
	}
}
