package engine

import (
	"math/rand"
	"sort"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
)

// HotspotSamples is the default number of BFS sources the hotspot
// workload samples when estimating betweenness.
const HotspotSamples = 32

// ApproxBetweenness estimates betweenness centrality by Brandes
// dependency accumulation from a uniform sample of BFS sources (exact
// when samples ≥ n). It returns the label-sorted vertex list and the
// parallel weight estimates; the absolute scale is meaningless, only
// the relative skew matters. Cost is O(samples·(n+m)).
func ApproxBetweenness(st bigraph.Store, rng *rand.Rand, samples int) ([]graph.Vertex, []float64) {
	vs := StoreVertices(st)
	n := len(vs)
	bc := make([]float64, n)
	if n < 3 {
		return vs, bc
	}
	if samples <= 0 {
		samples = HotspotSamples
	}
	sources := rng.Perm(n)
	if samples < n {
		sources = sources[:samples]
	}

	idx := make(map[graph.Vertex]int32, n)
	for i, v := range vs {
		idx[v] = int32(i)
	}
	var (
		order = make([]int32, 0, n) // BFS visit order
		dist  = make([]int32, n)    // -1 = unvisited
		sigma = make([]float64, n)  // shortest-path counts
		delta = make([]float64, n)  // dependency accumulators
		queue = make([]int32, 0, n)
	)
	for _, si := range sources {
		s := int32(si)
		order = order[:0]
		queue = append(queue[:0], s)
		for i := range dist {
			dist[i], sigma[i], delta[i] = -1, 0, 0
		}
		dist[s], sigma[s] = 0, 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			st.EachAdj(vs[v], func(wv graph.Vertex) bool {
				w := idx[wv]
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
				return true
			})
		}
		// Accumulate dependencies in reverse BFS order: each vertex
		// pushes its share back onto its shortest-path predecessors.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			share := (1 + delta[w]) / sigma[w]
			st.EachAdj(vs[w], func(pv graph.Vertex) bool {
				p := idx[pv]
				if dist[p] == dist[w]-1 {
					delta[p] += sigma[p] * share
				}
				return true
			})
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return vs, bc
}

// Hotspot routes from uniform random sources to destinations skewed by
// approximate betweenness centrality — traffic concentrating on the
// vertices most shortest paths cross (the "core routers"), which is
// where dormant-edge pruning and view caching are stressed hardest.
// samples ≤ 0 uses HotspotSamples.
func Hotspot(rng *rand.Rand, g *graph.Graph, samples int) Workload {
	return HotspotStore(rng, g, samples)
}

// HotspotStore is Hotspot over any bigraph.Store.
func HotspotStore(rng *rand.Rand, st bigraph.Store, samples int) Workload {
	vs, bc := ApproxBetweenness(st, rng, samples)
	// Cumulative weights for inverse-transform sampling. An all-zero
	// estimate (tiny or star-free degenerate graphs) degrades to the
	// uniform shape rather than failing.
	cum := make([]float64, len(vs))
	total := 0.0
	for i, w := range bc {
		total += w
		cum[i] = total
	}
	if total == 0 {
		w := uniformOver(rng, vs)
		w.Name = "hotspot"
		return w
	}
	return Workload{
		Name: "hotspot",
		Next: func() Request {
			x := rng.Float64() * total
			t := vs[sort.SearchFloat64s(cum, x)]
			s := vs[rng.Intn(len(vs))]
			for s == t {
				s = vs[rng.Intn(len(vs))]
			}
			return Request{S: s, T: t}
		},
	}
}
