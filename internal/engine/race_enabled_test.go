//go:build race

package engine

// raceEnabled lets allocation-count gates skip under -race, where the
// instrumentation itself allocates.
const raceEnabled = true
