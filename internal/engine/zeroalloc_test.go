package engine

import (
	"errors"
	"testing"
	"time"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// warmRouteAllocGate bounds the steady-state allocations of one warm
// RouteScratch call (graph-backed, views cached, worker-owned scratch).
// The compact-view decision paths and the epoch-marked scratch banks make
// this 0: any regression that reintroduces per-request maps, view
// rebuilding, or growing buffers trips the gate immediately.
const warmRouteAllocGate = 0

// TestWarmRouteAllocsGate is the zero-alloc regression gate on the warm
// serving path: Snapshot.RouteScratch with a reused scratch, all views
// prewarmed, must not allocate at all. Covers the plain compact path
// (Algorithm 2) and the bounce-simulation path (Algorithm 1B), which
// exercises nbhd.BounceScratch reuse through route's simPool.
func TestWarmRouteAllocsGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	algs := []struct {
		name string
		alg  route.Algorithm
	}{
		{"Algorithm2", route.Algorithm2()},
		{"Algorithm1B", route.Algorithm1B()},
	}
	for _, tc := range algs {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(24)
			snap, err := NewSnapshotOpts(g, 0, tc.alg, SnapshotOptions{Prewarm: -1})
			if err != nil {
				t.Fatal(err)
			}
			vs := g.Vertices()
			pairs := [][2]graph.Vertex{
				{vs[0], vs[len(vs)-1]},
				{vs[len(vs)-1], vs[0]},
				{vs[3], vs[len(vs)/2]},
				{vs[len(vs)/2], vs[1]},
			}
			sc := sim.NewScratch()
			// Warm: every view cached, every scratch bank grown to its
			// high-water mark.
			for _, p := range pairs {
				if res := snap.RouteScratch(p[0], p[1], 0, sc); res.Outcome != sim.Delivered {
					t.Fatalf("route %v: %v", p, res.Outcome)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				p := pairs[i%len(pairs)]
				i++
				snap.RouteScratch(p[0], p[1], 0, sc)
			})
			if avg > warmRouteAllocGate {
				t.Fatalf("warm RouteScratch allocates %.2f times per request, gate %d", avg, warmRouteAllocGate)
			}
			t.Logf("warm RouteScratch: %.2f allocs/request (gate %d)", avg, warmRouteAllocGate)
		})
	}
}

// TestDoBatchSaturatedNoLossNoDup: when DoBatch fails with ErrSaturated
// mid-batch, the already-admitted requests are still routed toward the
// batch's pooled completion channel. The error path must consume exactly
// those in-flight responses before the channel returns to the pool —
// a straggler left behind would be delivered to a later, unrelated batch
// (a response lost here and a slot corrupted there). This test saturates
// a 1-worker/1-slot engine mid-batch, then reuses the engine for full
// batches of distinguishable requests and checks every slot carries its
// own request. Run under -race it also proves the pooled channel handoff
// is properly synchronized.
func TestDoBatchSaturatedNoLossNoDup(t *testing.T) {
	g := gen.Path(8)
	snap := &Snapshot{
		st: g,
		g:  g,
		k:  1,
		alg: route.Algorithm{
			Name: "slow",
			MinK: func(int) int { return 1 },
		},
		f: func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
			time.Sleep(20 * time.Millisecond)
			return t, nil
		},
	}
	e := New(snap, Config{Workers: 1, QueueDepth: 1})
	defer e.Close()

	// Distinguishable one-hop requests: slot i of any full batch must
	// come back carrying exactly {i, i+1}.
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{S: graph.Vertex(i), T: graph.Vertex(i + 1)}
	}

	// Saturate mid-batch: the worker is busy 20ms per hop, the queue
	// holds one task, so the budget expires while the third submit waits.
	out, err := e.DoBatch(reqs, 30*time.Millisecond)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("DoBatch on a saturated engine returned %v, want ErrSaturated", err)
	}
	if out != nil {
		t.Fatalf("saturated DoBatch returned %d responses, want none", len(out))
	}

	// The channel DoBatch just pooled must be empty. Route full batches
	// through the same engine: any straggler from the failed batch would
	// surface as a slot holding a foreign request (or a missing one).
	for round := 0; round < 3; round++ {
		out, err := e.DoBatch(reqs, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(out) != len(reqs) {
			t.Fatalf("round %d: %d responses for %d requests", round, len(out), len(reqs))
		}
		for i := range out {
			if out[i].Request != reqs[i] {
				t.Fatalf("round %d slot %d holds %+v, want %+v (stale response leaked across batches)", round, i, out[i].Request, reqs[i])
			}
			if out[i].Result == nil || out[i].Result.Outcome != sim.Delivered {
				t.Fatalf("round %d slot %d undelivered", round, i)
			}
		}
	}
}
