package engine

import (
	"math/rand"
	"sync"
	"testing"

	"klocal/internal/churn"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// TestSnapshotIncrementalMatchesFresh routes every pair on an
// incrementally swapped snapshot and on a from-scratch snapshot of the
// same post-delta graph; outcomes and walks must agree exactly.
func TestSnapshotIncrementalMatchesFresh(t *testing.T) {
	g := gen.Grid(5, 5)
	k := 3
	snap, err := NewSnapshotOpts(g, k, route.Algorithm2(), SnapshotOptions{Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	sched := churn.ScheduleDeltas(g, 5, 8)
	cur := g
	inc := snap
	for i, d := range sched {
		post, dirty, err := churn.Apply(cur, d, k)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		inc, err = inc.Incremental(post, dirty)
		if err != nil {
			t.Fatalf("delta %d: incremental swap: %v", i, err)
		}
		fresh, err := NewSnapshot(post, k, route.Algorithm2())
		if err != nil {
			t.Fatalf("delta %d: fresh snapshot: %v", i, err)
		}
		vs := post.Vertices()
		for _, s := range vs {
			for _, tt := range vs {
				if s == tt {
					continue
				}
				a := inc.Route(s, tt, 0)
				b := fresh.Route(s, tt, 0)
				if a.Outcome != b.Outcome || a.Len() != b.Len() {
					t.Fatalf("delta %d: route %d->%d diverges: incremental (%v, %d hops) vs fresh (%v, %d hops)",
						i, s, tt, a.Outcome, a.Len(), b.Outcome, b.Len())
				}
			}
		}
		cur = post
	}
}

// TestSwapSnapshotMidTraffic hot-swaps epochs while workers route — the
// -race witness for the atomic snapshot pointer.
func TestSwapSnapshotMidTraffic(t *testing.T) {
	g := gen.Grid(6, 6)
	k := 2
	snap, err := NewSnapshot(g, k, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	e := New(snap, Config{Workers: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		vs := g.Vertices()
		for i := 0; i < 400; i++ {
			s := vs[rng.Intn(len(vs))]
			d := vs[rng.Intn(len(vs))]
			if s == d {
				continue
			}
			res, err := e.Do(Request{S: s, T: d}, 0)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if res.Result.Outcome != sim.Delivered {
				// Churn may transiently disconnect pairs; only crashes
				// and races are failures here.
				continue
			}
		}
	}()
	cur := g
	sched := churn.NewScheduler(g, 77)
	for i := 0; i < 60; i++ {
		d := sched.Next()
		post, dirty, err := churn.Apply(cur, d, k)
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		next, err := e.Snapshot().Incremental(post, dirty)
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		if old := e.SwapSnapshot(next); old == nil {
			t.Fatal("SwapSnapshot returned nil previous snapshot")
		}
		cur = post
	}
	wg.Wait()
	e.Close()
}

func TestHotspotWorkloadSkew(t *testing.T) {
	// On a barbell the bridge path carries all cross-clique shortest
	// paths: its betweenness dwarfs the clique interiors, so hotspot
	// destinations must concentrate there.
	g := gen.Barbell(6, 3)
	rng := rand.New(rand.NewSource(4))
	w := HotspotStore(rng, g, 0)
	if w.Name != "hotspot" {
		t.Fatalf("workload name %q", w.Name)
	}
	vs, bc := ApproxBetweenness(g, rand.New(rand.NewSource(4)), g.N())
	var hot graph.Vertex
	best := -1.0
	for i, v := range vs {
		if bc[i] > best {
			best, hot = bc[i], v
		}
	}
	counts := make(map[graph.Vertex]int)
	for i := 0; i < 3000; i++ {
		req := w.Next()
		counts[req.T]++
		if req.S == req.T {
			t.Fatal("self-pair emitted")
		}
	}
	if counts[hot] <= 3000/g.N() {
		t.Fatalf("top-betweenness vertex %d drew %d of 3000 destinations, no skew over uniform %d",
			hot, counts[hot], 3000/g.N())
	}
}

func TestHotspotDeterministic(t *testing.T) {
	g := gen.Grid(4, 4)
	a := Take(HotspotStore(rand.New(rand.NewSource(9)), g, 8), 50)
	b := Take(HotspotStore(rand.New(rand.NewSource(9)), g, 8), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identically seeded workloads", i)
		}
	}
}

func TestNewWorkloadStoreHotspot(t *testing.T) {
	g := gen.Grid(4, 4)
	w, err := NewWorkloadStore("hotspot", rand.New(rand.NewSource(2)), g)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "hotspot" {
		t.Fatalf("name %q", w.Name)
	}
	for _, r := range Take(w, 20) {
		if !g.HasVertex(r.S) || !g.HasVertex(r.T) || r.S == r.T {
			t.Fatalf("bad request %+v", r)
		}
	}
}
