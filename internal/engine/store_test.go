package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// gv abbreviates the vertex conversions in table-driven route pairs.
func gv(i int) graph.Vertex { return graph.Vertex(i) }

// TestSnapshotStoreDifferential pins store-backed routing to the classic
// graph-backed path: same algorithm, same pairs, same outcomes and
// walks — only Dist is allowed to differ (0 = unknown on the store side).
func TestSnapshotStoreDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, g := range []graphCase{
		{gen.Cycle(18), 0},
		{gen.Grid(4, 5), 0},
		{gen.RandomConnected(rng, 20, 0.1), 0},
	} {
		c := bigraph.FromGraph(g.g)
		for _, alg := range []route.Algorithm{
			route.Algorithm1(), route.Algorithm1B(), route.Algorithm2(), route.Algorithm3(),
			route.TreeRightHand(),
		} {
			want, err := NewSnapshotOpts(g.g, g.k, alg, SnapshotOptions{})
			if err != nil {
				t.Fatalf("%s: graph snapshot: %v", alg.Name, err)
			}
			got, err := NewSnapshotStore(c, g.k, alg, SnapshotOptions{})
			if err != nil {
				t.Fatalf("%s: store snapshot: %v", alg.Name, err)
			}
			if got.Graph() != nil {
				t.Fatalf("%s: CSR-backed snapshot claims a graph", alg.Name)
			}
			if got.K() != want.K() {
				t.Fatalf("%s: k=%d, want %d", alg.Name, got.K(), want.K())
			}
			vs := g.g.Vertices()
			for trial := 0; trial < 40; trial++ {
				s := vs[rng.Intn(len(vs))]
				d := vs[rng.Intn(len(vs))]
				rw := want.Route(s, d, 0)
				rg := got.Route(s, d, 0)
				if rw.Outcome != rg.Outcome {
					t.Fatalf("%s: route %d->%d outcome %v, want %v", alg.Name, s, d, rg.Outcome, rw.Outcome)
				}
				if fmt.Sprint(rw.Route) != fmt.Sprint(rg.Route) {
					t.Fatalf("%s: route %d->%d walk %v, want %v", alg.Name, s, d, rg.Route, rw.Route)
				}
				if rg.Dist != 0 {
					t.Fatalf("%s: store-backed Dist=%d, want 0 (unknown)", alg.Name, rg.Dist)
				}
			}
		}
	}
}

type graphCase struct {
	g *graph.Graph
	k int
}

// TestSnapshotStoreOracleRejected: full-topology baselines cannot bind to
// a k-local store.
func TestSnapshotStoreOracleRejected(t *testing.T) {
	c := bigraph.FromGraph(gen.Cycle(8))
	if _, err := NewSnapshotStore(c, 1, route.ShortestPathOracle(), SnapshotOptions{}); err == nil {
		t.Fatal("oracle bound to a store; it needs full topology")
	}
}

// TestSnapshotStoreEngineEndToEnd runs the full engine worker pool over a
// CSR-backed snapshot.
func TestSnapshotStoreEngineEndToEnd(t *testing.T) {
	g := gen.Cycle(24)
	c := bigraph.FromGraph(g)
	snap, err := NewSnapshotStore(c, 0, route.Algorithm2(), SnapshotOptions{Prewarm: -1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(snap, Config{Workers: 4})
	w := ZipfStore(rand.New(rand.NewSource(2)), c, 0)
	if err := e.RunWorkload(w, 200, 0); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if got := rep.Counter("requests"); got != 200 {
		t.Fatalf("requests=%d, want 200", got)
	}
	if got := rep.Counter("delivered"); got != 200 {
		t.Fatalf("delivered=%d, want 200 (k at threshold on a cycle)", got)
	}
}

// routeAllocBudget is the engine's per-route allocation regression gate
// for the fixed scenario below (cycle-24, Algorithm 2 at threshold, warm
// cache): walk bookkeeping plus the per-hop in-view shortest-path search,
// all O(route length · view size), none O(n). Measured ~199; the budget
// catches anything that reintroduces per-hop view extraction (hundreds of
// allocs) or O(n) work.
const routeAllocBudget = 230

func TestRouteAllocsBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	g := gen.Cycle(24)
	c := bigraph.FromGraph(g)
	snap, err := NewSnapshotStore(c, 0, route.Algorithm2(), SnapshotOptions{Prewarm: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm every view the routes below will touch.
	pairs := [][2]int{{0, 12}, {3, 20}, {7, 1}, {15, 4}}
	for _, p := range pairs {
		if res := snap.Route(gv(p[0]), gv(p[1]), 0); res.Outcome != sim.Delivered {
			t.Fatalf("route %v: %v", p, res.Outcome)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		p := pairs[i%len(pairs)]
		i++
		snap.Route(gv(p[0]), gv(p[1]), 0)
	})
	if avg > routeAllocBudget {
		t.Fatalf("warm store-backed route allocates %.1f times, budget %d", avg, routeAllocBudget)
	}
	t.Logf("warm route: %.1f allocs (budget %d)", avg, routeAllocBudget)
}
