// Package engine is the high-throughput traffic layer: it routes batches
// of (s, t) requests concurrently over any of the paper's algorithms.
//
// The pieces:
//
//   - Snapshot: an immutable binding of (network, locality, algorithm)
//     whose per-vertex preprocessing lives behind a sharded,
//     lazily-populated, size-bounded cache (prep.Preprocessor), so the
//     paper's "preprocessing need not be repeated" observation is
//     realized once per source vertex instead of once per message.
//
//   - Engine: a worker-pool executor with a bounded request queue
//     (Submit blocks when full — backpressure, never unbounded memory)
//     and per-worker metric shards merged into a metrics.Report.
//
//   - Workload: pluggable deterministic request generators — uniform
//     random pairs, Zipf-skewed destinations, all-pairs, and the paper's
//     adversarial constructions from internal/adversary.
package engine

import (
	"fmt"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
	"klocal/internal/prep"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// Snapshot is an immutable view of a network bound to one algorithm at
// one locality. It is safe for concurrent use: the graph never mutates,
// the routing function is shared (see route's goroutine-safety
// contracts), and preprocessing is cached behind the sharded view cache.
// Build a new Snapshot when the topology changes.
type Snapshot struct {
	st  bigraph.Store
	g   *graph.Graph // nil for store-backed snapshots
	k   int
	alg route.Algorithm
	f   route.Func
	pre *prep.Preprocessor // nil for algorithms without preprocessing
}

// SnapshotOptions tune snapshot construction.
type SnapshotOptions struct {
	// Cache tunes the sharded view cache of preprocessed algorithms.
	Cache prep.CacheOptions
	// Prewarm computes every vertex's view at construction using this
	// many goroutines (0 = no prewarm, <0 = GOMAXPROCS).
	Prewarm int
}

// NewSnapshot binds alg to (g, k) with default cache options and no
// prewarm. k = 0 means the algorithm's own threshold T(n) (minimum 1).
func NewSnapshot(g *graph.Graph, k int, alg route.Algorithm) (*Snapshot, error) {
	return NewSnapshotOpts(g, k, alg, SnapshotOptions{})
}

// NewSnapshotOpts binds alg to (g, k) under explicit options.
func NewSnapshotOpts(g *graph.Graph, k int, alg route.Algorithm, opts SnapshotOptions) (*Snapshot, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("engine: empty network")
	}
	if k == 0 {
		k = alg.MinK(g.N())
		if k == 0 {
			k = 1
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("engine: negative locality %d", k)
	}
	s := &Snapshot{st: g, g: g, k: k, alg: alg}
	if alg.BindCached != nil {
		s.pre = prep.NewPreprocessorOpts(g, k, alg.Policy, opts.Cache)
		s.f = alg.BindCached(s.pre)
	} else {
		s.f = alg.Bind(g, k)
	}
	s.prewarm(opts)
	return s, nil
}

// NewSnapshotStore binds alg to a bigraph.Store at locality k — the
// million-node entry point: the store may be an mmap'd CSR file, and
// routing never materializes the network as a *graph.Graph. A store that
// is itself a *graph.Graph takes the classic path (full metrics). k = 0
// means the algorithm's own threshold T(n) (minimum 1).
//
// Store-backed results have Result.Dist == 0 ("unknown"): stretch metrics
// are skipped, delivery/loop/error counters are exact.
func NewSnapshotStore(st bigraph.Store, k int, alg route.Algorithm, opts SnapshotOptions) (*Snapshot, error) {
	if g, ok := st.(*graph.Graph); ok {
		return NewSnapshotOpts(g, k, alg, opts)
	}
	if st == nil || st.N() == 0 {
		return nil, fmt.Errorf("engine: empty network")
	}
	if k == 0 {
		k = alg.MinK(st.N())
		if k == 0 {
			k = 1
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("engine: negative locality %d", k)
	}
	s := &Snapshot{st: st, k: k, alg: alg}
	switch {
	case alg.BindCached != nil:
		s.pre = prep.NewPreprocessorStoreOpts(st, k, alg.Policy, opts.Cache)
		s.f = alg.BindCached(s.pre)
	case alg.BindStore != nil:
		s.f = alg.BindStore(st, k)
	default:
		return nil, fmt.Errorf("engine: algorithm %s needs full topology and cannot bind to a graph store", alg.Name)
	}
	s.prewarm(opts)
	return s, nil
}

func (s *Snapshot) prewarm(opts SnapshotOptions) {
	if opts.Prewarm != 0 && s.pre != nil {
		w := opts.Prewarm
		if w < 0 {
			w = 0 // prep interprets ≤0 as GOMAXPROCS
		}
		s.pre.Prewarm(w)
	}
}

// Incremental returns a snapshot over the post-delta graph next that
// adopts every cached view of s except those of the dirty vertices
// (churn.Apply's output) — the churn fast path: instead of re-running
// preprocessing for all n vertices, only the |dirty| views inside the
// k-ball of the delta are recomputed, lazily on first use. s itself is
// untouched and remains fully consistent, so in-flight routes on the
// old epoch never observe the new topology.
//
// Algorithms without a cached-preprocessing binding (alg.BindCached ==
// nil) have no views to carry over; they rebind against next directly,
// which is still build-cost-free for stateless algorithms.
func (s *Snapshot) Incremental(next *graph.Graph, dirty []graph.Vertex) (*Snapshot, error) {
	if next == nil || next.N() == 0 {
		return nil, fmt.Errorf("engine: incremental swap to empty network")
	}
	ns := &Snapshot{st: next, g: next, k: s.k, alg: s.alg}
	if s.pre != nil {
		ns.pre = s.pre.Derive(next, dirty)
		ns.f = s.alg.BindCached(ns.pre)
	} else {
		ns.f = s.alg.Bind(next, s.k)
	}
	return ns, nil
}

// Graph returns the underlying network as a *graph.Graph, or nil for
// store-backed snapshots (use Store for the universal handle).
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Store returns the underlying network store (never nil).
func (s *Snapshot) Store() bigraph.Store { return s.st }

// K returns the locality parameter the snapshot is bound at.
func (s *Snapshot) K() int { return s.k }

// Algorithm returns the bound algorithm descriptor.
func (s *Snapshot) Algorithm() route.Algorithm { return s.alg }

// Func returns the shared bound routing function.
func (s *Snapshot) Func() route.Func { return s.f }

// CacheStats reports the view-cache activity, or the zero value for
// algorithms without preprocessing.
func (s *Snapshot) CacheStats() prep.CacheStats {
	if s.pre == nil {
		return prep.CacheStats{}
	}
	return s.pre.Stats()
}

// Route routes one message on the snapshot (the engine's per-request
// body, also usable standalone). Store-backed snapshots skip the global
// dist(s, t) computation (Result.Dist stays 0).
func (s *Snapshot) Route(src, dst graph.Vertex, maxSteps int) *sim.Result {
	return s.RouteScratch(src, dst, maxSteps, sim.NewScratch())
}

// RouteScratch is Route allocating only into sc — the engine workers'
// per-request body. The returned Result is owned by sc (sim.RunScratch's
// contract): valid until the next route with the same scratch, Clone to
// retain.
//
//klocal:hotpath
func (s *Snapshot) RouteScratch(src, dst graph.Vertex, maxSteps int, sc *sim.Scratch) *sim.Result {
	opts := sim.Options{
		MaxSteps:         maxSteps,
		DetectLoops:      !s.alg.Randomized,
		PredecessorAware: s.alg.PredecessorAware,
	}
	if s.g != nil {
		return sim.RunScratch(s.g, sim.Func(s.f), src, dst, opts, sc)
	}
	return sim.RunStoreScratch(s.st, sim.Func(s.f), src, dst, opts, sc)
}
