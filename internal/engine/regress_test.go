package engine

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// slowSnapshot builds a snapshot over a 2-path whose routing function
// sleeps perHop before forwarding — a deterministic way to keep the
// worker pool busy and the queue full.
func slowSnapshot(perHop time.Duration) *Snapshot {
	g := gen.Path(2)
	return &Snapshot{
		st: g,
		g:  g,
		k:  1,
		alg: route.Algorithm{
			Name: "slow",
			MinK: func(int) int { return 1 },
		},
		f: func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
			time.Sleep(perHop)
			return t, nil
		},
	}
}

// TestRouteBatchStrayIndexRange: a stray Submit before a batch used to
// make the collector index out[r.Index] with the stray's global index —
// an index-out-of-range panic when it exceeds the batch length. It must
// surface as a typed *BatchIndexError instead.
func TestRouteBatchStrayIndexRange(t *testing.T) {
	g := testGraph(16)
	snap, err := NewSnapshot(g, 0, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	e := New(snap, Config{Workers: 1})
	vs := g.Vertices()

	// First stray: consumed, so only its successor pollutes the batch.
	if err := e.Submit(Request{S: vs[0], T: vs[1]}); err != nil {
		t.Fatal(err)
	}
	if r := <-e.Results(); r.Index != 0 {
		t.Fatalf("first stray got index %d, want 0", r.Index)
	}
	// Second stray (global index 1) left in flight: with one worker it
	// reaches the batch collector first, and 1 is out of range for a
	// single-request batch.
	if err := e.Submit(Request{S: vs[1], T: vs[2]}); err != nil {
		t.Fatal(err)
	}

	_, err = e.RouteBatch([]Request{{S: vs[2], T: vs[3]}})
	var bie *BatchIndexError
	if !errors.As(err, &bie) {
		t.Fatalf("RouteBatch returned %v, want *BatchIndexError", err)
	}
	if bie.Dup || bie.Index != 1 || bie.Len != 1 {
		t.Fatalf("unexpected error detail: %+v", bie)
	}
	e.Close()
	for range e.Results() {
	}
}

// TestRouteBatchStrayIndexDup: a stray whose global index collides with
// a batch slot used to silently overwrite it (dropping one batch
// response forever). The collision must be reported.
func TestRouteBatchStrayIndexDup(t *testing.T) {
	g := testGraph(16)
	snap, err := NewSnapshot(g, 0, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	e := New(snap, Config{Workers: 1})
	vs := g.Vertices()

	// Unconsumed stray with global index 0 — in range for the batch, so
	// the old code silently dropped batch slot 0.
	if err := e.Submit(Request{S: vs[0], T: vs[1]}); err != nil {
		t.Fatal(err)
	}
	_, err = e.RouteBatch([]Request{{S: vs[2], T: vs[3]}, {S: vs[3], T: vs[4]}})
	var bie *BatchIndexError
	if !errors.As(err, &bie) {
		t.Fatalf("RouteBatch returned %v, want *BatchIndexError", err)
	}
	if !bie.Dup || bie.Index != 0 || bie.Len != 2 {
		t.Fatalf("unexpected error detail: %+v", bie)
	}
	e.Close()
	for range e.Results() {
	}
}

// TestThroughputUsesActiveWindow: an engine idle between New and its
// first task must not count the idle time in throughput_rps.
func TestThroughputUsesActiveWindow(t *testing.T) {
	g := testGraph(20)
	snap, err := NewSnapshot(g, 0, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	e := New(snap, Config{Workers: 2})
	idle := 150 * time.Millisecond
	time.Sleep(idle)

	w := Uniform(rand.New(rand.NewSource(3)), g)
	reqs := Take(w, 64)
	if _, err := e.RouteBatch(reqs); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()

	total := rep.Gauge("elapsed_total_s")
	active := rep.Gauge("elapsed_active_s")
	if total < idle.Seconds() {
		t.Fatalf("elapsed_total_s = %v, want >= %v", total, idle.Seconds())
	}
	if active <= 0 || active > total-0.9*idle.Seconds() {
		t.Fatalf("elapsed_active_s = %v must exclude the %v idle warm-up (total %v)", active, idle, total)
	}
	rps := rep.Gauge("throughput_rps")
	if want := float64(len(reqs)) / active; math.Abs(rps-want) > 1e-6*want {
		t.Fatalf("throughput_rps = %v, want reqs/active = %v", rps, want)
	}
	if lazy := float64(len(reqs)) / total; rps <= lazy {
		t.Fatalf("throughput_rps = %v not above the wall-clock-diluted rate %v", rps, lazy)
	}
}

// TestRunWorkloadDeadlineUnderBackpressure: with the queue held full by
// slow routing, the duration bound must be enforced around the blocking
// submit — the old code blocked in Submit past the deadline and accepted
// an extra request once a slot freed.
func TestRunWorkloadDeadlineUnderBackpressure(t *testing.T) {
	snap := slowSnapshot(300 * time.Millisecond)
	e := New(snap, Config{Workers: 1, QueueDepth: 1})
	w := Workload{
		Name: "pair",
		Next: func() Request { return Request{S: 0, T: 1} },
	}
	start := time.Now()
	if err := e.RunWorkload(w, 0, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Pipeline capacity at the deadline: one request in flight plus one
	// queued. The third submit must be abandoned when the timer fires,
	// not block until a slot frees (which would admit it post-deadline).
	rep := e.Report()
	if got := rep.Counter("requests"); got > 2 {
		t.Fatalf("accepted %d requests, want <= 2 (submit admitted past the deadline)", got)
	}
	// Drain cost is the two admitted slow routes; the old behaviour adds
	// a third (~900ms total).
	if elapsed > 750*time.Millisecond {
		t.Fatalf("RunWorkload took %v, deadline not enforced around blocking submit", elapsed)
	}
}

// TestDoConcurrentAndSaturation covers the synchronous serving path: Do
// never interleaves responses across callers, and reports ErrSaturated
// (not a block) when the queue stays full past the admission budget.
func TestDoConcurrentAndSaturation(t *testing.T) {
	g := testGraph(20)
	snap, err := NewSnapshot(g, 0, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	e := New(snap, Config{Workers: 4})
	vs := g.Vertices()
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		req := Request{S: vs[i%len(vs)], T: vs[(i+7)%len(vs)]}
		go func(req Request) {
			resp, err := e.Do(req, 0)
			if err == nil && resp.Request != req {
				err = errors.New("response for a different request")
			}
			if err == nil && resp.Result.Outcome != sim.Delivered {
				err = errors.New("undelivered")
			}
			done <- err
		}(req)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// DoBatch keeps request order even though workers finish out of order.
	w := Uniform(rand.New(rand.NewSource(9)), g)
	reqs := Take(w, 40)
	resps, err := e.DoBatch(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Request != reqs[i] {
			t.Fatalf("batch slot %d holds request %+v, want %+v", i, r.Request, reqs[i])
		}
	}
	e.Close()

	// Saturation: clog a 1-worker/1-slot pipeline (nobody consumes
	// Results), then demand admission within a finite budget.
	slow := New(slowSnapshot(2*time.Millisecond), Config{Workers: 1, QueueDepth: 1})
	for i := 0; i < 3; i++ { // in-flight + out buffer + queue slot
		if err := slow.Submit(Request{S: 0, T: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := slow.Do(Request{S: 0, T: 1}, 50*time.Millisecond); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Do on a saturated engine returned %v, want ErrSaturated", err)
	}
	if _, err := slow.DoBatch([]Request{{S: 0, T: 1}}, 50*time.Millisecond); !errors.Is(err, ErrSaturated) {
		t.Fatalf("DoBatch on a saturated engine returned %v, want ErrSaturated", err)
	}
	for i := 0; i < 3; i++ {
		<-slow.Results()
	}
	slow.Close()
}
