package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"klocal/internal/graph"
	"klocal/internal/metrics"
	"klocal/internal/sim"
)

// Request is one routing task: deliver a message from S to T.
type Request struct {
	S, T graph.Vertex
}

// Response is the outcome of one routed request.
type Response struct {
	Request
	// Index is the submission index (batch position for RouteBatch).
	Index int
	// Worker identifies the worker that routed the request.
	Worker int
	// Result is the full simulation result.
	Result *sim.Result
	// Latency is the wall time the worker spent routing the request.
	Latency time.Duration
}

// Config tunes an Engine.
type Config struct {
	// Workers is the routing worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the request queue; Submit blocks while the queue
	// is full, which is the engine's backpressure (0 = 4 × Workers).
	QueueDepth int
	// MaxSteps bounds each walk (0 = sim's default budget).
	MaxSteps int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	return c
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// ErrSaturated is returned by Do and DoBatch when the bounded request
// queue stays full past the caller's admission budget — the signal the
// serving layer turns into HTTP 429.
var ErrSaturated = errors.New("engine: queue saturated past admission budget")

// BatchIndexError is returned by RouteBatch when a response carries an
// index the batch cannot hold — the symptom of a stray Submit (or a
// second concurrent batch) violating RouteBatch's exclusive-use
// contract. The batch result is unusable; the engine's queue may still
// hold responses for the displaced slots.
type BatchIndexError struct {
	// Index is the offending response index.
	Index int
	// Len is the batch length.
	Len int
	// Dup reports that the slot was already filled by an earlier
	// response rather than out of range.
	Dup bool
}

func (e *BatchIndexError) Error() string {
	if e.Dup {
		return fmt.Sprintf("engine: batch response index %d filled twice (batch of %d): stray Submit interleaved with RouteBatch", e.Index, e.Len)
	}
	return fmt.Sprintf("engine: batch response index %d out of range (batch of %d): stray Submit interleaved with RouteBatch", e.Index, e.Len)
}

type task struct {
	req   Request
	index int
	// done, when non-nil, receives the response instead of the shared
	// Results channel (the synchronous Do/DoBatch path). It must have
	// capacity for every task that shares it so workers never block.
	done chan Response
}

// Engine routes requests concurrently over one Snapshot using a fixed
// worker pool. Requests enter through a bounded queue (Submit blocks when
// it is full); every worker records into its own metrics shard, so the
// hot path takes no shared locks beyond the snapshot's sharded view
// cache. An Engine is a single session: use it, Close it, read Report.
type Engine struct {
	// snap is the snapshot the workers route over, behind an atomic
	// pointer so SwapSnapshot can hot-swap topology epochs mid-traffic:
	// each task loads the pointer once and routes entirely on that
	// epoch's consistent (graph, views) pair.
	snap atomic.Pointer[Snapshot]
	cfg  Config

	tasks chan task
	out   chan Response
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	nextIdx atomic.Int64
	shards  []*metrics.Shard
	started time.Time
	// firstAt is the wall clock of the first accepted task (unix nanos,
	// 0 until then): the start of the active window. Throughput is
	// reqs / elapsed_active, so an engine that sits idle between New and
	// its first task does not under-report.
	firstAt atomic.Int64
	// closedNano is the wall clock at which the pool finished draining
	// (unix nanos, 0 while running).
	closedNano atomic.Int64
}

// New starts an engine over snap. The returned engine is running: submit
// requests, consume Results, then Close.
func New(snap *Snapshot, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		tasks:   make(chan task, cfg.QueueDepth),
		out:     make(chan Response, cfg.QueueDepth),
		shards:  make([]*metrics.Shard, cfg.Workers),
		started: time.Now(),
	}
	e.snap.Store(snap)
	for w := 0; w < cfg.Workers; w++ {
		e.shards[w] = metrics.NewShard()
		e.wg.Add(1)
		go e.worker(w)
	}
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Snapshot returns the snapshot the engine currently routes over.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// SwapSnapshot atomically replaces the snapshot the workers route over
// and returns the previous one. In-flight requests finish on the
// snapshot they loaded; requests picked up after the swap route on
// next. The caller is responsible for next being a binding of the same
// algorithm family it wants reported (the report reads the current
// snapshot's descriptor).
func (e *Engine) SwapSnapshot(next *Snapshot) *Snapshot {
	return e.snap.Swap(next)
}

// worker routes tasks until the queue closes, recording into its own
// metric shard. Each worker owns one sim.Scratch for its whole lifetime,
// so the warm routing path allocates only the Response's retained copy
// of the scratch-owned Result.
func (e *Engine) worker(w int) {
	defer e.wg.Done()
	sh := e.shards[w]
	sc := sim.NewScratch()
	for tk := range e.tasks {
		start := time.Now()
		res := e.snap.Load().RouteScratch(tk.req.S, tk.req.T, e.cfg.MaxSteps, sc)
		lat := time.Since(start)

		sh.Count("requests", 1)
		sh.Observe("latency_ns", lat.Nanoseconds())
		switch res.Outcome {
		case sim.Delivered:
			sh.Count("delivered", 1)
			sh.Observe("hops", int64(res.Len()))
			if res.Dist > 0 {
				// Stretch recorded in milli-units so the log-scale
				// buckets resolve the 1.0–7.0 range the theorems bound.
				sh.Observe("stretch_milli", int64(res.Dilation()*1000+0.5))
			}
		case sim.Looped:
			sh.Count("looped", 1)
		case sim.Errored:
			sh.Count("errored", 1)
		case sim.Exhausted:
			sh.Count("exhausted", 1)
		}

		// The scratch owns res and the next task overwrites it; the
		// response escapes to channels and callers, so it carries an
		// independent copy.
		resp := Response{Request: tk.req, Index: tk.index, Worker: w, Result: res.Clone(), Latency: lat}
		if tk.done != nil {
			tk.done <- resp
		} else {
			e.out <- resp
		}
	}
}

// Submit enqueues one request, blocking while the queue is full
// (backpressure). It fails with ErrClosed after Close.
func (e *Engine) Submit(req Request) error {
	idx := int(e.nextIdx.Add(1) - 1)
	return e.submit(task{req: req, index: idx})
}

func (e *Engine) submit(tk task) error {
	return e.submitOn(tk, nil)
}

// submitOn enqueues tk, giving up with ErrSaturated when expire fires
// before a queue slot frees (nil expire blocks indefinitely).
func (e *Engine) submitOn(tk task, expire <-chan time.Time) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	// Sending under RLock is safe: Close waits for in-flight senders,
	// and workers keep draining until the queue closes, so every
	// blocked send completes.
	if expire == nil {
		//klocal:allow safe by protocol: Close waits for in-flight senders and workers drain until the queue closes
		e.tasks <- tk
	} else {
		//klocal:allow same protocol as the unconditional send above
		select {
		case e.tasks <- tk:
		case <-expire:
			return ErrSaturated
		}
	}
	e.markActive()
	return nil
}

// markActive starts the active-window clock at the first accepted task.
func (e *Engine) markActive() {
	if e.firstAt.Load() == 0 {
		e.firstAt.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// doneChans pools completion channels for Do: capacity-1 channels whose
// single response was always consumed before release, so a reused
// channel is provably empty.
var doneChans = sync.Pool{New: func() any { return make(chan Response, 1) }}

// batchChans pools completion channels for DoBatch. Channels keep their
// creation capacity, so get discards pooled channels too small for the
// batch at hand and allocates with headroom; steady-state serving traffic
// converges on the largest batch size seen.
var batchChans sync.Pool

func getBatchChan(n int) chan Response {
	if c, _ := batchChans.Get().(chan Response); c != nil && cap(c) >= n {
		return c
	}
	return make(chan Response, n+n/2)
}

// timers pools admission-budget timers across Do/DoBatch/RunWorkload
// calls. putTimer's stop-and-drain leaves the channel provably empty, so
// Reset on reuse is race-free.
var timers sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if tm, _ := timers.Get().(*time.Timer); tm != nil {
		tm.Reset(d)
		return tm
	}
	return time.NewTimer(d)
}

func putTimer(tm *time.Timer) {
	if !tm.Stop() {
		// Already fired: the tick may or may not have been consumed.
		select {
		case <-tm.C:
		default:
		}
	}
	timers.Put(tm)
}

// Do routes one request synchronously through the worker pool: it
// enqueues the request (waiting at most budget for a queue slot when
// budget > 0 — ErrSaturated past it, the admission-control signal) and
// blocks until the response arrives. Unlike Submit/Results, Do is safe
// for arbitrary concurrent callers: each call has a private completion
// channel, so responses never interleave.
func (e *Engine) Do(req Request, budget time.Duration) (Response, error) {
	done := doneChans.Get().(chan Response)
	tk := task{req: req, index: int(e.nextIdx.Add(1) - 1), done: done}
	var expire <-chan time.Time
	if budget > 0 {
		tm := getTimer(budget)
		defer putTimer(tm)
		expire = tm.C
	}
	if err := e.submitOn(tk, expire); err != nil {
		// Nothing was enqueued, so the channel is still empty.
		doneChans.Put(done)
		return Response{}, err
	}
	// Every accepted task is routed: workers drain the queue until it
	// closes, and done has capacity 1, so this receive always completes —
	// and empties the channel for the pool.
	r := <-done
	doneChans.Put(done)
	return r, nil
}

// DoBatch routes reqs concurrently through the worker pool and returns
// the responses in request order. Like Do it is safe for concurrent
// callers. budget bounds the total queue-admission wait for the whole
// batch (0 blocks); on ErrSaturated the already-admitted prefix is still
// routed (and counted by the metrics shards) but no responses are
// returned.
func (e *Engine) DoBatch(reqs []Request, budget time.Duration) ([]Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	// Capacity for the full batch: workers never block sending here,
	// even when admission fails partway.
	done := getBatchChan(len(reqs))
	var expire <-chan time.Time
	if budget > 0 {
		tm := getTimer(budget)
		defer putTimer(tm)
		expire = tm.C
	}
	admitted := 0
	var err error
	for i, req := range reqs {
		if err = e.submitOn(task{req: req, index: i, done: done}, expire); err != nil {
			break
		}
		admitted++
	}
	if err != nil {
		// The admitted prefix is still in flight toward done. Receive
		// exactly that many responses before releasing the channel: a
		// pooled channel with stragglers would deliver them to a later,
		// unrelated batch (lost here, duplicated there).
		for i := 0; i < admitted; i++ {
			<-done
		}
		batchChans.Put(done)
		return nil, err
	}
	out := make([]Response, len(reqs))
	for i := 0; i < admitted; i++ {
		r := <-done
		out[r.Index] = r
	}
	batchChans.Put(done)
	return out, nil
}

// Results streams responses as workers finish them (completion order,
// not submission order). The channel closes after Close once every
// in-flight request has been reported.
func (e *Engine) Results() <-chan Response { return e.out }

// Close stops intake, waits for in-flight requests to finish, and closes
// Results. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.mu.Unlock()
	e.wg.Wait()
	e.closedNano.Store(time.Now().UnixNano())
	close(e.out)
}

// TotalElapsed is the wall time since New (up to Close once closed).
func (e *Engine) TotalElapsed() time.Duration {
	if c := e.closedNano.Load(); c > 0 {
		return time.Duration(c - e.started.UnixNano())
	}
	return time.Since(e.started)
}

// ActiveElapsed is the wall time since the first accepted task (up to
// Close once closed), i.e. the window throughput is measured over. Zero
// before any task is accepted.
func (e *Engine) ActiveElapsed() time.Duration {
	f := e.firstAt.Load()
	if f == 0 {
		return 0
	}
	if c := e.closedNano.Load(); c > 0 {
		return time.Duration(c - f)
	}
	return time.Duration(time.Now().UnixNano() - f)
}

// RouteBatch submits every request and returns responses in request
// order. It requires exclusive use of the engine (no concurrent Submit
// or Results consumers) and may be called repeatedly before Close. If a
// stray Submit's response interleaves with the batch — an index the
// batch cannot hold, or one slot answered twice — RouteBatch returns a
// *BatchIndexError instead of panicking; the engine should be Closed,
// as displaced responses may still be in flight. (Concurrent servers
// should use Do/DoBatch, which are immune by construction.)
func (e *Engine) RouteBatch(reqs []Request) ([]Response, error) {
	out := make([]Response, len(reqs))
	var idxErr error
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		seen := make([]bool, len(reqs))
		// Always consume exactly len(reqs) responses so blocked workers
		// and submitters are never deadlocked by an early abort.
		for i := 0; i < len(reqs); i++ {
			r, ok := <-e.out
			if !ok {
				return
			}
			switch {
			case r.Index < 0 || r.Index >= len(reqs):
				if idxErr == nil {
					idxErr = &BatchIndexError{Index: r.Index, Len: len(reqs)}
				}
			case seen[r.Index]:
				if idxErr == nil {
					idxErr = &BatchIndexError{Index: r.Index, Len: len(reqs), Dup: true}
				}
			default:
				seen[r.Index] = true
				out[r.Index] = r
			}
		}
	}()
	var submitErr error
	for i, req := range reqs {
		if err := e.submit(task{req: req, index: i}); err != nil {
			submitErr = err
			break
		}
	}
	if submitErr != nil {
		// Intake failed mid-batch; drain what was accepted.
		e.Close()
	}
	collect.Wait()
	if submitErr != nil {
		return nil, submitErr
	}
	if idxErr != nil {
		return nil, idxErr
	}
	return out, nil
}

// RunWorkload draws requests from w and routes them, discarding
// individual responses (the metrics shards keep the aggregates). It
// stops after n requests, or when d elapses (whichever comes first;
// n ≤ 0 means unbounded, d ≤ 0 means no deadline — at least one bound
// must be set). The deadline is enforced around the blocking submit
// itself, so a queue held full by slow routing cannot stall the run
// past d. The engine is closed when RunWorkload returns; read Report
// next.
func (e *Engine) RunWorkload(w Workload, n int, d time.Duration) error {
	if n <= 0 && d <= 0 {
		return fmt.Errorf("engine: RunWorkload needs a request count or a duration")
	}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for range e.out {
		}
	}()
	var expire <-chan time.Time
	if d > 0 {
		tm := getTimer(d)
		defer putTimer(tm)
		expire = tm.C
	}
	var err error
loop:
	for i := 0; n <= 0 || i < n; i++ {
		tk := task{req: w.Next(), index: int(e.nextIdx.Add(1) - 1)}
		switch serr := e.submitOn(tk, expire); {
		case serr == ErrSaturated:
			// Deadline fired while waiting for a queue slot: a normal
			// duration-bounded stop, not a failure.
			break loop
		case serr != nil:
			err = serr
			break loop
		}
		if expire != nil {
			// The submit may have won a race against an already-expired
			// timer; honour the deadline before drawing the next request.
			select {
			case <-expire:
				break loop
			default:
			}
		}
	}
	e.Close()
	drain.Wait()
	return err
}

// Report merges the per-worker metric shards into one report, attaching
// derived gauges (delivery rate, throughput over the active window,
// stretch percentiles scaled back to ratios, cache activity). It closes
// the engine first if the caller has not.
func (e *Engine) Report() *metrics.Report {
	e.Close()
	return e.report(metrics.MergeShards(e.shards...))
}

// LiveReport is Report without the quiesce: it merges live per-shard
// copies (metrics.MergeShardsLive) while the workers keep routing — the
// daemon's /metrics read path. Counters are per-shard consistent;
// throughput is measured over the active window so far.
func (e *Engine) LiveReport() *metrics.Report {
	return e.report(e.LiveShard())
}

// LiveShard returns a merged deep copy of the per-worker metric shards,
// safe to take at any moment. After Close it equals the final merge.
func (e *Engine) LiveShard() *metrics.Shard {
	return metrics.MergeShardsLive(e.shards...)
}

// report derives the gauge set over an already-merged shard.
func (e *Engine) report(merged *metrics.Shard) *metrics.Report {
	rep := merged.Snapshot()
	snap := e.snap.Load()
	rep.Name = fmt.Sprintf("%s k=%d n=%d workers=%d",
		snap.alg.Name, snap.k, snap.st.N(), e.cfg.Workers)

	total, active := e.TotalElapsed(), e.ActiveElapsed()
	rep.Put("elapsed_total_s", total.Seconds())
	rep.Put("elapsed_active_s", active.Seconds())
	reqs := rep.Counter("requests")
	if reqs > 0 {
		rep.Put("delivery_rate", float64(rep.Counter("delivered"))/float64(reqs))
		// Throughput over the active window (first task → close/now),
		// not since New: idle warm-up must not dilute the rate.
		if secs := active.Seconds(); secs > 0 {
			rep.Put("throughput_rps", float64(reqs)/secs)
		}
	}
	if h, ok := rep.Histograms["stretch_milli"]; ok {
		rep.Put("stretch_max", float64(h.Max)/1000)
		rep.Put("stretch_p99", h.P99/1000)
		rep.Put("stretch_mean", h.Mean/1000)
	}
	if cs := snap.CacheStats(); cs.Hits+cs.Misses > 0 {
		rep.Put("cache_hit_rate", cs.HitRate())
		rep.Put("cache_size", float64(cs.Size))
		rep.Put("cache_evictions", float64(cs.Evictions))
	}
	return rep
}

// RouteAll is the one-shot convenience: route reqs over snap with cfg,
// returning ordered responses and the merged metrics report.
func RouteAll(snap *Snapshot, reqs []Request, cfg Config) ([]Response, *metrics.Report, error) {
	e := New(snap, cfg)
	out, err := e.RouteBatch(reqs)
	if err != nil {
		return nil, nil, err
	}
	return out, e.Report(), nil
}
