package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"klocal/internal/graph"
	"klocal/internal/metrics"
	"klocal/internal/sim"
)

// Request is one routing task: deliver a message from S to T.
type Request struct {
	S, T graph.Vertex
}

// Response is the outcome of one routed request.
type Response struct {
	Request
	// Index is the submission index (batch position for RouteBatch).
	Index int
	// Worker identifies the worker that routed the request.
	Worker int
	// Result is the full simulation result.
	Result *sim.Result
	// Latency is the wall time the worker spent routing the request.
	Latency time.Duration
}

// Config tunes an Engine.
type Config struct {
	// Workers is the routing worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the request queue; Submit blocks while the queue
	// is full, which is the engine's backpressure (0 = 4 × Workers).
	QueueDepth int
	// MaxSteps bounds each walk (0 = sim's default budget).
	MaxSteps int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	return c
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

type task struct {
	req   Request
	index int
}

// Engine routes requests concurrently over one Snapshot using a fixed
// worker pool. Requests enter through a bounded queue (Submit blocks when
// it is full); every worker records into its own metrics shard, so the
// hot path takes no shared locks beyond the snapshot's sharded view
// cache. An Engine is a single session: use it, Close it, read Report.
type Engine struct {
	snap *Snapshot
	cfg  Config

	tasks chan task
	out   chan Response
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	nextIdx atomic.Int64
	shards  []*metrics.Shard
	started time.Time
	elapsed time.Duration
}

// New starts an engine over snap. The returned engine is running: submit
// requests, consume Results, then Close.
func New(snap *Snapshot, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		snap:    snap,
		cfg:     cfg,
		tasks:   make(chan task, cfg.QueueDepth),
		out:     make(chan Response, cfg.QueueDepth),
		shards:  make([]*metrics.Shard, cfg.Workers),
		started: time.Now(),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.shards[w] = metrics.NewShard()
		e.wg.Add(1)
		go e.worker(w)
	}
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Snapshot returns the snapshot the engine routes over.
func (e *Engine) Snapshot() *Snapshot { return e.snap }

// worker routes tasks until the queue closes, recording into its own
// metric shard.
func (e *Engine) worker(w int) {
	defer e.wg.Done()
	sh := e.shards[w]
	for tk := range e.tasks {
		start := time.Now()
		res := e.snap.Route(tk.req.S, tk.req.T, e.cfg.MaxSteps)
		lat := time.Since(start)

		sh.Count("requests", 1)
		sh.Observe("latency_ns", lat.Nanoseconds())
		switch res.Outcome {
		case sim.Delivered:
			sh.Count("delivered", 1)
			sh.Observe("hops", int64(res.Len()))
			if res.Dist > 0 {
				// Stretch recorded in milli-units so the log-scale
				// buckets resolve the 1.0–7.0 range the theorems bound.
				sh.Observe("stretch_milli", int64(res.Dilation()*1000+0.5))
			}
		case sim.Looped:
			sh.Count("looped", 1)
		case sim.Errored:
			sh.Count("errored", 1)
		case sim.Exhausted:
			sh.Count("exhausted", 1)
		}

		e.out <- Response{Request: tk.req, Index: tk.index, Worker: w, Result: res, Latency: lat}
	}
}

// Submit enqueues one request, blocking while the queue is full
// (backpressure). It fails with ErrClosed after Close.
func (e *Engine) Submit(req Request) error {
	idx := int(e.nextIdx.Add(1) - 1)
	return e.submit(task{req: req, index: idx})
}

func (e *Engine) submit(tk task) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	// Sending under RLock is safe: Close waits for in-flight senders,
	// and workers keep draining until the queue closes, so every
	// blocked send completes.
	e.tasks <- tk
	return nil
}

// Results streams responses as workers finish them (completion order,
// not submission order). The channel closes after Close once every
// in-flight request has been reported.
func (e *Engine) Results() <-chan Response { return e.out }

// Close stops intake, waits for in-flight requests to finish, and closes
// Results. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.mu.Unlock()
	e.wg.Wait()
	e.elapsed = time.Since(e.started)
	close(e.out)
}

// RouteBatch submits every request and returns responses in request
// order. It requires exclusive use of the engine (no concurrent Submit
// or Results consumers) and may be called repeatedly before Close.
func (e *Engine) RouteBatch(reqs []Request) ([]Response, error) {
	out := make([]Response, len(reqs))
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		for i := 0; i < len(reqs); i++ {
			r, ok := <-e.out
			if !ok {
				return
			}
			out[r.Index] = r
		}
	}()
	var submitErr error
	for i, req := range reqs {
		if err := e.submit(task{req: req, index: i}); err != nil {
			submitErr = err
			break
		}
	}
	if submitErr != nil {
		// Intake failed mid-batch; drain what was accepted.
		e.Close()
	}
	collect.Wait()
	if submitErr != nil {
		return nil, submitErr
	}
	return out, nil
}

// RunWorkload draws requests from w and routes them, discarding
// individual responses (the metrics shards keep the aggregates). It
// stops after n requests, or when d elapses (whichever comes first;
// n ≤ 0 means unbounded, d ≤ 0 means no deadline — at least one bound
// must be set). The engine is closed when RunWorkload returns; read
// Report next.
func (e *Engine) RunWorkload(w Workload, n int, d time.Duration) error {
	if n <= 0 && d <= 0 {
		return fmt.Errorf("engine: RunWorkload needs a request count or a duration")
	}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for range e.out {
		}
	}()
	deadline := time.Time{}
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	var err error
	for i := 0; n <= 0 || i < n; i++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		if err = e.Submit(w.Next()); err != nil {
			break
		}
	}
	e.Close()
	drain.Wait()
	return err
}

// Report merges the per-worker metric shards into one report, attaching
// derived gauges (delivery rate, throughput, stretch percentiles scaled
// back to ratios, cache activity). It closes the engine first if the
// caller has not.
func (e *Engine) Report() *metrics.Report {
	e.Close()
	merged := metrics.MergeShards(e.shards...)
	rep := merged.Snapshot()
	rep.Name = fmt.Sprintf("%s k=%d n=%d workers=%d",
		e.snap.alg.Name, e.snap.k, e.snap.g.N(), e.cfg.Workers)

	reqs := rep.Counter("requests")
	if reqs > 0 {
		rep.Put("delivery_rate", float64(rep.Counter("delivered"))/float64(reqs))
		if secs := e.elapsed.Seconds(); secs > 0 {
			rep.Put("throughput_rps", float64(reqs)/secs)
		}
	}
	if h, ok := rep.Histograms["stretch_milli"]; ok {
		rep.Put("stretch_max", float64(h.Max)/1000)
		rep.Put("stretch_p99", h.P99/1000)
		rep.Put("stretch_mean", h.Mean/1000)
	}
	if cs := e.snap.CacheStats(); cs.Hits+cs.Misses > 0 {
		rep.Put("cache_hit_rate", cs.HitRate())
		rep.Put("cache_size", float64(cs.Size))
		rep.Put("cache_evictions", float64(cs.Evictions))
	}
	return rep
}

// RouteAll is the one-shot convenience: route reqs over snap with cfg,
// returning ordered responses and the merged metrics report.
func RouteAll(snap *Snapshot, reqs []Request, cfg Config) ([]Response, *metrics.Report, error) {
	e := New(snap, cfg)
	out, err := e.RouteBatch(reqs)
	if err != nil {
		return nil, nil, err
	}
	return out, e.Report(), nil
}
