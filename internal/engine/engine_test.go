package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

func testGraph(n int) *graph.Graph {
	return gen.Lollipop(n-n/3, n/3)
}

func TestSnapshotDefaults(t *testing.T) {
	g := testGraph(18)
	snap, err := NewSnapshot(g, 0, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	if snap.K() != route.MinK2(g.N()) {
		t.Fatalf("k defaulted to %d, want threshold %d", snap.K(), route.MinK2(g.N()))
	}
	if snap.Graph() != g || snap.Algorithm().Name != "Algorithm2" || snap.Func() == nil {
		t.Fatal("snapshot accessors broken")
	}
	if _, err := NewSnapshot(nil, 1, route.Algorithm2()); err == nil {
		t.Fatal("nil graph must be rejected")
	}
}

func TestSnapshotPrewarmAndCacheStats(t *testing.T) {
	g := testGraph(18)
	snap, err := NewSnapshotOpts(g, 0, route.Algorithm2(), SnapshotOptions{Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs := snap.CacheStats(); cs.Size != int64(g.N()) {
		t.Fatalf("prewarmed cache size = %d, want %d", cs.Size, g.N())
	}
	// An algorithm without preprocessing reports zero stats.
	snap3, err := NewSnapshotOpts(g, 0, route.Algorithm3(), SnapshotOptions{Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs := snap3.CacheStats(); cs.Size != 0 {
		t.Fatalf("algorithm3 has no cache, got size %d", cs.Size)
	}
}

func TestRouteBatchDeliversEverything(t *testing.T) {
	g := testGraph(20)
	for _, alg := range []route.Algorithm{route.Algorithm1(), route.Algorithm1B(), route.Algorithm2(), route.Algorithm3()} {
		snap, err := NewSnapshot(g, 0, alg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := Take(AllPairs(g), PairCount(g))
		resps, rep, err := RouteAll(snap, reqs, Config{Workers: 4, QueueDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(resps) != len(reqs) {
			t.Fatalf("%s: %d responses for %d requests", alg.Name, len(resps), len(reqs))
		}
		for i, r := range resps {
			if r.Request != reqs[i] {
				t.Fatalf("%s: response %d out of order: %+v vs %+v", alg.Name, i, r.Request, reqs[i])
			}
			if r.Result.Outcome != sim.Delivered {
				t.Fatalf("%s: %d->%d not delivered: %v (%v)", alg.Name, r.S, r.T, r.Result.Outcome, r.Result.Err)
			}
		}
		if got := rep.Gauge("delivery_rate"); got != 1.0 {
			t.Fatalf("%s: delivery_rate = %v", alg.Name, got)
		}
		if rep.Counter("requests") != int64(len(reqs)) {
			t.Fatalf("%s: requests counter = %d", alg.Name, rep.Counter("requests"))
		}
	}
}

func TestBatchMatchesSequentialRoute(t *testing.T) {
	// The engine must produce byte-identical walks to the sequential
	// simulator: same outcome, same route, for every pair.
	rng := rand.New(rand.NewSource(21))
	g := gen.RandomConnected(rng, 16, 0.12)
	alg := route.Algorithm1()
	k := alg.MinK(g.N())
	snap, err := NewSnapshot(g, k, alg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := Take(Uniform(rand.New(rand.NewSource(2)), g), 200)
	resps, _, err := RouteAll(snap, reqs, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := alg.Bind(g, k)
	for i, r := range resps {
		want := sim.Run(g, sim.Func(f), reqs[i].S, reqs[i].T, sim.Options{
			DetectLoops: true, PredecessorAware: true,
		})
		if r.Result.Outcome != want.Outcome || r.Result.Len() != want.Len() {
			t.Fatalf("pair %d: engine %v/%d vs sequential %v/%d",
				i, r.Result.Outcome, r.Result.Len(), want.Outcome, want.Len())
		}
		for j := range want.Route {
			if r.Result.Route[j] != want.Route[j] {
				t.Fatalf("pair %d: route diverges at hop %d", i, j)
			}
		}
	}
}

func TestCacheAmortization(t *testing.T) {
	// Routing many messages must preprocess each vertex at most a
	// handful of times (concurrent same-vertex misses may double
	// compute), never once per message.
	g := testGraph(18)
	snap, err := NewSnapshot(g, 0, route.Algorithm2())
	if err != nil {
		t.Fatal(err)
	}
	reqs := Take(Uniform(rand.New(rand.NewSource(3)), g), 500)
	if _, _, err := RouteAll(snap, reqs, Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	cs := snap.CacheStats()
	if cs.Misses > 3*int64(g.N()) {
		t.Fatalf("cache misses %d ≫ vertex count %d: preprocessing not amortized", cs.Misses, g.N())
	}
	if cs.Hits < 10*cs.Misses {
		t.Fatalf("hit/miss = %d/%d: expected overwhelming hits on 500 messages", cs.Hits, cs.Misses)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	g := testGraph(12)
	snap, _ := NewSnapshot(g, 0, route.Algorithm3())
	e := New(snap, Config{Workers: 2})
	go func() {
		for range e.Results() {
		}
	}()
	if err := e.Submit(Request{S: 0, T: 1}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.Submit(Request{S: 0, T: 1}); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestBackpressureBoundsQueue(t *testing.T) {
	// With a tiny queue and slow consumption, Submit must block rather
	// than buffer unboundedly — verified by watching the submitter make
	// no progress until the consumer drains.
	g := testGraph(12)
	snap, _ := NewSnapshot(g, 0, route.Algorithm3())
	e := New(snap, Config{Workers: 1, QueueDepth: 1})

	submitted := make(chan int, 64)
	go func() {
		for i := 0; i < 20; i++ {
			e.Submit(Request{S: 0, T: 1})
			submitted <- i
		}
		close(submitted)
	}()
	// Without consuming results, the submitter can get at most
	// queue(1) + results buffer(1) + in-flight(1) + one blocked ≈ 4 ahead.
	time.Sleep(50 * time.Millisecond)
	ahead := len(submitted)
	if ahead > 6 {
		t.Fatalf("submitter ran %d requests ahead of a stalled consumer; backpressure broken", ahead)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range e.Results() {
		}
	}()
	for range submitted {
	}
	e.Close()
	wg.Wait()
	if got := e.Report().Counter("requests"); got != 20 {
		t.Fatalf("routed %d requests, want 20", got)
	}
}

func TestRunWorkloadCountAndDuration(t *testing.T) {
	g := testGraph(16)
	snap, _ := NewSnapshot(g, 0, route.Algorithm2())
	e := New(snap, Config{Workers: 4})
	w := Uniform(rand.New(rand.NewSource(4)), g)
	if err := e.RunWorkload(w, 300, 0); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.Counter("requests") != 300 {
		t.Fatalf("requests = %d, want 300", rep.Counter("requests"))
	}
	if rep.Gauge("delivery_rate") != 1.0 {
		t.Fatalf("delivery rate %v", rep.Gauge("delivery_rate"))
	}
	if rep.Gauge("throughput_rps") <= 0 {
		t.Fatal("throughput gauge missing")
	}

	// Duration mode stops on its own.
	e2 := New(snap, Config{Workers: 4})
	if err := e2.RunWorkload(w, 0, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if e2.Report().Counter("requests") == 0 {
		t.Fatal("duration-bounded run routed nothing")
	}
	// Neither bound set is an error.
	e3 := New(snap, Config{Workers: 1})
	if err := e3.RunWorkload(w, 0, 0); err == nil {
		t.Fatal("unbounded RunWorkload must be rejected")
	}
	e3.Close()
}

func TestConcurrentSubmitters(t *testing.T) {
	// Many goroutines submitting through one engine session (race-audit
	// coverage for the intake path; run under -race via make race).
	g := testGraph(16)
	snap, _ := NewSnapshot(g, 0, route.Algorithm1B())
	e := New(snap, Config{Workers: 4, QueueDepth: 2})
	var drained sync.WaitGroup
	drained.Add(1)
	total := 0
	go func() {
		defer drained.Done()
		for range e.Results() {
			total++
		}
	}()
	var wg sync.WaitGroup
	vs := g.Vertices()
	for p := 0; p < 6; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < 50; i++ {
				s := vs[r.Intn(len(vs))]
				d := vs[r.Intn(len(vs))]
				if s == d {
					continue
				}
				if err := e.Submit(Request{S: s, T: d}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	e.Close()
	drained.Wait()
	rep := e.Report()
	if int64(total) != rep.Counter("requests") {
		t.Fatalf("drained %d responses, counted %d requests", total, rep.Counter("requests"))
	}
	if rep.Counter("delivered") != rep.Counter("requests") {
		t.Fatalf("lost deliveries: %d/%d", rep.Counter("delivered"), rep.Counter("requests"))
	}
}

func TestAdversarialStretchMatchesTheorem4(t *testing.T) {
	// On the DilationPath instance the engine must report exactly the
	// paper's worst-case route length 2n−3k−1 for Algorithm 1.
	n := 32
	k := route.MinK1(n)
	g, w, err := Adversarial(n, k)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(g, k, route.Algorithm1())
	if err != nil {
		t.Fatal(err)
	}
	resps, rep, err := RouteAll(snap, Take(w, 10), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*g.N() - 3*k - 1
	for _, r := range resps {
		if r.Result.Outcome != sim.Delivered {
			t.Fatalf("adversarial pair not delivered: %v", r.Result.Err)
		}
	}
	if maxHops := rep.Histograms["hops"].Max; maxHops != int64(want) {
		t.Fatalf("worst route length %d, Theorem 4 bound %d", maxHops, want)
	}
	if rep.Gauge("delivery_rate") != 1.0 {
		t.Fatal("adversarial workload must still deliver above threshold")
	}
}
