package engine

import (
	"fmt"
	"math/rand"

	"klocal/internal/adversary"
	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

// Workload is a deterministic request generator: given the seed it was
// built with, the i-th Next call always yields the same request. A
// Workload is not safe for concurrent use; the engine draws from it in
// one producer goroutine (RunWorkload).
type Workload struct {
	// Name identifies the generator in reports.
	Name string
	// Next returns the next request.
	Next func() Request
}

// StoreVertices materializes the vertex set of st in ascending label
// order — the rank list workload generators draw from. At 10^6 vertices
// this is ~8 MB, negligible next to the store itself.
func StoreVertices(st bigraph.Store) []graph.Vertex {
	vs := make([]graph.Vertex, 0, st.N())
	st.EachVertex(func(v graph.Vertex) bool {
		vs = append(vs, v)
		return true
	})
	return vs
}

// Uniform routes between independently uniform random distinct (s, t)
// pairs — the throughput baseline.
func Uniform(rng *rand.Rand, g *graph.Graph) Workload {
	return uniformOver(rng, g.Vertices())
}

// UniformStore is Uniform over any bigraph.Store.
func UniformStore(rng *rand.Rand, st bigraph.Store) Workload {
	return uniformOver(rng, StoreVertices(st))
}

func uniformOver(rng *rand.Rand, vs []graph.Vertex) Workload {
	return Workload{
		Name: "uniform",
		Next: func() Request {
			s := vs[rng.Intn(len(vs))]
			t := vs[rng.Intn(len(vs))]
			for t == s {
				t = vs[rng.Intn(len(vs))]
			}
			return Request{S: s, T: t}
		},
	}
}

// ZipfSkew is the default Zipf exponent for Zipf workloads.
const ZipfSkew = 1.2

// Zipf routes from uniform random sources to Zipf-skewed destinations
// (rank r drawn with probability ∝ 1/(1+r)^skew over the label-sorted
// vertex list) — the "popular destination" traffic shape that makes the
// per-source view cache earn its keep. skew ≤ 1 uses ZipfSkew.
func Zipf(rng *rand.Rand, g *graph.Graph, skew float64) Workload {
	return zipfOver(rng, g.Vertices(), skew)
}

// ZipfStore is Zipf over any bigraph.Store.
func ZipfStore(rng *rand.Rand, st bigraph.Store, skew float64) Workload {
	return zipfOver(rng, StoreVertices(st), skew)
}

func zipfOver(rng *rand.Rand, vs []graph.Vertex, skew float64) Workload {
	// vs is label-sorted: rank = label order
	if skew <= 1 {
		skew = ZipfSkew
	}
	z := rand.NewZipf(rng, skew, 1, uint64(len(vs)-1))
	return Workload{
		Name: "zipf",
		Next: func() Request {
			t := vs[int(z.Uint64())]
			s := vs[rng.Intn(len(vs))]
			for s == t {
				s = vs[rng.Intn(len(vs))]
			}
			return Request{S: s, T: t}
		},
	}
}

// AllPairs cycles deterministically through every ordered (s, t) pair in
// label order — the exhaustive coverage workload (n·(n−1) distinct
// requests per cycle).
func AllPairs(g *graph.Graph) Workload {
	return allPairsOver(g.Vertices())
}

// AllPairsStore is AllPairs over any bigraph.Store.
func AllPairsStore(st bigraph.Store) Workload {
	return allPairsOver(StoreVertices(st))
}

func allPairsOver(vs []graph.Vertex) Workload {
	i, j := 0, 1
	return Workload{
		Name: "allpairs",
		Next: func() Request {
			if i == j {
				j++
			}
			if j >= len(vs) {
				i, j = i+1, 0
				if i >= len(vs) {
					i, j = 0, 1
				}
			}
			req := Request{S: vs[i], T: vs[j]}
			j++
			return req
		},
	}
}

// PairCount returns the number of requests in one AllPairs cycle.
func PairCount(g *graph.Graph) int { return g.N() * (g.N() - 1) }

// Adversarial replays the paper's worst-case constructions: the
// Theorem 4 dilation path (adversary.DilationPath), whose (s, t) pair
// forces route length 2n−3k−1 out of every successful k-local algorithm.
// The workload alternates the extremal pair with its reverse so caches
// see both directions. It returns the instance graph, which the caller
// must route on (the workload's pairs are meaningless elsewhere).
func Adversarial(n, k int) (*graph.Graph, Workload, error) {
	inst, err := adversary.DilationPath(n, k)
	if err != nil {
		return nil, Workload{}, fmt.Errorf("engine: adversarial workload: %w", err)
	}
	return inst.G, adversarialPairs(inst), nil
}

// adversarialPairs builds the alternating forward/reverse workload over
// one extremal instance.
func adversarialPairs(inst gen.Instance) Workload {
	flip := false
	return Workload{
		Name: "adversarial",
		Next: func() Request {
			flip = !flip
			if flip {
				return Request{S: inst.S, T: inst.T}
			}
			return Request{S: inst.T, T: inst.S}
		},
	}
}

// NewWorkload builds a named workload over g: "uniform", "zipf",
// "allpairs" or "hotspot". ("adversarial" carries its own graph; use
// Adversarial.)
func NewWorkload(kind string, rng *rand.Rand, g *graph.Graph) (Workload, error) {
	return NewWorkloadStore(kind, rng, g)
}

// NewWorkloadStore is NewWorkload over any bigraph.Store.
func NewWorkloadStore(kind string, rng *rand.Rand, st bigraph.Store) (Workload, error) {
	switch kind {
	case "uniform":
		return UniformStore(rng, st), nil
	case "zipf":
		return ZipfStore(rng, st, 0), nil
	case "allpairs":
		return AllPairsStore(st), nil
	case "hotspot":
		return HotspotStore(rng, st, 0), nil
	default:
		return Workload{}, fmt.Errorf("engine: unknown workload %q (uniform|zipf|allpairs|hotspot|adversarial)", kind)
	}
}

// Take materializes the next n requests of w — handy for RouteBatch and
// for deterministic tests.
func Take(w Workload, n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}
