package engine

import (
	"math/rand"
	"testing"

	"klocal/internal/adversary"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestUniformDeterministicAndValid(t *testing.T) {
	g := gen.Cycle(20)
	a := Take(Uniform(rand.New(rand.NewSource(7)), g), 1000)
	b := Take(Uniform(rand.New(rand.NewSource(7)), g), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].S == a[i].T {
			t.Fatalf("request %d has s == t", i)
		}
		if !g.HasVertex(a[i].S) || !g.HasVertex(a[i].T) {
			t.Fatalf("request %d off-graph: %+v", i, a[i])
		}
	}
	c := Take(Uniform(rand.New(rand.NewSource(8)), g), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical request streams")
	}
}

func TestZipfSkewsDestinations(t *testing.T) {
	g := gen.Cycle(50)
	reqs := Take(Zipf(rand.New(rand.NewSource(9)), g, 0), 20000)
	counts := make(map[graph.Vertex]int)
	for _, r := range reqs {
		if r.S == r.T {
			t.Fatal("zipf produced s == t")
		}
		counts[r.T]++
	}
	// The rank-0 destination must dominate: far above the uniform share
	// (uniform would give 2% on 50 vertices; Zipf(1.2) gives > 25%).
	top := counts[g.Vertices()[0]]
	if frac := float64(top) / float64(len(reqs)); frac < 0.15 {
		t.Fatalf("top destination drew %.1f%% of traffic; not Zipf-skewed", 100*frac)
	}
	// Determinism.
	again := Take(Zipf(rand.New(rand.NewSource(9)), g, 0), 100)
	for i := range again {
		if again[i] != reqs[i] {
			t.Fatalf("zipf with same seed diverged at %d", i)
		}
	}
}

func TestAllPairsCoversEveryOrderedPair(t *testing.T) {
	g := gen.Path(7)
	n := PairCount(g)
	reqs := Take(AllPairs(g), n)
	seen := make(map[Request]bool, n)
	for _, r := range reqs {
		if r.S == r.T {
			t.Fatal("allpairs produced s == t")
		}
		if seen[r] {
			t.Fatalf("pair %+v repeated inside one cycle", r)
		}
		seen[r] = true
	}
	if len(seen) != n {
		t.Fatalf("covered %d pairs, want %d", len(seen), n)
	}
	// The next cycle starts over identically.
	w := AllPairs(g)
	first := Take(w, n)
	second := Take(w, n)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("second cycle diverges at %d", i)
		}
	}
}

func TestAdversarialMatchesAdversaryConstruction(t *testing.T) {
	n, k := 40, 10
	g, w, err := Adversarial(n, k)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := adversary.DilationPath(n, k)
	if err != nil {
		t.Fatal(err)
	}
	// Identical topology...
	if g.N() != inst.G.N() || g.M() != inst.G.M() {
		t.Fatalf("workload graph %d/%d differs from adversary instance %d/%d",
			g.N(), g.M(), inst.G.N(), inst.G.M())
	}
	for _, e := range inst.G.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("workload graph missing adversary edge %v", e)
		}
	}
	// ...and exactly the paper's extremal pair, alternating directions.
	reqs := Take(w, 4)
	if reqs[0] != (Request{S: inst.S, T: inst.T}) || reqs[2] != reqs[0] {
		t.Fatalf("forward pair wrong: %+v, want {%d %d}", reqs[0], inst.S, inst.T)
	}
	if reqs[1] != (Request{S: inst.T, T: inst.S}) || reqs[3] != reqs[1] {
		t.Fatalf("reverse pair wrong: %+v", reqs[1])
	}
	if _, _, err := Adversarial(7, 6); err == nil {
		t.Fatal("infeasible adversarial parameters must error")
	}
}

func TestNewWorkloadByName(t *testing.T) {
	g := gen.Cycle(10)
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []string{"uniform", "zipf", "allpairs"} {
		w, err := NewWorkload(kind, rng, g)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != kind {
			t.Fatalf("name %q for kind %q", w.Name, kind)
		}
		if r := w.Next(); r.S == r.T {
			t.Fatalf("%s produced s == t", kind)
		}
	}
	if _, err := NewWorkload("nope", rng, g); err == nil {
		t.Fatal("unknown workload must error")
	}
}
