package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerAtomic guards the concurrency hygiene of the hot paths
// (engine workers, the sharded prep cache, metric shards, netsim): a
// field or package variable that is accessed through sync/atomic
// anywhere must be accessed through sync/atomic everywhere. A single
// plain read next to atomic.AddInt64 is a data race the race detector
// only catches when the interleaving happens to fire; this analyzer
// catches it structurally. (Fields of type atomic.Int64 etc. are safe
// by construction and need no check — prefer them for new code.)
var AnalyzerAtomic = &Analyzer{
	Name: "katomic",
	Doc:  "variables accessed via sync/atomic must never be accessed non-atomically",
	Run:  runAtomic,
}

func runAtomic(pass *Pass) {
	// Pass 1: every variable whose address feeds a sync/atomic call.
	atomicVars := make(map[*types.Var]string) // var -> atomic func name
	atomicUses := make(map[ast.Expr]bool)     // the &x operands themselves
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := syncAtomicCallee(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if v := referencedVar(pass, un.X); v != nil {
					atomicVars[v] = name
					atomicUses[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: any other access to those variables is a race.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || atomicUses[e] {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			v := referencedVar(pass, e)
			if v == nil {
				return true
			}
			if fn, ok := atomicVars[v]; ok {
				pass.Reportf(e.Pos(), "non-atomic access to %s, which is accessed with sync/atomic (%s) elsewhere; use sync/atomic consistently or an atomic.Int64-style typed field", v.Name(), fn)
			}
			return false
		})
	}
}

// syncAtomicCallee reports whether call targets a sync/atomic
// package-level function, returning its name.
func syncAtomicCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return "atomic." + fn.Name(), true
}

// referencedVar resolves an identifier or field selector to the
// variable it denotes: a package-level variable or a struct field
// (identified by its field object, so x.n and y.n of the same struct
// type agree). Plain locals are ignored — distinct instances of a
// local are distinct storage, and escape-free locals cannot race.
func referencedVar(pass *Pass, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := pass.Info.Uses[x].(*types.Var)
		if ok && isPackageLevel(pass, v) {
			return v
		}
	case *ast.SelectorExpr:
		if selection := pass.Info.Selections[x]; selection != nil && selection.Kind() == types.FieldVal {
			return selection.Obj().(*types.Var)
		}
	}
	return nil
}
