package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAlloc enforces the zero-allocation contract on hot paths: the
// ROADMAP's "zero-alloc routing core" is pinned at runtime by
// testing.AllocsPerRun gates, and this analyzer is the static
// complement — it rejects the allocation a refactor sneaks in long
// before a benchmark notices the regression. Inside decision paths and
// functions opted in with //klocal:hotpath it flags every construct
// that heap-allocates (or may): make and new, append that can grow its
// backing array, slice and map literals, address-taken composite
// literals, variable-capturing closures, string concatenation,
// string<->slice conversions, variadic calls (the argument slice), and
// interface boxing of non-pointer-shaped values.
//
// One shape is exempt by design: a self-append whose destination is
// reachable from a parameter or the receiver (sc.Verts =
// append(sc.Verts, x), including through a re-slice like buf =
// append(buf[:0], x)). That is the caller-owned scratch idiom the
// bigraph extraction is built on — the buffer grows to a high-water
// mark once and is then reused allocation-free, which is exactly what
// the AllocsPerRun gates prove.
//
// Unlike //klocal:decision seeds, hotpath marks do not spread
// transitively: a dispatcher may legitimately call into per-request
// allocation (snapshot.Route builds a fresh Result by design), so every
// function held to the zero-alloc contract opts in explicitly.
var AnalyzerAlloc = &Analyzer{
	Name: "kalloc",
	Doc:  "no heap allocation inside decision paths and //klocal:hotpath functions",
	Run:  runAlloc,
}

func runAlloc(pass *Pass) {
	seen := make(map[ast.Node]bool)
	check := func(s scope) {
		if s.body == nil || seen[s.node] {
			return
		}
		seen[s.node] = true
		checkAllocScope(pass, s)
	}
	for _, s := range pass.Decisions() {
		check(s)
	}
	for _, s := range pass.Hotpaths() {
		check(s)
	}
}

func checkAllocScope(pass *Pass, s scope) {
	params := scopeParams(pass, s)
	exempt := exemptAppends(pass, s, params)
	handled := make(map[ast.Node]bool) // composites claimed by an enclosing &
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(pass, node, exempt)
		case *ast.CompositeLit:
			if handled[node] {
				return true
			}
			switch pass.TypeOf(node).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(node.Pos(), "hot path allocates a slice literal; preallocate caller-owned scratch instead")
			case *types.Map:
				pass.Reportf(node.Pos(), "hot path allocates a map literal; preallocate caller-owned scratch instead")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if cl, ok := node.X.(*ast.CompositeLit); ok {
					handled[cl] = true
					pass.Reportf(node.Pos(), "hot path heap-allocates &%s{...}; reuse a caller-owned value instead", typeLabel(pass.TypeOf(cl)))
				}
			}
		case *ast.FuncLit:
			// The literal is only an allocation when it captures: a
			// capture-free literal compiles to a static function value.
			if v := capturedVar(pass, node); v != nil {
				pass.Reportf(node.Pos(), "hot path allocates a closure capturing %s; hoist the function or pass state explicitly", v.Name())
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if t := pass.TypeOf(node); t != nil && isStringType(t) && !isConstExpr(pass, node) {
					pass.Reportf(node.Pos(), "hot path concatenates strings (allocates); precompute or use a caller-owned buffer")
				}
			}
		}
		return true
	})
}

// checkAllocCall flags the allocating call shapes: make/new, growing
// append, string<->slice conversions, variadic argument slices, and
// interface boxing of non-pointer-shaped arguments.
func checkAllocCall(pass *Pass, call *ast.CallExpr, exempt map[*ast.CallExpr]bool) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot path allocates with make; size caller-owned scratch at bind time instead")
			case "new":
				pass.Reportf(call.Pos(), "hot path allocates with new; reuse a caller-owned value instead")
			case "append":
				if !exempt[call] {
					pass.Reportf(call.Pos(), "hot path append may grow its backing array; append into caller-owned scratch (self-append rooted in a parameter) instead")
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypeOf(call.Args[0])
		if dst != nil && src != nil && stringSliceConversion(dst, src) {
			pass.Reportf(call.Pos(), "hot path converts between string and slice (copies the payload)")
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > fixed {
			pass.Reportf(call.Pos(), "hot path variadic call to %s allocates its argument slice", calleeName(call))
		}
	}
	// Interface boxing of the fixed arguments: storing a non-pointer-
	// shaped concrete value in an interface heap-allocates the payload.
	for i := 0; i < len(call.Args) && i < fixed; i++ {
		pt := sig.Params().At(i).Type()
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(call.Args[i])
		if at == nil || isConstExpr(pass, call.Args[i]) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if !pointerShaped(at) {
			pass.Reportf(call.Args[i].Pos(), "hot path boxes a %s into an interface argument of %s (allocates)", typeLabel(at), calleeName(call))
		}
	}
}

// exemptAppends finds the caller-owned self-appends of the scope:
// x = append(x, ...) and x = append(x[:0], ...) where x is an
// ident/selector chain rooted in a parameter or the receiver.
func exemptAppends(pass *Pass, s scope, params map[*types.Var]bool) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(s.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			dst := call.Args[0]
			if sl, ok := dst.(*ast.SliceExpr); ok {
				dst = sl.X // append(buf[:0], ...) re-slices the same storage
			}
			lchain, lroot := exprChain(pass, as.Lhs[i])
			dchain, droot := exprChain(pass, dst)
			if lroot == nil || lroot != droot || !params[lroot] {
				continue
			}
			if len(lchain) == len(dchain) {
				same := true
				for j := range lchain {
					if lchain[j] != dchain[j] {
						same = false
						break
					}
				}
				if same {
					exempt[call] = true
				}
			}
		}
		return true
	})
	return exempt
}

// scopeParams collects the parameter and receiver variables of the
// scope — the roots a caller-owned scratch buffer may hang off.
func scopeParams(pass *Pass, s scope) map[*types.Var]bool {
	params := make(map[*types.Var]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}
	switch fn := s.node.(type) {
	case *ast.FuncDecl:
		addFields(fn.Recv)
		addFields(fn.Type.Params)
	case *ast.FuncLit:
		addFields(fn.Type.Params)
	}
	return params
}

// exprChain flattens an ident/selector/deref chain (sc.Verts, e.shards,
// *routeOut) into its path and resolves the root variable; any other
// shape returns a nil root. Derefs participate so that appending through
// a pointer parameter (*out = append(*out, x)) still reads as the
// caller-owned idiom.
func exprChain(pass *Pass, e ast.Expr) ([]string, *types.Var) {
	var rev []string
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			rev = append(rev, "*")
			e = x.X
		case *ast.SelectorExpr:
			rev = append(rev, x.Sel.Name)
			e = x.X
		case *ast.Ident:
			rev = append(rev, x.Name)
			v, _ := pass.Info.Uses[x].(*types.Var)
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, v
		default:
			return nil, nil
		}
	}
}

// capturedVar returns a variable the literal captures from its
// enclosing function (not package scope), or nil.
func capturedVar(pass *Pass, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || isPackageLevel(pass, v) || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
			return false
		}
		return true
	})
	return captured
}

// pointerShaped reports whether values of t fit an interface word
// without allocating: pointers, channels, maps, functions and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringSliceConversion reports whether a conversion between dst and
// src crosses the string/byte-or-rune-slice boundary.
func stringSliceConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isConstExpr reports whether e is a compile-time constant (constants
// box from static storage, and constant-folded concatenations cost
// nothing at run time).
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// typeLabel renders t compactly for diagnostics.
func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
