package analysis

import "testing"

// Each analyzer runs against a fixture package seeding both violations
// (marked // want) and idiomatic code that must pass silently.

func TestLocalityFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerLocality}, "locality")
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerDeterminism}, "determinism")
}

func TestStatelessFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerStateless}, "stateless")
}

func TestAtomicFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerAtomic}, "atomicmix")
}

func TestLockCopyFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerLockCopy}, "lockcopy")
}

func TestDirectiveFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerDirective}, "directive")
}

func TestAllocFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerAlloc}, "alloc")
}

func TestLifetimeFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerLifetime}, "lifetime")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerLockOrder}, "lockorder")
}

func TestGoroutineFixture(t *testing.T) {
	runFixture(t, []*Analyzer{AnalyzerGoroutine}, "goroutine")
}

// TestStaleAllow runs the full suite with stale-allow reporting on: the
// live suppression in the fixture stays silent, the one whose
// diagnostic no longer fires is itself reported.
func TestStaleAllow(t *testing.T) {
	runFixtureOpts(t, All(), "staleallow", Options{StaleAllows: true})
}

// TestAllowSuppression runs the full suite over a fixture mixing
// suppressed and unsuppressed violations: a documented //klocal:allow
// silences the diagnostic on its own and the following line, a
// reasonless one silences nothing and is itself flagged.
func TestAllowSuppression(t *testing.T) {
	runFixture(t, All(), "allowed")
}

// TestRepoClean is the enforcement gate in test form: the suite must
// report nothing on the repository itself (the same check `make lint`
// runs via cmd/klocalvet). Any finding is either a genuine contract
// violation to fix or a deliberate exception to document with
// //klocal:allow — and stale-allow reporting is on, so a documented
// exception whose diagnostic stops firing must be deleted too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo analysis in -short mode")
	}
	pkgs, err := NewLoader().Load("klocal/...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	for _, d := range RunWithOptions(All(), pkgs, Options{StaleAllows: true}) {
		t.Errorf("%s", d)
	}
}
