package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive verbs. "//klocal:decision" opts a function into the
// decision-path analyzers when the structural signature match cannot
// see it; "//klocal:hotpath" opts a function into the zero-allocation
// analyzer (kalloc) — the static complement of the AllocsPerRun gates;
// "//klocal:allow <reason>" suppresses the suite's diagnostics on its
// own line and the line below, and must carry a reason.
const (
	directivePrefix = "//klocal:"
	verbDecision    = "decision"
	verbHotpath     = "hotpath"
	verbAllow       = "allow"
)

// directive is one parsed //klocal: control comment.
type directive struct {
	Verb   string
	Reason string
	Pos    token.Pos
	Line   int
}

// directivesIn extracts the //klocal: directives of a file.
func directivesIn(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(text, " ")
			out = append(out, directive{
				Verb:   verb,
				Reason: strings.TrimSpace(reason),
				Pos:    c.Pos(),
				Line:   fset.Position(c.Pos()).Line,
			})
		}
	}
	return out
}

// AnalyzerDirective validates //klocal: control comments: unknown verbs
// are flagged (a typo must not silently disable enforcement) and allow
// directives must state their reason. Its findings are exempt from
// allow-suppression.
var AnalyzerDirective = &Analyzer{
	Name: "kdirective",
	Doc:  "check that //klocal: directives are well-formed",
	Run:  runDirective,
}

func runDirective(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range directivesIn(pass.Fset, f) {
			switch d.Verb {
			case verbDecision:
				if d.Reason != "" {
					pass.Reportf(d.Pos, "klocal:decision takes no argument (got %q)", d.Reason)
				}
			case verbHotpath:
				if d.Reason != "" {
					pass.Reportf(d.Pos, "klocal:hotpath takes no argument (got %q)", d.Reason)
				}
			case verbAllow:
				if d.Reason == "" {
					pass.Reportf(d.Pos, "klocal:allow must state a reason for the exception")
				}
			default:
				pass.Reportf(d.Pos, "unknown directive klocal:%s (known: decision, hotpath, allow)", d.Verb)
			}
		}
	}
}
