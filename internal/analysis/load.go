package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads and type-checks packages of the enclosing module using
// the go tool: package metadata and compiler export data come from
// `go list -export`, source files are parsed and type-checked locally.
// A Loader caches export data lookups and is safe to reuse (but not
// concurrently).
type Loader struct {
	Fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: make(map[string]string)}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// goList runs `go list -export -json` over the arguments and decodes
// the JSON stream.
func goList(extra []string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-export", "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly,Error"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// lookup resolves an import path to its compiler export data, listing
// it lazily if the initial -deps sweep did not cover it.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := goList(nil, path)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				l.mu.Lock()
				l.exports[p.ImportPath] = p.Export
				l.mu.Unlock()
				if p.ImportPath == path {
					file = p.Export
				}
			}
		}
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Load lists the patterns, parses and type-checks every non-dependency
// match, and returns the analysis-ready packages in listing order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList([]string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.mu.Lock()
			l.exports[p.ImportPath] = p.Export
			l.mu.Unlock()
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	var out []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the .go files of a single directory under an
// explicit import path — the fixture entry point used by the tests.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return l.check(path, dir, files)
}

// check parses and type-checks one package from explicit files.
func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	pkg := &Package{PkgPath: path, Dir: dir, Fset: l.Fset}
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
