package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerDeterminism enforces determinism: the paper's routing
// function f(s, t, u, v, G_k(u)) is a function — the same arguments
// must always produce the same forwarding decision, or Observation 1's
// livelock criterion and every route-length bound dissolve. Inside
// decision paths it flags the nondeterminism Go makes easy to reach
// for: ranging over a map (iteration order is randomized), drawing
// from math/rand's ambient global generator, reading the clock, and
// select statements that race multiple ready channels.
//
// Seeded randomness stays allowed structurally: methods on an explicit
// *rand.Rand (see route.RandomWalkRand) are reproducible given the
// seed, so only the package-level draw functions are flagged.
var AnalyzerDeterminism = &Analyzer{
	Name: "kdeterminism",
	Doc:  "decision paths must be deterministic functions of (s, t, u, v, G_k(u))",
	Run:  runDeterminism,
}

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than draw from the ambient one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	pass.inspectScopes(func(s scope, n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(node.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(node.Pos(), "decision path ranges over a map; iteration order is nondeterministic — iterate a sorted slice (rank order) instead")
				}
			}
		case *ast.CallExpr:
			checkDeterminismCall(pass, node)
		case *ast.SelectStmt:
			ready := 0
			hasDefault := false
			for _, clause := range node.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					} else {
						ready++
					}
				}
			}
			if ready >= 2 || (ready >= 1 && hasDefault) {
				pass.Reportf(node.Pos(), "decision path selects over multiple ready cases; the runtime picks one at random")
			}
		}
		return true
	})
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		// Methods are fine: draws on an explicit seeded *rand.Rand and
		// monotonic arithmetic on time values are reproducible.
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "decision path draws from math/rand's global generator (%s.%s); take an explicit seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "decision path reads the clock (time.%s); forwarding decisions must not depend on wall time", fn.Name())
		}
	}
}
