package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerLocality enforces k-locality (PAPER.md §2): a routing
// decision at u may consult only s, t, the incoming port and G_k(u).
// Concretely, inside a decision path every *graph.Graph value must be
// reached through the sanctioned view carriers — prep.View,
// prep.Preprocessor, nbhd.Neighborhood, nbhd.Component — or be handed
// to the nbhd/prep preprocessing boundary that constructs such a view.
// Calling a raw graph method (g.Adj, g.BFS, g.NextHopToward, ...) on
// the network itself, or passing the network to any other helper, is
// exactly the "reach past the k-neighbourhood" bug that would silently
// invalidate the theorems, and is flagged.
var AnalyzerLocality = &Analyzer{
	Name: "klocality",
	Doc:  "decision paths may traverse the graph only through the nbhd/prep view APIs",
	Run:  runLocality,
}

func runLocality(pass *Pass) {
	for _, s := range pass.Decisions() {
		if s.body == nil {
			continue
		}
		checkLocalityScope(pass, s)
	}
}

func checkLocalityScope(pass *Pass, s scope) {
	derived := viewDerivedVars(pass, s)
	ast.Inspect(s.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Method call with a graph receiver: the receiver must be
		// view-derived.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if selection := pass.Info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
				if isGraphPtr(pass.TypeOf(sel.X)) && !viewDerived(pass, derived, sel.X) {
					pass.Reportf(sel.Pos(), "decision path calls %s on a raw *graph.Graph; k-local code must go through the nbhd/prep view APIs (G_k(u) only)", sel.Sel.Name)
				}
				return true
			}
		}
		// Raw graph passed as an argument: only the preprocessing
		// boundary (nbhd/prep) may receive it; everything else could
		// smuggle global topology into the decision. A helper that is
		// itself in the decision closure may hold the graph — its body
		// is checked by every decision-path analyzer, so a violation
		// surfaces where the graph is actually consulted.
		if sanctionedBoundary(pass, call) || closureCallee(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if isGraphPtr(pass.TypeOf(arg)) && !viewDerived(pass, derived, arg) {
				pass.Reportf(arg.Pos(), "decision path passes a raw *graph.Graph to %s; only the nbhd/prep preprocessing APIs may receive the network", calleeName(call))
			}
		}
		return true
	})
}

// sanctionedBoundary reports whether call targets the preprocessing
// boundary: a package-level function of internal/nbhd or internal/prep
// (nbhd.Extract, prep.Preprocess, ...). These construct G_k(u) and are
// the only admissible consumers of the raw network inside a decision.
func sanctionedBoundary(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fromPkg(fn, nbhdPkgSuffix) || fromPkg(fn, prepPkgSuffix)
}

// closureCallee reports whether call targets a member of the decision
// closure.
func closureCallee(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	return ok && pass.decisionFunc(fn)
}

// calleeName renders the called function for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "a function"
	}
}

// viewDerivedVars finds local variables of the scope that hold graphs
// obtained from a view (e.g. vg := view.Routing), iterating to a fixed
// point so chains of assignments stay sanctioned.
func viewDerivedVars(pass *Pass, s scope) map[*types.Var]bool {
	derived := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		record := func(lhs ast.Expr, rhs ast.Expr) {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return
			}
			v, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				if v, ok = pass.Info.Uses[id].(*types.Var); !ok {
					return
				}
			}
			if !derived[v] && isGraphPtr(v.Type()) && viewDerived(pass, derived, rhs) {
				derived[v] = true
				changed = true
			}
		}
		ast.Inspect(s.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						record(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						record(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
	return derived
}

// viewDerived reports whether e yields a value reached through a
// sanctioned view: a view-typed value itself, a selector chain rooted
// in one (view.Raw.G), a call on one (p.At(u)), or a local variable
// previously assigned such a value.
func viewDerived(pass *Pass, derived map[*types.Var]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return viewDerived(pass, derived, x.X)
	case *ast.UnaryExpr:
		return viewDerived(pass, derived, x.X)
	case *ast.StarExpr:
		return viewDerived(pass, derived, x.X)
	case *ast.Ident:
		if isViewType(pass.TypeOf(x)) {
			return true
		}
		v, ok := pass.Info.Uses[x].(*types.Var)
		return ok && derived[v]
	case *ast.SelectorExpr:
		if isViewType(pass.TypeOf(x)) {
			return true
		}
		return viewDerived(pass, derived, x.X)
	case *ast.CallExpr:
		if isViewType(pass.TypeOf(x)) {
			return true
		}
		// A method call on a view (p.At, view.CompOf, nb.Components)
		// yields view-derived data whatever its result type.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if selection := pass.Info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
				return viewDerived(pass, derived, sel.X)
			}
		}
		return false
	case *ast.IndexExpr:
		return viewDerived(pass, derived, x.X)
	default:
		return isViewType(pass.TypeOf(e))
	}
}
