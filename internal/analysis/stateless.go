package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerStateless enforces statelessness and memorylessness: after
// bind time a routing function owns no mutable state — no per-message
// bookkeeping in a receiver, no counters in closed-over variables, no
// package-level scratch. Inside decision paths it flags every
// assignment, increment or indexed write whose target lives outside
// the decision function itself: package-level variables, fields of
// closed-over or receiver values, and entries of closed-over maps and
// slices. Locals of the decision function (including variables its
// nested literals close over) stay writable — they are per-call state,
// which the model permits.
var AnalyzerStateless = &Analyzer{
	Name: "kstateless",
	Doc:  "decision paths must not write receiver, closed-over or package-level state",
	Run:  runStateless,
}

func runStateless(pass *Pass) {
	for _, s := range pass.Decisions() {
		if s.body == nil {
			continue
		}
		checkStatelessScope(pass, s)
	}
}

func checkStatelessScope(pass *Pass, s scope) {
	recv := pointerReceiver(pass, s)
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, s, recv, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, s, recv, st.X)
		}
		return true
	})
}

// pointerReceiver returns the scope's pointer receiver variable, if it
// is a method declaration with one. The receiver is declared inside the
// method's AST range but the storage it points at is bind-time state —
// writes through it outlive the call. (A value receiver is a per-call
// copy; writing its fields is dead code, not shared state.)
func pointerReceiver(pass *Pass, s scope) *types.Var {
	fd, ok := s.node.(*ast.FuncDecl)
	if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, ok := pass.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return nil
	}
	if _, ptr := v.Type().(*types.Pointer); !ptr {
		return nil
	}
	return v
}

// checkWrite reports lhs if it stores into state declared outside the
// decision scope.
func checkWrite(pass *Pass, s scope, recv *types.Var, lhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if v, ok := pass.Info.Uses[x].(*types.Var); ok {
			if isPackageLevel(pass, v) {
				pass.Reportf(x.Pos(), "decision path writes package-level variable %s; routing functions must be stateless after bind time", v.Name())
				return
			}
			if !declaredInside(s, v) {
				pass.Reportf(x.Pos(), "decision path writes closed-over variable %s; routing functions must be stateless after bind time", v.Name())
			}
		}
	case *ast.SelectorExpr:
		if root, free := freeRoot(pass, s, recv, x.X); free {
			pass.Reportf(x.Pos(), "decision path writes field %s of bind-time value %s; routing functions must keep no mutable state", x.Sel.Name, root)
		}
	case *ast.IndexExpr:
		if root, free := freeRoot(pass, s, recv, x.X); free {
			pass.Reportf(x.Pos(), "decision path writes an element of bind-time value %s; routing functions must keep no mutable state", root)
		}
	case *ast.StarExpr:
		if root, free := freeRoot(pass, s, recv, x.X); free {
			pass.Reportf(x.Pos(), "decision path writes through bind-time pointer %s; routing functions must keep no mutable state", root)
		}
	case *ast.ParenExpr:
		checkWrite(pass, s, recv, x.X)
	}
}

// freeRoot resolves the base identifier of a selector/index/deref chain
// and reports whether it is free with respect to the decision scope:
// declared outside it, or the method's pointer receiver (whose pointee
// is bind-time state). The root's name is returned for diagnostics.
func freeRoot(pass *Pass, s scope, recv *types.Var, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := pass.Info.Uses[x].(*types.Var)
			if !ok {
				return x.Name, false
			}
			if v == recv || isPackageLevel(pass, v) || !declaredInside(s, v) {
				return v.Name(), true
			}
			return v.Name(), false
		default:
			// Writes rooted in call results or literals are per-call.
			return "", false
		}
	}
}

// isPackageLevel reports whether v is a package-scope variable.
func isPackageLevel(pass *Pass, v *types.Var) bool {
	return v.Parent() == pass.Pkg.Scope()
}

// declaredInside reports whether v's declaration lies within the scope
// node (its parameters and locals, including those of nested literals).
func declaredInside(s scope, v *types.Var) bool {
	return v.Pos() >= s.node.Pos() && v.Pos() <= s.node.End()
}
