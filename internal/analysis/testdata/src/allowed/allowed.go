// Package allowed exercises //klocal:allow suppression against the
// full suite: documented exceptions on the same line or the line above
// are silenced, everything else still fires — including a reasonless
// allow, which suppresses nothing and is itself flagged.
package allowed

import "klocal/internal/graph"

// Routed mixes suppressed and unsuppressed locality violations.
func Routed(g *graph.Graph) func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		//klocal:allow fixture demonstrates a documented exception on the preceding line
		adjA := g.Adj(u)

		adjB := g.Adj(t) //klocal:allow a trailing directive on the flagged line also suppresses

		adjC := g.Adj(v) // want "klocality: decision path calls Adj on a raw"

		//klocal:allow
		dist := g.BFS(u) // want "klocality: decision path calls BFS on a raw"
		// want-2 "kdirective: klocal:allow must state a reason"

		if len(adjA)+len(adjB)+len(adjC)+len(dist) == 0 {
			return graph.NoVertex, nil
		}
		return t, nil
	}
}
