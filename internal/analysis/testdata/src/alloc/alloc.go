// Package alloc seeds kalloc violations: heap allocation inside
// decision paths and //klocal:hotpath functions, next to the
// caller-owned scratch idiom that must pass silently.
package alloc

import (
	"errors"

	"klocal/internal/graph"
)

// Scratch is a caller-owned buffer in the bigraph style.
type Scratch struct {
	Verts []int32
	Seen  []bool
}

// Hot is held to the zero-allocation contract.
//
//klocal:hotpath
func Hot(sc *Scratch, n int, name string, suffix string) {
	buf := make([]int32, n)   // want "kalloc: hot path allocates with make"
	tmp := []int32{1, 2, 3}   // want "kalloc: hot path allocates a slice literal"
	m := map[int]int{}        // want "kalloc: hot path allocates a map literal"
	p := &Scratch{}           // want "kalloc: hot path heap-allocates &alloc.Scratch"
	bs := []byte(name)        // want "kalloc: hot path converts between string and slice"
	label := name + suffix    // want "kalloc: hot path concatenates strings"
	f := func() int32 {       // want "kalloc: hot path allocates a closure capturing n"
		return int32(n)
	}
	sink(1, 2)                // want "kalloc: hot path variadic call to sink allocates its argument slice"
	box(n)                    // want "kalloc: hot path boxes a int into an interface argument of box"

	// The caller-owned scratch idiom is exempt: self-appends rooted in a
	// parameter grow to a high-water mark once, then reuse storage.
	sc.Verts = append(sc.Verts, 7)
	sc.Verts = append(sc.Verts[:0], 8)
	appendPtr(&sc.Seen)

	// A growing append into a local is not.
	var local []int32
	local = append(local, 9) // want "kalloc: hot path append may grow its backing array"

	_, _, _, _, _, _, _, _ = buf, tmp, m, p, bs, label, f, local
}

func sink(xs ...int32) {}

// appendPtr self-appends through a pointer parameter: still the
// caller-owned idiom, still exempt.
//
//klocal:hotpath
func appendPtr(out *[]bool) {
	*out = append(*out, true)
}

func box(v any) {}

var errMiss = errors.New("miss")

// Decide has the routing-function shape, so it is a kalloc scope with
// no mark needed; its helper joins transitively.
func Decide(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	hops := make([]graph.Vertex, 0, 4) // want "kalloc: hot path allocates with make"
	_ = hops
	return helper(t)
}

func helper(t graph.Vertex) (graph.Vertex, error) {
	if t == graph.NoVertex {
		return graph.NoVertex, errMiss
	}
	box(struct{ x int }{1}) // want "kalloc: hot path boxes a struct"
	return t, nil
}

// Cold has no mark and no decision shape: it may allocate freely.
func Cold(n int) []int32 {
	out := make([]int32, n)
	return append(out, []int32{1, 2}...)
}

// Arrays and constant expressions do not allocate.
//
//klocal:hotpath
func HotClean(sc *Scratch) int32 {
	var window [4]int32
	const label = "k" + "local"
	box(nil)
	_ = label
	for i := range window {
		window[i] = int32(i)
	}
	if len(sc.Verts) > 0 {
		return sc.Verts[0]
	}
	return 0
}
