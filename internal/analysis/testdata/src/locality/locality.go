// Package locality seeds klocality violations: decision paths reaching
// past G_k(u) into the raw network.
package locality

import (
	"fmt"

	"klocal/internal/graph"
	"klocal/internal/nbhd"
	"klocal/internal/prep"
)

// Bad consults the network directly instead of a k-local view, and
// leaks it across the package boundary where no analyzer follows.
func Bad(g *graph.Graph, k int) func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		adj := g.Adj(u) // want "klocality: decision path calls Adj on a raw"
		_ = g.BFS(u)    // want "klocality: decision path calls BFS on a raw"
		fmt.Println(g)  // want "klocality: decision path passes a raw .* to fmt.Println"
		if len(adj) == 0 {
			return graph.NoVertex, nil
		}
		return adj[0], nil
	}
}

// helperBad is pulled into the decision closure of BadHelper and must
// obey the same contract.
func helperBad(g *graph.Graph, u graph.Vertex) graph.Vertex {
	adj := g.Adj(u) // want "klocality: decision path calls Adj on a raw"
	if len(adj) > 0 {
		return adj[0]
	}
	return graph.NoVertex
}

// BadHelper hides the violation one call away: handing the graph to a
// same-package helper is fine in itself (the helper joins the decision
// closure and is checked above), the raw access inside it is not.
func BadHelper(g *graph.Graph) func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		return helperBad(g, u), nil
	}
}

// Good goes through the sanctioned boundaries only: nbhd extraction,
// preprocessed views, and graphs reached through them.
func Good(g *graph.Graph, p *prep.Preprocessor, k int) func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		view := nbhd.Extract(g, u, k)
		vg := view.G
		adj := vg.Adj(u)
		if view.Contains(t) && len(adj) > 0 {
			return view.G.NextHopToward(u, t), nil
		}
		if pv := p.At(u); pv != nil {
			return pv.Routing.NextHopToward(u, t), nil
		}
		return graph.NoVertex, nil
	}
}

// OptedStep does not have the routing signature; the marker drafts it
// into the decision analyzers anyway.
//
//klocal:decision
func OptedStep(g *graph.Graph, u graph.Vertex) graph.Vertex {
	adj := g.Adj(u) // want "klocality: decision path calls Adj on a raw"
	if len(adj) > 0 {
		return adj[0]
	}
	return graph.NoVertex
}

// UnmarkedStep has the same shape and no marker: not a decision path,
// so raw graph access is fine here.
func UnmarkedStep(g *graph.Graph, u graph.Vertex) graph.Vertex {
	adj := g.Adj(u)
	if len(adj) > 0 {
		return adj[0]
	}
	return graph.NoVertex
}
