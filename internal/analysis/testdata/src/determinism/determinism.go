// Package determinism seeds kdeterminism violations: sources of
// nondeterminism inside decision paths.
package determinism

import (
	"math/rand"
	"time"

	"klocal/internal/graph"
)

// Bad draws on every nondeterminism source the analyzer knows.
func Bad(ch1, ch2 chan graph.Vertex, seen map[graph.Vertex]bool) func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		for w := range seen { // want "kdeterminism: decision path ranges over a map"
			_ = w
		}
		_ = rand.Intn(4) // want "kdeterminism: decision path draws from math/rand's global generator"
		_ = time.Now()   // want "kdeterminism: decision path reads the clock"
		select {         // want "kdeterminism: decision path selects over multiple ready cases"
		case w := <-ch1:
			return w, nil
		case w := <-ch2:
			return w, nil
		}
	}
}

// Good keeps randomness explicit and seeded, iterates slices, and uses
// single-channel receives: all reproducible.
func Good(ch chan graph.Vertex, order []graph.Vertex) func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	rng := rand.New(rand.NewSource(1))
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		for _, w := range order {
			if w == t {
				return w, nil
			}
		}
		if len(order) > 0 {
			return order[rng.Intn(len(order))], nil
		}
		select {
		case w := <-ch:
			return w, nil
		}
	}
}
