// Package lockorder seeds klockorder violations: a cyclic acquisition
// order between two struct mutexes, blocking operations executed under
// a lock, and self-deadlocks — next to consistent-order and
// goroutine-handoff shapes that must pass silently.
package lockorder

import "sync"

// Table carries the locks whose ordering protocol the analyzer checks.
type Table struct {
	a  sync.Mutex
	b  sync.Mutex
	c  sync.RWMutex
	d  sync.Mutex
	ch chan int
}

// AB acquires a then b; BA below acquires b then a — together a cycle.
func (t *Table) AB() {
	t.a.Lock()
	t.b.Lock() // want "klockorder: inconsistent lock order: Table.b is acquired while holding Table.a"
	t.b.Unlock()
	t.a.Unlock()
}

// BA is the other half of the cycle.
func (t *Table) BA() {
	t.b.Lock()
	t.a.Lock() // want "klockorder: inconsistent lock order: Table.a is acquired while holding Table.b"
	t.a.Unlock()
	t.b.Unlock()
}

// SendUnder blocks every contender of a for as long as the channel has
// no reader.
func (t *Table) SendUnder(v int) {
	t.a.Lock()
	t.ch <- v // want "klockorder: channel send may block while holding Table.a"
	t.a.Unlock()
}

// RecvUnder parks the holder until a sender shows up.
func (t *Table) RecvUnder() int {
	t.c.RLock()
	v := <-t.ch // want "klockorder: channel receive blocks while holding Table.c"
	t.c.RUnlock()
	return v
}

// WaitUnder holds d across a WaitGroup wait.
func (t *Table) WaitUnder(wg *sync.WaitGroup) {
	t.d.Lock()
	wg.Wait() // want "klockorder: sync.WaitGroup.Wait blocks while holding Table.d"
	t.d.Unlock()
}

// SelectUnder has no default clause, so it parks the holder.
func (t *Table) SelectUnder(done chan struct{}) {
	t.d.Lock()
	select { // want "klockorder: select with no default blocks while holding Table.d"
	case <-done:
	case v := <-t.ch:
		_ = v
	}
	t.d.Unlock()
}

// Reacquire self-deadlocks: the second Lock never returns.
func (t *Table) Reacquire() {
	t.a.Lock()
	t.a.Lock() // want "klockorder: acquires Table.a while already holding it"
	t.a.Unlock()
	t.a.Unlock()
}

// CallUnder calls a function that re-acquires the lock it holds.
func (t *Table) CallUnder() {
	t.a.Lock()
	t.touchA() // want "klockorder: calls touchA while holding Table.a, which it also acquires"
	t.a.Unlock()
}

func (t *Table) touchA() {
	t.a.Lock()
	t.a.Unlock()
}

// CD and CDAgain acquire c then d in the same order everywhere: edges
// but no cycle, so no report.
func (t *Table) CD() {
	t.c.Lock()
	defer t.c.Unlock()
	t.d.Lock()
	t.d.Unlock()
}

func (t *Table) CDAgain() {
	t.c.RLock()
	t.d.Lock()
	t.d.Unlock()
	t.c.RUnlock()
}

// Handoff spawns a goroutine that takes b; the spawner's held set does
// not transfer, so no a->b edge arises here.
func (t *Table) Handoff(wg *sync.WaitGroup) {
	t.a.Lock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.b.Lock()
		t.b.Unlock()
	}()
	t.a.Unlock()
}

// PollUnder uses a default clause: the select cannot park the holder.
func (t *Table) PollUnder() int {
	t.a.Lock()
	defer t.a.Unlock()
	select {
	case v := <-t.ch:
		return v
	default:
		return 0
	}
}
