// Package staleallow seeds the stale-suppression case: one
// //klocal:allow that still suppresses a live diagnostic (silent), and
// one whose diagnostic stopped firing — dead weight the runner must
// report before it silently excuses the next regression on its line.
package staleallow

// Hot is held to the zero-allocation contract; the allow below is live
// because kalloc still fires on the make.
//
//klocal:hotpath
func Hot(n int) []int {
	//klocal:allow demo buffer; lifetime measured, grows once at bind time
	return make([]int, n)
}

// Cold once carried a finding on the return line; the code was fixed
// but the suppression stayed behind.
func Cold() int {
	//klocal:allow excuses nothing: the diagnostic it covered is gone
	// want-1 "kdirective: stale klocal:allow: no diagnostic fires on this or the following line"
	return 42
}
