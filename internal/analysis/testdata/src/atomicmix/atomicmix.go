// Package atomicmix seeds katomic violations: variables accessed both
// through sync/atomic and directly.
package atomicmix

import "sync/atomic"

// ops is counted atomically by workers but read bare by Snapshot.
var ops int64

// Counter mixes access modes on its hot field.
type Counter struct {
	n     int64
	limit int64 // never atomic; plain access is fine
}

// Add is the atomic side of the mix.
func (c *Counter) Add() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&ops, 1)
}

// Racy reads the same storage without the atomic package.
func (c *Counter) Racy() int64 {
	if c.limit > 0 {
		return c.limit
	}
	return c.n + ops // want "katomic: non-atomic access to n" "katomic: non-atomic access to ops"
}

// Clean stays on the atomic side everywhere.
func (c *Counter) Clean() int64 {
	return atomic.LoadInt64(&c.n) + atomic.LoadInt64(&ops)
}
