// Package goroutine seeds kgoroutine violations: fire-and-forget
// spawns with no reachable stop signal, next to the tied shapes —
// context, done channel, closing work channel, WaitGroup — that must
// pass silently.
package goroutine

import (
	"context"
	"sync"
)

func work() {}

// LeakLit spawns an unstoppable loop.
func LeakLit() {
	go func() { // want "kgoroutine: goroutine is fire-and-forget"
		for {
			work()
		}
	}()
}

// LeakNamed launches a named function that nothing can stop.
func LeakNamed() {
	go work() // want "kgoroutine: goroutine is fire-and-forget"
}

// TiedCtx watches its context.
func TiedCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// TiedCtxArg hands the goroutine its cancellation as an argument.
func TiedCtxArg(ctx context.Context) {
	go handle(ctx)
}

func handle(ctx context.Context) {}

// TiedDone selects on a stop channel.
func TiedDone(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// TiedRange drains a work channel; closing it stops the goroutine.
func TiedRange(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// TiedWG is joined through a WaitGroup.
func TiedWG(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

// TiedNamed launches a named loop whose body blocks on the done
// channel — the one-hop expansion finds it.
func TiedNamed(done chan struct{}) {
	go loop(done)
}

func loop(done chan struct{}) {
	<-done
}

// TiedViaHelper reaches the stop signal through a same-package callee.
func TiedViaHelper(done chan struct{}) {
	go func() {
		loop(done)
	}()
}
