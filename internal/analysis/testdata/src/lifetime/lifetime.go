// Package lifetime seeds klifetime violations: slices aliasing the
// mmap-backed CSR store escaping the borrow window that Close bounds.
package lifetime

import "klocal/internal/bigraph"

// Cache parks row views past the caller's frame.
type Cache struct {
	rows [][]int32
	last []int32
}

var hottest []int32

// LeakReturn hands the caller a view into pages Close will unmap.
func LeakReturn(c *bigraph.CSR, i int32) []int32 {
	row := c.Row(i)
	return row // want "klifetime: returns a slice aliasing the mmap-backed CSR store"
}

// LeakReslice launders the view through a re-slice; still the same
// backing pages.
func LeakReslice(c *bigraph.CSR, i int32) []int32 {
	row := c.Row(i)
	tail := row[1:]
	return tail // want "klifetime: returns a slice aliasing the mmap-backed CSR store"
}

// LeakField survives the frame inside a struct.
func (ca *Cache) LeakField(c *bigraph.CSR, i int32) {
	ca.last = c.Row(i) // want "klifetime: stores a slice aliasing the mmap-backed CSR store into field last"
}

// LeakGlobal survives the frame in a package variable.
func LeakGlobal(c *bigraph.CSR, i int32) {
	hottest = c.Row(i) // want "klifetime: stores a slice aliasing the mmap-backed CSR store into package variable hottest"
}

// LeakSend crosses goroutines on a channel.
func LeakSend(c *bigraph.CSR, i int32, ch chan []int32) {
	ch <- c.Row(i) // want "klifetime: sends a slice aliasing the mmap-backed CSR store on a channel"
}

// LeakGoroutine captures the view in a goroutine whose lifetime is
// unbounded with respect to the store's.
func LeakGoroutine(c *bigraph.CSR, i int32, sink func(int32)) {
	row := c.Row(i)
	go func() {
		for _, t := range row { // want "klifetime: goroutine captures row, a slice aliasing the mmap-backed CSR store"
			sink(t)
		}
	}()
}

// LeakGoArg hands the view to a spawned function directly.
func LeakGoArg(c *bigraph.CSR, i int32) {
	go consume(c.Row(i)) // want "klifetime: hands a slice aliasing the mmap-backed CSR store to a goroutine"
}

func consume(row []int32) {}

// CopyOut is the sanctioned shape: the data leaves, the alias does not.
func CopyOut(c *bigraph.CSR, i int32, out []int32) []int32 {
	row := c.Row(i)
	out = append(out[:0], row...)
	return out
}

// BorrowLocally reads through the view inside the frame; nothing
// escapes.
func BorrowLocally(c *bigraph.CSR, i int32) int32 {
	row := c.Row(i)
	var sum int32
	for _, t := range row {
		sum += t
	}
	return sum
}
