// Package lockcopy seeds klockcopy violations: lock-bearing values in
// positions where Go silently copies them.
package lockcopy

import (
	"sync"
	"sync/atomic"
)

// Shard embeds its lock by value — fine on its own...
type Shard struct {
	mu   sync.Mutex
	data map[string]int
}

// Metrics buries an atomic counter one struct deep.
type Metrics struct {
	inner struct {
		hits atomic.Int64
	}
}

// shards maps keys to lock-bearing values: every read copies the mutex.
var shards map[string]Shard // want "klockcopy: map value type contains sync.Mutex"

// updates sends lock-bearing values across goroutines.
var updates chan Shard // want "klockcopy: channel element type contains sync.Mutex"

// Snapshot returns the lock by value, handing the caller a diverged copy.
func Snapshot(s *Shard) Shard { // want "klockcopy: returns a value containing sync.Mutex by value"
	return *s
}

// Totals copies the buried atomic.
func Totals(m *Metrics) Metrics { // want "klockcopy: returns a value containing atomic.Int64 by value"
	return *m
}

// Good: pointers indirect, so nothing is copied.
var goodShards map[string]*Shard

var goodUpdates chan *Shard

// View returns by pointer.
func View(s *Shard) *Shard {
	return s
}
