// Package stateless seeds kstateless violations: decision paths
// mutating state that survives the call.
package stateless

import (
	"klocal/internal/graph"
)

// hits is package-level scratch no decision path may touch.
var hits int

// Router carries per-instance bookkeeping; its routing method must not
// write it.
type Router struct {
	count int
	last  map[graph.Vertex]graph.Vertex
}

// Route matches the decision signature, so the receiver writes below
// are after-bind state mutations.
func (r *Router) Route(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	hits++        // want "kstateless: decision path writes package-level variable hits"
	r.count++     // want "kstateless: decision path writes field count of bind-time value r"
	r.last[u] = v // want "kstateless: decision path writes an element of bind-time value r"
	return t, nil
}

// Bad closes over bind-time locals and mutates them per call.
func Bad() func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	visits := 0
	trail := make([]graph.Vertex, 8)
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		visits++            // want "kstateless: decision path writes closed-over variable visits"
		trail[visits%8] = u // want "kstateless: decision path writes an element of bind-time value trail"
		return t, nil
	}
}

// Good keeps every write inside the call: locals, including those its
// own nested literals close over, are per-call state.
func Good() func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
	return func(s, t, u, v graph.Vertex) (graph.Vertex, error) {
		best := graph.NoVertex
		seen := make(map[graph.Vertex]bool)
		pick := func(w graph.Vertex) {
			best = w
			seen[w] = true
		}
		pick(u)
		if seen[best] {
			return best, nil
		}
		return t, nil
	}
}
