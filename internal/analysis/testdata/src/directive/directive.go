// Package directive seeds malformed //klocal: control comments; the
// well-formed ones at the bottom must pass silently.
package directive

import "klocal/internal/graph"

//klocal:allow
// want-1 "kdirective: klocal:allow must state a reason"

//klocal:permit experimental shortcut
// want-1 "kdirective: unknown directive klocal:permit"

//klocal:deciison
// want-1 "kdirective: unknown directive klocal:deciison"

//klocal:decision because it looked important
// want-1 "kdirective: klocal:decision takes no argument"

// Opted is structurally invisible to the signature match and opted in
// by a well-formed marker; kdirective has nothing to say about it.
//klocal:decision
func Opted(g *graph.Graph, u graph.Vertex) graph.Vertex {
	return u
}

// adjacency carries a well-formed allow, which is equally silent.
func adjacency(g *graph.Graph, u graph.Vertex) []graph.Vertex {
	//klocal:allow this fixture documents the happy path
	return g.Adj(u)
}
