// Package analysis implements klocalvet: a suite of static analyzers
// that mechanically enforce the paper's routing-model contracts — a
// forwarding decision must be deterministic, memoryless, stateless and
// k-local (it may consult only t, optionally s and the incoming port,
// and the preprocessed view of G_k(u)).
//
// The contracts live as prose in internal/route/doc.go; this package
// turns them into lint. Each analyzer guards one model property:
//
//   - klocality:    decision paths traverse the graph only through the
//     nbhd/prep view APIs, never through raw *graph.Graph accessors;
//   - kdeterminism: decision paths contain no map iteration, ambient
//     randomness, clock reads or racy selects;
//   - kstateless:   decision paths never write bind-time or global
//     state (receiver fields, closed-over variables, package vars);
//   - katomic:      fields accessed through sync/atomic somewhere are
//     never accessed non-atomically elsewhere;
//   - klockcopy:    lock-bearing values never travel through channels,
//     map values or by-value returns (copies the stock vet misses);
//   - kdirective:   //klocal: control comments are well-formed.
//
// Deliberate exceptions are annotated in source with
// "//klocal:allow <reason>" on (or immediately above) the offending
// line; the runner suppresses matching diagnostics but kdirective
// still rejects reason-less or unknown directives. Functions that the
// structural signature match cannot see are opted in with
// "//klocal:decision" on the declaration.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer / Pass / Diagnostic) but is self-contained: it
// loads packages with `go list -export` and type-checks against the
// compiler's export data, so it needs nothing outside the standard
// library and the go tool.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic

	// decisions caches the decision-scope computation across the
	// analyzers that share it.
	decisions *decisionSet
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerLocality,
		AnalyzerDeterminism,
		AnalyzerStateless,
		AnalyzerAtomic,
		AnalyzerLockCopy,
		AnalyzerDirective,
	}
}

// Run executes the analyzers over the packages, applies //klocal:allow
// suppression, and returns the surviving diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		shared := &decisionSet{}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				diags:     &pkgDiags,
				decisions: shared,
			}
			a.Run(pass)
		}
		diags = append(diags, suppress(pkg, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return dedupe(diags)
}

// dedupe drops diagnostics identical in position and message (nested
// decision scopes can report the same node twice).
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// suppress filters diagnostics covered by a well-formed //klocal:allow
// directive on the same or the immediately preceding line. kdirective
// findings are never suppressible (an allow cannot excuse itself).
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	allowed := make(map[string]map[int]bool) // file -> line
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, d := range directivesIn(pkg.Fset, f) {
			if d.Verb == verbAllow && d.Reason != "" {
				if allowed[name] == nil {
					allowed[name] = make(map[int]bool)
				}
				allowed[name][d.Line] = true
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer != AnalyzerDirective.Name {
			lines := allowed[d.Pos.Filename]
			if lines[d.Pos.Line] || lines[d.Pos.Line-1] {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
