// Package analysis implements klocalvet: a suite of static analyzers
// that mechanically enforce the paper's routing-model contracts — a
// forwarding decision must be deterministic, memoryless, stateless and
// k-local (it may consult only t, optionally s and the incoming port,
// and the preprocessed view of G_k(u)).
//
// The contracts live as prose in internal/route/doc.go; this package
// turns them into lint. Each analyzer guards one model property:
//
//   - klocality:    decision paths traverse the graph only through the
//     nbhd/prep view APIs, never through raw *graph.Graph accessors;
//   - kdeterminism: decision paths contain no map iteration, ambient
//     randomness, clock reads or racy selects;
//   - kstateless:   decision paths never write bind-time or global
//     state (receiver fields, closed-over variables, package vars);
//   - katomic:      fields accessed through sync/atomic somewhere are
//     never accessed non-atomically elsewhere;
//   - klockcopy:    lock-bearing values never travel through channels,
//     map values or by-value returns (copies the stock vet misses);
//   - kdirective:   //klocal: control comments are well-formed.
//
// A second generation targets the scale/cluster-era subsystems — the
// serve/cluster concurrency stack and the mmap-backed CSR store:
//
//   - kalloc:      no heap allocation (make/new/append growth,
//     slice/map literals, interface boxing, capturing closures, string
//     concatenation) inside decision paths and functions opted in with
//     //klocal:hotpath — the static complement of the runtime
//     testing.AllocsPerRun gates;
//   - klifetime:   slices aliasing mmap-backed CSR storage (bigraph
//     row views) must not outlive the store: no escapes into struct
//     fields, package variables, channels, goroutines or returns;
//   - klockorder:  per-package lock-acquisition graph over
//     sync.Mutex/RWMutex; cyclic acquisition orders and blocking
//     operations (channel ops, selects, Wait, network I/O) made while
//     holding a lock are flagged;
//   - kgoroutine:  every `go` statement must be tied to a stop signal
//     — a context, a done/stop channel, a closing work channel, or a
//     WaitGroup — so no goroutine is fire-and-forget.
//
// Deliberate exceptions are annotated in source with
// "//klocal:allow <reason>" on (or immediately above) the offending
// line; the runner suppresses matching diagnostics but kdirective
// still rejects reason-less or unknown directives, and (under
// Options.StaleAllows, the cmd/klocalvet default) reports allows whose
// diagnostic no longer fires, so suppressions cannot outlive the code
// they excuse. Functions that the structural signature match cannot
// see are opted in with "//klocal:decision" on the declaration;
// zero-alloc hot paths opt in with "//klocal:hotpath".
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer / Pass / Diagnostic) but is self-contained: it
// loads packages with `go list -export` and type-checks against the
// compiler's export data, so it needs nothing outside the standard
// library and the go tool.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic

	// decisions caches the decision-scope computation across the
	// analyzers that share it.
	decisions *decisionSet
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerLocality,
		AnalyzerDeterminism,
		AnalyzerStateless,
		AnalyzerAtomic,
		AnalyzerLockCopy,
		AnalyzerAlloc,
		AnalyzerLifetime,
		AnalyzerLockOrder,
		AnalyzerGoroutine,
		AnalyzerDirective,
	}
}

// Options tunes a Run.
type Options struct {
	// StaleAllows additionally reports every well-formed //klocal:allow
	// directive that suppressed nothing — a suppression whose diagnostic
	// no longer fires is dead weight that would silently excuse the next
	// regression on its line. Enable it only when running the full
	// suite: under a subset, an allow aimed at an analyzer that did not
	// run is indistinguishable from a stale one.
	StaleAllows bool
}

// Run executes the analyzers over the packages, applies //klocal:allow
// suppression, and returns the surviving diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	return RunWithOptions(analyzers, pkgs, Options{})
}

// RunWithOptions is Run with explicit Options.
func RunWithOptions(analyzers []*Analyzer, pkgs []*Package, opts Options) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		shared := &decisionSet{}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				diags:     &pkgDiags,
				decisions: shared,
			}
			a.Run(pass)
		}
		diags = append(diags, suppress(pkg, pkgDiags, opts.StaleAllows)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return dedupe(diags)
}

// dedupe drops diagnostics identical in position and message (nested
// decision scopes can report the same node twice).
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}

// suppress filters diagnostics covered by a well-formed //klocal:allow
// directive on the same or the immediately preceding line. kdirective
// findings are never suppressible (an allow cannot excuse itself).
// With stale set, every well-formed allow that suppressed nothing is
// itself reported (as a kdirective finding, so it cannot be allowed
// away in turn).
func suppress(pkg *Package, diags []Diagnostic, stale bool) []Diagnostic {
	allowed := make(map[string]map[int]*allowSite) // file -> line
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, d := range directivesIn(pkg.Fset, f) {
			if d.Verb == verbAllow && d.Reason != "" {
				if allowed[name] == nil {
					allowed[name] = make(map[int]*allowSite)
				}
				allowed[name][d.Line] = &allowSite{pos: d.Pos}
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer != AnalyzerDirective.Name {
			lines := allowed[d.Pos.Filename]
			if site := firstAllow(lines, d.Pos.Line); site != nil {
				site.used = true
				continue
			}
		}
		out = append(out, d)
	}
	if stale {
		for _, lines := range allowed {
			for _, site := range lines {
				if !site.used {
					out = append(out, Diagnostic{
						Analyzer: AnalyzerDirective.Name,
						Pos:      pkg.Fset.Position(site.pos),
						Message:  "stale klocal:allow: no diagnostic fires on this or the following line — delete it, or it will silently excuse the next regression here",
					})
				}
			}
		}
	}
	return out
}

// allowSite is one well-formed //klocal:allow directive and whether any
// diagnostic claimed it.
type allowSite struct {
	pos  token.Pos
	used bool
}

// firstAllow returns the allow covering line (same line, then the line
// above), or nil.
func firstAllow(lines map[int]*allowSite, line int) *allowSite {
	if s := lines[line]; s != nil {
		return s
	}
	return lines[line-1]
}
