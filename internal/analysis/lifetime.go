package analysis

import (
	"go/ast"
	"go/types"
)

const bigraphPkgSuffix = "internal/bigraph"

// AnalyzerLifetime guards the borrow window of the mmap-backed CSR
// store: bigraph row views (CSR.Row, the offsets/targets arrays, any
// unsafe.Slice view) alias pages that Close unmaps, so a slice that
// outlives the store is a use-after-munmap waiting for the next
// deployment swap to fault. Within each function it tracks values
// derived from such views (through assignment and re-slicing) and
// flags the escapes that extend their lifetime past the caller's
// frame: stores into struct fields or package variables, channel
// sends, captures by spawned goroutines, and returns.
//
// Copying the data out (append into a caller-owned buffer, element
// reads) is fine — only the aliasing slice itself is tracked.
var AnalyzerLifetime = &Analyzer{
	Name: "klifetime",
	Doc:  "slices aliasing mmap-backed CSR storage must not outlive the store",
	Run:  runLifetime,
}

func runLifetime(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLifetimeFunc(pass, fd)
			}
		}
	}
}

func checkLifetimeFunc(pass *Pass, fd *ast.FuncDecl) {
	derived := mmapDerivedVars(pass, fd.Body)
	isDerived := func(e ast.Expr) bool { return mmapDerived(pass, derived, e) }
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if isDerived(r) {
					pass.Reportf(r.Pos(), "returns a slice aliasing the mmap-backed CSR store; it must not outlive Close — copy the data out instead")
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Lhs {
				if isDerived(st.Rhs[i]) {
					checkLifetimeStore(pass, fd, st.Lhs[i])
				}
			}
		case *ast.SendStmt:
			if isDerived(st.Value) {
				pass.Reportf(st.Value.Pos(), "sends a slice aliasing the mmap-backed CSR store on a channel; the receiver may outlive Close — copy the data out instead")
			}
		case *ast.GoStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				reportDerivedCaptures(pass, derived, lit)
			}
			for _, arg := range st.Call.Args {
				if isDerived(arg) {
					pass.Reportf(arg.Pos(), "hands a slice aliasing the mmap-backed CSR store to a goroutine; it may outlive Close — copy the data out instead")
				}
			}
		}
		return true
	})
}

// checkLifetimeStore reports lhs when it parks a view in storage that
// outlives the frame: a struct field, a package-level variable, or an
// element of either.
func checkLifetimeStore(pass *Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	switch x := lhs.(type) {
	case *ast.ParenExpr:
		checkLifetimeStore(pass, fd, x.X)
	case *ast.SelectorExpr:
		if selection := pass.Info.Selections[x]; selection != nil && selection.Kind() == types.FieldVal {
			pass.Reportf(x.Pos(), "stores a slice aliasing the mmap-backed CSR store into field %s; it would outlive Close — copy the data out instead", x.Sel.Name)
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok && isPackageLevel(pass, v) {
			pass.Reportf(x.Pos(), "stores a slice aliasing the mmap-backed CSR store into package variable %s; it would outlive Close — copy the data out instead", v.Name())
		}
	case *ast.IndexExpr:
		checkLifetimeStore(pass, fd, x.X)
	case *ast.StarExpr:
		checkLifetimeStore(pass, fd, x.X)
	}
}

// reportDerivedCaptures flags uses of view-derived variables inside a
// goroutine body — the goroutine's lifetime is unbounded with respect
// to the store's.
func reportDerivedCaptures(pass *Pass, derived map[*types.Var]bool, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok && derived[v] {
			pass.Reportf(id.Pos(), "goroutine captures %s, a slice aliasing the mmap-backed CSR store; it may outlive Close — copy the data out instead", v.Name())
		}
		return true
	})
}

// mmapDerivedVars finds the function's local variables holding
// mmap-view slices, iterated to a fixed point so chains of assignments
// and re-slices stay tracked.
func mmapDerivedVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	derived := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		record := func(lhs, rhs ast.Expr) {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return
			}
			v, ok := pass.Info.Defs[id].(*types.Var)
			if !ok {
				if v, ok = pass.Info.Uses[id].(*types.Var); !ok {
					return
				}
			}
			if !derived[v] && mmapDerived(pass, derived, rhs) {
				derived[v] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						record(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						record(ast.Expr(st.Names[i]), st.Values[i])
					}
				}
			}
			return true
		})
	}
	return derived
}

// mmapDerived reports whether e yields a slice aliasing mmap-backed CSR
// storage: a slice-typed call on a *bigraph.CSR (Row), a slice field of
// the CSR or its mapping, an unsafe.Slice view, a tracked local, or a
// re-slice of any of those.
func mmapDerived(pass *Pass, derived map[*types.Var]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return mmapDerived(pass, derived, x.X)
	case *ast.Ident:
		v, ok := pass.Info.Uses[x].(*types.Var)
		return ok && derived[v]
	case *ast.SliceExpr:
		return mmapDerived(pass, derived, x.X)
	case *ast.SelectorExpr:
		if selection := pass.Info.Selections[x]; selection != nil && selection.Kind() == types.FieldVal {
			if isSliceType(pass.TypeOf(x)) && bigraphStoreType(pass.TypeOf(x.X)) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// unsafe.Slice builds an aliasing view over whatever pointer it
		// is handed — in this module that is the mapping.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			// unsafe.Slice resolves to a *types.Builtin, not a Func.
			if b, ok := pass.Info.Uses[sel.Sel].(*types.Builtin); ok && b.Name() == "Slice" {
				return true
			}
			if selection := pass.Info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
				if isSliceType(pass.TypeOf(x)) && bigraphStoreType(pass.TypeOf(sel.X)) {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

// bigraphStoreType reports whether t (behind a pointer) is the bigraph
// CSR or its mapping — the types whose slice views alias the mmap.
func bigraphStoreType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	return (name == "CSR" || name == "mapping") && fromPkg(n.Obj(), bigraphPkgSuffix)
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
