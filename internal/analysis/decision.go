package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// graphPkgSuffix identifies the graph substrate package; the analyzers
// match types by path suffix so fixtures and the real module resolve
// identically.
const (
	graphPkgSuffix = "internal/graph"
	nbhdPkgSuffix  = "internal/nbhd"
	prepPkgSuffix  = "internal/prep"
)

// fromPkg reports whether obj belongs to a package whose import path
// ends in suffix.
func fromPkg(obj types.Object, suffix string) bool {
	return obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), suffix)
}

// isGraphVertex reports whether t is graph.Vertex.
func isGraphVertex(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Vertex" && fromPkg(n.Obj(), graphPkgSuffix)
}

// isGraphPtr reports whether t is *graph.Graph (the raw substrate whose
// use decision paths must route through the view APIs).
func isGraphPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Graph" && fromPkg(n.Obj(), graphPkgSuffix)
}

// isViewType reports whether t (possibly behind a pointer) is one of
// the sanctioned local-view carriers: prep.View, prep.Preprocessor,
// nbhd.Neighborhood or nbhd.Component. Graphs reached through their
// fields are, by construction, the k-local views the paper permits.
func isViewType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	switch {
	case fromPkg(n.Obj(), prepPkgSuffix):
		return name == "View" || name == "Preprocessor"
	case fromPkg(n.Obj(), nbhdPkgSuffix):
		return name == "Neighborhood" || name == "Component"
	}
	return false
}

// isDecisionSignature reports whether sig is the routing-function shape
// f(s, t, u, v) → (next, error): four graph.Vertex parameters and a
// (graph.Vertex, error) result.
func isDecisionSignature(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 4 || sig.Results().Len() != 2 || sig.Variadic() {
		return false
	}
	for i := 0; i < 4; i++ {
		if !isGraphVertex(sig.Params().At(i).Type()) {
			return false
		}
	}
	if !isGraphVertex(sig.Results().At(0).Type()) {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error")
}

// scope is one function body participating in a decision path: either a
// routing function itself (a seed) or a same-package function it
// transitively references.
type scope struct {
	node ast.Node       // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt // nil for bodyless declarations
}

// decisionSet is the per-package set of decision scopes, computed once
// and shared by the decision-path analyzers.
type decisionSet struct {
	computed bool
	scopes   []scope
	// funcs are the declared functions among the scopes: the decision
	// closure's members, each fully checked by the analyzers.
	funcs map[*types.Func]bool

	// hotComputed/hot cache the //klocal:hotpath opt-ins. Unlike the
	// decision closure, hotpath marks do not spread transitively: a
	// dispatcher may legitimately call into per-request allocation
	// (snapshot.Route builds a fresh Result by design), so every
	// function held to the zero-alloc contract opts in explicitly.
	hotComputed bool
	hot         []scope
}

// Decisions returns the decision scopes of the package: every function
// literal or declaration whose signature matches the routing-function
// shape, every function marked //klocal:decision, and — transitively —
// every same-package function one of those references (helpers like
// rule tables and tie-breaks are part of the decision path).
func (p *Pass) Decisions() []scope {
	if p.decisions.computed {
		return p.decisions.scopes
	}
	p.decisions.computed = true
	p.decisions.funcs = make(map[*types.Func]bool)

	// Declarations by object, for closure chasing.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	marked := p.markedLines(verbDecision)
	seen := make(map[ast.Node]bool)
	var work []scope
	add := func(node ast.Node, body *ast.BlockStmt) {
		if node == nil || seen[node] {
			return
		}
		seen[node] = true
		s := scope{node: node, body: body}
		p.decisions.scopes = append(p.decisions.scopes, s)
		work = append(work, s)
	}

	// Seeds: signature matches and //klocal:decision marks.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				sig, _ := p.TypeOf(fn.Name).(*types.Signature)
				if isDecisionSignature(sig) || marked[p.declMarkLine(fn)] {
					if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
						p.decisions.funcs[obj] = true
					}
					add(fn, fn.Body)
				}
			case *ast.FuncLit:
				sig, _ := p.TypeOf(fn).(*types.Signature)
				if isDecisionSignature(sig) || marked[p.lineKey(fn.Pos(), -1)] || marked[p.lineKey(fn.Pos(), 0)] {
					add(fn, fn.Body)
				}
			}
			return true
		})
	}

	// Closure: any same-package function referenced from a decision
	// scope joins it (called directly or passed as a value).
	for len(work) > 0 {
		s := work[0]
		work = work[1:]
		if s.body == nil {
			continue
		}
		ast.Inspect(s.body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() != p.Pkg {
				return true
			}
			if fd, ok := decls[fn]; ok {
				p.decisions.funcs[fn] = true
				add(fd, fd.Body)
			}
			return true
		})
	}
	return p.decisions.scopes
}

// decisionFunc reports whether fn is a member of the decision closure
// (and therefore itself subject to every decision-path analyzer).
func (p *Pass) decisionFunc(fn *types.Func) bool {
	p.Decisions()
	return p.decisions.funcs[fn]
}

// markedLines returns the file:line locations carrying a //klocal:
// directive of the given verb.
func (p *Pass) markedLines(verb string) map[string]bool {
	marked := make(map[string]bool)
	for _, f := range p.Files {
		for _, d := range directivesIn(p.Fset, f) {
			if d.Verb == verb {
				marked[p.lineKey(d.Pos, 0)] = true
			}
		}
	}
	return marked
}

// Hotpaths returns the //klocal:hotpath-marked scopes of the package:
// the functions and literals held to the zero-allocation contract.
// Marks are explicit per function — they do not close transitively.
func (p *Pass) Hotpaths() []scope {
	if p.decisions.hotComputed {
		return p.decisions.hot
	}
	p.decisions.hotComputed = true
	marked := p.markedLines(verbHotpath)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if marked[p.declMarkLine(fn)] {
					p.decisions.hot = append(p.decisions.hot, scope{node: fn, body: fn.Body})
				}
			case *ast.FuncLit:
				if marked[p.lineKey(fn.Pos(), -1)] || marked[p.lineKey(fn.Pos(), 0)] {
					p.decisions.hot = append(p.decisions.hot, scope{node: fn, body: fn.Body})
				}
			}
			return true
		})
	}
	return p.decisions.hot
}

// declMarkLine returns the location a //klocal:decision mark for fd
// would sit on: the last line of its doc comment, or the line above.
func (p *Pass) declMarkLine(fd *ast.FuncDecl) string {
	if fd.Doc != nil && len(fd.Doc.List) > 0 {
		return p.lineKey(fd.Doc.List[len(fd.Doc.List)-1].Pos(), 0)
	}
	return p.lineKey(fd.Pos(), -1)
}

// lineKey renders pos (shifted by delta lines) as a file:line key.
func (p *Pass) lineKey(pos token.Pos, delta int) string {
	pp := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", pp.Filename, pp.Line+delta)
}

// inspectScopes walks every decision scope body once with fn.
func (p *Pass) inspectScopes(fn func(s scope, n ast.Node) bool) {
	for _, s := range p.Decisions() {
		if s.body == nil {
			continue
		}
		ast.Inspect(s.body, func(n ast.Node) bool { return fn(s, n) })
	}
}
