package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerGoroutine enforces goroutine hygiene on the long-running
// subsystems: every `go` statement must be tied to a stop signal so the
// daemon can drain cleanly and tests do not leak runners. A goroutine
// counts as tied when its body — or a same-package function it calls —
// consults a context.Context, blocks on a channel receive/range/select
// (a closing work or done channel reaches it), or participates in a
// WaitGroup. Anything else is fire-and-forget: invisible to shutdown,
// unwaitable in tests, and a use-after-free hazard once the state it
// touches is retired.
var AnalyzerGoroutine = &Analyzer{
	Name: "kgoroutine",
	Doc:  "every go statement is tied to a stop signal (context, done channel, or WaitGroup)",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	// Declarations by object, for one-hop expansion into callees.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineTied(pass, decls, gs) {
				pass.Reportf(gs.Pos(), "goroutine is fire-and-forget: tie it to a stop signal (context, done/stop channel, closing work channel, or WaitGroup)")
			}
			return true
		})
	}
}

// goroutineTied reports whether the spawned body is reachable by a stop
// signal. The body is the literal or the same-package declaration being
// launched; the search expands one hop into same-package callees, so a
// `go m.serve()` whose serve loop selects on a done channel counts.
func goroutineTied(pass *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) bool {
	// Arguments count: `go process(ctx, job)` hands the goroutine its
	// cancellation even when the body is in another package.
	for _, arg := range gs.Call.Args {
		if isContextType(pass.TypeOf(arg)) {
			return true
		}
	}
	body := goBody(pass, decls, gs.Call.Fun)
	if body == nil {
		// Out-of-package or dynamic target with no context argument:
		// nothing ties it that we can see.
		return false
	}
	seen := map[*ast.BlockStmt]bool{}
	return bodyTied(pass, decls, body, seen, 1)
}

// goBody resolves the function being launched to its body when it is a
// literal or a same-package declaration.
func goBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, fun ast.Expr) *ast.BlockStmt {
	switch x := fun.(type) {
	case *ast.FuncLit:
		return x.Body
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[x].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[x.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.ParenExpr:
		return goBody(pass, decls, x.X)
	}
	return nil
}

// bodyTied scans one body for a stop signal, expanding depth more hops
// into same-package callees.
func bodyTied(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, seen map[*ast.BlockStmt]bool, depth int) bool {
	if body == nil || seen[body] {
		return false
	}
	seen[body] = true
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.Ident:
			// Consulting a context (ctx.Done(), ctx.Err(), or passing it
			// on) counts; so does any reference to a context variable.
			if v, ok := pass.Info.Uses[x].(*types.Var); ok && isContextType(v.Type()) {
				tied = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if fn.Pkg().Path() == "sync" && (fn.Name() == "Done" || fn.Name() == "Wait") && isWaitGroupMethod(fn) {
						tied = true
						return false
					}
					if depth > 0 && fn.Pkg() == pass.Pkg {
						if fd := decls[fn]; fd != nil && bodyTied(pass, decls, fd.Body, seen, depth-1) {
							tied = true
						}
					}
				}
			} else if id, ok := x.Fun.(*ast.Ident); ok {
				if fn, ok := pass.Info.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg && depth > 0 {
					if fd := decls[fn]; fd != nil && bodyTied(pass, decls, fd.Body, seen, depth-1) {
						tied = true
					}
				}
			}
		}
		return !tied
	})
	return tied
}

// isWaitGroupMethod reports whether fn is a method of sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	n, ok := rt.(*types.Named)
	return ok && n.Obj().Name() == "WaitGroup"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}
