package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerLockCopy flags lock copies in the shapes the stock vet
// copylocks check does not reach:
//
//   - map value types containing a lock: m[k] is not addressable, so
//     every read copies the lock (and m[k].mu.Lock() does not even
//     compile — the map silently forces a copy-based workaround);
//   - channel element types containing a lock: every send and receive
//     copies it across goroutines, the worst possible place;
//   - functions returning a lock-bearing struct by value: each return
//     hands the caller a diverged copy of the lock state.
//
// The engine/prep/metrics/netsim hot paths keep their mutexes behind
// pointers and shard slices (indexing does not copy); this analyzer
// keeps it that way.
var AnalyzerLockCopy = &Analyzer{
	Name: "klockcopy",
	Doc:  "no lock-bearing values in map values, channel elements or by-value returns",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.MapType:
				if path := lockPath(pass.TypeOf(node.Value)); path != "" {
					pass.Reportf(node.Pos(), "map value type contains %s; map access copies the lock — store a pointer", path)
				}
			case *ast.ChanType:
				if path := lockPath(pass.TypeOf(node.Value)); path != "" {
					pass.Reportf(node.Pos(), "channel element type contains %s; sends and receives copy the lock — send a pointer", path)
				}
			case *ast.FuncDecl:
				checkLockResults(pass, node.Type)
			case *ast.FuncLit:
				checkLockResults(pass, node.Type)
			}
			return true
		})
	}
}

func checkLockResults(pass *Pass, ft *ast.FuncType) {
	if ft.Results == nil {
		return
	}
	for _, field := range ft.Results.List {
		if path := lockPath(pass.TypeOf(field.Type)); path != "" {
			pass.Reportf(field.Type.Pos(), "returns a value containing %s by value; each return copies the lock — return a pointer", path)
		}
	}
}

// lockTypeNames are the by-value-uncopyable types of sync and
// sync/atomic (vet's copylocks set plus the typed atomics, which
// embed noCopy).
var lockTypeNames = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Pool": true, "Map": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// lockPath reports where (if anywhere) t transitively contains a lock
// by value, as a dotted description like "sync.Mutex", descending
// through struct fields and array elements but not pointers, maps,
// slices or channels (those indirect, so no copy occurs).
func lockPath(t types.Type) string {
	return lockPathSeen(t, make(map[types.Type]bool))
}

func lockPathSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if names, ok := lockTypeNames[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
			}
		}
		return lockPathSeen(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if path := lockPathSeen(u.Field(i).Type(), seen); path != "" {
				return path
			}
		}
	case *types.Array:
		return lockPathSeen(u.Elem(), seen)
	}
	return ""
}
