package analysis

// A miniature analysistest: fixtures live under testdata/src/<name>/ and
// mark expected findings with trailing comments of the form
//
//	// want "regex" ["regex" ...]
//
// Each regex must match exactly one diagnostic on that line, rendered as
// "analyzer: message"; unmatched wants and unexpected diagnostics both
// fail the test. When the finding sits on a line that cannot carry a
// trailing comment (a //klocal: directive is itself one comment to the
// end of the line), "// want-N" on a nearby line expects the diagnostic
// N lines up: `// want-1 "..."` placed directly below the flagged line. Fixtures are real Go packages — they import the
// module's own internal/graph and friends, so the analyzers see the same
// types they see in production code.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantHeadRx recognizes a want comment and its optional line offset;
// wantRx extracts its quoted patterns.
var (
	wantHeadRx = regexp.MustCompile(`^// want([+-][0-9]+)? `)
	wantRx     = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type want struct {
	rx      *regexp.Regexp
	matched bool
}

// runFixture analyzes testdata/src/<name> with the given analyzers and
// checks the diagnostics against the fixture's want comments.
func runFixture(t *testing.T, analyzers []*Analyzer, name string) {
	t.Helper()
	runFixtureOpts(t, analyzers, name, Options{})
}

// runFixtureOpts is runFixture with explicit runner Options, so
// fixtures can expect runner-level findings (stale //klocal:allow
// reports) with the same want machinery.
func runFixtureOpts(t *testing.T, analyzers []*Analyzer, name string, opts Options) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := NewLoader().LoadDir("klocal/internal/analysis/testdata/src/"+name, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	wants := parseWants(t, pkg)
	for _, d := range RunWithOptions(analyzers, []*Package{pkg}, opts) {
		got := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !claimWant(wants[key], got) {
			t.Errorf("unexpected diagnostic at %s: %s", key, got)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matched %q", key, w.rx)
			}
		}
	}
}

// claimWant marks the first unmatched want whose pattern matches got.
func claimWant(ws []*want, got string) bool {
	for _, w := range ws {
		if !w.matched && w.rx.MatchString(got) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants collects the fixture's want comments, keyed by file:line.
func parseWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				head := wantHeadRx.FindStringSubmatch(c.Text)
				if head == nil {
					if strings.HasPrefix(c.Text, "// want") {
						t.Fatalf("%s: malformed want comment %q", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				offset := 0
				if head[1] != "" {
					offset, _ = strconv.Atoi(head[1])
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line+offset)
				matches := wantRx.FindAllStringSubmatch(c.Text[len(head[0]):], -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", key, c.Text)
				}
				for _, m := range matches {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	return wants
}
