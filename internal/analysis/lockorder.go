package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockOrder guards the serve/cluster concurrency stack against
// the two deadlock shapes a review keeps missing:
//
//   - inconsistent acquisition order: it builds a per-package
//     lock-acquisition graph over sync.Mutex/RWMutex (an edge A→B
//     means B was acquired while A was held, including transitively
//     through same-package calls) and reports every edge that sits on
//     a cycle;
//   - blocking while holding: a channel send/receive, a select, a
//     WaitGroup/Cond Wait, a time.Sleep, or network I/O executed under
//     a lock stalls every contender of that lock for as long as the
//     operation blocks — the drain/refcount and membership machinery
//     must do its waiting outside the critical section.
//
// Lock identity is structural, like katomic's: the field object for
// x.mu (so every instance of a struct shares one node — acquisition
// order is a per-type protocol), the variable for locals and package
// vars. The held-set simulation is linear over each function body —
// branch-heavy code can in principle confuse it, in which case the
// finding is suppressed in place with a documented //klocal:allow.
// Goroutine bodies launched with `go` are simulated as their own
// functions (they do not hold the spawner's locks).
var AnalyzerLockOrder = &Analyzer{
	Name: "klockorder",
	Doc:  "no cyclic lock-acquisition orders; no blocking calls while holding a lock",
	Run:  runLockOrder,
}

// lock event kinds.
const (
	evAcquire = iota
	evRelease
	evCall
	evBlock
)

type lockEvent struct {
	pos  token.Pos
	kind int
	lock *types.Var  // evAcquire/evRelease
	fn   *types.Func // evCall: same-package callee
	desc string      // evBlock: what blocks
}

// lockStream is one simulated execution context: a function body or a
// goroutine literal launched inside one.
type lockStream struct {
	name   string
	events []lockEvent
}

type lockEdge struct{ from, to *types.Var }

func runLockOrder(pass *Pass) {
	// Collect one primary stream per declared function (plus separate
	// streams for its `go` literals).
	streams := make(map[*types.Func]*lockStream)
	var all []*lockStream
	var order []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c := &lockCollector{pass: pass}
			primary := &lockStream{name: fd.Name.Name}
			c.collect(primary, fd.Body)
			streams[fn] = primary
			order = append(order, fn)
			all = append(all, primary)
			all = append(all, c.extra...)
		}
	}

	// Transitive per-function acquisition summaries, to a fixed point.
	summaries := make(map[*types.Func]map[*types.Var]bool)
	for fn, st := range streams {
		sum := make(map[*types.Var]bool)
		for _, ev := range st.events {
			if ev.kind == evAcquire {
				sum[ev.lock] = true
			}
		}
		summaries[fn] = sum
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			sum := summaries[fn]
			for _, ev := range streams[fn].events {
				if ev.kind != evCall {
					continue
				}
				for l := range summaries[ev.fn] {
					if !sum[l] {
						sum[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Simulate every stream: blocking-under-lock and self-deadlock are
	// reported directly; ordering edges are accumulated for the cycle
	// pass.
	fieldOf := lockNamer(pass)
	edges := make(map[lockEdge]token.Pos)
	addEdge := func(from, to *types.Var, pos token.Pos) {
		if _, ok := edges[lockEdge{from, to}]; !ok {
			edges[lockEdge{from, to}] = pos
		}
	}
	for _, st := range all {
		var held []*types.Var
		holds := func(l *types.Var) bool {
			for _, h := range held {
				if h == l {
					return true
				}
			}
			return false
		}
		for _, ev := range st.events {
			switch ev.kind {
			case evAcquire:
				if holds(ev.lock) {
					pass.Reportf(ev.pos, "acquires %s while already holding it (possible self-deadlock)", fieldOf(ev.lock))
				} else {
					for _, h := range held {
						addEdge(h, ev.lock, ev.pos)
					}
					held = append(held, ev.lock)
				}
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.lock {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				for l := range summaries[ev.fn] {
					if holds(l) {
						pass.Reportf(ev.pos, "calls %s while holding %s, which it also acquires (possible self-deadlock)", ev.fn.Name(), fieldOf(l))
					} else {
						for _, h := range held {
							addEdge(h, l, ev.pos)
						}
					}
				}
			case evBlock:
				if len(held) > 0 {
					pass.Reportf(ev.pos, "%s while holding %s; a blocked holder stalls every contender — move the wait outside the critical section", ev.desc, fieldOf(held[len(held)-1]))
				}
			}
		}
	}

	// Cycle pass: an edge A→B participates in a deadlock when B can
	// reach A again through the acquisition graph.
	adj := make(map[*types.Var][]*types.Var)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	type finding struct {
		pos token.Pos
		msg string
	}
	var cyc []finding
	for e, pos := range edges {
		if reachesLock(adj, e.to, e.from) {
			cyc = append(cyc, finding{pos, fmt.Sprintf(
				"inconsistent lock order: %s is acquired while holding %s here, but elsewhere %s is acquired while holding %s (deadlock risk)",
				fieldOf(e.to), fieldOf(e.from), fieldOf(e.from), fieldOf(e.to))})
		}
	}
	sort.Slice(cyc, func(i, j int) bool { return cyc[i].pos < cyc[j].pos })
	for _, f := range cyc {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// reachesLock reports whether from can reach to in the acquisition
// graph.
func reachesLock(adj map[*types.Var][]*types.Var, from, to *types.Var) bool {
	seen := make(map[*types.Var]bool)
	stack := []*types.Var{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == to {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, adj[x]...)
	}
	return false
}

// lockCollector linearizes one function body into lock events.
type lockCollector struct {
	pass  *Pass
	extra []*lockStream
}

func (c *lockCollector) collect(st *lockStream, n ast.Node) {
	switch node := n.(type) {
	case nil:
		return
	case *ast.GoStmt:
		// The goroutine does not hold the spawner's locks: its body is
		// its own stream. Arguments are evaluated synchronously.
		for _, arg := range node.Call.Args {
			c.collect(st, arg)
		}
		if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
			sub := &lockStream{name: st.name + ".go"}
			c.collect(sub, lit.Body)
			c.extra = append(c.extra, sub)
		}
		return
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end: drop
		// the release event. Other deferred work runs at exit, outside
		// the linear window — skip it entirely.
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range node.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			st.events = append(st.events, lockEvent{pos: node.Pos(), kind: evBlock, desc: "select with no default blocks"})
		}
		// Case bodies run after the select resolves; the comm clauses
		// themselves are part of the select's blocking point.
		for _, cl := range node.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				for _, b := range cc.Body {
					c.collect(st, b)
				}
			}
		}
		return
	case *ast.SendStmt:
		c.collect(st, node.Chan)
		c.collect(st, node.Value)
		st.events = append(st.events, lockEvent{pos: node.Pos(), kind: evBlock, desc: "channel send may block"})
		return
	case *ast.UnaryExpr:
		if node.Op == token.ARROW {
			c.collect(st, node.X)
			st.events = append(st.events, lockEvent{pos: node.Pos(), kind: evBlock, desc: "channel receive blocks"})
			return
		}
	case *ast.RangeStmt:
		c.collect(st, node.X)
		if t := c.pass.TypeOf(node.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				st.events = append(st.events, lockEvent{pos: node.Pos(), kind: evBlock, desc: "ranging over a channel blocks"})
			}
		}
		c.collect(st, node.Body)
		return
	case *ast.CallExpr:
		for _, arg := range node.Args {
			c.collect(st, arg)
		}
		if lit, ok := node.Fun.(*ast.FuncLit); ok {
			// An immediately-invoked literal runs here, under the
			// current held set.
			c.collect(st, lit.Body)
		} else {
			c.collect(st, node.Fun)
		}
		c.callEvent(st, node)
		return
	case *ast.FuncLit:
		// A literal that is defined but not invoked here (stored in a
		// variable, passed as a callback) executes under a held set we
		// cannot see; simulate it as its own stream so its internal
		// locking is still checked without poisoning this one.
		sub := &lockStream{name: st.name + ".func"}
		c.collect(sub, node.Body)
		c.extra = append(c.extra, sub)
		return
	}
	// Generic descent in source order.
	var children []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m != nil {
			children = append(children, m)
		}
		return false
	})
	for _, ch := range children {
		c.collect(st, ch)
	}
}

// callEvent classifies one call: mutex acquire/release, same-package
// callee, or a known blocking operation.
func (c *lockCollector) callEvent(st *lockStream, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if fn, ok := c.pass.Info.Uses[id].(*types.Func); ok && fn.Pkg() == c.pass.Pkg {
				st.events = append(st.events, lockEvent{pos: call.Pos(), kind: evCall, fn: fn})
			}
		}
		return
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if lv, acquire, ok := c.mutexOp(sel, fn); ok {
		kind := evRelease
		if acquire {
			kind = evAcquire
		}
		if lv != nil {
			st.events = append(st.events, lockEvent{pos: call.Pos(), kind: kind, lock: lv})
		}
		return
	}
	if desc, ok := blockingCallee(fn); ok {
		st.events = append(st.events, lockEvent{pos: call.Pos(), kind: evBlock, desc: desc})
		return
	}
	if fn.Pkg() == c.pass.Pkg {
		st.events = append(st.events, lockEvent{pos: call.Pos(), kind: evCall, fn: fn})
	}
}

// mutexOp recognizes sync.Mutex/RWMutex method calls and resolves the
// lock's identity.
func (c *lockCollector) mutexOp(sel *ast.SelectorExpr, fn *types.Func) (*types.Var, bool, bool) {
	if fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false, false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil, false, false
	}
	var acquire bool
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false, false
	}
	return lockIdent(c.pass, sel.X), acquire, true
}

// lockIdent resolves the receiver expression of a mutex call to its
// identity: the field object for x.mu (shared across instances — the
// ordering protocol is per type), the variable for locals and package
// vars, nil when unresolvable.
func lockIdent(pass *Pass, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return lockIdent(pass, x.X)
	case *ast.UnaryExpr:
		return lockIdent(pass, x.X)
	case *ast.SelectorExpr:
		if selection := pass.Info.Selections[x]; selection != nil && selection.Kind() == types.FieldVal {
			return selection.Obj().(*types.Var)
		}
		if v, ok := pass.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
		return nil
	case *ast.Ident:
		v, _ := pass.Info.Uses[x].(*types.Var)
		return v
	case *ast.IndexExpr:
		// Shard patterns (shards[i].mu) resolve through the element; an
		// index on its own (locks[i]) keys the whole array.
		return lockIdent(pass, x.X)
	default:
		return nil
	}
}

// blockingCallee recognizes the operations that park the calling
// goroutine: WaitGroup waits, sleeps, and network I/O. Cond.Wait is
// deliberately not here — it releases its mutex while parked, so it
// does not stall contenders the way a held lock does.
func blockingCallee(fn *types.Func) (string, bool) {
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && fn.Name() == "Wait":
		recv := fn.Type().(*types.Signature).Recv()
		if recv != nil && recvTypeName(recv) == "WaitGroup" {
			return "sync.WaitGroup.Wait blocks", true
		}
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep blocks", true
	case path == "net" || strings.HasPrefix(path, "net/"):
		return fmt.Sprintf("network I/O (%s.%s) blocks", fn.Pkg().Name(), fn.Name()), true
	}
	return "", false
}

func recvTypeName(recv *types.Var) string {
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if n, ok := rt.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "?"
}

// lockNamer renders lock identities as Type.field where the field's
// owner can be found in the package scope, else the bare name.
func lockNamer(pass *Pass) func(*types.Var) string {
	owner := make(map[*types.Var]string)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				owner[st.Field(i)] = name + "." + st.Field(i).Name()
			}
		}
	}
	return func(v *types.Var) string {
		if v == nil {
			return "?"
		}
		if n, ok := owner[v]; ok {
			return n
		}
		return v.Name()
	}
}
