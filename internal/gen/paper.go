package gen

import (
	"fmt"

	"klocal/internal/graph"
)

// Instance is a routing problem: a graph plus an origin-destination pair.
type Instance struct {
	G *graph.Graph
	S graph.Vertex
	T graph.Vertex
}

// Theorem1Family is the counterexample family of Theorem 1 (Figure 3),
// defeating every origin-aware, predecessor-aware, k-local routing
// algorithm for k < ⌊(n+1)/4⌋.
type Theorem1Family struct {
	// Variants holds G1, G2, G3. In variant i, the destination t hangs off
	// the far end of arm i+1 (arms are numbered P1..P4, s hangs off P1),
	// and the far ends of the remaining two arms of {P2,P3,P4} are joined,
	// so a message that enters the wrong arm loops back to the hub.
	Variants [3]Instance
	Hub      graph.Vertex
	// ArmRoots[i] is the hub neighbour rooting arm P(i+1); identical in
	// all variants, as is the whole G_r(Hub).
	ArmRoots [4]graph.Vertex
	// R is the arm length: k-local routing is defeated for all k ≤ R.
	R int
}

// NewTheorem1Family builds the family for n ≥ 11 total vertices
// (r = ⌊(n−3)/4⌋ ≥ 2 keeps s and t outside the hub's r-neighbourhood and
// the far-end joins invisible from the hub).
//
// Labels (consistent across variants, as the proof requires): hub = 0;
// arm a ∈ {0..3} position i ∈ {0..r−1} = 1 + a·r + i (position 0 adjacent
// to the hub); extra padding nodes between s and P1's far end =
// 4r+1 .. 4r+e; s = 4r+e+1; t = 4r+e+2 = n−1.
func NewTheorem1Family(n int) (*Theorem1Family, error) {
	r := (n - 3) / 4
	if r < 2 {
		return nil, fmt.Errorf("gen: Theorem 1 family needs n >= 11, got %d", n)
	}
	extra := n - (4*r + 3)
	fam := &Theorem1Family{Hub: 0, R: r}
	arm := func(a, i int) graph.Vertex { return graph.Vertex(1 + a*r + i) }
	for a := 0; a < 4; a++ {
		fam.ArmRoots[a] = arm(a, 0)
	}
	s := graph.Vertex(4*r + extra + 1)
	t := graph.Vertex(4*r + extra + 2)

	for variant := 0; variant < 3; variant++ {
		b := graph.NewBuilder()
		for a := 0; a < 4; a++ {
			prev := graph.Vertex(0)
			for i := 0; i < r; i++ {
				b.AddEdge(prev, arm(a, i))
				prev = arm(a, i)
			}
		}
		// s chain: P1 far end — padding — s.
		prev := arm(0, r-1)
		for x := 0; x < extra; x++ {
			pad := graph.Vertex(4*r + 1 + x)
			b.AddEdge(prev, pad)
			prev = pad
		}
		b.AddEdge(prev, s)
		// t hangs off arm variant+1; the other two arms of {P2,P3,P4} are
		// joined at their far ends.
		tArm := variant + 1
		b.AddEdge(arm(tArm, r-1), t)
		var joined []int
		for a := 1; a < 4; a++ {
			if a != tArm {
				joined = append(joined, a)
			}
		}
		b.AddEdge(arm(joined[0], r-1), arm(joined[1], r-1))
		fam.Variants[variant] = Instance{G: b.Build(), S: s, T: t}
	}
	return fam, nil
}

// Theorem2Family is the counterexample family of Theorem 2 (Figure 4),
// defeating every origin-oblivious, predecessor-aware, k-local routing
// algorithm for k < ⌊(n+1)/3⌋. The hub is the origin s itself.
type Theorem2Family struct {
	// Variants holds G1, G2, G3: in variant i, t hangs off arm i+1's far
	// end (through the padding nodes) and the other two arms' far ends are
	// joined.
	Variants [3]Instance
	Hub      graph.Vertex // = s in every variant
	ArmRoots [3]graph.Vertex
	R        int
}

// NewTheorem2Family builds the family for n ≥ 8 (r = ⌊(n−2)/3⌋ ≥ 2).
// Labels: s = 0; arm a position i = 1 + a·r + i; padding between the
// t-arm's far end and t = 3r+1 .. 3r+e; t = n−1.
func NewTheorem2Family(n int) (*Theorem2Family, error) {
	r := (n - 2) / 3
	if r < 2 {
		return nil, fmt.Errorf("gen: Theorem 2 family needs n >= 8, got %d", n)
	}
	extra := n - (3*r + 2)
	fam := &Theorem2Family{Hub: 0, R: r}
	arm := func(a, i int) graph.Vertex { return graph.Vertex(1 + a*r + i) }
	for a := 0; a < 3; a++ {
		fam.ArmRoots[a] = arm(a, 0)
	}
	t := graph.Vertex(n - 1)

	for variant := 0; variant < 3; variant++ {
		b := graph.NewBuilder()
		for a := 0; a < 3; a++ {
			prev := graph.Vertex(0)
			for i := 0; i < r; i++ {
				b.AddEdge(prev, arm(a, i))
				prev = arm(a, i)
			}
		}
		prev := arm(variant, r-1)
		for x := 0; x < extra; x++ {
			pad := graph.Vertex(3*r + 1 + x)
			b.AddEdge(prev, pad)
			prev = pad
		}
		b.AddEdge(prev, t)
		var joined []int
		for a := 0; a < 3; a++ {
			if a != variant {
				joined = append(joined, a)
			}
		}
		b.AddEdge(arm(joined[0], r-1), arm(joined[1], r-1))
		fam.Variants[variant] = Instance{G: b.Build(), S: 0, T: t}
	}
	return fam, nil
}

// Theorem3Family is the two-path family of Theorem 3 (Figure 5),
// defeating every predecessor-oblivious k-local routing algorithm for
// k < ⌊n/2⌋. Both graphs are paths of n vertices with s placed so that
// G_k(s) is an identical path of 2k+1 consistently-labelled vertices; t is
// at the end of the right arm in G1 and of the left arm in G2.
type Theorem3Family struct {
	Variants [2]Instance
	R        int
}

// NewTheorem3Family builds the family for n ≥ 4 (r = ⌊n/2⌋−1 ≥ 1).
// Labels encode (side, distance from s): s = 0, the node at distance d on
// the short side is 2d−1, at distance d on the long side 2d; t = n−1...
// more precisely the far-end node of the long side is t and carries the
// single label that differs between the variants only beyond distance r.
func NewTheorem3Family(n int) (*Theorem3Family, error) {
	r := n/2 - 1
	if r < 1 {
		return nil, fmt.Errorf("gen: Theorem 3 family needs n >= 4, got %d", n)
	}
	long := n - 1 - r // length of the arm holding t; long >= r+1
	fam := &Theorem3Family{R: r}

	build := func(tOnRight bool) Instance {
		b := graph.NewBuilder()
		leftLen, rightLen := r, long
		if !tOnRight {
			leftLen, rightLen = long, r
		}
		// Side-distance labels keep G_k(s) identical across the variants
		// for every k ≤ r: left distance d ↦ 2d−1, right distance d ↦ 2d.
		// The far end of the long arm is relabelled to t = 2n (at distance
		// long > r, outside every admissible k-neighbourhood; the label is
		// outside the regular range so it cannot collide).
		t := graph.Vertex(2 * n)
		label := func(left bool, d int) graph.Vertex {
			if left {
				if !tOnRight && d == leftLen {
					return t
				}
				return graph.Vertex(2*d - 1)
			}
			if tOnRight && d == rightLen {
				return t
			}
			return graph.Vertex(2 * d)
		}
		prev := graph.Vertex(0)
		for d := 1; d <= leftLen; d++ {
			b.AddEdge(prev, label(true, d))
			prev = label(true, d)
		}
		prev = 0
		for d := 1; d <= rightLen; d++ {
			b.AddEdge(prev, label(false, d))
			prev = label(false, d)
		}
		return Instance{G: b.Build(), S: 0, T: t}
	}
	fam.Variants[0] = build(true)
	fam.Variants[1] = build(false)
	return fam, nil
}

// Fig7 is the Figure 7 construction: a cycle longer than 2k with the
// destination t at the end of a pendant path longer than k, attached at
// cycle vertex c. Labels are arranged so the naive right-hand rule
// (circular permutation of all neighbours by rank at every node, no
// preprocessing) circulates forever without any visited node seeing t.
type Fig7 struct {
	Instance

	CycleLen int
	TailLen  int
	Attach   graph.Vertex
}

// NewFig7 builds the construction. It requires cycleLen ≥ 4 and
// tailLen ≥ 1; for the right-hand rule to fail at locality k, pick
// cycleLen > 2k and tailLen > k. Labels: cycle 0..cycleLen−1 (s = 0, the
// pendant attached at ⌊cycleLen/2⌋), tail cycleLen..cycleLen+tailLen−1
// with t last.
func NewFig7(cycleLen, tailLen int) (*Fig7, error) {
	if cycleLen < 4 || tailLen < 1 {
		return nil, fmt.Errorf("gen: Fig7 needs cycleLen >= 4 and tailLen >= 1")
	}
	b := graph.NewBuilder()
	for i := 0; i < cycleLen; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%cycleLen))
	}
	attach := graph.Vertex(cycleLen / 2)
	prev := attach
	for i := 0; i < tailLen; i++ {
		v := graph.Vertex(cycleLen + i)
		b.AddEdge(prev, v)
		prev = v
	}
	return &Fig7{
		Instance: Instance{G: b.Build(), S: 0, T: prev},
		CycleLen: cycleLen,
		TailLen:  tailLen,
		Attach:   attach,
	}, nil
}

// Fig13 is the Figure 13 construction showing Algorithm 1's dilation
// approaches 7: a cycle of n−k−1 vertices containing s, with a pendant
// path of k+1 edges to t attached at vertex c two hops from s. Labels
// steer Algorithm 1's rank-based choices so that the route has length
// exactly 2n−k−3 while dist(s,t) = k+3.
type Fig13 struct {
	Instance

	K        int
	CycleLen int
	C        graph.Vertex // pendant attachment, two hops from s
	D        graph.Vertex // first pendant vertex; Case 1 applies from D on
}

// NewFig13 builds the construction for locality k on n vertices. It
// requires n ≥ 3k+2 (so the cycle is longer than 2k and stays fully
// consistent) and k ≥ 2.
//
// Cycle labels clockwise: s=0, g=1, c=2, w1..w_{L−3} = 3..L−1; pendant
// d,m1,...,t = L..L+k. The rank conditions this encodes:
//   - at s, the lower-rank cycle neighbour is g (label 1 < L−1), so the
//     message starts clockwise through c;
//   - at c the circular order of {g=1, w1=3, d=L} forwards g→w1 (first,
//     clockwise pass skips the pendant) and w1→d (second,
//     counter-clockwise pass enters it).
func NewFig13(n, k int) (*Fig13, error) {
	if k < 2 || n < 3*k+2 {
		return nil, fmt.Errorf("gen: Fig13 needs k >= 2 and n >= 3k+2, got n=%d k=%d", n, k)
	}
	cycleLen := n - k - 1
	b := graph.NewBuilder()
	// Cycle: 0(s) - 1(g) - 2(c) - 3 - ... - (L-1) - back to 0.
	for i := 0; i < cycleLen; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%cycleLen))
	}
	// Pendant path c → d → m1 → ... → t with k+1 edges total from c.
	prev := graph.Vertex(2)
	for i := 0; i <= k; i++ {
		v := graph.Vertex(cycleLen + i)
		b.AddEdge(prev, v)
		prev = v
	}
	return &Fig13{
		Instance: Instance{G: b.Build(), S: 0, T: prev},
		K:        k,
		CycleLen: cycleLen,
		C:        2,
		D:        graph.Vertex(cycleLen),
	}, nil
}

// ExpectedRouteLen is the route length the paper derives for Algorithm 1
// on this instance: 2n − k − 3.
func (f *Fig13) ExpectedRouteLen() int { return 2*f.G.N() - f.K - 3 }

// ShortestLen is dist(s,t) = k + 3.
func (f *Fig13) ShortestLen() int { return f.K + 3 }

// Fig17 is the Figure 17 construction showing Algorithm 1B's dilation
// approaches 6. A big (consistent) cycle carries vertices c, e and u; a
// pendant path of q vertices ending at s hangs off e; a path of j+k
// vertices to t hangs off c with d at distance j from c; and the dormant
// minimum-rank edge {s,d} closes a local cycle of length n−3k+1. The
// route of Algorithm 1B has length n+2k−6 while dist(s,t) = k+1 via the
// dormant edge.
type Fig17 struct {
	Instance

	K int
	Q int // pendant path length (edges) from e to s
	J int // distance from c to d along the t-path

	// DeltaStar is the distance from u at which the U2e pre-emption first
	// becomes provable under this repository's dormancy rule (every short
	// cycle visible in G_k(x) is classified at x, a superset of the
	// paper's cycles-through-x rule; see DESIGN.md). The witness cycle
	// for the dormant edge {s,d} becomes fully visible already at
	// distance δ* = k−4−⌊(n−3k)/2⌋ past u on the c-side arc, so
	// Algorithm 1B reverses 2·δ* edges earlier than the paper's
	// narrative: its exact route is n+2k−6−2·δ*. With δ* = 0 the paper's
	// figure is reproduced verbatim.
	DeltaStar int

	C, D, E, U graph.Vertex
}

// NewFig17 builds the construction for locality k on n vertices. The
// geometry is determined by Lemma 16's arithmetic. Cycle, clockwise:
// e → (B arc, B = n−3k−j−q edges) → c → (D arc, D = 2k−3 edges) → u →
// (3 edges) → e. The pendant path e→…→s has q edges; the t-path
// c→…→d→…→t has j+k edges with d at distance j from c; and the dormant
// minimum-rank edge {s,d} closes the small cycle of length
// 1+j+B+q = n−3k+1 ≤ 2k.
//
// The route of Algorithm 1B is s→e (q), e→c→u clockwise (B+D), the U2e
// pre-emptive reversal at u, u→c (D) and c→t (j+k): total n+2k−6. The
// 3-edge u→e arc (Lemma 16's path I) is never traversed; plain
// Algorithm 1 traverses it twice in each direction via the US2 bounce at
// e, giving route n+2k (exactly the 6-edge gap Lemma 14 predicts).
//
// Feasibility: k ≥ 7 and 3k+7 ≤ n ≤ 4k; q = 3 and j = 2 internally.
// Labels: s = 0 and d = 1 make {s,d} the global minimum-rank edge; the
// scheme below further encodes
//   - at e, the B-side active neighbour has lower rank than the 3-arc
//     side one (US2 sends the message toward c first, and later bounces
//     an arrival from the 3-arc side — the bounce U2e anticipates at u);
//   - at c, the circular rank order is (B-side → D-side → t-path).
func NewFig17(n, k int) (*Fig17, error) {
	if k < 7 {
		return nil, fmt.Errorf("gen: Fig17 needs k >= 7, got %d", k)
	}
	if n < 3*k+7 || n > 4*k {
		return nil, fmt.Errorf("gen: Fig17 needs 3k+7 <= n <= 4k, got n=%d k=%d", n, k)
	}
	const q, j = 3, 2
	bArc := n - 3*k - j - q
	dArc := 2*k - 3
	deltaStar := k - 4 - (n-3*k)/2
	if deltaStar < 0 {
		deltaStar = 0
	}
	if deltaStar >= dArc {
		return nil, fmt.Errorf("gen: Fig17 infeasible: deltaStar=%d >= D=%d", deltaStar, dArc)
	}

	next := graph.Vertex(2)
	alloc := func() graph.Vertex { v := next; next++; return v }

	// Allocation order encodes the rank constraints: B-arc internals
	// first (so e's B-side neighbour has the smallest cycle label and c's
	// B-side neighbour precedes its D-side one), then e, the 3-arc
	// internals, u, the D-arc internals, c, the t-path, and finally the
	// pendant.
	bInternal := make([]graph.Vertex, bArc-1)
	for i := range bInternal {
		bInternal[i] = alloc()
	}
	e := alloc()
	threeInternal := []graph.Vertex{alloc(), alloc()}
	u := alloc()
	dInternal := make([]graph.Vertex, dArc-1)
	for i := range dInternal {
		dInternal[i] = alloc()
	}
	c := alloc()

	b := graph.NewBuilder()
	cycle := []graph.Vertex{e}
	cycle = append(cycle, bInternal...)
	cycle = append(cycle, c)
	cycle = append(cycle, dInternal...)
	cycle = append(cycle, u)
	cycle = append(cycle, threeInternal...)
	for i := range cycle {
		b.AddEdge(cycle[i], cycle[(i+1)%len(cycle)])
	}
	// t-path c → m1 → d → m3 → ... → t (d at distance j=2 from c).
	prev := c
	var d graph.Vertex
	for i := 1; i <= j+k; i++ {
		var v graph.Vertex
		if i == j {
			v = 1
			d = v
		} else {
			v = alloc()
		}
		b.AddEdge(prev, v)
		prev = v
	}
	t := prev
	// Pendant path e → p1 → p2 → s (q=3 edges).
	prev = e
	for i := 0; i < q-1; i++ {
		p := alloc()
		b.AddEdge(prev, p)
		prev = p
	}
	b.AddEdge(prev, 0) // s
	// The dormant edge.
	b.AddEdge(0, d)

	g := b.Build()
	if g.N() != n {
		return nil, fmt.Errorf("gen: Fig17 internal error: n=%d want %d", g.N(), n)
	}
	return &Fig17{
		Instance:  Instance{G: g, S: 0, T: t},
		K:         k,
		Q:         q,
		J:         j,
		DeltaStar: deltaStar,
		C:         c,
		D:         d,
		E:         e,
		U:         u,
	}, nil
}

// Algorithm1RouteLen is the route length plain Algorithm 1 takes on this
// instance: n+2k (it additionally traverses the 3-edge u→e arc twice in
// each direction).
func (f *Fig17) Algorithm1RouteLen() int { return f.G.N() + 2*f.K }

// ExpectedRouteLen is this implementation's exact Algorithm 1B route
// length: n+2k−6−2·δ* (see DeltaStar). It equals PaperRouteLen when
// δ* = 0.
func (f *Fig17) ExpectedRouteLen() int { return f.G.N() + 2*f.K - 6 - 2*f.DeltaStar }

// PaperRouteLen is the route length the paper derives for its Figure 17
// instance: n+2k−6.
func (f *Fig17) PaperRouteLen() int { return f.G.N() + 2*f.K - 6 }

// ShortestLen is dist(s,t) = k+1 via the dormant edge {s,d}.
func (f *Fig17) ShortestLen() int { return f.K + 1 }
