package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"klocal/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 || !g.IsTree() {
		t.Errorf("Path(5) = %v", g)
	}
	if g.Dist(0, 4) != 4 {
		t.Errorf("Path(5) endpoints at distance %d", g.Dist(0, 4))
	}
	single := Path(1)
	if single.N() != 1 || single.M() != 0 {
		t.Errorf("Path(1) = %v", single)
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.N() != 6 || g.M() != 6 || g.Girth() != 6 {
		t.Errorf("Cycle(6) = %v girth=%d", g, g.Girth())
	}
	for _, v := range g.Vertices() {
		if g.Deg(v) != 2 {
			t.Errorf("Cycle vertex %d has degree %d", v, g.Deg(v))
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(5)
	if g.Deg(0) != 4 || g.M() != 4 {
		t.Errorf("Star(5) = %v", g)
	}
}

func TestSpider(t *testing.T) {
	g := Spider(4, 3)
	if g.N() != 13 || g.M() != 12 || !g.IsTree() {
		t.Errorf("Spider(4,3) = %v", g)
	}
	if g.Deg(0) != 4 {
		t.Errorf("hub degree = %d, want 4", g.Deg(0))
	}
	// Far end of arm 0 is vertex 3 at distance 3.
	if g.Dist(0, 3) != 3 {
		t.Errorf("arm end at distance %d, want 3", g.Dist(0, 3))
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 || g.Girth() != 3 {
		t.Errorf("Complete(5) = %v", g)
	}
	if Complete(1).N() != 1 {
		t.Error("Complete(1) should be a single vertex")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+4*2 {
		t.Errorf("Grid(3,4) = n=%d m=%d", g.N(), g.M())
	}
	if g.Dist(0, 11) != 5 {
		t.Errorf("grid corner distance = %d, want 5", g.Dist(0, 11))
	}
	if Grid(1, 1).N() != 1 {
		t.Error("Grid(1,1) should be a single vertex")
	}
}

func TestTheta(t *testing.T) {
	g := Theta(1, 2, 3)
	if g.N() != 2+1+2+3 || g.M() != 2+3+4 {
		t.Errorf("Theta(1,2,3) = %v", g)
	}
	if g.Deg(0) != 3 || g.Deg(1) != 3 {
		t.Error("theta hubs must have degree 3")
	}
	// Shortest cycle uses the two shortest branches: (1+1)+(2+1) = 5.
	if got := g.Girth(); got != 5 {
		t.Errorf("Theta girth = %d, want 5", got)
	}
	direct := Theta(0, 2, 2)
	if !direct.HasEdge(0, 1) || direct.Girth() != 4 {
		t.Errorf("Theta(0,2,2) = %v girth=%d", direct, direct.Girth())
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 3)
	if g.N() != 8 || g.M() != 8 || g.Girth() != 5 {
		t.Errorf("Lollipop(5,3) = %v", g)
	}
	if g.Deg(0) != 3 {
		t.Errorf("attachment degree = %d, want 3", g.Deg(0))
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 4+8 || !g.IsTree() {
		t.Errorf("Caterpillar(4,2) = %v", g)
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 40} {
		g := RandomTree(rng, n)
		if g.N() != n || !g.IsTree() {
			t.Errorf("RandomTree(%d): n=%d m=%d tree=%v", n, g.N(), g.M(), g.IsTree())
		}
	}
}

func TestRandomTreeCoversShapes(t *testing.T) {
	// Over many draws on 4 vertices both the path and the star must occur:
	// a weak uniformity smoke check.
	rng := rand.New(rand.NewSource(2))
	var sawPath, sawStar bool
	for i := 0; i < 200; i++ {
		g := RandomTree(rng, 4)
		maxDeg := 0
		for _, v := range g.Vertices() {
			if g.Deg(v) > maxDeg {
				maxDeg = g.Deg(v)
			}
		}
		switch maxDeg {
		case 2:
			sawPath = true
		case 3:
			sawStar = true
		}
	}
	if !sawPath || !sawStar {
		t.Errorf("200 random trees on 4 vertices missed a shape: path=%v star=%v", sawPath, sawStar)
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 5, 20} {
		g := RandomConnected(rng, n, 0.2)
		if g.N() != n || !g.Connected() {
			t.Errorf("RandomConnected(%d) disconnected or wrong size: %v", n, g)
		}
		if g.M() < n-1 {
			t.Errorf("RandomConnected(%d) has %d < n-1 edges", n, g.M())
		}
	}
}

func TestRandomLabelPermutationIsBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomConnected(rng, 12, 0.3)
	perm := RandomLabelPermutation(rng, g)
	seen := make(map[graph.Vertex]bool)
	for _, v := range g.Vertices() {
		nv, ok := perm[v]
		if !ok {
			t.Fatalf("permutation missing vertex %d", v)
		}
		if seen[nv] {
			t.Fatalf("permutation maps two vertices to %d", nv)
		}
		if !g.HasVertex(nv) {
			t.Fatalf("permutation leaves the label set: %d", nv)
		}
		seen[nv] = true
	}
}

func TestConnectedGraphsCountsMatchOEIS(t *testing.T) {
	// Number of connected labelled graphs on n nodes (OEIS A001187):
	// 1, 1, 4, 38, 728 for n = 1..5.
	want := map[int]int{1: 1, 2: 1, 3: 4, 4: 38, 5: 728}
	for n, w := range want {
		count := 0
		ConnectedGraphs(n, func(*graph.Graph) bool {
			count++
			return true
		})
		if count != w {
			t.Errorf("ConnectedGraphs(%d) enumerated %d graphs, want %d", n, count, w)
		}
	}
}

func TestConnectedGraphsEarlyStop(t *testing.T) {
	count := 0
	ConnectedGraphs(4, func(*graph.Graph) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("enumeration did not stop early: %d", count)
	}
}

func TestTheorem1FamilyShape(t *testing.T) {
	for _, n := range []int{11, 12, 13, 14, 23} { // covers every n mod 4
		fam, err := NewTheorem1Family(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if fam.R != (n-3)/4 {
			t.Errorf("n=%d: R=%d want %d", n, fam.R, (n-3)/4)
		}
		for i, inst := range fam.Variants {
			if inst.G.N() != n {
				t.Errorf("n=%d variant %d: %d vertices", n, i, inst.G.N())
			}
			if !inst.G.Connected() {
				t.Errorf("n=%d variant %d: disconnected", n, i)
			}
			if inst.G.Deg(fam.Hub) != 4 {
				t.Errorf("n=%d variant %d: hub degree %d, want 4", n, i, inst.G.Deg(fam.Hub))
			}
			if inst.G.Deg(inst.T) != 1 || inst.G.Deg(inst.S) != 1 {
				t.Errorf("n=%d variant %d: s and t must be leaves", n, i)
			}
			// s and t are outside the hub's R-neighbourhood.
			if d := inst.G.Dist(fam.Hub, inst.S); d <= fam.R {
				t.Errorf("n=%d variant %d: dist(hub,s)=%d <= r=%d", n, i, d, fam.R)
			}
			if d := inst.G.Dist(fam.Hub, inst.T); d != fam.R+1 {
				t.Errorf("n=%d variant %d: dist(hub,t)=%d, want r+1=%d", n, i, d, fam.R+1)
			}
		}
	}
}

func TestTheorem1FamilyIdenticalHubNeighbourhood(t *testing.T) {
	fam, err := NewTheorem1Family(19)
	if err != nil {
		t.Fatal(err)
	}
	// The r-neighbourhood of the hub must be the same labelled subgraph in
	// all three variants (the proof's key property).
	b0 := pathsBall(fam.Variants[0].G, fam.Hub, fam.R)
	for i := 1; i < 3; i++ {
		if !b0.Equal(pathsBall(fam.Variants[i].G, fam.Hub, fam.R)) {
			t.Errorf("hub %d-neighbourhood differs between variants 0 and %d", fam.R, i)
		}
	}
	// And it is a spider with 4 arms of length r.
	if b0.N() != 4*fam.R+1 || !b0.IsTree() {
		t.Errorf("hub ball is not the 4-arm spider: %v", b0)
	}
}

func TestTheorem1FamilyTooSmall(t *testing.T) {
	if _, err := NewTheorem1Family(10); err == nil {
		t.Error("expected error for n=10")
	}
}

func TestTheorem2FamilyShape(t *testing.T) {
	for _, n := range []int{8, 9, 10, 20} { // covers every n mod 3
		fam, err := NewTheorem2Family(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, inst := range fam.Variants {
			if inst.G.N() != n || !inst.G.Connected() {
				t.Errorf("n=%d variant %d: bad graph %v", n, i, inst.G)
			}
			if inst.S != fam.Hub {
				t.Errorf("variant %d: the hub must be the origin", i)
			}
			if inst.G.Deg(fam.Hub) != 3 {
				t.Errorf("n=%d variant %d: hub degree %d, want 3", n, i, inst.G.Deg(fam.Hub))
			}
			if d := inst.G.Dist(inst.S, inst.T); d <= fam.R {
				t.Errorf("n=%d variant %d: dist(s,t)=%d <= r=%d", n, i, d, fam.R)
			}
		}
	}
}

func TestTheorem2FamilyIdenticalHubNeighbourhood(t *testing.T) {
	fam, err := NewTheorem2Family(17)
	if err != nil {
		t.Fatal(err)
	}
	b0 := pathsBall(fam.Variants[0].G, fam.Hub, fam.R)
	for i := 1; i < 3; i++ {
		if !b0.Equal(pathsBall(fam.Variants[i].G, fam.Hub, fam.R)) {
			t.Errorf("hub %d-neighbourhood differs between variants 0 and %d", fam.R, i)
		}
	}
	if b0.N() != 3*fam.R+1 || !b0.IsTree() {
		t.Errorf("hub ball is not the 3-arm spider: %v", b0)
	}
}

func TestTheorem3FamilyShape(t *testing.T) {
	for _, n := range []int{4, 5, 10, 11, 21} {
		fam, err := NewTheorem3Family(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, inst := range fam.Variants {
			if inst.G.N() != n || !inst.G.Connected() {
				t.Errorf("n=%d variant %d: bad graph", n, i)
			}
			if inst.G.M() != n-1 {
				t.Errorf("n=%d variant %d: not a path (m=%d)", n, i, inst.G.M())
			}
			for _, v := range inst.G.Vertices() {
				if inst.G.Deg(v) > 2 {
					t.Errorf("n=%d variant %d: vertex %d degree %d in a path", n, i, v, inst.G.Deg(v))
				}
			}
			if inst.G.Deg(inst.T) != 1 {
				t.Errorf("n=%d variant %d: t must be a path end", n, i)
			}
			if d := inst.G.Dist(inst.S, inst.T); d <= fam.R {
				t.Errorf("n=%d variant %d: dist(s,t)=%d <= r=%d", n, i, d, fam.R)
			}
		}
	}
}

func TestTheorem3FamilyIdenticalNeighbourhood(t *testing.T) {
	for _, n := range []int{8, 9, 15} {
		fam, err := NewTheorem3Family(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		s := fam.Variants[0].S
		for k := 1; k <= fam.R; k++ {
			if !pathsBall(fam.Variants[0].G, s, k).Equal(pathsBall(fam.Variants[1].G, s, k)) {
				t.Errorf("n=%d k=%d: G_k(s) differs between the variants", n, k)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	f, err := NewFig7(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.G.N() != 17 || !f.G.Connected() {
		t.Errorf("Fig7 graph = %v", f.G)
	}
	if f.G.Deg(f.Attach) != 3 {
		t.Errorf("attach degree = %d", f.G.Deg(f.Attach))
	}
	if f.G.Girth() != 12 {
		t.Errorf("girth = %d, want 12", f.G.Girth())
	}
	if d := f.G.Dist(f.Attach, f.T); d != 5 {
		t.Errorf("dist(attach,t) = %d, want 5", d)
	}
}

func TestFig13Shape(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{16, 4}, {20, 5}, {40, 10}, {41, 10}} {
		f, err := NewFig13(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if f.G.N() != tc.n {
			t.Errorf("n=%d k=%d: got %d vertices", tc.n, tc.k, f.G.N())
		}
		if d := f.G.Dist(f.S, f.T); d != tc.k+3 {
			t.Errorf("n=%d k=%d: dist(s,t)=%d, want k+3=%d", tc.n, tc.k, d, tc.k+3)
		}
		if f.G.Girth() != f.CycleLen {
			t.Errorf("n=%d k=%d: girth=%d, want cycle length %d", tc.n, tc.k, f.G.Girth(), f.CycleLen)
		}
		if f.CycleLen <= 2*tc.k {
			t.Errorf("n=%d k=%d: cycle %d not longer than 2k", tc.n, tc.k, f.CycleLen)
		}
		if d := f.G.Dist(f.D, f.T); d != tc.k {
			t.Errorf("n=%d k=%d: dist(d,t)=%d, want k", tc.n, tc.k, d)
		}
		if d := f.G.Dist(f.S, f.C); d != 2 {
			t.Errorf("n=%d k=%d: dist(s,c)=%d, want 2", tc.n, tc.k, d)
		}
	}
}

func TestFig13Invalid(t *testing.T) {
	if _, err := NewFig13(10, 4); err == nil {
		t.Error("expected error: n < 3k+2")
	}
	if _, err := NewFig13(16, 1); err == nil {
		t.Error("expected error: k < 2")
	}
}

func TestFig17Shape(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{32, 8}, {39, 10}, {40, 10}, {80, 20}} {
		f, err := NewFig17(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		g := f.G
		if g.N() != tc.n || !g.Connected() {
			t.Fatalf("n=%d k=%d: got %d vertices, connected=%v", tc.n, tc.k, g.N(), g.Connected())
		}
		if d := g.Dist(f.S, f.T); d != tc.k+1 {
			t.Errorf("n=%d k=%d: dist(s,t)=%d, want k+1", tc.n, tc.k, d)
		}
		if !g.HasEdge(f.S, f.D) {
			t.Error("dormant edge {s,d} missing")
		}
		// {s,d} is the global minimum-rank edge.
		if e := g.Edges()[0]; e != graph.NewEdge(f.S, f.D) {
			t.Errorf("minimum-rank edge is %v, want {s,d}", e)
		}
		// The small cycle through {s,d} has length n-3k+1 (visible in any
		// k-neighbourhood containing it); the big cycle is longer than 2k.
		if got := g.Girth(); got != tc.n-3*tc.k+1 {
			t.Errorf("n=%d k=%d: girth=%d, want n-3k+1=%d", tc.n, tc.k, got, tc.n-3*tc.k+1)
		}
		// Removing the dormant edge leaves girth > 2k (the big cycle).
		rest := g.WithoutEdges([]graph.Edge{graph.NewEdge(f.S, f.D)})
		if got := rest.Girth(); got <= 2*tc.k {
			t.Errorf("n=%d k=%d: consistent girth=%d, want > 2k", tc.n, tc.k, got)
		}
		if d := g.Dist(f.D, f.T); d != tc.k {
			t.Errorf("n=%d k=%d: dist(d,t)=%d, want k", tc.n, tc.k, d)
		}
	}
}

func TestFig17Invalid(t *testing.T) {
	if _, err := NewFig17(20, 5); err == nil {
		t.Error("expected error for k < 8")
	}
	if _, err := NewFig17(100, 8); err == nil {
		t.Error("expected error for n > 5k-1")
	}
}

// pathsBall is the paper's k-neighbourhood: the subgraph of all paths
// rooted at u with length at most k — vertices within distance k, and
// edges whose nearer endpoint is within distance k−1 (an edge between two
// frontier vertices lies only on longer paths and is excluded).
func pathsBall(g *graph.Graph, u graph.Vertex, k int) *graph.Graph {
	dist := g.BFSBounded(u, k)
	b := graph.NewBuilder()
	for v := range dist {
		b.AddVertex(v)
	}
	for _, e := range g.Edges() {
		du, okU := dist[e.U]
		dv, okV := dist[e.V]
		if okU && okV && min(du, dv) < k {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPropertyGeneratorsConnected(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		return RandomConnected(rng, n, rng.Float64()*0.3).Connected() &&
			RandomTree(rng, n).IsTree()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4, 3)
	if g.N() != 11 {
		t.Fatalf("n = %d, want 11", g.N())
	}
	if g.M() != 2*6+4 {
		t.Errorf("m = %d, want 16", g.M())
	}
	if !g.Connected() {
		t.Error("barbell must be connected")
	}
	// The bridge is a sequence of cut edges: removing one disconnects.
	cut := g.WithoutEdges([]graph.Edge{graph.NewEdge(0, 4)})
	if cut.Connected() {
		t.Error("bridge edge must be a cut edge")
	}
	zero := Barbell(3, 0)
	if zero.N() != 6 || !zero.Connected() {
		t.Errorf("Barbell(3,0) = %v", zero)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	for _, v := range g.Vertices() {
		if g.Deg(v) != 4 {
			t.Errorf("Q4 vertex %d degree %d", v, g.Deg(v))
		}
	}
	if g.Girth() != 4 {
		t.Errorf("Q4 girth = %d, want 4", g.Girth())
	}
	if g.Dist(0, 15) != 4 {
		t.Errorf("antipodal distance = %d, want 4", g.Dist(0, 15))
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(8)
	if g.N() != 8 || g.M() != 14 {
		t.Fatalf("W8: n=%d m=%d", g.N(), g.M())
	}
	if g.Deg(0) != 7 {
		t.Errorf("hub degree = %d", g.Deg(0))
	}
	if g.Girth() != 3 {
		t.Errorf("wheel girth = %d", g.Girth())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	if g.N() != 15 || !g.IsTree() {
		t.Fatalf("binary tree: n=%d tree=%v", g.N(), g.IsTree())
	}
	if g.Deg(0) != 2 {
		t.Errorf("root degree = %d", g.Deg(0))
	}
	if g.Dist(7, 14) != 6 {
		t.Errorf("leaf-to-leaf distance = %d, want 6", g.Dist(7, 14))
	}
	single := BinaryTree(1)
	if single.N() != 1 {
		t.Errorf("one-level tree: %v", single)
	}
}

func TestNewFamiliesSupportRouting(t *testing.T) {
	// The new families slot into the routing workloads: thresholds hold.
	graphs := []*graph.Graph{Barbell(4, 4), Hypercube(3), Wheel(9), BinaryTree(4)}
	for _, g := range graphs {
		if !g.Connected() {
			t.Fatalf("family member disconnected: %v", g)
		}
	}
}
