package gen

import (
	"klocal/internal/graph"
)

// Additional structured families used to diversify the experiment
// workloads: dense cores with thin bridges (barbells), high-symmetry
// degree-regular graphs (hypercubes), hubs with rims (wheels) and
// balanced hierarchies (binary trees). Each stresses a different aspect
// of the locality machinery: bridges force constrained components,
// hypercubes maximize short-cycle density for the dormant-edge rules,
// wheels mix degrees, and trees exercise pure right-hand traversal.

// Barbell returns two cliques of size cliqueN joined by a path of
// bridgeN vertices. Labels: first clique 0..cliqueN-1, bridge follows,
// second clique last. The bridge endpoints attach to vertex 0 and to the
// last vertex.
func Barbell(cliqueN, bridgeN int) *graph.Graph {
	if cliqueN < 2 || bridgeN < 0 {
		panic("gen: Barbell needs cliqueN >= 2, bridgeN >= 0")
	}
	b := graph.NewBuilder()
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			b.AddEdge(graph.Vertex(i), graph.Vertex(j))
		}
	}
	base := cliqueN
	prev := graph.Vertex(0)
	for i := 0; i < bridgeN; i++ {
		v := graph.Vertex(base + i)
		b.AddEdge(prev, v)
		prev = v
	}
	second := base + bridgeN
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			b.AddEdge(graph.Vertex(second+i), graph.Vertex(second+j))
		}
	}
	b.AddEdge(prev, graph.Vertex(second))
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices,
// vertex labels being the coordinate bit patterns.
func Hypercube(d int) *graph.Graph {
	if d < 1 || d > 16 {
		panic("gen: Hypercube needs 1 <= d <= 16")
	}
	b := graph.NewBuilder()
	n := 1 << d
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(graph.Vertex(v), graph.Vertex(w))
			}
		}
	}
	return b.Build()
}

// Wheel returns the wheel W_n: a hub (label 0) joined to every vertex of
// a rim cycle 1..n-1.
func Wheel(n int) *graph.Graph {
	if n < 4 {
		panic("gen: Wheel needs n >= 4")
	}
	b := graph.NewBuilder()
	rim := n - 1
	for i := 0; i < rim; i++ {
		v := graph.Vertex(1 + i)
		w := graph.Vertex(1 + (i+1)%rim)
		b.AddEdge(v, w)
		b.AddEdge(0, v)
	}
	return b.Build()
}

// BinaryTree returns the complete binary tree with the given number of
// levels (level 1 = a single root, labelled 0; children of i are 2i+1
// and 2i+2).
func BinaryTree(levels int) *graph.Graph {
	if levels < 1 || levels > 20 {
		panic("gen: BinaryTree needs 1 <= levels <= 20")
	}
	b := graph.NewBuilder()
	b.AddVertex(0)
	n := 1<<levels - 1
	for i := 0; 2*i+2 < n+1; i++ {
		if 2*i+1 < n {
			b.AddEdge(graph.Vertex(i), graph.Vertex(2*i+1))
		}
		if 2*i+2 < n {
			b.AddEdge(graph.Vertex(i), graph.Vertex(2*i+2))
		}
	}
	return b.Build()
}
