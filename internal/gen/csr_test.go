package gen_test

import (
	"math/rand"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestGridCSRMatchesGrid(t *testing.T) {
	for _, d := range [][2]int{{1, 1}, {1, 7}, {4, 5}, {6, 6}} {
		c, err := gen.GridCSR(d[0], d[1])
		if err != nil {
			t.Fatal(err)
		}
		want := gen.Grid(d[0], d[1])
		if got := c.ToGraph().String(); got != want.String() {
			t.Fatalf("%d×%d:\n got %s\nwant %s", d[0], d[1], got, want)
		}
	}
	if _, err := gen.GridCSR(0, 5); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestTreeCSR(t *testing.T) {
	c, err := gen.TreeCSR(15) // complete 4-level tree
	if err != nil {
		t.Fatal(err)
	}
	want := gen.BinaryTree(4)
	if got := c.ToGraph().String(); got != want.String() {
		t.Fatalf("got %s want %s", got, want)
	}
	if c, err = gen.TreeCSR(1); err != nil || c.N() != 1 || c.M() != 0 {
		t.Fatalf("single-node tree: n=%d m=%d err=%v", c.N(), c.M(), err)
	}
}

func TestRandomRegularCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, err := gen.RandomRegularCSR(rng, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 500 {
		t.Fatalf("n=%d, want 500", c.N())
	}
	// Union of 2 Hamiltonian cycles: m ≤ 2n, and close to it for n ≫ d.
	if c.M() > 1000 || c.M() < 990 {
		t.Fatalf("m=%d, want within a few of 1000", c.M())
	}
	short := 0
	for v := 0; v < 500; v++ {
		if d := c.Deg(graph.Vertex(v)); d > 4 {
			t.Fatalf("vertex %d has degree %d > 4", v, d)
		} else if d < 4 {
			short++
		}
	}
	if short > 20 {
		t.Fatalf("%d vertices fell short of degree 4", short)
	}
	if !c.ToGraph().Connected() {
		t.Fatal("random regular graph disconnected (each cycle spans)")
	}
	for _, bad := range [][2]int{{500, 3}, {500, 0}, {4, 4}} {
		if _, err := gen.RandomRegularCSR(rng, bad[0], bad[1]); err == nil {
			t.Fatalf("accepted n=%d d=%d", bad[0], bad[1])
		}
	}
}

// TestCSRGeneratorsRoute sanity-checks that generated CSRs route end to
// end through a store-backed neighbourhood extraction.
func TestCSRGeneratorsRoute(t *testing.T) {
	c, err := gen.GridCSR(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc := bigraph.NewScratch()
	if err := c.Extract(0, 3, sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Verts) != 10 { // corner of a grid: 1+2+3+4 within dist 3
		t.Fatalf("|G_3(corner)| = %d, want 10", len(sc.Verts))
	}
}
