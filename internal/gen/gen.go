// Package gen builds the graph families used throughout the reproduction:
// generic topologies (paths, cycles, trees, spiders, random connected
// graphs, ...) and the exact extremal constructions from the paper — the
// counterexample families of Theorems 1–3 (Figures 3–5) and the dilation
// constructions of Figures 7, 13 and 17.
//
// All generators label vertices deterministically; labels matter because
// every tie-break in the routing algorithms is rank-based.
package gen

import (
	"fmt"
	"math/rand"

	"klocal/internal/graph"
)

// Path returns the path 0-1-...-(n-1). It panics for n < 1.
func Path(n int) *graph.Graph {
	if n < 1 {
		panic("gen: Path needs n >= 1")
	}
	b := graph.NewBuilder()
	b.AddVertex(0)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Vertex(i-1), graph.Vertex(i))
	}
	return b.Build()
}

// Cycle returns the cycle 0-1-...-(n-1)-0. It panics for n < 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%n))
	}
	return b.Build()
}

// Star returns the star with centre 0 and leaves 1..n-1. It panics for
// n < 2.
func Star(n int) *graph.Graph {
	if n < 2 {
		panic("gen: Star needs n >= 2")
	}
	b := graph.NewBuilder()
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.Vertex(i))
	}
	return b.Build()
}

// Spider returns a spider: `arms` disjoint paths of `armLen` vertices
// each, all attached to a hub labelled 0. Arm i uses labels
// 1+i*armLen .. (i+1)*armLen, hub-adjacent end first. Spiders are the
// skeleton of the Theorem 1 and 2 constructions.
func Spider(arms, armLen int) *graph.Graph {
	if arms < 1 || armLen < 1 {
		panic("gen: Spider needs arms >= 1 and armLen >= 1")
	}
	b := graph.NewBuilder()
	for a := 0; a < arms; a++ {
		prev := graph.Vertex(0)
		for i := 0; i < armLen; i++ {
			v := graph.Vertex(1 + a*armLen + i)
			b.AddEdge(prev, v)
			prev = v
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n on labels 0..n-1.
func Complete(n int) *graph.Graph {
	if n < 1 {
		panic("gen: Complete needs n >= 1")
	}
	b := graph.NewBuilder()
	b.AddVertex(0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.Vertex(i), graph.Vertex(j))
		}
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph, vertex (r,c) labelled r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: Grid needs positive dimensions")
	}
	b := graph.NewBuilder()
	b.AddVertex(0)
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Theta returns a theta graph: two hub vertices joined by three internally
// disjoint paths with a, b and c internal vertices respectively. The hubs
// are 0 and 1. Theta graphs are the extremal case of Lemma 6 ("a graph of
// girth g with exactly three cycles").
func Theta(a, b, c int) *graph.Graph {
	if a < 0 || b < 0 || c < 0 || (a == 0 && b == 0) || (a == 0 && c == 0) || (b == 0 && c == 0) {
		panic("gen: Theta needs at most one empty path (simple graph)")
	}
	bld := graph.NewBuilder()
	next := graph.Vertex(2)
	addBranch := func(internal int) {
		if internal == 0 {
			bld.AddEdge(0, 1)
			return
		}
		prev := graph.Vertex(0)
		for i := 0; i < internal; i++ {
			bld.AddEdge(prev, next)
			prev = next
			next++
		}
		bld.AddEdge(prev, 1)
	}
	addBranch(a)
	addBranch(b)
	addBranch(c)
	return bld.Build()
}

// Lollipop returns a cycle of cycleLen vertices with a pendant path of
// tailLen vertices attached at cycle vertex 0. Tail labels follow the
// cycle labels.
func Lollipop(cycleLen, tailLen int) *graph.Graph {
	if cycleLen < 3 || tailLen < 0 {
		panic("gen: Lollipop needs cycleLen >= 3, tailLen >= 0")
	}
	b := graph.NewBuilder()
	for i := 0; i < cycleLen; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%cycleLen))
	}
	prev := graph.Vertex(0)
	for i := 0; i < tailLen; i++ {
		v := graph.Vertex(cycleLen + i)
		b.AddEdge(prev, v)
		prev = v
	}
	return b.Build()
}

// Caterpillar returns a spine path of spine vertices with legs pendant
// leaves attached to every spine vertex.
func Caterpillar(spine, legs int) *graph.Graph {
	if spine < 1 || legs < 0 {
		panic("gen: Caterpillar needs spine >= 1, legs >= 0")
	}
	b := graph.NewBuilder()
	b.AddVertex(0)
	for i := 1; i < spine; i++ {
		b.AddEdge(graph.Vertex(i-1), graph.Vertex(i))
	}
	next := graph.Vertex(spine)
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(graph.Vertex(i), next)
			next++
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n vertices
// (labels 0..n-1), generated from a random Prüfer sequence.
func RandomTree(rng *rand.Rand, n int) *graph.Graph {
	if n < 1 {
		panic("gen: RandomTree needs n >= 1")
	}
	b := graph.NewBuilder()
	b.AddVertex(0)
	if n == 1 {
		return b.Build()
	}
	if n == 2 {
		return b.AddEdge(0, 1).Build()
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, p := range prufer {
		degree[p]++
	}
	for _, p := range prufer {
		for v := 0; v < n; v++ {
			if degree[v] == 1 {
				b.AddEdge(graph.Vertex(v), graph.Vertex(p))
				degree[v]--
				degree[p]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	return b.AddEdge(graph.Vertex(u), graph.Vertex(w)).Build()
}

// RandomConnected returns a random connected graph on n vertices: a random
// spanning tree plus each remaining pair joined independently with
// probability extraP.
func RandomConnected(rng *rand.Rand, n int, extraP float64) *graph.Graph {
	tree := RandomTree(rng, n)
	b := graph.NewBuilder()
	for _, e := range tree.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for _, v := range tree.Vertices() {
		b.AddVertex(v)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < extraP {
				b.AddEdge(graph.Vertex(i), graph.Vertex(j))
			}
		}
	}
	return b.Build()
}

// RandomLabelPermutation returns a uniformly random relabelling of g's
// vertices onto the same label set — the paper's adversarial relabelling.
func RandomLabelPermutation(rng *rand.Rand, g *graph.Graph) map[graph.Vertex]graph.Vertex {
	vs := g.Vertices()
	shuffled := make([]graph.Vertex, len(vs))
	copy(shuffled, vs)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	perm := make(map[graph.Vertex]graph.Vertex, len(vs))
	for i, v := range vs {
		perm[v] = shuffled[i]
	}
	return perm
}

// ConnectedGraphs enumerates every connected labelled graph on vertices
// 0..n-1 and calls fn for each. It panics for n > 8 (2^(n(n-1)/2) graphs:
// use sampling beyond that). fn returning false stops the enumeration.
func ConnectedGraphs(n int, fn func(*graph.Graph) bool) {
	if n < 1 || n > 8 {
		panic(fmt.Sprintf("gen: ConnectedGraphs supports 1 <= n <= 8, got %d", n))
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	total := 1 << len(pairs)
	for mask := 0; mask < total; mask++ {
		b := graph.NewBuilder()
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Vertex(v))
		}
		for t, p := range pairs {
			if mask&(1<<t) != 0 {
				b.AddEdge(graph.Vertex(p.i), graph.Vertex(p.j))
			}
		}
		g := b.Build()
		if !g.Connected() {
			continue
		}
		if !fn(g) {
			return
		}
	}
}
