package gen

import (
	"fmt"
	"math/rand"

	"klocal/internal/bigraph"
)

// This file holds the CSR-native generators: the same topology families
// as the *graph.Graph constructors, but streamed straight into a
// two-pass bigraph.Builder so million-node instances never pass through
// a map-based graph. Each generator replays one deterministic edge
// stream twice (count pass, fill pass) — peak memory is the CSR itself
// plus O(n) for the degree/cursor array.

// buildCSR replays the edge stream `each` through both Builder passes.
func buildCSR(n int, each func(emit func(u, v int))) (*bigraph.CSR, error) {
	b := bigraph.NewBuilder(n)
	each(b.CountEdge)
	if err := b.StartFill(); err != nil {
		return nil, err
	}
	each(b.AddEdge)
	return b.Finish()
}

// GridCSR streams a rows×cols grid (vertex r·cols+c, 4-neighbour
// topology) into a CSR — the scale benchmark's default family: bounded
// degree, large diameter, deterministic.
func GridCSR(rows, cols int) (*bigraph.CSR, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: grid needs rows, cols >= 1 (got %d×%d)", rows, cols)
	}
	return buildCSR(rows*cols, func(emit func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				id := r*cols + c
				if c+1 < cols {
					emit(id, id+1)
				}
				if r+1 < rows {
					emit(id, id+cols)
				}
			}
		}
	})
}

// TreeCSR streams the complete binary tree on n vertices (node i has
// children 2i+1, 2i+2) into a CSR.
func TreeCSR(n int) (*bigraph.CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: tree needs n >= 1 (got %d)", n)
	}
	return buildCSR(n, func(emit func(u, v int)) {
		for i := 0; i < n; i++ {
			if l := 2*i + 1; l < n {
				emit(i, l)
			}
			if r := 2*i + 2; r < n {
				emit(i, r)
			}
		}
	})
}

// RandomRegularCSR streams an approximately d-regular graph on n
// vertices into a CSR: the union of d/2 Hamiltonian cycles over
// independent random permutations. Cycle collisions (the same edge drawn
// twice) are collapsed by the builder, so a few vertices may fall short
// of degree d; for d ≪ n the deficit is negligible and the graph is
// connected with overwhelming probability (each cycle alone is
// spanning). d must be even and 2 ≤ d < n.
func RandomRegularCSR(rng *rand.Rand, n, d int) (*bigraph.CSR, error) {
	if d < 2 || d%2 != 0 || d >= n {
		return nil, fmt.Errorf("gen: random-regular needs even degree with 2 <= d < n (got n=%d d=%d)", n, d)
	}
	// Materialize the permutations once so both passes replay the exact
	// same stream: d/2 · n · 8 bytes, e.g. 16 MB at n=10^6, d=4.
	perms := make([][]int, d/2)
	for i := range perms {
		perms[i] = rng.Perm(n)
	}
	return buildCSR(n, func(emit func(u, v int)) {
		for _, p := range perms {
			for i := range p {
				emit(p[i], p[(i+1)%n])
			}
		}
	})
}
