package nbhd

import (
	"slices"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
)

// This file is the int-indexed twin of the map-based neighbourhood
// machinery: a CompactView encodes G_k(u) (or any view graph) in a dense
// local index space built into caller-owned scratch, and classification
// runs over flat arrays — component membership as index ranges, the
// constraint vertices of every component from a single dominator-tree
// pass over the shortest-path DAG instead of one
// remove-vertex-and-re-BFS per candidate. Routing decision paths read
// these encodings with binary searches and array loads only; equivalence
// with the map-based path is pinned by the compact differential tests
// and the klocalcheck "compact" property.

// CompactView is a view graph in a dense local index space: local index
// i is vertex Verts[i], Verts ascending, so local index order and label
// order coincide and every canonical rank tie-break survives the
// translation. Adjacency rows are ascending local indices.
type CompactView struct {
	Center graph.Vertex
	// CenterIdx is the centre's local index.
	CenterIdx int32
	// K is the knowledge radius the view was built at.
	K int32
	// Verts holds the vertex labels, ascending.
	Verts []graph.Vertex
	// Dist holds the distance from the centre inside the view, parallel
	// to Verts; -1 for vertices unreachable from the centre.
	Dist []int32
	// AdjStart/Adj are the CSR adjacency over local indices: vertex i's
	// neighbours are Adj[AdjStart[i]:AdjStart[i+1]], ascending.
	AdjStart []int32
	Adj      []int32
}

// NV returns the number of vertices in the view.
func (cv *CompactView) NV() int { return len(cv.Verts) }

// Index resolves a vertex label to its local index, reporting presence.
// Hand-rolled binary search: sort.Search's closure would allocate, and
// this sits under every per-hop decision.
//
//klocal:hotpath
func (cv *CompactView) Index(v graph.Vertex) (int32, bool) {
	lo, hi := 0, len(cv.Verts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cv.Verts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cv.Verts) && cv.Verts[lo] == v {
		return int32(lo), true
	}
	return 0, false
}

// Contains reports whether v is in the view.
//
//klocal:hotpath
func (cv *CompactView) Contains(v graph.Vertex) bool {
	_, ok := cv.Index(v)
	return ok
}

// Row returns the ascending local-index neighbours of local index i.
//
//klocal:hotpath
func (cv *CompactView) Row(i int32) []int32 {
	return cv.Adj[cv.AdjStart[i]:cv.AdjStart[i+1]]
}

// Clone returns a heap-owned deep copy that stays valid after the
// scratch it was built in is reused — this is what prep caches.
func (cv *CompactView) Clone() *CompactView {
	out := &CompactView{Center: cv.Center, CenterIdx: cv.CenterIdx, K: cv.K}
	out.Verts = append([]graph.Vertex(nil), cv.Verts...)
	out.Dist = append([]int32(nil), cv.Dist...)
	out.AdjStart = append([]int32(nil), cv.AdjStart...)
	out.Adj = append([]int32(nil), cv.Adj...)
	return out
}

// CompactComponent is a local component of the compact view: a connected
// component of view\{center} in local index space, classified exactly as
// nbhd.Component. The index slices alias the owning Scratch and stay
// valid until its next extraction or classification.
type CompactComponent struct {
	// Verts are the member local indices, ascending.
	Verts []int32
	// Roots are the centre's neighbours inside the component, ascending.
	Roots []int32
	// Constraints are the constraint vertices (local indices, ascending);
	// empty for passive or unconstrained components.
	Constraints []int32
	Active      bool
	Independent bool
	Constrained bool
}

// Has reports whether local index v belongs to the component.
//
//klocal:hotpath
func (c *CompactComponent) Has(v int32) bool {
	lo, hi := 0, len(c.Verts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.Verts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.Verts) && c.Verts[lo] == v
}

// Scratch is the caller-owned working memory for compact extraction and
// classification. It grows to the largest graph and view it has seen and
// is then reused without allocating, so per-route hot paths extract and
// classify views with zero steady-state allocations (pinned by
// TestCompactScratchAllocs). A Scratch is not safe for concurrent use;
// give each worker its own.
type Scratch struct {
	// View is the last extracted view; its slices alias scratch buffers.
	View CompactView
	// Comps is the last Classify result, ordered by lowest root label;
	// slices alias scratch buffers.
	Comps []CompactComponent

	// Global-index visited state for extraction: gmark[v] == gepoch means
	// global index v was reached, gdist[v] its distance, glocal[v] (set
	// during local-space construction) its local index.
	gmark  []uint32
	gdist  []int32
	glocal []int32
	gepoch uint32
	gorder []int32 // BFS discovery order (global indices); doubles as the queue

	// Backing buffers for View.
	verts    []graph.Vertex
	dist     []int32
	adjStart []int32
	adj      []int32

	// Classification state, all over local indices. compVerts/compRoots/
	// compCons hold all components' members/roots/constraints
	// back-to-back; vOff/rOff/cOff are the per-component boundaries
	// (sliced into CompactComponent at the end, once the buffers stop
	// growing).
	compID    []int32
	compVerts []int32
	compRoots []int32
	compCons  []int32
	vOff      []int32
	rOff      []int32
	cOff      []int32
	idom      []int32
	tdepth    []int32
	horizon   []int32
	lcaPre    []int32
	lcaSuf    []int32

	// Secondary epoch-marked arrays over local indices, used by the
	// component/dominator BFS passes and the per-target BFS of
	// NextHopToward.
	mark2  []uint32
	dist2  []int32
	queue2 []int32
	epoch2 uint32
}

// NewScratch returns an empty compact scratch; the first extraction
// sizes it.
func NewScratch() *Scratch { return &Scratch{} }

// beginGlobal readies the global visited state for n vertices.
func (sc *Scratch) beginGlobal(n int) {
	if len(sc.gmark) < n {
		sc.gmark = make([]uint32, n)
		sc.gdist = make([]int32, n)
		sc.glocal = make([]int32, n)
		sc.gepoch = 0
	}
	sc.gepoch++
	if sc.gepoch == 0 { // uint32 wrap: all marks are stale garbage
		clear(sc.gmark)
		sc.gepoch = 1
	}
	sc.gorder = sc.gorder[:0]
}

// begin2 readies the secondary epoch arrays for nv local vertices.
func (sc *Scratch) begin2(nv int) {
	if len(sc.mark2) < nv {
		sc.mark2 = make([]uint32, nv)
		sc.dist2 = make([]int32, nv)
		sc.epoch2 = 0
	}
	sc.epoch2++
	if sc.epoch2 == 0 {
		clear(sc.mark2)
		sc.epoch2 = 1
	}
	sc.queue2 = sc.queue2[:0]
}

// ExtractGraph computes G_k(u) into sc from a full graph via its CSR
// mirror: the vertices within distance k of u, and the edges whose
// nearer endpoint is within distance k−1 — exactly Extract's rule (the
// compact differential tests pin the equivalence). It reports false when
// u is absent or k is negative (the empty view).
//
//klocal:hotpath
func (sc *Scratch) ExtractGraph(g *graph.Graph, u graph.Vertex, k int) bool {
	root, ok := g.Index(u)
	if !ok || k < 0 {
		return false
	}
	sc.beginGlobal(g.N())
	sc.gmark[root] = sc.gepoch
	sc.gdist[root] = 0
	sc.gorder = append(sc.gorder, root)
	for head := 0; head < len(sc.gorder); head++ {
		x := sc.gorder[head]
		d := sc.gdist[x]
		if int(d) >= k {
			continue // horizon vertices do not expand
		}
		for _, y := range g.Row(x) {
			if sc.gmark[y] != sc.gepoch {
				sc.gmark[y] = sc.gepoch
				sc.gdist[y] = d + 1
				sc.gorder = append(sc.gorder, y)
			}
		}
	}
	// Graph mirror indices are positions in the sorted vertex order, so
	// sorting the discovery set ascending yields ascending labels.
	slices.Sort(sc.gorder)
	sc.verts = sc.verts[:0]
	sc.dist = sc.dist[:0]
	for li, gi := range sc.gorder {
		sc.glocal[gi] = int32(li)
		sc.verts = append(sc.verts, g.VertexAt(gi))
		sc.dist = append(sc.dist, sc.gdist[gi])
	}
	sc.setView(u, k)
	sc.adjStart = sc.adjStart[:0]
	sc.adj = sc.adj[:0]
	for li := range sc.View.Verts {
		gi := sc.gorder[li]
		sc.adjStart = append(sc.adjStart, int32(len(sc.adj)))
		di := sc.View.Dist[li]
		for _, gy := range g.Row(gi) {
			if sc.gmark[gy] != sc.gepoch {
				continue
			}
			if int(di) < k || int(sc.gdist[gy]) < k {
				sc.adj = append(sc.adj, sc.glocal[gy])
			}
		}
	}
	sc.adjStart = append(sc.adjStart, int32(len(sc.adj)))
	sc.View.AdjStart = sc.adjStart
	sc.View.Adj = sc.adj
	return true
}

// ExtractCSR is ExtractGraph over a CSR store; CSR indices are
// label-ordered too, so the same local-space construction applies.
//
//klocal:hotpath
func (sc *Scratch) ExtractCSR(c *bigraph.CSR, u graph.Vertex, k int) bool {
	root, ok := c.IndexOf(u)
	if !ok || k < 0 {
		return false
	}
	sc.beginGlobal(c.N())
	sc.gmark[root] = sc.gepoch
	sc.gdist[root] = 0
	sc.gorder = append(sc.gorder, root)
	for head := 0; head < len(sc.gorder); head++ {
		x := sc.gorder[head]
		d := sc.gdist[x]
		if int(d) >= k {
			continue
		}
		for _, y := range c.Row(x) {
			if sc.gmark[y] != sc.gepoch {
				sc.gmark[y] = sc.gepoch
				sc.gdist[y] = d + 1
				sc.gorder = append(sc.gorder, y)
			}
		}
	}
	slices.Sort(sc.gorder)
	sc.verts = sc.verts[:0]
	sc.dist = sc.dist[:0]
	for li, gi := range sc.gorder {
		sc.glocal[gi] = int32(li)
		sc.verts = append(sc.verts, c.Label(gi))
		sc.dist = append(sc.dist, sc.gdist[gi])
	}
	sc.setView(u, k)
	sc.adjStart = sc.adjStart[:0]
	sc.adj = sc.adj[:0]
	for li := range sc.View.Verts {
		gi := sc.gorder[li]
		sc.adjStart = append(sc.adjStart, int32(len(sc.adj)))
		di := sc.View.Dist[li]
		for _, gy := range c.Row(gi) {
			if sc.gmark[gy] != sc.gepoch {
				continue
			}
			if int(di) < k || int(sc.gdist[gy]) < k {
				sc.adj = append(sc.adj, sc.glocal[gy])
			}
		}
	}
	sc.adjStart = append(sc.adjStart, int32(len(sc.adj)))
	sc.View.AdjStart = sc.adjStart
	sc.View.Adj = sc.adj
	return true
}

// setView publishes the verts/dist buffers into sc.View and resolves the
// centre index.
func (sc *Scratch) setView(u graph.Vertex, k int) {
	cv := &sc.View
	cv.Center = u
	cv.K = int32(k)
	cv.Verts = sc.verts
	cv.Dist = sc.dist
	ci, _ := cv.Index(u)
	cv.CenterIdx = ci
}

// FromView encodes an arbitrary view graph around a centre with
// knowledge radius k — the ClassifyView contract: every vertex and every
// edge of the view is kept, distances are measured inside the view
// (−1 for vertices unreachable from the centre).
func (sc *Scratch) FromView(view *graph.Graph, center graph.Vertex, k int) bool {
	root, ok := view.Index(center)
	if !ok {
		return false
	}
	n := view.N()
	sc.beginGlobal(n)
	// The local space is the whole view: local index == mirror index
	// (both ascending by label).
	sc.verts = sc.verts[:0]
	sc.dist = sc.dist[:0]
	for i := 0; i < n; i++ {
		sc.verts = append(sc.verts, view.VertexAt(int32(i)))
		sc.dist = append(sc.dist, -1)
	}
	sc.gmark[root] = sc.gepoch
	sc.gdist[root] = 0
	sc.gorder = append(sc.gorder, root)
	sc.dist[root] = 0
	for head := 0; head < len(sc.gorder); head++ {
		x := sc.gorder[head]
		d := sc.gdist[x]
		for _, y := range view.Row(x) {
			if sc.gmark[y] != sc.gepoch {
				sc.gmark[y] = sc.gepoch
				sc.gdist[y] = d + 1
				sc.gorder = append(sc.gorder, y)
				sc.dist[y] = d + 1
			}
		}
	}
	sc.setView(center, k)
	// Full adjacency copy: FromView keeps all view edges.
	sc.adjStart = sc.adjStart[:0]
	sc.adj = sc.adj[:0]
	for i := 0; i < n; i++ {
		sc.adjStart = append(sc.adjStart, int32(len(sc.adj)))
		sc.adj = append(sc.adj, view.Row(int32(i))...)
	}
	sc.adjStart = append(sc.adjStart, int32(len(sc.adj)))
	sc.View.AdjStart = sc.adjStart
	sc.View.Adj = sc.adj
	return true
}

// Classify computes the local components of the current view into
// sc.Comps, classified exactly as the map-based classify (ordering,
// roots, active/independent/constrained flags and constraint vertices) —
// the compact differential tests pin the equivalence. Constraint
// vertices come from one dominator-tree pass over the shortest-path DAG
// from the centre instead of a remove-and-re-BFS per candidate: w lies
// on every shortest centre→z path iff w dominates z, so the common
// constraint vertices of a horizon set H are the dominator-tree
// ancestors of LCA(H) (plus LCA(H) itself), and a horizon vertex w
// additionally qualifies when it is an ancestor-or-self of LCA(H\{w})
// (prefix/suffix LCA arrays make that O(|H|) tree climbs).
//
//klocal:hotpath
func (sc *Scratch) Classify() {
	cv := &sc.View
	nv := cv.NV()
	sc.sizeClassify(nv)
	sc.Comps = sc.Comps[:0]
	sc.compVerts = sc.compVerts[:0]
	sc.compRoots = sc.compRoots[:0]
	sc.compCons = sc.compCons[:0]
	sc.vOff = sc.vOff[:0]
	sc.rOff = sc.rOff[:0]
	sc.cOff = sc.cOff[:0]
	if nv == 0 {
		return
	}
	center := cv.CenterIdx

	// Pass 1: connected components of view\{center}, seeded from the
	// centre's row in ascending order — so components come out ordered by
	// their lowest root, and rootless components (unreachable debris in
	// malformed views) are never materialized, matching classify.
	sc.begin2(nv)
	sc.mark2[center] = sc.epoch2 // BFS never enters the centre
	ncomp := int32(0)
	sc.vOff = append(sc.vOff, 0)
	for _, r := range cv.Row(center) {
		if sc.mark2[r] == sc.epoch2 {
			continue
		}
		segStart := len(sc.compVerts)
		sc.mark2[r] = sc.epoch2
		sc.compID[r] = ncomp
		sc.compVerts = append(sc.compVerts, r)
		for head := segStart; head < len(sc.compVerts); head++ {
			x := sc.compVerts[head]
			for _, y := range cv.Row(x) {
				if sc.mark2[y] != sc.epoch2 {
					sc.mark2[y] = sc.epoch2
					sc.compID[y] = ncomp
					sc.compVerts = append(sc.compVerts, y)
				}
			}
		}
		slices.Sort(sc.compVerts[segStart:])
		sc.vOff = append(sc.vOff, int32(len(sc.compVerts)))
		ncomp++
	}

	// Pass 2: dominator tree of the shortest-path DAG from the centre.
	// idom[v] folds NCA over v's predecessors (neighbours one step
	// closer); BFS order guarantees predecessors are finished first.
	sc.begin2(nv)
	sc.mark2[center] = sc.epoch2
	sc.dist2[center] = 0
	sc.queue2 = append(sc.queue2, center)
	sc.idom[center] = center
	sc.tdepth[center] = 0
	for head := 0; head < len(sc.queue2); head++ {
		x := sc.queue2[head]
		d := sc.dist2[x]
		for _, y := range cv.Row(x) {
			if sc.mark2[y] != sc.epoch2 {
				sc.mark2[y] = sc.epoch2
				sc.dist2[y] = d + 1
				sc.queue2 = append(sc.queue2, y)
			}
		}
	}
	for _, v := range sc.queue2[1:] {
		dv := sc.dist2[v]
		a := int32(-1)
		for _, x := range cv.Row(v) {
			if sc.mark2[x] == sc.epoch2 && sc.dist2[x] == dv-1 {
				if a < 0 {
					a = x
				} else {
					a = sc.nca(a, x)
				}
			}
		}
		sc.idom[v] = a
		sc.tdepth[v] = sc.tdepth[a] + 1
	}

	// Pass 3: per-component roots, horizon, constraints. The component
	// member segments are sorted, so horizons come out ascending.
	for ci := int32(0); ci < ncomp; ci++ {
		sc.rOff = append(sc.rOff, int32(len(sc.compRoots)))
		for _, r := range cv.Row(center) {
			if sc.compID[r] == ci {
				sc.compRoots = append(sc.compRoots, r)
			}
		}
		cStart := len(sc.compCons)
		sc.cOff = append(sc.cOff, int32(cStart))
		sc.horizon = sc.horizon[:0]
		for _, v := range sc.compVerts[sc.vOff[ci]:sc.vOff[ci+1]] {
			if cv.Dist[v] == cv.K {
				sc.horizon = append(sc.horizon, v)
			}
		}
		if len(sc.horizon) > 0 {
			sc.constraints(center)
			slices.Sort(sc.compCons[cStart:])
		}
	}
	sc.rOff = append(sc.rOff, int32(len(sc.compRoots)))
	sc.cOff = append(sc.cOff, int32(len(sc.compCons)))

	// Materialize: the buffers have stopped growing, so subslices are
	// stable until the next Classify.
	for ci := int32(0); ci < ncomp; ci++ {
		hzn := false
		for _, v := range sc.compVerts[sc.vOff[ci]:sc.vOff[ci+1]] {
			if cv.Dist[v] == cv.K {
				hzn = true
				break
			}
		}
		cons := sc.compCons[sc.cOff[ci]:sc.cOff[ci+1]]
		roots := sc.compRoots[sc.rOff[ci]:sc.rOff[ci+1]]
		sc.Comps = append(sc.Comps, CompactComponent{
			Verts:       sc.compVerts[sc.vOff[ci]:sc.vOff[ci+1]],
			Roots:       roots,
			Constraints: cons,
			Active:      hzn,
			Independent: len(roots) == 1,
			Constrained: hzn && len(cons) > 0,
		})
	}
}

// constraints appends the current component's constraint vertices
// (unsorted) to sc.compCons. sc.horizon holds the component's horizon
// set ascending; idom/tdepth hold the dominator pass.
func (sc *Scratch) constraints(center int32) {
	h := sc.horizon
	// Prefix/suffix LCAs over the horizon in dominator-tree terms.
	sc.lcaPre = sc.lcaPre[:0]
	sc.lcaSuf = sc.lcaSuf[:0]
	a := h[0]
	for _, z := range h {
		a = sc.nca(a, z)
		sc.lcaPre = append(sc.lcaPre, a)
	}
	b := h[len(h)-1]
	for i := len(h) - 1; i >= 0; i-- {
		b = sc.nca(b, h[i])
		sc.lcaSuf = append(sc.lcaSuf, b) // lcaSuf[j] covers h[len(h)-1-j:]
	}
	all := sc.lcaPre[len(h)-1]

	// Every dominator-tree ancestor of LCA(H) (and LCA(H) itself), centre
	// excluded, lies on all shortest centre→z paths for all z ∈ H.
	for v := all; v != center; v = sc.idom[v] {
		sc.compCons = append(sc.compCons, v)
	}

	// A horizon vertex w additionally qualifies when it dominates the
	// rest of the horizon: w ancestor-or-self of LCA(H\{w}). With |H|=1
	// that set is empty and w qualifies vacuously (only the centre is
	// excluded by the paper). Skip w already on the LCA(H) root path to
	// avoid duplicates.
	for i, w := range h {
		if w != center && sc.domAncestor(w, all) {
			continue // already emitted on the root path
		}
		qualifies := len(h) == 1
		if !qualifies {
			rest := int32(-1)
			if i > 0 {
				rest = sc.lcaPre[i-1]
			}
			if i < len(h)-1 {
				s := sc.lcaSuf[len(h)-2-i]
				if rest < 0 {
					rest = s
				} else {
					rest = sc.nca(rest, s)
				}
			}
			qualifies = rest >= 0 && sc.domAncestor(w, rest)
		}
		if qualifies {
			sc.compCons = append(sc.compCons, w)
		}
	}
}

// nca returns the nearest common ancestor of a and b in the dominator
// tree (idom/tdepth from the last Classify pass).
//
//klocal:hotpath
func (sc *Scratch) nca(a, b int32) int32 {
	for sc.tdepth[a] > sc.tdepth[b] {
		a = sc.idom[a]
	}
	for sc.tdepth[b] > sc.tdepth[a] {
		b = sc.idom[b]
	}
	for a != b {
		a = sc.idom[a]
		b = sc.idom[b]
	}
	return a
}

// domAncestor reports whether w is an ancestor-or-self of v in the
// dominator tree.
//
//klocal:hotpath
func (sc *Scratch) domAncestor(w, v int32) bool {
	for sc.tdepth[v] > sc.tdepth[w] {
		v = sc.idom[v]
	}
	return v == w
}

// sizeClassify grows the per-local-index classification arrays to nv.
func (sc *Scratch) sizeClassify(nv int) {
	if len(sc.compID) < nv {
		sc.compID = make([]int32, nv)
		sc.idom = make([]int32, nv)
		sc.tdepth = make([]int32, nv)
	}
}

// NextHopToward returns the canonical next hop (local index) from local
// vertex `from` on a shortest path inside the view to local vertex `to`:
// the lowest-labelled neighbour of `from` that decreases the distance to
// `to`, exactly graph.NextHopToward over the same view. It returns −1
// when `to` is unreachable from `from` or from == to.
//
//klocal:hotpath
func (sc *Scratch) NextHopToward(from, to int32) int32 {
	if from == to {
		return -1
	}
	cv := &sc.View
	sc.begin2(cv.NV())
	sc.mark2[to] = sc.epoch2
	sc.dist2[to] = 0
	sc.queue2 = append(sc.queue2, to)
	df := int32(-1)
	for head := 0; head < len(sc.queue2) && df < 0; head++ {
		x := sc.queue2[head]
		d := sc.dist2[x]
		for _, y := range cv.Row(x) {
			if sc.mark2[y] == sc.epoch2 {
				continue
			}
			sc.mark2[y] = sc.epoch2
			sc.dist2[y] = d + 1
			sc.queue2 = append(sc.queue2, y)
			if y == from {
				df = d + 1
			}
		}
	}
	if df < 0 {
		return -1
	}
	// Rows are ascending, so the first neighbour strictly closer to `to`
	// is the canonical (lowest-labelled) choice. All neighbours of `from`
	// at distance df−1 from `to` are marked: BFS fully expanded depth
	// df−1 before discovering `from` at depth df.
	for _, w := range cv.Row(from) {
		if sc.mark2[w] == sc.epoch2 && sc.dist2[w] == df-1 {
			return w
		}
	}
	return -1
}
