// Package nbhd implements the paper's k-neighbourhood machinery: the
// subgraph G_k(u) of all paths rooted at u with length at most k, and the
// classification of the local components of G_k(u)\{u} into active /
// passive, constrained (with their constraint vertices) and independent
// components (Section 2.1 and Figure 1 of the paper).
package nbhd

import (
	"sort"
	"sync"

	"klocal/internal/graph"
)

// Neighborhood is G_k(u): everything node u is allowed to know.
type Neighborhood struct {
	Center graph.Vertex
	K      int
	// G is the neighbourhood subgraph itself.
	G *graph.Graph
	// Dist maps every vertex of G to its distance from Center (equal to
	// the distance in the underlying network for all included vertices).
	Dist map[graph.Vertex]int
}

// Extract computes G_k(u): the vertices within distance k of u, and the
// edges whose nearer endpoint is within distance k−1. (An edge joining two
// vertices both at distance exactly k lies only on paths of length > k
// rooted at u and is therefore not part of u's knowledge.)
func Extract(g *graph.Graph, u graph.Vertex, k int) *Neighborhood {
	dist := g.BFSBounded(u, k)
	b := graph.NewBuilder()
	for v := range dist {
		b.AddVertex(v)
	}
	for v, dv := range dist {
		if dv >= k {
			continue
		}
		g.EachAdj(v, func(w graph.Vertex) bool {
			if _, ok := dist[w]; ok {
				b.AddEdge(v, w)
			}
			return true
		})
	}
	return &Neighborhood{Center: u, K: k, G: b.Build(), Dist: dist}
}

// Contains reports whether v is within u's knowledge.
func (nb *Neighborhood) Contains(v graph.Vertex) bool {
	_, ok := nb.Dist[v]
	return ok
}

// Component is a local component of the view: a connected component of
// view\{center}, classified per the paper.
type Component struct {
	// Vertices of the component, sorted by label.
	Vertices []graph.Vertex
	// Roots are the neighbours of the centre inside the component, sorted
	// by label (a component may have several roots).
	Roots []graph.Vertex
	// Active reports whether the component reaches the knowledge horizon:
	// it contains a vertex at distance exactly k from the centre.
	Active bool
	// Independent reports whether the component has a unique root.
	Independent bool
	// Constrained reports whether the component is active and every
	// active path passes through some vertex other than the centre.
	Constrained bool
	// ConstraintVertices holds every constraint vertex (vertices other
	// than the centre lying on all active paths of the component), sorted
	// by label. Empty for passive or unconstrained components.
	ConstraintVertices []graph.Vertex
}

// Has reports whether v belongs to the component, by binary search in the
// sorted member list (no per-component membership map).
//
//klocal:hotpath
func (c *Component) Has(v graph.Vertex) bool {
	lo, hi := 0, len(c.Vertices)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.Vertices[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.Vertices) && c.Vertices[lo] == v
}

// Root returns the unique root of an independent component; for
// multi-rooted components it returns the lowest-labelled root (the
// canonical representative used by rank-based tie-breaks).
func (c *Component) Root() graph.Vertex { return c.Roots[0] }

// Components classifies the local components of the neighbourhood.
// Components are ordered by their lowest-labelled root.
func (nb *Neighborhood) Components() []*Component {
	return classify(nb.G, nb.Center, nb.K)
}

// ClassifyView classifies the local components of an arbitrary view graph
// around a centre with knowledge radius k. The view must contain the
// centre; distances are measured inside the view. The preprocessing step
// reuses this on the routing subgraph G'_k(u).
func ClassifyView(view *graph.Graph, center graph.Vertex, k int) []*Component {
	return classify(view, center, k)
}

// scratchPool recycles compact scratches across classify calls so the
// label-space API gets the single-pass constraint computation without a
// per-call working-set allocation.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// classify runs the compact classification and materializes the result in
// label space. The per-candidate remove-and-re-BFS implementation it
// replaced survives as ClassifyViewRef; TestClassifyMatchesRef and the
// klocalcheck "compact" property pin the equivalence.
func classify(view *graph.Graph, center graph.Vertex, k int) []*Component {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	if !sc.FromView(view, center, k) {
		return nil
	}
	sc.Classify()
	cv := &sc.View
	comps := make([]*Component, 0, len(sc.Comps))
	for i := range sc.Comps {
		cc := &sc.Comps[i]
		c := &Component{
			Vertices:    make([]graph.Vertex, len(cc.Verts)),
			Roots:       make([]graph.Vertex, len(cc.Roots)),
			Active:      cc.Active,
			Independent: cc.Independent,
			Constrained: cc.Constrained,
		}
		for j, li := range cc.Verts {
			c.Vertices[j] = cv.Verts[li]
		}
		for j, li := range cc.Roots {
			c.Roots[j] = cv.Verts[li]
		}
		if len(cc.Constraints) > 0 {
			c.ConstraintVertices = make([]graph.Vertex, len(cc.Constraints))
			for j, li := range cc.Constraints {
				c.ConstraintVertices[j] = cv.Verts[li]
			}
		}
		comps = append(comps, c)
	}
	return comps
}

// ClassifyViewRef is the reference classification: the direct map-based
// transcription of the paper's definitions, one remove-vertex-and-re-BFS
// per constraint candidate. It is retained solely to pin the compact
// implementation (differential tests and the klocalcheck "compact"
// property); production paths use ClassifyView.
func ClassifyViewRef(view *graph.Graph, center graph.Vertex, k int) []*Component {
	dist := view.BFS(center)
	removed := view.WithoutVertex(center)
	var comps []*Component
	for _, vs := range removed.Components() {
		c := &Component{Vertices: vs}
		view.EachAdj(center, func(w graph.Vertex) bool {
			if c.Has(w) {
				c.Roots = append(c.Roots, w)
			}
			return true
		})
		if len(c.Roots) == 0 {
			// A component of view\{center} not adjacent to the centre can
			// only arise from a malformed view; skip it rather than
			// misclassify.
			continue
		}
		sort.Slice(c.Roots, func(i, j int) bool { return c.Roots[i] < c.Roots[j] })
		c.Independent = len(c.Roots) == 1
		var horizon []graph.Vertex
		for _, v := range vs {
			if dist[v] == k {
				horizon = append(horizon, v)
			}
		}
		c.Active = len(horizon) > 0
		if c.Active {
			c.ConstraintVertices = constraintVerticesRef(view, center, horizon, c, dist)
			c.Constrained = len(c.ConstraintVertices) > 0
		}
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Roots[0] < comps[j].Roots[0] })
	return comps
}

// constraintVerticesRef returns the vertices w ≠ center that lie on every
// active path of the component: every shortest path in the view from the
// centre to a horizon vertex of the component. A vertex w lies on every
// shortest u→z path iff removing w increases (or destroys) the u→z
// distance.
func constraintVerticesRef(view *graph.Graph, center graph.Vertex, horizon []graph.Vertex, c *Component, dist map[graph.Vertex]int) []graph.Vertex {
	var out []graph.Vertex
	for _, w := range c.Vertices {
		// A horizon vertex w trivially lies on every u→w path; the paper
		// allows it (only the centre is excluded), so it is checked like
		// any other vertex against the remaining horizon.
		without := view.WithoutVertex(w)
		onAll := true
		for _, z := range horizon {
			if z == w {
				continue
			}
			if d, ok := without.BFS(center)[z]; ok && d == dist[z] {
				onAll = false
				break
			}
		}
		if onAll {
			out = append(out, w)
		}
	}
	return out
}
