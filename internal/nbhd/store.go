package nbhd

import (
	"klocal/internal/bigraph"
	"klocal/internal/graph"
)

// ExtractStore computes G_k(u) reading topology through the bigraph.Store
// interface — the same contract as Extract, usable on stores too large
// (or too remote) to materialize as a *graph.Graph. For a store that is a
// *graph.Graph the result is identical to Extract's.
func ExtractStore(st bigraph.Store, u graph.Vertex, k int) *Neighborhood {
	dist := make(map[graph.Vertex]int)
	if st.HasVertex(u) {
		dist[u] = 0
		queue := []graph.Vertex{u}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			dx := dist[x]
			if dx >= k {
				continue
			}
			st.EachAdj(x, func(w graph.Vertex) bool {
				if _, seen := dist[w]; !seen {
					dist[w] = dx + 1
					queue = append(queue, w)
				}
				return true
			})
		}
	}
	b := graph.NewBuilder()
	for v := range dist {
		b.AddVertex(v)
	}
	for v, dv := range dist {
		if dv >= k {
			continue
		}
		st.EachAdj(v, func(w graph.Vertex) bool {
			if _, ok := dist[w]; ok {
				b.AddEdge(v, w)
			}
			return true
		})
	}
	return &Neighborhood{Center: u, K: k, G: b.Build(), Dist: dist}
}

// ExtractCSR materializes G_k(u) from a CSR store through sc — the
// map-free BFS fast path the preprocessor takes for CSR-backed networks.
// It fails only where CSR.Extract does (absent centre, negative k).
func ExtractCSR(c *bigraph.CSR, u graph.Vertex, k int, sc *bigraph.Scratch) (*Neighborhood, error) {
	if err := c.Extract(u, k, sc); err != nil {
		return nil, err
	}
	dist := make(map[graph.Vertex]int, len(sc.Verts))
	b := graph.NewBuilder()
	for i, vi := range sc.Verts {
		v := c.Label(vi)
		dist[v] = int(sc.Dists[i])
		b.AddVertex(v)
	}
	for _, e := range sc.Edges {
		b.AddEdge(c.Label(e[0]), c.Label(e[1]))
	}
	return &Neighborhood{Center: u, K: k, G: b.Build(), Dist: dist}, nil
}
