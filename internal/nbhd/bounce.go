package nbhd

// BounceScratch is caller-owned working memory for the branch
// classification inside Algorithm 1B's bounce simulation: epoch-marked
// distance and branch-label banks over a routing view's local index
// space, grown to a high-water mark and then reused without allocating.
// It lives here rather than in the route package so the routing decision
// path itself stays stateless — the scratch is substrate working memory,
// pooled by the caller, never bind-time state. Not safe for concurrent
// use; give each simulation its own (route pools them).
type BounceScratch struct {
	epoch    uint32
	dmark    []uint32 // distCur[i] valid iff dmark[i] == epoch
	distCur  []int32  // BFS distance from the simulated node
	bmark    []uint32 // branch[i] valid iff bmark[i] == epoch
	branch   []int32  // branch id of i in the view minus the simulated node
	queue    []int32
	brActive []bool // per branch id
	brHasS   []bool
	actRoots []int32
}

// NewBounceScratch returns an empty scratch; the first use sizes it.
func NewBounceScratch() *BounceScratch { return &BounceScratch{} }

// begin sizes the banks for a view of nv vertices and opens a new epoch.
//
//klocal:hotpath
func (sc *BounceScratch) begin(nv int) {
	if cap(sc.dmark) < nv {
		//klocal:allow grows once to the largest view seen, then reused; steady state pinned by the route allocs gate
		sc.dmark = make([]uint32, nv)
		//klocal:allow same growth-once path as dmark above
		sc.distCur = make([]int32, nv)
		//klocal:allow same growth-once path as dmark above
		sc.bmark = make([]uint32, nv)
		//klocal:allow same growth-once path as dmark above
		sc.branch = make([]int32, nv)
		sc.epoch = 0
	}
	sc.dmark = sc.dmark[:nv]
	sc.distCur = sc.distCur[:nv]
	sc.bmark = sc.bmark[:nv]
	sc.branch = sc.branch[:nv]
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: stale marks could alias the new epoch
		clear(sc.dmark)
		clear(sc.bmark)
		sc.epoch = 1
	}
}

// Branches classifies the branches around cur — the connected components
// of rcv minus cur that are adjacent to cur — and returns the roots of
// the active ones (ascending, so rank-ordered) plus whether s hangs in a
// passive one. A branch is active when it touches the view horizon
// (Dist == K), extends at least K from cur, or holds the view centre.
// Two epoch-marked BFS passes over the compact rows; the returned slice
// is owned by the scratch and valid until the next call.
//
//klocal:hotpath
func (sc *BounceScratch) Branches(rcv *CompactView, cur, sLi int32) ([]int32, bool) {
	sc.begin(rcv.NV())

	// Pass 1: BFS distances from cur through the full view. A shortest
	// path from cur never revisits cur, so within every branch these
	// equal a BFS over the unmodified view.
	sc.queue = sc.queue[:0]
	sc.dmark[cur] = sc.epoch
	sc.distCur[cur] = 0
	sc.queue = append(sc.queue, cur)
	for h := 0; h < len(sc.queue); h++ {
		x := sc.queue[h]
		dx := sc.distCur[x]
		for _, y := range rcv.Row(x) {
			if sc.dmark[y] == sc.epoch {
				continue
			}
			sc.dmark[y] = sc.epoch
			sc.distCur[y] = dx + 1
			sc.queue = append(sc.queue, y)
		}
	}

	// Pass 2: label the branches reachable from cur's neighbours with
	// cur removed, folding the activity and origin flags into per-branch
	// accumulators as each vertex is first visited.
	sc.brActive = sc.brActive[:0]
	sc.brHasS = sc.brHasS[:0]
	for _, w := range rcv.Row(cur) {
		if sc.bmark[w] == sc.epoch {
			continue // second root of an already-labelled branch
		}
		bid := int32(len(sc.brActive))
		sc.brActive = append(sc.brActive, false)
		sc.brHasS = append(sc.brHasS, false)
		sc.queue = sc.queue[:0]
		sc.bmark[w] = sc.epoch
		sc.branch[w] = bid
		sc.queue = append(sc.queue, w)
		for h := 0; h < len(sc.queue); h++ {
			x := sc.queue[h]
			if x == sLi {
				sc.brHasS[bid] = true
			}
			if rcv.Dist[x] == rcv.K || sc.distCur[x] >= rcv.K || x == rcv.CenterIdx {
				sc.brActive[bid] = true
			}
			for _, y := range rcv.Row(x) {
				if y == cur || sc.bmark[y] == sc.epoch {
					continue
				}
				sc.bmark[y] = sc.epoch
				sc.branch[y] = bid
				sc.queue = append(sc.queue, y)
			}
		}
	}

	// cur's row is ascending and local index order is label order, so the
	// collected roots come out rank-sorted across branches.
	sc.actRoots = sc.actRoots[:0]
	sPassive := false
	for _, w := range rcv.Row(cur) {
		bid := sc.branch[w]
		if sc.brActive[bid] {
			sc.actRoots = append(sc.actRoots, w)
		} else if sc.brHasS[bid] {
			sPassive = true
		}
	}
	return sc.actRoots, sPassive
}
