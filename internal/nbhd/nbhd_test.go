package nbhd

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

func TestExtractPath(t *testing.T) {
	g := gen.Path(11) // 0-1-...-10
	nb := Extract(g, 5, 3)
	if nb.G.N() != 7 {
		t.Fatalf("G_3(5) has %d vertices, want 7", nb.G.N())
	}
	if nb.Dist[2] != 3 || nb.Dist[8] != 3 {
		t.Errorf("frontier distances wrong: %v", nb.Dist)
	}
	if nb.Contains(1) || nb.Contains(9) {
		t.Error("vertices beyond distance 3 must be excluded")
	}
	if !nb.G.HasEdge(2, 3) || nb.G.HasEdge(1, 2) {
		t.Error("edge inclusion wrong at the frontier")
	}
}

func TestExtractExcludesFrontierFrontierEdge(t *testing.T) {
	// 0-1-2 and 0-3-4 with an edge 2-4 joining the two frontier vertices
	// at distance 2: that edge lies only on paths of length 3 rooted at 0.
	g := graph.NewBuilder().AddPath(0, 1, 2).AddPath(0, 3, 4).AddEdge(2, 4).Build()
	nb := Extract(g, 0, 2)
	if nb.G.HasEdge(2, 4) {
		t.Error("frontier-frontier edge must not be in G_k(u)")
	}
	if !nb.Contains(2) || !nb.Contains(4) {
		t.Error("frontier vertices themselves are in G_k(u)")
	}
}

func TestExtractWholeGraph(t *testing.T) {
	g := gen.Cycle(6)
	nb := Extract(g, 0, 10)
	if nb.G.N() != 6 || nb.G.M() != 6 {
		t.Errorf("k beyond diameter must capture the whole graph: %v", nb.G)
	}
}

func TestComponentsOnPathCentre(t *testing.T) {
	g := gen.Path(11)
	nb := Extract(g, 5, 3)
	comps := nb.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	for _, c := range comps {
		if !c.Active {
			t.Errorf("long arms must be active: %+v", c)
		}
		if !c.Independent {
			t.Errorf("path arms are independent: %+v", c)
		}
		if !c.Constrained {
			t.Error("independent active components are constrained")
		}
	}
}

func TestPassiveComponent(t *testing.T) {
	// Centre 0 with a long arm (active) and a short arm (passive).
	g := graph.NewBuilder().AddPath(0, 1, 2, 3, 4, 5).AddPath(0, 10, 11).Build()
	nb := Extract(g, 0, 4)
	comps := nb.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	long, short := comps[0], comps[1]
	if long.Roots[0] != 1 || short.Roots[0] != 10 {
		t.Fatalf("component ordering by root wrong: %v %v", long.Roots, short.Roots)
	}
	if !long.Active || short.Active {
		t.Errorf("activity wrong: long=%v short=%v", long.Active, short.Active)
	}
	if short.Constrained || len(short.ConstraintVertices) != 0 {
		t.Error("passive components have no constraint vertices")
	}
}

func TestMultiRootComponent(t *testing.T) {
	// A triangle at the centre: neighbours 1 and 2 joined, forming one
	// two-rooted (non-independent) component.
	g := graph.NewBuilder().AddCycle(0, 1, 2).AddPath(2, 3, 4, 5).Build()
	nb := Extract(g, 0, 3)
	comps := nb.Components()
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	c := comps[0]
	if c.Independent {
		t.Error("two-rooted component must not be independent")
	}
	if len(c.Roots) != 2 || c.Roots[0] != 1 || c.Roots[1] != 2 {
		t.Errorf("roots = %v, want [1 2]", c.Roots)
	}
	if !c.Active {
		t.Error("component reaches the horizon via the tail")
	}
	// Every path from 0 to the horizon vertex 5... horizon is at distance
	// 3 (vertex 4? dist(0,4)=3 via 2): check constraint vertex 2.
	found := false
	for _, w := range c.ConstraintVertices {
		if w == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("vertex 2 gates all active paths; constraint vertices = %v", c.ConstraintVertices)
	}
}

func TestUnconstrainedActiveComponent(t *testing.T) {
	// A 2k-cycle through the centre: one component, two roots, active
	// paths on both sides, no single gating vertex.
	g := gen.Cycle(8)
	nb := Extract(g, 0, 4)
	comps := nb.Components()
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	c := comps[0]
	if !c.Active {
		t.Fatal("cycle component must be active")
	}
	// The single horizon vertex (antipode, distance 4) is reached by two
	// disjoint paths, but it is itself on every active path, so it is the
	// only constraint vertex.
	if len(c.ConstraintVertices) != 1 || c.ConstraintVertices[0] != 4 {
		t.Errorf("constraint vertices = %v, want [4]", c.ConstraintVertices)
	}
}

func TestTrulyUnconstrainedComponent(t *testing.T) {
	// Two disjoint horizon vertices in one component with disjoint paths:
	// 0 connects to 1 and 2; 1-3, 2-4 (horizon at k=2), and 1-2 ties them
	// into one component. No vertex lies on all active paths.
	g := graph.NewBuilder().
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 2).
		AddPath(1, 3).AddPath(2, 4).Build()
	nb := Extract(g, 0, 2)
	comps := nb.Components()
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	c := comps[0]
	if !c.Active || c.Constrained || len(c.ConstraintVertices) != 0 {
		t.Errorf("component should be active and unconstrained: %+v", c)
	}
}

func TestFigure1Style(t *testing.T) {
	// A small replica of Figure 1's taxonomy around centre u=0, k=3:
	//  - B1: independent active (a path of length 3),
	//  - B2: independent passive (a path of length 2),
	//  - B3: two-rooted constrained active (both roots funnel through w),
	//  - B4: two-rooted unconstrained active.
	b := graph.NewBuilder()
	b.AddPath(0, 1, 2, 3) // B1
	b.AddPath(0, 10, 11)  // B2
	b.AddEdge(0, 20)      // B3 roots 20, 21
	b.AddEdge(0, 21)      //
	b.AddEdge(20, 22)     // w = 22
	b.AddEdge(21, 22)     //
	b.AddEdge(22, 23)     // horizon via w
	b.AddEdge(0, 30)      // B4 roots 30, 31
	b.AddEdge(0, 31)      //
	b.AddPath(30, 32, 33) // two disjoint deep branches
	b.AddPath(31, 34, 35) //
	b.AddEdge(30, 31)     // tie into one component
	g := b.Build()

	nb := Extract(g, 0, 3)
	comps := nb.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	b1, b2, b3, b4 := comps[0], comps[1], comps[2], comps[3]

	if !b1.Active || !b1.Independent || !b1.Constrained {
		t.Errorf("B1 classification wrong: %+v", b1)
	}
	if b2.Active || !b2.Independent {
		t.Errorf("B2 classification wrong: %+v", b2)
	}
	if !b3.Active || b3.Independent || !b3.Constrained {
		t.Errorf("B3 classification wrong: %+v", b3)
	}
	hasW := false
	for _, w := range b3.ConstraintVertices {
		if w == 22 {
			hasW = true
		}
	}
	if !hasW {
		t.Errorf("B3 constraint vertices = %v, want to include 22", b3.ConstraintVertices)
	}
	if !b4.Active || b4.Independent || b4.Constrained {
		t.Errorf("B4 classification wrong: %+v", b4)
	}
}

func TestComponentHasAndRoot(t *testing.T) {
	g := gen.Path(7)
	nb := Extract(g, 3, 2)
	comps := nb.Components()
	left := comps[0]
	if !left.Has(2) || left.Has(4) {
		t.Error("Has misreports membership")
	}
	if left.Root() != 2 {
		t.Errorf("Root() = %d, want 2", left.Root())
	}
}

func TestClassifyViewMatchesNeighborhood(t *testing.T) {
	g := gen.Lollipop(9, 4)
	nb := Extract(g, 0, 3)
	a := nb.Components()
	b := ClassifyView(nb.G, 0, 3)
	if len(a) != len(b) {
		t.Fatalf("component counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Active != b[i].Active || len(a[i].Vertices) != len(b[i].Vertices) {
			t.Errorf("component %d differs", i)
		}
	}
}

func TestPropertyComponentsPartitionBall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.15)
		u := graph.Vertex(rng.Intn(n))
		k := 1 + rng.Intn(5)
		nb := Extract(g, u, k)
		comps := nb.Components()
		seen := map[graph.Vertex]bool{u: true}
		for _, c := range comps {
			for _, v := range c.Vertices {
				if seen[v] {
					t.Fatalf("vertex %d in two components", v)
				}
				seen[v] = true
			}
		}
		if len(seen) != nb.G.N() {
			t.Fatalf("components cover %d of %d vertices", len(seen), nb.G.N())
		}
	}
}

func TestPropertyIndependentActiveIsConstrained(t *testing.T) {
	// The paper: "Every independent active component is a constrained
	// active component."
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(25)
		g := gen.RandomConnected(rng, n, 0.1)
		u := graph.Vertex(rng.Intn(n))
		k := 1 + rng.Intn(6)
		for _, c := range Extract(g, u, k).Components() {
			if c.Independent && c.Active && !c.Constrained {
				t.Fatalf("independent active component not constrained: u=%d k=%d g=%v", u, k, g)
			}
		}
	}
}

func TestPropertyDistMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(20)
		g := gen.RandomConnected(rng, n, 0.2)
		u := graph.Vertex(rng.Intn(n))
		k := 1 + rng.Intn(4)
		nb := Extract(g, u, k)
		for v, d := range nb.Dist {
			if gd := g.Dist(u, v); gd != d {
				t.Fatalf("Dist[%d]=%d but global distance is %d", v, d, gd)
			}
		}
		// Distances measured inside the neighbourhood subgraph also agree
		// (shortest paths of length ≤ k survive extraction).
		inner := nb.G.BFS(u)
		for v, d := range nb.Dist {
			if inner[v] != d {
				t.Fatalf("in-view distance to %d is %d, want %d", v, inner[v], d)
			}
		}
	}
}

func TestPropertyActiveComponentSize(t *testing.T) {
	// Active components contain at least k vertices (used by
	// Propositions 1–3).
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(25)
		g := gen.RandomConnected(rng, n, 0.15)
		u := graph.Vertex(rng.Intn(n))
		k := 1 + rng.Intn(6)
		for _, c := range Extract(g, u, k).Components() {
			if c.Active && len(c.Vertices) < k {
				t.Fatalf("active component with %d < k=%d vertices", len(c.Vertices), k)
			}
		}
	}
}
