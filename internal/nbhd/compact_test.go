package nbhd

import (
	"math/rand"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/graph"
)

func randomGraph(r *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder()
	for v := 1; v < n; v++ {
		b.AddEdge(graph.Vertex(v*3), graph.Vertex(r.Intn(v)*3)) // sparse labels
	}
	extra := n / 2
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)*3), graph.Vertex(r.Intn(n)*3))
	}
	return b.Build()
}

// checkViewMatches compares a compact view against a reference
// Neighborhood: same vertex set, distances, and edge set.
func checkViewMatches(t *testing.T, cv *CompactView, nb *Neighborhood) {
	t.Helper()
	if cv.NV() != len(nb.Dist) {
		t.Fatalf("view size %d want %d", cv.NV(), len(nb.Dist))
	}
	for li, v := range cv.Verts {
		d, ok := nb.Dist[v]
		if !ok {
			t.Fatalf("compact view has stray vertex %d", v)
		}
		if int(cv.Dist[li]) != d {
			t.Fatalf("dist[%d] = %d want %d", v, cv.Dist[li], d)
		}
		if li > 0 && cv.Verts[li-1] >= v {
			t.Fatalf("Verts not strictly ascending at %d", li)
		}
	}
	if cv.Verts[cv.CenterIdx] != nb.Center {
		t.Fatalf("CenterIdx resolves to %d want %d", cv.Verts[cv.CenterIdx], nb.Center)
	}
	edges := 0
	for li := range cv.Verts {
		row := cv.Row(int32(li))
		for p, wj := range row {
			if p > 0 && row[p-1] >= wj {
				t.Fatalf("row of %d not strictly ascending", cv.Verts[li])
			}
			if !nb.G.HasEdge(cv.Verts[li], cv.Verts[wj]) {
				t.Fatalf("stray compact edge {%d,%d}", cv.Verts[li], cv.Verts[wj])
			}
		}
		edges += len(row)
	}
	if edges != 2*nb.G.M() {
		t.Fatalf("compact view has %d arcs, want %d", edges, 2*nb.G.M())
	}
}

// TestExtractCompactMatchesExtract pins ExtractGraph and ExtractCSR to
// the map-based Extract on random graphs.
func TestExtractCompactMatchesExtract(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	sc := NewScratch()
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 2+r.Intn(40))
		vs := g.Vertices()
		u := vs[r.Intn(len(vs))]
		k := r.Intn(5)
		nb := Extract(g, u, k)
		if !sc.ExtractGraph(g, u, k) {
			t.Fatalf("ExtractGraph(%d,%d) reported absent centre", u, k)
		}
		checkViewMatches(t, &sc.View, nb)

		c := bigraph.FromGraph(g)
		if !sc.ExtractCSR(c, u, k) {
			t.Fatalf("ExtractCSR(%d,%d) reported absent centre", u, k)
		}
		checkViewMatches(t, &sc.View, nb)
	}
	if sc.ExtractGraph(randomGraph(r, 5), graph.Vertex(1<<40), 2) {
		t.Fatal("ExtractGraph accepted absent centre")
	}
}

// TestClassifyMatchesRef pins the dominator-based compact classification
// to the remove-and-re-BFS reference on random views, through the public
// label-space API (classify routes through the compact path).
func TestClassifyMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(r, 2+r.Intn(36))
		vs := g.Vertices()
		u := vs[r.Intn(len(vs))]
		k := 1 + r.Intn(4)
		nb := Extract(g, u, k)
		got := ClassifyView(nb.G, u, k)
		want := ClassifyViewRef(nb.G, u, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d components, want %d (u=%d k=%d g=%v)", trial, len(got), len(want), u, k, g)
		}
		for i := range want {
			gc, wc := got[i], want[i]
			if !vertsEqual(gc.Vertices, wc.Vertices) {
				t.Fatalf("trial %d comp %d: vertices %v want %v", trial, i, gc.Vertices, wc.Vertices)
			}
			if !vertsEqual(gc.Roots, wc.Roots) {
				t.Fatalf("trial %d comp %d: roots %v want %v", trial, i, gc.Roots, wc.Roots)
			}
			if gc.Active != wc.Active || gc.Independent != wc.Independent || gc.Constrained != wc.Constrained {
				t.Fatalf("trial %d comp %d: flags %v/%v/%v want %v/%v/%v (u=%d k=%d g=%v)",
					trial, i, gc.Active, gc.Independent, gc.Constrained, wc.Active, wc.Independent, wc.Constrained, u, k, g)
			}
			if !vertsEqual(gc.ConstraintVertices, wc.ConstraintVertices) {
				t.Fatalf("trial %d comp %d: constraints %v want %v (u=%d k=%d g=%v)",
					trial, i, gc.ConstraintVertices, wc.ConstraintVertices, u, k, g)
			}
		}
	}
}

func vertsEqual(a, b []graph.Vertex) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompactNextHopMatchesGraph pins the scratch next-hop against the
// canonical graph.NextHopToward inside random views.
func TestCompactNextHopMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	sc := NewScratch()
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(30))
		vs := g.Vertices()
		u := vs[r.Intn(len(vs))]
		k := 1 + r.Intn(4)
		nb := Extract(g, u, k)
		if !sc.ExtractGraph(g, u, k) {
			t.Fatal("ExtractGraph failed")
		}
		cv := &sc.View
		for _, tgt := range cv.Verts {
			want := nb.G.NextHopToward(u, tgt)
			ti, _ := cv.Index(tgt)
			hop := sc.NextHopToward(cv.CenterIdx, ti)
			got := graph.NoVertex
			if hop >= 0 {
				got = cv.Verts[hop]
			}
			if got != want {
				t.Fatalf("NextHopToward(%d,%d) = %d want %d", u, tgt, got, want)
			}
		}
	}
}

// TestCompactScratchAllocs pins the zero-steady-state-allocation contract
// of extraction, classification, and next-hop lookup.
func TestCompactScratchAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	g := randomGraph(r, 64)
	vs := g.Vertices()
	u := vs[len(vs)/2]
	sc := NewScratch()
	// Size the scratch and build the graph's CSR mirror.
	sc.ExtractGraph(g, u, 3)
	sc.Classify()
	avg := testing.AllocsPerRun(200, func() {
		sc.ExtractGraph(g, u, 3)
		sc.Classify()
		sc.NextHopToward(sc.View.CenterIdx, int32(sc.View.NV()-1))
	})
	if avg != 0 {
		t.Fatalf("compact extract+classify allocates %v/op in steady state, want 0", avg)
	}
}
