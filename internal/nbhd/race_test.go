package nbhd_test

// Concurrency contracts of the extraction layer, exercised under
// `make race`: a *graph.Graph and a *bigraph.CSR are immutable after
// construction and safe for any number of concurrent readers, and the
// documented per-worker-Scratch discipline is sufficient — concurrent
// ExtractCSR calls sharing the store but not the scratch are race-free.

import (
	"sync"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/nbhd"
)

func TestConcurrentExtractSharedGraph(t *testing.T) {
	g := gen.Grid(12, 12)
	verts := g.Vertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := verts[(w*53+i*17)%len(verts)]
				k := 1 + (w+i)%3
				nb := nbhd.Extract(g, u, k)
				if !nb.G.HasVertex(u) {
					t.Errorf("Extract(%d, %d): view misses its own centre", u, k)
					return
				}
				st := nbhd.ExtractStore(g, u, k)
				if st.G.N() != nb.G.N() {
					t.Errorf("Extract/ExtractStore disagree at (%d, %d): %d vs %d vertices",
						u, k, nb.G.N(), st.G.N())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentExtractCSRPerWorkerScratch(t *testing.T) {
	c, err := gen.GridCSR(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Grid(12, 12)
	verts := g.Vertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := bigraph.NewScratch() // one scratch per worker, reused across calls
			for i := 0; i < 40; i++ {
				u := verts[(w*29+i*13)%len(verts)]
				k := 1 + (w+i)%3
				nb, err := nbhd.ExtractCSR(c, u, k, sc)
				if err != nil {
					t.Errorf("ExtractCSR(%d, %d): %v", u, k, err)
					return
				}
				want := nbhd.Extract(g, u, k)
				if nb.G.N() != want.G.N() || nb.G.M() != want.G.M() {
					t.Errorf("ExtractCSR(%d, %d) diverges from Extract: %d/%d vs %d/%d vertices/edges",
						u, k, nb.G.N(), nb.G.M(), want.G.N(), want.G.M())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
