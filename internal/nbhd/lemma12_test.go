package nbhd

import (
	"math/rand"
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// TestLemma12OneConstrainedActiveComponent checks Lemma 12 directly: for
// k ≥ ⌊n/2⌋ and any u, t, either dist(u,t) ≤ k or G_k(u) has exactly one
// active component, and that component is constrained.
func TestLemma12OneConstrainedActiveComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(25)
		g := gen.RandomConnected(rng, n, 0.12)
		k := n / 2
		if k < 1 {
			continue
		}
		for _, u := range g.Vertices() {
			nb := Extract(g, u, k)
			// Find a destination beyond the horizon, if any.
			var far graph.Vertex = graph.NoVertex
			for _, v := range g.Vertices() {
				if !nb.Contains(v) {
					far = v
					break
				}
			}
			if far == graph.NoVertex {
				continue // the whole graph is visible: Case 1 everywhere
			}
			active := 0
			constrained := 0
			for _, c := range nb.Components() {
				if c.Active {
					active++
					if c.Constrained {
						constrained++
					}
				}
			}
			if active != 1 || constrained != 1 {
				t.Fatalf("Lemma 12 violated at u=%d, k=%d: %d active, %d constrained (n=%d, g=%v)",
					u, k, active, constrained, n, g)
			}
		}
	}
}

// TestLemma12OnExtremalShapes exercises the lemma's three proof cases on
// crafted instances.
func TestLemma12OnExtremalShapes(t *testing.T) {
	// Case: a long path — the far side is the single constrained active
	// component.
	g := gen.Path(11)
	k := 5
	nb := Extract(g, 0, k)
	comps := nb.Components()
	if len(comps) != 1 || !comps[0].Active || !comps[0].Constrained {
		t.Fatalf("path end: %+v", comps)
	}
	// Case: an even cycle at k = n/2 — everything visible, so every
	// destination is within k (no far vertex to route to).
	c := gen.Cycle(10)
	nbc := Extract(c, 0, 5)
	for _, v := range c.Vertices() {
		if !nbc.Contains(v) {
			t.Fatalf("C10 at k=5 must see everything; missing %d", v)
		}
	}
}
