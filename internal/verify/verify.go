// Package verify is the bulk validation harness behind cmd/verify: it
// checks an algorithm's delivery guarantee over exhaustive or randomized
// graph populations, fanning the work out over parallel workers. The
// paper's positive theorems are ∀-statements over graphs; this package
// is how a user re-establishes them at whatever scale they can afford.
package verify

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

// Config selects what to verify.
type Config struct {
	// Algorithm under test.
	Algorithm route.Algorithm
	// K is the locality parameter; 0 means the algorithm's own threshold
	// T(n) per graph.
	K int
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// MaxFailures stops the run early once that many failures are
	// recorded (0 = collect all).
	MaxFailures int
	// RequireShortest additionally demands route length == distance
	// (Algorithm 3 and table schemes).
	RequireShortest bool
}

// Failure is one defeated instance.
type Failure struct {
	G       *graph.Graph
	S, T    graph.Vertex
	Outcome sim.Outcome
	Err     error
}

// Report aggregates a verification run.
type Report struct {
	Graphs        int
	Pairs         int
	Delivered     int
	WorstDilation float64
	Failures      []Failure
}

// OK reports whether every routed pair was delivered (and shortest, if
// required).
func (r *Report) OK() bool { return len(r.Failures) == 0 && r.Delivered == r.Pairs }

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("graphs=%d pairs=%d delivered=%d worstDilation=%.3f failures=%d",
		r.Graphs, r.Pairs, r.Delivered, r.WorstDilation, len(r.Failures))
}

// checkGraph routes every ordered pair of g and merges into the report
// under mu.
func checkGraph(cfg Config, g *graph.Graph, rep *Report, mu *sync.Mutex) {
	k := cfg.K
	if k == 0 {
		k = cfg.Algorithm.MinK(g.N())
		if k == 0 {
			k = 1
		}
	}
	f := cfg.Algorithm.Bind(g, k)
	local := Report{Graphs: 1}
	for _, s := range g.Vertices() {
		for _, t := range g.Vertices() {
			if s == t {
				continue
			}
			local.Pairs++
			res := sim.Run(g, sim.Func(f), s, t, sim.Options{
				DetectLoops:      !cfg.Algorithm.Randomized,
				PredecessorAware: cfg.Algorithm.PredecessorAware,
			})
			bad := res.Outcome != sim.Delivered ||
				(cfg.RequireShortest && res.Len() != res.Dist)
			if bad {
				local.Failures = append(local.Failures, Failure{
					G: g, S: s, T: t, Outcome: res.Outcome, Err: res.Err,
				})
				continue
			}
			local.Delivered++
			if d := res.Dilation(); d > local.WorstDilation {
				local.WorstDilation = d
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	rep.Graphs += local.Graphs
	rep.Pairs += local.Pairs
	rep.Delivered += local.Delivered
	if local.WorstDilation > rep.WorstDilation {
		rep.WorstDilation = local.WorstDilation
	}
	rep.Failures = append(rep.Failures, local.Failures...)
}

// overBudget reports whether the failure budget is exhausted.
func overBudget(cfg Config, rep *Report, mu *sync.Mutex) bool {
	if cfg.MaxFailures == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	return len(rep.Failures) >= cfg.MaxFailures
}

// runPool drains the graph channel with cfg.Workers workers.
func runPool(cfg Config, graphs <-chan *graph.Graph) *Report {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range graphs {
				if overBudget(cfg, rep, &mu) {
					continue // drain without working
				}
				checkGraph(cfg, g, rep, &mu)
			}
		}()
	}
	wg.Wait()
	return rep
}

// Exhaustive verifies the algorithm over every connected labelled graph
// on n vertices (n ≤ 8), all ordered pairs each.
func Exhaustive(cfg Config, n int) (*Report, error) {
	if n < 1 || n > 8 {
		return nil, fmt.Errorf("verify: exhaustive mode supports 1 <= n <= 8, got %d", n)
	}
	graphs := make(chan *graph.Graph, 64)
	//klocal:allow generator is drained to exhaustion by runPool, so the final send always unblocks
	go func() {
		defer close(graphs)
		gen.ConnectedGraphs(n, func(g *graph.Graph) bool {
			graphs <- g
			return true
		})
	}()
	return runPool(cfg, graphs), nil
}

// RandomSample verifies the algorithm over `count` random connected
// graphs with adversarially permuted labels, sizes drawn from
// [minN, maxN].
func RandomSample(cfg Config, seed int64, count, minN, maxN int) (*Report, error) {
	if minN < 2 || maxN < minN {
		return nil, fmt.Errorf("verify: need 2 <= minN <= maxN")
	}
	rng := rand.New(rand.NewSource(seed))
	graphs := make(chan *graph.Graph, 16)
	//klocal:allow generator is drained to exhaustion by runPool, so the final send always unblocks
	go func() {
		defer close(graphs)
		for i := 0; i < count; i++ {
			n := minN + rng.Intn(maxN-minN+1)
			g := gen.RandomConnected(rng, n, rng.Float64()*0.25)
			graphs <- g.PermuteLabels(gen.RandomLabelPermutation(rng, g))
		}
	}()
	return runPool(cfg, graphs), nil
}

// CheckWalk validates one delivered walk against the delivery
// invariants the bulk verifier establishes in aggregate — the per-route
// form the serving layer's tests lean on. It checks that the walk is
// non-empty, starts at s, ends at t, takes only edges of g, and (when
// maxDilation > 0) stays within maxDilation × dist(s, t). A walk routed
// against a different topology (e.g. a torn snapshot during a graph
// swap) fails the edge check with overwhelming probability.
func CheckWalk(g *graph.Graph, s, t graph.Vertex, walk []graph.Vertex, maxDilation float64) error {
	if len(walk) == 0 {
		return fmt.Errorf("verify: empty walk for %d -> %d", s, t)
	}
	if walk[0] != s {
		return fmt.Errorf("verify: walk starts at %d, want origin %d", walk[0], s)
	}
	if last := walk[len(walk)-1]; last != t {
		return fmt.Errorf("verify: walk ends at %d, want destination %d", last, t)
	}
	for i := 1; i < len(walk); i++ {
		if !g.HasEdge(walk[i-1], walk[i]) {
			return fmt.Errorf("verify: hop %d uses non-edge {%d, %d}", i, walk[i-1], walk[i])
		}
	}
	if maxDilation > 0 && s != t {
		return CheckDilation(walk, g, s, t, maxDilation)
	}
	return nil
}

// DilationViolation is the typed error CheckDilation reports when a
// delivered walk exceeds a dilation bound: the walk took Hops edges
// where the shortest path has Dist, blowing the Bound × Dist budget.
type DilationViolation struct {
	S, T       graph.Vertex
	Hops, Dist int
	Bound      float64
}

// Dilation is the measured ratio Hops/Dist.
func (e *DilationViolation) Error() string {
	return fmt.Sprintf("verify: walk %d -> %d of %d hops exceeds dilation %.3g × dist %d (measured %.3f)",
		e.S, e.T, e.Hops, e.Bound, e.Dist, e.Dilation())
}

// Dilation returns the measured ratio Hops/Dist.
func (e *DilationViolation) Dilation() float64 {
	if e.Dist == 0 {
		return 0
	}
	return float64(e.Hops) / float64(e.Dist)
}

// CheckDilation compares a delivered walk against a dilation bound by
// recomputing the shortest-path distance in g: it fails with a
// *DilationViolation when len(walk)−1 > bound × dist(s, t). The walk
// must start at s and end at t (s ≠ t); the endpoints must be connected
// in g. It replaces ad-hoc float ratio comparisons wherever a table,
// figure or fuzz property enforces one of the paper's Table 2 bounds —
// the typed error carries the exact hop and distance counts a
// counterexample report needs.
func CheckDilation(walk []graph.Vertex, g *graph.Graph, s, t graph.Vertex, bound float64) error {
	if len(walk) == 0 || walk[0] != s || walk[len(walk)-1] != t {
		return fmt.Errorf("verify: dilation check needs a walk from %d to %d", s, t)
	}
	if s == t {
		return nil
	}
	dist := g.Dist(s, t)
	if dist <= 0 {
		return fmt.Errorf("verify: no path %d -> %d in the claimed topology", s, t)
	}
	if hops := len(walk) - 1; float64(hops) > bound*float64(dist)+dilationEps {
		return &DilationViolation{S: s, T: t, Hops: hops, Dist: dist, Bound: bound}
	}
	return nil
}

// dilationEps absorbs float rounding when bound × dist is compared
// against an integer hop count.
const dilationEps = 1e-9
