package verify

import (
	"testing"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
)

func TestExhaustiveAlgorithm1SmallN(t *testing.T) {
	rep, err := Exhaustive(Config{Algorithm: route.Algorithm1()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("Algorithm 1 exhaustive n=5 failed: %s (first failure: %+v)",
			rep, rep.Failures[0])
	}
	if rep.Graphs != 728 {
		t.Errorf("graphs = %d, want 728 connected labelled graphs on 5 vertices", rep.Graphs)
	}
	if rep.Pairs != 728*20 {
		t.Errorf("pairs = %d, want 728·20", rep.Pairs)
	}
	if rep.WorstDilation >= 7 {
		t.Errorf("dilation %v >= 7", rep.WorstDilation)
	}
}

func TestExhaustiveAlgorithm3Shortest(t *testing.T) {
	rep, err := Exhaustive(Config{Algorithm: route.Algorithm3(), RequireShortest: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("Algorithm 3 shortest check failed: %s", rep)
	}
	if rep.WorstDilation > 1+1e-9 {
		t.Errorf("dilation %v > 1", rep.WorstDilation)
	}
}

func TestExhaustiveDetectsSubThresholdFailures(t *testing.T) {
	// At n = 5, k = 1 is below Algorithm 2's threshold ⌊(n+1)/3⌋ = 2, so
	// Theorem 2 guarantees a defeating graph inside the exhaustive
	// population. (Algorithm 1's bound ⌊(n+1)/4⌋ is 1 there — vacuous —
	// and it indeed delivers everywhere at k = 1 on n = 5.)
	rep, err := Exhaustive(Config{Algorithm: route.Algorithm2(), K: 1, MaxFailures: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("k=1 < T(5) cannot deliver everywhere; the verifier missed the failures")
	}
	if len(rep.Failures) > 5+64 {
		// The early-stop is cooperative (per worker), so slight overshoot
		// is fine; gross overshoot means the budget does not work.
		t.Errorf("failure budget ignored: %d failures", len(rep.Failures))
	}
}

func TestExhaustiveRejectsBigN(t *testing.T) {
	if _, err := Exhaustive(Config{Algorithm: route.Algorithm3()}, 9); err == nil {
		t.Error("expected error for n > 8")
	}
}

func TestRandomSampleAllAlgorithms(t *testing.T) {
	for _, alg := range []route.Algorithm{
		route.Algorithm1(), route.Algorithm1B(), route.Algorithm2(), route.Algorithm3(),
	} {
		rep, err := RandomSample(Config{Algorithm: alg, Workers: 4}, 7, 12, 8, 18)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%s random sample failed: %s (first: %+v)", alg.Name, rep, rep.Failures[0])
		}
		if rep.Graphs != 12 {
			t.Errorf("%s: graphs = %d, want 12", alg.Name, rep.Graphs)
		}
	}
}

func TestRandomSampleValidation(t *testing.T) {
	if _, err := RandomSample(Config{Algorithm: route.Algorithm3()}, 1, 1, 1, 5); err == nil {
		t.Error("expected error for minN < 2")
	}
	if _, err := RandomSample(Config{Algorithm: route.Algorithm3()}, 1, 1, 10, 5); err == nil {
		t.Error("expected error for maxN < minN")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Graphs: 2, Pairs: 10, Delivered: 10, WorstDilation: 1.5}
	if got := rep.String(); got == "" {
		t.Error("empty report string")
	}
	if !rep.OK() {
		t.Error("fully delivered report must be OK")
	}
}

func TestCheckWalk(t *testing.T) {
	g := gen.Cycle(8)
	if err := CheckWalk(g, 0, 3, []graph.Vertex{0, 1, 2, 3}, 1); err != nil {
		t.Fatalf("shortest walk rejected: %v", err)
	}
	if err := CheckWalk(g, 0, 3, nil, 0); err == nil {
		t.Fatal("empty walk accepted")
	}
	if err := CheckWalk(g, 0, 3, []graph.Vertex{1, 2, 3}, 0); err == nil {
		t.Fatal("wrong origin accepted")
	}
	if err := CheckWalk(g, 0, 3, []graph.Vertex{0, 1, 2}, 0); err == nil {
		t.Fatal("wrong destination accepted")
	}
	if err := CheckWalk(g, 0, 3, []graph.Vertex{0, 2, 3}, 0); err == nil {
		t.Fatal("non-edge hop accepted (torn-snapshot detector broken)")
	}
	// The long way around an 8-cycle: 5 hops vs dist 3.
	long := []graph.Vertex{0, 7, 6, 5, 4, 3}
	if err := CheckWalk(g, 0, 3, long, 0); err != nil {
		t.Fatalf("dilation unchecked at maxDilation 0: %v", err)
	}
	if err := CheckWalk(g, 0, 3, long, 3); err != nil {
		t.Fatalf("walk within dilation 3 rejected: %v", err)
	}
	if err := CheckWalk(g, 0, 3, long, 1.2); err == nil {
		t.Fatal("dilation violation accepted")
	}
}
