// Package adversary replays the paper's lower-bound proofs executably.
//
// The negative results (Theorems 1–4) quantify over *all* k-local routing
// algorithms. Their proofs reduce that quantification to finite strategy
// sets: Lemma 1 and Corollary 1 force every successful algorithm's local
// routing function at the hub of the counterexample families to be a
// circular permutation of the hub's neighbours (plus, for Theorem 2, an
// initial direction; for Theorem 3, an initial direction at s). This
// package enumerates exactly those strategy sets and simulates each
// strategy against each family member, regenerating Tables 3 and 4 and
// the dilation adversary of Theorem 4 (Figure 6).
package adversary

import (
	"fmt"
	"sort"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

// CircularPermutations enumerates the circular permutations of elems as
// cyclic orders anchored at elems' lowest element: each result
// [e0, e1, ..., e_{d-1}] means e_i forwards to e_{i+1 mod d}. There are
// (d−1)! of them; for a degree-4 hub that is Lemma 1's six strategies.
func CircularPermutations(elems []graph.Vertex) [][]graph.Vertex {
	if len(elems) == 0 {
		return nil
	}
	sorted := make([]graph.Vertex, len(elems))
	copy(sorted, elems)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rest := sorted[1:]
	var out [][]graph.Vertex
	permute(rest, 0, func(p []graph.Vertex) {
		cyc := make([]graph.Vertex, 0, len(elems))
		cyc = append(cyc, sorted[0])
		cyc = append(cyc, p...)
		out = append(out, cyc)
	})
	return out
}

func permute(xs []graph.Vertex, i int, emit func([]graph.Vertex)) {
	if i == len(xs) {
		emit(xs)
		return
	}
	for j := i; j < len(xs); j++ {
		xs[i], xs[j] = xs[j], xs[i]
		permute(xs, i+1, emit)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// successor returns the element after v in the cyclic order, or NoVertex
// if v is absent.
func successor(cycle []graph.Vertex, v graph.Vertex) graph.Vertex {
	for i, x := range cycle {
		if x == v {
			return cycle[(i+1)%len(cycle)]
		}
	}
	return graph.NoVertex
}

// HubStrategy is one admissible routing strategy for the counterexample
// families: a circular permutation applied at the hub, plus (when the hub
// is the origin) the initial forwarding direction.
type HubStrategy struct {
	// Perm is the cyclic successor order over the hub's neighbours.
	Perm []graph.Vertex
	// Initial is the hub's first forwarding direction when the hub is the
	// origin; NoVertex otherwise.
	Initial graph.Vertex
}

// String renders the strategy for table output.
func (h HubStrategy) String() string {
	s := fmt.Sprintf("%v", h.Perm)
	if h.Initial != graph.NoVertex {
		s += fmt.Sprintf("→%d", h.Initial)
	}
	return s
}

// ReplayHub simulates the strategy walk on an instance: the hub applies
// the strategy; every other node behaves as Lemma 1 dictates (degree-2
// nodes pass the message through, degree-1 nodes bounce it back). It
// reports the walk outcome under Observation 1's loop criterion.
func ReplayHub(inst gen.Instance, hub graph.Vertex, strat HubStrategy) *sim.Result {
	g := inst.G
	f := func(_, _, u, v graph.Vertex) (graph.Vertex, error) {
		if u == hub {
			if v == graph.NoVertex {
				if strat.Initial == graph.NoVertex {
					return graph.NoVertex, fmt.Errorf("adversary: hub strategy needs an initial direction")
				}
				return strat.Initial, nil
			}
			next := successor(strat.Perm, v)
			if next == graph.NoVertex {
				//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
				return graph.NoVertex, fmt.Errorf("adversary: arrival %d not in the hub permutation", v)
			}
			return next, nil
		}
		//klocal:allow replay harness enacts the Lemma 1 forced behavior, not a k-local algorithm; off-hub hops need only degree-≤2 adjacency
		adj := g.Adj(u)
		switch len(adj) {
		case 1:
			return adj[0], nil
		case 2:
			if v == adj[0] {
				return adj[1], nil
			}
			if v == adj[1] {
				return adj[0], nil
			}
			// First send from a degree-2 origin: the families never
			// originate off the hub except through a degree-1 s, so any
			// deterministic choice works; take the lower rank.
			return adj[0], nil
		default:
			//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
			return graph.NoVertex, fmt.Errorf("adversary: unexpected degree-%d node %d off the hub", len(adj), u)
		}
	}
	return sim.Run(g, f, inst.S, inst.T, sim.Options{DetectLoops: true, PredecessorAware: true})
}

// Theorem1Result is the replay of Theorem 1's proof: the outcome of each
// of the six circular-permutation strategies on each of the three family
// variants — Table 3 of the paper.
type Theorem1Result struct {
	Family     *gen.Theorem1Family
	Strategies []HubStrategy
	// Outcomes[i][j] is strategy i on variant j.
	Outcomes [][]sim.Outcome
}

// ReplayTheorem1 enumerates all strategies against the family of size n.
func ReplayTheorem1(n int) (*Theorem1Result, error) {
	fam, err := gen.NewTheorem1Family(n)
	if err != nil {
		return nil, err
	}
	res := &Theorem1Result{Family: fam}
	for _, perm := range CircularPermutations(fam.ArmRoots[:]) {
		res.Strategies = append(res.Strategies, HubStrategy{Perm: perm, Initial: graph.NoVertex})
	}
	for _, strat := range res.Strategies {
		var row []sim.Outcome
		for _, inst := range fam.Variants {
			row = append(row, ReplayHub(inst, fam.Hub, strat).Outcome)
		}
		res.Outcomes = append(res.Outcomes, row)
	}
	return res, nil
}

// EveryStrategyDefeated reports whether each strategy fails on at least
// one variant — the statement of Theorem 1 (and 2).
func everyStrategyDefeated(outcomes [][]sim.Outcome) bool {
	for _, row := range outcomes {
		defeated := false
		for _, o := range row {
			if o != sim.Delivered {
				defeated = true
			}
		}
		if !defeated {
			return false
		}
	}
	return true
}

// EveryStrategyDefeated reports Theorem 1's conclusion for this replay.
func (r *Theorem1Result) EveryStrategyDefeated() bool { return everyStrategyDefeated(r.Outcomes) }

// Theorem2Result is the replay of Theorem 2's proof: two circular
// permutations × three initial directions at the origin hub — Table 4.
type Theorem2Result struct {
	Family     *gen.Theorem2Family
	Strategies []HubStrategy
	Outcomes   [][]sim.Outcome
}

// ReplayTheorem2 enumerates all six strategies against the family.
func ReplayTheorem2(n int) (*Theorem2Result, error) {
	fam, err := gen.NewTheorem2Family(n)
	if err != nil {
		return nil, err
	}
	res := &Theorem2Result{Family: fam}
	for _, perm := range CircularPermutations(fam.ArmRoots[:]) {
		for _, initial := range fam.ArmRoots {
			res.Strategies = append(res.Strategies, HubStrategy{Perm: perm, Initial: initial})
		}
	}
	for _, strat := range res.Strategies {
		var row []sim.Outcome
		for _, inst := range fam.Variants {
			row = append(row, ReplayHub(inst, fam.Hub, strat).Outcome)
		}
		res.Outcomes = append(res.Outcomes, row)
	}
	return res, nil
}

// EveryStrategyDefeated reports Theorem 2's conclusion for this replay.
func (r *Theorem2Result) EveryStrategyDefeated() bool { return everyStrategyDefeated(r.Outcomes) }

// Theorem3Result replays Theorem 3: a predecessor-oblivious walk commits
// a fixed port at every node, so the only free choice at the origin is
// the initial direction; each choice fails on one of the two path
// variants.
type Theorem3Result struct {
	Family *gen.Theorem3Family
	// Outcomes[d][j]: initial direction d (0 = toward the lower-labelled
	// neighbour, 1 = the other) on variant j.
	Outcomes [2][2]sim.Outcome
}

// ReplayTheorem3 simulates both initial directions on both variants.
// Off-origin nodes forward outward (away from the origin) — any fixed
// port assignment yields the same conclusion, since the walk loops as
// soon as any node repeats.
func ReplayTheorem3(n int) (*Theorem3Result, error) {
	fam, err := gen.NewTheorem3Family(n)
	if err != nil {
		return nil, err
	}
	res := &Theorem3Result{Family: fam}
	for d := 0; d < 2; d++ {
		for j, inst := range fam.Variants {
			res.Outcomes[d][j] = replayDirectional(inst, d).Outcome
		}
	}
	return res, nil
}

func replayDirectional(inst gen.Instance, dir int) *sim.Result {
	g := inst.G
	distS := g.BFS(inst.S)
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) {
		//klocal:allow directional replay enacts a fixed adversary transcript over the generator instance, not a k-local algorithm
		adj := g.Adj(u)
		if u == inst.S {
			return adj[dir%len(adj)], nil
		}
		// Fixed outward port: the neighbour farther from s; path ends
		// bounce to their only neighbour.
		best := adj[0]
		for _, w := range adj {
			if distS[w] > distS[best] {
				best = w
			}
		}
		return best, nil
	}
	return sim.Run(g, f, inst.S, inst.T, sim.Options{DetectLoops: true, PredecessorAware: false})
}

// EveryStrategyDefeated reports Theorem 3's conclusion.
func (r *Theorem3Result) EveryStrategyDefeated() bool {
	for d := 0; d < 2; d++ {
		defeated := false
		for j := 0; j < 2; j++ {
			if r.Outcomes[d][j] != sim.Delivered {
				defeated = true
			}
		}
		if !defeated {
			return false
		}
	}
	return true
}
