package adversary

import (
	"testing"

	"klocal/internal/graph"
	"klocal/internal/route"
	"klocal/internal/sim"
)

func TestCircularPermutationsCounts(t *testing.T) {
	tests := []struct {
		give []graph.Vertex
		want int
	}{
		{[]graph.Vertex{1}, 1},
		{[]graph.Vertex{1, 2}, 1},
		{[]graph.Vertex{1, 2, 3}, 2},
		{[]graph.Vertex{1, 2, 3, 4}, 6},
		{[]graph.Vertex{1, 2, 3, 4, 5}, 24},
	}
	for _, tt := range tests {
		got := CircularPermutations(tt.give)
		if len(got) != tt.want {
			t.Errorf("CircularPermutations(%v): %d results, want %d", tt.give, len(got), tt.want)
		}
		for _, cyc := range got {
			if cyc[0] != tt.give[0] {
				t.Errorf("cycle %v not anchored at %d", cyc, tt.give[0])
			}
		}
	}
	if CircularPermutations(nil) != nil {
		t.Error("empty input should give no permutations")
	}
}

func TestCircularPermutationsDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, cyc := range CircularPermutations([]graph.Vertex{1, 2, 3, 4}) {
		key := ""
		for _, v := range cyc {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Errorf("duplicate permutation %v", cyc)
		}
		seen[key] = true
	}
}

func TestSuccessor(t *testing.T) {
	cyc := []graph.Vertex{1, 3, 2}
	if got := successor(cyc, 1); got != 3 {
		t.Errorf("successor(1) = %d, want 3", got)
	}
	if got := successor(cyc, 2); got != 1 {
		t.Errorf("successor(2) = %d, want 1 (wrap)", got)
	}
	if got := successor(cyc, 9); got != graph.NoVertex {
		t.Errorf("successor of absent element = %d, want NoVertex", got)
	}
}

// expectTable3 is Table 3 of the paper: for each circular permutation of
// (P1 P2 P3 P4), the variant it fails on (0-based). Our enumeration
// anchors at P1's root and generates the permutations of the remaining
// arms in a fixed order; the mapping below was verified by hand against
// the paper's rows.
func expectTable3() map[string]int {
	// Key: order of arms after P1 in the cycle (as arm indices 2,3,4).
	return map[string]int{
		"234": 1, // (P1 P2 P3 P4) fails G2
		"243": 2, // (P1 P2 P4 P3) fails G3
		"324": 0, // (P1 P3 P2 P4) fails G1
		"342": 2, // (P1 P3 P4 P2) fails G3
		"423": 0, // (P1 P4 P2 P3) fails G1
		"432": 1, // (P1 P4 P3 P2) fails G2
	}
}

func TestReplayTheorem1MatchesTable3(t *testing.T) {
	for _, n := range []int{11, 14, 19, 23, 31} {
		res, err := ReplayTheorem1(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Strategies) != 6 {
			t.Fatalf("n=%d: %d strategies, want 6", n, len(res.Strategies))
		}
		if !res.EveryStrategyDefeated() {
			t.Fatalf("n=%d: some strategy succeeded on all variants", n)
		}
		want := expectTable3()
		armIdx := func(v graph.Vertex) int {
			for i, r := range res.Family.ArmRoots {
				if r == v {
					return i + 1
				}
			}
			return -1
		}
		for i, strat := range res.Strategies {
			key := ""
			for _, v := range strat.Perm[1:] {
				key += string(rune('0' + armIdx(v)))
			}
			failVariant, ok := want[key]
			if !ok {
				t.Fatalf("n=%d: unexpected permutation key %q", n, key)
			}
			for j, o := range res.Outcomes[i] {
				wantOutcome := sim.Delivered
				if j == failVariant {
					wantOutcome = sim.Looped
				}
				if o != wantOutcome {
					t.Errorf("n=%d strategy %v on variant %d: %v, want %v",
						n, strat, j, o, wantOutcome)
				}
			}
		}
	}
}

// expectTable4 is Table 4: key = permutation order of arms after P1 plus
// the initial arm, value = failing variant (0-based).
func expectTable4() map[string]int {
	return map[string]int{
		"23a": 1, "23b": 2, "23c": 0, // (P1 P2 P3) toward a, b, c
		"32a": 2, "32b": 0, "32c": 1, // (P1 P3 P2) toward a, b, c
	}
}

func TestReplayTheorem2MatchesTable4(t *testing.T) {
	for _, n := range []int{8, 11, 17, 20, 28} {
		res, err := ReplayTheorem2(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Strategies) != 6 {
			t.Fatalf("n=%d: %d strategies, want 6", n, len(res.Strategies))
		}
		if !res.EveryStrategyDefeated() {
			t.Fatalf("n=%d: some strategy succeeded on all variants", n)
		}
		want := expectTable4()
		armIdx := func(v graph.Vertex) int {
			for i, r := range res.Family.ArmRoots {
				if r == v {
					return i + 1
				}
			}
			return -1
		}
		for i, strat := range res.Strategies {
			key := ""
			for _, v := range strat.Perm[1:] {
				key += string(rune('0' + armIdx(v)))
			}
			key += string(rune('a' + armIdx(strat.Initial) - 1))
			failVariant, ok := want[key]
			if !ok {
				t.Fatalf("n=%d: unexpected strategy key %q", n, key)
			}
			for j, o := range res.Outcomes[i] {
				wantOutcome := sim.Delivered
				if j == failVariant {
					wantOutcome = sim.Looped
				}
				if o != wantOutcome {
					t.Errorf("n=%d strategy %v on variant %d: %v, want %v",
						n, strat, j, o, wantOutcome)
				}
			}
		}
	}
}

func TestReplayTheorem3(t *testing.T) {
	for _, n := range []int{6, 9, 14, 21} {
		res, err := ReplayTheorem3(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.EveryStrategyDefeated() {
			t.Fatalf("n=%d: a direction strategy succeeded on both variants", n)
		}
		// Each direction succeeds on exactly one variant.
		for d := 0; d < 2; d++ {
			delivered := 0
			for j := 0; j < 2; j++ {
				if res.Outcomes[d][j] == sim.Delivered {
					delivered++
				}
			}
			if delivered != 1 {
				t.Errorf("n=%d direction %d: %d deliveries, want exactly 1 (%v)",
					n, d, delivered, res.Outcomes[d])
			}
		}
	}
}

func TestDilationPathBoundIsAttained(t *testing.T) {
	// Algorithm 1 at k = ⌈n/4⌉ on the Theorem 4 instance takes exactly
	// the lower-bound route 2n−3k−1 over dist k+1.
	for _, n := range []int{16, 20, 33, 40} {
		k := route.MinK1(n)
		inst, err := DilationPath(n, k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		res := sim.Run(inst.G, sim.Func(route.Algorithm1().Bind(inst.G, k)), inst.S, inst.T,
			sim.Options{DetectLoops: true, PredecessorAware: true})
		if res.Outcome != sim.Delivered {
			t.Fatalf("n=%d k=%d: %v err=%v", n, k, res.Outcome, res.Err)
		}
		if res.Dist != k+1 {
			t.Errorf("n=%d k=%d: dist=%d want k+1", n, k, res.Dist)
		}
		if res.Len() != LowerBoundRouteLen(n, k) {
			t.Errorf("n=%d k=%d: route %d, want 2n-3k-1 = %d (route=%v)",
				n, k, res.Len(), LowerBoundRouteLen(n, k), res.Route)
		}
	}
}

func TestDilationPathAlgorithm2Tight(t *testing.T) {
	// At k = ⌈n/3⌉ the bound approaches 3, matching Theorem 7's upper
	// bound: Algorithm 2 is optimal.
	for _, n := range []int{18, 30, 45} {
		k := route.MinK2(n)
		inst, err := DilationPath(n, k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		res := sim.Run(inst.G, sim.Func(route.Algorithm2().Bind(inst.G, k)), inst.S, inst.T,
			sim.Options{DetectLoops: true, PredecessorAware: true})
		if res.Outcome != sim.Delivered {
			t.Fatalf("n=%d k=%d: %v err=%v", n, k, res.Outcome, res.Err)
		}
		if res.Len() != LowerBoundRouteLen(n, k) {
			t.Errorf("n=%d k=%d: route %d, want %d", n, k, res.Len(), LowerBoundRouteLen(n, k))
		}
		if got, bound := res.Dilation(), LowerBoundDilation(n, k); got < bound-1e9 {
			t.Errorf("n=%d k=%d: dilation %v below bound %v", n, k, got, bound)
		}
	}
}

func TestDilationPathInvalid(t *testing.T) {
	if _, err := DilationPath(10, 5); err == nil {
		t.Error("expected error for k >= n/2")
	}
	if _, err := DilationPath(10, 0); err == nil {
		t.Error("expected error for k < 1")
	}
	if _, err := DilationPath(8, 3); err == nil {
		t.Error("expected error for n < 2k+3")
	}
}

func TestHubStrategyString(t *testing.T) {
	s := HubStrategy{Perm: []graph.Vertex{1, 2, 3}, Initial: 2}
	if got := s.String(); got != "[1 2 3]→2" {
		t.Errorf("String() = %q", got)
	}
	s2 := HubStrategy{Perm: []graph.Vertex{1, 2}, Initial: graph.NoVertex}
	if got := s2.String(); got != "[1 2]" {
		t.Errorf("String() = %q", got)
	}
}
