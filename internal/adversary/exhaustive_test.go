package adversary

import (
	"testing"
)

func TestExhaustiveTheorem1AllFunctionsDefeated(t *testing.T) {
	for _, n := range []int{11, 19, 27} {
		res, err := ExhaustiveTheorem1(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Functions != 256 {
			t.Fatalf("n=%d: enumerated %d functions, want 4^4", n, res.Functions)
		}
		if res.Instances != 24 {
			t.Fatalf("n=%d: %d instances, want 24 (12 joined + 12 dead-end)", n, res.Instances)
		}
		if !res.AllDefeated() {
			t.Errorf("n=%d: %d of %d hub functions survived — Theorem 1's lower bound would be false",
				n, res.Functions-res.Defeated, res.Functions)
		}
	}
}

func TestExhaustiveTheorem2AllStrategiesDefeated(t *testing.T) {
	for _, n := range []int{11, 14, 23} {
		res, err := ExhaustiveTheorem2(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Strategies != 81 {
			t.Fatalf("n=%d: enumerated %d strategies, want 3^3*3", n, res.Strategies)
		}
		if !res.AllDefeated() {
			t.Errorf("n=%d: %d of %d strategies survived — Theorem 2's lower bound would be false",
				n, res.Strategies-res.Defeated, res.Strategies)
		}
	}
}

func TestExhaustiveErrors(t *testing.T) {
	if _, err := ExhaustiveTheorem1(7); err == nil {
		t.Error("expected error for tiny n")
	}
	if _, err := ExhaustiveTheorem2(5); err == nil {
		t.Error("expected error for tiny n")
	}
}

func TestExhaustiveTheorem3AllAssignmentsDefeated(t *testing.T) {
	for _, n := range []int{6, 8, 10, 12} {
		res, err := ExhaustiveTheorem3(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := n/2 - 1
		if want := 1 << (2*r + 1); res.Assignments != want {
			t.Fatalf("n=%d: %d assignments, want 2^(2r+1)=%d", n, res.Assignments, want)
		}
		if !res.AllDefeated() {
			t.Errorf("n=%d: %d of %d port assignments survived — Theorem 3's lower bound would be false",
				n, res.Assignments-res.Defeated, res.Assignments)
		}
	}
}

func TestExhaustiveTheorem3Caps(t *testing.T) {
	if _, err := ExhaustiveTheorem3(20); err == nil {
		t.Error("expected cap error for big n")
	}
}
