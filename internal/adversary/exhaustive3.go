package adversary

import (
	"fmt"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

// ExhaustiveTheorem3Result summarizes the full port-assignment check for
// the predecessor-oblivious lower bound.
type ExhaustiveTheorem3Result struct {
	N           int
	Assignments int // 2^(interior vertices of the common k-ball)
	Defeated    int
	Instances   int // the two path variants
}

// AllDefeated reports whether no assignment survived.
func (r *ExhaustiveTheorem3Result) AllDefeated() bool { return r.Defeated == r.Assignments }

// ExhaustiveTheorem3 checks EVERY predecessor-oblivious behaviour against
// the Theorem 3 two-path family: a predecessor-oblivious deterministic
// routing function commits one fixed out-port per node, and on the
// family's paths each node has at most two ports. The k-neighbourhoods
// G_k(s) coincide across the two variants for every k ≤ r, so the port
// committed at each of the 2k+1 commonly-visible nodes must be the same
// in both; nodes outside the common ball may choose per variant — the
// check lets them pick *adversarially in the algorithm's favour* (both
// options are tried, counting the assignment as surviving if any
// completion delivers). Even with that concession every assignment fails
// on one of the two variants, which is the computational form of
// Theorem 3. n is capped to keep 2^(2k±1) enumerable.
func ExhaustiveTheorem3(n int) (*ExhaustiveTheorem3Result, error) {
	if n > 13 {
		return nil, fmt.Errorf("adversary: ExhaustiveTheorem3 enumerates 2^(2r+1) behaviours; n <= 13, got %d", n)
	}
	fam, err := gen.NewTheorem3Family(n)
	if err != nil {
		return nil, err
	}
	k := fam.R
	// The common ball: vertices within distance k of s in variant 0
	// (identical labels in variant 1 by construction).
	common := fam.Variants[0].G.BFSBounded(fam.Variants[0].S, k)
	var commonVertices []graph.Vertex
	for v := range common {
		commonVertices = append(commonVertices, v)
	}
	// Deterministic order for bit-indexing.
	for i := 1; i < len(commonVertices); i++ {
		for j := i; j > 0 && commonVertices[j] < commonVertices[j-1]; j-- {
			commonVertices[j], commonVertices[j-1] = commonVertices[j-1], commonVertices[j]
		}
	}
	res := &ExhaustiveTheorem3Result{N: n, Instances: len(fam.Variants)}
	total := 1 << len(commonVertices)
	for mask := 0; mask < total; mask++ {
		res.Assignments++
		port := make(map[graph.Vertex]int, len(commonVertices))
		for i, v := range commonVertices {
			port[v] = (mask >> i) & 1
		}
		surviving := true
		for _, inst := range fam.Variants {
			if !deliversWithSomeCompletion(inst, port) {
				surviving = false
				break
			}
		}
		if !surviving {
			res.Defeated++
		}
	}
	return res, nil
}

// deliversWithSomeCompletion simulates the committed ports; nodes outside
// the commitment choose in the algorithm's favour: toward t (the best
// possible completion on a path). Delivery under this generous
// completion over-approximates any real algorithm's success.
func deliversWithSomeCompletion(inst gen.Instance, port map[graph.Vertex]int) bool {
	g := inst.G
	distT := g.BFS(inst.T)
	f := func(_, _, u, _ graph.Vertex) (graph.Vertex, error) {
		//klocal:allow completion search replays committed ports from the exhaustive enumeration (Lemma 1), not a k-local algorithm
		adj := g.Adj(u)
		if p, ok := port[u]; ok {
			return adj[p%len(adj)], nil
		}
		// Uncommitted node: move toward t (most favourable completion).
		best := adj[0]
		for _, w := range adj {
			if distT[w] < distT[best] {
				best = w
			}
		}
		return best, nil
	}
	res := sim.Run(g, f, inst.S, inst.T, sim.Options{DetectLoops: true, PredecessorAware: false})
	return res.Outcome == sim.Delivered
}
