package adversary

import (
	"fmt"

	"klocal/internal/gen"
	"klocal/internal/graph"
)

// DilationPath builds Theorem 4's extremal path instance (Figure 6) for a
// locality parameter k < ⌊n/2⌋: a path of n vertices with dist(s, t) =
// k+1, labelled so that every rank-based tie-break points *away* from t.
// A k-local algorithm at s cannot see t and, by Lemma 1's circular-
// permutation forcing, must commit to the away direction; it then travels
// until a passive component appears (n−2k−1 nodes), returns, and finally
// reaches t: total at least 2(n−2k−1) + (k+1) = 2n−3k−1, against a
// shortest path of k+1, for dilation (2n−3k−1)/(k+1) → 2n/k − 3.
//
// Labels: s = 0; the node at distance d on the away side gets 2d−1 (odd,
// low rank first), on the t side 2d (even); t itself keeps label 2(k+1),
// so inside every view the away side root 1 outranks the t-side root 2.
func DilationPath(n, k int) (gen.Instance, error) {
	if k < 1 || k >= n/2 {
		return gen.Instance{}, fmt.Errorf("adversary: DilationPath needs 1 <= k < n/2, got n=%d k=%d", n, k)
	}
	awayLen := n - 1 - (k + 1)
	if awayLen < k+1 {
		return gen.Instance{}, fmt.Errorf("adversary: DilationPath needs n >= 2k+3, got n=%d k=%d", n, k)
	}
	b := graph.NewBuilder()
	prev := graph.Vertex(0)
	for d := 1; d <= awayLen; d++ {
		v := graph.Vertex(2*d - 1)
		b.AddEdge(prev, v)
		prev = v
	}
	prev = 0
	for d := 1; d <= k+1; d++ {
		v := graph.Vertex(2 * d)
		b.AddEdge(prev, v)
		prev = v
	}
	return gen.Instance{G: b.Build(), S: 0, T: prev}, nil
}

// LowerBoundRouteLen is Theorem 4's bound on the route length of any
// successful k-local algorithm on the DilationPath instance: 2n−3k−1.
func LowerBoundRouteLen(n, k int) int { return 2*n - 3*k - 1 }

// LowerBoundDilation is Theorem 4's dilation bound (1): (2n−3k−1)/(k+1),
// whose limit form is S(k) = 2n/k − 3.
func LowerBoundDilation(n, k int) float64 {
	return float64(2*n-3*k-1) / float64(k+1)
}
