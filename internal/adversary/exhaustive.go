package adversary

import (
	"fmt"

	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/sim"
)

// Exhaustive strategy checks. Tables 3 and 4 replay the paper's *reduced*
// strategy sets (the circular permutations Lemma 1 forces on successful
// algorithms). The functions here drop the reduction and check EVERY
// function at the hub — all d^d successor maps, including
// non-permutations, permutations with fixed points, and multi-cycle
// derangements — against a family that also realizes the witness graphs
// of Lemma 1's three proof cases (every (s-arm, t-arm) assignment with
// the remaining arms joined). Together with the forced behaviour of
// degree ≤ 2 nodes, this is a finite computational proof of the
// Theorem 1 and 2 lower bounds.

// hubFunction is an arbitrary map from arrival arm to forwarding arm
// (indices into the hub's neighbour list), plus the initial direction
// when the hub is the origin.
type hubFunction struct {
	next    []int // next[i] = forwarding port on arrival from port i
	initial int   // first forwarding port when the hub originates
}

// enumerateHubFunctions yields all d^d successor maps.
func enumerateHubFunctions(d int, withInitial bool, emit func(hubFunction)) {
	next := make([]int, d)
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			if withInitial {
				for ini := 0; ini < d; ini++ {
					cp := make([]int, d)
					copy(cp, next)
					emit(hubFunction{next: cp, initial: ini})
				}
			} else {
				cp := make([]int, d)
				copy(cp, next)
				emit(hubFunction{next: cp, initial: -1})
			}
			return
		}
		for p := 0; p < d; p++ {
			next[i] = p
			rec(i + 1)
		}
	}
	rec(0)
}

// theorem1Instance builds the generalized Theorem 1 graph on n nodes:
// four arms of r = ⌊(n−3)/4⌋ vertices at hub 0, s hanging off arm sArm's
// far end (with padding), t off arm tArm's far end, and the remaining two
// arms either joined at their far ends (the paper's Figure 3 shape, which
// defeats the circular permutations) or left as dead ends (Lemma 1's
// independent-component witnesses, which defeat the multi-cycle
// derangements the joins accidentally bridge). sArm ≠ tArm.
func theorem1Instance(n, sArm, tArm int, joined bool) (gen.Instance, [4]graph.Vertex, error) {
	var roots [4]graph.Vertex
	r := (n - 3) / 4
	if r < 2 || sArm == tArm || sArm < 0 || sArm > 3 || tArm < 0 || tArm > 3 {
		return gen.Instance{}, roots, fmt.Errorf("adversary: bad generalized Theorem 1 parameters")
	}
	extra := n - (4*r + 3)
	arm := func(a, i int) graph.Vertex { return graph.Vertex(1 + a*r + i) }
	for a := 0; a < 4; a++ {
		roots[a] = arm(a, 0)
	}
	b := graph.NewBuilder()
	for a := 0; a < 4; a++ {
		prev := graph.Vertex(0)
		for i := 0; i < r; i++ {
			b.AddEdge(prev, arm(a, i))
			prev = arm(a, i)
		}
	}
	s := graph.Vertex(4*r + extra + 1)
	t := graph.Vertex(4*r + extra + 2)
	prev := arm(sArm, r-1)
	for x := 0; x < extra; x++ {
		pad := graph.Vertex(4*r + 1 + x)
		b.AddEdge(prev, pad)
		prev = pad
	}
	b.AddEdge(prev, s)
	b.AddEdge(arm(tArm, r-1), t)
	if joined {
		var rest []int
		for a := 0; a < 4; a++ {
			if a != sArm && a != tArm {
				rest = append(rest, a)
			}
		}
		b.AddEdge(arm(rest[0], r-1), arm(rest[1], r-1))
	}
	return gen.Instance{G: b.Build(), S: s, T: t}, roots, nil
}

// replayHubFunction simulates an arbitrary hub function on an instance,
// with the Lemma-1-forced behaviour elsewhere (degree-2 pass-through,
// degree-1 bounce).
func replayHubFunction(inst gen.Instance, hub graph.Vertex, roots []graph.Vertex, fn hubFunction) sim.Outcome {
	g := inst.G
	idxOf := func(v graph.Vertex) int {
		for i, r := range roots {
			if r == v {
				return i
			}
		}
		return -1
	}
	f := func(_, _, u, v graph.Vertex) (graph.Vertex, error) {
		if u == hub {
			if v == graph.NoVertex {
				if fn.initial < 0 {
					return graph.NoVertex, fmt.Errorf("adversary: hub cannot originate without an initial port")
				}
				return roots[fn.initial], nil
			}
			i := idxOf(v)
			if i < 0 {
				//klocal:allow cold error path: fires only on a model-contract violation, never on the measured route
				return graph.NoVertex, fmt.Errorf("adversary: arrival %d not a hub port", v)
			}
			return roots[fn.next[i]], nil
		}
		//klocal:allow exhaustive search enumerates all routing functions as transcripts (Lemma 1); the replay is not a k-local algorithm
		adj := g.Adj(u)
		switch len(adj) {
		case 1:
			return adj[0], nil
		case 2:
			if v == adj[0] {
				return adj[1], nil
			}
			if v == adj[1] {
				return adj[0], nil
			}
			return adj[0], nil
		default:
			return graph.NoVertex, fmt.Errorf("adversary: unexpected degree off the hub")
		}
	}
	return sim.Run(g, f, inst.S, inst.T, sim.Options{DetectLoops: true, PredecessorAware: true}).Outcome
}

// ExhaustiveTheorem1Result summarizes the full 256-function check.
type ExhaustiveTheorem1Result struct {
	N         int
	Functions int // 4^4 = 256
	Defeated  int // functions failing on at least one instance
	Instances int // 24: 12 (sArm, tArm) assignments × {joined, dead-end}
}

// ExhaustiveTheorem1 checks every successor map at the degree-4 hub
// against every generalized family member. AllDefeated (Defeated ==
// Functions) is the computational form of Theorem 1's "every
// origin-aware predecessor-aware k-local algorithm fails".
func ExhaustiveTheorem1(n int) (*ExhaustiveTheorem1Result, error) {
	var instances []gen.Instance
	var rootSets [][]graph.Vertex
	for sArm := 0; sArm < 4; sArm++ {
		for tArm := 0; tArm < 4; tArm++ {
			if sArm == tArm {
				continue
			}
			for _, joined := range []bool{true, false} {
				inst, roots, err := theorem1Instance(n, sArm, tArm, joined)
				if err != nil {
					return nil, err
				}
				instances = append(instances, inst)
				rootSets = append(rootSets, roots[:])
			}
		}
	}
	res := &ExhaustiveTheorem1Result{N: n, Instances: len(instances)}
	enumerateHubFunctions(4, false, func(fn hubFunction) {
		res.Functions++
		for i, inst := range instances {
			if replayHubFunction(inst, 0, rootSets[i], fn) != sim.Delivered {
				res.Defeated++
				return
			}
		}
	})
	return res, nil
}

// AllDefeated reports whether no hub function survived.
func (r *ExhaustiveTheorem1Result) AllDefeated() bool { return r.Defeated == r.Functions }

// ExhaustiveTheorem2Result summarizes the 27×3-strategy check at the
// degree-3 origin hub.
type ExhaustiveTheorem2Result struct {
	N          int
	Strategies int // 3^3 maps × 3 initial directions = 81
	Defeated   int
	Instances  int // 3 on-hub variants + 6 off-hub Corollary 1 witnesses
}

// theorem2OffHubInstance builds a Corollary 1 witness: the same 3-arm
// hub, but with the origin hanging off arm sArm (through padding) and t
// off arm tArm; the third arm is a plain dead end. An origin-oblivious
// hub function must serve these instances with the same successor map,
// which is what defeats the non-circular maps the three on-hub variants
// miss.
func theorem2OffHubInstance(n, sArm, tArm int) (gen.Instance, [3]graph.Vertex, error) {
	var roots [3]graph.Vertex
	r := (n - 3) / 3
	if r < 2 || sArm == tArm || sArm < 0 || sArm > 2 || tArm < 0 || tArm > 2 {
		return gen.Instance{}, roots, fmt.Errorf("adversary: bad off-hub Theorem 2 parameters")
	}
	extra := n - (3*r + 3)
	arm := func(a, i int) graph.Vertex { return graph.Vertex(1 + a*r + i) }
	for a := 0; a < 3; a++ {
		roots[a] = arm(a, 0)
	}
	b := graph.NewBuilder()
	for a := 0; a < 3; a++ {
		prev := graph.Vertex(0)
		for i := 0; i < r; i++ {
			b.AddEdge(prev, arm(a, i))
			prev = arm(a, i)
		}
	}
	s := graph.Vertex(3*r + extra + 1)
	t := graph.Vertex(3*r + extra + 2)
	prev := arm(sArm, r-1)
	for x := 0; x < extra; x++ {
		pad := graph.Vertex(3*r + 1 + x)
		b.AddEdge(prev, pad)
		prev = pad
	}
	b.AddEdge(prev, s)
	b.AddEdge(arm(tArm, r-1), t)
	return gen.Instance{G: b.Build(), S: s, T: t}, roots, nil
}

// ExhaustiveTheorem2 checks every (successor map, initial direction)
// pair at the hub against the three on-hub variants *and* the six
// off-hub Corollary 1 witnesses (origin-obliviousness means the same
// successor map must serve all of them) — the computational form of
// Theorem 2's lower bound.
func ExhaustiveTheorem2(n int) (*ExhaustiveTheorem2Result, error) {
	fam, err := gen.NewTheorem2Family(n)
	if err != nil {
		return nil, err
	}
	type offHub struct {
		inst  gen.Instance
		roots [3]graph.Vertex
	}
	var witnesses []offHub
	for sArm := 0; sArm < 3; sArm++ {
		for tArm := 0; tArm < 3; tArm++ {
			if sArm == tArm {
				continue
			}
			inst, roots, err := theorem2OffHubInstance(n, sArm, tArm)
			if err != nil {
				return nil, err
			}
			witnesses = append(witnesses, offHub{inst: inst, roots: roots})
		}
	}
	res := &ExhaustiveTheorem2Result{N: n, Instances: len(fam.Variants) + len(witnesses)}
	enumerateHubFunctions(3, true, func(fn hubFunction) {
		res.Strategies++
		for _, inst := range fam.Variants {
			if replayHubFunction(inst, fam.Hub, fam.ArmRoots[:], fn) != sim.Delivered {
				res.Defeated++
				return
			}
		}
		for _, w := range witnesses {
			if replayHubFunction(w.inst, 0, w.roots[:], fn) != sim.Delivered {
				res.Defeated++
				return
			}
		}
	})
	return res, nil
}

// AllDefeated reports whether no strategy survived.
func (r *ExhaustiveTheorem2Result) AllDefeated() bool { return r.Defeated == r.Strategies }
