package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klocal/internal/engine"
	"klocal/internal/graph"
	"klocal/internal/verify"
)

// postJSON issues a JSON request and decodes a JSON reply, returning the
// status code alongside.
func postJSON(t *testing.T, method, url string, payload, into any) int {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("%s %s: bad reply %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestDaemonHotSwapUnderLoad is the end-to-end tentpole test: concurrent
// clients route over HTTP while PUT /graph swaps the topology under
// them. Every response must validate against the graph of the revision
// that served it (verify.CheckWalk — the torn-snapshot detector: a walk
// mixing two generations uses a non-edge of both), and the final
// /metrics totals must reconcile exactly with the summed responses.
func TestDaemonHotSwapUnderLoad(t *testing.T) {
	specA := GraphSpec{Kind: "cycle", Size: 24}
	specB := GraphSpec{Kind: "random", Size: 24, Seed: 5}
	gA, err := specA.Build()
	if err != nil {
		t.Fatal(err)
	}
	gB, err := specB.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Rev 1 is the boot deployment, rev 2 the swapped one.
	graphs := map[int64]*graph.Graph{1: gA, 2: gB}
	bound := DilationBound("alg2")

	srv, err := New(Config{Graph: specA, Algorithms: []string{"alg2"}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients, perClient = 8, 50
	var total, delivered, onNew atomic.Int64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perClient; i++ {
				s := graph.Vertex(rng.Intn(24))
				u := graph.Vertex(rng.Intn(24))
				var rr RouteReply
				if code := postJSON(t, "POST", ts.URL+"/route", RouteRequest{S: s, T: u}, &rr); code != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d", c, code)
					return
				}
				total.Add(1)
				g, ok := graphs[rr.Rev]
				if !ok {
					errs <- fmt.Errorf("client %d: unknown rev %d", c, rr.Rev)
					return
				}
				if rr.Rev == 2 {
					onNew.Add(1)
				}
				if !rr.Delivered {
					// Algorithm 2 at its own threshold delivers everywhere
					// (Theorem 7); a miss means a torn deployment.
					errs <- fmt.Errorf("client %d: %d -> %d undelivered (%s) on rev %d",
						c, s, u, rr.Outcome, rr.Rev)
					return
				}
				delivered.Add(1)
				if err := verify.CheckWalk(g, s, u, rr.Route, bound); err != nil {
					errs <- fmt.Errorf("client %d rev %d: %w", c, rr.Rev, err)
					return
				}
			}
		}(c)
	}

	// Swap mid-traffic.
	time.Sleep(20 * time.Millisecond)
	var swapped GraphReply
	if code := postJSON(t, "PUT", ts.URL+"/graph", specB, &swapped); code != http.StatusOK {
		t.Fatalf("swap status %d", code)
	}
	if swapped.Rev != 2 {
		t.Fatalf("swap rev = %d, want 2", swapped.Rev)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if onNew.Load() == 0 {
		t.Log("note: no request landed on the swapped graph (slow machine?)")
	}

	// /metrics must reconcile exactly: retired rev-1 shards + live rev-2
	// shards = every response the clients summed.
	var m MetricsReply
	if code := postJSON(t, "GET", ts.URL+"/metrics?format=json", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	rep := m.Algorithms["alg2"]
	if rep == nil {
		t.Fatal("metrics missing alg2 report")
	}
	if got := rep.Counter("requests"); got != total.Load() {
		t.Errorf("metrics requests = %d, want %d", got, total.Load())
	}
	if got := rep.Counter("delivered"); got != delivered.Load() {
		t.Errorf("metrics delivered = %d, want %d", got, delivered.Load())
	}
	if m.HTTPRequests != total.Load() {
		t.Errorf("http_requests = %d, want %d", m.HTTPRequests, total.Load())
	}
	if m.Rev != 2 {
		t.Errorf("metrics rev = %d, want 2", m.Rev)
	}
	if h, ok := rep.Histograms["latency_ns"]; !ok || h.Count != total.Load() {
		t.Errorf("latency histogram count = %v, want %d", h.Count, total.Load())
	}
}

// TestBatchEndpoint checks POST /batch returns results in request order
// and counts every pair in the metrics.
func TestBatchEndpoint(t *testing.T) {
	srv, err := New(Config{Graph: GraphSpec{Kind: "grid", Size: 25}, Algorithms: []string{"alg2", "alg3"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pairs := [][2]graph.Vertex{{0, 24}, {24, 0}, {3, 3}, {12, 7}}
	var br BatchReply
	if code := postJSON(t, "POST", ts.URL+"/batch", BatchRequest{Pairs: pairs, Algo: "alg3"}, &br); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if br.Algo != "alg3" || len(br.Results) != len(pairs) {
		t.Fatalf("batch reply algo=%s len=%d", br.Algo, len(br.Results))
	}
	g, _ := GraphSpec{Kind: "grid", Size: 25}.Build()
	for i, res := range br.Results {
		if res.S != pairs[i][0] || res.T != pairs[i][1] {
			t.Errorf("result %d is (%d, %d), want (%d, %d): order not preserved",
				i, res.S, res.T, pairs[i][0], pairs[i][1])
		}
		if !res.Delivered {
			t.Errorf("pair %d undelivered: %s", i, res.Outcome)
		}
		// Algorithm 3 routes shortest paths (Theorem 8).
		if err := verify.CheckWalk(g, res.S, res.T, res.Route, 1); err != nil {
			t.Errorf("pair %d: %v", i, err)
		}
	}

	var m MetricsReply
	postJSON(t, "GET", ts.URL+"/metrics?format=json", nil, &m)
	if got := m.Algorithms["alg3"].Counter("requests"); got != int64(len(pairs)) {
		t.Errorf("alg3 requests = %d, want %d", got, len(pairs))
	}
	if got := m.Algorithms["alg2"].Counter("requests"); got != 0 {
		t.Errorf("alg2 requests = %d, want 0", got)
	}
	if m.HTTPRequests != 1 {
		t.Errorf("http_requests = %d, want 1 (batches count once)", m.HTTPRequests)
	}

	// Unknown algorithm and out-of-graph vertices are client errors.
	if code := postJSON(t, "POST", ts.URL+"/batch", BatchRequest{Pairs: pairs, Algo: "alg9"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown algo status %d, want 400", code)
	}
	if code := postJSON(t, "POST", ts.URL+"/route", RouteRequest{S: 0, T: 999}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-graph vertex status %d, want 400", code)
	}
}

// TestAdmissionControl429 deterministically saturates a 1-worker,
// 1-slot engine (in-package: stray Submits with no Results consumer clog
// the pipeline) and checks the HTTP layer answers 429 within the
// admission budget, then recovers once the pipeline drains.
func TestAdmissionControl429(t *testing.T) {
	srv, err := New(Config{
		Graph:           GraphSpec{Kind: "path", Size: 8},
		Algorithms:      []string{"alg3"},
		Workers:         1,
		QueueDepth:      1,
		AdmissionBudget: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pipeline capacity is out(1) + in-worker(1) + queue(1): three stray
	// Submits leave the worker blocked on the unconsumed Results channel
	// and the queue full.
	eng := srv.cur.Load().byAlg["alg3"].eng
	for i := 0; i < 3; i++ {
		if err := eng.Submit(engine.Request{S: 0, T: 7}); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	code := postJSON(t, "POST", ts.URL+"/route", RouteRequest{S: 0, T: 7}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429", code)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Errorf("rejection took %v, want ≈ the 30ms budget", wait)
	}

	// Drain the strays; the daemon must recover.
	for i := 0; i < 3; i++ {
		<-eng.Results()
	}
	var rr RouteReply
	if code := postJSON(t, "POST", ts.URL+"/route", RouteRequest{S: 0, T: 7}, &rr); code != http.StatusOK {
		t.Fatalf("post-drain status %d, want 200", code)
	}
	if !rr.Delivered {
		t.Fatalf("post-drain route undelivered: %s", rr.Outcome)
	}

	var m MetricsReply
	postJSON(t, "GET", ts.URL+"/metrics?format=json", nil, &m)
	if m.HTTPRejections != 1 {
		t.Errorf("http_rejections = %d, want 1", m.HTTPRejections)
	}
}

// TestDrainLifecycle checks the shutdown path: readyz flips to 503,
// routing refuses, FinalReports carries the cumulative totals, and
// Drain is idempotent.
func TestDrainLifecycle(t *testing.T) {
	srv, err := New(Config{Graph: GraphSpec{Kind: "wheel", Size: 12}, Algorithms: []string{"alg1b"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code := postJSON(t, "GET", ts.URL+"/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", code)
	}
	var rr RouteReply
	if code := postJSON(t, "POST", ts.URL+"/route", RouteRequest{S: 1, T: 7, Trace: true}, &rr); code != http.StatusOK {
		t.Fatalf("route status %d", code)
	}
	if len(rr.Trace) != len(rr.Route) {
		t.Errorf("trace has %d hops, route %d", len(rr.Trace), len(rr.Route))
	}

	srv.Drain()
	srv.Drain() // idempotent
	if code := postJSON(t, "GET", ts.URL+"/readyz", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d after drain, want 503", code)
	}
	if code := postJSON(t, "POST", ts.URL+"/route", RouteRequest{S: 1, T: 7}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("route after drain = %d, want 503", code)
	}
	if code := postJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz = %d after drain, want 200 (process still alive)", code)
	}

	reps := srv.FinalReports()
	if len(reps) != 1 {
		t.Fatalf("FinalReports len = %d", len(reps))
	}
	if got := reps[0].Counter("requests"); got != 1 {
		t.Errorf("final requests = %d, want 1", got)
	}
	// /metrics keeps serving the cumulative totals after drain.
	var m MetricsReply
	if code := postJSON(t, "GET", ts.URL+"/metrics?format=json", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics after drain: %d", code)
	}
	if got := m.Algorithms["alg1b"].Counter("requests"); got != 1 {
		t.Errorf("metrics after drain requests = %d, want 1", got)
	}
}

// TestGraphSpecBuild covers the generator table and its error paths.
func TestGraphSpecBuild(t *testing.T) {
	for _, kind := range []string{"lollipop", "cycle", "path", "grid", "spider", "wheel", "barbell", "complete", "random", "tree"} {
		g, err := GraphSpec{Kind: kind, Size: 30, Seed: 2}.Build()
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if !g.Connected() {
			t.Errorf("%s: disconnected", kind)
		}
	}
	if _, err := (GraphSpec{Kind: "möbius"}).Build(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (GraphSpec{Kind: "edges", Edges: [][2]int64{{1, 1}}}).Build(); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := (GraphSpec{Edges: [][2]int64{{0, 1}, {2, 3}}}).Build(); err == nil {
		t.Error("disconnected edge list accepted")
	}
	g, err := (GraphSpec{Edges: [][2]int64{{0, 1}, {1, 2}, {2, 0}}}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("triangle built as n=%d m=%d", g.N(), g.M())
	}
	if _, err := AlgorithmByName("alg4"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
