package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klocal/internal/engine"
	"klocal/internal/graph"
)

// TestDeploymentRefcountStateMachine pins the packed-state semantics of
// acquire/release/drain directly: a drain excludes new acquires, waits
// for the last release, and a double release is a loud failure rather
// than a silent refcount corruption.
func TestDeploymentRefcountStateMachine(t *testing.T) {
	t.Run("drain waits for last release", func(t *testing.T) {
		d := &deployment{drained: make(chan struct{})}
		if !d.acquire() {
			t.Fatal("fresh deployment refused an acquire")
		}
		done := make(chan struct{})
		go func() {
			d.drain()
			close(done)
		}()
		// The drainer must not return while the reference is held.
		select {
		case <-done:
			t.Fatal("drain returned with a reference still held")
		case <-time.After(20 * time.Millisecond):
		}
		if d.acquire() {
			t.Fatal("acquire succeeded on a draining deployment")
		}
		d.release()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("drain did not return after the last release")
		}
	})

	t.Run("double release panics", func(t *testing.T) {
		d := &deployment{drained: make(chan struct{})}
		if !d.acquire() {
			t.Fatal("fresh deployment refused an acquire")
		}
		d.release()
		defer func() {
			if recover() == nil {
				t.Fatal("second release of a single acquire did not panic")
			}
		}()
		d.release()
	})
}

// TestRetireSwapRace hammers the drain path from the issue: routing
// requests holding deployment references while concurrent Swaps retire
// generation after generation. Under -race this is the memory-safety
// proof; the counter reconciliation at the end is the no-double-count
// invariant (every successful request was counted by exactly one
// generation, none lost to a drain racing a release).
func TestRetireSwapRace(t *testing.T) {
	srv, err := New(Config{
		Graph:      GraphSpec{Kind: "cycle", Size: 16},
		Algorithms: []string{"alg2"},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var routed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Request hammers: acquire the current deployment, route, release.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, err := srv.current()
				if err != nil {
					return // server drained under us: done
				}
				ae, err := d.engineFor("")
				if err != nil {
					d.release()
					continue
				}
				n := d.g.N()
				resp, err := ae.eng.Do(engine.Request{S: 0, T: graph.Vertex(n / 2)}, 0)
				if err == nil && resp.Result.Outcome.String() == "delivered" {
					routed.Add(1)
				}
				d.release()
			}
		}()
	}

	// Swap hammer: retire generations as fast as they build.
	wg.Add(1)
	go func() {
		defer wg.Done()
		specs := []GraphSpec{
			{Kind: "cycle", Size: 16},
			{Kind: "wheel", Size: 16},
			{Kind: "path", Size: 16},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := srv.Swap(specs[i%len(specs)]); err != nil {
				return
			}
		}
	}()

	// Metrics scraper: reads live shards while generations retire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.snapshotMetrics()
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	srv.Drain()

	if routed.Load() == 0 {
		t.Fatal("no request survived the swap storm; the race test exercised nothing")
	}
	// Reconciliation: the cumulative counters must account for at least
	// every successful routing call (failed Do calls may or may not have
	// counted, successful ones must — exactly once).
	var total int64
	for _, rep := range srv.FinalReports() {
		total += rep.Counter("delivered")
	}
	if total < routed.Load() {
		t.Fatalf("retired totals lost requests: counters say %d delivered, callers saw %d",
			total, routed.Load())
	}
}
