package serve

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
)

// writeCSR materializes a small generated graph as a .csr file.
func writeCSR(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := bigraph.FromGraph(g).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFileDeployment boots the daemon on a kind "file" spec (the
// store-backed path behind klocald -graph-file x.csr) and checks the
// degraded contract: routing and vertex validation work, /graph reports
// the store's size, traces and distances are absent, and a hot-swap from
// file-backed to generator-backed (and back) releases cleanly.
func TestFileDeployment(t *testing.T) {
	g := gen.Cycle(20)
	path := writeCSR(t, g)

	s, err := New(Config{
		Graph:      GraphSpec{Kind: "file", Path: path},
		Algorithms: []string{"alg2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var gr GraphReply
	if code := postJSON(t, "GET", ts.URL+"/graph", nil, &gr); code != 200 {
		t.Fatalf("GET /graph: %d", code)
	}
	if gr.N != g.N() || gr.M != g.M() {
		t.Fatalf("file deployment reports n=%d m=%d, want %d, %d", gr.N, gr.M, g.N(), g.M())
	}
	if gr.Spec.Kind != "file" || gr.Spec.Path != path {
		t.Fatalf("spec echo: %+v", gr.Spec)
	}

	var rr RouteReply
	if code := postJSON(t, "POST", ts.URL+"/route",
		RouteRequest{S: 0, T: 10, Trace: true}, &rr); code != 200 {
		t.Fatalf("POST /route: %d", code)
	}
	if !rr.Delivered {
		t.Fatalf("route 0->10 on cycle at threshold: %s (%s)", rr.Outcome, rr.Err)
	}
	if rr.Dist != 0 || rr.Stretch != 0 {
		t.Fatalf("store-backed reply leaked dist=%d stretch=%v", rr.Dist, rr.Stretch)
	}
	if len(rr.Trace) != 0 {
		t.Fatalf("store-backed reply carried a trace (%d hops)", len(rr.Trace))
	}

	// Vertex validation goes through the store.
	if code := postJSON(t, "POST", ts.URL+"/route",
		RouteRequest{S: 0, T: 999}, nil); code != 400 {
		t.Fatalf("absent vertex accepted: %d", code)
	}

	// Swap file → generator: traces come back; file → file keeps working.
	var swapped GraphReply
	if code := postJSON(t, "PUT", ts.URL+"/graph",
		GraphSpec{Kind: "cycle", Size: 16}, &swapped); code != 200 {
		t.Fatalf("swap to generator: %d", code)
	}
	if code := postJSON(t, "POST", ts.URL+"/route",
		RouteRequest{S: 0, T: 8, Trace: true}, &rr); code != 200 {
		t.Fatalf("post-swap route: %d", code)
	}
	if !rr.Delivered || len(rr.Trace) == 0 || rr.Dist == 0 {
		t.Fatalf("generator-backed route lost trace/dist: %+v", rr)
	}
	if code := postJSON(t, "PUT", ts.URL+"/graph",
		GraphSpec{Path: path}, &swapped); code != 200 { // bare Path defaults to kind "file"
		t.Fatalf("swap back to file: %d", code)
	}
	if swapped.N != g.N() {
		t.Fatalf("swap back: n=%d, want %d", swapped.N, g.N())
	}
}

// TestFileDeploymentBadPath: a broken file spec must fail the build, not
// the daemon.
func TestFileDeploymentBadPath(t *testing.T) {
	if _, err := New(Config{Graph: GraphSpec{Kind: "file", Path: "/nonexistent.csr"}}); err == nil {
		t.Fatal("daemon booted on a missing graph file")
	}
	if _, err := (GraphSpec{Kind: "file"}).BuildStore(); err == nil {
		t.Fatal("kind file without a path accepted")
	}
	if _, err := (GraphSpec{Kind: "file", Path: "x.csr"}).Build(); err == nil {
		t.Fatal("Build materialized a file spec")
	}
}
