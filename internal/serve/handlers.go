package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"klocal/internal/engine"
	"klocal/internal/graph"
	"klocal/internal/metrics"
	"klocal/internal/sim"
	"klocal/internal/trace"
)

// RouteRequest is the JSON body of POST /route.
type RouteRequest struct {
	S graph.Vertex `json:"s"`
	T graph.Vertex `json:"t"`
	// Algo names the algorithm ("" = the daemon's default).
	Algo string `json:"algo,omitempty"`
	// Trace asks for the hop-by-hop annotation of the walk. Ignored on
	// store-backed (kind "file") deployments, where the full topology
	// needed to annotate hops is never materialized.
	Trace bool `json:"trace,omitempty"`
}

// RouteReply is the JSON body of a routed request — one element of a
// /batch reply, or the whole /route reply.
type RouteReply struct {
	// Rev identifies the graph generation that routed the request, so
	// clients (and the hot-swap test) can validate the walk against the
	// right topology. Epoch is the topology version (bumped by PUT and
	// PATCH /graph alike), the counter to correlate with GraphReply.Epoch.
	Rev       int64        `json:"rev"`
	Epoch     int64        `json:"epoch"`
	Algo      string       `json:"algo"`
	K         int          `json:"k"`
	S         graph.Vertex `json:"s"`
	T         graph.Vertex `json:"t"`
	Outcome   string       `json:"outcome"`
	Delivered bool         `json:"delivered"`
	Hops      int          `json:"hops"`
	Dist      int          `json:"dist"`
	// Stretch is hops/dist for delivered messages with dist > 0.
	Stretch   float64        `json:"stretch,omitempty"`
	LatencyNS int64          `json:"latency_ns"`
	Worker    int            `json:"worker"`
	Route     []graph.Vertex `json:"route"`
	Err       string         `json:"err,omitempty"`
	// Trace is the annotated walk, present when the request asked for it.
	Trace []trace.Hop `json:"trace,omitempty"`
}

// BatchRequest is the JSON body of POST /batch.
type BatchRequest struct {
	Pairs [][2]graph.Vertex `json:"pairs"`
	Algo  string            `json:"algo,omitempty"`
}

// BatchReply is the JSON body of a POST /batch response.
type BatchReply struct {
	Rev     int64        `json:"rev"`
	Epoch   int64        `json:"epoch"`
	Algo    string       `json:"algo"`
	Results []RouteReply `json:"results"`
}

// GraphReply is the JSON body of PUT, PATCH and GET /graph responses.
type GraphReply struct {
	Rev int64 `json:"rev"`
	// Epoch is the topology version counter: clients that PUT or PATCH
	// the graph read it back here and match it against the epoch echoed
	// in route replies to know which routes saw the new topology.
	Epoch int64     `json:"epoch"`
	Spec  GraphSpec `json:"spec"`
	N     int       `json:"n"`
	M     int       `json:"m"`
	Built time.Time `json:"built"`
	Algos []string  `json:"algos"`
}

// Handler returns the daemon's full HTTP surface:
//
//	POST /route          route one (s, t) pair, optional hop trace
//	POST /batch          route a batch of pairs in order
//	PUT  /graph          hot-swap the topology (GraphSpec body)
//	PATCH /graph         apply incremental deltas (DeltaRequest body)
//	GET  /graph          describe the current generation
//	GET  /metrics        live merged metrics (text; ?format=json)
//	GET  /healthz        process liveness
//	GET  /readyz         serving readiness (503 while draining)
//	     /debug/pprof/   net/http/pprof
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("PUT /graph", s.handleSwap)
	mux.HandleFunc("PATCH /graph", s.handleDelta)
	mux.HandleFunc("GET /graph", s.handleGraph)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorReply struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		s.httpRejections.Add(1)
	}
	writeJSON(w, status, errorReply{Error: err.Error()})
}

// reply converts an engine response into the wire form, tracing the walk
// against the deployment's own graph when asked.
func (d *deployment) reply(ae *algEngine, resp engine.Response, withTrace bool) RouteReply {
	res := resp.Result
	rr := RouteReply{
		Rev:       d.rev,
		Epoch:     d.epoch,
		Algo:      ae.name,
		K:         ae.snap.K(),
		S:         resp.S,
		T:         resp.T,
		Outcome:   res.Outcome.String(),
		Delivered: res.Outcome == sim.Delivered,
		Hops:      res.Len(),
		Dist:      res.Dist,
		LatencyNS: resp.Latency.Nanoseconds(),
		Worker:    resp.Worker,
		Route:     res.Route,
	}
	if rr.Delivered && res.Dist > 0 {
		rr.Stretch = res.Dilation()
	}
	if res.Err != nil {
		rr.Err = res.Err.Error()
	}
	if withTrace && d.g != nil {
		rr.Trace = trace.RouteHops(d.g, res.Route, resp.T)
	}
	return rr
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	s.httpRequests.Add(1)
	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	d, err := s.current()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	defer d.release()
	if !d.st.HasVertex(req.S) || !d.st.HasVertex(req.T) {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("vertex pair (%d, %d) not in graph rev %d", req.S, req.T, d.rev))
		return
	}
	ae, err := d.engineFor(req.Algo)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	resp, err := ae.eng.Do(engine.Request{S: req.S, T: req.T}, s.cfg.AdmissionBudget)
	switch {
	case errors.Is(err, engine.ErrSaturated):
		s.fail(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, d.reply(ae, resp, req.Trace))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.httpRequests.Add(1)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Pairs) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	d, err := s.current()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	defer d.release()
	ae, err := d.engineFor(req.Algo)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	reqs := make([]engine.Request, len(req.Pairs))
	for i, p := range req.Pairs {
		if !d.st.HasVertex(p[0]) || !d.st.HasVertex(p[1]) {
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("pair %d: (%d, %d) not in graph rev %d", i, p[0], p[1], d.rev))
			return
		}
		reqs[i] = engine.Request{S: p[0], T: p[1]}
	}
	resps, err := ae.eng.DoBatch(reqs, s.cfg.AdmissionBudget)
	switch {
	case errors.Is(err, engine.ErrSaturated):
		s.fail(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	br := BatchReply{Rev: d.rev, Epoch: d.epoch, Algo: ae.name, Results: make([]RouteReply, len(resps))}
	for i, resp := range resps {
		br.Results[i] = d.reply(ae, resp, false)
	}
	writeJSON(w, http.StatusOK, br)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad graph spec: %w", err))
		return
	}
	nd, err := s.Swap(spec)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.describe(nd))
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	d, err := s.current()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	defer d.release()
	writeJSON(w, http.StatusOK, s.describe(d))
}

func (s *Server) describe(d *deployment) GraphReply {
	return GraphReply{
		Rev:   d.rev,
		Epoch: d.epoch,
		Spec:  d.spec,
		N:     d.st.N(),
		M:     d.st.M(),
		Built: d.built,
		Algos: d.algs,
	}
}

// MetricsReply is the JSON body of GET /metrics?format=json.
type MetricsReply struct {
	// Rev is the current generation (0 after Drain).
	Rev int64 `json:"rev"`
	// HTTPRequests counts routing requests accepted at the HTTP layer
	// (/route and /batch calls, not individual batch pairs).
	HTTPRequests int64 `json:"http_requests"`
	// HTTPRejections counts 429 admission rejections.
	HTTPRejections int64 `json:"http_rejections"`
	// Algorithms maps each algorithm to its cumulative report — retired
	// generations folded with a live snapshot of the current one, so the
	// counters reconcile exactly with the responses served so far.
	Algorithms map[string]*metrics.Report `json:"algorithms"`
}

// snapshotMetrics assembles the live cumulative view. It never blocks a
// routing worker: live shards are read via metrics.MergeShardsLive.
func (s *Server) snapshotMetrics() MetricsReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	out := MetricsReply{
		HTTPRequests:   s.httpRequests.Load(),
		HTTPRejections: s.httpRejections.Load(),
		Algorithms:     make(map[string]*metrics.Report),
	}
	if d := s.cur.Load(); d != nil {
		out.Rev = d.rev
	}
	for _, name := range s.cfg.Algorithms {
		sh := s.retired[name].Clone()
		var cur *algEngine
		var curRev int64
		for _, d := range s.live {
			ae, ok := d.byAlg[name]
			if !ok {
				continue
			}
			sh = metrics.MergeShardsLive(sh, ae.eng.LiveShard())
			if d.rev > curRev {
				cur, curRev = ae, d.rev
			}
		}
		rep := sh.Snapshot()
		rep.Name = fmt.Sprintf("klocald %s", name)
		if reqs := rep.Counter("requests"); reqs > 0 {
			rep.Put("delivery_rate", float64(rep.Counter("delivered"))/float64(reqs))
		}
		if h, ok := rep.Histograms["stretch_milli"]; ok {
			rep.Put("stretch_max", float64(h.Max)/1000)
			rep.Put("stretch_p99", h.P99/1000)
			rep.Put("stretch_mean", h.Mean/1000)
		}
		if cur != nil {
			rep.Put("rev", float64(curRev))
			cs := cur.snap.CacheStats()
			rep.Put("cache_size", float64(cs.Size))
			if cs.Hits+cs.Misses > 0 {
				rep.Put("cache_hit_rate", cs.HitRate())
			}
			// Interval rate gauges: deltas since the previous scrape of the
			// same generation (CacheStats.Delta clamps across a swap, where
			// the fresh cache's counters restart below the old baseline).
			prev := s.lastScrape[name]
			if !prev.at.IsZero() {
				if secs := now.Sub(prev.at).Seconds(); secs > 0 {
					dc := cs.Delta(prev.cache)
					rep.Put("interval_s", secs)
					rep.Put("cache_hits_per_s", float64(dc.Hits)/secs)
					rep.Put("cache_misses_per_s", float64(dc.Misses)/secs)
					if dr := rep.Counter("requests") - prev.reqs; dr > 0 {
						rep.Put("requests_per_s", float64(dr)/secs)
					}
				}
			}
			s.lastScrape[name] = scrapePoint{
				at: now, rev: curRev, cache: cs, reqs: rep.Counter("requests"),
			}
		}
		out.Algorithms[name] = rep
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshotMetrics()
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, m)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "rev                      %d\n", m.Rev)
	fmt.Fprintf(w, "http_requests            %d\n", m.HTTPRequests)
	fmt.Fprintf(w, "http_rejections          %d\n", m.HTTPRejections)
	for _, name := range s.cfg.Algorithms {
		if rep, ok := m.Algorithms[name]; ok {
			fmt.Fprintln(w)
			rep.WriteText(w)
		}
	}
}
