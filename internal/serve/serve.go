// Package serve turns the batch traffic engine into a standing routing
// service: klocald loads a topology, binds one engine per algorithm
// over shared preprocessed snapshots, and serves routing queries over
// HTTP with live observability.
//
// The pieces:
//
//   - deployment: one immutable generation of the service — a graph, a
//     Snapshot and a running Engine per configured algorithm, and a
//     monotonically increasing revision. The current deployment hangs
//     behind an atomic.Pointer; request handlers acquire it with a
//     refcount so PUT /graph can swap atomically and drain the old
//     generation without a stop-the-world.
//
//   - live metrics: /metrics reads engine shards via
//     metrics.MergeShardsLive — per-shard-consistent copies taken under
//     the shard locks — so scraping never quiesces a routing worker.
//     Metrics of drained (retired) deployments fold into a cumulative
//     shard under the server mutex in the same critical section that
//     unregisters them, so totals never double- or under-count a
//     generation.
//
//   - admission control: handlers route through Engine.Do with a
//     configurable queue-wait budget; when the bounded queue stays full
//     past it, the request is rejected with 429 instead of piling onto
//     an unbounded backlog.
//
// See DESIGN.md §9 for the swap protocol and the concurrency contract.
package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"klocal/internal/bigraph"
	"klocal/internal/engine"
	"klocal/internal/graph"
	"klocal/internal/metrics"
	"klocal/internal/prep"
)

// Config tunes the daemon.
type Config struct {
	// Graph is the initial topology.
	Graph GraphSpec
	// Algorithms lists the Table 2 algorithms to bind (alg1|alg1b|alg2|
	// alg3); empty means ["alg2"]. The first entry is the default for
	// requests that do not name one.
	Algorithms []string
	// K is the locality parameter (0 = each algorithm's own threshold).
	K int
	// Workers sizes each algorithm's routing pool (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds each engine's request queue (0 = 4 × workers).
	QueueDepth int
	// MaxSteps bounds each walk (0 = the simulator's default budget).
	MaxSteps int
	// AdmissionBudget is how long a request may wait for a queue slot
	// before it is rejected with 429 (0 = wait indefinitely).
	AdmissionBudget time.Duration
	// CacheCapacity bounds each snapshot's preprocessed-view cache
	// (0 = unbounded).
	CacheCapacity int
	// Prewarm computes every vertex's view at deployment build time.
	Prewarm bool
}

func (c Config) withDefaults() Config {
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{"alg2"}
	}
	return c
}

// algEngine is one algorithm's snapshot and running worker pool inside
// a deployment.
type algEngine struct {
	name string
	snap *engine.Snapshot
	eng  *engine.Engine
}

// deployment is one immutable generation of the service. Handlers hold
// it via acquire/release; a swap drains the refcount before closing the
// engines, so no request ever observes a half-built or half-torn-down
// generation.
type deployment struct {
	rev int64
	// epoch is the topology version this generation serves: bumped by
	// every PUT /graph rebuild and every PATCH /graph delta batch, and
	// echoed in route replies so clients can correlate a walk with the
	// exact topology that produced it. rev counts deployment objects;
	// epoch counts topology versions (today they advance together, but
	// the contract is per-topology, not per-build).
	epoch int64
	spec  GraphSpec
	// st is the topology every engine routes over; g is the same value
	// when the spec built a materialized *graph.Graph, and nil for
	// store-backed (kind "file") generations, where hop traces and exact
	// distances are degraded away.
	st    bigraph.Store
	g     *graph.Graph
	built time.Time
	algs  []string
	byAlg map[string]*algEngine

	// state packs the refcount and the draining flag into one atomic
	// word: refs<<1 | drainBit. A single CAS'd word closes the window
	// the old two-atomics scheme left open between reading the refcount
	// and reading the flag: an acquire either lands strictly before the
	// drain bit (the drainer then sees its reference and waits for it)
	// or observes the bit and never registers — so a drain can neither
	// return early with a request in flight nor be signalled twice by a
	// release racing a concurrent swap's retire.
	state   atomic.Int64
	drained chan struct{}
	once    sync.Once
}

const drainBit = int64(1)
const refUnit = int64(2)

// acquire registers an in-flight request. It fails when the deployment
// is already draining (the caller should reload the current pointer),
// and a failed acquire is never visible to the drainer.
func (d *deployment) acquire() bool {
	for {
		s := d.state.Load()
		if s&drainBit != 0 {
			return false
		}
		if d.state.CompareAndSwap(s, s+refUnit) {
			return true
		}
	}
}

// release unregisters an in-flight request, signalling the drainer when
// it was the last one out. Releasing more than acquired is a refcount
// corruption that would otherwise let a drain return with requests
// still running — fail loudly instead.
func (d *deployment) release() {
	s := d.state.Add(-refUnit)
	if s < 0 {
		panic("serve: deployment released more times than acquired")
	}
	if s == drainBit {
		d.signal()
	}
}

func (d *deployment) signal() { d.once.Do(func() { close(d.drained) }) }

// drain marks the deployment draining and blocks until every in-flight
// request has released it.
func (d *deployment) drain() {
	for {
		s := d.state.Load()
		if s&drainBit != 0 {
			break // already draining (idempotent under swapMu)
		}
		if d.state.CompareAndSwap(s, s|drainBit) {
			if s == 0 {
				d.signal()
			}
			break
		}
	}
	<-d.drained
}

// engineFor resolves the algorithm parameter ("" = the default, i.e.
// the first configured algorithm).
func (d *deployment) engineFor(name string) (*algEngine, error) {
	if name == "" {
		name = d.algs[0]
	}
	ae, ok := d.byAlg[name]
	if !ok {
		return nil, fmt.Errorf("algorithm %q not deployed (have %v)", name, d.algs)
	}
	return ae, nil
}

// Server is the routing daemon: an HTTP handler set over a swappable
// deployment.
type Server struct {
	cfg     Config
	nextRev atomic.Int64
	// epoch is the monotonically increasing topology version; see
	// deployment.epoch.
	epoch   atomic.Int64
	cur     atomic.Pointer[deployment]
	stopped atomic.Bool

	// mu guards the deployment registry and the retired metrics fold.
	// Invariant: every deployment is either in live (still counting) or
	// folded into retired (closed) — never both, never neither — so
	// /metrics totals reconcile exactly with the responses served.
	mu      sync.Mutex
	live    map[int64]*deployment
	retired map[string]*metrics.Shard
	// swapMu serializes PUT /graph (builds are expensive; concurrent
	// swaps would drain each other's generations out from under them).
	swapMu sync.Mutex
	// scrape state for interval rate gauges.
	lastScrape     map[string]scrapePoint
	httpRequests   atomic.Int64
	httpRejections atomic.Int64
}

// scrapePoint remembers one algorithm's counters at the previous
// /metrics scrape, for delta-based rate gauges.
type scrapePoint struct {
	at    time.Time
	rev   int64
	cache prep.CacheStats
	reqs  int64
}

// New builds a server and its initial deployment (including prewarm
// when configured) — the daemon is ready to serve when New returns.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		live:       make(map[int64]*deployment),
		retired:    make(map[string]*metrics.Shard),
		lastScrape: make(map[string]scrapePoint),
	}
	for _, name := range cfg.Algorithms {
		s.retired[name] = metrics.NewShard()
	}
	d, err := s.buildDeployment(cfg.Graph)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.live[d.rev] = d
	s.mu.Unlock()
	s.cur.Store(d)
	return s, nil
}

// buildDeployment constructs a full generation for spec: the graph and
// one snapshot + engine per configured algorithm.
func (s *Server) buildDeployment(spec GraphSpec) (*deployment, error) {
	st, err := spec.BuildStore()
	if err != nil {
		return nil, err
	}
	g, _ := st.(*graph.Graph) // nil for store-backed (file) topologies
	ok := false
	defer func() {
		if !ok {
			closeStore(st) // builds can fail per-algorithm; don't leak the mapping
		}
	}()
	d := &deployment{
		rev:     s.nextRev.Add(1),
		epoch:   s.epoch.Add(1),
		spec:    spec.withDefaults(),
		st:      st,
		g:       g,
		built:   time.Now(),
		byAlg:   make(map[string]*algEngine),
		drained: make(chan struct{}),
	}
	for _, name := range s.cfg.Algorithms {
		alg, err := AlgorithmByName(name)
		if err != nil {
			return nil, err
		}
		opts := engine.SnapshotOptions{Cache: prep.CacheOptions{Capacity: s.cfg.CacheCapacity}}
		if s.cfg.Prewarm {
			opts.Prewarm = -1
		}
		snap, err := engine.NewSnapshotStore(st, s.cfg.K, alg, opts)
		if err != nil {
			return nil, err
		}
		eng := engine.New(snap, engine.Config{
			Workers:    s.cfg.Workers,
			QueueDepth: s.cfg.QueueDepth,
			MaxSteps:   s.cfg.MaxSteps,
		})
		d.algs = append(d.algs, name)
		d.byAlg[name] = &algEngine{name: name, snap: snap, eng: eng}
	}
	ok = true
	return d, nil
}

// closeStore releases a deployment's topology backing (the mmap of a
// file-backed CSR); materialized graphs are not closers and are left to
// the garbage collector.
func closeStore(st bigraph.Store) {
	if c, ok := st.(io.Closer); ok {
		_ = c.Close()
	}
}

// current returns the live deployment with a reference held, retrying
// across a concurrent swap. Callers must release it.
func (s *Server) current() (*deployment, error) {
	for {
		if s.stopped.Load() {
			return nil, fmt.Errorf("server stopping")
		}
		d := s.cur.Load()
		if d == nil {
			return nil, fmt.Errorf("no deployment")
		}
		if d.acquire() {
			return d, nil
		}
	}
}

// Swap builds a deployment for spec, atomically publishes it, drains
// the previous generation's in-flight requests, closes its engines, and
// folds their final metrics into the cumulative totals. Requests keep
// flowing throughout: they land on whichever generation they acquired.
func (s *Server) Swap(spec GraphSpec) (*deployment, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.stopped.Load() {
		return nil, fmt.Errorf("server stopping")
	}
	nd, err := s.buildDeployment(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.live[nd.rev] = nd
	s.mu.Unlock()
	old := s.cur.Swap(nd)
	if old != nil {
		s.retire(old)
	}
	return nd, nil
}

// retire drains old, closes its engines, and folds their metrics into
// the cumulative shard in the same critical section that removes the
// deployment from the live registry — the no-double-count invariant.
func (s *Server) retire(old *deployment) {
	old.drain()
	for _, ae := range old.byAlg {
		ae.eng.Close()
	}
	closeStore(old.st) // safe: the drain means no request can touch it again
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, ae := range old.byAlg {
		s.retired[name] = metrics.MergeShards(s.retired[name], ae.eng.LiveShard())
	}
	delete(s.live, old.rev)
}

// Drain stops intake (readyz flips to 503, handlers refuse new work),
// drains the current deployment, and closes its engines. Call it after
// the HTTP listener has shut down; FinalReports is valid afterwards.
// Idempotent.
func (s *Server) Drain() {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	if old := s.cur.Swap(nil); old != nil {
		s.retire(old)
	}
}

// Ready reports whether the daemon is accepting routing work.
func (s *Server) Ready() bool {
	return !s.stopped.Load() && s.cur.Load() != nil
}

// FinalReports renders one final merged report per algorithm — the
// shutdown summary klocald prints after Drain. Each report carries the
// cumulative counters across every generation served.
func (s *Server) FinalReports() []*metrics.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*metrics.Report
	for _, name := range s.cfg.withDefaults().Algorithms {
		sh := s.retired[name]
		// Any still-live generation (Drain not called) merges in live.
		for _, d := range s.live {
			if ae, ok := d.byAlg[name]; ok {
				sh = metrics.MergeShards(sh, ae.eng.LiveShard())
			}
		}
		rep := sh.Snapshot()
		rep.Name = fmt.Sprintf("klocald %s final", name)
		if reqs := rep.Counter("requests"); reqs > 0 {
			rep.Put("delivery_rate", float64(rep.Counter("delivered"))/float64(reqs))
		}
		if h, ok := rep.Histograms["stretch_milli"]; ok {
			rep.Put("stretch_max", float64(h.Max)/1000)
			rep.Put("stretch_p99", h.P99/1000)
			rep.Put("stretch_mean", h.Mean/1000)
		}
		out = append(out, rep)
	}
	return out
}
