package serve

import (
	"fmt"
	"net/http"
	"time"

	"encoding/json"

	"klocal/internal/churn"
	"klocal/internal/engine"
	"klocal/internal/graph"
)

// This file is PATCH /graph: incremental topology deltas. Where PUT
// rebuilds the whole generation (graph construction, full preprocessing,
// optional prewarm), PATCH applies a churn.Delta batch copy-on-write and
// derives the next generation from the current one — every algorithm's
// snapshot adopts the cached views outside the dirty k-ball of the
// touched endpoints (engine.Snapshot.Incremental → prep.Derive) and
// recomputes only the dirty ones, lazily. The new generation is
// published through the same refcounted pointer swap as PUT, so there is
// no drain in front of new traffic: requests that already acquired the
// old generation finish on its consistent (graph, views) pair while new
// requests route on the new epoch immediately.

// DeltaSpec is one topology mutation in the PATCH /graph wire format.
type DeltaSpec struct {
	// Op is add-edge | remove-edge | add-vertex | remove-vertex.
	Op string       `json:"op"`
	U  graph.Vertex `json:"u"`
	V  graph.Vertex `json:"v,omitempty"`
}

// Delta converts the wire form to the churn op.
func (ds DeltaSpec) Delta() (churn.Delta, error) {
	var op churn.Op
	switch ds.Op {
	case "add-edge":
		op = churn.AddEdge
	case "remove-edge":
		op = churn.RemoveEdge
	case "add-vertex":
		op = churn.AddVertex
	case "remove-vertex":
		op = churn.RemoveVertex
	default:
		return churn.Delta{}, fmt.Errorf("unknown delta op %q (add-edge|remove-edge|add-vertex|remove-vertex)", ds.Op)
	}
	return churn.Delta{Op: op, U: ds.U, V: ds.V}, nil
}

// DeltaRequest is the JSON body of PATCH /graph.
type DeltaRequest struct {
	Deltas []DeltaSpec `json:"deltas"`
}

// DeltaReply is the JSON body of a PATCH /graph response: the new
// generation plus the cost of getting there.
type DeltaReply struct {
	GraphReply
	// Applied is the number of deltas applied (all-or-nothing).
	Applied int `json:"applied"`
	// Dirty is the size of the k-radius dirty set: how many vertices had
	// their cached views invalidated. Everything else survived the swap.
	Dirty int `json:"dirty"`
	// ApplyNS is the wall time to apply the batch and publish the new
	// generation (excluding the background drain of the old one).
	ApplyNS int64 `json:"apply_ns"`
}

// ApplyDeltas applies a validated churn batch to the current topology
// and publishes the derived generation. It returns the new deployment
// and the dirty-set size. The batch is all-or-nothing: any invalid
// delta rejects the whole request and the current generation is
// untouched.
func (s *Server) ApplyDeltas(deltas []churn.Delta) (*deployment, int, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.stopped.Load() {
		return nil, 0, fmt.Errorf("server stopping")
	}
	cur := s.cur.Load()
	if cur == nil {
		return nil, 0, fmt.Errorf("no deployment")
	}
	if cur.g == nil {
		return nil, 0, fmt.Errorf("incremental deltas need a materialized graph; generation rev %d is store-backed", cur.rev)
	}
	// One dirty set at the largest deployed locality: algorithms bound at
	// smaller k re-derive a few views they could have kept, which is
	// over-invalidation (safe), never under.
	kmax := 1
	for _, ae := range cur.byAlg {
		if k := ae.snap.K(); k > kmax {
			kmax = k
		}
	}
	post, dirty, err := churn.ApplyAll(cur.g, deltas, kmax)
	if err != nil {
		return nil, 0, err
	}
	if post.N() == 0 {
		return nil, 0, fmt.Errorf("delta batch would empty the graph")
	}
	nd := &deployment{
		rev:     s.nextRev.Add(1),
		epoch:   s.epoch.Add(1),
		spec:    cur.spec, // provenance only; N/M are read from the store
		st:      post,
		g:       post,
		built:   time.Now(),
		byAlg:   make(map[string]*algEngine),
		drained: make(chan struct{}),
	}
	for _, name := range cur.algs {
		ae := cur.byAlg[name]
		snap, err := ae.snap.Incremental(post, dirty)
		if err != nil {
			return nil, 0, err
		}
		eng := engine.New(snap, engine.Config{
			Workers:    s.cfg.Workers,
			QueueDepth: s.cfg.QueueDepth,
			MaxSteps:   s.cfg.MaxSteps,
		})
		nd.algs = append(nd.algs, name)
		nd.byAlg[name] = &algEngine{name: name, snap: snap, eng: eng}
	}
	s.mu.Lock()
	s.live[nd.rev] = nd
	s.mu.Unlock()
	old := s.cur.Swap(nd)
	if old != nil {
		s.retire(old)
	}
	return nd, len(dirty), nil
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad delta body: %w", err))
		return
	}
	if len(req.Deltas) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty delta batch"))
		return
	}
	deltas := make([]churn.Delta, len(req.Deltas))
	for i, ds := range req.Deltas {
		d, err := ds.Delta()
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("delta %d: %w", i, err))
			return
		}
		deltas[i] = d
	}
	start := time.Now()
	nd, dirty, err := s.ApplyDeltas(deltas)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, DeltaReply{
		GraphReply: s.describe(nd),
		Applied:    len(deltas),
		Dirty:      dirty,
		ApplyNS:    time.Since(start).Nanoseconds(),
	})
}
