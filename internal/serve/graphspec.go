package serve

import (
	"fmt"
	"math/rand"

	"klocal/internal/bigraph"
	"klocal/internal/gen"
	"klocal/internal/graph"
	"klocal/internal/route"
)

// GraphSpec describes a topology the daemon can build — one of the
// named generators (the same family cmd/loadgen exposes), an explicit
// edge list, or a graph file on disk (kind "file"). It is the JSON body
// of PUT /graph and the parsed form of klocald's -graph/-size/-seed/-p
// and -graph-file flags.
type GraphSpec struct {
	// Kind selects the generator: lollipop|cycle|path|grid|spider|wheel|
	// barbell|complete|random|tree, "edges" for an explicit topology, or
	// "file" for an on-disk graph (see Path). Empty means lollipop, or
	// "file" when Path is set.
	Kind string `json:"kind,omitempty"`
	// Size is the number of nodes for generated topologies (default 48).
	Size int `json:"size,omitempty"`
	// Seed drives the random generators (default 1).
	Seed int64 `json:"seed,omitempty"`
	// P is the extra-edge probability for Kind "random" (default 0.1).
	P float64 `json:"p,omitempty"`
	// Edges is the explicit topology for Kind "edges" (or whenever
	// non-empty): pairs of vertex labels. The graph must be connected.
	Edges [][2]int64 `json:"edges,omitempty"`
	// Path is the on-disk graph for Kind "file": a binary ".csr" file
	// (mmap'd — the million-node path, see DESIGN.md §12) or an edge
	// list (".txt", ".txt.gz"). File topologies deploy store-backed:
	// routing works as usual but hop traces and exact s–t distances
	// (stretch) are unavailable.
	Path string `json:"path,omitempty"`
}

// withDefaults fills the zero values.
func (sp GraphSpec) withDefaults() GraphSpec {
	if sp.Kind == "" {
		switch {
		case sp.Path != "":
			sp.Kind = "file"
		case len(sp.Edges) > 0:
			sp.Kind = "edges"
		default:
			sp.Kind = "lollipop"
		}
	}
	if sp.Size <= 0 {
		sp.Size = 48
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.P <= 0 {
		sp.P = 0.1
	}
	return sp
}

// String renders the spec for logs and report names.
func (sp GraphSpec) String() string {
	sp = sp.withDefaults()
	switch sp.Kind {
	case "edges":
		return fmt.Sprintf("edges(m=%d)", len(sp.Edges))
	case "file":
		return fmt.Sprintf("file(%s)", sp.Path)
	}
	return fmt.Sprintf("%s(n=%d seed=%d)", sp.Kind, sp.Size, sp.Seed)
}

// BuildStore constructs the graph store the spec describes: a loaded
// (mmap'd when possible) CSR for Kind "file", a materialized
// *graph.Graph for every generator kind. File topologies skip the
// connectivity check — a full-graph BFS at every deploy defeats the
// point of the mmap path; csrgen-produced families are connected by
// construction.
func (sp GraphSpec) BuildStore() (bigraph.Store, error) {
	sp = sp.withDefaults()
	if sp.Kind == "file" {
		if sp.Path == "" {
			return nil, fmt.Errorf("serve: kind \"file\" needs a path")
		}
		return bigraph.LoadFile(sp.Path)
	}
	g, err := sp.Build()
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Build constructs the (deterministic) graph the spec describes. Kind
// "file" has no materialized graph — use BuildStore.
func (sp GraphSpec) Build() (*graph.Graph, error) {
	sp = sp.withDefaults()
	if sp.Kind == "file" {
		return nil, fmt.Errorf("serve: kind \"file\" is store-backed; use BuildStore")
	}
	if sp.Kind != "edges" && sp.Size < 2 {
		return nil, fmt.Errorf("serve: graph size %d too small", sp.Size)
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	var g *graph.Graph
	switch sp.Kind {
	case "edges":
		if len(sp.Edges) == 0 {
			return nil, fmt.Errorf("serve: kind \"edges\" needs a non-empty edge list")
		}
		b := graph.NewBuilder()
		for _, e := range sp.Edges {
			if e[0] == e[1] {
				return nil, fmt.Errorf("serve: self-loop {%d, %d} rejected", e[0], e[1])
			}
			b.AddEdge(graph.Vertex(e[0]), graph.Vertex(e[1]))
		}
		g = b.Build()
	case "lollipop":
		g = gen.Lollipop(sp.Size-sp.Size/3, sp.Size/3)
	case "cycle":
		g = gen.Cycle(sp.Size)
	case "path":
		g = gen.Path(sp.Size)
	case "grid":
		side := 1
		for side*side < sp.Size {
			side++
		}
		g = gen.Grid(side, side)
	case "spider":
		g = gen.Spider(4, (sp.Size-1)/4)
	case "wheel":
		g = gen.Wheel(sp.Size)
	case "barbell":
		c := (sp.Size - 2) / 2
		g = gen.Barbell(c, sp.Size-2*c)
	case "complete":
		g = gen.Complete(sp.Size)
	case "random":
		g = gen.RandomConnected(rng, sp.Size, sp.P)
	case "tree":
		g = gen.RandomTree(rng, sp.Size)
	default:
		return nil, fmt.Errorf("serve: unknown graph kind %q", sp.Kind)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("serve: %s is not connected", sp)
	}
	return g, nil
}

// AlgorithmByName resolves one of the paper's Table 2 algorithms.
func AlgorithmByName(name string) (route.Algorithm, error) {
	switch name {
	case "alg1":
		return route.Algorithm1(), nil
	case "alg1b":
		return route.Algorithm1B(), nil
	case "alg2":
		return route.Algorithm2(), nil
	case "alg3":
		return route.Algorithm3(), nil
	default:
		return route.Algorithm{}, fmt.Errorf("serve: unknown algorithm %q (alg1|alg1b|alg2|alg3)", name)
	}
}

// DilationBound returns the paper's dilation guarantee for a Table 2
// algorithm at or above its threshold (Theorems 5–8), or 0 when no
// finite bound applies.
func DilationBound(name string) float64 {
	switch name {
	case "alg1":
		return 7
	case "alg1b":
		return 6
	case "alg2":
		return 3
	case "alg3":
		return 1
	default:
		return 0
	}
}
