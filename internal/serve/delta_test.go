package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"klocal/internal/churn"
	"klocal/internal/graph"
)

func TestPatchGraphDeltas(t *testing.T) {
	// K is pinned small: at the default threshold locality (k ~ n/3) the
	// radius-k balls of a delta's endpoints cover this whole graph and the
	// "dirty < n" locality assertion below would be vacuous.
	s, err := New(Config{Graph: GraphSpec{Kind: "cycle", Size: 40}, K: 3, Algorithms: []string{"alg2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var g0 GraphReply
	if code := postJSON(t, http.MethodGet, ts.URL+"/graph", nil, &g0); code != http.StatusOK {
		t.Fatalf("GET /graph: %d", code)
	}
	if g0.Epoch == 0 {
		t.Fatal("initial generation reports epoch 0")
	}

	// A chord plus a cut: the incremental path must apply both, bump the
	// epoch, and invalidate strictly fewer views than n.
	var dr DeltaReply
	code := postJSON(t, http.MethodPatch, ts.URL+"/graph", DeltaRequest{Deltas: []DeltaSpec{
		{Op: "add-edge", U: 0, V: 10},
		{Op: "remove-edge", U: 5, V: 6},
	}}, &dr)
	if code != http.StatusOK {
		t.Fatalf("PATCH /graph: %d", code)
	}
	if dr.Epoch != g0.Epoch+1 {
		t.Fatalf("PATCH epoch = %d, want %d", dr.Epoch, g0.Epoch+1)
	}
	if dr.Applied != 2 || dr.Dirty == 0 || dr.Dirty >= g0.N {
		t.Fatalf("PATCH applied=%d dirty=%d n=%d: dirty set must be non-empty and local", dr.Applied, dr.Dirty, g0.N)
	}
	if dr.N != g0.N || dr.M != g0.M {
		t.Fatalf("PATCH n=%d m=%d, want n=%d m=%d", dr.N, dr.M, g0.N, g0.M)
	}

	// Routes served after the PATCH carry the new epoch and use the new
	// topology: 0 and 10 are now adjacent.
	var rr RouteReply
	if code := postJSON(t, http.MethodPost, ts.URL+"/route", RouteRequest{S: 0, T: 10}, &rr); code != http.StatusOK {
		t.Fatalf("POST /route: %d", code)
	}
	if rr.Epoch != dr.Epoch {
		t.Fatalf("route epoch = %d, want %d", rr.Epoch, dr.Epoch)
	}
	if !rr.Delivered {
		t.Fatalf("route 0->10 failed after adding the edge: %+v", rr)
	}

	// Vertex arrival then an edge to it.
	code = postJSON(t, http.MethodPatch, ts.URL+"/graph", DeltaRequest{Deltas: []DeltaSpec{
		{Op: "add-vertex", U: 100},
		{Op: "add-edge", U: 100, V: 0},
	}}, &dr)
	if code != http.StatusOK || dr.N != g0.N+1 {
		t.Fatalf("vertex arrival: code=%d n=%d", code, dr.N)
	}

	// Invalid batches are all-or-nothing: nothing applied, epoch parked.
	before := dr.Epoch
	if code := postJSON(t, http.MethodPatch, ts.URL+"/graph", DeltaRequest{Deltas: []DeltaSpec{
		{Op: "add-edge", U: 1, V: 2},
		{Op: "remove-edge", U: 40, V: 41},
	}}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid batch: code=%d, want 400", code)
	}
	if code := postJSON(t, http.MethodPatch, ts.URL+"/graph", DeltaRequest{Deltas: []DeltaSpec{
		{Op: "frobnicate", U: 1, V: 2},
	}}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown op: code=%d, want 400", code)
	}
	if code := postJSON(t, http.MethodPatch, ts.URL+"/graph", DeltaRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: code=%d, want 400", code)
	}
	var g1 GraphReply
	postJSON(t, http.MethodGet, ts.URL+"/graph", nil, &g1)
	if g1.Epoch != before {
		t.Fatalf("rejected batches moved the epoch: %d -> %d", before, g1.Epoch)
	}

	// PUT still bumps the same counter.
	var g2 GraphReply
	if code := postJSON(t, http.MethodPut, ts.URL+"/graph", GraphSpec{Kind: "grid", Size: 16}, &g2); code != http.StatusOK {
		t.Fatalf("PUT /graph: %d", code)
	}
	if g2.Epoch != before+1 {
		t.Fatalf("PUT epoch = %d, want %d", g2.Epoch, before+1)
	}
}

// TestPatchUnderLoad drives routing traffic while PATCH deltas flap a
// chord on and off: every response must come from a coherent generation
// (no 5xx), and the server must end healthy.
func TestPatchUnderLoad(t *testing.T) {
	s, err := New(Config{Graph: GraphSpec{Kind: "cycle", Size: 24}, Algorithms: []string{"alg2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pair := [2]int64{int64(w), int64(w + 12)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				var rr RouteReply
				code := postJSON(t, http.MethodPost, ts.URL+"/route",
					RouteRequest{S: graph.Vertex(pair[0]), T: graph.Vertex(pair[1])}, &rr)
				if code != http.StatusOK {
					t.Errorf("route during churn: %d", code)
					return
				}
			}
		}(w)
	}
	on := false
	for i := 0; i < 25; i++ {
		op := "add-edge"
		if on {
			op = "remove-edge"
		}
		var dr DeltaReply
		if code := postJSON(t, http.MethodPatch, ts.URL+"/graph", DeltaRequest{Deltas: []DeltaSpec{
			{Op: op, U: 0, V: 12},
		}}, &dr); code != http.StatusOK {
			t.Fatalf("PATCH %d (%s): %d", i, op, code)
		}
		on = !on
	}
	close(stop)
	wg.Wait()
}

// ErrsToChurn sanity-checks the wire op mapping stays total.
func TestDeltaSpecMapping(t *testing.T) {
	for _, op := range []string{"add-edge", "remove-edge", "add-vertex", "remove-vertex"} {
		d, err := DeltaSpec{Op: op, U: 1, V: 2}.Delta()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if d.String() == "" {
			t.Fatalf("%s: empty string form", op)
		}
	}
	if _, err := (DeltaSpec{Op: "nope"}).Delta(); err == nil {
		t.Fatal("unknown op accepted")
	}
	// The churn sentinel errors surface through ApplyDeltas.
	if _, ok := interface{}(churn.ErrEdgeMissing).(error); !ok {
		t.Fatal("churn error type")
	}
}
