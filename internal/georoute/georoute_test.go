package georoute

import (
	"math/rand"
	"testing"

	"klocal/internal/geom"
	"klocal/internal/sim"
)

func TestGreedyDeliversOnDenseUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pos := geom.RandomPoints(rng, 40)
	g := geom.UnitDiskGraph(pos, 0.5) // dense: greedy should mostly work
	if !g.Connected() {
		t.Skip("sparse draw")
	}
	emb, err := geom.NewEmbedding(g, pos)
	if err != nil {
		t.Fatal(err)
	}
	alg := Greedy(emb)
	f := alg.Bind(g, 1)
	delivered := 0
	vs := g.Vertices()
	for i := 0; i < 60; i++ {
		s := vs[rng.Intn(len(vs))]
		dst := vs[rng.Intn(len(vs))]
		if s == dst {
			continue
		}
		res := sim.Run(g, sim.Func(f), s, dst, sim.Options{DetectLoops: true})
		if res.Outcome == sim.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Error("greedy should deliver on most dense-UDG pairs")
	}
}

func TestGreedyTrapDefeatsGreedyAndCompass(t *testing.T) {
	trap := GreedyTrap()
	g := trap.Emb.G
	if !g.Connected() {
		t.Fatal("trap must be connected")
	}
	if !trap.Emb.IsPlaneEmbedding() {
		t.Fatal("trap must be a plane embedding")
	}
	greedy := Greedy(trap.Emb)
	res := sim.Run(g, sim.Func(greedy.Bind(g, 1)), trap.S, trap.T, sim.Options{DetectLoops: true})
	if res.Outcome != sim.Looped {
		t.Errorf("greedy on the trap: %v (route %v), want looped", res.Outcome, res.Route)
	}
	compass := Compass(trap.Emb)
	res = sim.Run(g, sim.Func(compass.Bind(g, 1)), trap.S, trap.T, sim.Options{DetectLoops: true})
	if res.Outcome != sim.Looped {
		t.Errorf("compass on the trap: %v (route %v), want looped", res.Outcome, res.Route)
	}
}

func TestFaceRouteDeliversOnTrap(t *testing.T) {
	trap := GreedyTrap()
	res, err := FaceRoute(trap.Emb, trap.S, trap.T)
	if err != nil || !res.Delivered {
		t.Fatalf("face routing on the trap: delivered=%v err=%v route=%v", res.Delivered, err, res.Route)
	}
	if res.Route[len(res.Route)-1] != trap.T {
		t.Errorf("route must end at t: %v", res.Route)
	}
	if res.StateBits <= 0 {
		t.Error("face routing must account for its message state")
	}
}

func TestFaceRouteSelf(t *testing.T) {
	trap := GreedyTrap()
	res, err := FaceRoute(trap.Emb, trap.S, trap.S)
	if err != nil || !res.Delivered || len(res.Route) != 1 {
		t.Errorf("self route: %+v err=%v", res, err)
	}
	if _, err := FaceRoute(trap.Emb, 99, trap.T); err == nil {
		t.Error("unknown endpoint must error")
	}
}

func TestFaceRouteAllPairsOnGabrielGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 8; trial++ {
		pos := geom.RandomPoints(rng, 10+rng.Intn(15))
		g := geom.GabrielGraph(pos)
		emb, err := geom.NewEmbedding(g, pos)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range g.Vertices() {
			for _, dst := range g.Vertices() {
				if s == dst {
					continue
				}
				res, err := FaceRoute(emb, s, dst)
				if err != nil || !res.Delivered {
					t.Fatalf("face routing failed %d->%d on %v: err=%v route=%v",
						s, dst, g, err, res.Route)
				}
				// The walk must follow edges.
				for i := 1; i < len(res.Route); i++ {
					if !g.HasEdge(res.Route[i-1], res.Route[i]) {
						t.Fatalf("route uses non-edge %d-%d", res.Route[i-1], res.Route[i])
					}
				}
			}
		}
	}
}

func TestFaceRouteAllPairsOnPlanarizedUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tried := 0
	for trial := 0; trial < 20 && tried < 5; trial++ {
		pos := geom.RandomPoints(rng, 25)
		udg := geom.UnitDiskGraph(pos, 0.35)
		if !udg.Connected() {
			continue
		}
		tried++
		sub := geom.GabrielSubgraph(udg, pos)
		emb, err := geom.NewEmbedding(sub, pos)
		if err != nil {
			t.Fatal(err)
		}
		vs := sub.Vertices()
		for i := 0; i < 40; i++ {
			s := vs[rng.Intn(len(vs))]
			dst := vs[rng.Intn(len(vs))]
			if s == dst {
				continue
			}
			res, err := FaceRoute(emb, s, dst)
			if err != nil || !res.Delivered {
				t.Fatalf("face routing failed %d->%d: err=%v", s, dst, err)
			}
		}
	}
	if tried == 0 {
		t.Skip("no connected UDG draws")
	}
}

func TestFaceRouteAlgorithmAdapter(t *testing.T) {
	trap := GreedyTrap()
	alg := FaceRouteAlgorithm(trap.Emb)
	res := sim.Run(trap.Emb.G, sim.Func(alg.Bind(trap.Emb.G, 1)), trap.S, trap.T,
		sim.Options{DetectLoops: !alg.Randomized, MaxSteps: 1000})
	if res.Outcome != sim.Delivered {
		t.Fatalf("adapter outcome: %v err=%v", res.Outcome, res.Err)
	}
}

func TestGreedyCompassDeliversOnTrapAndGabriel(t *testing.T) {
	// Greedy-compass escapes the simple trap (it probes both angular
	// sides), and works broadly on Gabriel graphs even though it has no
	// universal guarantee there.
	trap := GreedyTrap()
	alg := GreedyCompass(trap.Emb)
	res := sim.Run(trap.Emb.G, sim.Func(alg.Bind(trap.Emb.G, 1)), trap.S, trap.T,
		sim.Options{DetectLoops: true})
	if res.Outcome != sim.Delivered {
		t.Errorf("greedy-compass on the trap: %v route=%v", res.Outcome, res.Route)
	}
}

func TestCompassAndGreedyDeliverAdjacent(t *testing.T) {
	trap := GreedyTrap()
	g := trap.Emb.G
	greedy := Greedy(trap.Emb)
	res := sim.Run(g, sim.Func(greedy.Bind(g, 1)), 2, 5, sim.Options{DetectLoops: true})
	if res.Outcome != sim.Delivered || res.Len() != 1 {
		t.Errorf("greedy adjacent hop: %v len=%d", res.Outcome, res.Len())
	}
	compass := Compass(trap.Emb)
	res = sim.Run(g, sim.Func(compass.Bind(g, 1)), 4, 5, sim.Options{DetectLoops: true})
	if res.Outcome != sim.Delivered || res.Len() != 1 {
		t.Errorf("compass adjacent hop: %v len=%d", res.Outcome, res.Len())
	}
}

func TestFaceSwitchCountBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pos := geom.RandomPoints(rng, 20)
	g := geom.GabrielGraph(pos)
	emb, _ := geom.NewEmbedding(g, pos)
	vs := g.Vertices()
	for i := 0; i < 30; i++ {
		s := vs[rng.Intn(len(vs))]
		dst := vs[rng.Intn(len(vs))]
		if s == dst {
			continue
		}
		res, err := FaceRoute(emb, s, dst)
		if err != nil {
			t.Fatal(err)
		}
		if res.FaceSwitches > 2*g.M() {
			t.Errorf("face switches %d exceed 2m=%d", res.FaceSwitches, 2*g.M())
		}
	}
}
