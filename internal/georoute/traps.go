package georoute

import (
	"klocal/internal/geom"
	"klocal/internal/graph"
)

// Trap is a position-based routing counterexample: a plane embedding with
// an origin-destination pair defeating a 1-local stateless rule.
type Trap struct {
	Emb  *geom.Embedding
	S, T graph.Vertex
}

// GreedyTrap builds a small connected plane graph with a greedy local
// minimum: node 0's neighbours are both farther from t than 0 is, and
// label-order tie-breaks send greedy (and compass) into a two-node
// ping-pong, while the connection to t runs around the barrier. Face
// routing delivers on it. This instantiates the paper's Section 3 claim
// that every 1-local stateless position-based rule of this kind is
// defeated by some planar graph.
func GreedyTrap() *Trap {
	// Geometry: s=0 at the origin; t=5 straight above; wings 1..4 route
	// around the gap but every first hop moves away from t.
	pos := map[graph.Vertex]geom.Point{
		0: {X: 0, Y: 0},  // s: local minimum (dist to t = 1)
		1: {X: -1, Y: 0}, // left wing (dist √2)
		2: {X: -1, Y: 1}, // left upper (dist 1)
		3: {X: 1, Y: 0},  // right wing (dist √2)
		4: {X: 1, Y: 1},  // right upper (dist 1)
		5: {X: 0, Y: 1},  // t
	}
	g := graph.NewBuilder().
		AddEdge(0, 1).AddEdge(0, 3).
		AddEdge(1, 2).AddEdge(3, 4).
		AddEdge(2, 5).AddEdge(4, 5).
		Build()
	emb, err := geom.NewEmbedding(g, pos)
	if err != nil {
		// The construction is fixed and valid; failure is a programming
		// error worth surfacing loudly in tests.
		panic(err)
	}
	return &Trap{Emb: emb, S: 0, T: 5}
}
